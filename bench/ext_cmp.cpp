/**
 * @file
 * Extension experiment: chip multiprocessing (paper Section 8).
 * Holds the core count at 8 and trades chips for cores-per-chip.
 * Alias for `isim-fig run ext-cmp`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("ext-cmp", argc, argv);
}
