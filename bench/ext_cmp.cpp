/**
 * @file
 * Extension experiment: chip multiprocessing (paper Section 8: "the
 * next logical step seems to be to tolerate the remaining latencies by
 * exploiting the inherent thread-level parallelism in OLTP through
 * techniques such as chip multiprocessing").
 *
 * Holds the core count at 8 and trades chips for cores-per-chip:
 * 8x1 (the paper's multiprocessor), 4x2, 2x4, 1x8. As cores move onto
 * one die, dirty 3-hop communication misses become shared-L2 hits, at
 * the price of sharing the fixed 2 MB of on-chip cache.
 */

#include <iostream>

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const obs::ObsConfig obs_config =
        benchmain::parseArgsOrExit(argc, argv);

    FigureSpec spec;
    spec.id = "Extension E1";
    spec.title = "Chip multiprocessing: 8 cores as chips x cores/chip "
                 "(full integration, 2MB 8-way shared L2)";
    spec.multiprocessor = true;

    for (unsigned cores_per_node : {1u, 2u, 4u, 8u}) {
        FigureBar bar;
        bar.config = figures::onchip(8, 2 * mib, 8,
                                     IntegrationLevel::FullInt);
        bar.config.coresPerNode = cores_per_node;
        bar.config.name = std::to_string(8 / cores_per_node) +
                          " chips x " +
                          std::to_string(cores_per_node) + " cores";
        spec.bars.push_back(bar);
    }
    spec.normalizeTo = 0;

    const int rc = benchmain::runAndPrint(spec, obs_config);
    std::cout << "Reading: intra-chip sharing converts 3-hop dirty "
                 "misses into shared-L2 hits;\nthe capacity cost shows "
                 "up as extra local/remote-clean misses when 8 cores\n"
                 "share one 2MB cache.\n";
    return rc;
}
