/**
 * @file
 * Regenerates the paper's Figure 13 (out-of-order processors), both
 * the uniprocessor and the 8-processor graphs.
 */

#include "fig_main.hh"

int
main()
{
    isim::benchmain::runAndPrint(isim::figures::figure13Uni());
    return isim::benchmain::runAndPrint(isim::figures::figure13Mp());
}
