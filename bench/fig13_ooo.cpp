/**
 * @file
 * Regenerates the paper's Figure 13 (out-of-order processors), both
 * the uniprocessor and the 8-processor graphs.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    const isim::obs::ObsConfig obs_config =
        isim::benchmain::parseArgsOrExit(argc, argv);
    isim::benchmain::runAndPrint(isim::figures::figure13Uni(), obs_config);
    return isim::benchmain::runAndPrint(isim::figures::figure13Mp(), obs_config);
}
