/**
 * @file
 * Regenerates the paper's Figure 13 (out-of-order cores), both the
 * uniprocessor and 8-processor graphs. Alias for
 * `isim-fig run fig13`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig13", argc, argv);
}
