/**
 * @file
 * Shared driver for the figure-regeneration benches: run a FigureSpec
 * and print the paper-style report. Honors ISIM_TXNS / ISIM_WARMUP for
 * quick runs.
 */

#ifndef ISIM_BENCH_FIG_MAIN_HH
#define ISIM_BENCH_FIG_MAIN_HH

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/core/figures.hh"
#include "src/core/report.hh"

namespace isim::benchmain {

inline int
runAndPrint(const FigureSpec &spec)
{
    ExperimentRunner runner(/*verbose=*/true);
    const FigureResult result = runner.run(spec);
    printFigureReport(std::cout, result);
    if (const char *dir = std::getenv("ISIM_JSON_DIR")) {
        std::string name;
        for (const char c : spec.id + "_" + spec.title) {
            name += std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::tolower(
                              static_cast<unsigned char>(c)))
                        : '_';
        }
        const std::string path =
            std::string(dir) + "/" + name.substr(0, 64) + ".json";
        std::ofstream out(path);
        out << figureToJson(result);
        std::cout << "json written to " << path << "\n";
    }
    return 0;
}

} // namespace isim::benchmain

#endif // ISIM_BENCH_FIG_MAIN_HH
