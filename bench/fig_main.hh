/**
 * @file
 * Shared driver for the figure-regeneration benches: run a FigureSpec
 * and print the paper-style report. Honors ISIM_TXNS / ISIM_WARMUP for
 * quick runs.
 */

#ifndef ISIM_BENCH_FIG_MAIN_HH
#define ISIM_BENCH_FIG_MAIN_HH

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/config/options.hh"
#include "src/core/figures.hh"
#include "src/core/report.hh"

namespace isim::benchmain {

/**
 * Parse the common figure-binary command line: the observability
 * flags (config/options.hh). Prints usage and exits on --help / -h or
 * an unrecognized argument.
 */
inline obs::ObsConfig
parseArgsOrExit(int argc, char **argv)
{
    const obs::ObsConfig cfg = obsFromCommandLine(argc, argv);
    for (int i = 1; i < argc; ++i) {
        const bool help = std::strcmp(argv[i], "--help") == 0 ||
                          std::strcmp(argv[i], "-h") == 0;
        (help ? std::cout : std::cerr)
            << "usage: " << argv[0] << " [options]\n\n"
            << "Regenerates one figure of the paper; prints the "
               "report to stdout.\nOptions:\n"
            << obsOptionsHelp()
            << "Environment: ISIM_TXNS / ISIM_WARMUP override the "
               "transaction counts;\nISIM_JSON_DIR=DIR writes the "
               "figure JSON there.\n";
        if (!help)
            std::cerr << "\nunknown argument: " << argv[i] << "\n";
        std::exit(help ? 0 : 2);
    }
    return cfg;
}

inline int
runAndPrint(const FigureSpec &spec,
            const obs::ObsConfig &obs_config = {})
{
    ExperimentRunner runner(/*verbose=*/true);
    runner.setObsConfig(obs_config);
    const FigureResult result = runner.run(spec);
    printFigureReport(std::cout, result);
    if (const char *dir = std::getenv("ISIM_JSON_DIR")) {
        std::string name;
        for (const char c : spec.id + "_" + spec.title) {
            name += std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::tolower(
                              static_cast<unsigned char>(c)))
                        : '_';
        }
        const std::string path =
            std::string(dir) + "/" + name.substr(0, 64) + ".json";
        std::ofstream out(path);
        out << figureToJson(result);
        std::cout << "json written to " << path << "\n";
    }
    return 0;
}

} // namespace isim::benchmain

#endif // ISIM_BENCH_FIG_MAIN_HH
