/**
 * @file
 * Shared driver for the figure-regeneration benches: parse the common
 * run flags (RunOptions — transaction counts, --jobs parallelism,
 * JSON output, observability capture; the ISIM_* environment
 * variables are the fallbacks) and run registry entries. Each bench
 * binary is a thin alias for `isim-fig run <id>`.
 */

#ifndef ISIM_BENCH_FIG_MAIN_HH
#define ISIM_BENCH_FIG_MAIN_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/config/options.hh"
#include "src/core/driver.hh"
#include "src/core/figures.hh"
#include "src/core/registry.hh"

namespace isim::benchmain {

/**
 * Parse the common figure-binary command line: the run flags
 * (--txns/--warmup/--seed/--jobs/--json-dir/--quiet, with ISIM_*
 * environment fallbacks) plus the observability flags. Prints usage
 * and exits on --help / -h or an unrecognized argument.
 */
inline RunOptions
parseArgsOrExit(int argc, char **argv)
{
    const RunOptions opts = RunOptions::fromCommandLine(argc, argv);
    for (int i = 1; i < argc; ++i) {
        const bool help = std::strcmp(argv[i], "--help") == 0 ||
                          std::strcmp(argv[i], "-h") == 0;
        (help ? std::cout : std::cerr)
            << "usage: " << argv[0] << " [options]\n\n"
            << "Regenerates one figure of the paper; prints the "
               "report to stdout.\nOptions:\n"
            << runOptionsHelp() << obsOptionsHelp()
            << "Environment fallbacks: ISIM_TXNS, ISIM_WARMUP, "
               "ISIM_SEED, ISIM_JOBS,\nISIM_JSON_DIR, "
               "ISIM_AUDIT_PERIOD (flags win).\n";
        if (!help)
            std::cerr << "\nunknown argument: " << argv[i] << "\n";
        std::exit(help ? 0 : 2);
    }
    return opts;
}

inline int
runAndPrint(const FigureSpec &spec, const RunOptions &opts = {})
{
    return runFigureAndPrint(spec, opts);
}

/** Parse argv, then run every registry entry matching `id`. */
inline int
runRegistered(const std::string &id, int argc, char **argv)
{
    const RunOptions opts = parseArgsOrExit(argc, argv);
    return runRegisteredFigures(id, opts);
}

} // namespace isim::benchmain

#endif // ISIM_BENCH_FIG_MAIN_HH
