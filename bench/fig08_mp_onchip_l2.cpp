/**
 * @file
 * Regenerates the paper's Figure 8 (integrated on-chip L2,
 * 8 processors). Alias for `isim-fig run fig08`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig08", argc, argv);
}
