/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * cache tag lookup, full coherent accesses, VM translation, RNG and
 * workload generation. These bound the simulator's refs/second, i.e.
 * how long the figure benches take.
 */

#include <benchmark/benchmark.h>

#include <deque>

#include "src/base/random.hh"
#include "src/coherence/protocol.hh"
#include "src/oltp/code_model.hh"
#include "src/os/layout.hh"
#include "src/os/vm.hh"

namespace {

using namespace isim;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngZipf(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.zipf(4096, 0.8));
}
BENCHMARK(BM_RngZipf);

void
BM_CacheArrayLookupHit(benchmark::State &state)
{
    CacheArray array(
        CacheGeometry{2 * mib, static_cast<unsigned>(state.range(0)),
                      64});
    Victim v;
    for (Addr line = 0; line < 1024; ++line)
        array.allocate(line, LineState::Shared, v);
    Addr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.findLine(line));
        line = (line + 1) & 1023;
    }
}
BENCHMARK(BM_CacheArrayLookupHit)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void
BM_MemorySystemL1Hit(benchmark::State &state)
{
    MemSysConfig cfg;
    cfg.numNodes = 1;
    cfg.l2 = CacheGeometry{2 * mib, 8, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    MemorySystem ms(cfg);
    ms.access(0, RefType::Load, 0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(ms.access(0, RefType::Load, 0x1000));
}
BENCHMARK(BM_MemorySystemL1Hit);

void
BM_MemorySystemMissStream(benchmark::State &state)
{
    MemSysConfig cfg;
    cfg.numNodes = 8;
    cfg.l2 = CacheGeometry{512 * kib, 2, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    MemorySystem ms(cfg);
    Rng rng(7);
    for (auto _ : state) {
        const NodeId node = static_cast<NodeId>(rng.below(8));
        const Addr addr = (rng.below(8) << 31) |
                          (rng.below(1 << 14) << 6);
        const RefType type =
            rng.chance(0.2) ? RefType::Store : RefType::Load;
        benchmark::DoNotOptimize(ms.access(node, type, addr));
    }
}
BENCHMARK(BM_MemorySystemMissStream);

void
BM_VmTranslate(benchmark::State &state)
{
    VmConfig vc;
    vc.homeMap = HomeMap{31, 8};
    VirtualMemory vm(vc);
    Rng rng(3);
    for (auto _ : state) {
        const Addr v = rng.below(1 << 16) * 64;
        benchmark::DoNotOptimize(vm.translate(v, 0));
    }
}
BENCHMARK(BM_VmTranslate);

void
BM_CodeInvocation(benchmark::State &state)
{
    CodeModelParams cp;
    cp.vbase = layout::dbText;
    cp.textBytes = 384 * kib;
    cp.numFunctions = 128;
    cp.seed = 5;
    CodeModel code(cp);
    VmConfig vc;
    vc.homeMap = HomeMap{31, 1};
    VirtualMemory vm(vc);
    Rng rng(5);
    std::deque<MemRef> out;
    for (auto _ : state) {
        out.clear();
        const unsigned f = static_cast<unsigned>(rng.below(128));
        benchmark::DoNotOptimize(
            code.invoke(f, rng, vm, 0, false, out));
    }
}
BENCHMARK(BM_CodeInvocation);

} // namespace

BENCHMARK_MAIN();
