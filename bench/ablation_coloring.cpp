/**
 * @file
 * Ablation: OS page colouring vs the direct-mapped conflict story —
 * how much of the direct-mapped penalty would ideal colouring claw
 * back, and does it change the associativity story? Alias for
 * `isim-fig run ablation-coloring`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("ablation-coloring", argc, argv);
}
