/**
 * @file
 * Ablation: OS page colouring vs the direct-mapped conflict story.
 * The paper's key cache finding — 8 MB direct-mapped caches keep ~1/3
 * of the 1 MB miss volume because random page placement makes hot
 * lines collide — presumes the OS cannot colour a 900 MB SGA. This
 * ablation asks: how much of the direct-mapped penalty would ideal
 * colouring claw back, and does it change the associativity story?
 */

#include <iostream>

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const obs::ObsConfig obs_config =
        benchmain::parseArgsOrExit(argc, argv);

    FigureSpec spec;
    spec.id = "Ablation A3";
    spec.title = "Page colouring vs direct-mapped conflicts - "
                 "uniprocessor";
    spec.multiprocessor = false;

    for (const bool colored : {false, true}) {
        for (const auto &[size, assoc] :
             std::vector<std::pair<std::uint64_t, unsigned>>{
                 {1 * mib, 1u}, {8 * mib, 1u}, {2 * mib, 4u}}) {
            FigureBar bar;
            bar.config = figures::offchip(1, size, assoc);
            if (colored) {
                // One colour per page slot of the largest cache.
                bar.config.pageColors = 1024; // 8MB / 8KB pages
                bar.config.name += " colored";
            }
            spec.bars.push_back(bar);
        }
    }
    spec.normalizeTo = 0;

    const int rc = benchmain::runAndPrint(spec, obs_config);
    std::cout << "Reading: colouring tiles the hot footprint across "
                 "cache sets, recovering much\nof the direct-mapped "
                 "conflict volume — but OLTP's hot lines come from "
                 "many\nindependent regions, so collisions within a "
                 "colour remain and associativity\nstill wins.\n";
    return rc;
}
