/**
 * @file
 * Regenerates the paper's Figure 6 (OLTP with different off-chip L2
 * configurations, 8 processors). Alias for `isim-fig run fig06`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig06", argc, argv);
}
