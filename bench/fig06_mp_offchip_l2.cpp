/**
 * @file
 * Regenerates the paper's Figure 6.
 */

#include "fig_main.hh"

int
main()
{
    return isim::benchmain::runAndPrint(isim::figures::figure6());
}
