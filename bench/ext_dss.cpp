/**
 * @file
 * Extension experiment: OLTP vs DSS sensitivity — the same
 * integration ladder run under both workloads (paper Section 1's
 * premise, quantified). Alias for `isim-fig run ext-dss`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("ext-dss", argc, argv);
}
