/**
 * @file
 * Extension experiment: OLTP vs DSS sensitivity. The paper studies
 * OLTP precisely because DSS "has been shown to be relatively
 * insensitive to memory system performance" (Section 1). This bench
 * quantifies the contrast on our models: the same integration ladder
 * and the same cache sweep, run under both workloads.
 */

#include <iostream>

#include "fig_main.hh"

namespace {

isim::FigureSpec
ladder(isim::WorkloadKind kind, const char *tag)
{
    using namespace isim;
    FigureSpec spec;
    spec.id = std::string("Extension E2 (") + tag + ")";
    spec.title = std::string("Integration ladder under ") + tag +
                 " - 8 processors";
    spec.multiprocessor = true;

    FigureBar base;
    base.config = figures::baseMachine(8);
    spec.bars.push_back(base);
    FigureBar l2;
    l2.config = figures::onchip(8, 2 * mib, 8, IntegrationLevel::L2Int);
    spec.bars.push_back(l2);
    FigureBar full;
    full.config =
        figures::onchip(8, 2 * mib, 8, IntegrationLevel::FullInt);
    spec.bars.push_back(full);

    // Cache sensitivity probes: small vs large off-chip L2.
    FigureBar small;
    small.config = figures::offchip(8, 1 * mib, 1);
    spec.bars.push_back(small);

    for (FigureBar &bar : spec.bars) {
        bar.config.workload.kind = kind;
        if (kind == WorkloadKind::DssScan) {
            // Queries are ~100x heavier than transactions; run fewer.
            bar.config.workload.transactions = 60;
            bar.config.workload.warmupTransactions = 20;
        }
        bar.config.name += std::string(" ") + tag;
    }
    spec.normalizeTo = 0;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace isim;

    const obs::ObsConfig obs_config =
        benchmain::parseArgsOrExit(argc, argv);
    benchmain::runAndPrint(ladder(WorkloadKind::TpcB, "OLTP"), obs_config);
    const int rc =
        benchmain::runAndPrint(ladder(WorkloadKind::DssScan, "DSS"), obs_config);
    std::cout << "Reading: OLTP gains ~1.4x from full integration; the "
                 "DSS scan streams are\nnearly insensitive — their "
                 "misses are streaming (no reuse for caches to\n"
                 "exploit) and amortized over many instructions per "
                 "data line. This is the\npaper's Section 1 "
                 "justification for studying OLTP, quantified.\n";
    return rc;
}
