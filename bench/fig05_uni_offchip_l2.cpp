/**
 * @file
 * Regenerates the paper's Figure 5 (OLTP with different off-chip L2
 * configurations, uniprocessor). Alias for `isim-fig run fig05`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig05", argc, argv);
}
