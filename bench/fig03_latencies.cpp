/**
 * @file
 * Regenerates the paper's Figure 3 (memory latencies per
 * configuration) and cross-checks it against the component-level
 * latency model, printing the derived values, their worst relative
 * error, and the full path decomposition for each class.
 */

#include <iostream>

#include "src/stats/table.hh"
#include "src/timing/component_model.hh"

int
main()
{
    using namespace isim;

    struct Row
    {
        IntegrationLevel level;
        L2Impl impl;
        const char *name;
    };
    const Row rows[] = {
        {IntegrationLevel::ConservativeBase, L2Impl::OffchipAssoc,
         "Conservative Base"},
        {IntegrationLevel::Base, L2Impl::OffchipDirect,
         "Base (1-way L2)"},
        {IntegrationLevel::Base, L2Impl::OffchipAssoc,
         "Base (n-way L2)"},
        {IntegrationLevel::L2Int, L2Impl::OnchipSram,
         "L2 integrated (SRAM)"},
        {IntegrationLevel::L2Int, L2Impl::OnchipDram,
         "L2 integrated (DRAM)"},
        {IntegrationLevel::L2McInt, L2Impl::OnchipSram,
         "L2, MC integrated"},
        {IntegrationLevel::FullInt, L2Impl::OnchipSram,
         "L2, MC, CC/NR integrated"},
    };

    std::cout << "== Figure 3: Memory latencies (cycles @1GHz == ns) "
                 "==\n\n";
    Table t({"Configuration", "L2 Hit", "Local", "Remote",
             "Remote Dirty"});
    for (const Row &row : rows) {
        const LatencyTable lat = figure3Latencies(row.level, row.impl);
        t.row()
            .cell(row.name)
            .count(lat.l2Hit)
            .count(lat.local)
            .count(lat.remote)
            .count(lat.remoteDirty);
    }
    t.print(std::cout);

    const ReductionVsBase red = fullIntegrationReduction();
    std::cout << "\nFull integration vs Base (paper Section 2.3: "
                 "1.67x / 1.33x / 1.17x / 1.38x):\n  L2 hit "
              << formatNum(red.l2Hit, 2) << "x, local "
              << formatNum(red.local, 2) << "x, remote "
              << formatNum(red.remote, 2) << "x, dirty "
              << formatNum(red.remoteDirty, 2) << "x\n";

    const ComponentLatencyModel model(ComponentParams{}, 8);
    std::cout << "\n== Component-model derivation (8-node torus) ==\n\n";
    Table d({"Configuration", "L2 Hit", "Local", "Remote", "Dirty",
             "WorstErr%"});
    for (const Row &row : rows) {
        const LatencyTable lat = model.derive(row.level, row.impl);
        d.row()
            .cell(row.name)
            .count(lat.l2Hit)
            .count(lat.local)
            .count(lat.remote)
            .count(lat.remoteDirty)
            .num(100.0 * model.worstRelativeError(row.level, row.impl));
    }
    d.print(std::cout);

    std::cout << "\nPath decompositions (full integration):\n";
    std::cout << "  l2 hit : "
              << model.l2HitPath(IntegrationLevel::FullInt,
                                 L2Impl::OnchipSram)
                     .describe()
              << "\n";
    std::cout << "  local  : "
              << model.localPath(IntegrationLevel::FullInt).describe()
              << "\n";
    std::cout << "  remote : "
              << model.remotePath(IntegrationLevel::FullInt).describe()
              << "\n";
    std::cout << "  dirty  : "
              << model.remoteDirtyPath(IntegrationLevel::FullInt,
                                       L2Impl::OnchipSram)
                     .describe()
              << "\n";
    return 0;
}
