/**
 * @file
 * Ablation: associativity sensitivity at fixed 2 MB on-chip capacity
 * (extends the paper's 2M 1/2/4/8-way points to 16-way, uniprocessor
 * and 8 processors). Quantifies DESIGN.md's claim that OLTP's
 * "capacity" misses in direct-mapped caches are substantially
 * conflict misses.
 */

#include <iostream>

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const obs::ObsConfig obs_config =
        benchmain::parseArgsOrExit(argc, argv);

    for (unsigned cpus : {1u, figures::mpNodes}) {
        FigureSpec spec;
        spec.id = "Ablation A1";
        spec.title =
            "Associativity sweep, 2MB on-chip L2 - " +
            std::string(cpus == 1 ? "uniprocessor" : "8 processors");
        spec.multiprocessor = cpus > 1;
        for (unsigned assoc : {1u, 2u, 4u, 8u, 16u}) {
            FigureBar bar;
            bar.config = figures::onchip(cpus, 2 * mib, assoc,
                                         IntegrationLevel::L2Int);
            spec.bars.push_back(bar);
        }
        spec.normalizeTo = 0;
        benchmain::runAndPrint(spec, obs_config);
    }
    return 0;
}
