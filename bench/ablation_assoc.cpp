/**
 * @file
 * Ablation: associativity sensitivity at fixed 2 MB on-chip capacity
 * (extends the paper's 2M 1/2/4/8-way points to 16-way, uniprocessor
 * and 8 processors). Quantifies DESIGN.md's claim that OLTP's
 * "capacity" misses in direct-mapped caches are substantially
 * conflict misses. Alias for `isim-fig run ablation-assoc`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("ablation-assoc", argc, argv);
}
