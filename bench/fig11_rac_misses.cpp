/**
 * @file
 * Regenerates the paper's Figure 11 (RAC miss mix, with and without
 * OS code replication). Alias for `isim-fig run fig11`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig11", argc, argv);
}
