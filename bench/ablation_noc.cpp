/**
 * @file
 * Ablation: interconnect sensitivity. Sweeps the per-hop router cost
 * and the machine size through the component latency model, showing
 * how the 2-hop / 3-hop latencies (and hence everything Figures 6-13
 * measure about multiprocessors) depend on the network the 21364-style
 * design integrates on chip.
 */

#include <iostream>

#include "src/stats/table.hh"
#include "src/timing/component_model.hh"

int
main()
{
    using namespace isim;

    std::cout << "== Ablation A2: router hop cost vs remote latencies "
                 "(full integration, 8-node torus) ==\n\n";
    Table t({"RouterDelay", "LinkFlight", "Remote", "RemoteDirty",
             "Dirty/Remote"});
    for (Cycles hop : {2u, 5u, 10u, 20u, 40u}) {
        ComponentParams params;
        params.link.routerDelay = hop;
        const ComponentLatencyModel model(params, 8);
        const LatencyTable lat =
            model.derive(IntegrationLevel::FullInt, L2Impl::OnchipSram);
        t.row()
            .count(hop)
            .count(params.link.linkFlight)
            .count(lat.remote)
            .count(lat.remoteDirty)
            .num(static_cast<double>(lat.remoteDirty) /
                     static_cast<double>(lat.remote),
                 2);
    }
    t.print(std::cout);

    std::cout << "\n== Machine-size scaling (average hops grow with "
                 "the torus) ==\n\n";
    Table s({"Nodes", "Torus", "AvgHops", "Diameter", "Remote",
             "RemoteDirty"});
    for (unsigned nodes : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const ComponentLatencyModel model(ComponentParams{}, nodes);
        const TorusTopology &topo = model.network().topology();
        const LatencyTable lat =
            model.derive(IntegrationLevel::FullInt, L2Impl::OnchipSram);
        s.row()
            .count(nodes)
            .cell(std::to_string(topo.width()) + "x" +
                  std::to_string(topo.height()))
            .num(topo.averageHops(), 2)
            .count(topo.diameter())
            .count(lat.remote)
            .count(lat.remoteDirty);
    }
    s.print(std::cout);

    std::cout << "\n== Link bandwidth vs serialization (64B line) ==\n\n";
    Table b({"GB/s", "Serialization", "Remote"});
    for (double gbs : {1.0, 2.0, 4.0, 8.0}) {
        ComponentParams params;
        params.link.bandwidthGBs = gbs;
        const ComponentLatencyModel model(params, 8);
        b.row()
            .num(gbs, 0)
            .count(model.network().serialization(64))
            .count(model.derive(IntegrationLevel::FullInt,
                                L2Impl::OnchipSram)
                       .remote);
    }
    b.print(std::cout);
    return 0;
}
