/**
 * @file
 * Regenerates the paper's Figure 10 (successive integration of the
 * L2, memory controller, and coherence/network hardware), both the
 * uniprocessor and the 8-processor graphs.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    const isim::obs::ObsConfig obs_config =
        isim::benchmain::parseArgsOrExit(argc, argv);
    isim::benchmain::runAndPrint(isim::figures::figure10Uni(), obs_config);
    return isim::benchmain::runAndPrint(isim::figures::figure10Mp(), obs_config);
}
