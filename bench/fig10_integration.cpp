/**
 * @file
 * Regenerates the paper's Figure 10 (successive integration of the
 * L2, memory controller, and coherence/network hardware), both the
 * uniprocessor and the 8-processor graphs.
 */

#include "fig_main.hh"

int
main()
{
    isim::benchmain::runAndPrint(isim::figures::figure10Uni());
    return isim::benchmain::runAndPrint(isim::figures::figure10Mp());
}
