/**
 * @file
 * Regenerates the paper's Figure 10 (successive integration of the
 * L2, memory controller, and coherence/network hardware), both the
 * uniprocessor and the 8-processor graphs. Alias for
 * `isim-fig run fig10`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig10", argc, argv);
}
