/**
 * @file
 * Ablation: L2 victim buffers vs associativity. The 21364 block
 * diagram (paper Figure 1) includes L2 victim buffers; this asks how
 * far a small fully associative victim FIFO goes toward the same
 * conflict-miss relief that set associativity provides. Alias for
 * `isim-fig run ablation-victim`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("ablation-victim", argc, argv);
}
