/**
 * @file
 * Ablation: L2 victim buffers vs associativity. The 21364 block
 * diagram (paper Figure 1) includes L2 victim buffers; this asks how
 * far a small fully associative victim FIFO goes toward the same
 * conflict-miss relief that set associativity provides — i.e. whether
 * a direct-mapped L2 with victim buffers could have rescued the
 * off-chip Base design.
 */

#include <iostream>

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const obs::ObsConfig obs_config =
        benchmain::parseArgsOrExit(argc, argv);

    FigureSpec spec;
    spec.id = "Ablation A4";
    spec.title = "L2 victim buffers vs associativity - uniprocessor, "
                 "2MB on-chip L2";
    spec.multiprocessor = false;

    for (const unsigned entries : {0u, 8u, 32u, 128u}) {
        FigureBar bar;
        bar.config = figures::onchip(1, 2 * mib, 1,
                                     IntegrationLevel::L2Int);
        bar.config.victimBufferEntries = entries;
        bar.config.name =
            "2M1w vb" + std::to_string(entries);
        spec.bars.push_back(bar);
    }
    FigureBar assoc;
    assoc.config =
        figures::onchip(1, 2 * mib, 8, IntegrationLevel::L2Int);
    assoc.config.name = "2M8w vb0";
    spec.bars.push_back(assoc);
    spec.normalizeTo = 0;

    return benchmain::runAndPrint(spec, obs_config);
}
