/**
 * @file
 * Ablation: memory-controller bandwidth. Turns on a single-server
 * occupancy model at each home controller and sweeps the per-miss
 * occupancy (paper Section 4's bandwidth argument). Alias for
 * `isim-fig run ablation-bandwidth`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("ablation-bandwidth", argc, argv);
}
