/**
 * @file
 * Ablation: memory-controller bandwidth. The paper's latency table is
 * uncontended; Section 4 argues the integrated memory controller also
 * wins on *bandwidth* (direct Rambus pins used efficiently). This
 * ablation turns on a single-server occupancy model at each home
 * controller and sweeps the per-miss occupancy: the high-miss-rate
 * Base multiprocessor degrades quickly, the fully integrated design
 * (fewer, faster misses) much more slowly.
 */

#include <iostream>

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    using namespace isim;

    const obs::ObsConfig obs_config =
        benchmain::parseArgsOrExit(argc, argv);

    FigureSpec spec;
    spec.id = "Ablation A5";
    spec.title = "Memory-controller occupancy sweep - 8 processors";
    spec.multiprocessor = true;

    for (const Cycles occ : {0u, 20u, 40u, 80u}) {
        FigureBar base;
        base.config = figures::baseMachine(8);
        base.config.mcOccupancy = occ;
        base.config.name = "Base mc" + std::to_string(occ);
        spec.bars.push_back(base);

        FigureBar full;
        full.config =
            figures::onchip(8, 2 * mib, 8, IntegrationLevel::FullInt);
        full.config.mcOccupancy = occ;
        full.config.name = "All mc" + std::to_string(occ);
        spec.bars.push_back(full);
    }
    spec.normalizeTo = 0;

    const int rc = benchmain::runAndPrint(spec, obs_config);
    std::cout << "Reading: a fixed per-miss occupancy costs the "
                 "integrated design relatively\nmore — its miss "
                 "latencies are short, so queueing is a larger "
                 "fraction of\nthem. Keeping the integration gap "
                 "therefore *requires* the higher\ncontroller "
                 "bandwidth that integration makes available "
                 "(Section 4): the\nlatency win is only safe if the "
                 "bandwidth win comes with it.\n";
    return rc;
}
