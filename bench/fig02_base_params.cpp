/**
 * @file
 * Regenerates the paper's Figure 2: the Base system parameters.
 */

#include <iostream>

#include "src/core/figures.hh"
#include "src/stats/table.hh"

int
main()
{
    using namespace isim;
    const MachineConfig cfg = figures::baseMachine(figures::mpNodes);

    Table t({"Base System Parameter", "Value"});
    t.row().cell("Processor speed").cell("1 GHz");
    t.row().cell("Cache line size").cell(
        std::to_string(cfg.l2.lineBytes) + " bytes");
    t.row().cell("L1 data cache size (on-chip)").cell("64 KB");
    t.row().cell("L1 data cache associativity").cell("2-way");
    t.row().cell("L1 instruction cache size (on-chip)").cell("64 KB");
    t.row().cell("L1 instruction cache associativity").cell("2-way");
    t.row().cell("L2 cache size (off-chip)").cell(
        std::to_string(cfg.l2.sizeBytes / mib) + " MB");
    t.row().cell("L2 cache associativity").cell(
        std::to_string(cfg.l2.assoc) + "-way");
    t.row().cell("Multiprocessor configuration").cell(
        std::to_string(cfg.numCpus) + " processors");

    std::cout << "== Figure 2: Parameters for the Base system ==\n\n";
    t.print(std::cout);

    std::cout << "\nWorkload (paper Section 2.1):\n";
    Table w({"Workload Parameter", "Value"});
    const WorkloadParams &p = cfg.workload;
    w.row().cell("TPC-B branches").count(p.branches);
    w.row().cell("Tellers").count(p.totalTellers());
    w.row().cell("Accounts").count(p.totalAccounts());
    w.row().cell("Server processes per CPU").count(p.serversPerCpu);
    w.row().cell("Measured transactions").count(p.transactions);
    w.row().cell("Warm-up transactions").count(p.warmupTransactions);
    w.print(std::cout);
    return 0;
}
