/**
 * @file
 * Regenerates the paper's Figure 12 (remote access cache
 * performance). Alias for `isim-fig run fig12`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig12", argc, argv);
}
