/**
 * @file
 * Extension experiment: sequential L2 prefetching under OLTP vs DSS
 * (degree 1-4 collapses DSS's memory time and leaves OLTP nearly
 * untouched). Alias for `isim-fig run ext-prefetch`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("ext-prefetch", argc, argv);
}
