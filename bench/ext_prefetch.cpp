/**
 * @file
 * Extension experiment: sequential L2 prefetching under OLTP vs DSS.
 * The paper's premise is that OLTP's memory stalls are hard to remove
 * (dependent, pointer-dense accesses) while scan workloads stream;
 * a next-line prefetcher makes the premise measurable: degree 1-4
 * collapses DSS's memory time and leaves OLTP nearly untouched.
 */

#include <iostream>

#include "fig_main.hh"

namespace {

isim::FigureSpec
sweep(isim::WorkloadKind kind, const char *tag)
{
    using namespace isim;
    FigureSpec spec;
    spec.id = std::string("Extension E3 (") + tag + ")";
    spec.title = std::string("Sequential L2 prefetch under ") + tag +
                 " - uniprocessor, 1MB 4-way";
    for (const unsigned degree : {0u, 1u, 2u, 4u}) {
        FigureBar bar;
        bar.config = figures::offchip(1, 1 * mib, 4);
        bar.config.prefetchDegree = degree;
        bar.config.workload.kind = kind;
        bar.config.name = std::string(tag) + " pf" +
                          std::to_string(degree);
        if (kind == WorkloadKind::DssScan) {
            bar.config.workload.transactions = 80;
            bar.config.workload.warmupTransactions = 25;
        }
        spec.bars.push_back(bar);
    }
    spec.normalizeTo = 0;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace isim;

    const obs::ObsConfig obs_config =
        benchmain::parseArgsOrExit(argc, argv);
    benchmain::runAndPrint(sweep(WorkloadKind::TpcB, "OLTP"), obs_config);
    return benchmain::runAndPrint(sweep(WorkloadKind::DssScan, "DSS"), obs_config);
}
