/**
 * @file
 * Regenerates the paper's Figure 7 (integrated on-chip L2,
 * uniprocessor). Alias for `isim-fig run fig07`.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    return isim::benchmain::runRegistered("fig07", argc, argv);
}
