/**
 * @file
 * Regenerates the paper's Figure 7.
 */

#include "fig_main.hh"

int
main(int argc, char **argv)
{
    const isim::obs::ObsConfig obs_config =
        isim::benchmain::parseArgsOrExit(argc, argv);
    return isim::benchmain::runAndPrint(isim::figures::figure7(), obs_config);
}
