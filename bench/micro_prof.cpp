/**
 * @file
 * google-benchmark microbenchmarks of the self-profiler's scope cost
 * (docs/PROFILING.md). The contract these pin:
 *
 *  - disabled scope: one relaxed atomic load + branch — nanoseconds,
 *    cheap enough to leave on hot paths in a profiling build;
 *  - enabled scope: two steady_clock stamps + thread-local adds; this
 *    is the overhead a profiling run accepts in exchange for the
 *    breakdown.
 *
 * Without -DISIM_PROF=ON the classes still compile (only the macros
 * vanish), so the bench runs in every build and the disabled number
 * is measurable everywhere.
 */

#include <benchmark/benchmark.h>

#include "src/prof/profiler.hh"

namespace {

using namespace isim;

const prof::Node &
benchNode()
{
    static const prof::Node &node =
        prof::registerNode("bench/micro_prof");
    return node;
}

void
BM_ProfScopeDisabled(benchmark::State &state)
{
    prof::setEnabled(false);
    const prof::Node &node = benchNode();
    for (auto _ : state) {
        prof::ProfScope scope(node);
        benchmark::DoNotOptimize(&scope);
    }
}
BENCHMARK(BM_ProfScopeDisabled);

void
BM_ProfScopeEnabled(benchmark::State &state)
{
    prof::setEnabled(true);
    const prof::Node &node = benchNode();
    for (auto _ : state) {
        prof::ProfScope scope(node);
        benchmark::DoNotOptimize(&scope);
    }
    prof::setEnabled(false);
    prof::threadReset();
}
BENCHMARK(BM_ProfScopeEnabled);

void
BM_ProfScopePhasedEnabled(benchmark::State &state)
{
    prof::setEnabled(true);
    static const prof::Node &warm =
        prof::registerNode("warmup/micro_prof");
    static const prof::Node &meas =
        prof::registerNode("measure/micro_prof");
    for (auto _ : state) {
        prof::ProfScope scope(warm, meas);
        benchmark::DoNotOptimize(&scope);
    }
    prof::setEnabled(false);
    prof::threadReset();
}
BENCHMARK(BM_ProfScopePhasedEnabled);

} // namespace

BENCHMARK_MAIN();
