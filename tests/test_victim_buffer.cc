/**
 * @file
 * Tests for the L2 victim buffer (paper Figure 1: "L2 Victim
 * Buffers"): recovery of conflict victims, FIFO spill semantics,
 * directory transparency, and coherence across nodes.
 */

#include <gtest/gtest.h>

#include "src/base/random.hh"
#include "src/coherence/protocol.hh"

namespace isim {
namespace {

MemSysConfig
vbConfig(unsigned entries, unsigned nodes = 2)
{
    MemSysConfig cfg;
    cfg.numNodes = nodes;
    cfg.victimBufferEntries = entries;
    cfg.l1Size = 512;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{4 * kib, 1, 64}; // direct-mapped: conflicts
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    return cfg;
}

Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

TEST(VictimBuffer, RecoversConflictVictimAtL2Cost)
{
    MemorySystem ms(vbConfig(8));
    const std::uint64_t sets = vbConfig(8).l2.sets();
    const Addr a = at(0, 0x40);
    const Addr b = at(0, 0x40 + sets * 64); // conflicts with a

    ms.access(0, RefType::Load, a);
    ms.access(0, RefType::Load, b); // evicts a into the victim buffer
    EXPECT_EQ(ms.l2(0).probe(a >> 6), nullptr);

    const AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_TRUE(out.victimHit);
    EXPECT_EQ(out.cls, MissClass::L2Hit);
    EXPECT_EQ(out.stall, ms.config().lat.l2Hit);
    EXPECT_EQ(ms.nodeStats(0).victimHits, 1u);
    // The swap is not a memory-system miss.
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), 2u);
    ms.checkInvariants();
}

TEST(VictimBuffer, WithoutBufferTheSamePatternMisses)
{
    MemorySystem ms(vbConfig(0));
    const std::uint64_t sets = vbConfig(0).l2.sets();
    const Addr a = at(0, 0x40);
    const Addr b = at(0, 0x40 + sets * 64);
    ms.access(0, RefType::Load, a);
    ms.access(0, RefType::Load, b);
    const AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_FALSE(out.victimHit);
    EXPECT_EQ(out.cls, MissClass::Local);
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), 3u);
}

TEST(VictimBuffer, FifoSpillsOldestToDirectory)
{
    MemorySystem ms(vbConfig(2));
    const std::uint64_t sets = vbConfig(2).l2.sets();
    const Addr a = at(0, 0x40);
    // a, then three more conflicting lines: a's victim entry is the
    // oldest and must spill once the 2-entry FIFO overflows.
    ms.access(0, RefType::Load, a);
    for (unsigned k = 1; k <= 3; ++k)
        ms.access(0, RefType::Load, at(0, 0x40 + k * sets * 64));
    const AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_FALSE(out.victimHit); // spilled: full miss again
    EXPECT_EQ(out.cls, MissClass::Local);
    ms.checkInvariants();
}

TEST(VictimBuffer, DirtyVictimStaysDirtyAndOwned)
{
    MemorySystem ms(vbConfig(8));
    const std::uint64_t sets = vbConfig(8).l2.sets();
    const Addr a = at(1, 0x40); // remote home
    ms.access(0, RefType::Store, a);
    const auto wb_before = ms.nodeStats(0).writebacksToHome;
    ms.access(0, RefType::Load, at(1, 0x40 + sets * 64));
    // Parked in the victim buffer: no write-back, still owned.
    EXPECT_EQ(ms.nodeStats(0).writebacksToHome, wb_before);
    const DirEntry *e = ms.directory().find(a >> 6);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, LineState::Modified);
    EXPECT_EQ(e->owner, 0u);
    // Recovery preserves ownership: the next store is silent.
    const AccessOutcome out = ms.access(0, RefType::Store, a);
    EXPECT_TRUE(out.victimHit);
    EXPECT_FALSE(out.upgrade);
    ms.checkInvariants();
}

TEST(VictimBuffer, RemoteReadFindsDirtyVictim)
{
    MemorySystem ms(vbConfig(8));
    const std::uint64_t sets = vbConfig(8).l2.sets();
    const Addr a = at(0, 0x40);
    ms.access(1, RefType::Store, a);
    ms.access(1, RefType::Load, at(0, 0x40 + sets * 64)); // park dirty
    // Node 0's read must still see the dirty data (3-hop).
    const AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    ms.checkInvariants();
}

TEST(VictimBuffer, InvalidationReachesParkedLines)
{
    MemorySystem ms(vbConfig(8));
    const std::uint64_t sets = vbConfig(8).l2.sets();
    const Addr a = at(0, 0x40);
    ms.access(1, RefType::Load, a);
    ms.access(1, RefType::Load, at(0, 0x40 + sets * 64)); // park a
    ms.access(0, RefType::Store, a); // invalidates node 1 everywhere
    const AccessOutcome out = ms.access(1, RefType::Load, a);
    EXPECT_FALSE(out.victimHit); // the parked copy was invalidated
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    ms.checkInvariants();
}

TEST(VictimBuffer, RacSharedEvictionWhileVictimBufferOwnsLine)
{
    // Regression: a Shared RAC entry evicted while the *victim buffer*
    // holds the same line dirty must not notify the directory (the
    // node still owns the line).
    MemSysConfig cfg = vbConfig(8);
    cfg.racEnabled = true;
    cfg.rac = CacheGeometry{2 * kib, 1, 64}; // tiny, easy to evict
    MemorySystem ms(cfg);
    const std::uint64_t l2sets = cfg.l2.sets();
    const std::uint64_t racsets = cfg.rac.sets();

    const Addr a = at(1, 0x40); // remote home for node 0
    ms.access(0, RefType::Load, a);  // RAC allocates a Shared entry
    ms.access(0, RefType::Store, a); // L2 goes Modified (RAC stays S)
    // Evict the dirty line from the L2 into the victim buffer.
    ms.access(0, RefType::Load, at(1, 0x40 + l2sets * 64));
    ASSERT_EQ(ms.l2(0).probe(a >> 6), nullptr);
    // Now evict the RAC's Shared entry with a conflicting remote line
    // whose RAC set matches.
    ms.access(0, RefType::Load, at(1, 0x40 + racsets * 64));

    // The node must still own the line and serve it dirty.
    const DirEntry *e = ms.directory().find(a >> 6);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, LineState::Modified);
    EXPECT_EQ(e->owner, 0u);
    const AccessOutcome out = ms.access(1, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    ms.checkInvariants();
}

TEST(VictimBuffer, StressWithRandomTraffic)
{
    MemorySystem ms(vbConfig(4, 4));
    Rng rng(0xBEEF);
    for (int step = 0; step < 20000; ++step) {
        const NodeId node = static_cast<NodeId>(rng.below(4));
        const std::uint64_t idx = rng.below(192);
        const Addr addr =
            at(static_cast<NodeId>(idx % 4), (idx / 4) << 6);
        ms.access(node,
                  rng.chance(0.35) ? RefType::Store : RefType::Load,
                  addr);
        if (step % 2000 == 0)
            ms.checkInvariants();
    }
    ms.checkInvariants();
    EXPECT_GT(ms.aggregateStats().victimHits, 0u);
}

} // namespace
} // namespace isim
