/**
 * @file
 * Unit tests for the home map and directory structure.
 */

#include <gtest/gtest.h>

#include "src/coherence/directory.hh"

namespace isim {
namespace {

TEST(HomeMap, ByteAndLineMapping)
{
    HomeMap map{31, 8};
    EXPECT_EQ(map.homeOfByte(0), 0u);
    EXPECT_EQ(map.homeOfByte((1ull << 31) - 1), 0u);
    EXPECT_EQ(map.homeOfByte(1ull << 31), 1u);
    EXPECT_EQ(map.homeOfByte(7ull << 31), 7u);
    // Line addresses: line = byte >> 6.
    EXPECT_EQ(map.homeOfLine((3ull << 31) >> 6, 6), 3u);
    EXPECT_EQ(map.nodeBase(2), 2ull << 31);
    EXPECT_EQ(map.nodeWindow(), 1ull << 31);
}

TEST(HomeMapDeathTest, OutOfRangeAddress)
{
    HomeMap map{31, 4};
    EXPECT_DEATH(map.homeOfByte(4ull << 31), "outside installed");
}

TEST(Directory, FindAndEntryLifecycle)
{
    Directory dir(HomeMap{31, 8}, 6);
    EXPECT_EQ(dir.find(42), nullptr);
    DirEntry &e = dir.entry(42);
    EXPECT_TRUE(e.isUncached());
    EXPECT_EQ(dir.population(), 1u);
    e.state = LineState::Shared;
    e.sharers = 0b101;
    EXPECT_EQ(dir.find(42)->sharerCount(), 2u);
    EXPECT_TRUE(dir.find(42)->hasSharer(0));
    EXPECT_FALSE(dir.find(42)->hasSharer(1));
    EXPECT_TRUE(dir.find(42)->hasSharer(2));
    dir.erase(42);
    EXPECT_EQ(dir.find(42), nullptr);
    EXPECT_EQ(dir.population(), 0u);
}

TEST(Directory, HomeOfUsesLineAddresses)
{
    Directory dir(HomeMap{31, 8}, 6);
    // Line address of a byte in node 5's window.
    const Addr line = (5ull << 31) >> 6;
    EXPECT_EQ(dir.homeOf(line), 5u);
}

TEST(Directory, CheckEntryAcceptsValidShapes)
{
    DirEntry uncached;
    Directory::checkEntry(uncached);

    DirEntry shared;
    shared.state = LineState::Shared;
    shared.sharers = 0b11;
    Directory::checkEntry(shared);

    DirEntry owned;
    owned.state = LineState::Modified;
    owned.owner = 3;
    owned.sharers = 1u << 3;
    Directory::checkEntry(owned);
}

TEST(DirectoryDeathTest, CheckEntryRejectsBadShapes)
{
    DirEntry bad_shared;
    bad_shared.state = LineState::Shared;
    bad_shared.sharers = 0;
    EXPECT_DEATH(Directory::checkEntry(bad_shared), "empty sharer");

    DirEntry bad_owner;
    bad_owner.state = LineState::Modified;
    bad_owner.owner = 2;
    bad_owner.sharers = 0b111;
    EXPECT_DEATH(Directory::checkEntry(bad_owner), "sharer mask");
}

} // namespace
} // namespace isim
