/**
 * @file
 * Tests for the explicit-state model checker (src/verify/mcheck.hh).
 *
 * Two halves: the stock protocol must exhaust every small
 * configuration with zero violations, and every deliberately injected
 * protocol bug (ProtocolMutation) must be *detected* — the mutants
 * exist to test the checker, not the protocol.
 */

#include <gtest/gtest.h>

#include "src/verify/mcheck.hh"

namespace isim::verify {
namespace {

McheckConfig
config(unsigned nodes, unsigned cores, unsigned lines, bool code,
       bool rac, unsigned vb)
{
    McheckConfig c;
    c.numNodes = nodes;
    c.coresPerNode = cores;
    c.dataLines = lines;
    c.codeLine = code;
    c.racEnabled = rac;
    c.victimBufferEntries = vb;
    return c;
}

void
expectExhaustsClean(const McheckConfig &cfg)
{
    const McheckResult res = modelCheck(cfg);
    EXPECT_TRUE(res.ok) << cfg.name() << " violation:\n"
                        << res.violation << "\n"
                        << res.traceString(cfg);
    EXPECT_TRUE(res.exhausted) << cfg.name();
    EXPECT_GT(res.states, 1u) << cfg.name();
    EXPECT_GT(res.transitions, res.states) << cfg.name();
}

TEST(Mcheck, TwoNodesWithCodeLineExhausts)
{
    expectExhaustsClean(config(2, 1, 2, true, false, 0));
}

TEST(Mcheck, TwoNodesRacExhausts)
{
    expectExhaustsClean(config(2, 1, 2, false, true, 0));
}

TEST(Mcheck, TwoNodesVictimBufferExhausts)
{
    expectExhaustsClean(config(2, 1, 2, false, false, 1));
}

TEST(Mcheck, VictimFifoOverflowExhausts)
{
    // Three lines contending for one L2 set with a single victim
    // entry: the FIFO overflows, exercising the release path.
    expectExhaustsClean(config(2, 1, 3, false, false, 1));
}

TEST(Mcheck, TwoCoresPerNodeExhausts)
{
    expectExhaustsClean(config(2, 2, 2, false, false, 0));
}

TEST(Mcheck, FourNodesExhausts)
{
    expectExhaustsClean(config(4, 1, 2, false, false, 0));
}

TEST(Mcheck, StateCapReportsNotExhausted)
{
    McheckConfig cfg = config(2, 1, 2, true, false, 0);
    cfg.maxStates = 10; // the space has ~150 states
    const McheckResult res = modelCheck(cfg);
    EXPECT_TRUE(res.ok);
    EXPECT_FALSE(res.exhausted);
    EXPECT_EQ(res.states, 10u);
}

/** Every mutant must be caught, with a non-empty shortest trace. */
void
expectCaught(McheckConfig cfg, ProtocolMutation m)
{
    cfg.mutation = m;
    const McheckResult res = modelCheck(cfg);
    ASSERT_FALSE(res.ok)
        << protocolMutationName(m) << " escaped the model checker in "
        << cfg.name();
    EXPECT_FALSE(res.violation.empty());
    EXPECT_FALSE(res.trace.empty());
    EXPECT_FALSE(res.traceString(cfg).empty());
}

TEST(McheckMutation, SkipUpgradeInvalCaught)
{
    expectCaught(config(2, 1, 2, false, false, 0),
                 ProtocolMutation::SkipUpgradeInval);
}

TEST(McheckMutation, ForgetSharerBitCaught)
{
    expectCaught(config(2, 1, 2, false, false, 0),
                 ProtocolMutation::ForgetSharerBit);
}

TEST(McheckMutation, MisclassifyDirtyCaught)
{
    expectCaught(config(2, 1, 2, false, false, 0),
                 ProtocolMutation::MisclassifyDirty);
}

TEST(McheckMutation, DropVictimReleaseCaught)
{
    expectCaught(config(2, 1, 2, false, false, 0),
                 ProtocolMutation::DropVictimRelease);
}

TEST(McheckMutation, DropVictimReleaseCaughtThroughVictimBuffer)
{
    // With a victim buffer the release only happens on FIFO overflow;
    // three contending lines force it.
    expectCaught(config(2, 1, 3, false, false, 1),
                 ProtocolMutation::DropVictimRelease);
}

TEST(McheckMutation, SkipVictimBackInvalCaught)
{
    expectCaught(config(2, 1, 2, false, false, 0),
                 ProtocolMutation::SkipVictimBackInval);
}

/** The shortest-trace property: MisclassifyDirty needs exactly two
 *  events (a remote store, then a read observing the dirty line). */
TEST(McheckMutation, MisclassifyDirtyTraceIsShortest)
{
    McheckConfig cfg = config(2, 1, 2, false, false, 0);
    cfg.mutation = ProtocolMutation::MisclassifyDirty;
    const McheckResult res = modelCheck(cfg);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.trace.size(), 2u);
}

} // namespace
} // namespace isim::verify
