/**
 * @file
 * Unit tests for the stats package: Breakdown, Histogram, Table.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "src/stats/breakdown.hh"
#include "src/stats/histogram.hh"
#include "src/stats/table.hh"

namespace isim {
namespace {

TEST(Breakdown, AddAndTotal)
{
    Breakdown b("exec", {"cpu", "l2", "mem"});
    EXPECT_EQ(b.size(), 3u);
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
    b.add(0, 10.0);
    b.add(1, 30.0);
    b.add(1, 10.0);
    b.add(2, 50.0);
    EXPECT_DOUBLE_EQ(b.component(0), 10.0);
    EXPECT_DOUBLE_EQ(b.component(1), 40.0);
    EXPECT_DOUBLE_EQ(b.total(), 100.0);
    EXPECT_DOUBLE_EQ(b.fraction(2), 0.5);
}

TEST(Breakdown, SetOverwrites)
{
    Breakdown b("x", {"a"});
    b.add(0, 5.0);
    b.set(0, 2.0);
    EXPECT_DOUBLE_EQ(b.total(), 2.0);
}

TEST(Breakdown, FractionOfEmptyIsZero)
{
    Breakdown b("x", {"a", "b"});
    EXPECT_DOUBLE_EQ(b.fraction(0), 0.0);
}

TEST(Breakdown, Accumulate)
{
    Breakdown a("x", {"p", "q"});
    Breakdown b("y", {"p", "q"});
    a.add(0, 1.0);
    b.add(0, 2.0);
    b.add(1, 3.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.component(0), 3.0);
    EXPECT_DOUBLE_EQ(a.component(1), 3.0);
}

TEST(Breakdown, ScaledAndClear)
{
    Breakdown a("x", {"p"});
    a.add(0, 4.0);
    const Breakdown s = a.scaled(2.5);
    EXPECT_DOUBLE_EQ(s.component(0), 10.0);
    a.clear();
    EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(BreakdownDeathTest, MismatchedLayouts)
{
    Breakdown a("x", {"p"});
    Breakdown b("y", {"p", "q"});
    EXPECT_DEATH(a += b, "layouts differ");
}

TEST(Histogram, BasicMoments)
{
    Histogram h("lat", 10, 10);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(95);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (5 + 15 + 15 + 95) / 4.0);
    EXPECT_EQ(h.minValue(), 5u);
    EXPECT_EQ(h.maxValue(), 95u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, Overflow)
{
    Histogram h("lat", 10, 4);
    h.sample(1000);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h("lat", 1, 8);
    h.sample(3, 5);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(3), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, Quantile)
{
    Histogram h("lat", 10, 10);
    for (int i = 0; i < 90; ++i)
        h.sample(5); // bucket 0
    for (int i = 0; i < 10; ++i)
        h.sample(95); // bucket 9
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);   // inside bucket 0
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 100.0); // reaches bucket 9
}

TEST(Histogram, QuantileOfEmptyIsNaN)
{
    Histogram h("lat", 10, 10);
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(0.99)));
}

TEST(Histogram, QuantileInOverflowIsNaN)
{
    Histogram h("lat", 10, 4);
    h.sample(5);    // bucket 0
    h.sample(1000); // overflow
    // The median is resolvable, the tail is not: its mass sits in
    // the unbounded overflow bucket.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 10.0);
    EXPECT_TRUE(std::isnan(h.quantile(0.99)));
}

TEST(FormatNum, NonFiniteRendersAsDash)
{
    EXPECT_EQ(formatNum(std::nan(""), 2), "-");
    EXPECT_EQ(formatNum(std::numeric_limits<double>::infinity(), 0),
              "-");
}

TEST(Histogram, Clear)
{
    Histogram h("lat", 10, 10);
    h.sample(42);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(Table, AlignedText)
{
    Table t({"Config", "Value"});
    t.row().cell("a").num(1.5);
    t.row().cell("longer-name").count(42);
    const std::string text = t.toText();
    EXPECT_NE(text.find("Config"), std::string::npos);
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    // All lines equal width for the header underline to make sense.
    std::istringstream is(text);
    std::string line, first;
    std::getline(is, first);
    std::getline(is, line); // separator
    EXPECT_EQ(line.find_first_not_of('-'), std::string::npos);
}

TEST(Table, Csv)
{
    Table t({"a", "b"});
    t.row().cell("x").num(2.0, 0);
    EXPECT_EQ(t.toCsv(), "a,b\nx,2\n");
}

TEST(Table, RowAndColumnCounts)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    t.row().cell("1").cell("2").cell("3");
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TableDeathTest, RowWidthMismatch)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(FormatNum, Precision)
{
    EXPECT_EQ(formatNum(1.23456, 2), "1.23");
    EXPECT_EQ(formatNum(1.0, 0), "1");
}

} // namespace
} // namespace isim
