/**
 * @file
 * Tests of the simulation loop: idle accounting, context switching,
 * trace capture, and exact replayability of a captured trace against
 * a fresh memory system (which also proves the front end presents
 * references in a deterministic global order).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/base/logging.hh"
#include "src/core/machine.hh"
#include "src/core/simulation.hh"
#include "src/cpu/inorder.hh"
#include "src/trace/trace_io.hh"

namespace isim {
namespace {

WorkloadParams
testWorkload(std::uint64_t txns)
{
    WorkloadParams p;
    p.branches = 8;
    p.accountsPerBranch = 10000;
    p.blockBufferBytes = 64 * mib;
    p.transactions = txns;
    p.warmupTransactions = txns / 3;
    return p;
}

MachineConfig
config(unsigned cpus, std::uint64_t txns = 60)
{
    MachineConfig cfg;
    cfg.name = "sim-test";
    cfg.numCpus = cpus;
    cfg.l2 = CacheGeometry{512 * kib, 2, 64};
    cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.workload = testWorkload(txns);
    return cfg;
}

TEST(Simulation, IdleAccountedWhenCpuStarves)
{
    setQuiet(true);
    // One server per CPU: during its commit wait (250us) and think
    // time nothing else can run, so the CPU must log idle time.
    MachineConfig cfg = config(1);
    cfg.workload.serversPerCpu = 1;
    Machine m(cfg);
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_GT(r.cpu.idle, 0u);
    // With 8 servers the same CPU should be busier (less idle per txn).
    MachineConfig cfg8 = config(1);
    Machine m8(cfg8);
    const RunResult r8 = m8.run(ExecMode::Timing);
    const double idle1 = static_cast<double>(r.cpu.idle) /
                         static_cast<double>(r.transactions);
    const double idle8 = static_cast<double>(r8.cpu.idle) /
                         static_cast<double>(r8.transactions);
    EXPECT_LT(idle8, idle1);
}

TEST(Simulation, ContextSwitchesHappen)
{
    setQuiet(true);
    Machine m(config(2));
    m.run(ExecMode::Timing);
    // At least one dispatch per committed transaction (commit blocks).
    EXPECT_GT(m.sched().contextSwitches(),
              m.engine().committedTransactions());
}

TEST(Simulation, MoreServersGiveMoreThroughput)
{
    setQuiet(true);
    MachineConfig one = config(1, 80);
    one.workload.serversPerCpu = 1;
    MachineConfig eight = config(1, 80);
    const RunResult r1 = Machine(one).run(ExecMode::Timing);
    const RunResult r8 = Machine(eight).run(ExecMode::Timing);
    // The paper runs 8 servers per CPU to hide I/O latency.
    EXPECT_GT(r8.tps(), r1.tps() * 2);
}

TEST(Simulation, TraceCaptureAndExactReplay)
{
    setQuiet(true);
    const std::string path =
        ::testing::TempDir() + "/isim_sim_replay.trc";

    // No warm-up, so the machine's counted misses cover every traced
    // reference.
    MachineConfig cfg = config(2, 40);
    cfg.workload.warmupTransactions = 0;

    RunResult live;
    {
        Machine m(cfg);
        TraceWriter writer(path);
        live = m.run(ExecMode::Timing, ExecMode::Timing, &writer);
        EXPECT_GT(writer.records(), 1000u);
    }

    // Replay the trace against a fresh memory system with the same
    // configuration: the protocol is deterministic in the reference
    // order, so every counter must match the live run exactly.
    MemSysConfig msc;
    msc.numNodes = cfg.numCpus;
    msc.l2 = cfg.l2;
    msc.lat = cfg.latencies();
    msc.nodeShift = cfg.nodeShift;
    MemorySystem replay(msc);
    TraceReader reader(path);
    NodeId cpu;
    MemRef ref;
    while (reader.next(cpu, ref)) {
        const RefType type = ref.kind == RefKind::Instr ? RefType::IFetch
                             : ref.kind == RefKind::Load
                                 ? RefType::Load
                                 : RefType::Store;
        replay.access(cpu, type, ref.paddr);
    }
    const NodeProtocolStats replayed = replay.aggregateStats();
    EXPECT_EQ(replayed.totalL2Misses(), live.misses.totalL2Misses());
    EXPECT_EQ(replayed.dataRemoteDirty, live.misses.dataRemoteDirty);
    EXPECT_EQ(replayed.dataRemoteClean, live.misses.dataRemoteClean);
    EXPECT_EQ(replayed.invalidationsSent, live.misses.invalidationsSent);
    EXPECT_EQ(replayed.writebacksToHome, live.misses.writebacksToHome);
    replay.checkInvariants();
    std::remove(path.c_str());
}

TEST(Simulation, WallTimeIsMaxOfCpuClocks)
{
    setQuiet(true);
    Machine m(config(4, 50));
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_GT(r.wallTime, 0u);
    // Wall time of the window cannot exceed summed non-idle + idle.
    EXPECT_LE(r.wallTime, r.cpu.nonIdle() + r.cpu.idle + 1);
}

/** A process that event-blocks forever; nothing will ever wake it. */
class StuckProcess : public Process
{
  public:
    StuckProcess() : Process("stuck", /*pid=*/900, /*cpu=*/0) {}
    ProcessStep step(Tick) override
    {
        ProcessStep s;
        s.kind = StepKind::BlockEvent;
        return s;
    }
};

TEST(Simulation, DeadlockPanicsInsteadOfSpinning)
{
    setQuiet(true);
    // Borrow a machine's kernel/engine/memory system but drive the
    // loop with a private scheduler whose only process event-blocks
    // with no waker: every CPU is stalled yet live work remains — a
    // workload deadlock, which must panic rather than spin or return.
    Machine m(config(1, 10));
    Scheduler sched(1);
    sched.add(std::make_unique<StuckProcess>());
    std::vector<std::unique_ptr<CpuCore>> cpus;
    cpus.push_back(std::make_unique<InOrderCpu>(0, m.memSys()));
    Simulation sim(sched, m.kernel(), m.engine(), cpus, SimOptions{});
    const ScopedPanicThrow guard;
    EXPECT_THROW(sim.runUntilMeasurementDone(), PanicError);
}

TEST(Simulation, AllProcessesExitingEndsTheLoopCleanly)
{
    setQuiet(true);
    // The other arm of the stalled-loop branch: the only process
    // retires, so the loop must simply return (no panic) even though
    // the workload never reaches its transaction target.
    class OneShotProcess : public Process
    {
      public:
        OneShotProcess() : Process("oneshot", /*pid=*/901, /*cpu=*/0) {}
        ProcessStep step(Tick) override
        {
            ProcessStep s;
            s.kind = StepKind::Done;
            return s;
        }
    };
    Machine m(config(1, 10));
    Scheduler sched(1);
    sched.add(std::make_unique<OneShotProcess>());
    std::vector<std::unique_ptr<CpuCore>> cpus;
    cpus.push_back(std::make_unique<InOrderCpu>(0, m.memSys()));
    Simulation sim(sched, m.kernel(), m.engine(), cpus, SimOptions{});
    sim.runUntilMeasurementDone();
    EXPECT_EQ(sched.finished(), 1u);
}

TEST(Simulation, MaxStepsBackstopFires)
{
    setQuiet(true);
    // 500 steps cannot complete the workload; the runaway backstop
    // must trip instead of letting the loop run unbounded.
    Machine m(config(1, 30));
    m.setMaxSteps(500);
    const ScopedPanicThrow guard;
    EXPECT_THROW(m.run(ExecMode::Timing), PanicError);
}

} // namespace
} // namespace isim
