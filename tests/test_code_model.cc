/**
 * @file
 * Unit tests for the synthetic code-footprint model.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/oltp/code_model.hh"

namespace isim {
namespace {

CodeModelParams
params()
{
    CodeModelParams p;
    p.vbase = 0x1000000;
    p.textBytes = 64 * kib;
    p.numFunctions = 16;
    p.seed = 99;
    return p;
}

VmConfig
vmConfig()
{
    VmConfig c;
    c.homeMap = HomeMap{31, 1};
    return c;
}

TEST(CodeModel, FunctionsTileTheTextExactly)
{
    CodeModel code(params());
    ASSERT_EQ(code.numFunctions(), 16u);
    std::uint64_t lines = 0;
    for (unsigned f = 0; f < code.numFunctions(); ++f) {
        EXPECT_GE(code.functionLines(f), 1u);
        lines += code.functionLines(f);
    }
    EXPECT_EQ(lines * 64, params().textBytes);
}

TEST(CodeModel, FunctionsAreContiguousAndOrdered)
{
    CodeModel code(params());
    Addr expected = params().vbase;
    for (unsigned f = 0; f < code.numFunctions(); ++f) {
        EXPECT_EQ(code.functionVaddr(f), expected);
        expected += code.functionLines(f) * 64;
    }
}

TEST(CodeModel, InvokeStaysInsideFunction)
{
    CodeModel code(params());
    VirtualMemory vm(vmConfig());
    Rng rng(5);
    for (unsigned f = 0; f < code.numFunctions(); ++f) {
        std::deque<MemRef> out;
        const std::uint64_t instrs =
            code.invoke(f, rng, vm, 0, false, out);
        EXPECT_GT(instrs, 0u);
        ASSERT_FALSE(out.empty());
        EXPECT_LE(out.size(), code.functionLines(f));
        std::uint64_t sum = 0;
        for (const MemRef &r : out) {
            EXPECT_EQ(r.kind, RefKind::Instr);
            EXPECT_FALSE(r.kernel);
            sum += r.instrCount;
        }
        EXPECT_EQ(sum, instrs);
    }
}

TEST(CodeModel, LinesWalkSequentially)
{
    CodeModelParams p = params();
    p.fullPathProbability = 1.0; // always the full function
    CodeModel code(p);
    VirtualMemory vm(vmConfig());
    Rng rng(5);
    std::deque<MemRef> out;
    code.invoke(3, rng, vm, 0, false, out);
    EXPECT_EQ(out.size(), code.functionLines(3));
    // Instruction chunk count per line is deterministic.
    std::deque<MemRef> again;
    code.invoke(3, rng, vm, 0, false, again);
    ASSERT_EQ(again.size(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].instrCount, again[i].instrCount);
}

TEST(CodeModel, PartialPathsShortenInvocations)
{
    CodeModelParams p = params();
    p.fullPathProbability = 0.0;
    CodeModel code(p);
    VirtualMemory vm(vmConfig());
    Rng rng(5);
    // Find a function with more than 2 lines.
    unsigned f = 0;
    while (code.functionLines(f) < 3)
        ++f;
    std::set<std::size_t> lengths;
    for (int i = 0; i < 200; ++i) {
        std::deque<MemRef> out;
        code.invoke(f, rng, vm, 0, false, out);
        lengths.insert(out.size());
        EXPECT_GE(out.size(), 1u);
        EXPECT_LE(out.size(), code.functionLines(f));
    }
    EXPECT_GT(lengths.size(), 1u);
}

TEST(CodeModel, MeanInstrPerInvocationBrackets)
{
    CodeModel code(params());
    VirtualMemory vm(vmConfig());
    Rng rng(5);
    const unsigned f = 2;
    double sum = 0.0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        std::deque<MemRef> out;
        sum += static_cast<double>(
            code.invoke(f, rng, vm, 0, false, out));
    }
    EXPECT_NEAR(sum / trials, code.meanInstrPerInvocation(f),
                code.meanInstrPerInvocation(f) * 0.1);
}

/** Counting mixer used to verify the per-line hook. */
class CountingMixer : public LineDataEmitter
{
  public:
    void
    emitLineData(Rng &, std::deque<MemRef> &out) override
    {
        ++calls;
        out.push_back(loadRef(0xdead000));
    }
    int calls = 0;
};

TEST(CodeModel, MixerCalledPerLine)
{
    CodeModelParams p = params();
    p.fullPathProbability = 1.0;
    CodeModel code(p);
    VirtualMemory vm(vmConfig());
    Rng rng(5);
    CountingMixer mixer;
    std::deque<MemRef> out;
    code.invoke(4, rng, vm, 0, false, out, &mixer);
    EXPECT_EQ(mixer.calls,
              static_cast<int>(code.functionLines(4)));
    // Chunks and mixer refs interleave.
    EXPECT_EQ(out.size(), 2 * code.functionLines(4));
}

} // namespace
} // namespace isim
