/**
 * @file
 * Unit tests for cache geometry, including the non-power-of-two set
 * counts the paper's 1.25 MB L2 requires.
 */

#include <gtest/gtest.h>

#include "src/mem/geometry.hh"

namespace isim {
namespace {

TEST(Geometry, BasicDerivation)
{
    CacheGeometry g{2 * mib, 8, 64};
    g.validate();
    EXPECT_EQ(g.lines(), 2 * mib / 64);
    EXPECT_EQ(g.sets(), 2 * mib / 64 / 8);
    EXPECT_TRUE(g.pow2Sets());
    EXPECT_EQ(g.lineBits(), 6u);
}

TEST(Geometry, LineAddrSlicing)
{
    CacheGeometry g{1 * mib, 4, 64};
    EXPECT_EQ(g.lineAddr(0), 0u);
    EXPECT_EQ(g.lineAddr(63), 0u);
    EXPECT_EQ(g.lineAddr(64), 1u);
    EXPECT_EQ(g.lineAddr(0x12345678), 0x12345678ull >> 6);
}

TEST(Geometry, SetAndTagRoundTripPow2)
{
    CacheGeometry g{1 * mib, 4, 64};
    for (Addr line : {0ull, 1ull, 4095ull, 4096ull, 999999ull,
                      (1ull << 40) + 12345}) {
        const std::uint64_t set = g.setIndex(line);
        const Addr tag = g.tagOf(line);
        EXPECT_LT(set, g.sets());
        EXPECT_EQ(tag * g.sets() + set, line);
    }
}

TEST(Geometry, NonPow2Sets)
{
    // The paper's Section 6 1.25MB 4-way cache.
    CacheGeometry g{1280 * kib, 4, 64};
    g.validate();
    EXPECT_EQ(g.sets(), 1280 * kib / 64 / 4);
    EXPECT_FALSE(g.pow2Sets());
    for (Addr line : {0ull, 1ull, 5119ull, 5120ull, 123456789ull}) {
        const std::uint64_t set = g.setIndex(line);
        const Addr tag = g.tagOf(line);
        EXPECT_LT(set, g.sets());
        EXPECT_EQ(tag * g.sets() + set, line);
    }
}

TEST(Geometry, DistinctLinesGetDistinctSetTagPairs)
{
    CacheGeometry g{1280 * kib, 4, 64};
    const Addr a = 123456, b = 123457;
    EXPECT_TRUE(g.setIndex(a) != g.setIndex(b) ||
                g.tagOf(a) != g.tagOf(b));
}

TEST(Geometry, ShortNames)
{
    EXPECT_EQ((CacheGeometry{2 * mib, 8, 64}.shortName()), "2M8w");
    EXPECT_EQ((CacheGeometry{8 * mib, 1, 64}.shortName()), "8M1w");
    EXPECT_EQ((CacheGeometry{1280 * kib, 4, 64}.shortName()), "1280K4w");
    EXPECT_EQ((CacheGeometry{64 * kib, 2, 64}.shortName()), "64K2w");
}

TEST(GeometryDeathTest, RejectsBadShapes)
{
    CacheGeometry bad_line{1 * mib, 4, 48};
    EXPECT_DEATH(bad_line.validate(), "");
    CacheGeometry indivisible{1 * mib + 64, 4, 64};
    EXPECT_DEATH(indivisible.validate(), "");
}

} // namespace
} // namespace isim
