/**
 * @file
 * Observability subsystem tests: event-ring wraparound and capacity
 * accounting, timeline-sampler epoch boundary math (partial first and
 * last epochs, rebase after a stats reset), exporter well-formedness
 * (Chrome JSON parses back, CSV headers), the binary capture round
 * trip, and — end to end — that attaching observability to a machine
 * records events without perturbing the simulated results.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/core/machine.hh"
#include "src/obs/event.hh"
#include "src/obs/export.hh"
#include "src/obs/observability.hh"
#include "src/obs/ring.hh"
#include "src/obs/sampler.hh"
#include "src/obs/tracer.hh"

namespace isim {
namespace {

using obs::CounterSnapshot;
using obs::EventKind;
using obs::EventRing;
using obs::TimelineSampler;
using obs::TraceEvent;
using obs::Tracer;

TraceEvent
numberedEvent(std::uint32_t n)
{
    TraceEvent e{};
    e.tick = 10 * n;
    e.arg = n;
    e.kind = EventKind::MissIssued;
    return e;
}

std::vector<std::uint32_t>
ringArgs(const EventRing &ring)
{
    std::vector<std::uint32_t> args;
    ring.forEach([&](const TraceEvent &e) { args.push_back(e.arg); });
    return args;
}

TEST(EventRing, FillsWithoutWrap)
{
    EventRing ring(4);
    for (std::uint32_t i = 0; i < 3; ++i)
        ring.push(numberedEvent(i));
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.pushed(), 3u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ringArgs(ring), (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(EventRing, ExactlyFullKeepsEverything)
{
    EventRing ring(4);
    for (std::uint32_t i = 0; i < 4; ++i)
        ring.push(numberedEvent(i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ringArgs(ring), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(EventRing, WrapKeepsLatestWindow)
{
    EventRing ring(4);
    for (std::uint32_t i = 0; i < 10; ++i)
        ring.push(numberedEvent(i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    // Oldest-to-newest iteration over the retained window.
    EXPECT_EQ(ringArgs(ring), (std::vector<std::uint32_t>{6, 7, 8, 9}));
}

TEST(EventRing, ClearResetsAccounting)
{
    EventRing ring(2);
    for (std::uint32_t i = 0; i < 5; ++i)
        ring.push(numberedEvent(i));
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.pushed(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
    ring.push(numberedEvent(7));
    EXPECT_EQ(ringArgs(ring), (std::vector<std::uint32_t>{7}));
}

TEST(Sampler, GridAnchoredPartialEpochs)
{
    CounterSnapshot counters;
    TimelineSampler s(100, [&] { return counters; });

    counters.committedTxns = 10;
    s.start(250); // mid-grid: first epoch is partial [250, 300)
    EXPECT_FALSE(s.due(299));

    counters.committedTxns = 16;
    EXPECT_TRUE(s.due(300));
    s.advance(455);
    ASSERT_EQ(s.rows().size(), 2u);
    EXPECT_EQ(s.rows()[0].epoch, 2u);
    EXPECT_EQ(s.rows()[0].start, 250u);
    EXPECT_EQ(s.rows()[0].end, 300u);
    EXPECT_EQ(s.rows()[0].delta.committedTxns, 6u);
    // The epoch [300, 400) saw no counter movement: zero-delta row.
    EXPECT_EQ(s.rows()[1].epoch, 3u);
    EXPECT_EQ(s.rows()[1].start, 300u);
    EXPECT_EQ(s.rows()[1].end, 400u);
    EXPECT_EQ(s.rows()[1].delta.committedTxns, 0u);

    counters.committedTxns = 20;
    s.finish(455); // trailing partial epoch [400, 455)
    ASSERT_EQ(s.rows().size(), 3u);
    EXPECT_EQ(s.rows()[2].epoch, 4u);
    EXPECT_EQ(s.rows()[2].start, 400u);
    EXPECT_EQ(s.rows()[2].end, 455u);
    EXPECT_EQ(s.rows()[2].delta.committedTxns, 4u);
    // tps normalizes by the partial extent, not the epoch length.
    EXPECT_DOUBLE_EQ(s.rows()[2].tps(), 4.0 * 1e9 / 55.0);
}

TEST(Sampler, StartOnGridLineIsAFullFirstEpoch)
{
    CounterSnapshot counters;
    TimelineSampler s(100, [&] { return counters; });
    s.start(200);
    counters.committedTxns = 3;
    s.advance(300);
    ASSERT_EQ(s.rows().size(), 1u);
    EXPECT_EQ(s.rows()[0].epoch, 2u);
    EXPECT_EQ(s.rows()[0].start, 200u);
    EXPECT_EQ(s.rows()[0].end, 300u);
}

TEST(Sampler, FinishInsideFirstEpochEmitsOnePartialRow)
{
    CounterSnapshot counters;
    TimelineSampler s(1000, [&] { return counters; });
    s.start(0);
    counters.committedTxns = 2;
    s.finish(40);
    ASSERT_EQ(s.rows().size(), 1u);
    EXPECT_EQ(s.rows()[0].start, 0u);
    EXPECT_EQ(s.rows()[0].end, 40u);
    EXPECT_EQ(s.rows()[0].delta.committedTxns, 2u);
    // finish() is idempotent; later calls add nothing.
    s.finish(90);
    EXPECT_EQ(s.rows().size(), 1u);
}

TEST(Sampler, RebaseAbsorbsStatsReset)
{
    CounterSnapshot counters;
    counters.instructions = 100;
    TimelineSampler s(100, [&] { return counters; });
    s.start(0);
    counters.instructions = 5; // external stats reset went backwards
    s.rebase();
    counters.instructions = 12;
    s.advance(100);
    ASSERT_EQ(s.rows().size(), 1u);
    EXPECT_EQ(s.rows()[0].delta.instructions, 7u);
}

TEST(Sampler, SinceSaturatesOnBackwardsCounters)
{
    CounterSnapshot base, cur;
    base.committedTxns = 50;
    cur.committedTxns = 8; // went backwards: report post-reset value
    base.busy = 10;
    cur.busy = 30;
    const CounterSnapshot d = cur.since(base);
    EXPECT_EQ(d.committedTxns, 8u);
    EXPECT_EQ(d.busy, 20u);
}

TEST(Tracer, CountsPerKindAndNocBytes)
{
    Tracer t(16);
    t.setEnabled(true);
    t.instant(EventKind::TxnBegin, 100, /*cpu=*/1);
    t.span(EventKind::TxnCommit, 100, 50, /*cpu=*/1);
    t.nocHop(EventKind::NocEnqueue, 120, /*src=*/0, /*dst=*/2, 16, 0);
    t.nocHop(EventKind::NocDequeue, 140, /*src=*/0, /*dst=*/2, 16, 0);
    t.nocHop(EventKind::NocEnqueue, 150, /*src=*/2, /*dst=*/0, 80, 0);
    EXPECT_EQ(t.count(EventKind::TxnBegin), 1u);
    EXPECT_EQ(t.count(EventKind::TxnCommit), 1u);
    EXPECT_EQ(t.count(EventKind::NocEnqueue), 2u);
    EXPECT_EQ(t.count(EventKind::NocDequeue), 1u);
    EXPECT_EQ(t.count(EventKind::MissIssued), 0u);
    // Only enqueues add payload bytes (dequeue is the same message).
    EXPECT_EQ(t.nocBytes(), 96u);
    t.clear();
    EXPECT_EQ(t.count(EventKind::TxnCommit), 0u);
    EXPECT_EQ(t.nocBytes(), 0u);
    EXPECT_EQ(t.ring().size(), 0u);
}

TEST(Exporters, ChromeTraceParsesBack)
{
    std::vector<TraceEvent> events;
    for (unsigned k = 0; k < obs::numEventKinds; ++k) {
        TraceEvent e{};
        e.tick = 1000 * (k + 1);
        e.dur = k % 2 == 0 ? 500 : 0;
        e.cpu = static_cast<std::uint16_t>(k % 4);
        e.kind = static_cast<EventKind>(k);
        e.cls = static_cast<std::uint8_t>(k);
        e.arg = k;
        e.addr = 0x1000 + 64 * k;
        events.push_back(e);
    }
    std::ostringstream os;
    obs::writeChromeTrace(os, events, /*dropped=*/5);
    const std::string text = os.str();
    std::string err;
    EXPECT_TRUE(jsonValidate(text, &err)) << err;
    // Span events carry a duration; instants are marked as such.
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
    // Transaction events land on per-server tracks; latch events keep
    // their kind name.
    EXPECT_NE(text.find("txn pid"), std::string::npos);
    EXPECT_NE(text.find("LatchAcquire"), std::string::npos);
}

TEST(Exporters, ChromeTraceOfEmptyCaptureIsValid)
{
    std::ostringstream os;
    obs::writeChromeTrace(os, {}, 0);
    std::string err;
    EXPECT_TRUE(jsonValidate(os.str(), &err)) << err;
}

TEST(Exporters, CsvHeaders)
{
    EXPECT_EQ(std::string(obs::timelineCsvHeader()).rfind("epoch,", 0),
              0u);

    CounterSnapshot counters;
    TimelineSampler s(100, [&] { return counters; });
    s.start(0);
    counters.committedTxns = 1;
    s.finish(150);
    std::ostringstream os;
    obs::writeTimelineCsv(os, s);
    std::istringstream lines(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, obs::timelineCsvHeader());
    std::size_t rows = 0;
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, s.rows().size());

    std::ostringstream ev;
    obs::writeEventCsv(ev, {numberedEvent(1)});
    EXPECT_EQ(ev.str().rfind("tick_ns,dur_ns,kind,cat,", 0), 0u);
}

TEST(Exporters, CaptureRoundTripAfterWrap)
{
    Tracer t(8);
    t.setEnabled(true);
    for (std::uint32_t i = 0; i < 12; ++i) {
        t.instant(EventKind::LatchAcquire, 10 * i,
                  static_cast<std::uint16_t>(i % 3), 0, i, 0x40 * i);
    }
    const std::string path =
        testing::TempDir() + "/isim_capture_test.bin";
    obs::writeCapture(path, t);

    obs::CaptureHeader header;
    std::vector<TraceEvent> events;
    std::string err;
    ASSERT_TRUE(obs::readCapture(path, header, events, err)) << err;
    EXPECT_EQ(header.count, 8u);
    EXPECT_EQ(header.pushed, 12u);
    EXPECT_EQ(header.capacity, 8u);
    ASSERT_EQ(events.size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(events[i].arg, i + 4) << i; // oldest retained first
        EXPECT_EQ(events[i].tick, 10u * (i + 4));
        EXPECT_EQ(events[i].kind, EventKind::LatchAcquire);
    }
    EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(Exporters, ReadCaptureRejectsGarbage)
{
    const std::string path =
        testing::TempDir() + "/isim_capture_garbage.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a capture file, not even close......";
    }
    obs::CaptureHeader header;
    std::vector<TraceEvent> events;
    std::string err;
    EXPECT_FALSE(obs::readCapture(path, header, events, err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(std::remove(path.c_str()), 0);

    err.clear();
    EXPECT_FALSE(obs::readCapture(testing::TempDir() + "/nonexistent.bin",
                                  header, events, err));
    EXPECT_FALSE(err.empty());
}

// ---- End-to-end: observed machine runs ----

WorkloadParams
testWorkload(std::uint64_t txns = 60)
{
    WorkloadParams p;
    p.branches = 8;
    p.accountsPerBranch = 10000;
    p.blockBufferBytes = 64 * mib;
    p.transactions = txns;
    p.warmupTransactions = txns / 3;
    return p;
}

MachineConfig
mpConfig(std::uint64_t txns = 60)
{
    MachineConfig cfg;
    cfg.name = "test-obs-mp";
    cfg.numCpus = 4;
    cfg.l2 = CacheGeometry{1 * mib, 4, 64};
    cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.workload = testWorkload(txns);
    return cfg;
}

obs::ObsConfig
observeEverything()
{
    obs::ObsConfig cfg;
    // Non-empty paths make the bundle build its sampler; the test
    // never calls writeOutputs(), so nothing is written to disk.
    cfg.traceOutPath = "unused.json";
    cfg.timelineOutPath = "unused.csv";
    cfg.epochTicks = 200000; // 0.2 ms: several epochs per test run
    cfg.ringCapacity = 1u << 16;
    return cfg;
}

TEST(ObservedMachine, TracingDoesNotPerturbResults)
{
    setQuiet(true);
    Machine plain(mpConfig());
    const RunResult a = plain.run(ExecMode::Timing);

    Machine observed(mpConfig());
    obs::Observability o(observeEverything());
    observed.attachObservability(&o);
    const RunResult b = observed.run(ExecMode::Timing);

    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.wallTime, b.wallTime);
    EXPECT_EQ(a.cpu.instructions, b.cpu.instructions);
    EXPECT_EQ(a.cpu.busy, b.cpu.busy);
    EXPECT_EQ(a.cpu.idle, b.cpu.idle);
    EXPECT_EQ(a.cpu.kernelTime, b.cpu.kernelTime);
    EXPECT_EQ(a.misses.totalL2Misses(), b.misses.totalL2Misses());
    EXPECT_EQ(a.misses.dataRemoteClean, b.misses.dataRemoteClean);
    EXPECT_EQ(a.misses.dataRemoteDirty, b.misses.dataRemoteDirty);
    EXPECT_EQ(a.misses.invalidationsSent, b.misses.invalidationsSent);
    // Quantiles are doubles that may be NaN (unresolvable); NaN on
    // both sides counts as equal here.
    const auto sameLat = [](double x, double y) {
        return (std::isnan(x) && std::isnan(y)) || x == y;
    };
    EXPECT_TRUE(sameLat(a.txnLatP50Us, b.txnLatP50Us));
    EXPECT_TRUE(sameLat(a.txnLatP95Us, b.txnLatP95Us));
    EXPECT_TRUE(sameLat(a.txnLatP99Us, b.txnLatP99Us));
    EXPECT_DOUBLE_EQ(a.txnLatMeanUs, b.txnLatMeanUs);
    EXPECT_EQ(a.dbConsistent, b.dbConsistent);
}

TEST(ObservedMachine, RecordsAllEventFamilies)
{
    setQuiet(true);
    Machine m(mpConfig());
    obs::Observability o(observeEverything());
    m.attachObservability(&o);
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_TRUE(r.dbConsistent);

    // The timeline covers the whole run in contiguous epochs.
    ASSERT_NE(o.sampler(), nullptr);
    const auto &rows = o.sampler()->rows();
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows.front().start, 0u);
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].start, rows[i - 1].end);
    std::uint64_t timeline_txns = 0;
    for (const auto &row : rows)
        timeline_txns += row.delta.committedTxns;
    // The commit counter is cumulative across the warm-up boundary
    // (the rebase only absorbs the slice since the last boundary), so
    // the timeline holds at least every measured commit and at most
    // the warm-up plus measured total.
    EXPECT_GE(timeline_txns, r.transactions);
    EXPECT_LE(timeline_txns,
              r.transactions + mpConfig().workload.warmupTransactions);

#ifdef ISIM_OBS
    const Tracer &t = o.tracer();
    EXPECT_GT(t.count(EventKind::MissIssued), 0u);
    EXPECT_GT(t.count(EventKind::MissCompleted), 0u);
    EXPECT_GT(t.count(EventKind::DirRead), 0u);
    EXPECT_GT(t.count(EventKind::NocEnqueue), 0u);
    EXPECT_EQ(t.count(EventKind::NocEnqueue),
              t.count(EventKind::NocDequeue));
    EXPECT_GT(t.nocBytes(), 0u);
    EXPECT_GT(t.count(EventKind::LatchAcquire), 0u);
    EXPECT_GT(t.count(EventKind::TxnBegin), 0u);
    EXPECT_GT(t.count(EventKind::TxnCommit), 0u);
    EXPECT_GT(t.count(EventKind::CtxSwitch), 0u);

    // The full capture exports to well-formed Chrome JSON.
    std::ostringstream os;
    obs::writeChromeTrace(os, t);
    std::string err;
    EXPECT_TRUE(jsonValidate(os.str(), &err)) << err;
#endif
}

TEST(ObservedMachine, UniprocessorHasNoNocTraffic)
{
    setQuiet(true);
    MachineConfig cfg = mpConfig();
    cfg.name = "test-obs-uni";
    cfg.numCpus = 1;
    Machine m(cfg);
    obs::Observability o(observeEverything());
    m.attachObservability(&o);
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_TRUE(r.dbConsistent);
#ifdef ISIM_OBS
    EXPECT_EQ(o.tracer().count(EventKind::NocEnqueue), 0u);
    EXPECT_GT(o.tracer().count(EventKind::MissCompleted), 0u);
#endif
}

} // namespace
} // namespace isim
