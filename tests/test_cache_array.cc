/**
 * @file
 * Unit and property tests for the set-associative tag array,
 * including a randomized cross-check against a reference LRU model.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/base/random.hh"
#include "src/mem/cache_array.hh"

namespace isim {
namespace {

TEST(CacheArray, MissOnEmpty)
{
    CacheArray array(CacheGeometry{8 * kib, 2, 64});
    EXPECT_EQ(array.findLine(0), nullptr);
    EXPECT_EQ(array.validLines(), 0u);
}

TEST(CacheArray, AllocateThenFind)
{
    CacheArray array(CacheGeometry{8 * kib, 2, 64});
    Victim v;
    array.allocate(100, LineState::Shared, v);
    EXPECT_FALSE(v.valid);
    CacheLine *line = array.findLine(100);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, LineState::Shared);
    EXPECT_EQ(array.lineAddrOf(*line), 100u);
    EXPECT_EQ(array.validLines(), 1u);
}

TEST(CacheArray, LruVictimSelection)
{
    // 2-way, map three conflicting lines to the same set.
    const CacheGeometry g{8 * kib, 2, 64};
    CacheArray array(g);
    const std::uint64_t sets = g.sets();
    const Addr a = 5, b = 5 + sets, c = 5 + 2 * sets;

    Victim v;
    array.allocate(a, LineState::Shared, v);
    array.allocate(b, LineState::Modified, v);
    EXPECT_FALSE(v.valid);

    // Touch `a` so `b` becomes LRU.
    array.touch(*array.findLine(a));
    array.allocate(c, LineState::Shared, v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, b);
    EXPECT_EQ(v.state, LineState::Modified);
    EXPECT_NE(array.findLine(a), nullptr);
    EXPECT_EQ(array.findLine(b), nullptr);
    EXPECT_NE(array.findLine(c), nullptr);
}

TEST(CacheArray, InvalidateFreesWay)
{
    CacheArray array(CacheGeometry{8 * kib, 2, 64});
    Victim v;
    array.allocate(1, LineState::Shared, v);
    array.invalidate(*array.findLine(1));
    EXPECT_EQ(array.findLine(1), nullptr);
    EXPECT_EQ(array.validLines(), 0u);
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    CacheArray array(CacheGeometry{8 * kib, 2, 64});
    Victim v;
    array.allocate(1, LineState::Shared, v);
    array.allocate(2, LineState::Modified, v);
    std::map<Addr, LineState> seen;
    array.forEachValid([&](Addr line, const CacheLine &cl) {
        seen[line] = cl.state;
    });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[1], LineState::Shared);
    EXPECT_EQ(seen[2], LineState::Modified);
}

TEST(CacheArrayDeathTest, DoubleAllocatePanics)
{
    CacheArray array(CacheGeometry{8 * kib, 2, 64});
    Victim v;
    array.allocate(7, LineState::Shared, v);
    EXPECT_DEATH(array.allocate(7, LineState::Shared, v),
                 "already-resident");
}

/**
 * Reference model: per-set LRU lists, checked against the array under
 * a long random access/allocate/invalidate workload.
 */
class ReferenceLru
{
  public:
    explicit ReferenceLru(const CacheGeometry &g) : geom_(g) {}

    /** Returns true on hit (and refreshes recency). */
    bool
    access(Addr line)
    {
        auto &set = sets_[geom_.setIndex(line)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == line) {
                set.erase(it);
                set.push_front(line);
                return true;
            }
        }
        return false;
    }

    /** Allocates; returns victim line or -1. */
    std::int64_t
    allocate(Addr line)
    {
        auto &set = sets_[geom_.setIndex(line)];
        std::int64_t victim = -1;
        if (set.size() == geom_.assoc) {
            victim = static_cast<std::int64_t>(set.back());
            set.pop_back();
        }
        set.push_front(line);
        return victim;
    }

    void
    invalidate(Addr line)
    {
        auto &set = sets_[geom_.setIndex(line)];
        set.remove(line);
    }

  private:
    CacheGeometry geom_;
    std::unordered_map<std::uint64_t, std::list<Addr>> sets_;
};

class CacheArrayProperty
    : public ::testing::TestWithParam<CacheGeometry>
{
};

TEST_P(CacheArrayProperty, MatchesReferenceLru)
{
    const CacheGeometry g = GetParam();
    CacheArray array(g);
    ReferenceLru ref(g);
    Rng rng(0xA11CE + g.assoc + g.sizeBytes);

    // Address pool ~4x the cache to force plenty of evictions.
    const std::uint64_t pool = g.lines() * 4;

    for (int step = 0; step < 20000; ++step) {
        const Addr line = rng.below(pool);
        const int op = static_cast<int>(rng.below(10));
        if (op == 0) {
            // Invalidate in both.
            if (CacheLine *cl = array.findLine(line))
                array.invalidate(*cl);
            ref.invalidate(line);
            continue;
        }
        CacheLine *cl = array.findLine(line);
        const bool ref_hit = ref.access(line);
        ASSERT_EQ(cl != nullptr, ref_hit) << "step " << step;
        if (cl != nullptr) {
            array.touch(*cl);
        } else {
            Victim v;
            array.allocate(line, LineState::Shared, v);
            const std::int64_t ref_victim = ref.allocate(line);
            ASSERT_EQ(v.valid, ref_victim >= 0) << "step " << step;
            if (v.valid) {
                ASSERT_EQ(static_cast<std::int64_t>(v.lineAddr),
                          ref_victim)
                    << "step " << step;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArrayProperty,
    ::testing::Values(CacheGeometry{4 * kib, 1, 64},
                      CacheGeometry{8 * kib, 2, 64},
                      CacheGeometry{16 * kib, 4, 64},
                      CacheGeometry{32 * kib, 8, 64},
                      CacheGeometry{16 * kib, 16, 64},
                      // non-power-of-two set count (1.25M-style)
                      CacheGeometry{20 * kib, 4, 64}),
    [](const ::testing::TestParamInfo<CacheGeometry> &tpi) {
        return tpi.param.shortName();
    });

/** Fully-associative LRU has the stack (inclusion) property. */
TEST(CacheArray, FullyAssocStackProperty)
{
    const unsigned small_ways = 16, big_ways = 32;
    CacheArray small(
        CacheGeometry{small_ways * 64ull, small_ways, 64});
    CacheArray big(CacheGeometry{big_ways * 64ull, big_ways, 64});
    Rng rng(77);
    std::uint64_t small_hits = 0, big_hits = 0;
    for (int i = 0; i < 30000; ++i) {
        const Addr line = rng.zipf(256, 0.6);
        for (auto *array : {&small, &big}) {
            if (CacheLine *cl = array->findLine(line)) {
                array->touch(*cl);
                (array == &small ? small_hits : big_hits) += 1;
                // Stack property: a small-cache hit implies a
                // big-cache hit.
                if (array == &small) {
                    ASSERT_NE(big.findLine(line), nullptr);
                }
            } else {
                Victim v;
                array->allocate(line, LineState::Shared, v);
            }
        }
    }
    EXPECT_LE(small_hits, big_hits);
}

} // namespace
} // namespace isim
