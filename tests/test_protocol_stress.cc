/**
 * @file
 * Randomized stress test of the coherence protocol. After *every*
 * access the coherence safety properties are checked against the
 * caches directly (single-writer / no-stale-sharers), and the full
 * directory-vs-cache invariant checker runs periodically. Runs across
 * a parameter sweep of node counts, cache shapes, and RAC presence.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/base/random.hh"
#include "src/coherence/protocol.hh"

namespace isim {
namespace {

struct StressParam
{
    unsigned nodes;
    unsigned l2Assoc;
    bool rac;
};

class ProtocolStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(ProtocolStress, SafetyUnderRandomTraffic)
{
    const StressParam param = GetParam();
    MemSysConfig cfg;
    cfg.numNodes = param.nodes;
    cfg.l1Size = 512;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{2 * kib, param.l2Assoc, 64};
    cfg.racEnabled = param.rac;
    cfg.rac = CacheGeometry{4 * kib, 2, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    MemorySystem ms(cfg);

    Rng rng(0xD00D + param.nodes * 131 + param.l2Assoc +
            (param.rac ? 7 : 0));

    // A small, heavily contended line pool spread over all homes.
    const unsigned pool_lines = 96;
    auto pick_addr = [&]() {
        const std::uint64_t idx = rng.below(pool_lines);
        const NodeId home =
            static_cast<NodeId>(idx % param.nodes);
        return (static_cast<Addr>(home) << 31) |
               ((idx / param.nodes) << 6);
    };

    for (int step = 0; step < 30000; ++step) {
        const NodeId node = static_cast<NodeId>(rng.below(param.nodes));
        const Addr addr = pick_addr();
        const int what = static_cast<int>(rng.below(10));
        const RefType type = what < 5   ? RefType::Load
                             : what < 9 ? RefType::Store
                                        : RefType::Load;
        ms.access(node, type, addr);

        // Safety: if any node holds the line owned, nobody else may
        // hold it at all; if anyone holds it Shared, nobody may hold
        // it owned.
        const Addr line = addr >> 6;
        int owners = 0, sharers = 0;
        for (NodeId n = 0; n < param.nodes; ++n) {
            const CacheLine *l2line = ms.l2(n).probe(line);
            LineState node_state =
                l2line ? l2line->state : LineState::Invalid;
            if (param.rac) {
                if (const CacheLine *r =
                        ms.rac(n).cache().probe(line)) {
                    if (r->state > node_state)
                        node_state = r->state;
                }
            }
            if (lineOwned(node_state))
                ++owners;
            else if (node_state == LineState::Shared)
                ++sharers;
        }
        ASSERT_LE(owners, 1) << "two owners at step " << step;
        ASSERT_FALSE(owners == 1 && sharers > 0)
            << "owner plus sharers at step " << step;

        if (step % 2000 == 0)
            ms.checkInvariants();
    }
    ms.checkInvariants();

    // Sanity: the run must have produced real coherence activity.
    const NodeProtocolStats total = ms.aggregateStats();
    if (param.nodes > 1) {
        EXPECT_GT(total.dataRemoteDirty, 0u);
        EXPECT_GT(total.invalidationsSent, 0u);
    }
    EXPECT_GT(total.totalL2Misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolStress,
    ::testing::Values(StressParam{1, 2, false}, StressParam{2, 1, false},
                      StressParam{2, 2, true}, StressParam{4, 2, false},
                      StressParam{4, 4, true}, StressParam{8, 2, false},
                      StressParam{8, 1, true}),
    [](const ::testing::TestParamInfo<StressParam> &tpi) {
        return "n" + std::to_string(tpi.param.nodes) + "_a" +
               std::to_string(tpi.param.l2Assoc) +
               (tpi.param.rac ? "_rac" : "_norac");
    });

} // namespace
} // namespace isim
