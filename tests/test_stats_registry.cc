/**
 * @file
 * Stats-registry and manifest tests: registration and snapshot
 * semantics (live getters, sorted names, reset hooks), name
 * validation, the stats.json manifest round trip (serialize ->
 * jsonParse -> flatten recovers every stat with its value), the
 * flatten/diff regression machinery (injected drift is caught,
 * tolerance forgives it), and — end to end — that a Machine's
 * RunResult snapshot agrees with its legacy aggregate counters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/core/machine.hh"
#include "src/stats/histogram.hh"
#include "src/stats/manifest.hh"
#include "src/stats/registry.hh"

namespace isim {
namespace {

using stats::DiffResult;
using stats::FlatStat;
using stats::Kind;
using stats::Manifest;
using stats::ManifestBar;
using stats::Registry;
using stats::Sample;
using stats::Snapshot;

TEST(Registry, GettersEvaluateLiveState)
{
    std::uint64_t hits = 0;
    double level = 1.5;
    Registry r;
    r.counter("cache.hits", "hits", "refs", [&] { return hits; });
    r.gauge("queue.depth", "depth", "entries", [&] { return level; });
    r.formula("cache.hit_rate", "rate", "ratio",
              [&] { return hits ? 1.0 : 0.0; });
    EXPECT_EQ(r.size(), 3u);

    hits = 42;
    level = 7.25;
    const Snapshot snap = r.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    // Sorted by name.
    EXPECT_EQ(snap[0].name, "cache.hit_rate");
    EXPECT_EQ(snap[1].name, "cache.hits");
    EXPECT_EQ(snap[2].name, "queue.depth");

    const Sample *s = findSample(snap, "cache.hits");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, Kind::Counter);
    EXPECT_EQ(s->u, 42u);
    EXPECT_DOUBLE_EQ(s->number(), 42.0);
    EXPECT_DOUBLE_EQ(findSample(snap, "queue.depth")->d, 7.25);
    EXPECT_DOUBLE_EQ(findSample(snap, "cache.hit_rate")->d, 1.0);
    EXPECT_EQ(findSample(snap, "no.such.stat"), nullptr);
}

TEST(Registry, DistributionSummarizesHistogram)
{
    Histogram h("lat", 10, 10);
    for (int i = 0; i < 90; ++i)
        h.sample(5);
    for (int i = 0; i < 10; ++i)
        h.sample(95);
    Registry r;
    r.distribution("txn.latency", "latency", "us",
                   [&]() -> const Histogram & { return h; });

    const Snapshot snap = r.snapshot();
    const Sample *s = findSample(snap, "txn.latency");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, Kind::Distribution);
    EXPECT_EQ(s->dist.count, 100u);
    EXPECT_EQ(s->dist.min, 5u);
    EXPECT_EQ(s->dist.max, 95u);
    EXPECT_DOUBLE_EQ(s->dist.p50, 10.0);
    EXPECT_DOUBLE_EQ(s->number(), 100.0);
}

TEST(Registry, ResetRunsEveryHook)
{
    std::uint64_t events = 99;
    Registry r;
    r.counter("x.events", "events", "events", [&] { return events; });
    int hooks = 0;
    r.onReset([&] {
        events = 0;
        ++hooks;
    });
    r.onReset([&] { ++hooks; });
    r.resetAll();
    EXPECT_EQ(hooks, 2);
    EXPECT_EQ(findSample(r.snapshot(), "x.events")->u, 0u);
}

TEST(RegistryDeathTest, RejectsDuplicateName)
{
    setQuiet(true);
    Registry r;
    r.counter("a.b", "first", "events", [] { return 0u; });
    EXPECT_DEATH(
        r.counter("a.b", "second", "events", [] { return 0u; }),
        "duplicate");
}

TEST(RegistryDeathTest, RejectsMalformedName)
{
    setQuiet(true);
    Registry r;
    EXPECT_DEATH(
        r.counter("Upper.Case", "bad", "events", [] { return 0u; }),
        "stat name");
    EXPECT_DEATH(
        r.counter("trailing.", "bad", "events", [] { return 0u; }),
        "stat name");
}

/** A small two-bar manifest with known values. */
Manifest
testManifest()
{
    Manifest m;
    m.figure = "figX";
    m.title = "round-trip fixture";
    for (const char *name : {"bar-a", "bar-b"}) {
        ManifestBar bar;
        bar.name = name;
        Sample c;
        c.name = "cpu.busy";
        c.desc = "busy ticks";
        c.unit = "ticks";
        c.kind = Kind::Counter;
        c.u = name[4] == 'a' ? 123456u : 654321u;
        bar.stats.push_back(c);
        Sample g;
        g.name = "l2.mpki";
        g.desc = "misses per kilo-instruction";
        g.unit = "mpki";
        g.kind = Kind::Formula;
        g.d = 3.25;
        bar.stats.push_back(g);
        m.bars.push_back(bar);
    }
    return m;
}

TEST(Manifest, JsonRoundTripRecoversEveryStat)
{
    const Manifest m = testManifest();
    const std::string doc = stats::manifestToJson(m);

    std::string err;
    EXPECT_TRUE(jsonValidate(doc, &err)) << err;
    JsonValue parsed;
    ASSERT_TRUE(jsonParse(doc, parsed, &err)) << err;
    EXPECT_EQ(parsed.at("schema").text, stats::kManifestSchema);
    EXPECT_EQ(parsed.at("version").number, stats::kManifestVersion);

    const std::vector<FlatStat> flat = stats::flattenManifest(parsed);
    // Every (bar, stat) leaf comes back with its exact value.
    ASSERT_EQ(flat.size(), 4u);
    EXPECT_EQ(flat[0].path, "bar-a/cpu.busy");
    EXPECT_DOUBLE_EQ(flat[0].value, 123456.0);
    EXPECT_EQ(flat[1].path, "bar-a/l2.mpki");
    EXPECT_DOUBLE_EQ(flat[1].value, 3.25);
    EXPECT_EQ(flat[2].path, "bar-b/cpu.busy");
    EXPECT_DOUBLE_EQ(flat[2].value, 654321.0);
    EXPECT_EQ(flat[3].path, "bar-b/l2.mpki");
    EXPECT_DOUBLE_EQ(flat[3].value, 3.25);
}

TEST(Manifest, DistributionFlattensToFields)
{
    Histogram h("lat", 10, 10);
    h.sample(5);
    Manifest m;
    m.figure = "figX";
    m.title = "dist fixture";
    ManifestBar bar;
    bar.name = "bar";
    Registry r;
    r.distribution("txn.latency", "latency", "us",
                   [&]() -> const Histogram & { return h; });
    bar.stats = r.snapshot();
    m.bars.push_back(bar);

    JsonValue parsed;
    std::string err;
    ASSERT_TRUE(jsonParse(stats::manifestToJson(m), parsed, &err))
        << err;
    const std::vector<FlatStat> flat = stats::flattenManifest(parsed);
    const auto has = [&](const char *path) {
        for (const FlatStat &f : flat) {
            if (f.path == path)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has("bar/txn.latency.count"));
    EXPECT_TRUE(has("bar/txn.latency.mean"));
    EXPECT_TRUE(has("bar/txn.latency.p50"));
    // One sample in bucket 0: p99 still resolvable; but an empty
    // histogram's quantiles are null and must NOT appear as leaves.
    Manifest empty = m;
    Histogram none("lat", 10, 10);
    Registry r2;
    r2.distribution("txn.latency", "latency", "us",
                    [&]() -> const Histogram & { return none; });
    empty.bars[0].stats = r2.snapshot();
    ASSERT_TRUE(
        jsonParse(stats::manifestToJson(empty), parsed, &err))
        << err;
    for (const FlatStat &f : stats::flattenManifest(parsed)) {
        EXPECT_EQ(f.path.find("txn.latency.p"), std::string::npos)
            << f.path << " should have been skipped (null quantile)";
    }
}

TEST(ManifestDiff, CatchesInjectedDriftAndRespectsTolerance)
{
    std::vector<FlatStat> a = {{"bar/cpu.busy", 100000.0},
                               {"bar/l2.miss.total", 5000.0},
                               {"bar/oltp.txn.committed", 900.0}};
    std::vector<FlatStat> b = a;
    b[1].value *= 1.01; // inject 1% drift

    const DiffResult strict = stats::diffFlattened(a, b);
    EXPECT_FALSE(strict.clean());
    ASSERT_EQ(strict.diffs.size(), 1u);
    EXPECT_EQ(strict.diffs[0].path, "bar/l2.miss.total");
    EXPECT_NEAR(strict.diffs[0].rel, 0.01, 1e-4);

    // 2% tolerance forgives 1% drift.
    EXPECT_TRUE(stats::diffFlattened(a, b, 0.02).clean());
    // ... but a missing stat is never forgiven.
    std::vector<FlatStat> c(a.begin(), a.end() - 1);
    const DiffResult missing = stats::diffFlattened(a, c, 0.02);
    EXPECT_FALSE(missing.clean());
    ASSERT_EQ(missing.onlyA.size(), 1u);
    EXPECT_EQ(missing.onlyA[0], "bar/oltp.txn.committed");
    EXPECT_TRUE(missing.onlyB.empty());
}

TEST(MachineStats, SnapshotAgreesWithLegacyAggregates)
{
    setQuiet(true);
    MachineConfig cfg;
    cfg.name = "test-stats-registry";
    cfg.numCpus = 2;
    cfg.workload.branches = 4;
    cfg.workload.accountsPerBranch = 10000;
    cfg.workload.transactions = 40;
    cfg.workload.warmupTransactions = 10;

    Machine machine(cfg);
    const RunResult r = machine.run(ExecMode::Timing);
    ASSERT_FALSE(r.stats.empty());

    const auto value = [&](const char *name) {
        const Sample *s = findSample(r.stats, name);
        EXPECT_NE(s, nullptr) << name;
        return s ? s->number() : std::nan("");
    };
    EXPECT_DOUBLE_EQ(value("cpu.instructions"),
                     static_cast<double>(r.cpu.instructions));
    EXPECT_DOUBLE_EQ(value("cpu.busy"),
                     static_cast<double>(r.cpu.busy));
    EXPECT_DOUBLE_EQ(value("l2.miss.total"),
                     static_cast<double>(r.misses.totalL2Misses()));
    EXPECT_DOUBLE_EQ(value("oltp.txn.committed"),
                     static_cast<double>(r.transactions));
    EXPECT_DOUBLE_EQ(value("cpu.exec_time"),
                     static_cast<double>(r.execTime()));
    // NoC accounting is always on: a multi-node run moves messages.
    EXPECT_GT(value("noc.messages"), 0.0);
    EXPECT_GT(value("noc.bytes"), 0.0);
}

} // namespace
} // namespace isim
