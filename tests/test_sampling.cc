/**
 * @file
 * Sampled-simulation tests (docs/SAMPLING.md): the interval-batch
 * estimator's statistical contract (a CI that actually covers the
 * true mean, zero width on constant streams, NaN hygiene), fail-fast
 * rejection of degenerate schedules, bit-identical sampled results
 * across --jobs and across checkpoint save/resume, byte-identical
 * campaign resume for sampled cells, and the accuracy regression the
 * whole feature is sold on — a sampled run's CPI lands within its own
 * 95% CI of the full-timing value, and a CI-aware manifest diff
 * against the exact run exits clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/base/random.hh"
#include "src/campaign/supervisor.hh"
#include "src/core/experiment.hh"
#include "src/core/figures.hh"
#include "src/core/machine.hh"
#include "src/core/report.hh"
#include "src/sample/controller.hh"
#include "src/sample/estimator.hh"
#include "src/sample/spec.hh"
#include "src/stats/manifest.hh"
#include "src/stats/registry.hh"

namespace isim {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------
// Estimator
// ---------------------------------------------------------------------

TEST(Estimator, TCriticalTableMatchesStandardValues)
{
    EXPECT_TRUE(std::isnan(sample::tCritical95(0)));
    EXPECT_NEAR(sample::tCritical95(1), 12.706, 1e-9);
    EXPECT_NEAR(sample::tCritical95(4), 2.776, 1e-9);
    EXPECT_NEAR(sample::tCritical95(30), 2.042, 1e-9);
    // Normal approximation past the table.
    EXPECT_NEAR(sample::tCritical95(31), 1.960, 1e-9);
    EXPECT_NEAR(sample::tCritical95(10000), 1.960, 1e-9);
}

TEST(Estimator, KnownStreamYieldsTextbookMeanSemCi)
{
    const sample::MeanCi mc = sample::meanCi({1, 2, 3, 4, 5});
    EXPECT_EQ(mc.n, 5u);
    EXPECT_DOUBLE_EQ(mc.mean, 3.0);
    // s^2 = 2.5, sem = sqrt(2.5 / 5), ci95 = t(4) * sem.
    EXPECT_NEAR(mc.sem, std::sqrt(0.5), 1e-12);
    EXPECT_NEAR(mc.ci95, 2.776 * std::sqrt(0.5), 1e-12);
}

TEST(Estimator, ConstantStreamHasExactlyZeroWidthCi)
{
    const sample::MeanCi mc =
        sample::meanCi({42.5, 42.5, 42.5, 42.5, 42.5, 42.5});
    EXPECT_EQ(mc.n, 6u);
    EXPECT_DOUBLE_EQ(mc.mean, 42.5);
    // Exactly zero, not merely small: a deterministic per-window
    // value must report a zero-width interval, because diff --ci
    // treats the CI as a hard bound.
    EXPECT_EQ(mc.sem, 0.0);
    EXPECT_EQ(mc.ci95, 0.0);
}

TEST(Estimator, NonFiniteObservationsAreDropped)
{
    const double inf = std::numeric_limits<double>::infinity();
    const sample::MeanCi mc = sample::meanCi({2.0, kNaN, 4.0, inf});
    EXPECT_EQ(mc.n, 2u);
    EXPECT_DOUBLE_EQ(mc.mean, 3.0);
    EXPECT_TRUE(std::isfinite(mc.ci95));
}

TEST(Estimator, DegenerateCountsYieldNaNNotGarbage)
{
    const sample::MeanCi none = sample::meanCi({});
    EXPECT_EQ(none.n, 0u);
    EXPECT_TRUE(std::isnan(none.mean));
    EXPECT_TRUE(std::isnan(none.ci95));

    // One observation has no variance estimate: NaN, never 0 (a zero
    // CI would claim certainty the estimator does not have).
    const sample::MeanCi one = sample::meanCi({7.0});
    EXPECT_EQ(one.n, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 7.0);
    EXPECT_TRUE(std::isnan(one.sem));
    EXPECT_TRUE(std::isnan(one.ci95));

    const sample::MeanCi allNaN = sample::meanCi({kNaN, kNaN});
    EXPECT_EQ(allNaN.n, 0u);
    EXPECT_TRUE(std::isnan(allNaN.mean));
}

TEST(Estimator, CiCoversTrueMeanInAtLeast90Of100Trials)
{
    // The statistical contract: over repeated seeded experiments on a
    // known distribution (uniform [0,1), true mean 0.5), the 95% CI
    // must cover the true mean in >= 90 of 100 trials. Seeds are
    // fixed, so this is deterministic — but the margin below the
    // nominal 95% documents how much slack the t-approximation gets.
    unsigned covered = 0;
    for (std::uint64_t trial = 0; trial < 100; ++trial) {
        Rng rng(mix64(0xc1c0ffee + trial));
        std::vector<double> xs;
        for (int i = 0; i < 24; ++i)
            xs.push_back(rng.uniform());
        const sample::MeanCi mc = sample::meanCi(xs);
        ASSERT_TRUE(std::isfinite(mc.ci95));
        if (std::abs(mc.mean - 0.5) <= mc.ci95)
            ++covered;
    }
    EXPECT_GE(covered, 90u) << "CI coverage collapsed: " << covered
                            << "/100";
}

// ---------------------------------------------------------------------
// Spec validation and plan derivation
// ---------------------------------------------------------------------

TEST(SampleSpec, DegenerateConfigurationsFailFast)
{
    ScopedPanicThrow guard;

    // measure without ff: a "sampled" run that fast-forwards nothing.
    sample::SampleSpec noFf;
    noFf.measure = 10;
    EXPECT_THROW(noFf.validate(), PanicError);

    // ff without measure: sampling knobs with no windows to measure.
    sample::SampleSpec noMeasure;
    noMeasure.ff = 100;
    EXPECT_THROW(noMeasure.validate(), PanicError);

    // A single window has no variance, hence no CI.
    sample::SampleSpec oneWindow;
    oneWindow.ff = 100;
    oneWindow.measure = 10;
    oneWindow.windows = 1;
    EXPECT_THROW(oneWindow.validate(), PanicError);

    // The warm tier is part of the fast-forward; it cannot exceed it.
    sample::SampleSpec longWarm;
    longWarm.ff = 10;
    longWarm.measure = 10;
    longWarm.warm = 11;
    EXPECT_THROW(longWarm.validate(), PanicError);

    // All-defaults (disabled) and a sane spec both pass.
    sample::SampleSpec off;
    off.validate();
    sample::SampleSpec ok;
    ok.ff = 30;
    ok.measure = 10;
    ok.validate();
}

TEST(SamplePlan, DerivesWindowsAndWarmFromTheRun)
{
    sample::SampleSpec spec;
    spec.ff = 6;
    spec.measure = 2;
    const sample::SamplePlan plan = sample::derivePlan(spec, 33);
    EXPECT_EQ(plan.windows, 4u); // 33 / (6 + 2)
    EXPECT_EQ(plan.warm, 2u);    // auto: min(ff, measure)
    EXPECT_EQ(plan.ff, 6u);
    EXPECT_EQ(plan.measure, 2u);
}

TEST(SamplePlan, SchedulesThatCannotFitAreFatal)
{
    ScopedPanicThrow guard;

    // Fewer than 2 windows fit the run.
    sample::SampleSpec tight;
    tight.ff = 10;
    tight.measure = 10;
    EXPECT_THROW(sample::derivePlan(tight, 30), PanicError);

    // An explicit window count that overflows the run.
    sample::SampleSpec over;
    over.ff = 10;
    over.measure = 10;
    over.windows = 4;
    EXPECT_THROW(sample::derivePlan(over, 70), PanicError);
}

// ---------------------------------------------------------------------
// Sampled runs: determinism and reporting
// ---------------------------------------------------------------------

/** Two-CPU small-cache machine; cheap, with coherence live. */
MachineConfig
sampleTestConfig(std::uint64_t seed, std::uint64_t txns = 200,
                 std::uint64_t warmup = 20)
{
    MachineConfig cfg;
    cfg.name = "sample-test";
    cfg.numCpus = 2;
    cfg.l2 = CacheGeometry{512 * kib, 2, 64};
    cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.workload.branches = 8;
    cfg.workload.accountsPerBranch = 10000;
    cfg.workload.blockBufferBytes = 64 * mib;
    cfg.workload.transactions = txns;
    cfg.workload.warmupTransactions = warmup;
    cfg.workload.seed = seed;
    return cfg;
}

sample::SampleSpec
smallSampleSpec()
{
    sample::SampleSpec spec;
    spec.ff = 15;
    spec.measure = 5;
    return spec;
}

TEST(SampledRun, ReportsScheduleCoverageAndPerStatBounds)
{
    setQuiet(true);
    Machine m(sampleTestConfig(7));
    m.runWarmup(ExecMode::Timing);
    sample::SampleController controller(m, smallSampleSpec());
    const RunResult r = controller.run();

    EXPECT_TRUE(r.dbConsistent);
    ASSERT_TRUE(r.sampling.enabled);
    EXPECT_EQ(r.sampling.ff, 15u);
    EXPECT_EQ(r.sampling.measure, 5u);
    EXPECT_EQ(r.sampling.warm, 5u);     // auto: min(ff, measure)
    EXPECT_EQ(r.sampling.windows, 10u); // 200 / (15 + 5)
    EXPECT_EQ(r.sampling.covered, r.sampling.windows * 5u);

    // Every stat of the snapshot carries a bounds entry, sorted so
    // find() can binary-search.
    ASSERT_FALSE(r.sampling.stats.empty());
    for (std::size_t i = 1; i < r.sampling.stats.size(); ++i)
        EXPECT_LT(r.sampling.stats[i - 1].name,
                  r.sampling.stats[i].name);
    const sample::StatCi *cpi = r.sampling.find("cpu.cpi");
    ASSERT_NE(cpi, nullptr);
    EXPECT_TRUE(std::isfinite(cpi->ci95));
    EXPECT_EQ(r.sampling.find("no.such.stat"), nullptr);

    // The expanded committed count is the full run, not the sampled
    // fraction: downstream consumers (figure tables, campaign merge)
    // must not need to know the run was sampled.
    EXPECT_EQ(r.transactions, 200u);
}

/** One-bar figure spec around sampleTestConfig. */
FigureSpec
oneBarSpec(std::uint64_t seed, std::uint64_t txns)
{
    FigureSpec spec;
    spec.id = "test-sampling";
    spec.title = "sampled determinism";
    FigureBar bar;
    bar.config = sampleTestConfig(seed, txns);
    spec.bars.push_back(bar);
    return spec;
}

TEST(SampledRun, JobCountDoesNotChangeTheManifest)
{
    setQuiet(true);
    // Four sampled bars, --jobs 1 vs 4: figure JSON and the stats
    // manifest (sampling blocks included) must be bit-identical. The
    // schedule derives from the workload seed and window index alone,
    // never from scheduling order.
    FigureSpec spec;
    spec.id = "test-sampling-jobs";
    spec.title = "sampled jobs determinism";
    for (const std::uint64_t seed : {3ull, 5ull, 7ull, 11ull}) {
        FigureBar bar;
        bar.config = sampleTestConfig(seed, 60);
        bar.config.name = "seed-" + std::to_string(seed);
        spec.bars.push_back(bar);
    }

    RunOptions options;
    options.verbose = false;
    options.sample = smallSampleSpec();

    options.jobs = 1;
    const FigureResult seq = ExperimentRunner(options).run(spec);
    options.jobs = 4;
    const FigureResult par = ExperimentRunner(options).run(spec);

    EXPECT_EQ(figureToJson(seq), figureToJson(par));
    EXPECT_EQ(figureStatsJson(seq), figureStatsJson(par));

    // The manifest self-identifies as sampled: a sampling block per
    // bar and the schedule echoed in META.
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(figureStatsJson(seq), doc, &err)) << err;
    EXPECT_TRUE(stats::manifestHasSampling(doc));
    const std::vector<stats::BarMetaView> meta =
        stats::manifestMeta(doc);
    ASSERT_EQ(meta.size(), 4u);
    for (const stats::BarMetaView &view : meta) {
        EXPECT_EQ(view.meta.sampleMode, "fixed") << view.bar;
        EXPECT_EQ(view.meta.sampleFf, 15u) << view.bar;
        EXPECT_EQ(view.meta.sampleMeasure, 5u) << view.bar;
    }
    EXPECT_FALSE(stats::flattenCi95(doc).empty());
}

TEST(SampledRun, CheckpointSaveResumeIsBitIdentical)
{
    setQuiet(true);
    const std::string dir =
        ::testing::TempDir() + "/sampling_ckpt";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    RunOptions options;
    options.verbose = false;
    options.jobs = 1;
    options.sample = smallSampleSpec();

    // Cold run, saving the warm image...
    options.saveCkptDir = dir;
    const FigureResult cold =
        ExperimentRunner(options).run(oneBarSpec(7, 100));

    // ...then the same sampled measurement from the restored image.
    options.saveCkptDir.clear();
    options.fromCkptDir = dir;
    const FigureResult restored =
        ExperimentRunner(options).run(oneBarSpec(7, 100));

    EXPECT_EQ(figureToJson(cold), figureToJson(restored));
    EXPECT_EQ(figureStatsJson(cold), figureStatsJson(restored));
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Accuracy: sampled vs full timing (the e2e regression gate)
// ---------------------------------------------------------------------

TEST(SampledAccuracy, CpiWithinOwnCiOfFullTimingRunTwoSeeds)
{
    setQuiet(true);
    // The headline claim, pinned per seed: the sampled CPI estimate
    // must land within its own 95% CI of the full-timing CPI. A
    // small-cache configuration keeps the cold-cache bias (the
    // documented failure mode at large L2 sizes, docs/SAMPLING.md)
    // out of the picture.
    for (const std::uint64_t seed : {7ull, 1234ull}) {
        MachineConfig cfg = sampleTestConfig(seed, 400, 40);
        Machine full(cfg);
        full.runWarmup(ExecMode::Timing);
        const RunResult exact = full.runMeasurement();
        const stats::Sample *cpiExact =
            stats::findSample(exact.stats, "cpu.cpi");
        ASSERT_NE(cpiExact, nullptr);

        sample::SampleSpec spec;
        spec.ff = 40;
        spec.measure = 10;
        Machine sampled(cfg);
        sampled.runWarmup(ExecMode::Timing);
        const RunResult est =
            sample::SampleController(sampled, spec).run();
        ASSERT_EQ(est.sampling.windows, 8u);
        const stats::Sample *cpiEst =
            stats::findSample(est.stats, "cpu.cpi");
        const sample::StatCi *ci = est.sampling.find("cpu.cpi");
        ASSERT_NE(cpiEst, nullptr);
        ASSERT_NE(ci, nullptr);
        ASSERT_TRUE(std::isfinite(ci->ci95));
        EXPECT_GT(ci->ci95, 0.0) << "seed=" << seed;

        EXPECT_LE(std::abs(cpiEst->d - cpiExact->d), ci->ci95)
            << "seed=" << seed << ": sampled CPI " << cpiEst->d
            << " vs exact " << cpiExact->d << " (ci95 " << ci->ci95
            << ")";
    }
}

TEST(SampledAccuracy, CiAwareManifestDiffAgainstExactRunIsClean)
{
    setQuiet(true);
    // What `isim-stat diff A B --ci --tolerance=R` does, at the API
    // layer: the sampled manifest of a bar must compare clean against
    // the exact manifest of the same bar — deltas within the union of
    // the CIs, with the relative tolerance flooring the CI pairs
    // (deterministic counters have zero-width intervals, and sampling
    // carries a small systematic window-boundary bias no CI models).
    RunOptions options;
    options.verbose = false;
    options.jobs = 1;
    const FigureSpec spec = oneBarSpec(7, 400);

    const FigureResult exact = ExperimentRunner(options).run(spec);
    sample::SampleSpec s;
    s.ff = 40;
    s.measure = 10;
    s.warm = 20;
    options.sample = s;
    const FigureResult sampled = ExperimentRunner(options).run(spec);

    JsonValue docA, docB;
    std::string err;
    ASSERT_TRUE(jsonParse(figureStatsJson(exact), docA, &err)) << err;
    ASSERT_TRUE(jsonParse(figureStatsJson(sampled), docB, &err))
        << err;

    // Exact-vs-sampled comparisons drop gauges (mean level over the
    // windows vs end-of-run level — different estimands).
    std::vector<std::string> gauges = stats::manifestGaugePaths(docA);
    const std::vector<std::string> more =
        stats::manifestGaugePaths(docB);
    gauges.insert(gauges.end(), more.begin(), more.end());
    std::sort(gauges.begin(), gauges.end());
    const std::vector<stats::FlatStat> a =
        stats::dropPaths(stats::flattenManifest(docA), gauges);
    const std::vector<stats::FlatStat> b =
        stats::dropPaths(stats::flattenManifest(docB), gauges);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());

    const stats::DiffResult d = stats::diffFlattenedCi(
        a, b, stats::flattenCi95(docA), stats::flattenCi95(docB),
        /*any_sampled=*/true, /*tolerance=*/0.15);
    for (const stats::StatDiff &diff : d.diffs) {
        ADD_FAILURE() << diff.path << ": " << diff.a << " -> "
                      << diff.b << " (rel " << diff.rel << ")";
    }
    EXPECT_TRUE(d.clean());
}

// ---------------------------------------------------------------------
// Campaign: sampled cells resume byte-identically
// ---------------------------------------------------------------------

TEST(SampledCampaign, InterruptedResumeReplaysCacheByteIdentically)
{
    setQuiet(true);
    const std::string base =
        ::testing::TempDir() + "/sampling_campaign";
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base);
    const std::string specPath = base + "/spec.json";
    {
        std::ofstream out(specPath, std::ios::trunc);
        ASSERT_TRUE(out.is_open());
        out << R"({"schema": "isim-campaign", "version": 1,
                   "name": "sampled-e2e", "figures": ["fig10-uni"],
                   "seeds": [5]})";
    }

    campaign::CampaignRunConfig run;
    run.specPath = specPath;
    run.exePath = "unused-in-process";
    run.options.txns = 40;
    run.options.warmup = 10;
    run.options.verbose = false;
    run.options.procs = 1;
    run.options.sample.ff = 15;
    run.options.sample.measure = 5;

    const auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in.is_open()) << path;
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    };

    // Reference: uninterrupted.
    run.outDir = base + "/ref";
    ASSERT_EQ(campaign::runCampaign(run), 0);
    const std::string reference = slurp(run.outDir + "/campaign.json");
    ASSERT_FALSE(reference.empty());

    // Interrupt after one lease, then resume from the cache: the
    // merged manifest must be byte-identical, sampled cells included.
    run.outDir = base + "/resumed";
    run.stopAfter = 1;
    ASSERT_EQ(campaign::runCampaign(run), 3);
    run.stopAfter = -1;
    ASSERT_EQ(campaign::runCampaign(run), 0);
    EXPECT_EQ(slurp(run.outDir + "/campaign.json"), reference);

    // The merged document carries the sampling evidence: a sampling
    // block per cell and the schedule echo in every META.
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(reference, doc, &err)) << err;
    EXPECT_TRUE(stats::manifestHasSampling(doc));
    const std::vector<stats::BarMetaView> meta =
        stats::manifestMeta(doc);
    ASSERT_EQ(meta.size(), 3u);
    for (const stats::BarMetaView &view : meta) {
        EXPECT_EQ(view.meta.status, "ok") << view.bar;
        EXPECT_EQ(view.meta.sampleMode, "fixed") << view.bar;
        EXPECT_EQ(view.meta.sampleFf, 15u) << view.bar;
        EXPECT_EQ(view.meta.sampleMeasure, 5u) << view.bar;
    }
    std::filesystem::remove_all(base);
}

} // namespace
} // namespace isim
