/**
 * @file
 * Tests pinning the Figure 3 latency table to the paper, validating
 * the configuration space, and checking that the component-level
 * model reproduces the table within tolerance.
 */

#include <gtest/gtest.h>

#include "src/timing/component_model.hh"
#include "src/timing/latency_config.hh"

namespace isim {
namespace {

TEST(Figure3, ConservativeBase)
{
    const LatencyTable t = figure3Latencies(
        IntegrationLevel::ConservativeBase, L2Impl::OffchipAssoc);
    EXPECT_EQ(t.l2Hit, 30u);
    EXPECT_EQ(t.local, 150u);
    EXPECT_EQ(t.remote, 225u);
    EXPECT_EQ(t.remoteDirty, 325u);
}

TEST(Figure3, BaseDirectMapped)
{
    const LatencyTable t =
        figure3Latencies(IntegrationLevel::Base, L2Impl::OffchipDirect);
    EXPECT_EQ(t.l2Hit, 25u);
    EXPECT_EQ(t.local, 100u);
    EXPECT_EQ(t.remote, 175u);
    EXPECT_EQ(t.remoteDirty, 275u);
}

TEST(Figure3, BaseAssociative)
{
    const LatencyTable t =
        figure3Latencies(IntegrationLevel::Base, L2Impl::OffchipAssoc);
    EXPECT_EQ(t.l2Hit, 30u);
    EXPECT_EQ(t.local, 100u);
}

TEST(Figure3, L2IntegratedSramAndDram)
{
    const LatencyTable sram =
        figure3Latencies(IntegrationLevel::L2Int, L2Impl::OnchipSram);
    EXPECT_EQ(sram.l2Hit, 15u);
    EXPECT_EQ(sram.local, 100u);
    EXPECT_EQ(sram.remote, 175u);
    EXPECT_EQ(sram.remoteDirty, 275u);

    const LatencyTable dram =
        figure3Latencies(IntegrationLevel::L2Int, L2Impl::OnchipDram);
    EXPECT_EQ(dram.l2Hit, 25u);
    EXPECT_EQ(dram.local, 100u);
}

TEST(Figure3, L2McIntegratedRaisesRemote)
{
    const LatencyTable t =
        figure3Latencies(IntegrationLevel::L2McInt, L2Impl::OnchipSram);
    EXPECT_EQ(t.l2Hit, 15u);
    EXPECT_EQ(t.local, 75u);
    EXPECT_EQ(t.remote, 225u); // the CC/MC separation penalty
    EXPECT_EQ(t.remoteDirty, 275u);
    EXPECT_EQ(t.upgradeRemote, 175u); // control path unpenalized
}

TEST(Figure3, FullIntegration)
{
    const LatencyTable t =
        figure3Latencies(IntegrationLevel::FullInt, L2Impl::OnchipSram);
    EXPECT_EQ(t.l2Hit, 15u);
    EXPECT_EQ(t.local, 75u);
    EXPECT_EQ(t.remote, 150u);
    EXPECT_EQ(t.remoteDirty, 200u);
    EXPECT_EQ(t.racHit, 75u);        // Section 6: same as local
    EXPECT_EQ(t.remoteRacDirty, 250u);
}

TEST(Figure3, ReductionFactorsMatchSection23)
{
    // "full integration reduces L2 hit latency by 1.67 times, local
    // memory latency by 1.33 times, remote latency by 1.17 times and
    // remote dirty latency by 1.38 times".
    const ReductionVsBase r = fullIntegrationReduction();
    EXPECT_NEAR(r.l2Hit, 1.67, 0.01);
    EXPECT_NEAR(r.local, 1.33, 0.01);
    EXPECT_NEAR(r.remote, 1.17, 0.01);
    EXPECT_NEAR(r.remoteDirty, 1.38, 0.01);
}

TEST(Figure3, ValidCombinations)
{
    EXPECT_TRUE(validCombination(IntegrationLevel::Base,
                                 L2Impl::OffchipDirect));
    EXPECT_TRUE(validCombination(IntegrationLevel::FullInt,
                                 L2Impl::OnchipDram));
    EXPECT_FALSE(validCombination(IntegrationLevel::Base,
                                  L2Impl::OnchipSram));
    EXPECT_FALSE(validCombination(IntegrationLevel::FullInt,
                                  L2Impl::OffchipDirect));
}

TEST(Figure3DeathTest, InvalidCombinationIsFatal)
{
    EXPECT_EXIT(figure3Latencies(IntegrationLevel::Base,
                                 L2Impl::OnchipSram),
                ::testing::ExitedWithCode(1), "invalid configuration");
}

/** Every valid (level, impl) pair. */
std::vector<std::pair<IntegrationLevel, L2Impl>>
allValid()
{
    std::vector<std::pair<IntegrationLevel, L2Impl>> out;
    for (IntegrationLevel level :
         {IntegrationLevel::ConservativeBase, IntegrationLevel::Base,
          IntegrationLevel::L2Int, IntegrationLevel::L2McInt,
          IntegrationLevel::FullInt}) {
        for (L2Impl impl :
             {L2Impl::OffchipDirect, L2Impl::OffchipAssoc,
              L2Impl::OnchipSram, L2Impl::OnchipDram}) {
            if (validCombination(level, impl))
                out.emplace_back(level, impl);
        }
    }
    return out;
}

TEST(ComponentModel, ReproducesFigure3WithinTolerance)
{
    const ComponentLatencyModel model(ComponentParams{}, 8);
    for (const auto &[level, impl] : allValid()) {
        const double err = model.worstRelativeError(level, impl);
        EXPECT_LT(err, 0.15)
            << integrationLevelName(level) << " / " << l2ImplName(impl)
            << ": worst error " << err;
    }
}

TEST(ComponentModel, IntegrationMonotonicallyHelpsEachClass)
{
    const ComponentLatencyModel model(ComponentParams{}, 8);
    const LatencyTable base =
        model.derive(IntegrationLevel::Base, L2Impl::OffchipDirect);
    const LatencyTable full =
        model.derive(IntegrationLevel::FullInt, L2Impl::OnchipSram);
    EXPECT_LT(full.l2Hit, base.l2Hit);
    EXPECT_LT(full.local, base.local);
    EXPECT_LT(full.remote, base.remote);
    EXPECT_LT(full.remoteDirty, base.remoteDirty);
}

TEST(ComponentModel, PathsDescribeThemselves)
{
    const ComponentLatencyModel model(ComponentParams{}, 8);
    const LatencyPath p =
        model.remoteDirtyPath(IntegrationLevel::FullInt,
                              L2Impl::OnchipSram);
    const std::string desc = p.describe();
    EXPECT_NE(desc.find("net-forward"), std::string::npos);
    EXPECT_NE(desc.find("owner-l2"), std::string::npos);
    EXPECT_NE(desc.find(std::to_string(p.total())), std::string::npos);
}

TEST(ComponentModel, HigherHopCostRaisesRemoteOnly)
{
    ComponentParams slow;
    slow.link.routerDelay = 20;
    const ComponentLatencyModel fast(ComponentParams{}, 8);
    const ComponentLatencyModel slowm(slow, 8);
    const LatencyTable f =
        fast.derive(IntegrationLevel::FullInt, L2Impl::OnchipSram);
    const LatencyTable s =
        slowm.derive(IntegrationLevel::FullInt, L2Impl::OnchipSram);
    EXPECT_EQ(f.l2Hit, s.l2Hit);
    EXPECT_EQ(f.local, s.local);
    EXPECT_LT(f.remote, s.remote);
    EXPECT_LT(f.remoteDirty, s.remoteDirty);
}

} // namespace
} // namespace isim
