/**
 * @file
 * Tests for the figure registry (catalog completeness, id
 * resolution) and for SweepSpec cross-product expansion.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/figures.hh"
#include "src/core/registry.hh"
#include "src/core/sweep.hh"

namespace isim {
namespace {

TEST(Registry, EveryBenchIdResolves)
{
    // Each bench binary forwards one of these ids to the registry;
    // a miss here means a broken alias binary.
    const std::vector<std::string> ids = {
        "fig05",           "fig06",
        "fig07",           "fig08",
        "fig10",           "fig11",
        "fig12",           "fig13",
        "ablation-assoc",  "ablation-victim",
        "ablation-coloring", "ablation-bandwidth",
        "ext-cmp",         "ext-dss",
        "ext-prefetch",
    };
    const FigureRegistry &registry = FigureRegistry::instance();
    for (const std::string &id : ids) {
        EXPECT_FALSE(registry.resolve(id).empty())
            << "no registry entry matches '" << id << "'";
    }
}

TEST(Registry, IdsAreUniqueAndEntriesWellFormed)
{
    const FigureRegistry &registry = FigureRegistry::instance();
    EXPECT_GE(registry.entries().size(), 20u);
    std::set<std::string> seen;
    for (const FigureEntry &e : registry.entries()) {
        EXPECT_TRUE(seen.insert(e.id).second)
            << "duplicate id " << e.id;
        EXPECT_FALSE(e.description.empty()) << e.id;
        ASSERT_TRUE(e.make) << e.id;
    }
}

TEST(Registry, FactoriesProduceRunnableSpecs)
{
    for (const FigureEntry &e : FigureRegistry::instance().entries()) {
        const FigureSpec spec = e.make();
        EXPECT_FALSE(spec.id.empty()) << e.id;
        ASSERT_FALSE(spec.bars.empty()) << e.id;
        EXPECT_LT(spec.normalizeTo, spec.bars.size()) << e.id;
        for (const FigureBar &bar : spec.bars) {
            EXPECT_GE(bar.config.numCpus, 1u)
                << e.id << " bar " << bar.config.name;
        }
    }
}

TEST(Registry, ExactMatchBeatsPrefix)
{
    const FigureRegistry &registry = FigureRegistry::instance();
    const FigureEntry *uni = registry.find("fig10-uni");
    ASSERT_NE(uni, nullptr);
    const std::vector<const FigureEntry *> exact =
        registry.resolve("fig10-uni");
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_EQ(exact[0], uni);
}

TEST(Registry, PrefixResolvesToAllVariants)
{
    const FigureRegistry &registry = FigureRegistry::instance();
    EXPECT_EQ(registry.resolve("fig10").size(), 2u);
    EXPECT_EQ(registry.resolve("fig13").size(), 2u);
    EXPECT_EQ(registry.resolve("ablation-assoc").size(), 2u);
    EXPECT_GE(registry.resolve("ablation").size(), 5u);
    EXPECT_TRUE(registry.resolve("no-such-figure").empty());
    EXPECT_EQ(registry.find("no-such-figure"), nullptr);
}

TEST(Sweep, ExpandsCrossProductFirstAxisFastest)
{
    SweepSpec sweep;
    sweep.id = "test-sweep";
    sweep.title = "2x3 grid";
    sweep.base = figures::baseMachine(1);
    sweep.axes.push_back(
        {"letter",
         {{"a", [](MachineConfig &) {}}, {"b", [](MachineConfig &) {}}}});
    sweep.axes.push_back(
        {"number",
         {{"1", [](MachineConfig &) {}},
          {"2", [](MachineConfig &) {}},
          {"3", [](MachineConfig &) {}}}});
    EXPECT_EQ(sweep.points(), 6u);
    const FigureSpec spec = sweep.expand();
    ASSERT_EQ(spec.bars.size(), 6u);
    EXPECT_EQ(spec.bars[0].config.name, "a 1");
    EXPECT_EQ(spec.bars[1].config.name, "b 1");
    EXPECT_EQ(spec.bars[2].config.name, "a 2");
    EXPECT_EQ(spec.bars[5].config.name, "b 3");
    EXPECT_EQ(spec.id, "test-sweep");
    EXPECT_EQ(spec.title, "2x3 grid");
}

TEST(Sweep, AppliesMutationsInAxisOrder)
{
    SweepSpec sweep;
    sweep.id = "s";
    sweep.title = "t";
    sweep.base = figures::baseMachine(1);
    sweep.axes.push_back(
        {"cpus",
         {{"one", [](MachineConfig &c) { c.numCpus = 1; }},
          {"four", [](MachineConfig &c) { c.numCpus = 4; }}}});
    const FigureSpec spec = sweep.expand();
    ASSERT_EQ(spec.bars.size(), 2u);
    EXPECT_EQ(spec.bars[0].config.numCpus, 1u);
    EXPECT_EQ(spec.bars[1].config.numCpus, 4u);
}

TEST(Sweep, EmptyLabelsKeepConfigName)
{
    SweepSpec sweep;
    sweep.id = "s";
    sweep.title = "t";
    sweep.base = figures::baseMachine(1);
    sweep.base.name = "base-name";
    sweep.axes.push_back({"axis", {{"", nullptr}}});
    const FigureSpec spec = sweep.expand();
    ASSERT_EQ(spec.bars.size(), 1u);
    EXPECT_EQ(spec.bars[0].config.name, "base-name");
}

} // namespace
} // namespace isim
