/**
 * @file
 * Tests for the parallel experiment engine: bit-identical results at
 * any job count, isolation of concurrently running machines, worker
 * exception propagation, and (on multi-core hosts) actual speedup.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/base/logging.hh"
#include "src/core/experiment.hh"
#include "src/core/figures.hh"
#include "src/core/report.hh"
#include "src/core/sweep.hh"

namespace isim {
namespace {

WorkloadParams
smallWorkload(std::uint64_t transactions = 40)
{
    WorkloadParams p;
    p.branches = 8;
    p.accountsPerBranch = 10000;
    p.blockBufferBytes = 64 * mib;
    p.transactions = transactions;
    p.warmupTransactions = 15;
    return p;
}

/** A four-bar figure (off-chip L2 associativity sweep). */
FigureSpec
fourBarSpec(std::uint64_t transactions = 40)
{
    FigureSpec spec;
    spec.id = "test-parallel";
    spec.title = "associativity";
    for (const unsigned assoc : {1u, 2u, 4u, 8u}) {
        FigureBar bar;
        bar.config = figures::offchip(1, 2 * mib, assoc);
        bar.config.workload = smallWorkload(transactions);
        spec.bars.push_back(bar);
    }
    return spec;
}

RunOptions
quietOptions(unsigned jobs)
{
    RunOptions opts;
    opts.verbose = false;
    opts.jobs = jobs;
    return opts;
}

TEST(Parallel, JobCountDoesNotChangeResults)
{
    setQuiet(true);
    const FigureSpec spec = fourBarSpec();
    const FigureResult seq =
        ExperimentRunner(quietOptions(1)).run(spec);
    const FigureResult par =
        ExperimentRunner(quietOptions(4)).run(spec);
    ASSERT_EQ(seq.runs.size(), par.runs.size());
    // The acceptance bar: the JSON artifacts are bit-identical.
    EXPECT_EQ(figureToJson(seq), figureToJson(par));
}

TEST(Parallel, SweepRunsParallelAndDeterministic)
{
    setQuiet(true);
    SweepSpec sweep;
    sweep.id = "test-sweep-parallel";
    sweep.title = "assoc x size";
    sweep.base = figures::baseMachine(1);
    sweep.axes.push_back(
        {"assoc",
         {{"1-way", [](MachineConfig &c) { c.l2.assoc = 1; }},
          {"2-way", [](MachineConfig &c) { c.l2.assoc = 2; }}}});
    sweep.axes.push_back(
        {"size",
         {{"1M", [](MachineConfig &c) { c.l2.sizeBytes = 1 * mib; }},
          {"2M", [](MachineConfig &c) { c.l2.sizeBytes = 2 * mib; }}}});
    for (SweepAxis &axis : sweep.axes)
        for (SweepPoint &point : axis.points) {
            const auto inner = point.apply;
            point.apply = [inner](MachineConfig &c) {
                c.workload = smallWorkload();
                inner(c);
            };
        }
    const FigureResult seq =
        ExperimentRunner(quietOptions(1)).run(sweep);
    const FigureResult par =
        ExperimentRunner(quietOptions(4)).run(sweep);
    ASSERT_EQ(seq.runs.size(), 4u);
    EXPECT_EQ(figureToJson(seq), figureToJson(par));
}

TEST(Parallel, ConcurrentMachinesShareNoMutableState)
{
    setQuiet(true);
    MachineConfig a = figures::offchip(1, 1 * mib, 1);
    a.workload = smallWorkload();
    MachineConfig b = figures::baseMachine(2);
    b.workload = smallWorkload();

    const ExperimentRunner runner(quietOptions(1));
    const RunResult refA = runner.runOne(a);
    const RunResult refB = runner.runOne(b);

    // Re-run both *concurrently*; if any mutable state were shared
    // between machines, results would diverge from the sequential
    // reference (and TSan would flag the race).
    RunResult conA, conB;
    std::thread ta([&] { conA = runner.runOne(a); });
    std::thread tb([&] { conB = runner.runOne(b); });
    ta.join();
    tb.join();

    EXPECT_EQ(conA.execTime(), refA.execTime());
    EXPECT_EQ(conA.misses.totalL2Misses(), refA.misses.totalL2Misses());
    EXPECT_EQ(conB.execTime(), refB.execTime());
    EXPECT_EQ(conB.misses.totalL2Misses(), refB.misses.totalL2Misses());
}

TEST(Parallel, WorkerExceptionsPropagateInSpecOrder)
{
    setQuiet(true);
    FigureSpec spec = fourBarSpec();
    // Corrupt bar 1: cores not divisible by cores/node is rejected
    // by the Machine constructor (on a worker thread).
    spec.bars[1].config.coresPerNode = 3;
    ScopedPanicThrow guard;
    EXPECT_THROW(ExperimentRunner(quietOptions(4)).run(spec),
                 PanicError);
}

TEST(Parallel, SpeedupOnMultiCoreHost)
{
    // Two cores can in principle show a speedup, but on a busy or
    // throttled 2-core host the 1.5x bar below flakes; demand real
    // parallel headroom before asserting wall-clock. Bit-identity
    // (JobCountDoesNotChangeResults) stays unconditional.
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 cores to measure speedup reliably";
    setQuiet(true);
    // Big enough that per-bar runtime dwarfs pool overhead.
    const FigureSpec spec = fourBarSpec(/*transactions=*/250);
    using Clock = std::chrono::steady_clock;

    const Clock::time_point t0 = Clock::now();
    const FigureResult seq =
        ExperimentRunner(quietOptions(1)).run(spec);
    const Clock::time_point t1 = Clock::now();
    const FigureResult par =
        ExperimentRunner(quietOptions(4)).run(spec);
    const Clock::time_point t2 = Clock::now();

    EXPECT_EQ(figureToJson(seq), figureToJson(par));
    const double seqSec =
        std::chrono::duration<double>(t1 - t0).count();
    const double parSec =
        std::chrono::duration<double>(t2 - t1).count();
    // Four equal bars on >= 2 cores: ideal >= 2.0x; assert 1.5x to
    // leave head-room for a loaded CI runner.
    EXPECT_GE(seqSec / parSec, 1.5)
        << "sequential " << seqSec << "s, parallel " << parSec << "s";
}

} // namespace
} // namespace isim
