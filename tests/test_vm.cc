/**
 * @file
 * Unit tests for virtual memory: placement policies (interleave /
 * local / replicate), lazy allocation, determinism, frame uniqueness,
 * and region profiling.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/os/vm.hh"

namespace isim {
namespace {

VmConfig
config(unsigned nodes)
{
    VmConfig c;
    c.homeMap = HomeMap{31, nodes};
    c.seed = 1234;
    return c;
}

TEST(Vm, TranslationIsStable)
{
    VirtualMemory vm(config(4));
    const Addr v = 0x123456789;
    const Addr p1 = vm.translate(v, 0);
    const Addr p2 = vm.translate(v, 0);
    const Addr p3 = vm.translate(v, 3); // non-replicated: same frame
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(p1, p3);
}

TEST(Vm, OffsetsWithinPagePreserved)
{
    VirtualMemory vm(config(4));
    const Addr base = 0x40000000;
    const Addr p0 = vm.translate(base, 0);
    const Addr p5 = vm.translate(base + 5, 0);
    EXPECT_EQ(p5 - p0, 5u);
    // Same page -> same frame; next page -> (very likely) different.
    const Addr p_next = vm.translate(base + 8 * kib, 0);
    EXPECT_NE(p_next & ~Addr{8 * kib - 1}, p0 & ~Addr{8 * kib - 1});
}

TEST(Vm, InterleaveStripesAcrossNodes)
{
    VirtualMemory vm(config(8));
    vm.setPolicy(0x10000000, 64 * mib, PlacePolicy::Interleave);
    std::set<NodeId> homes;
    for (unsigned i = 0; i < 64; ++i) {
        const Addr p = vm.translate(0x10000000 + i * 8 * kib, 0);
        homes.insert(config(8).homeMap.homeOfByte(p));
    }
    EXPECT_EQ(homes.size(), 8u); // every node used
    // Striping is deterministic by vpn: consecutive pages rotate.
    const Addr p0 = vm.translate(0x10000000, 0);
    const Addr p1 = vm.translate(0x10000000 + 8 * kib, 0);
    const NodeId h0 = config(8).homeMap.homeOfByte(p0);
    const NodeId h1 = config(8).homeMap.homeOfByte(p1);
    EXPECT_EQ((h0 + 1) % 8, h1);
}

TEST(Vm, LocalPolicyAllocatesOnToucher)
{
    VirtualMemory vm(config(8));
    vm.setPolicy(0x20000000, 64 * mib, PlacePolicy::Local);
    for (NodeId n = 0; n < 8; ++n) {
        const Addr p =
            vm.translate(0x20000000 + n * 1 * mib, n);
        EXPECT_EQ(config(8).homeMap.homeOfByte(p), n);
    }
}

TEST(Vm, ReplicatePolicyGivesPerNodeCopies)
{
    VirtualMemory vm(config(4));
    vm.setPolicy(0x30000000, 16 * mib, PlacePolicy::Replicate);
    const Addr v = 0x30000000 + 4 * kib;
    std::set<Addr> frames;
    for (NodeId n = 0; n < 4; ++n) {
        const Addr p = vm.translate(v, n);
        EXPECT_EQ(config(4).homeMap.homeOfByte(p), n) << "node " << n;
        frames.insert(p);
        // Stable per node.
        EXPECT_EQ(vm.translate(v, n), p);
    }
    EXPECT_EQ(frames.size(), 4u);
}

TEST(Vm, FramesNeverCollide)
{
    VirtualMemory vm(config(2));
    std::set<Addr> frames;
    for (unsigned i = 0; i < 2000; ++i) {
        const Addr p = vm.translate(Addr{i} * 8 * kib, i % 2);
        EXPECT_TRUE(frames.insert(p & ~Addr{8 * kib - 1}).second)
            << "duplicate frame at page " << i;
    }
    EXPECT_EQ(vm.framesAllocated(0) + vm.framesAllocated(1), 2000u);
}

TEST(Vm, DeterministicAcrossInstances)
{
    VirtualMemory a(config(4)), b(config(4));
    for (unsigned i = 0; i < 500; ++i) {
        const Addr v = Addr{i} * 8 * kib + (i % 64);
        EXPECT_EQ(a.translate(v, i % 4), b.translate(v, i % 4));
    }
}

TEST(Vm, ProfilingCountsAccessesAndLines)
{
    VirtualMemory vm(config(2));
    vm.setPolicy(0x1000000, 1 * mib, PlacePolicy::Interleave, "r1");
    vm.enableProfiling(true);
    vm.translate(0x1000000, 0);
    vm.translate(0x1000000, 0);       // same line
    vm.translate(0x1000000 + 64, 0);  // new line
    const auto profiles = vm.regionProfiles();
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_EQ(profiles[0].name, "r1");
    EXPECT_EQ(profiles[0].accesses, 3u);
    EXPECT_EQ(profiles[0].uniqueLines, 2u);
}

TEST(Vm, RegionIndexOfPaddr)
{
    VirtualMemory vm(config(2));
    vm.setPolicy(0x1000000, 1 * mib, PlacePolicy::Interleave, "r1");
    vm.enableProfiling(true);
    const Addr p = vm.translate(0x1000000, 0);
    EXPECT_EQ(vm.regionIndexOfPaddr(p), 0);
    EXPECT_EQ(vm.regionIndexOfPaddr(p ^ (Addr{1} << 30)), -1);
}

TEST(Vm, PageColoringTilesConsecutivePages)
{
    VmConfig c = config(2);
    c.pageColors = 256;
    VirtualMemory vm(c);
    vm.setPolicy(0x10000000, 64 * mib, PlacePolicy::Interleave, "r");
    // Consecutive virtual pages land on consecutive colours (mod the
    // colour count), i.e. they tile the cache instead of colliding.
    // (Colour phases re-randomize at every pageColors-sized chunk, so
    // check runs within one chunk only.)
    std::uint64_t prev_color = ~0ull;
    for (unsigned i = 0; i < 512; ++i) {
        const Addr p = vm.translate(0x10000000 + Addr{i} * 8 * kib, 0);
        const std::uint64_t frame =
            (p & ((Addr{1} << 31) - 1)) / (8 * kib);
        const std::uint64_t color = frame % 256;
        if (prev_color != ~0ull && i % 256 != 0) {
            EXPECT_EQ(color, (prev_color + 1) % 256) << "page " << i;
        }
        prev_color = color;
    }
}

TEST(Vm, PageColoringKeepsFramesUnique)
{
    VmConfig c = config(1);
    c.pageColors = 64;
    VirtualMemory vm(c);
    std::set<Addr> frames;
    for (unsigned i = 0; i < 1000; ++i) {
        const Addr p = vm.translate(Addr{i} * 8 * kib, 0);
        EXPECT_TRUE(frames.insert(p & ~Addr{8 * kib - 1}).second);
    }
}

TEST(VmDeathTest, OverlappingRegionsRejected)
{
    VirtualMemory vm(config(2));
    vm.setPolicy(0x1000, 0x1000, PlacePolicy::Local);
    EXPECT_DEATH(vm.setPolicy(0x1800, 0x1000, PlacePolicy::Local),
                 "overlapping");
}

} // namespace
} // namespace isim
