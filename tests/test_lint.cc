/**
 * @file
 * isim-lint tests: one positive (violating) and one negative (clean)
 * fixture per rule family, suppression semantics, cross-file
 * checkpoint coverage, path scoping, the rule catalogue, and
 * deterministic finding order. On-disk fixtures live in
 * tests/lint_fixtures/ (skipped by the CLI's directory walk so the
 * deliberate violations never fail the tree-wide gate).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/lint/linter.hh"

namespace isim {
namespace lint {
namespace {

std::string
fixturePath(const char *name)
{
    return std::string(ISIM_LINT_FIXTURE_DIR) + "/" + name;
}

/** Load on-disk fixtures into a Linter and run every rule. */
std::vector<Finding>
lintFixtures(std::initializer_list<const char *> names)
{
    Linter linter;
    for (const char *name : names) {
        SourceFile file;
        std::string error;
        if (!SourceFile::load(fixturePath(name), file, error)) {
            ADD_FAILURE() << error;
            continue;
        }
        linter.addFile(std::move(file));
    }
    return linter.run();
}

/** Lint in-memory sources under synthetic repo-relative paths. */
std::vector<Finding>
lintText(
    std::initializer_list<std::pair<const char *, const char *>> files)
{
    Linter linter;
    for (const auto &[path, text] : files)
        linter.addFile(SourceFile::fromString(path, text));
    return linter.run();
}

std::size_t
countRule(const std::vector<Finding> &findings, const char *rule)
{
    return static_cast<std::size_t>(std::count_if(
        findings.begin(), findings.end(),
        [rule](const Finding &f) { return f.rule == rule; }));
}

bool
anyMessageContains(const std::vector<Finding> &findings,
                   const std::string &needle)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&needle](const Finding &f) {
                           return f.message.find(needle) !=
                                  std::string::npos;
                       });
}

// ---------------------------------------------------------------- //
// determinism

TEST(LintDeterminism, FlagsBannedEntropySources)
{
    const auto findings = lintFixtures({"src/determinism_bad.cc"});
    EXPECT_EQ(countRule(findings, "determinism"), 4u);
    EXPECT_EQ(findings.size(), 4u);
    EXPECT_TRUE(anyMessageContains(findings, "mt19937"));
    EXPECT_TRUE(anyMessageContains(findings, "rand()"));
    EXPECT_TRUE(anyMessageContains(findings, "time()"));
    EXPECT_TRUE(anyMessageContains(findings, "getenv"));
}

TEST(LintDeterminism, AcceptsSeededRngAndJustifiedSuppression)
{
    EXPECT_TRUE(lintFixtures({"src/determinism_good.cc"}).empty());
}

TEST(LintDeterminism, ExemptsTheSanctionedImplementations)
{
    // The one RNG implementation and the one getenv site are exempt.
    const auto findings = lintText({
        {"src/base/random.cc", "int x = std::mt19937{}();"},
        {"src/config/run_options.cc",
         "const char *v = getenv(\"ISIM_JOBS\");"},
    });
    EXPECT_EQ(countRule(findings, "determinism"), 0u);
}

// ---------------------------------------------------------------- //
// ordered-output

TEST(LintOrderedOutput, FlagsUnorderedIterationInSerializationPath)
{
    const auto findings = lintFixtures({"src/ckpt/ordered_bad.cc"});
    // Both the declaration and the direct range-for are findings.
    EXPECT_EQ(countRule(findings, "ordered-output"), 2u);
    EXPECT_EQ(findings.size(), 2u);
    EXPECT_TRUE(anyMessageContains(findings, "range-for"));
}

TEST(LintOrderedOutput, AcceptsTheSortedKeysIdiom)
{
    EXPECT_TRUE(lintFixtures({"src/ordered_good.cc"}).empty());
}

TEST(LintOrderedOutput, FlagsDirectIterationInSaveStateBody)
{
    const auto findings = lintText({{"src/table.hh",
        "class Table {\n"
        "  public:\n"
        "    void saveState(ckpt::Serializer &s) const {\n"
        "        for (const auto &kv : map_) s.u64(kv.second);\n"
        "    }\n"
        "  private:\n"
        "    std::unordered_map<int, int> map_;\n"
        "};\n"}});
    EXPECT_EQ(countRule(findings, "ordered-output"), 1u);
}

// ---------------------------------------------------------------- //
// ckpt-coverage

TEST(LintCkptCoverage, FlagsTheDeliberatelyUnserializedMember)
{
    const auto findings = lintFixtures({"src/ckpt_cover_bad.hh"});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "ckpt-coverage");
    EXPECT_NE(findings[0].message.find("lostCounter_"),
              std::string::npos);
    EXPECT_EQ(findings[0].message.find("ticks_"), std::string::npos);
}

TEST(LintCkptCoverage, AcceptsFullCoverageAndTransients)
{
    EXPECT_TRUE(lintFixtures({"src/ckpt_cover_good.hh"}).empty());
}

TEST(LintCkptCoverage, CrossReferencesOutOfLineDefinitions)
{
    // Declaration in the header, definitions in the .cc: coverage is
    // computed across the whole file set and attributed to the header.
    const auto findings = lintText({
        {"src/widget.hh",
         "class Widget {\n"
         "  public:\n"
         "    void saveState(ckpt::Serializer &s) const;\n"
         "    void restoreState(ckpt::Deserializer &d);\n"
         "  private:\n"
         "    unsigned long a_ = 0;\n"
         "    unsigned long b_ = 0;\n"
         "};\n"},
        {"src/widget.cc",
         "void Widget::saveState(ckpt::Serializer &s) const {\n"
         "    s.u64(a_);\n"
         "}\n"
         "void Widget::restoreState(ckpt::Deserializer &d) {\n"
         "    a_ = d.u64();\n"
         "}\n"},
    });
    ASSERT_EQ(countRule(findings, "ckpt-coverage"), 1u);
    EXPECT_EQ(findings[0].path, "src/widget.hh");
    EXPECT_NE(findings[0].message.find("b_"), std::string::npos);
}

TEST(LintCkptCoverage, IgnoresInterfaceOnlyDeclarations)
{
    // A pure declaration with no definition anywhere in the file set
    // (an abstract interface) has nothing to cross-reference.
    const auto findings = lintText({{"src/iface.hh",
        "class Saveable {\n"
        "  public:\n"
        "    virtual void saveState(ckpt::Serializer &s) const = 0;\n"
        "  private:\n"
        "    int tag_ = 0;\n"
        "};\n"}});
    EXPECT_EQ(countRule(findings, "ckpt-coverage"), 0u);
}

// ---------------------------------------------------------------- //
// stats-coverage

TEST(LintStatsCoverage, FlagsTheUnregisteredCounter)
{
    const auto findings = lintFixtures({"src/stats_bad.hh"});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "stats-coverage");
    EXPECT_NE(findings[0].message.find("misses"), std::string::npos);
}

TEST(LintStatsCoverage, AcceptsFullyRegisteredCounters)
{
    EXPECT_TRUE(lintFixtures({"src/stats_good.hh"}).empty());
}

TEST(LintStatsCoverage, AcceptsRegistrationViaMachineBuildRegistry)
{
    const auto findings = lintText({
        {"src/foo.hh",
         "struct LooseCounters { unsigned long evictions = 0; };\n"},
        {"src/machine.cc",
         "void Machine::buildRegistry(stats::Registry &r) {\n"
         "    r.add(\"evictions\", &loose_.evictions);\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(findings, "stats-coverage"), 0u);
}

// ---------------------------------------------------------------- //
// logging

TEST(LintLogging, FlagsBareStdioInLibraryCode)
{
    const auto findings = lintFixtures({"src/logging_bad.cc"});
    EXPECT_EQ(countRule(findings, "logging"), 2u);
    EXPECT_TRUE(anyMessageContains(findings, "printf()"));
    EXPECT_TRUE(anyMessageContains(findings, "std::cout"));
}

TEST(LintLogging, AcceptsMacrosAndJustifiedSuppression)
{
    EXPECT_TRUE(lintFixtures({"src/logging_good.cc"}).empty());
}

TEST(LintLogging, DoesNotConstrainCliMains)
{
    const auto findings = lintText({{"tools/isim-fig/main.cc",
        "int main() { std::printf(\"ok\\n\"); return 0; }\n"}});
    EXPECT_EQ(countRule(findings, "logging"), 0u);
}

// ---------------------------------------------------------------- //
// atomic-path

TEST(LintAtomicPath, FlagsTimingMachineryInAtomicBodies)
{
    const auto findings = lintFixtures({"src/atomic_bad.cc"});
    EXPECT_EQ(countRule(findings, "atomic-path"), 4u);
    EXPECT_EQ(findings.size(), 4u);
    EXPECT_TRUE(anyMessageContains(findings, "stepCpuAtomic()"));
    EXPECT_TRUE(anyMessageContains(findings, "runUntilAtomic()"));
    EXPECT_TRUE(anyMessageContains(findings, "mcQueueDelay"));
    EXPECT_TRUE(anyMessageContains(findings, "timingEvents_"));
}

TEST(LintAtomicPath, AcceptsFunctionalPathAndTimingOwnCode)
{
    EXPECT_TRUE(lintFixtures({"src/atomic_good.cc"}).empty());
}

TEST(LintAtomicPath, DoesNotConstrainTestsAndTools)
{
    // The rule guards src/ only; a test may drive the timing loop
    // from a helper that happens to end in Atomic.
    const auto findings = lintText({{"tests/test_x.cc",
        "void warmAtomic(Sim &s) { s.runUntil(0); }\n"}});
    EXPECT_EQ(countRule(findings, "atomic-path"), 0u);
}

TEST(LintAtomicPath, IgnoresDeclarationsAndCallSites)
{
    const auto findings = lintText({{"src/x.hh",
        "struct S {\n"
        "  void stepCpuAtomic(int cpu);\n"
        "};\n"
        "inline void drive(S &s) { s.stepCpuAtomic(0); }\n"}});
    EXPECT_EQ(countRule(findings, "atomic-path"), 0u);
}

// ---------------------------------------------------------------- //
// prof-guard

TEST(LintProfGuard, FlagsRawProfilerPrimitivesInLibraryCode)
{
    const auto findings = lintFixtures({"src/prof_bad.cc"});
    EXPECT_EQ(countRule(findings, "prof-guard"), 3u);
    EXPECT_EQ(findings.size(), 3u);
    EXPECT_TRUE(anyMessageContains(findings, "registerNode"));
    EXPECT_TRUE(anyMessageContains(findings, "ProfScope"));
    EXPECT_TRUE(anyMessageContains(findings, "ISIM_PROF_SCOPE"));
}

TEST(LintProfGuard, AcceptsMacrosAndTheColdEmissionApi)
{
    EXPECT_TRUE(lintFixtures({"src/prof_good.cc"}).empty());
}

TEST(LintProfGuard, DoesNotConstrainTheProfilerItselfOrTests)
{
    // src/prof/ is the implementation; tests construct scopes
    // directly on purpose.
    const auto findings = lintText({
        {"src/prof/profiler.cc",
         "const Node &registerNode(const std::string &p);\n"},
        {"tests/test_prof.cc",
         "void f() { prof::ProfScope s(prof::registerNode(\"x\")); "
         "}\n"},
    });
    EXPECT_EQ(countRule(findings, "prof-guard"), 0u);
}

// ---------------------------------------------------------------- //
// suppression (meta rule)

TEST(LintSuppression, PolicesBrokenAnnotations)
{
    const auto findings = lintFixtures({"src/suppress_bad.cc"});
    EXPECT_EQ(countRule(findings, "suppression"), 4u);
    EXPECT_EQ(findings.size(), 4u);
    EXPECT_TRUE(anyMessageContains(findings, "without a reason"));
    EXPECT_TRUE(anyMessageContains(findings, "unknown rule"));
    EXPECT_TRUE(anyMessageContains(findings, "malformed"));
}

TEST(LintSuppression, WellFormedAnnotationsAbsorbFindings)
{
    EXPECT_TRUE(lintFixtures({"src/suppress_good.cc"}).empty());
}

TEST(LintSuppression, DoesNotCrossRules)
{
    // An allow() for the wrong rule must not absorb the finding.
    const auto findings = lintText({{"src/x.cc",
        "// isim-lint: allow(logging): wrong rule on purpose\n"
        "int r = rand();\n"}});
    EXPECT_EQ(countRule(findings, "determinism"), 1u);
}

TEST(LintSuppression, CoversTheSameLine)
{
    const auto findings = lintText({{"src/x.cc",
        "int f() { std::cout << 1; return 0; } "
        "// isim-lint: allow(logging): trailing same-line form\n"}});
    EXPECT_EQ(countRule(findings, "logging"), 0u);
}

TEST(LintSuppression, ReasonlessAllowStillSuppressesNothing)
{
    // The reason-less annotation is itself a finding AND the
    // underlying finding survives: CI cannot be silenced silently.
    const auto findings = lintText({{"src/x.cc",
        "// isim-lint: allow(determinism)\n"
        "int r = rand();\n"}});
    EXPECT_EQ(countRule(findings, "suppression"), 1u);
    EXPECT_EQ(countRule(findings, "determinism"), 1u);
}

// ---------------------------------------------------------------- //
// driver behaviour

TEST(LintDriver, CatalogueListsEveryRule)
{
    const auto &rules = Linter::rules();
    ASSERT_EQ(rules.size(), 8u);
    std::vector<std::string> ids;
    for (const RuleInfo &rule : rules) {
        ids.emplace_back(rule.id);
        EXPECT_FALSE(std::string(rule.summary).empty());
        EXPECT_FALSE(std::string(rule.detail).empty());
    }
    const std::vector<std::string> expected = {
        "determinism",    "ordered-output", "ckpt-coverage",
        "stats-coverage", "logging",        "atomic-path",
        "prof-guard",     "suppression",
    };
    for (const std::string &id : expected)
        EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end())
            << "missing rule " << id;
}

TEST(LintDriver, FormatsFindingsAsPathLineRule)
{
    const Finding f{"src/x.cc", 12, "determinism", "msg"};
    EXPECT_EQ(Linter::format(f), "src/x.cc:12: [determinism] msg");
}

TEST(LintDriver, FindingsAreSortedAndDeduplicated)
{
    const auto findings = lintFixtures({
        "src/determinism_bad.cc",
        "src/logging_bad.cc",
        "src/suppress_bad.cc",
    });
    ASSERT_FALSE(findings.empty());
    for (std::size_t i = 1; i < findings.size(); ++i) {
        const Finding &a = findings[i - 1];
        const Finding &b = findings[i];
        const auto ka =
            std::tie(a.path, a.line, a.rule, a.message);
        const auto kb =
            std::tie(b.path, b.line, b.rule, b.message);
        EXPECT_TRUE(ka < kb) << Linter::format(a) << " vs "
                             << Linter::format(b);
    }
}

} // namespace
} // namespace lint
} // namespace isim
