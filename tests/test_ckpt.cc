/**
 * @file
 * Checkpoint/restore tests: round-trip digests, bit-identical
 * continued execution, byte-identical figure output from a warm
 * restore, latency-override restores, and corrupt-input robustness
 * (truncation, bad magic, wrong version, flipped payload bytes must
 * all fail with a clean PanicError, never undefined behaviour).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/base/logging.hh"
#include "src/ckpt/checkpoint.hh"
#include "src/ckpt/serializer.hh"
#include "src/core/experiment.hh"
#include "src/core/machine.hh"
#include "src/core/registry.hh"
#include "src/core/report.hh"
#include "src/cpu/core.hh"

namespace isim {
namespace {

/** A small machine that still exercises commits, daemons and paging. */
MachineConfig
smallConfig(std::uint64_t seed, CpuModel model = CpuModel::InOrder,
            unsigned cpus = 2)
{
    MachineConfig cfg;
    cfg.name = "ckpt-test";
    cfg.numCpus = cpus;
    cfg.cpuModel = model;
    cfg.l2 = CacheGeometry{512 * kib, 2, 64};
    cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.workload.branches = 8;
    cfg.workload.accountsPerBranch = 10000;
    cfg.workload.blockBufferBytes = 64 * mib;
    cfg.workload.transactions = 30;
    cfg.workload.warmupTransactions = 12;
    cfg.workload.seed = seed;
    return cfg;
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Bit-exact snapshot equality (NaN quantiles compare by pattern). */
void
expectSameSnapshot(const stats::Snapshot &a, const stats::Snapshot &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].u, b[i].u) << a[i].name;
        EXPECT_EQ(doubleBits(a[i].d), doubleBits(b[i].d)) << a[i].name;
        EXPECT_EQ(a[i].dist.count, b[i].dist.count) << a[i].name;
        EXPECT_EQ(doubleBits(a[i].dist.sum), doubleBits(b[i].dist.sum))
            << a[i].name;
        EXPECT_EQ(doubleBits(a[i].dist.mean), doubleBits(b[i].dist.mean))
            << a[i].name;
        EXPECT_EQ(a[i].dist.min, b[i].dist.min) << a[i].name;
        EXPECT_EQ(a[i].dist.max, b[i].dist.max) << a[i].name;
        EXPECT_EQ(doubleBits(a[i].dist.p50), doubleBits(b[i].dist.p50))
            << a[i].name;
        EXPECT_EQ(doubleBits(a[i].dist.p95), doubleBits(b[i].dist.p95))
            << a[i].name;
        EXPECT_EQ(doubleBits(a[i].dist.p99), doubleBits(b[i].dist.p99))
            << a[i].name;
    }
}

TEST(Checkpoint, RoundTripDigestIdentical)
{
    setQuiet(true);
    // Property: restore(save(M)) encodes back to the same bytes, for
    // warm machines of both CPU models across several seeds.
    for (const CpuModel model :
         {CpuModel::InOrder, CpuModel::OutOfOrder}) {
        for (const std::uint64_t seed : {7ull, 1234ull, 0xdeadbeefull}) {
            Machine m(smallConfig(seed, model));
            m.runWarmup(ExecMode::Timing);
            const std::vector<std::uint8_t> image = m.checkpointBytes();
            const std::unique_ptr<Machine> restored =
                Machine::fromCheckpointBytes(image);
            EXPECT_EQ(m.stateDigest(), restored->stateDigest())
                << "model=" << cpuModelName(model) << " seed=" << seed;
            EXPECT_EQ(image, restored->checkpointBytes());
        }
    }
}

TEST(Checkpoint, ContinuedExecutionBitIdentical)
{
    setQuiet(true);
    // The core contract: measuring from a restored image must produce
    // exactly the run the cold machine produces after its warm-up.
    Machine cold(smallConfig(42));
    cold.runWarmup(ExecMode::Timing);
    const std::vector<std::uint8_t> image = cold.checkpointBytes();
    const RunResult a = cold.runMeasurement();

    const std::unique_ptr<Machine> warm =
        Machine::fromCheckpointBytes(image);
    const RunResult b = warm->runMeasurement();

    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.wallTime, b.wallTime);
    EXPECT_EQ(a.cpu.busy, b.cpu.busy);
    EXPECT_EQ(a.cpu.idle, b.cpu.idle);
    EXPECT_EQ(a.cpu.kernelTime, b.cpu.kernelTime);
    EXPECT_EQ(a.cpu.instructions, b.cpu.instructions);
    EXPECT_EQ(a.misses.totalL2Misses(), b.misses.totalL2Misses());
    EXPECT_EQ(a.misses.dataRemoteDirty, b.misses.dataRemoteDirty);
    EXPECT_EQ(a.misses.invalidationsSent, b.misses.invalidationsSent);
    EXPECT_EQ(a.dbConsistent, b.dbConsistent);
    expectSameSnapshot(a.stats, b.stats);
}

TEST(Checkpoint, SaveFileRestoreAndDigest)
{
    setQuiet(true);
    const std::string path = ::testing::TempDir() + "/isim_ckpt_rt.ckpt";
    Machine m(smallConfig(99, CpuModel::OutOfOrder, 1));
    m.runWarmup(ExecMode::Timing);
    m.saveCheckpoint(path);
    const std::unique_ptr<Machine> restored =
        Machine::fromCheckpoint(path);
    EXPECT_EQ(m.stateDigest(), restored->stateDigest());
    EXPECT_TRUE(restored->isWarm());
    EXPECT_EQ(restored->warmupEndTime(), m.warmupEndTime());
    std::filesystem::remove(path);
}

TEST(Checkpoint, LatencyOverrideRestoreMeasuresFaster)
{
    setQuiet(true);
    // The SimOS use case: one warm image seeds measurement runs of
    // several latency configurations. The override changes only the
    // latency table, so the run completes and full integration beats
    // the base machine it was warmed as.
    const std::string path =
        ::testing::TempDir() + "/isim_ckpt_lat.ckpt";
    MachineConfig cfg = smallConfig(7, CpuModel::InOrder, 1);
    cfg.level = IntegrationLevel::Base;
    cfg.l2Impl = L2Impl::OffchipDirect;
    Machine m(cfg);
    m.runWarmup(ExecMode::Timing);
    m.saveCheckpoint(path);
    const RunResult base = m.runMeasurement();

    const std::unique_ptr<Machine> full = Machine::fromCheckpoint(
        path, IntegrationLevel::FullInt, L2Impl::OnchipSram);
    EXPECT_EQ(full->config().level, IntegrationLevel::FullInt);
    const RunResult fast = full->runMeasurement();
    EXPECT_EQ(base.transactions, fast.transactions);
    EXPECT_LT(fast.execTime(), base.execTime());
    std::filesystem::remove(path);
}

TEST(Checkpoint, FigureRunsByteIdenticalFromWarmRestore)
{
    setQuiet(true);
    // Acceptance contract on two registry figures: --save-ckpt then
    // --from-ckpt produces byte-identical figure JSON and stats
    // manifests to the cold run that wrote the images.
    const std::string dir = ::testing::TempDir() + "/isim_ckpt_figs";
    std::filesystem::create_directories(dir);

    RunOptions base;
    base.txns = 40;
    base.warmup = 10;
    base.seed = 7;
    base.jobs = 1;
    base.verbose = false;

    for (const char *id : {"fig05", "fig07"}) {
        const FigureEntry *entry = FigureRegistry::instance().find(id);
        ASSERT_NE(entry, nullptr) << id;
        const FigureSpec spec = entry->make();

        RunOptions saveOpts = base;
        saveOpts.saveCkptDir = dir;
        const FigureResult cold = ExperimentRunner(saveOpts).run(spec);

        RunOptions loadOpts = base;
        loadOpts.fromCkptDir = dir;
        const FigureResult warm = ExperimentRunner(loadOpts).run(spec);

        EXPECT_EQ(figureToJson(cold), figureToJson(warm)) << id;
        EXPECT_EQ(figureStatsJson(cold), figureStatsJson(warm)) << id;
    }
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, RunnerRejectsMismatchedConfig)
{
    setQuiet(true);
    // Restoring an image under different workload knobs would compare
    // incomparable runs; the runner must refuse, not silently measure.
    const std::string dir = ::testing::TempDir() + "/isim_ckpt_mismatch";
    std::filesystem::create_directories(dir);
    const MachineConfig cfg = smallConfig(7, CpuModel::InOrder, 1);
    {
        Machine m(cfg);
        m.runWarmup(ExecMode::Timing);
        m.saveCheckpoint(checkpointPath(dir, cfg.name));
    }
    RunOptions opts;
    opts.verbose = false;
    opts.fromCkptDir = dir;
    opts.txns = 999; // differs from the image's transaction count
    const ScopedPanicThrow guard;
    EXPECT_THROW(ExperimentRunner(opts).runOne(cfg), PanicError);
    std::filesystem::remove_all(dir);
}

class CheckpointCorruption : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setQuiet(true);
        Machine m(smallConfig(3, CpuModel::InOrder, 1));
        m.runWarmup(ExecMode::Timing);
        image_ = m.checkpointBytes();
        ASSERT_GT(image_.size(), 64u);
    }

    std::vector<std::uint8_t> image_;
};

TEST_F(CheckpointCorruption, TruncatedFileFailsCleanly)
{
    const ScopedPanicThrow guard;
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{11},
          image_.size() / 2, image_.size() - 1}) {
        std::vector<std::uint8_t> cut(image_.begin(),
                                      image_.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              keep));
        EXPECT_THROW(Machine::fromCheckpointBytes(cut), PanicError)
            << "kept " << keep << " bytes";
    }
}

TEST_F(CheckpointCorruption, BadMagicFailsCleanly)
{
    const ScopedPanicThrow guard;
    std::vector<std::uint8_t> bad = image_;
    bad[0] ^= 0xff;
    EXPECT_THROW(Machine::fromCheckpointBytes(bad), PanicError);
}

TEST_F(CheckpointCorruption, WrongVersionFailsCleanly)
{
    const ScopedPanicThrow guard;
    std::vector<std::uint8_t> bad = image_;
    bad[ckpt::magicBytes] += 1; // version field follows the magic
    EXPECT_THROW(Machine::fromCheckpointBytes(bad), PanicError);
}

TEST_F(CheckpointCorruption, FlippedPayloadBytesFailCrcCleanly)
{
    const ScopedPanicThrow guard;
    // Flip bytes across the image; every flip must be caught (CRC,
    // tag, bounds or value validation), never crash or mis-restore
    // silently into a machine with a different digest.
    for (const std::size_t at :
         {ckpt::magicBytes + 4 + 16,     // first CONF payload byte
          image_.size() / 3, image_.size() / 2, image_.size() - 1}) {
        std::vector<std::uint8_t> bad = image_;
        bad[at] ^= 0x01;
        EXPECT_THROW(Machine::fromCheckpointBytes(bad), PanicError)
            << "flipped byte " << at;
    }
}

TEST_F(CheckpointCorruption, TrailingGarbageFailsCleanly)
{
    const ScopedPanicThrow guard;
    std::vector<std::uint8_t> bad = image_;
    bad.push_back(0xab);
    EXPECT_THROW(Machine::fromCheckpointBytes(bad), PanicError);
}

TEST_F(CheckpointCorruption, MissingFileFailsCleanly)
{
    const ScopedPanicThrow guard;
    EXPECT_THROW(
        Machine::fromCheckpoint("/nonexistent/isim-nowhere.ckpt"),
        PanicError);
}

} // namespace
} // namespace isim
