/**
 * @file
 * Unit tests for the kernel-activity model.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/os/kernel.hh"
#include "src/os/layout.hh"

namespace isim {
namespace {

VmConfig
vmConfig(unsigned nodes)
{
    VmConfig c;
    c.homeMap = HomeMap{31, nodes};
    return c;
}

TEST(Kernel, ContextSwitchEmitsKernelRefs)
{
    VirtualMemory vm(vmConfig(2));
    KernelModel kernel(vm, 2, KernelParams{}, 42);
    std::deque<MemRef> out;
    kernel.contextSwitch(0, out);
    ASSERT_FALSE(out.empty());
    bool saw_instr = false, saw_data = false, saw_store = false;
    for (const MemRef &r : out) {
        EXPECT_TRUE(r.kernel);
        saw_instr = saw_instr || r.kind == RefKind::Instr;
        saw_data = saw_data || r.kind != RefKind::Instr;
        saw_store = saw_store || r.kind == RefKind::Store;
    }
    EXPECT_TRUE(saw_instr);
    EXPECT_TRUE(saw_data);
    EXPECT_TRUE(saw_store);
    EXPECT_GT(kernel.instructionsEmitted(), 0u);
}

TEST(Kernel, SyscallCopyAddsTransferRefs)
{
    VirtualMemory vm(vmConfig(1));
    KernelModel kernel(vm, 1, KernelParams{}, 42);
    std::deque<MemRef> without, with;
    kernel.syscall(0, without, 0);
    kernel.syscall(0, with, 1024);
    EXPECT_GT(with.size(), without.size());
}

TEST(Kernel, PerCpuStreamsAreIndependentAndDeterministic)
{
    VirtualMemory vm1(vmConfig(2)), vm2(vmConfig(2));
    KernelModel a(vm1, 2, KernelParams{}, 42);
    KernelModel b(vm2, 2, KernelParams{}, 42);
    std::deque<MemRef> oa, ob;
    a.contextSwitch(0, oa);
    b.contextSwitch(0, ob);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
        EXPECT_EQ(oa[i].paddr, ob[i].paddr);
        EXPECT_EQ(oa[i].kind, ob[i].kind);
    }
}

TEST(Kernel, InstructionFootprintIsBounded)
{
    VmConfig vc = vmConfig(1);
    VirtualMemory vm(vc);
    const KernelParams params;
    KernelModel kernel(vm, 1, params, 7);
    std::set<Addr> text_lines;
    std::deque<MemRef> out;
    for (int i = 0; i < 200; ++i)
        kernel.contextSwitch(0, out);
    for (const MemRef &r : out) {
        if (r.kind == RefKind::Instr)
            text_lines.insert(r.paddr >> 6);
    }
    EXPECT_LE(text_lines.size() * 64, params.textBytes);
    EXPECT_GT(text_lines.size(), 16u);
}

TEST(Kernel, CodeComesFromKernelTextRegion)
{
    VirtualMemory vm(vmConfig(1));
    KernelModel kernel(vm, 1, KernelParams{}, 7);
    EXPECT_EQ(kernel.code().vbase(), layout::kernelText);
    EXPECT_EQ(kernel.code().textBytes(), KernelParams{}.textBytes);
}

} // namespace
} // namespace isim
