#!/bin/sh
# Regenerate the golden-checkpoint fixture after an intentional
# checkpoint-encoding or model change (docs/CHECKPOINT.md): rewrites
# the committed warm image (gzipped) and the golden stats manifest
# the CI regression diffs against. Run from the repo root with a
# built tree.
set -e
# Explicit knobs so stray ISIM_* environment can't leak into the
# fixture's configuration (they must match tiny.cfg and the CI step).
./build/examples/run_config tests/golden/tiny.cfg --quiet \
    --txns 40 --warmup 10 --seed 7 \
    --save-ckpt tests/golden/ckpt \
    --stats-out tests/golden/tiny-stats.json
gzip -9 -f tests/golden/ckpt/golden_tiny.ckpt
echo "regenerated tests/golden/ckpt/golden_tiny.ckpt.gz and" \
     "tests/golden/tiny-stats.json"
