/**
 * @file
 * Unit tests for the functional TPC-B database: row placement, history
 * growth, functional execution and the TPC-B consistency conditions.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/base/random.hh"
#include "src/oltp/tables.hh"

namespace isim {
namespace {

WorkloadParams
smallScale()
{
    WorkloadParams p;
    p.branches = 4;
    p.tellersPerBranch = 10;
    p.accountsPerBranch = 1000;
    p.blockBufferBytes = 32 * mib;
    return p;
}

TEST(Tables, TableRegionsAreDisjoint)
{
    const WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);

    // Branch, teller, account, index and history blocks must never
    // overlap.
    const std::uint64_t last_branch = db.branchRow(p.branches - 1).block;
    const std::uint64_t first_teller = db.tellerRow(0).block;
    EXPECT_LT(last_branch, first_teller);
    const std::uint64_t last_teller =
        db.tellerRow(p.totalTellers() - 1).block;
    const std::uint64_t first_account = db.accountRow(0).block;
    EXPECT_LT(last_teller, first_account);
    const std::uint64_t last_account =
        db.accountRow(p.totalAccounts() - 1).block;
    EXPECT_LT(last_account, db.accountIndexRoot());
    EXPECT_LT(db.accountIndexRoot(),
              db.accountIndexLeaf(0));
    EXPECT_LT(db.accountIndexLeaf(p.totalAccounts() - 1),
              db.staticBlocks());
    EXPECT_LE(db.staticBlocks(), sga.numBlocks());
}

TEST(Tables, RowsPackIntoBlocks)
{
    const WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);
    const unsigned rows_per_block = p.rowsPerBlock();
    // Consecutive accounts share a block until it fills.
    EXPECT_EQ(db.accountRow(0).block,
              db.accountRow(rows_per_block - 1).block);
    EXPECT_NE(db.accountRow(0).block,
              db.accountRow(rows_per_block).block);
    EXPECT_EQ(db.accountRow(1).offset - db.accountRow(0).offset,
              p.rowBytes);
}

TEST(Tables, DistinctRowsDistinctLocations)
{
    const WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);
    std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
    for (std::uint64_t a = 0; a < 500; ++a) {
        const RowLocation loc = db.accountRow(a);
        EXPECT_TRUE(seen.insert({loc.block, loc.offset}).second);
    }
}

TEST(Tables, HistoryAppendAdvances)
{
    const WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);
    const RowLocation h0 = db.appendHistory();
    const RowLocation h1 = db.appendHistory();
    EXPECT_EQ(db.historyCount(), 2u);
    EXPECT_TRUE(h0.block != h1.block || h0.offset != h1.offset);
    EXPECT_GE(h0.block, db.staticBlocks() - 1);
}

TEST(Tables, FunctionalBalancesMove)
{
    const WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);
    db.applyTransaction(7, 3, 0, 250);
    db.applyTransaction(7, 5, 1, -100);
    EXPECT_EQ(db.accountBalance(7), 150);
    EXPECT_EQ(db.tellerBalance(3), 250);
    EXPECT_EQ(db.tellerBalance(5), -100);
    EXPECT_EQ(db.branchBalance(0), 250);
    EXPECT_EQ(db.branchBalance(1), -100);
}

TEST(Tables, ConsistencyHoldsUnderRandomTransactions)
{
    const WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t teller = rng.below(p.totalTellers());
        const std::uint64_t branch = teller / p.tellersPerBranch;
        const std::uint64_t account = rng.below(p.totalAccounts());
        const std::int64_t delta =
            static_cast<std::int64_t>(rng.range(0, 1000000)) - 500000;
        db.appendHistory();
        db.applyTransaction(account, teller, branch, delta);
    }
    EXPECT_TRUE(db.checkConsistency());
    EXPECT_EQ(db.historyCount(), 5000u);
}

TEST(Tables, ConsistencyCatchesCorruption)
{
    const WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);
    // Branch 1 is not teller 3's branch: books no longer balance
    // across tables.
    db.applyTransaction(7, 3, 0, 250);
    db.applyTransaction(8, 4, 1, 100);
    EXPECT_TRUE(db.checkConsistency());
    db.applyTransaction(9, 4, 1, 100);
    db.applyTransaction(9, 4, 1, -100); // net zero, still consistent
    EXPECT_TRUE(db.checkConsistency());
}

TEST(Tables, HistoryInsertBlockRecyclesWhenFull)
{
    WorkloadParams p = smallScale();
    Sga sga(p);
    TpcbDatabase db(p, sga);
    const std::uint64_t first = db.historyInsertBlock();
    // Fill more rows than one block holds; the insert block advances.
    const std::uint64_t rows_per_block = p.blockBytes / 50;
    for (std::uint64_t i = 0; i <= rows_per_block; ++i)
        db.appendHistory();
    EXPECT_NE(db.historyInsertBlock(), first);
}

} // namespace
} // namespace isim
