/**
 * @file
 * Campaign orchestrator tests: wire-protocol round-trips, spec
 * validation, plan expansion (seed axis, checkpoint groups, content
 * keys), the lease state machine (gating, crash requeue, cascade
 * failure, image regeneration), META echo plumbing, sweep-expansion
 * hard errors, and the end-to-end resume contract — an interrupted
 * campaign resumed from its cache must produce a campaign.json
 * byte-identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/campaign/cache.hh"
#include "src/campaign/protocol.hh"
#include "src/campaign/queue.hh"
#include "src/campaign/spec.hh"
#include "src/campaign/supervisor.hh"
#include "src/ckpt/checkpoint.hh"
#include "src/core/experiment.hh"
#include "src/core/sweep.hh"
#include "src/stats/manifest.hh"

namespace isim {
namespace {

std::string
freshDir(const std::string &stem)
{
    const std::string dir = ::testing::TempDir() + "/" + stem;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out << contents;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

TEST(CampaignProtocol, EveryMessageKindRoundTrips)
{
    using campaign::LeaseMode;
    using campaign::WireMessage;

    std::vector<WireMessage> originals;
    {
        WireMessage hello;
        hello.kind = WireMessage::Kind::Hello;
        hello.version = campaign::kProtocolVersion;
        hello.nbars = 42;
        originals.push_back(hello);
    }
    for (const LeaseMode mode :
         {LeaseMode::Cold, LeaseMode::Build, LeaseMode::Restore,
          LeaseMode::ImageOnly}) {
        WireMessage bar;
        bar.kind = WireMessage::Kind::Bar;
        bar.index = 7;
        bar.mode = mode;
        originals.push_back(bar);
    }
    {
        WireMessage done;
        done.kind = WireMessage::Kind::Done;
        done.index = 3;
        done.mode = LeaseMode::Restore;
        done.key = "deadbeefcafef00d";
        originals.push_back(done);
    }
    {
        WireMessage fail;
        fail.kind = WireMessage::Kind::Fail;
        fail.index = 5;
        fail.mode = LeaseMode::Build;
        fail.reason = "TPC-B consistency check failed: 3 != 4";
        originals.push_back(fail);
    }
    {
        WireMessage quit;
        quit.kind = WireMessage::Kind::Quit;
        originals.push_back(quit);
    }

    for (const WireMessage &m : originals) {
        const std::string line = encodeMessage(m);
        ASSERT_FALSE(line.empty());
        ASSERT_EQ(line.back(), '\n');

        WireMessage back;
        std::string err;
        ASSERT_TRUE(decodeMessage(line.substr(0, line.size() - 1),
                                  back, &err))
            << line << ": " << err;
        EXPECT_EQ(back.kind, m.kind);
        EXPECT_EQ(back.version, m.version);
        EXPECT_EQ(back.nbars, m.nbars);
        EXPECT_EQ(back.index, m.index);
        EXPECT_EQ(back.mode, m.mode);
        EXPECT_EQ(back.key, m.key);
        EXPECT_EQ(back.reason, m.reason);
    }
}

TEST(CampaignProtocol, RejectsMalformedLines)
{
    const char *bad[] = {
        "",                      // empty
        "BOGUS 1 2",             // unknown verb
        "BAR",                   // missing fields
        "BAR seven cold",        // non-numeric index
        "BAR 1 tepid",           // unknown mode
        "BAR 1 cold extra",      // trailing garbage
        "DONE 1 cold",           // missing key
        "HELLO 1",               // missing nbars
        "QUIT now",              // trailing garbage
    };
    for (const char *line : bad) {
        campaign::WireMessage m;
        std::string err;
        EXPECT_FALSE(campaign::decodeMessage(line, m, &err))
            << "accepted: '" << line << "'";
    }
}

TEST(CampaignProtocol, FailReasonKeepsEmbeddedSpaces)
{
    campaign::WireMessage m;
    ASSERT_TRUE(campaign::decodeMessage(
        "FAIL 2 restore warm image group mismatch on restore", m));
    EXPECT_EQ(m.kind, campaign::WireMessage::Kind::Fail);
    EXPECT_EQ(m.reason, "warm image group mismatch on restore");
}

TEST(CampaignProtocol, LeaseModeNamesRoundTrip)
{
    using campaign::LeaseMode;
    for (const LeaseMode mode :
         {LeaseMode::Cold, LeaseMode::Build, LeaseMode::Restore,
          LeaseMode::ImageOnly}) {
        LeaseMode back;
        ASSERT_TRUE(campaign::leaseModeFromName(
            campaign::leaseModeName(mode), back));
        EXPECT_EQ(back, mode);
    }
    LeaseMode out;
    EXPECT_FALSE(campaign::leaseModeFromName("warm", out));
}

// ---------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------

campaign::CampaignSpec
specFromText(const std::string &text)
{
    JsonValue doc;
    std::string err;
    if (!jsonParse(text, doc, &err))
        isim_panic("test spec does not parse: %s", err.c_str());
    return campaign::campaignSpecFromJson(doc);
}

TEST(CampaignSpec, ParsesAFullDocument)
{
    const campaign::CampaignSpec spec = specFromText(
        R"({"schema": "isim-campaign", "version": 1, "name": "smoke",
            "figures": ["fig10-uni", "fig05"], "seeds": [3, 4],
            "txns": 40, "warmup": 10})");
    EXPECT_EQ(spec.name, "smoke");
    ASSERT_EQ(spec.figures.size(), 2u);
    EXPECT_EQ(spec.figures[0], "fig10-uni");
    ASSERT_EQ(spec.seeds.size(), 2u);
    EXPECT_EQ(spec.seeds[1], 4u);
    ASSERT_TRUE(spec.txns.has_value());
    EXPECT_EQ(*spec.txns, 40u);
    ASSERT_TRUE(spec.warmup.has_value());
    EXPECT_EQ(*spec.warmup, 10u);
}

TEST(CampaignSpec, SeedsAndCountsAreOptional)
{
    const campaign::CampaignSpec spec = specFromText(
        R"({"schema": "isim-campaign", "version": 1, "name": "n",
            "figures": ["fig05"]})");
    EXPECT_TRUE(spec.seeds.empty());
    EXPECT_FALSE(spec.txns.has_value());
    EXPECT_FALSE(spec.warmup.has_value());
}

TEST(CampaignSpec, SchemaViolationsAreFatal)
{
    ScopedPanicThrow guard;
    const char *bad[] = {
        // wrong schema
        R"({"schema": "isim-stats", "version": 1, "name": "n",
            "figures": ["fig05"]})",
        // wrong version
        R"({"schema": "isim-campaign", "version": 2, "name": "n",
            "figures": ["fig05"]})",
        // empty name
        R"({"schema": "isim-campaign", "version": 1, "name": "",
            "figures": ["fig05"]})",
        // empty figure list
        R"({"schema": "isim-campaign", "version": 1, "name": "n",
            "figures": []})",
        // duplicate seeds
        R"({"schema": "isim-campaign", "version": 1, "name": "n",
            "figures": ["fig05"], "seeds": [3, 3]})",
        // zero measured transactions
        R"({"schema": "isim-campaign", "version": 1, "name": "n",
            "figures": ["fig05"], "txns": 0})",
        // unknown key (typo protection: a misspelled knob must not
        // silently fall back to defaults)
        R"({"schema": "isim-campaign", "version": 1, "name": "n",
            "figures": ["fig05"], "sedes": [3]})",
    };
    for (const char *text : bad)
        EXPECT_THROW(specFromText(text), PanicError) << text;
}

// ---------------------------------------------------------------------
// Plan expansion
// ---------------------------------------------------------------------

RunOptions
quickOptions()
{
    RunOptions options;
    options.txns = 20;
    options.warmup = 5;
    options.verbose = false;
    return options;
}

TEST(CampaignExpand, SeedAxisIsOutermostAndGroupsFormPerSeed)
{
    const campaign::CampaignSpec spec = specFromText(
        R"({"schema": "isim-campaign", "version": 1, "name": "t",
            "figures": ["fig10-uni"], "seeds": [3, 4]})");
    const campaign::CampaignPlan plan =
        campaign::expandCampaign(spec, quickOptions());

    // fig10-uni has three bars; two seeds double them, seed-major.
    ASSERT_EQ(plan.bars.size(), 6u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(plan.bars[i].seed, 3u) << i;
        EXPECT_NE(plan.bars[i].name.find("@s3"), std::string::npos);
    }
    for (std::size_t i = 3; i < 6; ++i)
        EXPECT_EQ(plan.bars[i].seed, 4u) << i;

    // Every cell gets a distinct content key (so no aliases here),
    // and the key echoes the configuration digest convention.
    std::set<std::string> keys;
    for (const campaign::CampaignBar &bar : plan.bars) {
        EXPECT_TRUE(keys.insert(bar.key).second) << bar.name;
        EXPECT_EQ(bar.key.size(), 16u);
        EXPECT_EQ(bar.aliasOf, campaign::kNoAlias);
        const std::vector<std::uint8_t> bytes =
            ckpt::configBytes(bar.config);
        EXPECT_EQ(bar.key, stats::resultKey(bytes, bar.seed));
        EXPECT_EQ(bar.configDigest, stats::configDigest(bytes));
    }

    // The L2/L2+MC pair shares a warm image per seed (the Base bar
    // has its own cache geometry and stays a singleton), and the
    // builder is the earliest member.
    ASSERT_EQ(plan.groups.size(), 2u);
    for (const auto &[key, members] : plan.groups) {
        ASSERT_EQ(members.size(), 2u) << key;
        EXPECT_LT(members[0], members[1]);
        EXPECT_EQ(plan.bars[members[0]].groupKey,
                  plan.bars[members[1]].groupKey);
        EXPECT_EQ(plan.bars[members[0]].seed,
                  plan.bars[members[1]].seed);
    }
}

TEST(CampaignExpand, GroupKeyIgnoresExactlyTheRestoreOverrides)
{
    const campaign::CampaignSpec spec = specFromText(
        R"({"schema": "isim-campaign", "version": 1, "name": "t",
            "figures": ["fig10-uni"]})");
    const campaign::CampaignPlan plan =
        campaign::expandCampaign(spec, quickOptions());
    ASSERT_EQ(plan.groups.size(), 1u);
    const std::vector<std::size_t> &members =
        plan.groups.begin()->second;
    const campaign::CampaignBar &a = plan.bars[members[0]];
    const campaign::CampaignBar &b = plan.bars[members[1]];
    // Same warm image, different measurement cell.
    EXPECT_EQ(a.groupKey, b.groupKey);
    EXPECT_NE(a.key, b.key);
    // A different seed must split the group: the warm image bakes
    // the workload state in.
    MachineConfig reseeded = a.config;
    reseeded.workload.seed += 1;
    EXPECT_NE(campaign::warmGroupKey(reseeded, a.warmupMode),
              a.groupKey);
    // ... and so must a different warm-up mode: the image's META
    // records the mode that produced it and restore rejects any
    // other, so the groups may never merge.
    const ExecMode other = a.warmupMode == ExecMode::Atomic
                               ? ExecMode::Timing
                               : ExecMode::Atomic;
    EXPECT_NE(campaign::warmGroupKey(a.config, other), a.groupKey);
    EXPECT_EQ(campaign::warmGroupKey(a.config, a.warmupMode),
              a.groupKey);
}

TEST(CampaignExpand, UnknownFigureIsFatal)
{
    ScopedPanicThrow guard;
    const campaign::CampaignSpec spec = specFromText(
        R"({"schema": "isim-campaign", "version": 1, "name": "t",
            "figures": ["no-such-figure"]})");
    EXPECT_THROW(campaign::expandCampaign(spec, quickOptions()),
                 PanicError);
}

// ---------------------------------------------------------------------
// Lease state machine
// ---------------------------------------------------------------------

/**
 * A hand-built three-bar plan: bar 0 a singleton, bars 1+2 a
 * checkpoint group with bar 1 as builder. Keys are fabricated — the
 * queue only ever treats them as cache-file names.
 */
campaign::CampaignPlan
syntheticPlan()
{
    campaign::CampaignPlan plan;
    const char *keys[] = {"k0", "k1", "k2"};
    const char *groups[] = {"g-solo", "g-pair", "g-pair"};
    for (std::size_t i = 0; i < 3; ++i) {
        campaign::CampaignBar bar;
        bar.index = i;
        bar.name = "bar" + std::to_string(i);
        bar.key = keys[i];
        bar.groupKey = groups[i];
        plan.bars.push_back(std::move(bar));
    }
    plan.groups.emplace("g-pair", std::vector<std::size_t>{1, 2});
    return plan;
}

TEST(CampaignQueue, MembersAreGatedOnTheImageBuild)
{
    const std::string dir = freshDir("campaign_queue_gate");
    const campaign::CampaignPlan plan = syntheticPlan();
    campaign::CampaignQueue queue(plan, dir);

    // Index order: the singleton leases Cold, the builder Build; the
    // member must wait for the image.
    const auto first = queue.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->index, 0u);
    EXPECT_EQ(first->mode, campaign::LeaseMode::Cold);
    const auto second = queue.next();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->index, 1u);
    EXPECT_EQ(second->mode, campaign::LeaseMode::Build);
    EXPECT_FALSE(queue.next().has_value());
    EXPECT_FALSE(queue.finished());

    queue.complete(*second);
    const auto third = queue.next();
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->index, 2u);
    EXPECT_EQ(third->mode, campaign::LeaseMode::Restore);
    queue.complete(*third);
    queue.complete(*first);

    EXPECT_TRUE(queue.finished());
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_TRUE(queue.barOk(i)) << i;
    const campaign::CampaignTally &tally = queue.tally();
    EXPECT_EQ(tally.ran, 3u);
    EXPECT_EQ(tally.coldRuns, 1u);
    EXPECT_EQ(tally.imagesBuilt, 1u);
    EXPECT_EQ(tally.imagesRestored, 1u);
    EXPECT_EQ(tally.failed, 0u);
}

TEST(CampaignQueue, RequeueAfterWorkerCrashReissuesTheLease)
{
    const std::string dir = freshDir("campaign_queue_requeue");
    const campaign::CampaignPlan plan = syntheticPlan();
    campaign::CampaignQueue queue(plan, dir);

    const auto lease = queue.next();
    ASSERT_TRUE(lease.has_value());
    queue.requeue(*lease);
    const auto again = queue.next();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->index, lease->index);
    EXPECT_EQ(again->mode, lease->mode);
}

TEST(CampaignQueue, BuildFailureCascadesToWaitingMembers)
{
    const std::string dir = freshDir("campaign_queue_cascade");
    const campaign::CampaignPlan plan = syntheticPlan();
    campaign::CampaignQueue queue(plan, dir);

    const auto solo = queue.next();
    const auto build = queue.next();
    ASSERT_TRUE(build.has_value());
    ASSERT_EQ(build->mode, campaign::LeaseMode::Build);
    queue.fail(*build, "simulated panic");
    // The member never becomes leasable: it is failed with a reason
    // pointing at the image build.
    EXPECT_FALSE(queue.next().has_value());
    EXPECT_FALSE(queue.barOk(1));
    EXPECT_FALSE(queue.barOk(2));
    EXPECT_NE(queue.failReason(2).find("warm image build failed"),
              std::string::npos);
    queue.complete(*solo);
    EXPECT_TRUE(queue.finished());
    EXPECT_EQ(queue.tally().failed, 2u);
}

/** A minimal cached bar manifest the cache scan accepts for `key`. */
std::string
cachedBarManifest(const std::string &key)
{
    stats::Manifest m;
    m.figure = "test";
    m.title = "campaign cell";
    stats::ManifestBar bar;
    bar.name = "bar";
    bar.meta.present = true;
    bar.meta.key = key;
    bar.meta.configDigest = "0000000000000000";
    bar.meta.seed = 1;
    m.bars.push_back(std::move(bar));
    return stats::manifestToJson(m);
}

TEST(CampaignQueue, CachedBuilderWithMissingImageRegeneratesIt)
{
    const std::string dir = freshDir("campaign_queue_imageonly");
    std::filesystem::create_directories(dir + "/bars");
    const campaign::CampaignPlan plan = syntheticPlan();
    // Builder result cached; no warm image on disk; member pending.
    campaign::writeFileAtomic(campaign::barStatsPath(dir, "k1"),
                              cachedBarManifest("k1"));
    campaign::CampaignQueue queue(plan, dir);
    EXPECT_EQ(queue.tally().cached, 1u);

    const auto solo = queue.next();
    ASSERT_TRUE(solo.has_value());
    EXPECT_EQ(solo->index, 0u);
    // The builder is not re-measured — just its warm-up replayed.
    const auto image = queue.next();
    ASSERT_TRUE(image.has_value());
    EXPECT_EQ(image->index, 1u);
    EXPECT_EQ(image->mode, campaign::LeaseMode::ImageOnly);
    // Only one ImageOnly lease goes out at a time.
    EXPECT_FALSE(queue.next().has_value());
    queue.complete(*image);
    const auto member = queue.next();
    ASSERT_TRUE(member.has_value());
    EXPECT_EQ(member->index, 2u);
    EXPECT_EQ(member->mode, campaign::LeaseMode::Restore);
}

TEST(CampaignQueue, ExistingImageLetsEveryMemberRestore)
{
    const std::string dir = freshDir("campaign_queue_image_present");
    std::filesystem::create_directories(dir + "/ckpt");
    writeFile(campaign::imagePath(dir, "g-pair"), "placeholder");
    const campaign::CampaignPlan plan = syntheticPlan();
    campaign::CampaignQueue queue(plan, dir);

    queue.next(); // singleton
    const auto builder = queue.next();
    ASSERT_TRUE(builder.has_value());
    EXPECT_EQ(builder->mode, campaign::LeaseMode::Restore);
    const auto member = queue.next();
    ASSERT_TRUE(member.has_value());
    EXPECT_EQ(member->mode, campaign::LeaseMode::Restore);
}

TEST(CampaignCache, HalfWrittenOrMismatchedFilesAreNotHits)
{
    const std::string dir = freshDir("campaign_cache");
    std::filesystem::create_directories(dir + "/bars");
    const std::string path = campaign::barStatsPath(dir, "kX");
    EXPECT_FALSE(campaign::barResultCached(path, "kX")); // absent
    writeFile(path, "{\"schema\": \"isim-st");            // truncated
    EXPECT_FALSE(campaign::barResultCached(path, "kX"));
    writeFile(path, cachedBarManifest("other-key"));      // stale
    EXPECT_FALSE(campaign::barResultCached(path, "kX"));
    writeFile(path, cachedBarManifest("kX"));
    EXPECT_TRUE(campaign::barResultCached(path, "kX"));
}

// ---------------------------------------------------------------------
// META echo
// ---------------------------------------------------------------------

TEST(ManifestMeta, RoundTripsThroughTheManifestJson)
{
    stats::Manifest m;
    m.figure = "f";
    m.title = "t";
    stats::ManifestBar bar;
    bar.name = "cell";
    bar.meta.present = true;
    bar.meta.key = "00112233aabbccdd";
    bar.meta.configDigest = "deadbeefcafef00d";
    bar.meta.seed = 9;
    bar.meta.simWallMs = 12.5;
    bar.meta.hostWallMs = 3.25;
    bar.meta.status = "ok";
    m.bars.push_back(bar);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(stats::manifestToJson(m), doc, &err)) << err;
    const std::vector<stats::BarMetaView> meta =
        stats::manifestMeta(doc);
    ASSERT_EQ(meta.size(), 1u);
    EXPECT_EQ(meta[0].bar, "cell");
    EXPECT_EQ(meta[0].meta.key, bar.meta.key);
    EXPECT_EQ(meta[0].meta.configDigest, bar.meta.configDigest);
    EXPECT_EQ(meta[0].meta.seed, 9u);
    EXPECT_EQ(meta[0].meta.status, "ok");
    EXPECT_DOUBLE_EQ(meta[0].meta.simWallMs, 12.5);
    EXPECT_DOUBLE_EQ(meta[0].meta.hostWallMs, 3.25);
    // META is identity, not measurement: it must never leak into the
    // flattened stat rows a diff compares.
    EXPECT_TRUE(stats::flattenManifest(doc).empty());
}

TEST(ManifestMeta, ParsesLegacyVersion1WallMsKey)
{
    // Version-1 manifests spelled the simulated wall time "wall_ms";
    // old bar files on disk must keep parsing into simWallMs.
    const std::string legacy =
        "{\"schema\": \"isim-stats\", \"version\": 1,\n"
        " \"figure\": \"f\", \"title\": \"t\", \"bars\": [\n"
        "  {\"name\": \"cell\", \"meta\": {\"key\": \"k1\",\n"
        "    \"config_digest\": \"d1\", \"seed\": 7,\n"
        "    \"schema_version\": 1, \"wall_ms\": 42.5,\n"
        "    \"status\": \"ok\"}, \"stats\": {}}\n"
        "]}\n";
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(legacy, doc, &err)) << err;
    const std::vector<stats::BarMetaView> meta =
        stats::manifestMeta(doc);
    ASSERT_EQ(meta.size(), 1u);
    EXPECT_DOUBLE_EQ(meta[0].meta.simWallMs, 42.5);
    // No host time in a legacy manifest: stays "absent".
    EXPECT_LT(meta[0].meta.hostWallMs, 0.0);
}

TEST(RunnerMeta, RunMachineStampsTheContentAddress)
{
    MachineConfig cfg;
    cfg.name = "meta-echo";
    cfg.numCpus = 1;
    cfg.workload.branches = 4;
    cfg.workload.accountsPerBranch = 5000;
    cfg.workload.transactions = 15;
    cfg.workload.warmupTransactions = 5;
    cfg.workload.seed = 11;

    RunOptions options;
    options.verbose = false;
    options.jobs = 1;
    const ExperimentRunner runner(options);
    const RunResult r = runner.runOne(cfg);

    const std::vector<std::uint8_t> bytes = ckpt::configBytes(cfg);
    EXPECT_EQ(r.resultKey, stats::resultKey(bytes, 11));
    EXPECT_EQ(r.configDigest, stats::configDigest(bytes));
    EXPECT_EQ(r.seed, 11u);
}

// ---------------------------------------------------------------------
// Sweep expansion hard errors
// ---------------------------------------------------------------------

TEST(SweepSpecErrors, EmptyAxisIsFatal)
{
    ScopedPanicThrow guard;
    SweepSpec sweep;
    sweep.id = "bad-sweep";
    sweep.axes.push_back(SweepAxis{"assoc", {}});
    EXPECT_THROW(sweep.points(), PanicError);
    EXPECT_THROW(sweep.expand(), PanicError);
}

TEST(SweepSpecErrors, DuplicateBarNamesAreFatal)
{
    ScopedPanicThrow guard;
    SweepSpec sweep;
    sweep.id = "dup-sweep";
    sweep.axes.push_back(SweepAxis{
        "size",
        {SweepPoint{"2M", {}}, SweepPoint{"2M", {}}},
    });
    EXPECT_THROW(sweep.expand(), PanicError);
}

// ---------------------------------------------------------------------
// End to end: interrupt + resume == uninterrupted (byte-identical)
// ---------------------------------------------------------------------

TEST(CampaignEndToEnd, InterruptedResumeMatchesUninterruptedByteForByte)
{
    const std::string base = freshDir("campaign_e2e");
    const std::string specPath = base + "/spec.json";
    writeFile(specPath,
              R"({"schema": "isim-campaign", "version": 1,
                  "name": "e2e", "figures": ["fig10-uni"],
                  "seeds": [5]})");

    campaign::CampaignRunConfig run;
    run.specPath = specPath;
    run.exePath = "unused-in-process";
    run.options = quickOptions();
    run.options.procs = 1;

    // Reference: one uninterrupted in-process run.
    run.outDir = base + "/ref";
    ASSERT_EQ(campaign::runCampaign(run), 0);
    const std::string reference = slurp(run.outDir + "/campaign.json");
    ASSERT_FALSE(reference.empty());

    // Interrupted run: stop after one lease completion (exit 3, no
    // merged manifest), leaving that cell in the cache...
    run.outDir = base + "/resumed";
    run.stopAfter = 1;
    ASSERT_EQ(campaign::runCampaign(run), 3);
    EXPECT_FALSE(
        std::filesystem::exists(run.outDir + "/campaign.json"));
    std::size_t cachedCells = 0;
    for (const auto &entry : std::filesystem::directory_iterator(
             run.outDir + "/bars")) {
        (void)entry;
        ++cachedCells;
    }
    EXPECT_GE(cachedCells, 1u);

    // ...then resume to completion: the cached cell is skipped and
    // the merged manifest must match the uninterrupted run exactly.
    run.stopAfter = -1;
    ASSERT_EQ(campaign::runCampaign(run), 0);
    EXPECT_EQ(slurp(run.outDir + "/campaign.json"), reference);

    // The merged manifest is a regular isim-stats document with a
    // META block per cell, every cell ok.
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(reference, doc, &err)) << err;
    const std::vector<stats::BarMetaView> meta =
        stats::manifestMeta(doc);
    ASSERT_EQ(meta.size(), 3u);
    for (const stats::BarMetaView &view : meta)
        EXPECT_EQ(view.meta.status, "ok") << view.bar;
    EXPECT_FALSE(stats::flattenManifest(doc).empty());
}

TEST(CampaignEndToEnd, SpecDriftOnResumeIsFatal)
{
    ScopedPanicThrow guard;
    const std::string base = freshDir("campaign_drift");
    const std::string specPath = base + "/spec.json";
    writeFile(specPath,
              R"({"schema": "isim-campaign", "version": 1,
                  "name": "drift", "figures": ["fig10-uni"],
                  "seeds": [5]})");

    campaign::CampaignRunConfig run;
    run.specPath = specPath;
    run.exePath = "unused-in-process";
    run.options = quickOptions();
    run.options.procs = 1;
    run.outDir = base + "/out";
    run.stopAfter = 0; // touch the directory, run nothing
    ASSERT_EQ(campaign::runCampaign(run), 3);

    // Editing the spec between sessions invalidates the directory:
    // the cached cells were computed under different inputs.
    writeFile(specPath,
              R"({"schema": "isim-campaign", "version": 1,
                  "name": "drift", "figures": ["fig10-uni"],
                  "seeds": [6]})");
    EXPECT_THROW(campaign::runCampaign(run), PanicError);
}

} // namespace
} // namespace isim
