/**
 * @file
 * Integration tests of the assembled machine: full runs at reduced
 * scale, determinism, warm-up semantics, coherence invariants after
 * execution, and placement effects.
 */

#include <gtest/gtest.h>

#include "src/base/logging.hh"
#include "src/core/machine.hh"

namespace isim {
namespace {

/** Reduced-scale workload so tests run in milliseconds. */
WorkloadParams
testWorkload(std::uint64_t txns = 60)
{
    WorkloadParams p;
    p.branches = 8;
    p.accountsPerBranch = 10000;
    p.blockBufferBytes = 64 * mib;
    p.transactions = txns;
    p.warmupTransactions = txns / 3;
    return p;
}

MachineConfig
uniConfig(std::uint64_t txns = 60)
{
    MachineConfig cfg;
    cfg.name = "test-uni";
    cfg.numCpus = 1;
    cfg.l2 = CacheGeometry{1 * mib, 4, 64};
    cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.workload = testWorkload(txns);
    return cfg;
}

MachineConfig
mpConfig(std::uint64_t txns = 60)
{
    MachineConfig cfg = uniConfig(txns);
    cfg.name = "test-mp";
    cfg.numCpus = 4;
    return cfg;
}

TEST(Machine, UniprocessorRunCompletes)
{
    setQuiet(true);
    Machine m(uniConfig());
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_EQ(r.transactions, 60u);
    EXPECT_TRUE(r.dbConsistent);
    EXPECT_GT(r.cpu.instructions, 0u);
    EXPECT_GT(r.execTime(), 0u);
    EXPECT_GT(r.wallTime, 0u);
    EXPECT_GT(r.misses.totalL2Misses(), 0u);
    EXPECT_GT(r.tps(), 0.0);
    // Uniprocessor: no remote misses at all.
    EXPECT_EQ(r.misses.dataRemoteClean, 0u);
    EXPECT_EQ(r.misses.dataRemoteDirty, 0u);
    EXPECT_EQ(r.cpu.remStall(), 0u);
    m.memSys().checkInvariants();
}

TEST(Machine, MultiprocessorHasCommunication)
{
    setQuiet(true);
    Machine m(mpConfig());
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_EQ(r.transactions, 60u);
    EXPECT_TRUE(r.dbConsistent);
    EXPECT_GT(r.misses.dataRemoteClean, 0u);
    EXPECT_GT(r.misses.dataRemoteDirty, 0u);
    EXPECT_GT(r.misses.invalidationsSent, 0u);
    EXPECT_GT(r.cpu.remStall(), 0u);
    m.memSys().checkInvariants();
}

TEST(Machine, DeterministicAcrossIdenticalRuns)
{
    setQuiet(true);
    Machine a(mpConfig());
    Machine b(mpConfig());
    const RunResult ra = a.run(ExecMode::Timing);
    const RunResult rb = b.run(ExecMode::Timing);
    EXPECT_EQ(ra.cpu.instructions, rb.cpu.instructions);
    EXPECT_EQ(ra.execTime(), rb.execTime());
    EXPECT_EQ(ra.wallTime, rb.wallTime);
    EXPECT_EQ(ra.misses.totalL2Misses(), rb.misses.totalL2Misses());
    EXPECT_EQ(ra.misses.dataRemoteDirty, rb.misses.dataRemoteDirty);
    EXPECT_EQ(ra.misses.invalidationsSent, rb.misses.invalidationsSent);
}

TEST(Machine, SeedChangesResults)
{
    setQuiet(true);
    MachineConfig c1 = mpConfig(), c2 = mpConfig();
    c2.workload.seed ^= 0x1234;
    const RunResult r1 = Machine(c1).run(ExecMode::Timing);
    const RunResult r2 = Machine(c2).run(ExecMode::Timing);
    EXPECT_NE(r1.execTime(), r2.execTime());
}

TEST(Machine, KernelShareInPlausibleRange)
{
    setQuiet(true);
    Machine m(uniConfig(150));
    const RunResult r = m.run(ExecMode::Timing);
    // Paper: the kernel is ~25% of execution time for OLTP.
    EXPECT_GT(r.cpu.kernelFraction(), 0.10);
    EXPECT_LT(r.cpu.kernelFraction(), 0.45);
}

TEST(Machine, WarmupExcludedFromMeasurement)
{
    setQuiet(true);
    MachineConfig cfg = uniConfig(90);
    Machine m(cfg);
    const RunResult r = m.run(ExecMode::Timing);
    // Measured transactions only (engine committed warmup + measured).
    EXPECT_EQ(r.transactions, 90u);
    EXPECT_EQ(m.engine().committedTransactions(),
              90u + cfg.workload.warmupTransactions);
}

TEST(Machine, ReplicationLocalizesInstructionMisses)
{
    setQuiet(true);
    MachineConfig plain = mpConfig(100);
    MachineConfig repl = mpConfig(100);
    repl.replicateCode = true;
    // Small L2 so instruction misses exist at all.
    plain.l2 = repl.l2 = CacheGeometry{256 * kib, 2, 64};
    const RunResult rp = Machine(plain).run(ExecMode::Timing);
    const RunResult rr = Machine(repl).run(ExecMode::Timing);
    EXPECT_GT(rp.misses.instrRemote, 0u);
    // With per-node text copies, instruction misses are local.
    EXPECT_EQ(rr.misses.instrRemote, 0u);
    EXPECT_GT(rr.misses.instrLocal, 0u);
}

TEST(Machine, RacMachineRunsAndFiltersRemoteTraffic)
{
    setQuiet(true);
    MachineConfig norac = mpConfig(100);
    MachineConfig withrac = mpConfig(100);
    norac.level = withrac.level = IntegrationLevel::FullInt;
    norac.l2Impl = withrac.l2Impl = L2Impl::OnchipSram;
    norac.l2 = withrac.l2 = CacheGeometry{256 * kib, 2, 64};
    withrac.rac = true;
    withrac.racGeom = CacheGeometry{4 * mib, 8, 64};
    const RunResult rn = Machine(norac).run(ExecMode::Timing);
    const RunResult rw = Machine(withrac).run(ExecMode::Timing);
    EXPECT_GT(rw.rac.lookups, 0u);
    EXPECT_GT(rw.rac.hits, 0u);
    // RAC hits convert remote misses into local ones (Figure 11).
    const double local_share_n =
        static_cast<double>(rn.misses.instrLocal + rn.misses.dataLocal) /
        static_cast<double>(rn.misses.totalL2Misses());
    const double local_share_w =
        static_cast<double>(rw.misses.instrLocal + rw.misses.dataLocal) /
        static_cast<double>(rw.misses.totalL2Misses());
    EXPECT_GT(local_share_w, local_share_n);
}

TEST(Machine, OooModelRuns)
{
    setQuiet(true);
    MachineConfig cfg = uniConfig(80);
    cfg.cpuModel = CpuModel::OutOfOrder;
    Machine m(cfg);
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_EQ(r.transactions, 80u);
    EXPECT_TRUE(r.dbConsistent);
    EXPECT_GT(r.cpu.busy, 0u);
}

TEST(Machine, SnapshotAggregatesAllCpus)
{
    setQuiet(true);
    Machine m(mpConfig());
    m.run(ExecMode::Timing);
    CpuStats manual;
    for (NodeId n = 0; n < 4; ++n)
        manual += m.cpu(n).stats();
    const RunResult snap = m.snapshot();
    EXPECT_EQ(snap.cpu.instructions, manual.instructions);
    EXPECT_EQ(snap.cpu.nonIdle(), manual.nonIdle());
}

TEST(MachineDeathTest, InvalidLevelImplComboIsFatal)
{
    MachineConfig cfg = uniConfig();
    cfg.level = IntegrationLevel::Base;
    cfg.l2Impl = L2Impl::OnchipSram;
    EXPECT_EXIT(Machine m(cfg), ::testing::ExitedWithCode(1),
                "cannot use");
}

} // namespace
} // namespace isim
