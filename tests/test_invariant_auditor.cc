/**
 * @file
 * Tests for the runtime invariant auditor (src/verify/invariants.hh)
 * and the panic-throw mode it relies on.
 *
 * The stock protocol must drive arbitrary workloads through
 * auditedAccess without a single audit firing; each injected
 * ProtocolMutation must make the auditor throw PanicError. This is
 * mutation testing of the auditor itself: a bug class the auditor
 * cannot catch here would also slip through in instrumented
 * simulation runs.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/logging.hh"
#include "src/verify/invariants.hh"

namespace isim::verify {
namespace {

/** Tiny two-node system: single-set L1s over a 4-set direct L2, so
 *  evictions (and the mutants hiding in them) trigger quickly. */
MemSysConfig
tinyConfig(bool rac, unsigned vb_entries)
{
    MemSysConfig cfg;
    cfg.numNodes = 2;
    cfg.coresPerNode = 1;
    cfg.lineBytes = 64;
    cfg.l1Size = 128;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{256, 1, 64};
    cfg.racEnabled = rac;
    cfg.rac = CacheGeometry{128, 1, 64};
    cfg.victimBufferEntries = vb_entries;
    return cfg;
}

/** Byte address of the i-th contending line (all in L2 set 0, homes
 *  alternating) — the same placement scheme the model checker uses. */
Addr
lineAddr(unsigned i)
{
    const Addr line =
        (static_cast<Addr>(i % 2) << 25) | static_cast<Addr>((i / 2) * 4);
    return line << 6;
}

struct Ev
{
    NodeId core;
    RefType type;
    Addr paddr;
};

void
drive(MemorySystem &ms, const std::vector<Ev> &evs)
{
    for (const Ev &ev : evs)
        auditedAccess(ms, ev.core, ev.type, ev.paddr);
    auditFull(ms);
}

/** Deterministic mixed workload over four contending lines. */
std::vector<Ev>
workload(unsigned length)
{
    std::vector<Ev> evs;
    std::uint64_t x = 0x2545F4914F6CDD1Dull;
    for (unsigned i = 0; i < length; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const NodeId core = static_cast<NodeId>(x % 2);
        const RefType type = (x >> 8) % 3 == 0 ? RefType::Store
                                               : RefType::Load;
        evs.push_back({core, type, lineAddr((x >> 16) % 4)});
    }
    return evs;
}

TEST(PanicThrow, ScopedModeThrowsAndRestores)
{
    EXPECT_FALSE(panicThrows());
    {
        ScopedPanicThrow scope;
        EXPECT_TRUE(panicThrows());
        try {
            isim_panic("test panic %d", 42);
            FAIL() << "panic did not throw";
        } catch (const PanicError &e) {
            EXPECT_NE(std::string(e.what()).find("test panic 42"),
                      std::string::npos);
            EXPECT_NE(std::string(e.what()).find("panic: "),
                      std::string::npos);
        }
    }
    EXPECT_FALSE(panicThrows());
}

TEST(PanicThrow, AssertCarriesConditionText)
{
    ScopedPanicThrow scope;
    try {
        isim_assert(1 == 2, "math still works");
        FAIL() << "assert did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("1 == 2"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("math still works"),
                  std::string::npos);
    }
}

TEST(Auditor, StockProtocolPassesPlain)
{
    ScopedPanicThrow scope;
    MemorySystem ms(tinyConfig(false, 0));
    EXPECT_NO_THROW(drive(ms, workload(2000)));
}

TEST(Auditor, StockProtocolPassesWithRacAndVictimBuffer)
{
    ScopedPanicThrow scope;
    MemorySystem ms(tinyConfig(true, 1));
    EXPECT_NO_THROW(drive(ms, workload(2000)));
}

TEST(Auditor, StockProtocolPassesOnLargeGeometry)
{
    // Default-sized caches: nothing contends, everything hits; the
    // oracle must agree on hits too.
    ScopedPanicThrow scope;
    MemSysConfig cfg;
    cfg.numNodes = 2;
    cfg.racEnabled = true;
    MemorySystem ms(cfg);
    EXPECT_NO_THROW(drive(ms, workload(500)));
}

TEST(Auditor, TransitionCountMatchesAccesses)
{
    MemorySystem ms(tinyConfig(false, 0));
    const auto evs = workload(100);
    for (const Ev &ev : evs)
        ms.access(ev.core, ev.type, ev.paddr);
    EXPECT_EQ(ms.transitionCount(), evs.size());
    ms.resetStats();
    EXPECT_EQ(ms.transitionCount(), 0u);
}

/** Each mutant must make the auditor throw on a directed sequence. */
void
expectMutantCaught(MemSysConfig cfg, ProtocolMutation m,
                   const std::vector<Ev> &evs)
{
    ScopedPanicThrow scope;
    MemorySystem ms(cfg);
    ms.setMutationForTest(m);
    EXPECT_THROW(drive(ms, evs), PanicError)
        << protocolMutationName(m) << " escaped the auditor";
}

TEST(AuditorMutation, SkipUpgradeInvalCaught)
{
    // Two sharers, then an upgrade that (mutated) leaves the other
    // sharer's copy in place.
    expectMutantCaught(tinyConfig(false, 0),
                       ProtocolMutation::SkipUpgradeInval,
                       {{0, RefType::Load, lineAddr(0)},
                        {1, RefType::Load, lineAddr(0)},
                        {0, RefType::Store, lineAddr(0)}});
}

TEST(AuditorMutation, ForgetSharerBitCaught)
{
    // Get the line Shared, evict it at node 1, re-read it there: the
    // mutated directory forgets to re-add node 1 to the sharer vector.
    expectMutantCaught(tinyConfig(false, 0),
                       ProtocolMutation::ForgetSharerBit,
                       {{0, RefType::Load, lineAddr(0)},
                        {1, RefType::Load, lineAddr(0)},
                        {1, RefType::Load, lineAddr(2)},
                        {1, RefType::Load, lineAddr(0)}});
}

TEST(AuditorMutation, MisclassifyDirtyCaught)
{
    // A dirty remote line read as if it were clean: the
    // classification oracle disagrees immediately.
    expectMutantCaught(tinyConfig(false, 0),
                       ProtocolMutation::MisclassifyDirty,
                       {{0, RefType::Store, lineAddr(0)},
                        {1, RefType::Load, lineAddr(0)}});
}

TEST(AuditorMutation, DropVictimReleaseCaught)
{
    // A conflicting fill evicts line 0 without telling the directory:
    // the reverse audit sees a phantom sharer.
    expectMutantCaught(tinyConfig(false, 0),
                       ProtocolMutation::DropVictimRelease,
                       {{0, RefType::Load, lineAddr(0)},
                        {0, RefType::Load, lineAddr(2)}});
}

TEST(AuditorMutation, SkipVictimBackInvalCaught)
{
    // The L2 eviction leaves the L1D copy in place: inclusion breaks.
    expectMutantCaught(tinyConfig(false, 0),
                       ProtocolMutation::SkipVictimBackInval,
                       {{0, RefType::Load, lineAddr(0)},
                        {0, RefType::Load, lineAddr(2)}});
}

TEST(DirectoryAudit, CheckEntryRejectsSharersBeyondNodeCount)
{
    ScopedPanicThrow scope;
    DirEntry e;
    e.state = LineState::Shared;
    e.sharers = 0b101; // node 2 does not exist in a 2-node system
    EXPECT_THROW(Directory::checkEntry(e, 2), PanicError);
    EXPECT_NO_THROW(Directory::checkEntry(e, 4));
}

TEST(DirectoryAudit, CheckEntryRejectsStaleOwnerOnSharedEntry)
{
    ScopedPanicThrow scope;
    DirEntry e;
    e.state = LineState::Shared;
    e.sharers = 0b01;
    e.owner = 1; // must be invalidNode unless Modified
    EXPECT_THROW(Directory::checkEntry(e, 2), PanicError);
}

TEST(DirectoryAudit, CheckEntryRejectsOutOfRangeOwner)
{
    ScopedPanicThrow scope;
    DirEntry e;
    e.state = LineState::Modified;
    e.owner = 5;
    e.sharers = 1u << 5;
    EXPECT_THROW(Directory::checkEntry(e, 2), PanicError);
}

} // namespace
} // namespace isim::verify
