/**
 * @file
 * Tests for the chip-multiprocessing extension (the paper's Section 8
 * outlook): multiple cores per chip with private L1s sharing the
 * node's L2. Covers intra-chip write propagation (sibling L1
 * invalidation), L2 sharing between cores, coherence safety within and
 * across chips, and full-machine runs.
 */

#include <gtest/gtest.h>

#include "src/base/logging.hh"
#include "src/base/random.hh"
#include "src/coherence/protocol.hh"
#include "src/core/machine.hh"

namespace isim {
namespace {

MemSysConfig
cmpConfig(unsigned nodes, unsigned cores_per_node)
{
    MemSysConfig cfg;
    cfg.numNodes = nodes;
    cfg.coresPerNode = cores_per_node;
    cfg.l1Size = 1 * kib;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{8 * kib, 2, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    return cfg;
}

Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

TEST(Cmp, CoreToNodeMapping)
{
    MemorySystem ms(cmpConfig(2, 4));
    EXPECT_EQ(ms.totalCores(), 8u);
    EXPECT_EQ(ms.nodeOfCore(0), 0u);
    EXPECT_EQ(ms.nodeOfCore(3), 0u);
    EXPECT_EQ(ms.nodeOfCore(4), 1u);
    EXPECT_EQ(ms.nodeOfCore(7), 1u);
}

TEST(Cmp, SecondCoreHitsSharedL2)
{
    MemorySystem ms(cmpConfig(1, 2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a); // core 0 misses to memory
    const AccessOutcome out = ms.access(1, RefType::Load, a);
    // Core 1 finds the line in the *shared* L2: no memory traffic.
    EXPECT_EQ(out.cls, MissClass::L2Hit);
    EXPECT_EQ(out.stall, ms.config().lat.l2Hit);
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), 1u);
    ms.checkInvariants();
}

TEST(Cmp, StoreInvalidatesSiblingL1)
{
    MemorySystem ms(cmpConfig(1, 2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a);
    ms.access(1, RefType::Load, a);
    ASSERT_NE(ms.l1d(0).probe(a >> 6), nullptr);
    ASSERT_NE(ms.l1d(1).probe(a >> 6), nullptr);

    const AccessOutcome out = ms.access(0, RefType::Store, a);
    // The chip owns the line; the store is an intra-chip operation.
    EXPECT_EQ(out.stall, 0u);
    EXPECT_EQ(ms.l1d(0).probe(a >> 6)->state, LineState::Modified);
    EXPECT_EQ(ms.l1d(1).probe(a >> 6), nullptr); // sibling dropped
    EXPECT_GE(ms.nodeStats(0).intraNodeInvals, 1u);
    ms.checkInvariants();
}

TEST(Cmp, SiblingReloadsAfterStoreThroughL2)
{
    MemorySystem ms(cmpConfig(1, 2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a);
    ms.access(1, RefType::Load, a);
    ms.access(0, RefType::Store, a);
    // Core 1 re-reads: L1 miss, shared-L2 hit — no off-chip traffic.
    const AccessOutcome out = ms.access(1, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::L2Hit);
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), 1u);
    ms.checkInvariants();
}

TEST(Cmp, PingPongWithinChipStaysOnChip)
{
    MemorySystem ms(cmpConfig(2, 2));
    const Addr a = at(0, 0x200);
    ms.access(0, RefType::Store, a);
    const auto misses_before = ms.aggregateStats().totalL2Misses();
    for (int i = 0; i < 20; ++i) {
        ms.access(i % 2, RefType::Store, a);
        ms.access((i + 1) % 2, RefType::Load, a);
    }
    // All the ping-ponging is L1<->L2 within the chip.
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), misses_before);
    EXPECT_EQ(ms.aggregateStats().invalidationsSent, 0u);
    EXPECT_GT(ms.nodeStats(0).intraNodeInvals, 10u);
    ms.checkInvariants();
}

TEST(Cmp, CrossChipStillCoherent)
{
    MemorySystem ms(cmpConfig(2, 2));
    const Addr a = at(0, 0x200);
    ms.access(0, RefType::Store, a); // chip 0, core 0
    const AccessOutcome out = ms.access(2, RefType::Load, a); // chip 1
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    EXPECT_EQ(ms.l1d(0).probe(a >> 6)->state, LineState::Shared);
    ms.checkInvariants();
}

TEST(Cmp, NoExclusiveL1StateOnMulticoreChips)
{
    MemorySystem ms(cmpConfig(1, 2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a);
    // With siblings present the L1 fill must be Shared (a silent L1
    // E->M would bypass sibling invalidation).
    EXPECT_EQ(ms.l1d(0).probe(a >> 6)->state, LineState::Shared);
}

TEST(Cmp, StressSafetyAcrossChipsAndCores)
{
    MemorySystem ms(cmpConfig(2, 4));
    Rng rng(0xC3D);
    for (int step = 0; step < 20000; ++step) {
        const NodeId core = static_cast<NodeId>(rng.below(8));
        const std::uint64_t idx = rng.below(64);
        const Addr addr = at(static_cast<NodeId>(idx % 2),
                             (idx / 2) << 6);
        ms.access(core,
                  rng.chance(0.4) ? RefType::Store : RefType::Load,
                  addr);
        if (step % 2000 == 0)
            ms.checkInvariants();
    }
    ms.checkInvariants();
    EXPECT_GT(ms.aggregateStats().intraNodeInvals, 0u);
    EXPECT_GT(ms.aggregateStats().dataRemoteDirty, 0u);
}

TEST(Cmp, MachineRunsConsistent)
{
    setQuiet(true);
    MachineConfig cfg;
    cfg.name = "cmp-test";
    cfg.numCpus = 8;
    cfg.coresPerNode = 4; // 2 chips x 4 cores
    cfg.level = IntegrationLevel::FullInt;
    cfg.l2Impl = L2Impl::OnchipSram;
    cfg.l2 = CacheGeometry{1 * mib, 8, 64};
    cfg.workload.branches = 8;
    cfg.workload.accountsPerBranch = 10000;
    cfg.workload.blockBufferBytes = 64 * mib;
    cfg.workload.transactions = 60;
    cfg.workload.warmupTransactions = 20;

    Machine m(cfg);
    const RunResult r = m.run(ExecMode::Timing);
    EXPECT_EQ(r.transactions, 60u);
    EXPECT_TRUE(r.dbConsistent);
    EXPECT_GT(r.misses.intraNodeInvals, 0u);
    m.memSys().checkInvariants();
}

TEST(Cmp, SharingL2ReducesOffChipCommunication)
{
    setQuiet(true);
    auto run = [](unsigned cores_per_node) {
        MachineConfig cfg;
        cfg.name = "cmp-" + std::to_string(cores_per_node);
        cfg.numCpus = 4;
        cfg.coresPerNode = cores_per_node;
        cfg.level = IntegrationLevel::FullInt;
        cfg.l2Impl = L2Impl::OnchipSram;
        cfg.l2 = CacheGeometry{1 * mib, 8, 64};
        cfg.workload.branches = 8;
        cfg.workload.accountsPerBranch = 10000;
        cfg.workload.blockBufferBytes = 64 * mib;
        cfg.workload.transactions = 100;
        cfg.workload.warmupTransactions = 40;
        return Machine(cfg).run(ExecMode::Timing);
    };
    const RunResult smp = run(1); // 4 chips x 1 core
    const RunResult cmp = run(4); // 1 chip  x 4 cores
    // On one chip there is nobody remote to communicate with.
    EXPECT_GT(smp.misses.dataRemoteDirty, 0u);
    EXPECT_EQ(cmp.misses.dataRemoteDirty, 0u);
    EXPECT_GT(smp.cpu.remStall(), cmp.cpu.remStall());
}

TEST(CmpDeathTest, IndivisibleCoreCountIsFatal)
{
    MachineConfig cfg;
    cfg.numCpus = 6;
    cfg.coresPerNode = 4;
    EXPECT_EXIT(Machine m(cfg), ::testing::ExitedWithCode(1),
                "not divisible");
}

} // namespace
} // namespace isim
