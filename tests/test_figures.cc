/**
 * @file
 * End-to-end checks of the paper's headline claims at reduced scale,
 * plus structural checks of the figure specifications. These are the
 * "shape" assertions: orderings and rough factors, not absolute bars.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/base/logging.hh"
#include "src/core/figures.hh"
#include "src/core/report.hh"

namespace isim {
namespace {

/** Shrink a figure config to test scale. */
MachineConfig
shrink(MachineConfig cfg, std::uint64_t txns = 220)
{
    cfg.workload.transactions = txns;
    cfg.workload.warmupTransactions = txns;
    return cfg;
}

RunResult
runCfg(const MachineConfig &cfg)
{
    setQuiet(true);
    Machine m(cfg);
    return m.run(ExecMode::Timing);
}

TEST(Claims, AssociativityBeatsDirectMappedAtSameSize)
{
    // Section 3: "the associative L2 outperforms the same size
    // direct-mapped L2" (1-2MB range).
    const RunResult dm = runCfg(shrink(figures::offchip(1, 1 * mib, 1)));
    const RunResult sa = runCfg(shrink(figures::offchip(1, 1 * mib, 4)));
    EXPECT_LT(sa.misses.totalL2Misses(), dm.misses.totalL2Misses());
    EXPECT_LT(sa.execTime(), dm.execTime());
}

TEST(Claims, SmallAssociativeOnChipBeatsBigDirectMappedOffChip)
{
    // The headline result: a 2MB 4/8-way on-chip cache has *fewer
    // misses* than an 8MB direct-mapped off-chip cache.
    const RunResult base = runCfg(shrink(figures::baseMachine(1)));
    const RunResult onchip4 = runCfg(
        shrink(figures::onchip(1, 2 * mib, 4, IntegrationLevel::L2Int)));
    const RunResult onchip8 = runCfg(
        shrink(figures::onchip(1, 2 * mib, 8, IntegrationLevel::L2Int)));
    EXPECT_LT(onchip4.misses.totalL2Misses(),
              base.misses.totalL2Misses());
    EXPECT_LT(onchip8.misses.totalL2Misses(),
              onchip4.misses.totalL2Misses() + 1);
    // And the lower hit latency gives a solid uniprocessor speedup.
    EXPECT_LT(static_cast<double>(onchip8.execTime()),
              0.85 * static_cast<double>(base.execTime()));
}

TEST(Claims, MissReductionFromSmallDmToBigAssocIsDramatic)
{
    // Section 3: "almost a 50 times reduction" from 1M 1-way to
    // 8M 4-way. At test scale we require at least an order of
    // magnitude.
    const RunResult small = runCfg(shrink(figures::offchip(1, 1 * mib, 1)));
    const RunResult big = runCfg(shrink(figures::offchip(1, 8 * mib, 4)));
    EXPECT_GT(small.misses.totalL2Misses(),
              10 * big.misses.totalL2Misses());
}

TEST(Claims, ConservativeBaseHurtsMultiprocessorsMost)
{
    // Figure 6: MP performance is sensitive to the remote latencies.
    const RunResult base =
        runCfg(shrink(figures::offchip(4, 8 * mib, 4), 160));
    const RunResult cons =
        runCfg(shrink(figures::offchip(4, 8 * mib, 4, true), 160));
    EXPECT_GT(cons.execTime(), base.execTime());
    // Same caches: miss counts must be (nearly) identical; only the
    // latency charging differs.
    const double m1 = static_cast<double>(base.misses.totalL2Misses());
    const double m2 = static_cast<double>(cons.misses.totalL2Misses());
    EXPECT_NEAR(m1, m2, 0.1 * m1);
}

TEST(Claims, FullIntegrationDeliversTheHeadlineSpeedups)
{
    // Section 5: ~1.4x for MP (half from the L2, half from MC+CC/NR).
    const RunResult base =
        runCfg(shrink(figures::baseMachine(4), 160));
    const RunResult l2 = runCfg(shrink(
        figures::onchip(4, 2 * mib, 8, IntegrationLevel::L2Int), 160));
    const RunResult full = runCfg(shrink(
        figures::onchip(4, 2 * mib, 8, IntegrationLevel::FullInt), 160));
    EXPECT_LT(l2.execTime(), base.execTime());
    EXPECT_LT(full.execTime(), l2.execTime());
    const double gain = static_cast<double>(base.execTime()) /
                        static_cast<double>(full.execTime());
    EXPECT_GT(gain, 1.2);
    EXPECT_LT(gain, 1.9);
}

TEST(Claims, MpIsDominatedByRemoteStall)
{
    // Figures 6/8: communication misses make remote stall the largest
    // execution-time component at large cache sizes.
    const RunResult r = runCfg(shrink(figures::baseMachine(4), 160));
    EXPECT_GT(r.cpu.remStall(), r.cpu.localStall);
    EXPECT_GT(r.cpu.remStall(), r.cpu.busy);
}

TEST(Claims, OooIsFasterButIntegrationGainIsSimilar)
{
    // Section 7: OOO gives ~1.3-1.4x, and the *relative* integration
    // gain is virtually identical for the two processor models.
    const std::uint64_t txns = 200;
    const RunResult in_base =
        runCfg(shrink(figures::baseMachine(1, CpuModel::InOrder), txns));
    const RunResult ooo_base = runCfg(
        shrink(figures::baseMachine(1, CpuModel::OutOfOrder), txns));
    EXPECT_LT(ooo_base.execTime(), in_base.execTime());

    const RunResult in_l2 = runCfg(shrink(
        figures::onchip(1, 2 * mib, 8, IntegrationLevel::L2Int,
                        L2Impl::OnchipSram, CpuModel::InOrder),
        txns));
    const RunResult ooo_l2 = runCfg(shrink(
        figures::onchip(1, 2 * mib, 8, IntegrationLevel::L2Int,
                        L2Impl::OnchipSram, CpuModel::OutOfOrder),
        txns));
    const double gain_in = static_cast<double>(in_base.execTime()) /
                           static_cast<double>(in_l2.execTime());
    const double gain_ooo = static_cast<double>(ooo_base.execTime()) /
                            static_cast<double>(ooo_l2.execTime());
    EXPECT_GT(gain_in, 1.0);
    EXPECT_GT(gain_ooo, 1.0);
    EXPECT_NEAR(gain_in, gain_ooo, 0.25 * gain_in);
}

TEST(Specs, FigureShapesAreWellFormed)
{
    for (const FigureSpec &spec :
         {figures::figure5(), figures::figure6(), figures::figure7(),
          figures::figure8(), figures::figure10Uni(),
          figures::figure10Mp(), figures::figure11(),
          figures::figure12(), figures::figure13Uni(),
          figures::figure13Mp()}) {
        EXPECT_FALSE(spec.bars.empty()) << spec.id;
        EXPECT_LT(spec.normalizeTo, spec.bars.size()) << spec.id;
        for (const FigureBar &bar : spec.bars) {
            EXPECT_TRUE(
                validCombination(bar.config.level, bar.config.l2Impl))
                << spec.id << " / " << bar.config.name;
            EXPECT_FALSE(bar.config.name.empty()) << spec.id;
        }
    }
}

TEST(Specs, CountsMatchThePaper)
{
    EXPECT_EQ(figures::figure5().bars.size(), 9u);
    EXPECT_EQ(figures::figure6().bars.size(), 9u);
    EXPECT_EQ(figures::figure7().bars.size(), 7u);
    EXPECT_EQ(figures::figure8().bars.size(), 7u);
    EXPECT_EQ(figures::figure10Uni().bars.size(), 3u);
    EXPECT_EQ(figures::figure10Mp().bars.size(), 4u);
    EXPECT_EQ(figures::figure11().bars.size(), 4u);
    EXPECT_EQ(figures::figure12().bars.size(), 5u);
    EXPECT_EQ(figures::figure13Uni().bars.size(), 4u);
    EXPECT_EQ(figures::figure13Mp().bars.size(), 5u);
    // Figure 13 is normalized to the Base out-of-order bar.
    EXPECT_EQ(figures::figure13Uni().normalizeTo, 1u);
}

TEST(Report, TablesRenderAllBars)
{
    setQuiet(true);
    FigureSpec spec = figures::figure10Uni();
    for (FigureBar &bar : spec.bars) {
        bar.config.workload.transactions = 40;
        bar.config.workload.warmupTransactions = 15;
        bar.config.workload.branches = 8;
        bar.config.workload.accountsPerBranch = 10000;
        bar.config.workload.blockBufferBytes = 64 * mib;
    }
    ExperimentRunner runner(/*verbose=*/false);
    const FigureResult result = runner.run(spec);
    const Table exec = executionTable(result);
    const Table miss = missTable(result);
    const Table detail = detailTable(result);
    EXPECT_EQ(exec.rows(), spec.bars.size());
    EXPECT_EQ(miss.rows(), spec.bars.size());
    EXPECT_EQ(detail.rows(), spec.bars.size());
    // Normalized total of the reference bar is exactly 100.
    const std::string text = exec.toText();
    EXPECT_NE(text.find("100.0"), std::string::npos);
    EXPECT_FALSE(summaryLine(result).empty());

    // JSON export: well-formed enough to carry every bar.
    const std::string json = figureToJson(result);
    EXPECT_NE(json.find("\"id\": \"Figure 10\""), std::string::npos);
    for (const RunResult &r : result.runs) {
        EXPECT_NE(json.find("\"" + r.name + "\""), std::string::npos);
    }
    EXPECT_NE(json.find("\"exec_norm\": 100.0000"), std::string::npos);
    EXPECT_NE(json.find("\"miss_data_3hop\""), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

} // namespace
} // namespace isim
