/**
 * @file
 * Scenario tests for the directory MESI protocol: grant states, silent
 * upgrades, 2-hop vs 3-hop classification, invalidations, write-backs,
 * replacement hints, inclusion, and latency charging.
 */

#include <gtest/gtest.h>

#include "src/coherence/protocol.hh"

namespace isim {
namespace {

MemSysConfig
smallConfig(unsigned nodes)
{
    MemSysConfig cfg;
    cfg.numNodes = nodes;
    cfg.l1Size = 1 * kib;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{4 * kib, 2, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    return cfg;
}

/** Byte address `offset` within `node`'s memory window. */
Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

TEST(Protocol, FirstReadGrantsExclusiveLocal)
{
    MemorySystem ms(smallConfig(4));
    const AccessOutcome out = ms.access(0, RefType::Load, at(0, 0x100));
    EXPECT_EQ(out.cls, MissClass::Local);
    EXPECT_EQ(out.stall, ms.config().lat.local);
    EXPECT_EQ(ms.l2(0).probe(at(0, 0x100) >> 6)->state,
              LineState::Exclusive);
    const NodeProtocolStats &s = ms.nodeStats(0);
    EXPECT_EQ(s.dataLocal, 1u);
    EXPECT_EQ(s.totalL2Misses(), 1u);
    ms.checkInvariants();
}

TEST(Protocol, SilentExclusiveToModifiedUpgrade)
{
    MemorySystem ms(smallConfig(4));
    ms.access(0, RefType::Load, at(0, 0x100));
    const AccessOutcome out = ms.access(0, RefType::Store, at(0, 0x100));
    EXPECT_EQ(out.cls, MissClass::L1Hit);
    EXPECT_EQ(out.stall, 0u);
    EXPECT_FALSE(out.upgrade);
    EXPECT_EQ(ms.nodeStats(0).upgrades, 0u);
    EXPECT_EQ(ms.l2(0).probe(at(0, 0x100) >> 6)->state,
              LineState::Modified);
    ms.checkInvariants();
}

TEST(Protocol, RemoteCleanReadIsTwoHop)
{
    MemorySystem ms(smallConfig(4));
    const AccessOutcome out = ms.access(0, RefType::Load, at(1, 0x40));
    EXPECT_EQ(out.cls, MissClass::RemoteClean);
    EXPECT_EQ(out.stall, ms.config().lat.remote);
    EXPECT_EQ(ms.nodeStats(0).dataRemoteClean, 1u);
}

TEST(Protocol, DirtyRemoteReadIsThreeHopAndDowngrades)
{
    MemorySystem ms(smallConfig(4));
    ms.access(0, RefType::Store, at(2, 0x80)); // node 0 owns dirty
    const AccessOutcome out = ms.access(1, RefType::Load, at(2, 0x80));
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    EXPECT_EQ(out.stall, ms.config().lat.remoteDirty);
    // Both copies now Shared; directory lists both.
    EXPECT_EQ(ms.l2(0).probe(at(2, 0x80) >> 6)->state,
              LineState::Shared);
    EXPECT_EQ(ms.l2(1).probe(at(2, 0x80) >> 6)->state,
              LineState::Shared);
    const DirEntry *e = ms.directory().find(at(2, 0x80) >> 6);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, LineState::Shared);
    EXPECT_TRUE(e->hasSharer(0));
    EXPECT_TRUE(e->hasSharer(1));
    ms.checkInvariants();
}

TEST(Protocol, CleanExclusiveRemoteReadIsNotThreeHop)
{
    MemorySystem ms(smallConfig(4));
    ms.access(0, RefType::Load, at(1, 0x80)); // node 0 owns clean (E)
    const AccessOutcome out = ms.access(1, RefType::Load, at(1, 0x80));
    // Home is the requester; owner's copy was clean.
    EXPECT_EQ(out.cls, MissClass::Local);
    EXPECT_EQ(ms.l2(0).probe(at(1, 0x80) >> 6)->state,
              LineState::Shared);
    EXPECT_EQ(ms.nodeStats(1).dataRemoteDirty, 0u);
    ms.checkInvariants();
}

TEST(Protocol, StoreMissInvalidatesAllSharers)
{
    MemorySystem ms(smallConfig(4));
    const Addr a = at(0, 0x200);
    ms.access(0, RefType::Load, a);
    ms.access(1, RefType::Load, a);
    ms.access(2, RefType::Load, a);
    const AccessOutcome out = ms.access(3, RefType::Store, a);
    EXPECT_EQ(out.cls, MissClass::RemoteClean); // home 0, clean data
    EXPECT_EQ(ms.nodeStats(3).invalidationsSent, 3u);
    EXPECT_EQ(ms.nodeStats(3).storesCausingInval, 1u);
    EXPECT_EQ(ms.l2(0).probe(a >> 6), nullptr);
    EXPECT_EQ(ms.l2(1).probe(a >> 6), nullptr);
    EXPECT_EQ(ms.l2(2).probe(a >> 6), nullptr);
    EXPECT_EQ(ms.l2(3).probe(a >> 6)->state, LineState::Modified);
    ms.checkInvariants();
}

TEST(Protocol, StoreToDirtyRemoteIsThreeHop)
{
    MemorySystem ms(smallConfig(4));
    const Addr a = at(3, 0x200);
    ms.access(0, RefType::Store, a); // node 0 dirty owner
    const AccessOutcome out = ms.access(1, RefType::Store, a);
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    EXPECT_EQ(ms.l2(0).probe(a >> 6), nullptr);
    EXPECT_EQ(ms.l2(1).probe(a >> 6)->state, LineState::Modified);
    ms.checkInvariants();
}

TEST(Protocol, UpgradeChargesControlLatencyAndIsNotAFill)
{
    MemSysConfig cfg = smallConfig(4);
    cfg.lat = figure3Latencies(IntegrationLevel::L2McInt,
                               L2Impl::OnchipSram);
    MemorySystem ms(cfg);
    const Addr a = at(1, 0x240);
    ms.access(0, RefType::Load, a);
    ms.access(1, RefType::Load, a);
    const auto misses_before = ms.nodeStats(0).totalL2Misses();
    const AccessOutcome out = ms.access(0, RefType::Store, a);
    EXPECT_TRUE(out.upgrade);
    EXPECT_EQ(out.cls, MissClass::RemoteClean);
    // Control-only transaction: upgradeRemote (175), not the 225
    // data-fetch latency of the separated-CC configuration.
    EXPECT_EQ(out.stall, cfg.lat.upgradeRemote);
    EXPECT_LT(cfg.lat.upgradeRemote, cfg.lat.remote);
    EXPECT_EQ(ms.nodeStats(0).totalL2Misses(), misses_before);
    EXPECT_EQ(ms.nodeStats(0).upgrades, 1u);
    EXPECT_EQ(ms.nodeStats(0).invalidationsSent, 1u);
    ms.checkInvariants();
}

TEST(Protocol, DirtyEvictionWritesBackSoNextReadIsTwoHop)
{
    MemorySystem ms(smallConfig(4));
    const CacheGeometry l2 = smallConfig(4).l2;
    const Addr a = at(0, 0x40);
    ms.access(1, RefType::Store, a); // dirty at node 1

    // Evict it from node 1 by filling its set with conflicting lines.
    const Addr line = a >> 6;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k) {
        ms.access(1, RefType::Load,
                  at(0, (line + k * l2.sets()) << 6));
    }
    EXPECT_EQ(ms.l2(1).probe(line), nullptr);
    EXPECT_GE(ms.nodeStats(1).writebacksToHome, 1u);

    // Memory at home is valid: node 2's read is a clean 2-hop miss.
    const AccessOutcome out = ms.access(2, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::RemoteClean);
    ms.checkInvariants();
}

TEST(Protocol, CleanEvictionSendsReplacementHint)
{
    MemorySystem ms(smallConfig(4));
    const CacheGeometry l2 = smallConfig(4).l2;
    const Addr a = at(0, 0x40);
    ms.access(1, RefType::Load, a);
    ms.access(2, RefType::Load, a); // line Shared by 1 and 2

    const Addr line = a >> 6;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k) {
        ms.access(1, RefType::Load,
                  at(0, (line + k * l2.sets()) << 6));
    }
    EXPECT_EQ(ms.l2(1).probe(line), nullptr);
    const DirEntry *e = ms.directory().find(line);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->hasSharer(1));
    EXPECT_TRUE(e->hasSharer(2));
    EXPECT_GE(ms.nodeStats(1).replacementHints, 1u);
    ms.checkInvariants();
}

TEST(Protocol, L2EvictionBackInvalidatesL1)
{
    MemorySystem ms(smallConfig(4));
    const CacheGeometry l2 = smallConfig(4).l2;
    const Addr a = at(0, 0x40);
    ms.access(0, RefType::Load, a);
    ASSERT_NE(ms.l1d(0).probe(a >> 6), nullptr);

    const Addr line = a >> 6;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k) {
        // Conflict only in the L2 (L1 has a different set count).
        ms.access(0, RefType::Load,
                  at(0, (line + k * l2.sets()) << 6));
    }
    EXPECT_EQ(ms.l2(0).probe(line), nullptr);
    EXPECT_EQ(ms.l1d(0).probe(line), nullptr); // inclusion held
    ms.checkInvariants();
}

TEST(Protocol, HitLatencies)
{
    MemorySystem ms(smallConfig(2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a);
    // L1 hit.
    AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::L1Hit);
    EXPECT_EQ(out.stall, 0u);
    // Evict from L1 only: the L1 is 1KB/2-way (8 sets).
    const Addr line = a >> 6;
    for (unsigned k = 1; k <= 2; ++k)
        ms.access(0, RefType::Load, at(0, (line + k * 8) << 6));
    out = ms.access(0, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::L2Hit);
    EXPECT_EQ(out.stall, ms.config().lat.l2Hit);
}

TEST(Protocol, InstructionFetchesClassified)
{
    MemorySystem ms(smallConfig(4));
    ms.access(0, RefType::IFetch, at(0, 0x400));
    ms.access(0, RefType::IFetch, at(1, 0x400));
    const NodeProtocolStats &s = ms.nodeStats(0);
    EXPECT_EQ(s.instrLocal, 1u);
    EXPECT_EQ(s.instrRemote, 1u);
    EXPECT_EQ(s.dataLocal, 0u);
}

TEST(Protocol, UniprocessorAllLocal)
{
    MemSysConfig cfg = smallConfig(1);
    MemorySystem ms(cfg);
    for (Addr off = 0; off < 64 * kib; off += 4096) {
        const AccessOutcome out = ms.access(0, RefType::Load, off);
        EXPECT_EQ(out.cls, MissClass::Local);
    }
    const NodeProtocolStats s = ms.aggregateStats();
    EXPECT_EQ(s.dataRemoteClean, 0u);
    EXPECT_EQ(s.dataRemoteDirty, 0u);
    ms.checkInvariants();
}

TEST(Protocol, MissHookSeesEveryCountedMiss)
{
    MemorySystem ms(smallConfig(2));
    std::uint64_t hook_count = 0;
    Addr last = 0;
    ms.setMissHook([&](Addr paddr, RefType, MissClass) {
        ++hook_count;
        last = paddr;
    });
    ms.access(0, RefType::Load, at(0, 0x140));
    EXPECT_EQ(hook_count, 1u);
    EXPECT_EQ(last, at(0, 0x140) & ~Addr{63});
    ms.access(0, RefType::Load, at(0, 0x140)); // L1 hit: no hook
    EXPECT_EQ(hook_count, 1u);
}

TEST(Protocol, StatsResetKeepsCacheContents)
{
    MemorySystem ms(smallConfig(2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a);
    ms.resetStats();
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), 0u);
    const AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::L1Hit); // still cached
}

TEST(ProtocolDeathTest, IFetchOfDirtyLinePanics)
{
    MemorySystem ms(smallConfig(2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Store, a);
    // Self-modifying code across nodes is outside this model.
    EXPECT_DEATH(ms.access(1, RefType::IFetch, a), "instruction fetch");
}

} // namespace
} // namespace isim
