/**
 * @file
 * Tests for the DSS query-stream workload: structural properties
 * (streaming, read-only, tiny code footprint) and the sensitivity
 * contrast with OLTP that justifies the paper's focus.
 */

#include <gtest/gtest.h>

#include "src/base/logging.hh"
#include "src/core/machine.hh"

namespace isim {
namespace {

MachineConfig
dssConfig(unsigned cpus, std::uint64_t queries = 12)
{
    MachineConfig cfg;
    cfg.name = "dss-test";
    cfg.numCpus = cpus;
    cfg.l2 = CacheGeometry{1 * mib, 4, 64};
    cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.workload.kind = WorkloadKind::DssScan;
    cfg.workload.branches = 8;
    cfg.workload.accountsPerBranch = 10000;
    cfg.workload.blockBufferBytes = 64 * mib;
    cfg.workload.dssBlocksPerQuery = 64;
    cfg.workload.transactions = queries;
    cfg.workload.warmupTransactions = queries / 3;
    return cfg;
}

TEST(Dss, QueriesCompleteDeterministically)
{
    setQuiet(true);
    Machine a(dssConfig(2));
    Machine b(dssConfig(2));
    const RunResult ra = a.run(ExecMode::Timing);
    const RunResult rb = b.run(ExecMode::Timing);
    EXPECT_EQ(ra.transactions, 12u);
    EXPECT_EQ(ra.execTime(), rb.execTime());
    EXPECT_EQ(ra.misses.totalL2Misses(), rb.misses.totalL2Misses());
    a.memSys().checkInvariants();
}

TEST(Dss, ReadOnlyAndBarelyShared)
{
    setQuiet(true);
    Machine m(dssConfig(4));
    const RunResult r = m.run(ExecMode::Timing);
    // Scans produce almost no write sharing: dirty 3-hop misses are a
    // sliver compared with OLTP's >50%.
    const double dirty_share =
        static_cast<double>(r.misses.dataRemoteDirty) /
        static_cast<double>(r.misses.totalL2Misses());
    EXPECT_LT(dirty_share, 0.05);
    // And invalidations are rare.
    EXPECT_LT(r.misses.invalidationsSent,
              r.misses.totalL2Misses() / 20);
}

TEST(Dss, StreamingMissesDontCareAboutCacheSize)
{
    setQuiet(true);
    MachineConfig small = dssConfig(1, 16);
    small.l2 = CacheGeometry{1 * mib, 1, 64};
    small.l2Impl = L2Impl::OffchipDirect;
    MachineConfig big = dssConfig(1, 16);
    big.l2 = CacheGeometry{8 * mib, 4, 64};
    const RunResult rs = Machine(small).run(ExecMode::Timing);
    const RunResult rb = Machine(big).run(ExecMode::Timing);
    // An 8x bigger, 4x more associative cache barely moves the miss
    // count: there is no reuse for it to capture.
    const double ratio =
        static_cast<double>(rs.misses.totalL2Misses()) /
        static_cast<double>(rb.misses.totalL2Misses());
    EXPECT_LT(ratio, 1.6);
    // Contrast: OLTP moves by an order of magnitude across the same
    // pair (see test_figures.cc MissReductionFromSmallDmToBigAssoc).
}

TEST(Dss, LessSensitiveToIntegrationThanOltp)
{
    setQuiet(true);
    // Sizes matter here: at ~10 queries the two gains sit within
    // scheduling noise of each other, so the contrast only becomes a
    // stable property once both workloads reach steady state.
    auto gain = [](WorkloadKind kind) {
        MachineConfig base = dssConfig(2, 24);
        MachineConfig full = dssConfig(2, 24);
        for (MachineConfig *cfg : {&base, &full}) {
            cfg->workload.kind = kind;
            if (kind == WorkloadKind::TpcB) {
                cfg->workload.transactions = 360;
                cfg->workload.warmupTransactions = 120;
            }
        }
        base.level = IntegrationLevel::Base;
        base.l2Impl = L2Impl::OffchipDirect;
        base.l2 = CacheGeometry{8 * mib, 1, 64};
        full.level = IntegrationLevel::FullInt;
        full.l2Impl = L2Impl::OnchipSram;
        full.l2 = CacheGeometry{2 * mib, 8, 64};
        const RunResult rb = Machine(base).run(ExecMode::Timing);
        const RunResult rf = Machine(full).run(ExecMode::Timing);
        return static_cast<double>(rb.execTime()) /
               static_cast<double>(rf.execTime());
    };
    const double oltp_gain = gain(WorkloadKind::TpcB);
    const double dss_gain = gain(WorkloadKind::DssScan);
    EXPECT_GT(oltp_gain, dss_gain);
    EXPECT_GT(oltp_gain, 1.2); // OLTP: the paper's headline
}

TEST(Dss, InstructionFootprintIsTiny)
{
    setQuiet(true);
    Machine m(dssConfig(1, 16));
    const RunResult r = m.run(ExecMode::Timing);
    // Scan loops live in a handful of I-lines: instruction misses are
    // negligible next to data misses.
    EXPECT_LT(r.misses.instrLocal + r.misses.instrRemote,
              r.misses.totalL2Misses() / 10);
    // But the queries did real work.
    EXPECT_GT(r.cpu.instructions, 400000u);
}

} // namespace
} // namespace isim
