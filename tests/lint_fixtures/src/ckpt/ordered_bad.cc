// Fixture: this file sits under src/ckpt/, so the whole file is a
// serialization path. Declaring an unordered container here and
// iterating it directly must both be flagged by ordered-output.

namespace fix {

void
badEmit(const std::unordered_map<unsigned long, unsigned long> &live)
{
    for (const auto &kv : live)
        emit(kv);
}

} // namespace fix
