// Fixture: bare stdio in library code; the logging rule must flag
// both the printf call and the std::cout stream.

namespace fix {

void
badReport(unsigned long n)
{
    std::printf("count=%lu\n", n);
    std::cout << "count " << n << "\n";
}

} // namespace fix
