// Fixture: clean atomic-path code. The functional access path, plain
// arithmetic charging, and calls to other *Atomic functions are all
// fine; so is a file-write helper that merely ends a name in Atomic.
// Timing machinery OUTSIDE an *Atomic body is the timing mode's own
// business and must not be flagged either.

namespace fix {

struct Sim
{
    long consumeAtomic(int ref, long now);
    long accessAtomic(int core, int type, long paddr);
    void runUntil(int cpu);
    long timingEvents_ = 0;
};

long
stepCpuAtomic(Sim &sim, int ref, long now)
{
    return sim.consumeAtomic(ref, now) + sim.accessAtomic(0, 0, 64);
}

void
runTiming(Sim &sim, int cpu)
{
    sim.runUntil(cpu);
    ++sim.timingEvents_;
}

void
writeFileAtomic(const char *path, const char *bytes)
{
    // A different "atomic" (rename-into-place file write): scanned,
    // nothing banned inside.
    (void)path;
    (void)bytes;
}

} // namespace fix
