// Fixture: well-formed annotations doing their job — a justified
// allow() absorbing a determinism finding and a transient declaration
// absorbing a ckpt-coverage finding. Nothing may be reported.

namespace fix {

// isim-lint: allow(determinism): fixture shows a justified suppression
unsigned long stamp = time(nullptr);

class QuietBox
{
  public:
    void saveState(ckpt::Serializer &s) const { s.u64(v_); }
    void restoreState(ckpt::Deserializer &d) { v_ = d.u64(); }

  private:
    unsigned long v_ = 0;
    // ckpt: transient(cache_): derived on demand
    unsigned long cache_ = 0;
};

} // namespace fix
