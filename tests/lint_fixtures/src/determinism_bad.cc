// Fixture: every statement below reaches for a banned entropy or
// wall-clock source; the determinism rule must flag all four.

namespace fix {

unsigned
badSeed()
{
    std::mt19937 gen;
    return static_cast<unsigned>(rand()) ^
           static_cast<unsigned>(time(nullptr));
}

const char *
badConfig()
{
    return getenv("ISIM_FIXTURE");
}

} // namespace fix
