// Fixture: an atomic-path function that reaches for the timing
// machinery; the atomic-path rule must flag every banned reference.

namespace fix {

struct Sim
{
    void runUntil(int cpu);
    void stepCpu(int cpu);
    long mcQueueDelay(long now);
    long timingEvents_ = 0;
};

void
stepCpuAtomic(Sim &sim, int cpu, long now)
{
    // Three violations: the timing step, the MC contention queue,
    // and the timing event counter.
    sim.stepCpu(cpu);
    now += sim.mcQueueDelay(now);
    ++sim.timingEvents_;
}

void
runUntilAtomic(Sim &sim, int cpu)
{
    // Falling back to the timing loop defeats the mode entirely.
    sim.runUntil(cpu);
}

} // namespace fix
