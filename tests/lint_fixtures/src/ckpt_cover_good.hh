// Fixture: full checkpoint coverage — every member is either
// serialized by saveState/restoreState or declared transient with a
// reason. ckpt-coverage must report nothing.

namespace fix {

class GoodGadget
{
  public:
    void saveState(ckpt::Serializer &s) const
    {
        s.u64(ticks_);
        s.u64(spins_);
    }
    void restoreState(ckpt::Deserializer &d)
    {
        ticks_ = d.u64();
        spins_ = d.u64();
    }

  private:
    unsigned long ticks_ = 0;
    unsigned long spins_ = 0;
    // ckpt: transient(scratch_): rebuilt on first use
    unsigned long scratch_ = 0;
};

} // namespace fix
