// Fixture: clean profiler usage in library code. Macro call sites
// contain neither banned token in pre-preprocessor source, and the
// cold emission API (enable flag, snapshot, JSON) is unrestricted.

namespace fix {

namespace prof {
bool enabled();
void setEnabled(bool on);
const char *globalProfJson();
void threadReset();
} // namespace prof

#define ISIM_PROF_SCOPE(path_literal) \
    do {                              \
    } while (0)

void
hotLoopBody()
{
    ISIM_PROF_SCOPE("measure/hot");
}

void
emitProfile()
{
    if (prof::enabled())
        (void)prof::globalProfJson();
    prof::threadReset();
}

} // namespace fix
