// Fixture: 'misses' never reaches the registry; stats-coverage must
// flag it (and only it — 'hits' is registered).

namespace fix {

struct FixtureStats
{
    unsigned long hits = 0;
    unsigned long misses = 0;

    void registerStats(stats::Registry &r, const std::string &prefix)
    {
        r.add(prefix + ".hits", &hits);
    }
};

} // namespace fix
