// Fixture: library code touching the self-profiler's raw primitives
// instead of the ISIM_PROF_SCOPE* macros; the prof-guard rule must
// flag each of the three tokens below (every occurrence counts —
// declaring these names in library code is as wrong as calling them).

namespace fix {

void
hotLoopBody()
{
    static const auto &node = prof::registerNode("measure/hot");
    prof::ProfScope scope(node);
    ProfScope another(node);
}

} // namespace fix
