// Fixture: four broken annotations — reason-less, unknown rule,
// missing parens, and an empty transient member. The suppression
// meta-rule must flag each one.

namespace fix {

// isim-lint: allow(logging)
void one();

// isim-lint: allow(made-up-rule): the rule id does not exist
void two();

// isim-lint: allow logging: missing parentheses around the rule
void three();

// ckpt: transient(): missing the member name
void four();

} // namespace fix
