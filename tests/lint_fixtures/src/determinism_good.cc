// Fixture: the sanctioned seeded Rng plus one justified, well-formed
// suppression. The determinism rule must report nothing.

namespace fix {

unsigned
goodSeed(Rng &rng)
{
    return rng.next();
}

unsigned long
stampedRun()
{
    // isim-lint: allow(determinism): fixture records wall-clock metadata only
    return static_cast<unsigned long>(time(nullptr));
}

} // namespace fix
