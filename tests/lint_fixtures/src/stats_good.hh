// Fixture: every counter is registered; stats-coverage must report
// nothing.

namespace fix {

struct QuietStats
{
    unsigned long hits = 0;
    unsigned long misses = 0;

    void registerStats(stats::Registry &r, const std::string &prefix)
    {
        r.add(prefix + ".hits", &hits);
        r.add(prefix + ".misses", &misses);
    }
};

} // namespace fix
