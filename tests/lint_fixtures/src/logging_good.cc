// Fixture: diagnostics routed through the logging macros, plus one
// justified suppression for a deliberate stdout write. The logging
// rule must report nothing.

namespace fix {

void
goodReport(unsigned long n)
{
    isim_inform("count=%lu", n);
    // isim-lint: allow(logging): fixture demonstrates a justified stdout write
    std::cout << n;
}

} // namespace fix
