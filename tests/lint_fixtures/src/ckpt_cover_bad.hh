// Fixture: 'lostCounter_' is deliberately absent from the checkpoint
// image and carries no transient annotation; ckpt-coverage must flag
// it (and only it — 'ticks_' is serialized).

namespace fix {

class BadGadget
{
  public:
    void saveState(ckpt::Serializer &s) const
    {
        s.u64(ticks_);
    }
    void restoreState(ckpt::Deserializer &d)
    {
        ticks_ = d.u64();
    }

  private:
    unsigned long ticks_ = 0;
    unsigned long lostCounter_ = 0;
};

} // namespace fix
