// Fixture: the sanctioned canonicalization idiom — collect the keys,
// sort, iterate the sorted copy. The container name appears only as
// an argument to the canonicalizer, so ordered-output stays quiet.

namespace fix {

class GoodTable
{
  public:
    void saveState(ckpt::Serializer &s) const
    {
        for (unsigned long key : sortedKeys(map_))
            s.u64(map_.at(key));
    }

  private:
    std::unordered_map<unsigned long, unsigned long> map_;
};

} // namespace fix
