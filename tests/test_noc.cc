/**
 * @file
 * Unit tests for the torus topology and the network latency model.
 */

#include <gtest/gtest.h>

#include "src/noc/network.hh"
#include "src/noc/topology.hh"

namespace isim {
namespace {

TEST(Torus, EightNodesIsFourByTwo)
{
    TorusTopology t(8);
    EXPECT_EQ(t.width(), 4u);
    EXPECT_EQ(t.height(), 2u);
}

TEST(Torus, CoordRoundTrip)
{
    TorusTopology t(8);
    for (NodeId n = 0; n < 8; ++n)
        EXPECT_EQ(t.nodeAt(t.coordOf(n)), n);
}

TEST(Torus, HopsSymmetricAndZeroOnSelf)
{
    TorusTopology t(8);
    for (NodeId a = 0; a < 8; ++a) {
        EXPECT_EQ(t.hops(a, a), 0u);
        for (NodeId b = 0; b < 8; ++b)
            EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
}

TEST(Torus, WrapAroundShortens)
{
    TorusTopology t(8); // 4x2
    // Nodes 0 (0,0) and 3 (3,0): wrap distance 1, not 3.
    EXPECT_EQ(t.hops(0, 3), 1u);
    EXPECT_EQ(t.hops(0, 2), 2u);
}

TEST(Torus, TriangleInequality)
{
    TorusTopology t(8);
    for (NodeId a = 0; a < 8; ++a)
        for (NodeId b = 0; b < 8; ++b)
            for (NodeId c = 0; c < 8; ++c)
                EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
}

TEST(Torus, AverageAndDiameter)
{
    TorusTopology t(8);
    // 4x2 torus: max 2 in x (wrap), 1 in y.
    EXPECT_EQ(t.diameter(), 3u);
    const double avg = t.averageHops();
    EXPECT_GT(avg, 1.0);
    EXPECT_LT(avg, static_cast<double>(t.diameter()));
    // Exact: sum of hop counts over 56 ordered pairs = 96.
    EXPECT_NEAR(avg, 96.0 / 56.0, 1e-9);
}

TEST(Torus, SingleNode)
{
    TorusTopology t(1);
    EXPECT_EQ(t.diameter(), 0u);
    EXPECT_DOUBLE_EQ(t.averageHops(), 0.0);
}

TEST(Network, SerializationScalesWithPayload)
{
    Network net(TorusTopology(8), LinkParams{});
    EXPECT_LT(net.serialization(8), net.serialization(64));
    // 4 GB/s at 1 GHz == 4 bytes/cycle; 64B + 16B header = 20 cycles.
    EXPECT_EQ(net.serialization(64), 20u);
}

TEST(Network, OneWayAddsHops)
{
    Network net(TorusTopology(8), LinkParams{});
    const Cycles self = net.oneWay(0, 0, 0);
    const Cycles one = net.oneWay(0, 1, 0);
    const Cycles far = net.oneWay(0, 2, 0);
    EXPECT_LT(self, one);
    EXPECT_LT(one, far);
    // Per-hop cost is routerDelay + linkFlight.
    EXPECT_EQ(far - one, LinkParams{}.routerDelay +
                             LinkParams{}.linkFlight);
}

TEST(Network, AverageBetweenMinAndMax)
{
    Network net(TorusTopology(8), LinkParams{});
    const Cycles avg = net.oneWayAverage(64);
    EXPECT_GE(avg, net.oneWay(0, 1, 64));
    EXPECT_LE(avg, net.oneWay(0, 2 + 4, 64)); // diameter pair
}

} // namespace
} // namespace isim
