/**
 * @file
 * Tests for the experiment harness: environment overrides, figure
 * running, and normalization plumbing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/base/logging.hh"
#include "src/core/experiment.hh"
#include "src/core/figures.hh"

namespace isim {
namespace {

WorkloadParams
smallWorkload()
{
    WorkloadParams p;
    p.branches = 8;
    p.accountsPerBranch = 10000;
    p.blockBufferBytes = 64 * mib;
    p.transactions = 40;
    p.warmupTransactions = 15;
    return p;
}

class EnvGuard
{
  public:
    EnvGuard(const char *key, const char *value) : key_(key)
    {
        ::setenv(key, value, 1);
    }
    ~EnvGuard() { ::unsetenv(key_); }

  private:
    const char *key_;
};

TEST(Experiment, EnvOverridesApply)
{
    EnvGuard txns("ISIM_TXNS", "123");
    EnvGuard warm("ISIM_WARMUP", "45");
    WorkloadParams p;
    ExperimentRunner::applyEnvOverrides(p);
    EXPECT_EQ(p.transactions, 123u);
    EXPECT_EQ(p.warmupTransactions, 45u);
}

TEST(Experiment, EnvOverridesIgnoreGarbage)
{
    EnvGuard txns("ISIM_TXNS", "not-a-number");
    WorkloadParams p;
    const std::uint64_t before = p.transactions;
    ExperimentRunner::applyEnvOverrides(p);
    EXPECT_EQ(p.transactions, before);
}

TEST(Experiment, RunOneProducesConsistentResult)
{
    setQuiet(true);
    MachineConfig cfg = figures::baseMachine(1);
    cfg.workload = smallWorkload();
    ExperimentRunner runner(/*verbose=*/false);
    const RunResult r = runner.runOne(cfg);
    EXPECT_EQ(r.transactions, 40u);
    EXPECT_TRUE(r.dbConsistent);
    EXPECT_EQ(r.name, cfg.name);
}

TEST(Experiment, RunFigureKeepsBarOrder)
{
    setQuiet(true);
    FigureSpec spec;
    spec.id = "test";
    spec.title = "ordering";
    for (const unsigned cpus : {1u, 2u}) {
        FigureBar bar;
        bar.config = figures::baseMachine(cpus);
        bar.config.workload = smallWorkload();
        bar.config.name = "cpus" + std::to_string(cpus);
        spec.bars.push_back(bar);
    }
    ExperimentRunner runner(/*verbose=*/false);
    const FigureResult result = runner.run(spec);
    ASSERT_EQ(result.runs.size(), 2u);
    EXPECT_EQ(result.runs[0].name, "cpus1");
    EXPECT_EQ(result.runs[1].name, "cpus2");
}

TEST(Experiment, IdenticalConfigsGiveIdenticalRuns)
{
    setQuiet(true);
    MachineConfig cfg = figures::baseMachine(2);
    cfg.workload = smallWorkload();
    ExperimentRunner runner(/*verbose=*/false);
    const RunResult a = runner.runOne(cfg);
    const RunResult b = runner.runOne(cfg);
    EXPECT_EQ(a.execTime(), b.execTime());
    EXPECT_EQ(a.misses.totalL2Misses(), b.misses.totalL2Misses());
}

} // namespace
} // namespace isim
