/**
 * @file
 * Tests for RunOptions: environment resolution, command-line flags,
 * flag-over-env precedence, workload application, and the global
 * audit-period wiring.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/logging.hh"
#include "src/config/run_options.hh"
#include "src/verify/invariants.hh"

namespace isim {
namespace {

class EnvGuard
{
  public:
    EnvGuard(const char *key, const char *value) : key_(key)
    {
        ::setenv(key, value, 1);
    }
    ~EnvGuard() { ::unsetenv(key_); }

  private:
    const char *key_;
};

/** Mutable argv for fromCommandLine (which rewrites it). */
class Args
{
  public:
    explicit Args(std::vector<std::string> args)
    {
        storage_ = std::move(args);
        storage_.insert(storage_.begin(), "prog");
        for (std::string &arg : storage_)
            argv_.push_back(arg.data());
        argc_ = static_cast<int>(argv_.size());
    }

    int &argc() { return argc_; }
    char **argv() { return argv_.data(); }
    /** Arguments left after parsing (excluding argv[0]). */
    std::vector<std::string> rest() const
    {
        std::vector<std::string> out;
        for (int i = 1; i < argc_; ++i)
            out.emplace_back(argv_[i]);
        return out;
    }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> argv_;
    int argc_ = 0;
};

TEST(RunOptions, DefaultsAreInert)
{
    const RunOptions opts;
    EXPECT_FALSE(opts.txns);
    EXPECT_FALSE(opts.warmup);
    EXPECT_FALSE(opts.seed);
    EXPECT_TRUE(opts.jsonDir.empty());
    EXPECT_EQ(opts.jobs, 0u);
    EXPECT_EQ(opts.auditPeriod, std::uint64_t{1} << 20);
    EXPECT_TRUE(opts.verbose);
    EXPECT_FALSE(opts.obs.any());

    WorkloadParams params;
    const WorkloadParams before = params;
    opts.applyTo(params);
    EXPECT_EQ(params.transactions, before.transactions);
    EXPECT_EQ(params.warmupTransactions, before.warmupTransactions);
    EXPECT_EQ(params.seed, before.seed);
}

TEST(RunOptions, FromEnvReadsEveryVariable)
{
    EnvGuard txns("ISIM_TXNS", "123");
    EnvGuard warm("ISIM_WARMUP", "45");
    EnvGuard seed("ISIM_SEED", "7");
    EnvGuard jobs("ISIM_JOBS", "3");
    EnvGuard dir("ISIM_JSON_DIR", "/tmp/isim-json");
    EnvGuard audit("ISIM_AUDIT_PERIOD", "512");
    const RunOptions opts = RunOptions::fromEnv();
    EXPECT_EQ(opts.txns, 123u);
    EXPECT_EQ(opts.warmup, 45u);
    EXPECT_EQ(opts.seed, 7u);
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.jsonDir, "/tmp/isim-json");
    EXPECT_EQ(opts.auditPeriod, 512u);
}

TEST(RunOptions, FromEnvIgnoresGarbage)
{
    EnvGuard txns("ISIM_TXNS", "not-a-number");
    EnvGuard warm("ISIM_WARMUP", "-3");
    EnvGuard jobs("ISIM_JOBS", "2x");
    EnvGuard audit("ISIM_AUDIT_PERIOD", "0");
    const RunOptions opts = RunOptions::fromEnv();
    EXPECT_FALSE(opts.txns);
    EXPECT_FALSE(opts.warmup);
    EXPECT_EQ(opts.jobs, 0u);
    EXPECT_EQ(opts.auditPeriod, std::uint64_t{1} << 20);
}

TEST(RunOptions, FlagsWinOverEnvironment)
{
    EnvGuard txns("ISIM_TXNS", "111");
    EnvGuard warm("ISIM_WARMUP", "99");
    Args args({"--txns=222", "--jobs", "4", "--seed", "5",
               "--json-dir=/tmp/j", "--quiet"});
    const RunOptions opts =
        RunOptions::fromCommandLine(args.argc(), args.argv());
    EXPECT_EQ(opts.txns, 222u);   // flag beat ISIM_TXNS
    EXPECT_EQ(opts.warmup, 99u);  // env fallback survives
    EXPECT_EQ(opts.jobs, 4u);
    EXPECT_EQ(opts.seed, 5u);
    EXPECT_EQ(opts.jsonDir, "/tmp/j");
    EXPECT_FALSE(opts.verbose);
    EXPECT_TRUE(args.rest().empty()); // everything was consumed
}

TEST(RunOptions, BothFlagFormsParse)
{
    Args args({"--txns", "10", "--warmup=20", "--audit-period", "64"});
    const RunOptions opts =
        RunOptions::fromCommandLine(args.argc(), args.argv());
    EXPECT_EQ(opts.txns, 10u);
    EXPECT_EQ(opts.warmup, 20u);
    EXPECT_EQ(opts.auditPeriod, 64u);
}

TEST(RunOptions, UnrecognizedArgumentsSurviveInOrder)
{
    Args args({"run", "--txns=5", "fig10", "--jobs=2", "extra"});
    const RunOptions opts =
        RunOptions::fromCommandLine(args.argc(), args.argv());
    EXPECT_EQ(opts.txns, 5u);
    EXPECT_EQ(opts.jobs, 2u);
    const std::vector<std::string> rest = args.rest();
    ASSERT_EQ(rest.size(), 3u);
    EXPECT_EQ(rest[0], "run");
    EXPECT_EQ(rest[1], "fig10");
    EXPECT_EQ(rest[2], "extra");
}

TEST(RunOptions, ObsFlagsFoldIn)
{
    Args args({"--trace-out=/tmp/t.json", "--trace-bar=2",
               "--txns=7"});
    const RunOptions opts =
        RunOptions::fromCommandLine(args.argc(), args.argv());
    EXPECT_EQ(opts.obs.traceOutPath, "/tmp/t.json");
    EXPECT_EQ(opts.obs.traceBar, 2u);
    EXPECT_TRUE(opts.obs.any());
    EXPECT_EQ(opts.txns, 7u);
}

TEST(RunOptions, ApplyToOverridesWorkload)
{
    RunOptions opts;
    opts.txns = 17;
    opts.warmup = 3;
    opts.seed = 42;
    WorkloadParams params;
    opts.applyTo(params);
    EXPECT_EQ(params.transactions, 17u);
    EXPECT_EQ(params.warmupTransactions, 3u);
    EXPECT_EQ(params.seed, 42u);
}

TEST(RunOptions, EffectiveJobsClampsToWork)
{
    RunOptions opts;
    opts.jobs = 4;
    EXPECT_EQ(opts.effectiveJobs(2), 2u);
    EXPECT_EQ(opts.effectiveJobs(8), 4u);
    EXPECT_EQ(opts.effectiveJobs(0), 1u);
    opts.jobs = 0; // auto: one per hardware thread, at least one
    EXPECT_GE(opts.effectiveJobs(64), 1u);
}

TEST(RunOptions, ApplyGlobalWiresQuietToVerbose)
{
    const bool before = quiet();
    RunOptions opts;
    opts.verbose = false; // what --quiet sets
    opts.applyGlobal();
    EXPECT_TRUE(quiet());
    opts.verbose = true;
    opts.applyGlobal();
    EXPECT_FALSE(quiet());
    setQuiet(before);
}

TEST(RunOptions, ApplyGlobalInstallsAuditPeriod)
{
    const std::uint64_t before = verify::auditPeriod();
    RunOptions opts;
    opts.auditPeriod = 4096;
    opts.applyGlobal();
    EXPECT_EQ(verify::auditPeriod(), 4096u);
    verify::setAuditPeriod(0); // restore the startup value
    EXPECT_EQ(verify::auditPeriod(), before);
}

} // namespace
} // namespace isim
