/**
 * @file
 * Unit tests for the remote access cache behaviour inside the
 * protocol: allocation on remote fills, dirty retention (the 2-hop to
 * 3-hop conversion of Section 6), local-latency hits, service of
 * 3-hop requests out of a remote RAC, and coherence of RAC copies.
 */

#include <gtest/gtest.h>

#include "src/coherence/protocol.hh"

namespace isim {
namespace {

MemSysConfig
racConfig()
{
    MemSysConfig cfg;
    cfg.numNodes = 4;
    cfg.l1Size = 512;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{2 * kib, 2, 64};
    cfg.racEnabled = true;
    cfg.rac = CacheGeometry{16 * kib, 8, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    return cfg;
}

Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

/** Fill node `n`'s L2 set of `addr` with conflicting remote lines. */
void
evictFromL2(MemorySystem &ms, NodeId n, Addr addr)
{
    const CacheGeometry l2 = ms.config().l2;
    const Addr line = addr >> 6;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k) {
        ms.access(n, RefType::Load,
                  ((line + k * l2.sets()) << 6) |
                      (addr & (Addr{1} << 31)));
    }
}

TEST(Rac, AllocatesOnRemoteFillOnly)
{
    MemorySystem ms(racConfig());
    ms.access(0, RefType::Load, at(0, 0x100)); // local home
    EXPECT_EQ(ms.rac(0).cache().probe(at(0, 0x100) >> 6), nullptr);
    ms.access(0, RefType::Load, at(1, 0x100)); // remote home
    EXPECT_NE(ms.rac(0).cache().probe(at(1, 0x100) >> 6), nullptr);
    ms.checkInvariants();
}

TEST(Rac, HitAfterL2EvictionCostsLocalLatency)
{
    MemorySystem ms(racConfig());
    const Addr a = at(1, 0x40);
    ms.access(0, RefType::Load, a);
    // Evict from node 0's L2 with other remote lines; RAC retains it.
    const CacheGeometry l2 = racConfig().l2;
    const Addr line = a >> 6;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k)
        ms.access(0, RefType::Load, at(1, 0x40 + k * l2.sets() * 64));
    ASSERT_EQ(ms.l2(0).probe(line), nullptr);
    ASSERT_NE(ms.rac(0).cache().probe(line), nullptr);

    const AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_TRUE(out.racHit);
    EXPECT_EQ(out.cls, MissClass::Local);
    EXPECT_EQ(out.stall, ms.config().lat.racHit);
    // Counted as a *local* miss (Figure 11's conversion).
    EXPECT_EQ(ms.nodeStats(0).dataLocal, 1u);
    ms.checkInvariants();
}

TEST(Rac, DirtyVictimRetainedNotWrittenBack)
{
    MemorySystem ms(racConfig());
    const Addr a = at(1, 0x40);
    ms.access(0, RefType::Store, a); // dirty, remote home
    const auto wb_before = ms.nodeStats(0).writebacksToHome;

    const CacheGeometry l2 = racConfig().l2;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k)
        ms.access(0, RefType::Load, at(1, 0x40 + k * l2.sets() * 64));
    ASSERT_EQ(ms.l2(0).probe(a >> 6), nullptr);

    // No write-back: the RAC holds the dirty line as owner.
    EXPECT_EQ(ms.nodeStats(0).writebacksToHome, wb_before);
    const CacheLine *r = ms.rac(0).cache().probe(a >> 6);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->state, LineState::Modified);
    const DirEntry *e = ms.directory().find(a >> 6);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, LineState::Modified);
    EXPECT_EQ(e->owner, 0u);
    ms.checkInvariants();
}

TEST(Rac, RetentionTurnsTwoHopIntoThreeHop)
{
    MemorySystem ms(racConfig());
    const Addr a = at(1, 0x40);
    ms.access(0, RefType::Store, a);
    evictFromL2(ms, 0, a); // dirty copy now lives in node 0's RAC

    // Without a RAC this would be a clean 2-hop (write-back happened);
    // with the RAC it is a 3-hop served from node 0's RAC, at the
    // higher remote-RAC latency (250 vs 200 ns).
    const AccessOutcome out = ms.access(2, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    EXPECT_TRUE(out.fromRemoteRac);
    EXPECT_EQ(out.stall, ms.config().lat.remoteRacDirty);
    EXPECT_GT(ms.config().lat.remoteRacDirty,
              ms.config().lat.remoteDirty);
    EXPECT_GE(ms.rac(0).counters().dirtyServicesToRemote, 1u);
    ms.checkInvariants();
}

TEST(Rac, InvalidationRemovesRacCopy)
{
    MemorySystem ms(racConfig());
    const Addr a = at(1, 0x40);
    ms.access(0, RefType::Load, a);
    ASSERT_NE(ms.rac(0).cache().probe(a >> 6), nullptr);
    ms.access(2, RefType::Store, a);
    EXPECT_EQ(ms.rac(0).cache().probe(a >> 6), nullptr);
    EXPECT_EQ(ms.l2(0).probe(a >> 6), nullptr);
    ms.checkInvariants();
}

TEST(Rac, StoreToSharedRacCopyUpgrades)
{
    MemorySystem ms(racConfig());
    const Addr a = at(1, 0x40);
    ms.access(0, RefType::Load, a);
    ms.access(2, RefType::Load, a); // both shared
    evictFromL2(ms, 0, a);          // node 0 keeps only the RAC copy

    const AccessOutcome out = ms.access(0, RefType::Store, a);
    EXPECT_TRUE(out.racHit);
    EXPECT_TRUE(out.upgrade);
    EXPECT_EQ(ms.l2(2).probe(a >> 6), nullptr); // sharer invalidated
    EXPECT_EQ(ms.l2(0).probe(a >> 6)->state, LineState::Modified);
    ms.checkInvariants();
}

TEST(Rac, ExclusiveRetentionStaysClean)
{
    MemorySystem ms(racConfig());
    const Addr a = at(1, 0x40);
    ms.access(0, RefType::Load, a); // Exclusive grant
    evictFromL2(ms, 0, a);
    const CacheLine *r = ms.rac(0).cache().probe(a >> 6);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->state, LineState::Exclusive);
    // A later read by another node is clean (2-hop), not 3-hop.
    const AccessOutcome out = ms.access(2, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::RemoteClean);
    ms.checkInvariants();
}

TEST(Rac, HitRateCounting)
{
    MemorySystem ms(racConfig());
    const Addr a = at(1, 0x40);
    ms.access(0, RefType::Load, a); // RAC allocate (lookup missed)
    evictFromL2(ms, 0, a);
    ms.access(0, RefType::Load, a); // RAC hit
    const RacCounters c = ms.rac(0).counters();
    EXPECT_GE(c.lookups, 2u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_GT(c.hitRate(), 0.0);
    EXPECT_LT(c.hitRate(), 1.0);
}

} // namespace
} // namespace isim
