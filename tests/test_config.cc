/**
 * @file
 * Tests for the key=value configuration front end.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "src/config/options.hh"

namespace isim {
namespace {

TEST(ParseSize, SuffixesAndPlainBytes)
{
    EXPECT_EQ(parseSize("64"), 64u);
    EXPECT_EQ(parseSize("32K"), 32 * kib);
    EXPECT_EQ(parseSize("32k"), 32 * kib);
    EXPECT_EQ(parseSize("2M"), 2 * mib);
    EXPECT_EQ(parseSize("1G"), 1 * gib);
    EXPECT_EQ(parseSize(" 8M "), 8 * mib);
}

TEST(ParseSizeDeathTest, Junk)
{
    EXPECT_EXIT(parseSize("2MB"), ::testing::ExitedWithCode(1),
                "malformed size");
    EXPECT_EXIT(parseSize("fast"), ::testing::ExitedWithCode(1),
                "malformed size");
    EXPECT_EXIT(parseSize(""), ::testing::ExitedWithCode(1),
                "empty size");
}

TEST(KvConfig, ParsesCommentsAndWhitespace)
{
    const KvConfig kv = KvConfig::fromString(
        "# header comment\n"
        "\n"
        "  machine.cpus = 8   # trailing comment\n"
        "MACHINE.Level = full\n");
    EXPECT_TRUE(kv.has("machine.cpus"));
    EXPECT_EQ(kv.get("machine.cpus"), "8");
    // Keys are case-folded; values are not.
    EXPECT_EQ(kv.get("machine.level"), "full");
    EXPECT_FALSE(kv.has("missing"));
}

TEST(KvConfig, TypedReaders)
{
    const KvConfig kv = KvConfig::fromString("a = 42\n"
                                             "b = true\n"
                                             "c = 2M\n"
                                             "d = 0.25\n");
    EXPECT_EQ(kv.getUint("a", 0), 42u);
    EXPECT_EQ(kv.getUint("zz", 7), 7u);
    EXPECT_TRUE(kv.getBool("b", false));
    EXPECT_FALSE(kv.getBool("zz", false));
    EXPECT_EQ(kv.getSize("c", 0), 2 * mib);
    EXPECT_DOUBLE_EQ(kv.getDouble("d", 0.0), 0.25);
}

TEST(KvConfigDeathTest, MalformedInput)
{
    EXPECT_EXIT(KvConfig::fromString("just words\n"),
                ::testing::ExitedWithCode(1), "expected 'key = value'");
    EXPECT_EXIT(KvConfig::fromString("a = 1\na = 2\n"),
                ::testing::ExitedWithCode(1), "duplicate key");
    const KvConfig kv = KvConfig::fromString("a = x\n");
    EXPECT_EXIT(kv.getUint("a", 0), ::testing::ExitedWithCode(1),
                "expected integer");
    EXPECT_EXIT(kv.getBool("a", false), ::testing::ExitedWithCode(1),
                "expected boolean");
    EXPECT_EXIT((void)kv.get("nope"), ::testing::ExitedWithCode(1),
                "missing config key");
}

TEST(MachineFromConfig, DefaultsWhenEmpty)
{
    const MachineConfig cfg =
        machineFromConfig(KvConfig::fromString(""));
    const MachineConfig def;
    EXPECT_EQ(cfg.numCpus, def.numCpus);
    EXPECT_EQ(cfg.l2.sizeBytes, def.l2.sizeBytes);
    EXPECT_EQ(cfg.level, def.level);
    EXPECT_EQ(cfg.workload.transactions, def.workload.transactions);
}

TEST(MachineFromConfig, FullSpecification)
{
    const MachineConfig cfg = machineFromConfig(KvConfig::fromString(
        "machine.name = test\n"
        "machine.cpus = 8\n"
        "machine.cores_per_node = 4\n"
        "machine.cpu_model = ooo\n"
        "machine.level = full\n"
        "machine.l2.impl = sram\n"
        "machine.l2.size = 2M\n"
        "machine.l2.assoc = 8\n"
        "machine.rac.enabled = true\n"
        "machine.rac.size = 4M\n"
        "machine.rac.assoc = 8\n"
        "machine.replicate_code = yes\n"
        "ooo.window = 128\n"
        "workload.transactions = 123\n"
        "workload.branches = 10\n"
        "workload.seed = 99\n"));
    EXPECT_EQ(cfg.name, "test");
    EXPECT_EQ(cfg.numCpus, 8u);
    EXPECT_EQ(cfg.coresPerNode, 4u);
    EXPECT_EQ(cfg.numNodes(), 2u);
    EXPECT_EQ(cfg.cpuModel, CpuModel::OutOfOrder);
    EXPECT_EQ(cfg.level, IntegrationLevel::FullInt);
    EXPECT_EQ(cfg.l2Impl, L2Impl::OnchipSram);
    EXPECT_EQ(cfg.l2.sizeBytes, 2 * mib);
    EXPECT_EQ(cfg.l2.assoc, 8u);
    EXPECT_TRUE(cfg.rac);
    EXPECT_EQ(cfg.racGeom.sizeBytes, 4 * mib);
    EXPECT_TRUE(cfg.replicateCode);
    EXPECT_EQ(cfg.oooParams.window, 128u);
    EXPECT_EQ(cfg.workload.transactions, 123u);
    EXPECT_EQ(cfg.workload.branches, 10u);
    EXPECT_EQ(cfg.workload.seed, 99u);
}

TEST(MachineFromConfig, ExtensionKnobs)
{
    const MachineConfig cfg = machineFromConfig(KvConfig::fromString(
        "machine.victim_buffer = 16\n"
        "machine.prefetch_degree = 2\n"
        "machine.mc_occupancy = 40\n"
        "machine.page_colors = 1024\n"));
    EXPECT_EQ(cfg.victimBufferEntries, 16u);
    EXPECT_EQ(cfg.prefetchDegree, 2u);
    EXPECT_EQ(cfg.mcOccupancy, 40u);
    EXPECT_EQ(cfg.pageColors, 1024u);
    // And they round-trip through the text form.
    const MachineConfig back = machineFromConfig(
        KvConfig::fromString(machineToConfigText(cfg)));
    EXPECT_EQ(back.victimBufferEntries, 16u);
    EXPECT_EQ(back.prefetchDegree, 2u);
    EXPECT_EQ(back.mcOccupancy, 40u);
    EXPECT_EQ(back.pageColors, 1024u);
}

TEST(MachineFromConfig, WorkloadKind)
{
    const MachineConfig dss = machineFromConfig(
        KvConfig::fromString("workload.kind = dss\n"
                             "workload.dss_blocks_per_query = 99\n"));
    EXPECT_EQ(dss.workload.kind, WorkloadKind::DssScan);
    EXPECT_EQ(dss.workload.dssBlocksPerQuery, 99u);
    const MachineConfig oltp = machineFromConfig(
        KvConfig::fromString("workload.kind = oltp\n"));
    EXPECT_EQ(oltp.workload.kind, WorkloadKind::TpcB);
}

TEST(MachineFromConfigDeathTest, BadWorkloadKind)
{
    EXPECT_EXIT(machineFromConfig(
                    KvConfig::fromString("workload.kind = webserver\n")),
                ::testing::ExitedWithCode(1), "unknown workload kind");
}

TEST(MachineFromConfigDeathTest, UnknownKeyIsFatal)
{
    EXPECT_EXIT(machineFromConfig(
                    KvConfig::fromString("machine.cpuz = 8\n")),
                ::testing::ExitedWithCode(1), "unknown config key");
}

TEST(MachineFromConfigDeathTest, BadEnumValues)
{
    EXPECT_EXIT(machineFromConfig(
                    KvConfig::fromString("machine.level = turbo\n")),
                ::testing::ExitedWithCode(1),
                "unknown integration level");
    EXPECT_EXIT(machineFromConfig(
                    KvConfig::fromString("machine.l2.impl = edram\n")),
                ::testing::ExitedWithCode(1),
                "unknown L2 implementation");
    EXPECT_EXIT(machineFromConfig(KvConfig::fromString(
                    "machine.cpu_model = vliw\n")),
                ::testing::ExitedWithCode(1), "unknown cpu model");
}

TEST(MachineFromConfigDeathTest, InvalidCombinationIsFatal)
{
    EXPECT_EXIT(machineFromConfig(KvConfig::fromString(
                    "machine.level = base\n"
                    "machine.l2.impl = sram\n")),
                ::testing::ExitedWithCode(1), "cannot use");
}

TEST(MachineConfigText, RoundTrips)
{
    MachineConfig cfg;
    cfg.name = "roundtrip";
    cfg.numCpus = 8;
    cfg.coresPerNode = 2;
    cfg.cpuModel = CpuModel::OutOfOrder;
    cfg.level = IntegrationLevel::FullInt;
    cfg.l2Impl = L2Impl::OnchipDram;
    cfg.l2 = CacheGeometry{8 * mib, 8, 64};
    cfg.rac = true;
    cfg.replicateCode = true;
    cfg.workload.transactions = 77;

    const std::string text = machineToConfigText(cfg);
    const MachineConfig back =
        machineFromConfig(KvConfig::fromString(text));
    EXPECT_EQ(back.name, cfg.name);
    EXPECT_EQ(back.numCpus, cfg.numCpus);
    EXPECT_EQ(back.coresPerNode, cfg.coresPerNode);
    EXPECT_EQ(back.cpuModel, cfg.cpuModel);
    EXPECT_EQ(back.level, cfg.level);
    EXPECT_EQ(back.l2Impl, cfg.l2Impl);
    EXPECT_EQ(back.l2.sizeBytes, cfg.l2.sizeBytes);
    EXPECT_EQ(back.l2.assoc, cfg.l2.assoc);
    EXPECT_EQ(back.rac, cfg.rac);
    EXPECT_EQ(back.replicateCode, cfg.replicateCode);
    EXPECT_EQ(back.workload.transactions, cfg.workload.transactions);
}

TEST(MachineFromConfig, ShippedExampleConfigsParse)
{
    for (const char *path : {"examples/configs/base_mp.cfg",
                             "examples/configs/full_integration_mp.cfg",
                             "examples/configs/cmp_ooo.cfg"}) {
        // Tests run from the build tree; look one level up too.
        std::string p = path;
        std::ifstream probe(p);
        if (!probe)
            p = std::string("../") + path;
        std::ifstream probe2(p);
        if (!probe2)
            GTEST_SKIP() << "example configs not found from cwd";
        const MachineConfig cfg =
            machineFromConfig(KvConfig::fromFile(p));
        EXPECT_TRUE(validCombination(cfg.level, cfg.l2Impl)) << path;
        EXPECT_GE(cfg.numCpus, 1u);
    }
}

} // namespace
} // namespace isim
