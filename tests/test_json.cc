/**
 * @file
 * Unit tests for the shared JSON writer and the syntax validator
 * (src/base/json.hh): escaping, layout at the pretty/inline boundary,
 * and acceptance/rejection of well/ill-formed documents.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/base/json.hh"

namespace isim {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello_world-123"), "hello_world-123");
}

TEST(JsonEscape, EscapesSpecials)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(JsonWriter, LayoutAtPrettyBoundary)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty_depth=*/2);
    w.beginObject();
    w.key("id").value("Fig");
    w.key("n").value(3);
    w.key("arr").beginArray();
    w.beginObject();
    w.key("a").value(1.5, 2);
    w.key("b").value(true);
    w.endObject();
    w.beginObject();
    w.key("c").value(std::string("x\"y"));
    w.endObject();
    w.endArray();
    w.endObject();

    const std::string expect = "{\n"
                               "  \"id\": \"Fig\",\n"
                               "  \"n\": 3,\n"
                               "  \"arr\": [\n"
                               "    {\"a\": 1.50, \"b\": true},\n"
                               "    {\"c\": \"x\\\"y\"}\n"
                               "  ]\n"
                               "}";
    EXPECT_EQ(os.str(), expect);

    std::string err;
    EXPECT_TRUE(jsonValidate(os.str(), &err)) << err;
}

TEST(JsonWriter, DoublePrecisionDefaultsToFour)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("x", 100.0);
    w.kv("y", 0.123456, 3);
    w.endObject();
    EXPECT_NE(os.str().find("\"x\": 100.0000"), std::string::npos);
    EXPECT_NE(os.str().find("\"y\": 0.123"), std::string::npos);
}

TEST(JsonWriter, EmptyContainers)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("o").beginObject().endObject();
    w.key("a").beginArray().endArray();
    w.endObject();
    std::string err;
    EXPECT_TRUE(jsonValidate(os.str(), &err)) << err;
}

TEST(JsonValidate, AcceptsWellFormed)
{
    for (const char *doc : {
             "{}",
             "[]",
             "null",
             "true",
             "-1.5e+3",
             "\"\\u00ff\"",
             "  {\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"} ",
         }) {
        std::string err;
        EXPECT_TRUE(jsonValidate(doc, &err)) << doc << ": " << err;
    }
}

TEST(JsonValidate, RejectsMalformed)
{
    for (const char *doc : {
             "",
             "{",
             "[1, 2",
             "{\"a\":}",
             "{\"a\": 1,}",
             "{\"a\" 1}",
             "\"unterminated",
             "\"bad\\q\"",
             "nulll",
             "{} {}",
             "01x",
         }) {
        std::string err;
        EXPECT_FALSE(jsonValidate(doc, &err)) << doc;
        EXPECT_FALSE(err.empty()) << doc;
    }
}

} // namespace
} // namespace isim
