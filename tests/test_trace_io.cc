/**
 * @file
 * Round-trip tests for the binary trace format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/base/random.hh"
#include "src/trace/trace_io.hh"

namespace isim {
namespace {

std::string
tempPath(const char *tag)
{
    return ::testing::TempDir() + "/isim_trace_" + tag + ".bin";
}

TEST(TraceIo, EmptyTraceRoundTrip)
{
    const std::string path = tempPath("empty");
    { TraceWriter w(path); }
    TraceReader r(path);
    NodeId cpu;
    MemRef ref;
    EXPECT_FALSE(r.next(cpu, ref));
    std::remove(path.c_str());
}

TEST(TraceIo, RecordsRoundTripExactly)
{
    const std::string path = tempPath("roundtrip");
    std::vector<std::pair<NodeId, MemRef>> records = {
        {0, instrChunk(0x123456789abcull << 6, 13, true)},
        {3, loadRef(0xdeadbeef40ull, 2, false)},
        {7, storeRef(0x0, 0, true)},
        {1, loadRef(~Addr{0} & ~Addr{63}, 255, false)},
        {2, instrChunk(64, 65535, false)},
    };
    {
        TraceWriter w(path);
        for (const auto &[cpu, ref] : records)
            w.write(cpu, ref);
        EXPECT_EQ(w.records(), records.size());
    }
    TraceReader r(path);
    for (const auto &[cpu, ref] : records) {
        NodeId got_cpu;
        MemRef got;
        ASSERT_TRUE(r.next(got_cpu, got));
        EXPECT_EQ(got_cpu, cpu);
        EXPECT_EQ(got.kind, ref.kind);
        EXPECT_EQ(got.kernel, ref.kernel);
        EXPECT_EQ(got.depDist, ref.depDist);
        EXPECT_EQ(got.instrCount, ref.instrCount);
        EXPECT_EQ(got.paddr, ref.paddr);
    }
    NodeId cpu;
    MemRef ref;
    EXPECT_FALSE(r.next(cpu, ref));
    std::remove(path.c_str());
}

TEST(TraceIo, LargeRandomTrace)
{
    const std::string path = tempPath("large");
    Rng rng(21);
    const int n = 50000;
    {
        TraceWriter w(path);
        Rng gen(21);
        for (int i = 0; i < n; ++i) {
            MemRef ref;
            ref.kind = static_cast<RefKind>(gen.below(3));
            ref.kernel = gen.chance(0.25);
            ref.depDist = static_cast<std::uint8_t>(gen.below(4));
            ref.instrCount =
                static_cast<std::uint16_t>(gen.below(17));
            ref.paddr = gen.next() & ~Addr{63};
            w.write(static_cast<NodeId>(gen.below(8)), ref);
        }
    }
    TraceReader r(path);
    Rng gen(21);
    for (int i = 0; i < n; ++i) {
        NodeId cpu;
        MemRef ref;
        ASSERT_TRUE(r.next(cpu, ref));
        EXPECT_EQ(ref.kind, static_cast<RefKind>(gen.below(3)));
        EXPECT_EQ(ref.kernel, gen.chance(0.25));
        EXPECT_EQ(ref.depDist,
                  static_cast<std::uint8_t>(gen.below(4)));
        EXPECT_EQ(ref.instrCount,
                  static_cast<std::uint16_t>(gen.below(17)));
        EXPECT_EQ(ref.paddr, gen.next() & ~Addr{63});
        EXPECT_EQ(cpu, static_cast<NodeId>(gen.below(8)));
    }
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, BadHeaderRejected)
{
    const std::string path = tempPath("bad");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("not a trace header....", f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "bad trace header");
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, MissingFileRejected)
{
    EXPECT_EXIT(TraceReader reader("/nonexistent/isim.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, RefKindNames)
{
    EXPECT_STREQ(refKindName(RefKind::Instr), "Instr");
    EXPECT_STREQ(refKindName(RefKind::Load), "Load");
    EXPECT_STREQ(refKindName(RefKind::Store), "Store");
}

} // namespace
} // namespace isim
