/**
 * @file
 * Unit tests for the out-of-order timing model: overlap of independent
 * misses (memory-level parallelism), serialization of dependent
 * chains, window and port limits, and drain semantics. These are the
 * behaviours Section 7 relies on: OOO hides latency where independence
 * exists and cannot where OLTP's dependent accesses chain.
 */

#include <gtest/gtest.h>

#include "src/base/random.hh"
#include "src/coherence/protocol.hh"
#include "src/cpu/inorder.hh"
#include "src/cpu/ooo.hh"

namespace isim {
namespace {

MemSysConfig
cfg()
{
    MemSysConfig c;
    c.numNodes = 1;
    c.l1Size = 1 * kib;
    c.l1Assoc = 2;
    c.l2 = CacheGeometry{256 * kib, 8, 64};
    c.lat = figure3Latencies(IntegrationLevel::Base,
                             L2Impl::OffchipDirect);
    return c;
}

/** Run a sequence of refs through a fresh OOO core; returns end time. */
Tick
run(const std::vector<MemRef> &refs, const OooParams &params = {})
{
    MemorySystem ms(cfg());
    OooCpu cpu(0, ms, params);
    Tick now = 0;
    for (const MemRef &ref : refs)
        now = cpu.consume(ref, now);
    return cpu.drain(now);
}

TEST(Ooo, IndependentMissesOverlap)
{
    // Two independent L2-missing loads in a row...
    std::vector<MemRef> independent = {
        instrChunk(0, 4),
        loadRef(0x10000),
        loadRef(0x20000),
    };
    // ...vs a dependent chain of the same two loads.
    std::vector<MemRef> dependent = {
        instrChunk(0, 4),
        loadRef(0x10000),
        loadRef(0x20000, /*dep_dist=*/1),
    };
    const Tick t_ind = run(independent);
    const Tick t_dep = run(dependent);
    const Cycles local = cfg().lat.local;
    // The dependent chain must expose (at least) one extra full miss
    // latency that the independent pair overlaps away.
    EXPECT_LE(t_ind + local / 2, t_dep);
    // Dependent: the chunk's cold I-fetch plus two chained misses.
    EXPECT_GE(t_dep, 3 * local);
    // Independent: the two loads overlap, so well under that.
    EXPECT_LT(t_ind, t_dep - local / 2 + 1);
    EXPECT_LT(t_ind, 2 * local + local / 2);
}

TEST(Ooo, LongDependentChainSerializes)
{
    std::vector<MemRef> chain;
    chain.push_back(instrChunk(0, 4));
    const int n = 8;
    for (int i = 0; i < n; ++i)
        chain.push_back(loadRef(0x10000 + i * 0x4000, 1));
    const Tick t = run(chain);
    EXPECT_GE(t, static_cast<Tick>(n) * cfg().lat.local);
}

TEST(Ooo, WindowLimitsRunahead)
{
    // A miss followed by a big chunk (beyond the window) and a second
    // independent miss: with a 64-entry window the second miss cannot
    // issue until the first commits, so they serialize.
    auto make = [](unsigned gap_instrs) {
        std::vector<MemRef> v;
        v.push_back(loadRef(0x10000));
        unsigned left = gap_instrs;
        Addr code = 0x100000;
        while (left > 0) {
            const unsigned step = std::min(16u, left);
            v.push_back(instrChunk(code, static_cast<uint16_t>(step)));
            code += 64;
            left -= step;
        }
        v.push_back(loadRef(0x20000));
        return v;
    };
    const Tick close = run(make(8));    // both in window: overlap
    const Tick apart = run(make(200));  // window forces serialization
    const Cycles local = cfg().lat.local;
    // Far apart, the second miss is fully exposed; close together it
    // overlaps with the first.
    EXPECT_GE(apart, close + local / 2);
    EXPECT_GE(apart, 2 * local);
}

TEST(Ooo, CommitBandwidthBoundsIdealIpc)
{
    // Pure instruction stream with L1-hitting fetches: the core should
    // approach `width` instructions per cycle.
    std::vector<MemRef> v;
    const unsigned chunks = 500, per = 16;
    for (unsigned i = 0; i < chunks; ++i)
        v.push_back(instrChunk((i % 4) * 64, per));
    const Tick t = run(v);
    const double ipc =
        static_cast<double>(chunks * per) / static_cast<double>(t);
    EXPECT_GT(ipc, 2.0);
    EXPECT_LE(ipc, 4.01);
}

TEST(Ooo, FasterThanInOrderOnMissHeavyStream)
{
    // Same stream through both models: the OOO core must be faster
    // per Section 7 (about 1.3-1.4x on OLTP).
    MemorySystem ms1(cfg()), ms2(cfg());
    OooCpu ooo(0, ms1);
    Tick t_ooo = 0;
    Rng rng(3);
    std::vector<MemRef> refs;
    for (int i = 0; i < 2000; ++i) {
        refs.push_back(instrChunk((rng.below(512)) * 64, 12));
        refs.push_back(
            loadRef(0x100000 + rng.below(1 << 16) * 64,
                    rng.chance(0.3) ? 1 : 0));
    }
    for (const MemRef &r : refs)
        t_ooo = ooo.consume(r, t_ooo);
    t_ooo = ooo.drain(t_ooo);

    InOrderCpu inorder(0, ms2);
    Tick t_in = 0;
    for (const MemRef &r : refs)
        t_in = inorder.consume(r, t_in);

    EXPECT_LT(t_ooo, t_in);
}

TEST(Ooo, StallAttributionSumsToElapsed)
{
    MemorySystem ms(cfg());
    OooCpu cpu(0, ms);
    Tick now = 0;
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        now = cpu.consume(instrChunk(rng.below(256) * 64, 10), now);
        now = cpu.consume(loadRef(0x200000 + rng.below(4096) * 64),
                          now);
    }
    now = cpu.drain(now);
    const CpuStats &s = cpu.stats();
    // Attribution closes: buckets sum to the elapsed non-idle time
    // (within quarter-cycle rounding per category).
    EXPECT_NEAR(static_cast<double>(s.nonIdle()),
                static_cast<double>(now), 8.0);
}

TEST(Ooo, DrainAdvancesAndResets)
{
    MemorySystem ms(cfg());
    OooCpu cpu(0, ms);
    Tick now = cpu.consume(loadRef(0x10000), 0);
    const Tick drained = cpu.drain(now);
    EXPECT_GE(drained, now);
    // After a drain the core starts fresh: a consume at a later time
    // fast-forwards cleanly.
    const Tick later = cpu.consume(instrChunk(0, 4), drained + 1000);
    EXPECT_GE(later, drained + 1000);
}

TEST(Ooo, KernelTimeTracked)
{
    MemorySystem ms(cfg());
    OooCpu cpu(0, ms);
    Tick now = 0;
    for (int i = 0; i < 50; ++i)
        now = cpu.consume(
            instrChunk(0x4000 + i * 64, 10, /*kernel=*/true), now);
    EXPECT_GT(cpu.stats().kernelTime, 0u);
    EXPECT_LE(cpu.stats().kernelTime, cpu.stats().nonIdle());
}

TEST(Ooo, RejectsUnsupportedWidth)
{
    MemorySystem ms(cfg());
    OooParams p;
    p.width = 8;
    EXPECT_DEATH(OooCpu(0, ms, p), "width");
}

} // namespace
} // namespace isim
