/**
 * @file
 * Self-profiler tests (src/prof): registration idempotence, scope
 * accumulation on/off, phased routing, thread-window snapshot/reset,
 * prof.json schema and self-time math, deterministic merge, and a
 * (generous) disabled-scope overhead bound.
 *
 * The ProfScope/registerNode primitives are constructed directly here
 * on purpose — tests are outside the prof-guard lint rule's scope,
 * and the classes compile in every build (only the macros are gated
 * on ISIM_PROF), so this suite runs identically with profiling
 * compiled in or out.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/base/json.hh"
#include "src/prof/profiler.hh"

namespace isim {
namespace prof {
namespace {

/** Every test starts with a clean thread window and the flag off. */
class Prof : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setEnabled(false);
        threadReset();
    }
    void TearDown() override
    {
        setEnabled(false);
        threadReset();
    }
};

const ProfEntry *
findEntry(const ProfSnapshot &snap, const std::string &path)
{
    for (const ProfEntry &e : snap.entries)
        if (e.path == path)
            return &e;
    return nullptr;
}

TEST_F(Prof, RegisterNodeIsIdempotent)
{
    const Node &a = registerNode("test_prof/idem");
    const Node &b = registerNode("test_prof/idem");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.path, "test_prof/idem");
}

TEST_F(Prof, DisabledScopeAccumulatesNothing)
{
    const Node &node = registerNode("test_prof/disabled");
    {
        ProfScope scope(node);
    }
    const ProfSnapshot snap = threadSnapshot();
    EXPECT_EQ(findEntry(snap, "test_prof/disabled"), nullptr);
}

TEST_F(Prof, EnabledScopeCountsEntersAndTime)
{
    const Node &node = registerNode("test_prof/enabled");
    setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        ProfScope scope(node);
    }
    setEnabled(false);
    const ProfSnapshot snap = threadSnapshot();
    const ProfEntry *e = findEntry(snap, "test_prof/enabled");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->enters, 3u);
}

TEST_F(Prof, PhasedScopeFollowsThreadPhase)
{
    const Node &warm = registerNode("warmup/test_prof_phased");
    const Node &meas = registerNode("measure/test_prof_phased");
    setEnabled(true);
    {
        ScopedPhase in(Phase::Warmup);
        ProfScope scope(warm, meas);
    }
    {
        ScopedPhase in(Phase::Measure);
        ProfScope scope(warm, meas);
        {
            // Nested phase restores on exit.
            ScopedPhase deeper(Phase::Warmup);
            ProfScope inner(warm, meas);
        }
    }
    setEnabled(false);
    const ProfSnapshot snap = threadSnapshot();
    const ProfEntry *w = findEntry(snap, "warmup/test_prof_phased");
    const ProfEntry *m = findEntry(snap, "measure/test_prof_phased");
    ASSERT_NE(w, nullptr);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(w->enters, 2u);
    EXPECT_EQ(m->enters, 1u);
    // The default phase is Measure again.
    EXPECT_EQ(phase(), Phase::Measure);
}

TEST_F(Prof, ThreadResetOpensAFreshWindow)
{
    const Node &node = registerNode("test_prof/window");
    setEnabled(true);
    {
        ProfScope scope(node);
    }
    threadReset();
    {
        ProfScope scope(node);
    }
    setEnabled(false);
    const ProfEntry *e =
        findEntry(threadSnapshot(), "test_prof/window");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->enters, 1u);
}

TEST_F(Prof, ProfJsonIsValidAndSchemaVersioned)
{
    ProfSnapshot snap;
    snap.entries.push_back({"measure", 100, 1, 4});
    snap.entries.push_back({"measure/memapply", 30, 5, 0});
    snap.entries.push_back({"measure/refgen", 60, 7, 2});
    snap.entries.push_back({"report", 10, 1, 9});
    const std::string text = profJson(snap);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(text, doc, &err)) << err;
    EXPECT_EQ(doc.at("schema").text, "isim-prof");
    EXPECT_EQ(static_cast<int>(doc.at("version").number),
              static_cast<int>(kProfSchemaVersion));
    // Flag was left off by the fixture: emission says so.
    EXPECT_FALSE(doc.at("enabled").boolean);
    // total_ns sums top-level nodes only (no double counting).
    EXPECT_EQ(static_cast<std::uint64_t>(doc.at("total_ns").number),
              110u);

    const JsonValue &nodes = doc.at("nodes");
    ASSERT_TRUE(nodes.isArray());
    ASSERT_EQ(nodes.array.size(), 4u);
    // Entries arrive sorted; self = inclusive - direct children.
    EXPECT_EQ(nodes.array[0].at("path").text, "measure");
    EXPECT_EQ(
        static_cast<std::uint64_t>(nodes.array[0].at("self_ns").number),
        10u);
    EXPECT_EQ(nodes.array[1].at("path").text, "measure/memapply");
    EXPECT_EQ(
        static_cast<std::uint64_t>(nodes.array[1].at("self_ns").number),
        30u);
    EXPECT_EQ(
        static_cast<std::uint64_t>(nodes.array[3].at("alloc").number),
        9u);
}

TEST_F(Prof, ProfJsonClampsSelfTimeAtZero)
{
    // Clock jitter can make children sum past the parent; self_ns
    // must clamp rather than wrap.
    ProfSnapshot snap;
    snap.entries.push_back({"warmup", 10, 1, 0});
    snap.entries.push_back({"warmup/image_build", 25, 1, 0});
    JsonValue doc;
    ASSERT_TRUE(jsonParse(profJson(snap), doc, nullptr));
    EXPECT_EQ(static_cast<std::uint64_t>(
                  doc.at("nodes").array[0].at("self_ns").number),
              0u);
}

TEST_F(Prof, EmptySnapshotEmitsAValidStub)
{
    const std::string text = profJson(ProfSnapshot{});
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(jsonParse(text, doc, &err)) << err;
    EXPECT_FALSE(doc.at("enabled").boolean);
    EXPECT_EQ(static_cast<std::uint64_t>(doc.at("total_ns").number),
              0u);
    EXPECT_TRUE(doc.at("nodes").array.empty());
}

TEST_F(Prof, GlobalMergeSumsThreadsDeterministically)
{
    const Node &node = registerNode("test_prof/merge");
    const ProfSnapshot before = collectGlobal();
    const ProfEntry *b = findEntry(before, "test_prof/merge");
    const std::uint64_t baseEnters = b != nullptr ? b->enters : 0;

    setEnabled(true);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&node] {
            for (int i = 0; i < 5; ++i) {
                ProfScope scope(node);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    setEnabled(false);

    // Quiescent: every worker joined. Exited threads' buffers still
    // count, and entries come back sorted by path.
    const ProfSnapshot snap = collectGlobal();
    const ProfEntry *e = findEntry(snap, "test_prof/merge");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->enters, baseEnters + 20u);
    for (std::size_t i = 1; i < snap.entries.size(); ++i)
        EXPECT_LT(snap.entries[i - 1].path, snap.entries[i].path);
}

TEST_F(Prof, DisabledScopeStaysCheap)
{
    // The one-branch-when-off contract, with sanitizer headroom: a
    // disabled scope is a relaxed load + branch (single-digit ns);
    // asserting < 1 us average catches only catastrophic regressions
    // (say, taking the registry lock per scope) without flaking.
    const Node &node = registerNode("test_prof/overhead");
    constexpr int kIters = 200000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
        ProfScope scope(node);
    }
    const auto stop = std::chrono::steady_clock::now();
    const double nsPerScope =
        std::chrono::duration<double, std::nano>(stop - start)
            .count() /
        kIters;
    EXPECT_LT(nsPerScope, 1000.0);
    EXPECT_EQ(findEntry(threadSnapshot(), "test_prof/overhead"),
              nullptr);
}

} // namespace
} // namespace prof
} // namespace isim
