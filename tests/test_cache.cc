/**
 * @file
 * Unit tests for the single cache level (counters, fills, eviction
 * classification, invalidation, downgrade).
 */

#include <gtest/gtest.h>

#include "src/mem/cache.hh"

namespace isim {
namespace {

CacheGeometry
tiny()
{
    return CacheGeometry{8 * kib, 2, 64};
}

TEST(Cache, HitMissCounters)
{
    Cache c("t", tiny());
    EXPECT_EQ(c.access(1), nullptr);
    c.fill(1, LineState::Shared);
    EXPECT_NE(c.access(1), nullptr);
    EXPECT_EQ(c.counters().accesses, 2u);
    EXPECT_EQ(c.counters().hits, 1u);
    EXPECT_EQ(c.counters().misses(), 1u);
    EXPECT_DOUBLE_EQ(c.counters().hitRate(), 0.5);
}

TEST(Cache, ProbeDoesNotCount)
{
    Cache c("t", tiny());
    c.fill(1, LineState::Shared);
    const auto before = c.counters().accesses;
    EXPECT_NE(c.probe(1), nullptr);
    EXPECT_EQ(c.probe(2), nullptr);
    EXPECT_EQ(c.counters().accesses, before);
}

TEST(Cache, EvictionClassification)
{
    Cache c("t", tiny());
    const std::uint64_t sets = tiny().sets();
    // Fill both ways of set 3, then force two evictions.
    c.fill(3, LineState::Modified);
    c.fill(3 + sets, LineState::Shared);
    Victim v1 = c.fill(3 + 2 * sets, LineState::Shared); // evicts M
    ASSERT_TRUE(v1.valid);
    EXPECT_EQ(v1.state, LineState::Modified);
    Victim v2 = c.fill(3 + 3 * sets, LineState::Shared); // evicts S
    ASSERT_TRUE(v2.valid);
    EXPECT_EQ(c.counters().dirtyEvictions, 1u);
    EXPECT_EQ(c.counters().cleanEvictions, 1u);
}

TEST(Cache, ExclusiveVictimCountsClean)
{
    Cache c("t", tiny());
    const std::uint64_t sets = tiny().sets();
    c.fill(5, LineState::Exclusive);
    c.fill(5 + sets, LineState::Exclusive);
    c.fill(5 + 2 * sets, LineState::Shared);
    EXPECT_EQ(c.counters().dirtyEvictions, 0u);
    EXPECT_EQ(c.counters().cleanEvictions, 1u);
}

TEST(Cache, InvalidateReportsPriorState)
{
    Cache c("t", tiny());
    c.fill(9, LineState::Modified);
    EXPECT_EQ(c.invalidateLine(9), LineState::Modified);
    EXPECT_EQ(c.invalidateLine(9), LineState::Invalid);
    EXPECT_EQ(c.counters().invalidationsReceived, 1u);
}

TEST(Cache, DowngradeOnlyModified)
{
    Cache c("t", tiny());
    c.fill(4, LineState::Shared);
    EXPECT_FALSE(c.downgradeLine(4));
    c.fill(5, LineState::Modified);
    EXPECT_TRUE(c.downgradeLine(5));
    EXPECT_EQ(c.probe(5)->state, LineState::Shared);
}

TEST(Cache, ResetCountersKeepsContents)
{
    Cache c("t", tiny());
    c.fill(4, LineState::Shared);
    c.access(4);
    c.resetCounters();
    EXPECT_EQ(c.counters().accesses, 0u);
    EXPECT_EQ(c.counters().fills, 0u);
    EXPECT_NE(c.probe(4), nullptr); // contents preserved
}

} // namespace
} // namespace isim
