/**
 * @file
 * Edge-case protocol scenarios beyond test_protocol.cc: upgrades from
 * the L1-hit path, ownership churn, exclusive-owner stores, eviction
 * races with the directory, and multi-step ownership migrations.
 */

#include <gtest/gtest.h>

#include "src/coherence/protocol.hh"

namespace isim {
namespace {

MemSysConfig
smallConfig(unsigned nodes)
{
    MemSysConfig cfg;
    cfg.numNodes = nodes;
    cfg.l1Size = 1 * kib;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{4 * kib, 2, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    return cfg;
}

Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

TEST(ProtocolEdge, UpgradeFromL1HitOnTrulySharedLine)
{
    MemorySystem ms(smallConfig(2));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a);
    ms.access(1, RefType::Load, a); // both nodes Shared; 0 has L1 copy
    ASSERT_NE(ms.l1d(0).probe(a >> 6), nullptr);

    const AccessOutcome out = ms.access(0, RefType::Store, a);
    EXPECT_TRUE(out.upgrade);
    EXPECT_EQ(out.cls, MissClass::Local); // home is node 0
    EXPECT_EQ(out.stall, ms.config().lat.local);
    EXPECT_EQ(ms.l2(1).probe(a >> 6), nullptr); // sharer invalidated
    EXPECT_EQ(ms.nodeStats(0).upgrades, 1u);
    ms.checkInvariants();
}

TEST(ProtocolEdge, StoreToCleanExclusiveRemoteOwnerIsTwoHop)
{
    MemorySystem ms(smallConfig(4));
    const Addr a = at(2, 0x140);
    ms.access(0, RefType::Load, a); // node 0 Exclusive (clean)
    const AccessOutcome out = ms.access(1, RefType::Store, a);
    // The owner's copy was clean: data comes from home memory, so the
    // transfer is a 2-hop, not a 3-hop.
    EXPECT_EQ(out.cls, MissClass::RemoteClean);
    EXPECT_EQ(ms.l2(0).probe(a >> 6), nullptr);
    EXPECT_EQ(ms.l2(1).probe(a >> 6)->state, LineState::Modified);
    ms.checkInvariants();
}

TEST(ProtocolEdge, OwnershipMigratesAroundTheMachine)
{
    MemorySystem ms(smallConfig(4));
    const Addr a = at(0, 0x180);
    for (NodeId n = 0; n < 4; ++n) {
        ms.access(n, RefType::Store, a);
        const DirEntry *e = ms.directory().find(a >> 6);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->state, LineState::Modified);
        EXPECT_EQ(e->owner, n);
        for (NodeId o = 0; o < 4; ++o) {
            if (o != n) {
                EXPECT_EQ(ms.l2(o).probe(a >> 6), nullptr);
            }
        }
    }
    // Three ownership transfers were dirty 3-hop misses.
    EXPECT_EQ(ms.aggregateStats().dataRemoteDirty, 3u);
    ms.checkInvariants();
}

TEST(ProtocolEdge, ReadAfterDowngradeIsSharedNotOwned)
{
    MemorySystem ms(smallConfig(2));
    const Addr a = at(0, 0x1c0);
    ms.access(0, RefType::Store, a);
    ms.access(1, RefType::Load, a); // 3-hop, both Shared now
    // A third read by the owner hits its own Shared copy.
    const AccessOutcome out = ms.access(0, RefType::Load, a);
    EXPECT_EQ(out.cls, MissClass::L1Hit);
    // And a store by the old owner needs a full upgrade again.
    const AccessOutcome st = ms.access(0, RefType::Store, a);
    EXPECT_TRUE(st.upgrade);
    EXPECT_EQ(ms.nodeStats(0).invalidationsSent, 1u);
    ms.checkInvariants();
}

TEST(ProtocolEdge, WritebackThenReownLeavesNoStaleState)
{
    MemorySystem ms(smallConfig(2));
    const CacheGeometry l2 = smallConfig(2).l2;
    const Addr a = at(0, 0x40);
    ms.access(1, RefType::Store, a);
    // Evict (write back) ...
    const Addr line = a >> 6;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k) {
        ms.access(1, RefType::Load,
                  at(0, (line + k * l2.sets()) << 6));
    }
    EXPECT_EQ(ms.directory().find(line), nullptr); // back to Uncached
    // ... then re-own: a fresh Exclusive-grant write, 2-hop clean.
    const AccessOutcome out = ms.access(1, RefType::Store, a);
    EXPECT_EQ(out.cls, MissClass::RemoteClean);
    EXPECT_EQ(ms.directory().find(line)->owner, 1u);
    ms.checkInvariants();
}

TEST(ProtocolEdge, ExclusiveGrantEvictionSendsHintNotWriteback)
{
    MemorySystem ms(smallConfig(2));
    const CacheGeometry l2 = smallConfig(2).l2;
    const Addr a = at(0, 0x40);
    ms.access(1, RefType::Load, a); // Exclusive grant, never written
    const auto wb_before = ms.nodeStats(1).writebacksToHome;
    const auto hints_before = ms.nodeStats(1).replacementHints;
    const Addr line = a >> 6;
    for (unsigned k = 1; k <= l2.assoc + 1; ++k) {
        ms.access(1, RefType::Load,
                  at(0, (line + k * l2.sets()) << 6));
    }
    EXPECT_EQ(ms.nodeStats(1).writebacksToHome, wb_before);
    EXPECT_GT(ms.nodeStats(1).replacementHints, hints_before);
    EXPECT_EQ(ms.directory().find(line), nullptr);
    ms.checkInvariants();
}

TEST(ProtocolEdge, LoadStoreLoadOnSameNodeStaysSilentAfterOwnership)
{
    MemorySystem ms(smallConfig(2));
    const Addr a = at(0, 0x200);
    ms.access(0, RefType::Store, a); // miss, Owned
    const auto misses = ms.aggregateStats().totalL2Misses();
    // Everything after is L1-resident and silent.
    EXPECT_EQ(ms.access(0, RefType::Load, a).cls, MissClass::L1Hit);
    EXPECT_EQ(ms.access(0, RefType::Store, a).cls, MissClass::L1Hit);
    EXPECT_EQ(ms.access(0, RefType::Load, a).stall, 0u);
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), misses);
    EXPECT_EQ(ms.nodeStats(0).upgrades, 0u);
}

TEST(ProtocolEdge, HomeNodeDirtyReadByHomeIsStillDirtyClass)
{
    MemorySystem ms(smallConfig(2));
    const Addr a = at(0, 0x240); // home is node 0
    ms.access(1, RefType::Store, a); // dirty at node 1
    const AccessOutcome out = ms.access(0, RefType::Load, a);
    // Data must come from node 1's cache even though node 0 is home.
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    ms.checkInvariants();
}

TEST(ProtocolEdge, TwoSharersUpgradeRace)
{
    MemorySystem ms(smallConfig(3));
    const Addr a = at(0, 0x280);
    ms.access(1, RefType::Load, a);
    ms.access(2, RefType::Load, a);
    // Node 1 upgrades; node 2's subsequent store is a full 3-hop miss
    // (its copy was invalidated by node 1's upgrade).
    EXPECT_TRUE(ms.access(1, RefType::Store, a).upgrade);
    const AccessOutcome out = ms.access(2, RefType::Store, a);
    EXPECT_FALSE(out.upgrade);
    EXPECT_EQ(out.cls, MissClass::RemoteDirty);
    EXPECT_EQ(ms.directory().find(a >> 6)->owner, 2u);
    ms.checkInvariants();
}

TEST(ProtocolEdge, DirectoryPopulationTracksResidency)
{
    MemorySystem ms(smallConfig(2));
    EXPECT_EQ(ms.directory().population(), 0u);
    ms.access(0, RefType::Load, at(0, 0x000));
    ms.access(0, RefType::Load, at(0, 0x040));
    EXPECT_EQ(ms.directory().population(), 2u);
    // Evicting everything returns the directory to empty.
    const CacheGeometry l2 = smallConfig(2).l2;
    for (unsigned k = 0; k < 3 * l2.lines(); ++k)
        ms.access(0, RefType::Load, at(0, 0x10000 + k * 64));
    // The two original lines are long evicted; population only holds
    // currently-resident lines.
    EXPECT_LE(ms.directory().population(),
              l2.lines() + ms.config().l1Size / 64 + 4);
    ms.checkInvariants();
}

} // namespace
} // namespace isim
