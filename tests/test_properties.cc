/**
 * @file
 * Property sweeps over full machine runs: for a grid of cache shapes
 * (including non-power-of-two sets), node counts, CPU models and RAC
 * presence, a short OLTP run must end with (a) the directory/cache
 * cross-invariants intact, (b) a consistent database, (c) sane stat
 * identities.
 */

#include <gtest/gtest.h>

#include <string>

#include "src/base/logging.hh"
#include "src/core/machine.hh"

namespace isim {
namespace {

struct SweepParam
{
    unsigned cpus;
    std::uint64_t l2Bytes;
    unsigned l2Assoc;
    bool rac;
    CpuModel model;

    std::string
    name() const
    {
        return "n" + std::to_string(cpus) + "_" +
               CacheGeometry{l2Bytes, l2Assoc, 64}.shortName() +
               (rac ? "_rac" : "") +
               (model == CpuModel::OutOfOrder ? "_ooo" : "");
    }
};

class MachineSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(MachineSweep, RunEndsConsistent)
{
    setQuiet(true);
    const SweepParam param = GetParam();

    MachineConfig cfg;
    cfg.name = param.name();
    cfg.numCpus = param.cpus;
    cfg.cpuModel = param.model;
    if (param.rac) {
        cfg.level = IntegrationLevel::FullInt;
        cfg.l2Impl = L2Impl::OnchipSram;
        cfg.rac = true;
        cfg.racGeom = CacheGeometry{2 * mib, 8, 64};
    } else {
        cfg.level = IntegrationLevel::Base;
        cfg.l2Impl =
            param.l2Assoc == 1 ? L2Impl::OffchipDirect
                               : L2Impl::OffchipAssoc;
    }
    cfg.l2 = CacheGeometry{param.l2Bytes, param.l2Assoc, 64};
    cfg.workload.branches = 8;
    cfg.workload.accountsPerBranch = 10000;
    cfg.workload.blockBufferBytes = 64 * mib;
    cfg.workload.transactions = 48;
    cfg.workload.warmupTransactions = 16;

    Machine m(cfg);
    const RunResult r = m.run(ExecMode::Timing);

    // (a) Protocol invariants.
    m.memSys().checkInvariants();

    // (b) The database really executed its transactions.
    EXPECT_TRUE(r.dbConsistent);
    EXPECT_EQ(r.transactions, 48u);
    // History rows are inserted during Execute; commits are counted
    // at Respond, so in-flight transactions may lead the commit count
    // by at most the number of servers.
    const std::uint64_t servers =
        std::uint64_t{param.cpus} * cfg.workload.serversPerCpu;
    EXPECT_GE(m.engine().db().historyCount(),
              m.engine().committedTransactions());
    EXPECT_LE(m.engine().db().historyCount(),
              m.engine().committedTransactions() + servers);

    // (c) Stat identities.
    EXPECT_GT(r.cpu.instructions, 0u);
    EXPECT_GT(r.cpu.loads, 0u);
    EXPECT_GT(r.cpu.stores, 0u);
    EXPECT_EQ(r.execTime(),
              r.cpu.busy + r.cpu.l2HitStall + r.cpu.localStall +
                  r.cpu.remStall());
    EXPECT_LE(r.cpu.kernelTime, r.execTime());
    if (param.cpus == 1) {
        EXPECT_EQ(r.misses.dataRemoteClean +
                      r.misses.dataRemoteDirty +
                      r.misses.instrRemote,
                  0u);
    }
    // Every CPU did some work.
    for (NodeId n = 0; n < param.cpus; ++n)
        EXPECT_GT(m.cpu(n).stats().instructions, 0u) << "cpu " << n;

    // L1/L2 access hierarchy: L2 demand accesses cannot exceed L1
    // misses plus coherence refills.
    for (NodeId n = 0; n < param.cpus; ++n) {
        const auto &l1i = m.memSys().l1i(n).counters();
        const auto &l1d = m.memSys().l1d(n).counters();
        const auto &l2 = m.memSys().l2(n).counters();
        EXPECT_LE(l2.accesses, l1i.misses() + l1d.misses() +
                                   l1i.invalidationsReceived +
                                   l1d.invalidationsReceived + 16);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MachineSweep,
    ::testing::Values(
        SweepParam{1, 256 * kib, 1, false, CpuModel::InOrder},
        SweepParam{1, 512 * kib, 4, false, CpuModel::InOrder},
        SweepParam{1, 1280 * kib, 4, false, CpuModel::InOrder},
        SweepParam{1, 1 * mib, 8, false, CpuModel::OutOfOrder},
        SweepParam{2, 512 * kib, 2, false, CpuModel::InOrder},
        SweepParam{2, 512 * kib, 2, true, CpuModel::InOrder},
        SweepParam{4, 256 * kib, 1, false, CpuModel::InOrder},
        SweepParam{4, 512 * kib, 4, true, CpuModel::OutOfOrder},
        SweepParam{8, 512 * kib, 2, false, CpuModel::InOrder},
        SweepParam{8, 1 * mib, 4, true, CpuModel::InOrder}),
    [](const ::testing::TestParamInfo<SweepParam> &tpi) {
        return tpi.param.name();
    });

/** Miss monotonicity: growing an associative L2 cannot hurt much. */
class CapacitySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CapacitySweep, BiggerAssociativeCacheMissesLess)
{
    setQuiet(true);
    const unsigned assoc = GetParam();
    std::uint64_t prev_misses = ~0ull;
    for (std::uint64_t size :
         {256 * kib, 512 * kib, 1 * mib, 2 * mib}) {
        MachineConfig cfg;
        cfg.name = "cap";
        cfg.numCpus = 1;
        cfg.l2 = CacheGeometry{size, assoc, 64};
        cfg.l2Impl = assoc == 1 ? L2Impl::OffchipDirect
                                : L2Impl::OffchipAssoc;
        cfg.workload.branches = 8;
        cfg.workload.accountsPerBranch = 10000;
        cfg.workload.blockBufferBytes = 64 * mib;
        cfg.workload.transactions = 120;
        cfg.workload.warmupTransactions = 60;
        const RunResult r = Machine(cfg).run(ExecMode::Timing);
        // Allow a sliver of noise; capacity growth must not increase
        // misses materially.
        EXPECT_LT(r.misses.totalL2Misses(),
                  prev_misses + prev_misses / 16);
        prev_misses = r.misses.totalL2Misses();
    }
}

INSTANTIATE_TEST_SUITE_P(Assoc, CapacitySweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace isim
