/**
 * @file
 * Unit tests for the OLTP engine's building blocks: SGA layout,
 * latches, buffer-cache metadata traffic, and the redo log.
 */

#include <gtest/gtest.h>

#include "src/oltp/buffer_cache.hh"
#include "src/oltp/latch.hh"
#include "src/oltp/log.hh"
#include "src/oltp/sga.hh"
#include "src/os/layout.hh"

namespace isim {
namespace {

VmConfig
vmConfig()
{
    VmConfig c;
    c.homeMap = HomeMap{31, 2};
    return c;
}

TEST(Sga, LayoutIsOrderedAndSized)
{
    const WorkloadParams p;
    Sga sga(p);
    EXPECT_EQ(sga.blockAddr(0), layout::sgaBase);
    EXPECT_LT(sga.blockAddr(sga.numBlocks() - 1), sga.headerAddr(0));
    EXPECT_LT(sga.headerAddr(sga.numBlocks() - 1),
              sga.hashBucketAddr(0));
    EXPECT_LT(sga.hashBucketAddr(p.hashBuckets - 1),
              sga.lruListAddr(0));
    EXPECT_LT(sga.lruListAddr(sga.numLruLists() - 1), sga.latchAddr(0));
    EXPECT_LT(sga.latchAddr(p.numLatches - 1), sga.logSlotAddr(0));
    EXPECT_LT(sga.logCursorAddr(), sga.sharedMetadataAddr(0));
    EXPECT_LT(sga.sharedMetadataAddr(0), sga.warmMetadataAddr(0));
    // The paper's SGA: over 900MB total with a 100MB+ metadata area...
    EXPECT_GT(sga.totalBytes(), 800 * mib);
    // ...our metadata area scales with the block count.
    EXPECT_GT(sga.metadataBytes(), 48 * mib);
}

TEST(Sga, LatchesShareLines)
{
    const WorkloadParams p;
    Sga sga(p);
    // latchStride 32: latches 0 and 1 share a 64B line (false sharing).
    EXPECT_EQ(sga.latchAddr(0) >> 6, sga.latchAddr(1) >> 6);
    EXPECT_NE(sga.latchAddr(0) >> 6, sga.latchAddr(2) >> 6);
}

TEST(Sga, HashAndLatchMapping)
{
    const WorkloadParams p;
    Sga sga(p);
    EXPECT_LT(sga.bucketOf(12345), p.hashBuckets);
    const unsigned latch = sga.hashLatchOf(77);
    EXPECT_GE(latch, 16u);
    EXPECT_LT(latch, 16u + p.numHashLatches);
    EXPECT_NE(sga.redoAllocLatch(), sga.redoCopyLatch(0));
}

TEST(Sga, LogRingWraps)
{
    const WorkloadParams p;
    Sga sga(p);
    EXPECT_EQ(sga.logSlotAddr(0), sga.logSlotAddr(sga.logSlots()));
    EXPECT_NE(sga.logSlotAddr(0), sga.logSlotAddr(1));
}

TEST(Latch, AcquireIsLoadThenDependentStore)
{
    const WorkloadParams p;
    Sga sga(p);
    VirtualMemory vm(vmConfig());
    LatchTable latches(sga);
    std::deque<MemRef> out;
    latches.emitAcquire(3, vm, 0, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].kind, RefKind::Load);
    EXPECT_EQ(out[1].kind, RefKind::Store);
    EXPECT_EQ(out[0].paddr, out[1].paddr);
    EXPECT_EQ(out[1].depDist, 1);
    EXPECT_EQ(latches.acquires(), 1u);

    out.clear();
    latches.emitRelease(3, vm, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, RefKind::Store);
}

TEST(BufferCache, LookupWalksHashChain)
{
    const WorkloadParams p;
    Sga sga(p);
    VirtualMemory vm(vmConfig());
    BufferCache bc(sga);
    std::deque<MemRef> out;
    bc.emitLookupAndPin(1234, vm, 0, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].kind, RefKind::Load);  // bucket
    EXPECT_EQ(out[1].kind, RefKind::Load);  // header (chained)
    EXPECT_EQ(out[1].depDist, 1);
    EXPECT_EQ(out[2].kind, RefKind::Store); // pin
    EXPECT_EQ(out[1].paddr, out[2].paddr);
    EXPECT_EQ(bc.lookups(), 1u);
}

TEST(BufferCache, DirtyTracking)
{
    const WorkloadParams p;
    Sga sga(p);
    BufferCache bc(sga);
    bc.markDirty(10);
    bc.markDirty(11);
    bc.markDirty(10); // duplicate
    EXPECT_EQ(bc.dirtyCount(), 2u);
    const auto taken = bc.takeDirty(1);
    EXPECT_EQ(taken.size(), 1u);
    EXPECT_EQ(bc.dirtyCount(), 1u);
    const auto rest = bc.takeDirty(10);
    EXPECT_EQ(rest.size(), 1u);
    EXPECT_EQ(bc.dirtyCount(), 0u);
}

TEST(RedoLog, GenerationAdvancesCursorUnderLatches)
{
    const WorkloadParams p;
    Sga sga(p);
    VirtualMemory vm(vmConfig());
    LatchTable latches(sga);
    RedoLog redo(sga);
    std::deque<MemRef> out;
    redo.emitRedoGeneration(0, 4, latches, vm, 0, out);
    EXPECT_EQ(redo.cursor(), 4u);
    EXPECT_EQ(redo.unflushed(), 4u);
    EXPECT_EQ(latches.acquires(), 2u); // copy + alloc latch
    // The shared cursor word is read and written.
    const Addr cursor_pa = vm.translate(sga.logCursorAddr(), 0);
    int cursor_touches = 0;
    for (const MemRef &r : out)
        cursor_touches += r.paddr == cursor_pa;
    EXPECT_EQ(cursor_touches, 2);
}

TEST(RedoLog, FlushBounded)
{
    const WorkloadParams p;
    Sga sga(p);
    VirtualMemory vm(vmConfig());
    LatchTable latches(sga);
    RedoLog redo(sga);
    std::deque<MemRef> out;
    redo.emitRedoGeneration(0, 10, latches, vm, 0, out);
    out.clear();
    EXPECT_EQ(redo.emitFlush(4, vm, 0, out), 4u);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(redo.unflushed(), 6u);
    EXPECT_EQ(redo.emitFlush(100, vm, 0, out), 6u);
    EXPECT_EQ(redo.unflushed(), 0u);
    EXPECT_EQ(redo.emitFlush(100, vm, 0, out), 0u);
}

} // namespace
} // namespace isim
