/**
 * @file
 * Unit tests for the per-CPU scheduler: dispatch order, timed sleeps,
 * event waits, yields, and retirement.
 */

#include <gtest/gtest.h>

#include "src/os/scheduler.hh"

namespace isim {
namespace {

/** Inert process for scheduler-only tests. */
class StubProcess : public Process
{
  public:
    StubProcess(Pid pid, NodeId cpu)
        : Process("stub" + std::to_string(pid), pid, cpu)
    {
    }
    ProcessStep
    step(Tick) override
    {
        ProcessStep s;
        s.kind = StepKind::Yield;
        return s;
    }
};

TEST(Scheduler, RoundRobinDispatch)
{
    Scheduler sched(1);
    Process &a = sched.add(std::make_unique<StubProcess>(0, 0));
    Process &b = sched.add(std::make_unique<StubProcess>(1, 0));

    EXPECT_EQ(sched.pickNext(0, 0), &a);
    sched.yieldCurrent(0);
    EXPECT_EQ(sched.pickNext(0, 0), &b);
    sched.yieldCurrent(0);
    EXPECT_EQ(sched.pickNext(0, 0), &a);
    EXPECT_EQ(sched.contextSwitches(), 3u);
}

TEST(Scheduler, TimedSleepWakesInOrder)
{
    Scheduler sched(1);
    Process &a = sched.add(std::make_unique<StubProcess>(0, 0));
    Process &b = sched.add(std::make_unique<StubProcess>(1, 0));

    ASSERT_EQ(sched.pickNext(0, 0), &a);
    sched.blockCurrent(0, 500);
    ASSERT_EQ(sched.pickNext(0, 0), &b);
    sched.blockCurrent(0, 200);

    EXPECT_EQ(sched.nextWake(0), 200u);
    EXPECT_EQ(sched.pickNext(0, 100), nullptr); // nothing ready yet
    EXPECT_EQ(sched.pickNext(0, 250), &b);      // b wakes first
    sched.blockCurrent(0, 1000);
    EXPECT_EQ(sched.pickNext(0, 600), &a);
}

TEST(Scheduler, EventWaitNeedsExplicitWake)
{
    Scheduler sched(1);
    Process &a = sched.add(std::make_unique<StubProcess>(0, 0));
    ASSERT_EQ(sched.pickNext(0, 0), &a);
    sched.blockCurrent(0, maxTick); // event wait
    EXPECT_EQ(sched.nextWake(0), maxTick);
    EXPECT_EQ(sched.pickNext(0, 1'000'000), nullptr);

    sched.wake(a, 2000);
    EXPECT_EQ(sched.nextWake(0), 2000u);
    EXPECT_EQ(sched.pickNext(0, 2000), &a);
}

TEST(Scheduler, CrossCpuWake)
{
    Scheduler sched(2);
    Process &a = sched.add(std::make_unique<StubProcess>(0, 1));
    ASSERT_EQ(sched.pickNext(1, 0), &a);
    sched.blockCurrent(1, maxTick);
    // "CPU 0" (any code) wakes the process on CPU 1.
    sched.wake(a, 10);
    EXPECT_TRUE(sched.hasWork(1));
    EXPECT_EQ(sched.pickNext(1, 10), &a);
}

TEST(Scheduler, FinishRetiresProcess)
{
    Scheduler sched(1);
    sched.add(std::make_unique<StubProcess>(0, 0));
    EXPECT_TRUE(sched.hasWork(0));
    ASSERT_NE(sched.pickNext(0, 0), nullptr);
    sched.finishCurrent(0);
    EXPECT_FALSE(sched.hasWork(0));
    EXPECT_EQ(sched.finished(), 1u);
    EXPECT_EQ(sched.pickNext(0, 0), nullptr);
}

TEST(Scheduler, RunningAccessor)
{
    Scheduler sched(1);
    Process &a = sched.add(std::make_unique<StubProcess>(0, 0));
    EXPECT_EQ(sched.running(0), nullptr);
    sched.pickNext(0, 0);
    EXPECT_EQ(sched.running(0), &a);
    sched.yieldCurrent(0);
    EXPECT_EQ(sched.running(0), nullptr);
}

TEST(SchedulerDeathTest, WakeOfTimedSleeperRejected)
{
    Scheduler sched(1);
    Process &a = sched.add(std::make_unique<StubProcess>(0, 0));
    sched.pickNext(0, 0);
    sched.blockCurrent(0, 100); // timed
    EXPECT_DEATH(sched.wake(a, 50), "timed sleeper");
}

TEST(SchedulerDeathTest, PickWhileRunningRejected)
{
    Scheduler sched(1);
    sched.add(std::make_unique<StubProcess>(0, 0));
    sched.pickNext(0, 0);
    EXPECT_DEATH(sched.pickNext(0, 0), "while a process is running");
}

} // namespace
} // namespace isim
