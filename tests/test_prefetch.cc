/**
 * @file
 * Tests for the sequential L2 prefetcher: next-line coverage, hit
 * accounting, contention avoidance, and the streaming-vs-OLTP
 * sensitivity contrast it exists to demonstrate.
 */

#include <gtest/gtest.h>

#include "src/base/logging.hh"
#include "src/coherence/protocol.hh"
#include "src/core/machine.hh"

namespace isim {
namespace {

MemSysConfig
pfConfig(unsigned degree, unsigned nodes = 2)
{
    MemSysConfig cfg;
    cfg.numNodes = nodes;
    cfg.prefetchDegree = degree;
    cfg.l1Size = 512;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{8 * kib, 2, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    return cfg;
}

Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

TEST(Prefetch, NextLineIsCoveredAfterAMiss)
{
    MemorySystem ms(pfConfig(1));
    const AccessOutcome first = ms.access(0, RefType::Load, at(0, 0x100));
    EXPECT_EQ(first.cls, MissClass::Local);
    EXPECT_EQ(ms.nodeStats(0).prefetchesIssued, 1u);

    // The sequential neighbour is now an L2 hit tagged as a prefetch.
    const AccessOutcome next = ms.access(0, RefType::Load, at(0, 0x140));
    EXPECT_EQ(next.cls, MissClass::L2Hit);
    EXPECT_EQ(ms.nodeStats(0).prefetchHits, 1u);
    // Counted misses: only the demand one.
    EXPECT_EQ(ms.aggregateStats().totalL2Misses(), 1u);
    ms.checkInvariants();
}

TEST(Prefetch, DegreeControlsCoverage)
{
    MemorySystem ms(pfConfig(4));
    ms.access(0, RefType::Load, at(0, 0x1000));
    EXPECT_EQ(ms.nodeStats(0).prefetchesIssued, 4u);
    for (unsigned d = 1; d <= 4; ++d) {
        EXPECT_NE(ms.l2(0).probe((at(0, 0x1000) >> 6) + d), nullptr)
            << "line +" << d;
    }
    ms.checkInvariants();
}

TEST(Prefetch, DoesNotDisturbRemoteWriters)
{
    MemorySystem ms(pfConfig(1));
    const Addr a = at(0, 0x200);
    const Addr next = at(0, 0x240);
    ms.access(1, RefType::Store, next); // node 1 owns the next line
    ms.access(0, RefType::Load, a);     // miss + prefetch attempt
    // The prefetch must have skipped the contended line.
    EXPECT_EQ(ms.l2(0).probe(next >> 6), nullptr);
    EXPECT_EQ(ms.l2(1).probe(next >> 6)->state, LineState::Modified);
    EXPECT_EQ(ms.nodeStats(0).prefetchesIssued, 0u);
    ms.checkInvariants();
}

TEST(Prefetch, StopsAtEndOfInstalledMemory)
{
    MemorySystem ms(pfConfig(4));
    // Last line of the last node's window.
    const Addr last = (Addr{2} << 31) - 64;
    ms.access(1, RefType::Load, last);
    EXPECT_EQ(ms.nodeStats(1).prefetchesIssued, 0u);
    ms.checkInvariants();
}

TEST(Prefetch, PrefetchedLinesStayCoherent)
{
    MemorySystem ms(pfConfig(2));
    ms.access(0, RefType::Load, at(0, 0x300)); // prefetches 0x340, 0x380
    // Another node writes a prefetched line: it must be invalidated.
    ms.access(1, RefType::Store, at(0, 0x340));
    EXPECT_EQ(ms.l2(0).probe(at(0, 0x340) >> 6), nullptr);
    ms.checkInvariants();
}

TEST(Prefetch, StreamingWorkloadBenefitsOltpBarely)
{
    setQuiet(true);
    auto run = [](WorkloadKind kind, unsigned degree) {
        MachineConfig cfg;
        cfg.name = "pf";
        cfg.numCpus = 1;
        cfg.l2 = CacheGeometry{1 * mib, 4, 64};
        cfg.l2Impl = L2Impl::OffchipAssoc;
        cfg.prefetchDegree = degree;
        cfg.workload.kind = kind;
        cfg.workload.branches = 8;
        cfg.workload.accountsPerBranch = 10000;
        cfg.workload.blockBufferBytes = 64 * mib;
        cfg.workload.dssBlocksPerQuery = 64;
        cfg.workload.transactions =
            kind == WorkloadKind::DssScan ? 16 : 150;
        cfg.workload.warmupTransactions =
            cfg.workload.transactions / 3;
        return Machine(cfg).run(ExecMode::Timing);
    };
    const RunResult dss0 = run(WorkloadKind::DssScan, 0);
    const RunResult dss2 = run(WorkloadKind::DssScan, 2);
    const RunResult oltp0 = run(WorkloadKind::TpcB, 0);
    const RunResult oltp2 = run(WorkloadKind::TpcB, 2);

    const double dss_gain = static_cast<double>(dss0.execTime()) /
                            static_cast<double>(dss2.execTime());
    const double oltp_gain = static_cast<double>(oltp0.execTime()) /
                             static_cast<double>(oltp2.execTime());
    // Scans prefetch perfectly; OLTP's pointer-dense traffic does not.
    EXPECT_GT(dss_gain, 1.3);
    EXPECT_GT(dss_gain, oltp_gain + 0.2);
    // And the prefetcher actually fired usefully for the scans.
    EXPECT_GT(dss2.misses.prefetchHits,
              dss2.misses.totalL2Misses() / 2);
}

} // namespace
} // namespace isim
