/**
 * @file
 * Unit tests for the base utilities: RNG, integer math, logging.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/base/intmath.hh"
#include "src/base/logging.hh"
#include "src/base/random.hh"

namespace isim {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedResetsStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    const std::uint64_t bound = 10;
    std::vector<int> counts(bound, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(bound)];
    for (std::uint64_t v = 0; v < bound; ++v) {
        EXPECT_NEAR(counts[v], draws / bound, draws / bound * 0.1);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    double sum = 0.0;
    const double mean = 250.0;
    for (int i = 0; i < 50000; ++i) {
        const double v = rng.exponential(mean);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 50000.0, mean, mean * 0.05);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng rng(23);
    const std::uint64_t n = 1000;
    std::uint64_t head = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const std::uint64_t r = rng.zipf(n, 0.8);
        ASSERT_LT(r, n);
        head += r < n / 10;
    }
    // With theta=0.8 the top decile must draw far more than 10%.
    EXPECT_GT(head, total / 4);
}

TEST(Rng, ZipfZeroThetaIsUniform)
{
    Rng rng(29);
    const std::uint64_t n = 10;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.zipf(n, 0.0)];
    for (auto c : counts)
        EXPECT_NEAR(c, 5000, 600);
}

TEST(Mix64, IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
    // Consecutive inputs should differ in many bits.
    const std::uint64_t x = mix64(100) ^ mix64(101);
    EXPECT_GT(__builtin_popcountll(x), 16);
}

TEST(IntMath, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(1ull << 33), 33u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(IntMath, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(63, 64), 0u);
    EXPECT_EQ(roundDown(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
}

TEST(Logging, QuietSuppressesOnlyAdvisories)
{
    setQuiet(true);
    EXPECT_TRUE(quiet());
    isim_warn("suppressed %d", 1);
    isim_inform("suppressed");
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(isim_panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, AssertWithPercentInCondition)
{
    // The failed condition text must not be interpreted as a format.
    const int a = 5;
    EXPECT_DEATH(isim_assert(a % 2 == 0), "a % 2 == 0");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(isim_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace isim
