/**
 * @file
 * ExecMode tests: the atomic (fast-functional) warm-up contract.
 *
 * The load-bearing guarantee (docs/EXECMODE.md): for in-order cores
 * with no memory-controller contention (mcOccupancy == 0, every
 * shipped figure's default), an atomic warm-up reaches *bit-identical*
 * warm state to a timing warm-up — same caches, same directory, same
 * RNG streams, same clocks — so the measurement that follows is the
 * same run. The checkpoint images may then differ only in the META
 * record of the producing mode (and its CRC). Out-of-order cores
 * diverge by design (the functional charge replaces the scoreboard);
 * that divergence is bounded here with a tolerance check.
 *
 * Also pinned down: the zero-timing-events guard (an atomic phase
 * must never touch the event scheduler) and the restore-time mode
 * handshake (an atomic image is rejected by a timing-expecting run).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/base/logging.hh"
#include "src/core/exec_mode.hh"
#include "src/core/experiment.hh"
#include "src/core/machine.hh"
#include "src/core/report.hh"
#include "src/obs/observability.hh"
#include "src/prof/profiler.hh"

namespace isim {
namespace {

/** Two CPUs so coherence, daemons and scheduling are all live. */
MachineConfig
testConfig(std::uint64_t seed, CpuModel model = CpuModel::InOrder,
           unsigned cpus = 2)
{
    MachineConfig cfg;
    cfg.name = "exec-mode-test";
    cfg.numCpus = cpus;
    cfg.cpuModel = model;
    cfg.l2 = CacheGeometry{512 * kib, 2, 64};
    cfg.l2Impl = L2Impl::OffchipAssoc;
    cfg.workload.branches = 8;
    cfg.workload.accountsPerBranch = 10000;
    cfg.workload.blockBufferBytes = 64 * mib;
    cfg.workload.transactions = 30;
    cfg.workload.warmupTransactions = 12;
    cfg.workload.seed = seed;
    return cfg;
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Bit-exact snapshot equality (NaN quantiles compare by pattern). */
void
expectSameSnapshot(const stats::Snapshot &a, const stats::Snapshot &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].u, b[i].u) << a[i].name;
        EXPECT_EQ(doubleBits(a[i].d), doubleBits(b[i].d)) << a[i].name;
        EXPECT_EQ(a[i].dist.count, b[i].dist.count) << a[i].name;
    }
}

TEST(ExecMode, NamesRoundTrip)
{
    EXPECT_STREQ(execModeName(ExecMode::Timing), "timing");
    EXPECT_STREQ(execModeName(ExecMode::Atomic), "atomic");
    EXPECT_EQ(execModeFromName("timing"), ExecMode::Timing);
    EXPECT_EQ(execModeFromName("atomic"), ExecMode::Atomic);
    EXPECT_EQ(execModeFromName("fast"), std::nullopt);
    EXPECT_EQ(execModeFromName(""), std::nullopt);
}

TEST(ExecMode, AtomicWarmupImageDiffersOnlyInModeByte)
{
    setQuiet(true);
    // The heart of the redesign: for in-order cores the atomic
    // warm-up must build the *same machine* the timing warm-up
    // builds. The images then disagree in exactly one byte — the
    // META byte recording the producing mode — and nowhere else.
    for (const std::uint64_t seed : {7ull, 1234ull, 0xdeadbeefull}) {
        Machine timing(testConfig(seed));
        timing.runWarmup(ExecMode::Timing);
        Machine atomic(testConfig(seed));
        atomic.runWarmup(ExecMode::Atomic);

        EXPECT_EQ(timing.warmupEndTime(), atomic.warmupEndTime())
            << "seed=" << seed;

        const std::vector<std::uint8_t> ti = timing.checkpointBytes();
        const std::vector<std::uint8_t> ai = atomic.checkpointBytes();
        ASSERT_EQ(ti.size(), ai.size()) << "seed=" << seed;
        std::vector<std::size_t> diffs;
        for (std::size_t i = 0; i < ti.size(); ++i) {
            if (ti[i] != ai[i])
                diffs.push_back(i);
        }
        // META's payload is warmEnd (8 bytes) + the mode byte, and
        // every section carries a CRC of its payload 12 bytes before
        // it starts. So the images may disagree only in the mode byte
        // itself (the highest differing offset) and within the
        // enclosing section's 4-byte CRC word.
        ASSERT_GE(diffs.size(), 2u) << "seed=" << seed;
        ASSERT_LE(diffs.size(), 5u) << "seed=" << seed;
        const std::size_t mode_at = diffs.back();
        EXPECT_EQ(ti[mode_at],
                  static_cast<std::uint8_t>(ExecMode::Timing));
        EXPECT_EQ(ai[mode_at],
                  static_cast<std::uint8_t>(ExecMode::Atomic));
        for (std::size_t k = 0; k + 1 < diffs.size(); ++k) {
            EXPECT_GE(diffs[k], mode_at - 12) << "seed=" << seed;
            EXPECT_LT(diffs[k], mode_at - 8) << "seed=" << seed;
        }
    }
}

TEST(ExecMode, AtomicWarmupMeasurementIdenticalInOrder)
{
    setQuiet(true);
    // Same warm state => same measured run, down to every counter
    // and every distribution bit.
    Machine timing(testConfig(42));
    timing.runWarmup(ExecMode::Timing);
    const RunResult a = timing.runMeasurement();

    Machine atomic(testConfig(42));
    atomic.runWarmup(ExecMode::Atomic);
    const RunResult b = atomic.runMeasurement();

    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.wallTime, b.wallTime);
    EXPECT_EQ(a.cpu.busy, b.cpu.busy);
    EXPECT_EQ(a.cpu.idle, b.cpu.idle);
    EXPECT_EQ(a.cpu.instructions, b.cpu.instructions);
    EXPECT_EQ(a.misses.totalL2Misses(), b.misses.totalL2Misses());
    EXPECT_EQ(a.dbConsistent, b.dbConsistent);
    expectSameSnapshot(a.stats, b.stats);
    // Provenance: the result remembers how each phase ran.
    EXPECT_EQ(a.warmupMode, ExecMode::Timing);
    EXPECT_EQ(b.warmupMode, ExecMode::Atomic);
    EXPECT_EQ(a.execMode, ExecMode::Timing);
    EXPECT_EQ(b.execMode, ExecMode::Timing);
}

TEST(ExecMode, AtomicMeasurementIdenticalInOrder)
{
    setQuiet(true);
    // --exec-mode atomic: with in-order cores the measured counters
    // are the timing run's counters too (the charging rules are the
    // same arithmetic) — only the event scheduler disappears.
    Machine timing(testConfig(11));
    const RunResult a = timing.run(ExecMode::Timing, ExecMode::Timing);
    Machine atomic(testConfig(11));
    const RunResult b = atomic.run(ExecMode::Atomic, ExecMode::Atomic);

    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.wallTime, b.wallTime);
    expectSameSnapshot(a.stats, b.stats);
    EXPECT_GT(timing.timingEvents(), 0u);
    EXPECT_EQ(atomic.timingEvents(), 0u);
}

TEST(ExecMode, AtomicPhasesScheduleZeroTimingEvents)
{
    setQuiet(true);
    // The performance guard behind the speedup claims: an atomic
    // phase must never reach the timing event loop. timingEvents()
    // counts scheduler iterations, so it stays zero through an atomic
    // warm-up and only starts moving in the timing measurement.
    Machine m(testConfig(7));
    m.runWarmup(ExecMode::Atomic);
    EXPECT_EQ(m.timingEvents(), 0u);
    const RunResult r = m.runMeasurement();
    EXPECT_GT(m.timingEvents(), 0u);
    EXPECT_TRUE(r.dbConsistent);
}

TEST(ExecMode, TimingRestoreRejectsAtomicImage)
{
    setQuiet(true);
    ScopedPanicThrow guard;
    Machine m(testConfig(7));
    m.runWarmup(ExecMode::Atomic);
    const std::vector<std::uint8_t> image = m.checkpointBytes();
    // A run that expects a timing-warmed image must refuse an atomic
    // one (and vice versa) instead of silently measuring from it...
    EXPECT_THROW(Machine::fromCheckpointBytes(image), PanicError);
    // ...while an explicit --warmup-mode atomic accepts it.
    const std::unique_ptr<Machine> restored =
        Machine::fromCheckpointBytes(image, ExecMode::Atomic);
    EXPECT_TRUE(restored->isWarm());
    EXPECT_EQ(restored->warmupMode(), ExecMode::Atomic);
    const RunResult r = restored->runMeasurement();
    EXPECT_TRUE(r.dbConsistent);
    EXPECT_EQ(r.warmupMode, ExecMode::Atomic);

    Machine t(testConfig(7));
    t.runWarmup(ExecMode::Timing);
    EXPECT_THROW(
        Machine::fromCheckpointBytes(t.checkpointBytes(),
                                     ExecMode::Atomic),
        PanicError);
}

// ---- ObsConfig x ExecMode ----

obs::ObsConfig
observeForTest()
{
    obs::ObsConfig cfg;
    // Non-empty paths make the bundle build its sampler; the tests
    // below never call writeOutputs(), so nothing touches disk.
    cfg.traceOutPath = "unused.json";
    cfg.timelineOutPath = "unused.csv";
    cfg.epochTicks = 200000; // 0.2 ms: several epochs per test run
    cfg.ringCapacity = 1u << 16;
    return cfg;
}

TEST(ExecModeObs, AtomicWarmupOpensTimelineAtWarmBoundary)
{
    setQuiet(true);
    // An atomic warm-up drives no timeline (there is no event loop to
    // observe), so the observability window opens at the warm boundary
    // instead of time 0: the first epoch row starts exactly at
    // warmupEndTime() and — since the boundary generally falls mid-grid
    // — is a PARTIAL epoch closing on the next grid line. Coverage from
    // there to the end of the run is contiguous.
    Machine m(testConfig(42));
    obs::Observability o(observeForTest());
    m.attachObservability(&o);
    m.runWarmup(ExecMode::Atomic);
#ifdef ISIM_OBS
    // No trace events either: the functional warm-up never reaches
    // the instrumented timing paths.
    EXPECT_EQ(o.tracer().ring().pushed(), 0u);
#endif
    const std::uint64_t warmEnd = m.warmupEndTime();
    const RunResult r = m.runMeasurement();

    ASSERT_NE(o.sampler(), nullptr);
    const auto &rows = o.sampler()->rows();
    ASSERT_FALSE(rows.empty());
    const std::uint64_t epoch = o.config().epochTicks;
    EXPECT_EQ(rows.front().start, warmEnd);
    if (rows.size() > 1) {
        // First epoch closes on the grid, not one full epoch later.
        EXPECT_EQ(rows.front().end % epoch, 0u);
        EXPECT_LE(rows.front().end - rows.front().start, epoch);
    }
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].start, rows[i - 1].end) << i;
    EXPECT_EQ(rows.back().end, warmEnd + r.wallTime);
    // The measured result embeds the same epoch rows.
    EXPECT_EQ(r.epochs.size(), rows.size());

    std::uint64_t timeline_txns = 0;
    for (const auto &row : rows)
        timeline_txns += row.delta.committedTxns;
    EXPECT_EQ(timeline_txns, r.transactions);
#ifdef ISIM_OBS
    // Trace emission resumes with the timing measurement.
    EXPECT_GT(o.tracer().count(obs::EventKind::TxnCommit), 0u);
#endif
}

TEST(ExecModeObs, ObservingAtomicWarmupDoesNotPerturbResults)
{
    setQuiet(true);
    // The test_obs bit-identity check, crossed with ExecMode: an
    // observed atomic-warm-up run measures the same numbers as an
    // unobserved one.
    Machine plain(testConfig(42));
    plain.runWarmup(ExecMode::Atomic);
    const RunResult a = plain.runMeasurement();

    Machine observed(testConfig(42));
    obs::Observability o(observeForTest());
    observed.attachObservability(&o);
    observed.runWarmup(ExecMode::Atomic);
    const RunResult b = observed.runMeasurement();

    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.wallTime, b.wallTime);
    expectSameSnapshot(a.stats, b.stats);
}

TEST(ExecModeObs, HostInstrumentationKeepsFigureJsonBitIdentical)
{
    setQuiet(true);
    // The contract the whole profiling PR leans on: host-side
    // observability — runtime-enabled self-profiling AND an attached
    // trace/timeline bundle — must leave the figure JSON BYTE-identical
    // to a bare run, under an atomic warm-up. Host data goes to
    // prof.json and the trace files, never into figure outputs.
    FigureSpec spec;
    spec.id = "TestFig";
    spec.title = "obs x exec bit-identity";
    spec.warmupMode = ExecMode::Atomic;
    for (const char *name : {"bar-a", "bar-b"}) {
        FigureBar bar;
        bar.config = testConfig(7);
        bar.config.name = name;
        spec.bars.push_back(bar);
    }

    RunOptions options;
    options.verbose = false;
    options.jobs = 2;
    const FigureResult bare = ExperimentRunner(options).run(spec);
    const std::string bareJson = figureToJson(bare);

    const bool wasEnabled = prof::enabled();
    prof::setEnabled(true);
    RunOptions instrumented = options;
    instrumented.obs.traceOutPath =
        testing::TempDir() + "/exec_obs_trace.json";
    instrumented.obs.timelineOutPath =
        testing::TempDir() + "/exec_obs_timeline.csv";
    instrumented.obs.epochTicks = 200000;
    const FigureResult observed =
        ExperimentRunner(instrumented).run(spec);
    prof::setEnabled(wasEnabled);
    std::remove(instrumented.obs.traceOutPath.c_str());
    std::remove(instrumented.obs.timelineOutPath.c_str());

    EXPECT_EQ(bareJson, figureToJson(observed));
}

TEST(ExecMode, OooAtomicWarmupDivergesWithinTolerance)
{
    setQuiet(true);
    // Out-of-order cores are the documented divergence: the atomic
    // functional charge stands in for the scoreboard, so the warm
    // state is *not* bit-identical. The run must still complete,
    // stay consistent, commit the same transaction count, and land
    // near the timing-warmed measurement (the warm-up is a prefix of
    // the run; only cache/predictor state carries over).
    Machine timing(testConfig(7, CpuModel::OutOfOrder));
    timing.runWarmup(ExecMode::Timing);
    const RunResult a = timing.runMeasurement();

    Machine atomic(testConfig(7, CpuModel::OutOfOrder));
    atomic.runWarmup(ExecMode::Atomic);
    const RunResult b = atomic.runMeasurement();

    EXPECT_TRUE(b.dbConsistent);
    EXPECT_EQ(a.transactions, b.transactions);
    const double ea = static_cast<double>(a.execTime());
    const double eb = static_cast<double>(b.execTime());
    ASSERT_GT(ea, 0.0);
    EXPECT_LT(std::abs(eb - ea) / ea, 0.25)
        << "OOO atomic warm-up drifted: " << eb << " vs " << ea;
}

} // namespace
} // namespace isim
