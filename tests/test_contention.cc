/**
 * @file
 * Tests for the optional memory-controller contention model.
 */

#include <gtest/gtest.h>

#include "src/base/logging.hh"
#include "src/coherence/protocol.hh"
#include "src/core/machine.hh"

namespace isim {
namespace {

MemSysConfig
mcConfig(Cycles occupancy, unsigned nodes = 2)
{
    MemSysConfig cfg;
    cfg.numNodes = nodes;
    cfg.mcOccupancy = occupancy;
    cfg.l1Size = 512;
    cfg.l1Assoc = 2;
    cfg.l2 = CacheGeometry{4 * kib, 2, 64};
    cfg.lat = figure3Latencies(IntegrationLevel::FullInt,
                               L2Impl::OnchipSram);
    return cfg;
}

Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

TEST(McContention, BackToBackMissesQueue)
{
    MemorySystem ms(mcConfig(50));
    // Two misses to the same home at the same instant: the second
    // waits out the first's occupancy.
    const AccessOutcome first =
        ms.access(0, RefType::Load, at(0, 0x100), /*now=*/1000);
    const AccessOutcome second =
        ms.access(0, RefType::Load, at(0, 0x2000), /*now=*/1000);
    EXPECT_EQ(first.stall, ms.config().lat.local);
    EXPECT_EQ(second.stall, ms.config().lat.local + 50);
    EXPECT_EQ(ms.nodeStats(0).mcQueueCycles, 50u);
}

TEST(McContention, SpacedMissesDoNotQueue)
{
    MemorySystem ms(mcConfig(50));
    ms.access(0, RefType::Load, at(0, 0x100), 1000);
    const AccessOutcome later =
        ms.access(0, RefType::Load, at(0, 0x2000), 2000);
    EXPECT_EQ(later.stall, ms.config().lat.local);
    EXPECT_EQ(ms.nodeStats(0).mcQueueCycles, 0u);
}

TEST(McContention, HomesQueueIndependently)
{
    MemorySystem ms(mcConfig(50));
    ms.access(0, RefType::Load, at(0, 0x100), 1000);
    // A different home: no queueing behind home 0's controller.
    const AccessOutcome other =
        ms.access(0, RefType::Load, at(1, 0x100), 1000);
    EXPECT_EQ(other.stall, ms.config().lat.remote);
}

TEST(McContention, HitsAreUnaffected)
{
    MemorySystem ms(mcConfig(50));
    const Addr a = at(0, 0x100);
    ms.access(0, RefType::Load, a, 1000);
    const AccessOutcome hit = ms.access(0, RefType::Load, a, 1000);
    EXPECT_EQ(hit.cls, MissClass::L1Hit);
    EXPECT_EQ(hit.stall, 0u);
}

TEST(McContention, DisabledByDefault)
{
    MemorySystem ms(mcConfig(0));
    ms.access(0, RefType::Load, at(0, 0x100), 1000);
    const AccessOutcome second =
        ms.access(0, RefType::Load, at(0, 0x2000), 1000);
    EXPECT_EQ(second.stall, ms.config().lat.local);
    EXPECT_EQ(ms.aggregateStats().mcQueueCycles, 0u);
}

TEST(McContention, MachineFeelsTheQueueing)
{
    // Note: end-to-end execution time is *not* asserted monotone in
    // the occupancy — the workload is closed-loop (group commit sizes
    // and scheduling shift with timing), so small-scale runs can move
    // either way for moderate occupancies. The mechanism itself must
    // be monotone, and heavy contention must dominate eventually.
    setQuiet(true);
    auto run = [](Cycles occ) {
        MachineConfig cfg;
        cfg.name = "mc" + std::to_string(occ);
        cfg.numCpus = 4;
        cfg.l2 = CacheGeometry{512 * kib, 2, 64};
        cfg.l2Impl = L2Impl::OffchipAssoc;
        cfg.mcOccupancy = occ;
        cfg.workload.branches = 8;
        cfg.workload.accountsPerBranch = 10000;
        cfg.workload.blockBufferBytes = 64 * mib;
        cfg.workload.transactions = 60;
        cfg.workload.warmupTransactions = 20;
        const RunResult r = Machine(cfg).run(ExecMode::Timing);
        EXPECT_TRUE(r.dbConsistent);
        return r;
    };
    const RunResult none = run(0);
    const RunResult some = run(40);
    const RunResult heavy = run(400);
    EXPECT_EQ(none.misses.mcQueueCycles, 0u);
    EXPECT_GT(some.misses.mcQueueCycles, 0u);
    EXPECT_GT(heavy.misses.mcQueueCycles, some.misses.mcQueueCycles);
    EXPECT_GT(heavy.execTime(), none.execTime());
}

} // namespace
} // namespace isim
