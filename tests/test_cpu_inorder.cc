/**
 * @file
 * Unit tests for the in-order CPU timing model: busy-time accounting,
 * full-latency stalls per miss class, stall-bucket attribution, and
 * kernel-time tracking.
 */

#include <gtest/gtest.h>

#include "src/coherence/protocol.hh"
#include "src/cpu/inorder.hh"

namespace isim {
namespace {

MemSysConfig
cfg(unsigned nodes = 2)
{
    MemSysConfig c;
    c.numNodes = nodes;
    c.l1Size = 1 * kib;
    c.l1Assoc = 2;
    c.l2 = CacheGeometry{4 * kib, 2, 64};
    c.lat = figure3Latencies(IntegrationLevel::Base,
                             L2Impl::OffchipDirect);
    return c;
}

Addr
at(NodeId node, Addr offset)
{
    return (static_cast<Addr>(node) << 31) | offset;
}

TEST(InOrder, InstructionChunkBusyTime)
{
    MemorySystem ms(cfg());
    InOrderCpu cpu(0, ms);
    const Tick end = cpu.consume(instrChunk(at(0, 0), 12), 0);
    // 12 cycles busy + local miss latency (first touch).
    EXPECT_EQ(end, 12 + ms.config().lat.local);
    EXPECT_EQ(cpu.stats().busy, 12u);
    EXPECT_EQ(cpu.stats().localStall, ms.config().lat.local);
    EXPECT_EQ(cpu.stats().instructions, 12u);
}

TEST(InOrder, L1HitIsFree)
{
    MemorySystem ms(cfg());
    InOrderCpu cpu(0, ms);
    Tick now = cpu.consume(loadRef(at(0, 0x80)), 0);
    const Tick after = cpu.consume(loadRef(at(0, 0x80)), now);
    EXPECT_EQ(after, now); // zero cycles: pipelined L1 hit
    EXPECT_EQ(cpu.stats().loads, 2u);
}

TEST(InOrder, StallBucketsByClass)
{
    MemorySystem ms(cfg());
    InOrderCpu cpu0(0, ms);
    InOrderCpu cpu1(1, ms);

    Tick t0 = 0, t1 = 0;
    t0 = cpu0.consume(loadRef(at(0, 0x100)), t0);  // local
    t0 = cpu0.consume(loadRef(at(1, 0x100)), t0);  // remote clean
    t1 = cpu1.consume(storeRef(at(1, 0x200)), t1); // local (home 1)
    t0 = cpu0.consume(loadRef(at(1, 0x200)), t0);  // remote dirty

    EXPECT_EQ(cpu0.stats().localStall, ms.config().lat.local);
    EXPECT_EQ(cpu0.stats().remoteStall, ms.config().lat.remote);
    EXPECT_EQ(cpu0.stats().remoteDirtyStall,
              ms.config().lat.remoteDirty);
    EXPECT_EQ(cpu0.stats().nonIdle(),
              ms.config().lat.local + ms.config().lat.remote +
                  ms.config().lat.remoteDirty);
    EXPECT_EQ(cpu0.stats().remStall(),
              ms.config().lat.remote + ms.config().lat.remoteDirty);
}

TEST(InOrder, KernelTimeTracked)
{
    MemorySystem ms(cfg());
    InOrderCpu cpu(0, ms);
    Tick now = cpu.consume(instrChunk(at(0, 0), 10, /*kernel=*/true), 0);
    now = cpu.consume(instrChunk(at(0, 0x2000), 10, false), now);
    // Kernel portion: 10 busy + one local miss.
    EXPECT_EQ(cpu.stats().kernelTime, 10 + ms.config().lat.local);
    EXPECT_GT(cpu.stats().nonIdle(), cpu.stats().kernelTime);
    EXPECT_GT(cpu.stats().kernelFraction(), 0.0);
    EXPECT_LT(cpu.stats().kernelFraction(), 1.0);
}

TEST(InOrder, DrainIsIdentity)
{
    MemorySystem ms(cfg());
    InOrderCpu cpu(0, ms);
    EXPECT_EQ(cpu.drain(123), 123u);
}

TEST(InOrder, ResetStatsZeroes)
{
    MemorySystem ms(cfg());
    InOrderCpu cpu(0, ms);
    cpu.consume(loadRef(at(0, 0)), 0);
    cpu.resetStats();
    EXPECT_EQ(cpu.stats().nonIdle(), 0u);
    EXPECT_EQ(cpu.stats().loads, 0u);
}

TEST(InOrder, StoreStallsLikeLoadUnderSc)
{
    MemorySystem ms(cfg());
    InOrderCpu cpu(0, ms);
    const Tick end = cpu.consume(storeRef(at(1, 0x300)), 0);
    EXPECT_EQ(end, ms.config().lat.remote);
    EXPECT_EQ(cpu.stats().stores, 1u);
}

} // namespace
} // namespace isim
