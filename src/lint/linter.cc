#include "src/lint/linter.hh"

#include <algorithm>
#include <map>
#include <tuple>

namespace isim {
namespace lint {

std::vector<Finding>
Linter::run() const
{
    std::vector<Finding> findings;
    for (const SourceFile &file : files_) {
        checks::determinism(file, findings);
        checks::logging(file, findings);
        checks::atomicPath(file, findings);
        checks::profGuard(file, findings);
        checks::suppressions(file, findings);
    }
    checks::orderedOutput(files_, findings);
    checks::ckptCoverage(files_, findings);
    checks::statsCoverage(files_, findings);

    // Apply allow() suppressions. The `suppression` meta rule is
    // exempt: annotations cannot vouch for themselves.
    std::map<std::string, const SourceFile *> by_path;
    for (const SourceFile &file : files_)
        by_path[file.path()] = &file;
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding &f : findings) {
        const auto it = by_path.find(f.path);
        if (f.rule != "suppression" && it != by_path.end() &&
            it->second->suppressed(f.rule, f.line))
            continue;
        kept.push_back(std::move(f));
    }

    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.path, a.line, a.rule, a.message) <
                         std::tie(b.path, b.line, b.rule, b.message);
              });
    kept.erase(std::unique(kept.begin(), kept.end(),
                           [](const Finding &a, const Finding &b) {
                               return a.path == b.path &&
                                      a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                           }),
               kept.end());
    return kept;
}

const std::vector<RuleInfo> &
Linter::rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"determinism",
         "no ambient entropy, wall-clock, or getenv in simulation "
         "code",
         "getenv() is allowed only in src/config/run_options.cc (the "
         "tree's single configuration-resolution site); rand(), "
         "std::random_device, std engines, time(), system_clock and "
         "friends are banned everywhere except src/base/random.* — "
         "every stochastic or time-like input must flow through an "
         "explicitly seeded isim::Rng so runs are reproducible "
         "bit-for-bit."},
        {"ordered-output",
         "no unordered-container iteration in serialization or "
         "reporting paths",
         "Inside src/ckpt/, src/core/report.cc, src/stats/manifest.cc "
         "and src/obs/export.cc, and inside any saveState/"
         "restoreState body, iterating a std::unordered_map/set "
         "emits hash-order bytes and silently breaks bit-exact "
         "checkpoints and --jobs determinism. Sort the keys first "
         "(see sortedKeys in src/os/vm.cc) or annotate the loop."},
        {"ckpt-coverage",
         "every data member of a checkpointed class is serialized "
         "or declared transient",
         "For each class declaring saveState(ckpt::Serializer&), "
         "every non-static, non-reference, non-const data member "
         "must be mentioned in its saveState or restoreState body, "
         "or carry `// ckpt: transient(<member>)` in the class's "
         "file. A new field that misses the image restores "
         "stale/default state without any runtime error."},
        {"stats-coverage",
         "every *Stats / *Counters member is registered in the stats "
         "registry",
         "Members of structs named *Stats or *Counters must appear "
         "in that struct's registerStats body or in "
         "Machine::buildRegistry; otherwise the counter is invisible "
         "to stats.json manifests, isim-stat diff, and the "
         "conservation identities built on them."},
        {"logging",
         "no bare stdio in library code",
         "printf/fprintf/std::cout/std::cerr are allowed only in "
         "src/base/logging.* and outside src/ (CLI mains, examples, "
         "bench, tests). Library diagnostics go through isim_inform/"
         "isim_warn so --quiet and test harnesses stay authoritative."},
        {"atomic-path",
         "no timing/event machinery inside *Atomic function bodies",
         "Functions whose name ends in Atomic implement the "
         "fast-functional execution mode (docs/EXECMODE.md): zero "
         "event scheduling, no timing-only state. Calling runUntil, "
         "stepCpu, consumeOn/drainOn, mcQueueDelay, obs advance or "
         "timing-path trace emission from such a body either "
         "schedules timing work (voiding the zero-event guarantee "
         "tests/test_exec_mode.cc pins) or mutates state the timing "
         "mode owns, breaking bit-identical warm-up."},
        {"prof-guard",
         "no raw self-profiler primitives outside src/prof/",
         "Library code must reach the host-side self-profiler only "
         "through the ISIM_PROF_SCOPE / ISIM_PROF_SCOPE_PHASED / "
         "ISIM_PROF_PHASE macros: they compile to nothing without "
         "-DISIM_PROF=ON, which is the whole zero-cost-when-off "
         "contract (docs/PROFILING.md). A raw ProfScope or "
         "registerNode call site puts instrumentation bytes on the "
         "hot path of every build. The emission API (profJson, "
         "collectGlobal, threadSnapshot, setEnabled...) is cold and "
         "unrestricted."},
        {"suppression",
         "every allow() carries a rule id and a reason",
         "`// isim-lint: allow(<rule>): <reason>` suppresses that "
         "rule on the same or the next line. A missing reason, an "
         "unknown rule id, or a malformed annotation is itself a "
         "finding, and this meta rule cannot be suppressed."},
    };
    return kRules;
}

std::string
Linter::format(const Finding &finding)
{
    return finding.path + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

} // namespace lint
} // namespace isim
