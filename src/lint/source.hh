/**
 * @file
 * One lint input file: its token stream plus the repo-convention
 * annotations parsed out of its comments.
 *
 * Two annotation forms are recognized:
 *
 *   // isim-lint: allow(<rule>): <reason>
 *       Suppresses findings of <rule> on the same line or the line
 *       directly below. The reason is mandatory; an empty reason is
 *       itself a finding (rule `suppression`), so CI can never be
 *       silenced without a recorded justification.
 *
 *   // ckpt: transient(<member>): <optional reason>
 *       Declares a data member intentionally absent from its class's
 *       saveState/restoreState image (wiring pointers, derived
 *       caches). Scoped to the file containing the class declaration.
 */

#ifndef ISIM_LINT_SOURCE_HH
#define ISIM_LINT_SOURCE_HH

#include <string>
#include <vector>

#include "src/lint/lexer.hh"

namespace isim {
namespace lint {

struct Suppression
{
    std::string rule;   //!< rule id inside allow(...)
    std::string reason; //!< text after the closing paren, trimmed
    int line = 0;
    bool malformed = false; //!< allow(...) that failed to parse
};

struct CkptTransient
{
    std::string member;
    int line = 0;
    bool malformed = false;
};

class SourceFile
{
  public:
    /** Lex `text` under the given display path (no filesystem I/O). */
    static SourceFile fromString(std::string path,
                                 const std::string &text);

    /**
     * Read and lex a file from disk. Returns false (with `error` set)
     * if the file cannot be read.
     */
    static bool load(const std::string &path, SourceFile &out,
                     std::string &error);

    const std::string &path() const { return path_; }
    const std::vector<Token> &tokens() const { return tokens_; }
    const std::vector<Comment> &comments() const { return comments_; }
    const std::vector<Suppression> &suppressions() const
    {
        return suppressions_;
    }
    const std::vector<CkptTransient> &transients() const
    {
        return transients_;
    }

    /**
     * True when a well-formed allow(`rule`) with a non-empty reason
     * covers `line` (annotation on the same line or the one above).
     */
    bool suppressed(const std::string &rule, int line) const;

    /** True when `member` carries a ckpt: transient annotation. */
    bool transient(const std::string &member) const;

    /** Path prefix test against the normalized (forward-slash) path:
     *  matches at the string start or after any directory separator,
     *  so "src/ckpt/" matches both relative and absolute spellings. */
    bool under(const std::string &prefix) const;

    /** Exact-file test, same anchoring rules as under(). */
    bool isFile(const std::string &relpath) const
    {
        return under(relpath) &&
               path_.size() >= relpath.size() &&
               path_.compare(path_.size() - relpath.size(),
                             relpath.size(), relpath) == 0;
    }

  private:
    void parseAnnotations();

    std::string path_;
    std::vector<Token> tokens_;
    std::vector<Comment> comments_;
    std::vector<Suppression> suppressions_;
    std::vector<CkptTransient> transients_;
};

} // namespace lint
} // namespace isim

#endif // ISIM_LINT_SOURCE_HH
