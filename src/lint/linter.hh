/**
 * @file
 * The isim-lint driver: owns the file set, runs every rule, applies
 * `// isim-lint: allow(...)` suppressions, and returns findings in a
 * deterministic order (path, line, rule, message). See checks.hh for
 * the rule ids and docs/LINTING.md for the full catalogue.
 */

#ifndef ISIM_LINT_LINTER_HH
#define ISIM_LINT_LINTER_HH

#include <string>
#include <vector>

#include "src/lint/checks.hh"
#include "src/lint/source.hh"

namespace isim {
namespace lint {

struct RuleInfo
{
    const char *id;
    const char *summary;
    const char *detail;
};

class Linter
{
  public:
    void addFile(SourceFile file) { files_.push_back(std::move(file)); }
    const std::vector<SourceFile> &files() const { return files_; }

    /**
     * Run every rule over the file set. Findings covered by a
     * well-formed allow() suppression are dropped (except rule
     * `suppression`, which polices the annotations themselves);
     * the rest come back sorted and deduplicated.
     */
    std::vector<Finding> run() const;

    /** The rule catalogue, in the order --list-rules prints it. */
    static const std::vector<RuleInfo> &rules();

    /** Render one finding as `path:line: [rule] message`. */
    static std::string format(const Finding &finding);

  private:
    std::vector<SourceFile> files_;
};

} // namespace lint
} // namespace isim

#endif // ISIM_LINT_LINTER_HH
