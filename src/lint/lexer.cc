#include "src/lint/lexer.hh"

#include <cctype>
#include <cstddef>

namespace isim {
namespace lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Encoding prefixes that may precede a raw string's R. */
bool
isRawStringIdent(const std::string &ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR";
}

} // namespace

LexResult
lex(const std::string &text)
{
    LexResult out;
    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;

    auto peek = [&](std::size_t ahead) -> char {
        return i + ahead < n ? text[i + ahead] : '\0';
    };

    while (i < n) {
        const char c = text[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line continuation.
        if (c == '\\' && peek(1) == '\n') {
            ++line;
            i += 2;
            continue;
        }

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            const int start_line = line;
            i += 2;
            std::string body;
            while (i < n && text[i] != '\n')
                body.push_back(text[i++]);
            out.comments.push_back({body, start_line, false});
            continue;
        }
        // Block comment.
        if (c == '/' && peek(1) == '*') {
            const int start_line = line;
            i += 2;
            std::string body;
            while (i < n && !(text[i] == '*' && peek(1) == '/')) {
                if (text[i] == '\n')
                    ++line;
                body.push_back(text[i++]);
            }
            if (i < n)
                i += 2; // closing */
            out.comments.push_back({body, start_line, true});
            continue;
        }

        // Identifier (possibly a raw-string prefix).
        if (isIdentStart(c)) {
            std::string ident;
            while (i < n && isIdentChar(text[i]))
                ident.push_back(text[i++]);
            if (i < n && text[i] == '"' && isRawStringIdent(ident)) {
                // Raw string: R"delim( ... )delim"
                ++i; // opening quote
                std::string delim;
                while (i < n && text[i] != '(')
                    delim.push_back(text[i++]);
                if (i < n)
                    ++i; // opening paren
                const std::string close = ")" + delim + "\"";
                const std::size_t end = text.find(close, i);
                const std::size_t stop = end == std::string::npos
                                             ? n
                                             : end + close.size();
                const int start_line = line;
                for (; i < stop; ++i)
                    if (text[i] == '\n')
                        ++line;
                out.tokens.push_back(
                    {TokKind::String, "<raw-string>", start_line});
                continue;
            }
            // Encoding prefix glued to an ordinary literal (u8"x").
            if (i < n && (text[i] == '"' || text[i] == '\'') &&
                (ident == "u8" || ident == "u" || ident == "U" ||
                 ident == "L")) {
                // Fall through to the literal scanner below; drop the
                // prefix rather than emitting it as an identifier.
            } else {
                out.tokens.push_back(
                    {TokKind::Identifier, ident, line});
                continue;
            }
        }

        // String / character literal.
        if (text[i] == '"' || text[i] == '\'') {
            const char quote = text[i];
            const int start_line = line;
            ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\' && i + 1 < n) {
                    if (text[i + 1] == '\n')
                        ++line;
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    ++line; // unterminated; keep scanning anyway
                ++i;
            }
            if (i < n)
                ++i; // closing quote
            out.tokens.push_back({quote == '"' ? TokKind::String
                                               : TokKind::Char,
                                  quote == '"' ? "<string>" : "<char>",
                                  start_line});
            continue;
        }

        // Number (pp-number: includes hex, floats, digit separators).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(
                             peek(1))))) {
            std::string num;
            while (i < n) {
                const char d = text[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    num.push_back(text[i++]);
                    continue;
                }
                // Exponent sign: 1e-3, 0x1p+4.
                if ((d == '+' || d == '-') && !num.empty()) {
                    const char p = num.back();
                    if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
                        num.push_back(text[i++]);
                        continue;
                    }
                }
                break;
            }
            out.tokens.push_back({TokKind::Number, num, line});
            continue;
        }

        // Punctuation; fuse `::` and `->` so the checks can reason
        // about qualification and member access with one-token
        // lookback (and so `:` unambiguously means a range-for colon,
        // label, or base clause).
        if (c == ':' && peek(1) == ':') {
            out.tokens.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && peek(1) == '>') {
            out.tokens.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace lint
} // namespace isim
