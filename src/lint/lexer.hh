/**
 * @file
 * A comment- and string-stripping C++ tokenizer for isim-lint.
 *
 * This is deliberately not a compiler front end: no preprocessing, no
 * type checking, no LLVM dependency. It produces a flat token stream
 * (identifiers, numbers, punctuation) with comments collected on the
 * side so the rule checks in checks.cc can pattern-match repo
 * conventions — `saveState` bodies, `*Stats` member lists, banned
 * identifiers — while annotations like `// isim-lint: allow(...)`
 * remain visible through the comment channel. Output is a pure
 * function of the input text, so lint results are deterministic.
 */

#ifndef ISIM_LINT_LEXER_HH
#define ISIM_LINT_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace isim {
namespace lint {

enum class TokKind : std::uint8_t {
    Identifier, //!< [A-Za-z_][A-Za-z0-9_]* (keywords included)
    Number,     //!< pp-number: 0x1f, 1'000, 1.5e-3, ...
    String,     //!< string literal (text is the raw spelling)
    Char,       //!< character literal
    Punct,      //!< one punctuation token; `::` and `->` are fused
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;

    bool is(const char *t) const { return text == t; }
    bool isIdent(const char *t) const
    {
        return kind == TokKind::Identifier && text == t;
    }
};

/** One comment, with the `//` / `/ * * /` delimiters stripped. */
struct Comment
{
    std::string text;
    int line = 0;       //!< line the comment starts on
    bool block = false; //!< true for a /'*...*'/ comment
};

struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Tokenize C++ source text. Handles line/block comments, ordinary and
 * raw string literals, character literals, digit separators, and line
 * continuations; never throws on malformed input (an unterminated
 * literal simply ends the stream at end of file).
 */
LexResult lex(const std::string &text);

} // namespace lint
} // namespace isim

#endif // ISIM_LINT_LEXER_HH
