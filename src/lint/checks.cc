#include "src/lint/checks.hh"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>

namespace isim {
namespace lint {
namespace checks {

namespace {

using Tokens = std::vector<Token>;

/**
 * Index of the token matching the opener at `i` (counting nesting),
 * or tokens.size() when unbalanced.
 */
std::size_t
matchForward(const Tokens &t, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
        if (t[j].kind == TokKind::Punct) {
            if (t[j].is(open))
                ++depth;
            else if (t[j].is(close) && --depth == 0)
                return j;
        }
    }
    return t.size();
}

bool
isAccessSpecifier(const Token &tok)
{
    return tok.isIdent("public") || tok.isIdent("private") ||
           tok.isIdent("protected");
}

/** Qualifiers that sit between a method's `)` and its `{` body. */
bool
isFunctionTail(const Token &tok)
{
    return tok.isIdent("const") || tok.isIdent("override") ||
           tok.isIdent("noexcept") || tok.isIdent("final") ||
           tok.isIdent("volatile");
}

bool
isTypeIntroducer(const Token &tok)
{
    return tok.isIdent("class") || tok.isIdent("struct") ||
           tok.isIdent("enum") || tok.isIdent("union");
}

/**
 * Given the index of a method/function name token whose next token is
 * `(`, return the [lbrace, rbrace] extent of its body, or {0, 0} when
 * this is a declaration (or a call) rather than a definition.
 */
std::pair<std::size_t, std::size_t>
functionBodyAt(const Tokens &t, std::size_t name_idx)
{
    const std::size_t lparen = name_idx + 1;
    if (lparen >= t.size() || !t[lparen].is("("))
        return {0, 0};
    std::size_t j = matchForward(t, lparen, "(", ")");
    if (j >= t.size())
        return {0, 0};
    ++j;
    while (j < t.size() &&
           (isFunctionTail(t[j]) ||
            t[j].is("(") /* noexcept(...) argument */)) {
        if (t[j].is("(")) {
            j = matchForward(t, j, "(", ")");
            if (j >= t.size())
                return {0, 0};
        }
        ++j;
    }
    if (j >= t.size() || !t[j].is("{"))
        return {0, 0};
    const std::size_t close = matchForward(t, j, "{", "}");
    if (close >= t.size())
        return {0, 0};
    return {j, close};
}

/** True when the name token at `i` is a member/qualified access
 *  (`x.f`, `p->f`, `T::f`) rather than a plain reference. */
bool
qualifiedAccess(const Tokens &t, std::size_t i)
{
    if (i == 0)
        return false;
    return t[i - 1].is(".") || t[i - 1].is("->") || t[i - 1].is("::");
}

/**
 * Collect the identifier spellings inside every definition of
 * `cls::func` across `files` (out-of-line definitions only; inline
 * definitions are collected by the class scanner's caller).
 */
void
collectQualifiedBodyIdents(const std::vector<SourceFile> &files,
                           const std::string &cls,
                           const std::string &func,
                           std::set<std::string> &idents)
{
    for (const SourceFile &file : files) {
        const Tokens &t = file.tokens();
        for (std::size_t i = 0; i + 3 < t.size(); ++i) {
            if (!t[i].isIdent(cls.c_str()) || !t[i + 1].is("::") ||
                !t[i + 2].isIdent(func.c_str()) || !t[i + 3].is("("))
                continue;
            const auto [lb, rb] = functionBodyAt(t, i + 2);
            if (lb == 0 && rb == 0)
                continue;
            for (std::size_t j = lb + 1; j < rb; ++j)
                if (t[j].kind == TokKind::Identifier)
                    idents.insert(t[j].text);
        }
    }
}

struct Member
{
    std::string name;
    int line = 0;
};

struct ClassDecl
{
    std::string name;
    const SourceFile *file = nullptr;
    std::size_t bodyBegin = 0; //!< index of the opening `{`
    std::size_t bodyEnd = 0;   //!< index of the matching `}`
    int line = 0;
    std::vector<Member> members;
    //! Idents inside inline method bodies named `func` within the
    //! class body, for saveState/restoreState/registerStats.
    std::map<std::string, std::set<std::string>> inlineBodies;
    bool declares(const std::string &func) const
    {
        return declared.count(func) != 0;
    }
    std::set<std::string> declared;
};

/**
 * Parse one class-body statement (tokens between `;` boundaries at
 * class depth, with brace initializers elided) into a data-member
 * declaration, or return false for functions, nested types, aliases,
 * references, and const/static members.
 *
 * References, const and static members are skipped on purpose: none
 * of them can be assigned in restoreState, so the checkpoint- and
 * stats-coverage rules treat them as structural rather than state.
 */
bool
parseMemberStatement(const std::vector<const Token *> &stmt,
                     Member &out)
{
    if (stmt.empty())
        return false;
    const Token &first = *stmt.front();
    if (first.isIdent("using") || first.isIdent("typedef") ||
        first.isIdent("friend") || first.isIdent("static") ||
        first.isIdent("template") || first.isIdent("extern") ||
        first.isIdent("constexpr") || first.isIdent("const") ||
        isTypeIntroducer(first))
        return false;
    // Region before any initializer: the declared name lives there.
    std::size_t limit = stmt.size();
    for (std::size_t i = 0; i < stmt.size(); ++i) {
        if (stmt[i]->is("=")) {
            limit = i;
            break;
        }
    }
    const Token *name = nullptr;
    for (std::size_t i = 0; i < limit; ++i) {
        const Token &tok = *stmt[i];
        // A paren before the initializer means a function (or a
        // function-typed member, which has no restorable value).
        if (tok.is("("))
            return false;
        // Reference members are wiring, not state.
        if (tok.is("&"))
            return false;
        if (tok.isIdent("operator"))
            return false;
        if (tok.kind == TokKind::Identifier)
            name = &tok;
    }
    if (name == nullptr)
        return false;
    out.name = name->text;
    out.line = name->line;
    return true;
}

/**
 * Walk a class body and collect its data members and the inline
 * bodies of the methods named in `bodyFuncs`.
 */
void
parseClassBody(const Tokens &t, ClassDecl &cls,
               const std::vector<std::string> &bodyFuncs)
{
    std::vector<const Token *> stmt;
    bool poisoned = false;    // inside a nested-type statement
    bool elided_init = false; // just skipped a {...} initializer
    for (std::size_t i = cls.bodyBegin + 1; i < cls.bodyEnd; ++i) {
        const Token &tok = t[i];
        if (tok.is("{")) {
            const std::size_t close = matchForward(t, i, "{", "}");
            if (close >= t.size())
                return; // unbalanced; bail out of this class
            const bool type_body =
                std::any_of(stmt.begin(), stmt.end(),
                            [](const Token *s) {
                                return isTypeIntroducer(*s);
                            });
            const Token *prev = stmt.empty() ? nullptr : stmt.back();
            // A second `{` directly after an elided one is a ctor
            // body following a braced member initializer
            // (`Foo() : a_{1} { ... }`), not another initializer.
            const bool brace_init =
                !type_body && !elided_init && prev != nullptr &&
                (prev->is("=") || prev->is("]") || prev->is(">") ||
                 (prev->kind == TokKind::Identifier &&
                  !isFunctionTail(*prev)));
            if (brace_init) {
                i = close; // elide the initializer, keep the stmt
                elided_init = true;
                continue;
            }
            if (type_body) {
                poisoned = true; // nested class/struct/enum body
                i = close;
                continue;
            }
            // A method body: harvest it if it is one of the methods
            // the coverage rules care about, then reset.
            if (!stmt.empty() &&
                stmt.front()->kind == TokKind::Identifier) {
                for (const Token *s : stmt) {
                    if (s->kind != TokKind::Identifier)
                        continue;
                    if (std::find(bodyFuncs.begin(), bodyFuncs.end(),
                                  s->text) == bodyFuncs.end())
                        continue;
                    auto &idents = cls.inlineBodies[s->text];
                    for (std::size_t j = i + 1; j < close; ++j)
                        if (t[j].kind == TokKind::Identifier)
                            idents.insert(t[j].text);
                }
            }
            stmt.clear();
            poisoned = false;
            elided_init = false;
            i = close;
            continue;
        }
        if (tok.is(";")) {
            Member m;
            if (!poisoned && parseMemberStatement(stmt, m))
                cls.members.push_back(std::move(m));
            stmt.clear();
            poisoned = false;
            elided_init = false;
            continue;
        }
        if (isAccessSpecifier(tok) && i + 1 < cls.bodyEnd &&
            t[i + 1].is(":")) {
            stmt.clear();
            poisoned = false;
            elided_init = false;
            ++i;
            continue;
        }
        elided_init = false;
        // Method declarations: note the names this class declares
        // (direct `name(` at class level, not a qualified call).
        if (tok.kind == TokKind::Identifier && i + 1 < cls.bodyEnd &&
            t[i + 1].is("(") && !qualifiedAccess(t, i))
            cls.declared.insert(tok.text);
        stmt.push_back(&tok);
    }
}

/**
 * Find class/struct definitions in a file. Nested classes are
 * reported as their own entries; parseClassBody's nested-type
 * poisoning keeps a nested class's members out of its enclosing
 * class's member list.
 */
std::vector<ClassDecl>
scanClasses(const SourceFile &file,
            const std::vector<std::string> &bodyFuncs)
{
    const Tokens &t = file.tokens();
    std::vector<ClassDecl> out;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].isIdent("class") && !t[i].isIdent("struct"))
            continue;
        if (i > 0 && (t[i - 1].isIdent("enum") ||
                      t[i - 1].isIdent("friend") || t[i - 1].is("<") ||
                      t[i - 1].is(",")))
            continue; // enum class / friend class / template params
        std::size_t j = i + 1;
        // Attributes between the keyword and the name.
        while (j < t.size() && t[j].is("[")) {
            j = matchForward(t, j, "[", "]");
            if (j >= t.size())
                break;
            ++j;
        }
        if (j >= t.size() || t[j].kind != TokKind::Identifier)
            continue; // anonymous
        ClassDecl cls;
        cls.name = t[j].text;
        cls.file = &file;
        cls.line = t[i].line;
        std::size_t k = j + 1;
        if (k < t.size() && t[k].is("<")) { // explicit specialization
            k = matchForward(t, k, "<", ">");
            if (k >= t.size())
                continue;
            ++k;
        }
        if (k < t.size() && t[k].isIdent("final"))
            ++k;
        if (k < t.size() && t[k].is(":")) // base clause
            while (k < t.size() && !t[k].is("{") && !t[k].is(";"))
                ++k;
        if (k >= t.size() || !t[k].is("{"))
            continue; // forward declaration or variable declaration
        const std::size_t close = matchForward(t, k, "{", "}");
        if (close >= t.size())
            continue;
        cls.bodyBegin = k;
        cls.bodyEnd = close;
        parseClassBody(t, cls, bodyFuncs);
        out.push_back(std::move(cls));
    }
    return out;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

// --------------------------------------------------------------------
// Rule: determinism
// --------------------------------------------------------------------

namespace {

/** Identifiers banned on sight, with the rationale shown to the user. */
const std::map<std::string, const char *> &
bannedEntropyIdents()
{
    static const std::map<std::string, const char *> kBanned = {
        {"random_device", "hardware entropy breaks reproducibility"},
        {"random_shuffle", "unspecified source of randomness"},
        {"default_random_engine", "implementation-defined stream"},
        {"mt19937", "unseeded-by-convention std engine"},
        {"mt19937_64", "unseeded-by-convention std engine"},
        {"minstd_rand", "unseeded-by-convention std engine"},
        {"minstd_rand0", "unseeded-by-convention std engine"},
        {"system_clock", "reads the wall clock"},
        {"high_resolution_clock", "reads the wall clock"},
        {"gettimeofday", "reads the wall clock"},
        {"clock_gettime", "reads the wall clock"},
        {"localtime", "depends on the TZ environment"},
        {"localtime_r", "depends on the TZ environment"},
        {"rand_r", "C library RNG"},
        {"drand48", "C library RNG"},
        {"lrand48", "C library RNG"},
        {"srandom", "C library RNG"},
    };
    return kBanned;
}

/** C functions flagged only in call position (short, common names). */
const std::set<std::string> &
bannedEntropyCalls()
{
    static const std::set<std::string> kCalls = {
        "rand", "srand", "random", "time", "clock",
    };
    return kCalls;
}

} // namespace

void
determinism(const SourceFile &file, std::vector<Finding> &out)
{
    // The one sanctioned RNG implementation.
    if (file.isFile("src/base/random.cc") ||
        file.isFile("src/base/random.hh"))
        return;
    const Tokens &t = file.tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        if (tok.kind != TokKind::Identifier)
            continue;
        if (tok.text == "getenv") {
            if (file.isFile("src/config/run_options.cc"))
                continue;
            out.push_back(
                {file.path(), tok.line, "determinism",
                 "getenv() outside src/config/run_options.cc; "
                 "runtime configuration is resolved exactly once by "
                 "RunOptions so results cannot depend on ambient "
                 "environment"});
            continue;
        }
        const auto &banned = bannedEntropyIdents();
        const auto it = banned.find(tok.text);
        if (it != banned.end()) {
            out.push_back(
                {file.path(), tok.line, "determinism",
                 tok.text + " is banned (" + it->second +
                     "); draw from an explicitly seeded isim::Rng "
                     "(src/base/random.hh)"});
            continue;
        }
        if (bannedEntropyCalls().count(tok.text) &&
            i + 1 < t.size() && t[i + 1].is("(")) {
            if (i > 0 && (t[i - 1].is(".") || t[i - 1].is("->")))
                continue; // member call on some object
            if (i > 0 && t[i - 1].is("::") &&
                !(i > 1 && t[i - 2].isIdent("std")))
                continue; // qualified call on a non-std type
            out.push_back(
                {file.path(), tok.line, "determinism",
                 tok.text + "() is banned (nondeterministic C "
                            "library call); draw from an explicitly "
                            "seeded isim::Rng (src/base/random.hh)"});
        }
    }
}

// --------------------------------------------------------------------
// Rule: logging
// --------------------------------------------------------------------

void
logging(const SourceFile &file, std::vector<Finding> &out)
{
    // The rule constrains library code only: CLI mains (tools/,
    // examples/, bench/) and tests own their stdout.
    if (!file.under("src/"))
        return;
    if (file.isFile("src/base/logging.cc") ||
        file.isFile("src/base/logging.hh"))
        return;
    static const std::set<std::string> kStreams = {"cout", "cerr",
                                                   "clog"};
    static const std::set<std::string> kCalls = {
        "printf", "fprintf", "vprintf", "vfprintf",
        "puts",   "fputs",   "putchar", "fputc",
    };
    const Tokens &t = file.tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        if (tok.kind != TokKind::Identifier)
            continue;
        const bool stream = kStreams.count(tok.text) != 0;
        const bool call = kCalls.count(tok.text) != 0 &&
                          i + 1 < t.size() && t[i + 1].is("(") &&
                          !(i > 0 && (t[i - 1].is(".") ||
                                      t[i - 1].is("->")));
        if (!stream && !call)
            continue;
        out.push_back(
            {file.path(), tok.line, "logging",
             (stream ? "std::" + tok.text : tok.text + "()") +
                 " in library code; route diagnostics through "
                 "isim_inform/isim_warn (src/base/logging.hh) so "
                 "--quiet and test harnesses can silence them"});
    }
}

// --------------------------------------------------------------------
// Rule: atomic-path
// --------------------------------------------------------------------

namespace {

/**
 * Timing machinery that must never run during an atomic
 * (fast-functional) phase. Touching any of these from an atomic-path
 * function either schedules timing work — voiding the zero-event
 * guarantee the warm-up speedup rests on — or mutates timing-only
 * state, breaking the bit-identical-warm-state guarantee
 * (docs/EXECMODE.md).
 */
const std::map<std::string, std::string> &
bannedTimingIdents()
{
    static const std::map<std::string, std::string> kBanned = {
        {"runUntil", "the timing event loop"},
        {"stepCpu", "the timing per-CPU step"},
        {"consumeOn", "the timing charge dispatcher"},
        {"drainOn", "the timing core drain"},
        {"mcQueueDelay", "memory-controller contention state"},
        {"timingEvents_", "the timing event counter"},
        {"advance", "the observability timeline"},
        {"traceDirectoryMiss", "timing-path trace emission"},
    };
    return kBanned;
}

} // namespace

void
atomicPath(const SourceFile &file, std::vector<Finding> &out)
{
    // Library code only: the rule guards the simulator's atomic
    // execution path, not tests or CLI helpers that merely end a
    // name in "Atomic" (e.g. writeFileAtomic is scanned too, but it
    // has nothing banned to find).
    if (!file.under("src/"))
        return;
    const Tokens &t = file.tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
        const Token &tok = t[i];
        if (tok.kind != TokKind::Identifier)
            continue;
        constexpr std::size_t kSuffix = 6; // "Atomic"
        if (tok.text.size() < kSuffix ||
            tok.text.compare(tok.text.size() - kSuffix, kSuffix,
                             "Atomic") != 0)
            continue;
        // Definitions only; declarations and call sites have no body.
        const auto [lb, rb] = functionBodyAt(t, i);
        if (lb == 0 && rb == 0)
            continue;
        for (std::size_t j = lb + 1; j < rb; ++j) {
            if (t[j].kind != TokKind::Identifier)
                continue;
            const auto &banned = bannedTimingIdents();
            const auto it = banned.find(t[j].text);
            if (it == banned.end())
                continue;
            out.push_back(
                {file.path(), t[j].line, "atomic-path",
                 t[j].text + " inside " + tok.text + "(): " +
                     it->second +
                     " must not be reached on the atomic "
                     "(fast-functional) path; see docs/EXECMODE.md"});
        }
    }
}

// --------------------------------------------------------------------
// Rule: prof-guard
// --------------------------------------------------------------------

void
profGuard(const SourceFile &file, std::vector<Finding> &out)
{
    // The self-profiler's raw primitives may appear only inside its
    // own subsystem. Everywhere else in the library the
    // ISIM_PROF_SCOPE* macros are mandatory — they are what compile
    // away without -DISIM_PROF=ON, so a raw ProfScope or
    // registerNode call site would put instrumentation bytes on the
    // hot path of every build. Lint scans pre-preprocessor source,
    // so legitimate macro call sites never contain these tokens.
    // Tests and tools construct scopes directly on purpose — the
    // rule is src/-only, like `logging`.
    if (!file.under("src/") || file.under("src/prof/"))
        return;
    const Tokens &t = file.tokens();
    for (const Token &tok : t) {
        if (tok.kind != TokKind::Identifier)
            continue;
        if (tok.text != "ProfScope" && tok.text != "registerNode")
            continue;
        out.push_back(
            {file.path(), tok.line, "prof-guard",
             tok.text + " used directly in library code; use "
                        "ISIM_PROF_SCOPE / ISIM_PROF_SCOPE_PHASED so "
                        "the instrumentation compiles away without "
                        "-DISIM_PROF=ON (docs/PROFILING.md)"});
    }
}

// --------------------------------------------------------------------
// Rule: suppression (meta)
// --------------------------------------------------------------------

namespace {

const std::set<std::string> &
knownRules()
{
    static const std::set<std::string> kRules = {
        "determinism", "ordered-output", "ckpt-coverage",
        "stats-coverage", "logging", "atomic-path", "prof-guard",
    };
    return kRules;
}

} // namespace

void
suppressions(const SourceFile &file, std::vector<Finding> &out)
{
    for (const Suppression &s : file.suppressions()) {
        if (s.malformed) {
            out.push_back({file.path(), s.line, "suppression",
                           "malformed isim-lint annotation; expected "
                           "`// isim-lint: allow(<rule>): <reason>`"});
            continue;
        }
        if (!knownRules().count(s.rule)) {
            out.push_back({file.path(), s.line, "suppression",
                           "allow(" + s.rule +
                               ") names an unknown rule; see "
                               "isim-lint --list-rules"});
            continue;
        }
        if (s.reason.empty()) {
            out.push_back({file.path(), s.line, "suppression",
                           "allow(" + s.rule +
                               ") without a reason; every "
                               "suppression must record why: "
                               "`allow(" + s.rule + "): <reason>`"});
        }
    }
    for (const CkptTransient &tr : file.transients()) {
        if (tr.malformed) {
            out.push_back({file.path(), tr.line, "suppression",
                           "malformed ckpt annotation; expected "
                           "`// ckpt: transient(<member>)`"});
        }
    }
}

// --------------------------------------------------------------------
// Rule: ordered-output
// --------------------------------------------------------------------

namespace {

/** Files whose entire contents are serialization/reporting paths. */
bool
isOutputPathFile(const SourceFile &file)
{
    return file.under("src/ckpt/") ||
           file.under("src/campaign/") ||
           file.isFile("src/core/report.cc") ||
           file.isFile("src/stats/manifest.cc") ||
           file.isFile("src/obs/export.cc");
}

/**
 * Names declared anywhere in the tree with an unordered container as
 * their outermost type (members, locals, or parameters). Nested uses
 * (std::vector<std::unordered_set<..>>) attribute the name to the
 * ordered outer container and are not collected.
 */
std::set<std::string>
collectUnorderedNames(const std::vector<SourceFile> &files)
{
    std::set<std::string> names;
    for (const SourceFile &file : files) {
        const Tokens &t = file.tokens();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (!t[i].isIdent("unordered_map") &&
                !t[i].isIdent("unordered_set") &&
                !t[i].isIdent("unordered_multimap") &&
                !t[i].isIdent("unordered_multiset"))
                continue;
            std::size_t chain_start = i;
            if (i >= 2 && t[i - 1].is("::") && t[i - 2].isIdent("std"))
                chain_start = i - 2;
            if (chain_start > 0 && t[chain_start - 1].is("<"))
                continue; // nested template argument
            std::size_t j = i + 1;
            if (j >= t.size() || !t[j].is("<"))
                continue; // bare mention (e.g. a using-declaration)
            j = matchForward(t, j, "<", ">");
            if (j >= t.size())
                continue;
            ++j;
            while (j < t.size() &&
                   (t[j].is("&") || t[j].is("*") ||
                    t[j].isIdent("const")))
                ++j;
            if (j < t.size() && t[j].kind == TokKind::Identifier &&
                !(j + 1 < t.size() && t[j + 1].is("::")))
                names.insert(t[j].text);
        }
    }
    return names;
}

/** Token ranges of saveState/restoreState definitions in a file. */
std::vector<std::pair<std::size_t, std::size_t>>
serializerBodies(const SourceFile &file)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const Tokens &t = file.tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].isIdent("saveState") &&
            !t[i].isIdent("restoreState"))
            continue;
        const auto [lb, rb] = functionBodyAt(t, i);
        if (lb != 0 || rb != 0)
            ranges.emplace_back(lb, rb);
    }
    return ranges;
}

void
checkRangeFors(const SourceFile &file, std::size_t begin,
               std::size_t end, const std::set<std::string> &unordered,
               const char *context, std::vector<Finding> &out)
{
    const Tokens &t = file.tokens();
    for (std::size_t i = begin; i < end; ++i) {
        if (!t[i].isIdent("for") || i + 1 >= t.size() ||
            !t[i + 1].is("("))
            continue;
        const std::size_t close = matchForward(t, i + 1, "(", ")");
        if (close >= t.size() || close > end)
            continue;
        // Range-for: a `:` at parenthesis depth 1 (`::` is fused by
        // the lexer, so a bare `:` is unambiguous).
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (t[j].is("(") || t[j].is("["))
                ++depth;
            else if (t[j].is(")") || t[j].is("]"))
                --depth;
            else if (t[j].is(":") && depth == 1) {
                colon = j;
                break;
            }
            else if (t[j].is(";"))
                break; // classic for
        }
        if (colon == 0)
            continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind != TokKind::Identifier ||
                !unordered.count(t[j].text))
                continue;
            // Inside nested parens the container is an *argument*
            // (e.g. `for (k : sortedKeys(pages_))` — the sanctioned
            // canonicalization idiom); only direct iteration of the
            // container object itself is flagged.
            int call_depth = 0;
            for (std::size_t k = colon + 1; k < j; ++k) {
                if (t[k].is("(") || t[k].is("["))
                    ++call_depth;
                else if (t[k].is(")") || t[k].is("]"))
                    --call_depth;
            }
            if (call_depth > 0)
                continue;
            out.push_back(
                {file.path(), t[i].line, "ordered-output",
                 "range-for over unordered container '" + t[j].text +
                     "' in " + context +
                     "; iteration order is not canonical — sort "
                     "keys first, use an ordered container, or "
                     "annotate with allow(ordered-output)"});
            break;
        }
    }
}

} // namespace

void
orderedOutput(const std::vector<SourceFile> &files,
              std::vector<Finding> &out)
{
    const std::set<std::string> unordered =
        collectUnorderedNames(files);
    for (const SourceFile &file : files) {
        const Tokens &t = file.tokens();
        if (isOutputPathFile(file)) {
            // Declaring an unordered container inside a
            // serialization/reporting file is itself a smell.
            for (const Token &tok : t) {
                if (tok.isIdent("unordered_map") ||
                    tok.isIdent("unordered_set") ||
                    tok.isIdent("unordered_multimap") ||
                    tok.isIdent("unordered_multiset")) {
                    out.push_back(
                        {file.path(), tok.line, "ordered-output",
                         "std::" + tok.text +
                             " in a serialization/reporting file; "
                             "use an ordered container so emitted "
                             "bytes are canonical"});
                }
            }
            checkRangeFors(file, 0, t.size(), unordered,
                           "a serialization/reporting path", out);
            continue;
        }
        for (const auto &[lb, rb] : serializerBodies(file))
            checkRangeFors(file, lb, rb, unordered,
                           "a saveState/restoreState body", out);
    }
}

// --------------------------------------------------------------------
// Rule: ckpt-coverage
// --------------------------------------------------------------------

void
ckptCoverage(const std::vector<SourceFile> &files,
             std::vector<Finding> &out)
{
    static const std::vector<std::string> kFuncs = {"saveState",
                                                    "restoreState"};
    for (const SourceFile &file : files) {
        if (!file.under("src/"))
            continue;
        for (const ClassDecl &cls : scanClasses(file, kFuncs)) {
            if (!cls.declares("saveState"))
                continue;
            std::set<std::string> idents;
            for (const auto &func : kFuncs) {
                const auto it = cls.inlineBodies.find(func);
                if (it != cls.inlineBodies.end())
                    idents.insert(it->second.begin(),
                                  it->second.end());
                collectQualifiedBodyIdents(files, cls.name, func,
                                           idents);
            }
            if (idents.empty())
                continue; // declaration only (interface); nothing to
                          // cross-reference against
            for (const Member &m : cls.members) {
                if (idents.count(m.name) || file.transient(m.name))
                    continue;
                out.push_back(
                    {file.path(), m.line, "ckpt-coverage",
                     "member '" + m.name + "' of " + cls.name +
                         " appears in neither saveState nor "
                         "restoreState; serialize it or mark it "
                         "`// ckpt: transient(" + m.name + ")`"});
            }
        }
    }
}

// --------------------------------------------------------------------
// Rule: stats-coverage
// --------------------------------------------------------------------

void
statsCoverage(const std::vector<SourceFile> &files,
              std::vector<Finding> &out)
{
    static const std::vector<std::string> kFuncs = {"registerStats"};
    std::set<std::string> machine_idents;
    collectQualifiedBodyIdents(files, "Machine", "buildRegistry",
                               machine_idents);
    for (const SourceFile &file : files) {
        if (!file.under("src/"))
            continue;
        for (const ClassDecl &cls : scanClasses(file, kFuncs)) {
            if (!endsWith(cls.name, "Stats") &&
                !endsWith(cls.name, "Counters"))
                continue;
            std::set<std::string> idents;
            const auto it = cls.inlineBodies.find("registerStats");
            if (it != cls.inlineBodies.end())
                idents.insert(it->second.begin(), it->second.end());
            collectQualifiedBodyIdents(files, cls.name,
                                       "registerStats", idents);
            for (const Member &m : cls.members) {
                if (idents.count(m.name) ||
                    machine_idents.count(m.name))
                    continue;
                out.push_back(
                    {file.path(), m.line, "stats-coverage",
                     "counter '" + m.name + "' of " + cls.name +
                         " is never registered; add it to " +
                         cls.name + "::registerStats (or register "
                         "it in Machine::buildRegistry)"});
            }
        }
    }
}

} // namespace checks
} // namespace lint
} // namespace isim
