/**
 * @file
 * The isim-lint rule implementations.
 *
 * Each check appends Findings; suppression filtering and sorting
 * happen centrally in Linter::run(). Rule ids (the names accepted by
 * `// isim-lint: allow(<rule>)`):
 *
 *   determinism     banned entropy/wall-clock/getenv sources
 *   ordered-output  unordered-container iteration in serialization
 *                   and reporting paths
 *   ckpt-coverage   saveState/restoreState must mention every
 *                   non-static, non-reference data member
 *   stats-coverage  *Stats / *Counters members must be registered
 *   logging         bare stdio outside src/base/logging and the CLIs
 *   atomic-path     timing/event machinery inside *Atomic function
 *                   bodies (the fast-functional path must stay
 *                   event-free; docs/EXECMODE.md)
 *   prof-guard      raw self-profiler primitives outside src/prof/
 *                   (library code must use the ISIM_PROF_SCOPE*
 *                   macros, which compile away; docs/PROFILING.md)
 *   suppression     malformed or reason-less annotations (meta rule;
 *                   not itself suppressible)
 */

#ifndef ISIM_LINT_CHECKS_HH
#define ISIM_LINT_CHECKS_HH

#include <string>
#include <vector>

#include "src/lint/source.hh"

namespace isim {
namespace lint {

struct Finding
{
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
};

namespace checks {

void determinism(const SourceFile &file, std::vector<Finding> &out);
void logging(const SourceFile &file, std::vector<Finding> &out);
void atomicPath(const SourceFile &file, std::vector<Finding> &out);
void profGuard(const SourceFile &file, std::vector<Finding> &out);
void suppressions(const SourceFile &file, std::vector<Finding> &out);
void orderedOutput(const std::vector<SourceFile> &files,
                   std::vector<Finding> &out);
void ckptCoverage(const std::vector<SourceFile> &files,
                  std::vector<Finding> &out);
void statsCoverage(const std::vector<SourceFile> &files,
                   std::vector<Finding> &out);

} // namespace checks

} // namespace lint
} // namespace isim

#endif // ISIM_LINT_CHECKS_HH
