#include "src/lint/source.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace isim {
namespace lint {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Convert backslashes and strip a leading "./" so path matching is
 *  spelling-independent. */
std::string
normalizePath(std::string path)
{
    for (char &c : path)
        if (c == '\\')
            c = '/';
    while (path.rfind("./", 0) == 0)
        path.erase(0, 2);
    return path;
}

/**
 * Parse `marker(<arg>)[: reason]` starting at `pos` in a comment.
 * Returns false when the marker is present but unparseable (missing
 * parens); `arg` and `reason` come back trimmed.
 */
bool
parseMarker(const std::string &text, std::size_t pos,
            const std::string &marker, std::string &arg,
            std::string &reason)
{
    std::size_t p = pos + marker.size();
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
    if (p >= text.size() || text[p] != '(')
        return false;
    const std::size_t close = text.find(')', p);
    if (close == std::string::npos)
        return false;
    arg = trim(text.substr(p + 1, close - p - 1));
    std::string rest = trim(text.substr(close + 1));
    if (!rest.empty() && rest[0] == ':')
        rest = trim(rest.substr(1));
    reason = rest;
    return true;
}

} // namespace

SourceFile
SourceFile::fromString(std::string path, const std::string &text)
{
    SourceFile f;
    f.path_ = normalizePath(std::move(path));
    LexResult lexed = lex(text);
    f.tokens_ = std::move(lexed.tokens);
    f.comments_ = std::move(lexed.comments);
    f.parseAnnotations();
    return f;
}

bool
SourceFile::load(const std::string &path, SourceFile &out,
                 std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = fromString(path, buffer.str());
    return true;
}

void
SourceFile::parseAnnotations()
{
    for (const Comment &comment : comments_) {
        // Annotations are line comments that *start* with the marker
        // (`// isim-lint: ...`, `// ckpt: ...`). Block comments and
        // prose that merely mentions the syntax never bind.
        if (comment.block)
            continue;
        const std::string text = trim(comment.text);
        if (text.rfind("isim-lint:", 0) == 0) {
            const std::size_t allow = text.find("allow", 10);
            Suppression s;
            s.line = comment.line;
            if (allow == std::string::npos ||
                !parseMarker(text, allow, "allow", s.rule,
                             s.reason)) {
                s.malformed = true;
            }
            suppressions_.push_back(std::move(s));
            continue;
        }
        // (`ckpt::` is qualified-name prose, not an annotation.)
        if (text.rfind("ckpt:", 0) == 0 &&
            !(text.size() > 5 && text[5] == ':')) {
            const std::size_t tr = text.find("transient", 5);
            CkptTransient t;
            t.line = comment.line;
            std::string reason;
            if (tr == std::string::npos ||
                !parseMarker(text, tr, "transient", t.member,
                             reason) ||
                t.member.empty()) {
                t.malformed = true;
            }
            transients_.push_back(std::move(t));
        }
    }
}

bool
SourceFile::suppressed(const std::string &rule, int line) const
{
    for (const Suppression &s : suppressions_) {
        if (s.malformed || s.rule != rule || s.reason.empty())
            continue;
        if (s.line == line || s.line == line - 1)
            return true;
    }
    return false;
}

bool
SourceFile::transient(const std::string &member) const
{
    for (const CkptTransient &t : transients_)
        if (!t.malformed && t.member == member)
            return true;
    return false;
}

bool
SourceFile::under(const std::string &prefix) const
{
    if (path_.rfind(prefix, 0) == 0)
        return true;
    const std::string anchored = "/" + prefix;
    return path_.find(anchored) != std::string::npos;
}

} // namespace lint
} // namespace isim
