#include "src/ckpt/serializer.hh"

#include <array>
#include <cstring>
#include <fstream>

#include "src/base/logging.hh"

namespace isim::ckpt {

namespace {

constexpr char kMagic[magicBytes + 1] = "ISIMCKPT";

// tag(4) + length(8) + crc(4)
constexpr std::size_t kSectionHeaderBytes = 16;

std::string
fourccName(std::uint32_t tag_value)
{
    std::string name;
    for (int i = 0; i < 4; ++i) {
        const char c =
            static_cast<char>((tag_value >> (8 * i)) & 0xff);
        name += (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    return name;
}

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    const std::array<std::uint32_t, 256> &table = crcTable();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

Serializer::Serializer()
{
    buf_.insert(buf_.end(), kMagic, kMagic + magicBytes);
    u32(formatVersion);
}

void
Serializer::u8(std::uint8_t v)
{
    buf_.push_back(v);
}

void
Serializer::u16(std::uint16_t v)
{
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
Serializer::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
Serializer::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void
Serializer::i64(std::int64_t v)
{
    u64(static_cast<std::uint64_t>(v));
}

void
Serializer::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Serializer::b(bool v)
{
    u8(v ? 1 : 0);
}

void
Serializer::str(const std::string &v)
{
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
}

void
Serializer::memRef(const MemRef &r)
{
    u8(static_cast<std::uint8_t>(r.kind));
    b(r.kernel);
    u8(r.depDist);
    u16(r.instrCount);
    u64(r.paddr);
}

void
Serializer::beginSection(std::uint32_t tag)
{
    isim_assert(!sectionOpen_, "nested checkpoint section");
    sectionOpen_ = true;
    headerAt_ = buf_.size();
    u32(tag);
    u64(0); // payload length, patched by endSection()
    u32(0); // payload CRC, patched by endSection()
}

void
Serializer::endSection()
{
    isim_assert(sectionOpen_, "endSection without beginSection");
    sectionOpen_ = false;
    const std::size_t payload_at = headerAt_ + kSectionHeaderBytes;
    const std::uint64_t len = buf_.size() - payload_at;
    const std::uint32_t crc = crc32(buf_.data() + payload_at, len);
    for (int i = 0; i < 8; ++i)
        buf_[headerAt_ + 4 + i] =
            static_cast<std::uint8_t>((len >> (8 * i)) & 0xff);
    for (int i = 0; i < 4; ++i)
        buf_[headerAt_ + 12 + i] =
            static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff);
}

void
Serializer::writeFile(const std::string &path) const
{
    isim_assert(!sectionOpen_, "writeFile with an open section");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        isim_fatal("cannot open checkpoint '%s' for writing",
                   path.c_str());
    out.write(reinterpret_cast<const char *>(buf_.data()),
              static_cast<std::streamsize>(buf_.size()));
    if (!out)
        isim_fatal("write to checkpoint '%s' failed", path.c_str());
}

Deserializer::Deserializer(std::vector<std::uint8_t> data)
    : buf_(std::move(data))
{
    if (buf_.size() < magicBytes + 4)
        isim_fatal("checkpoint truncated: %zu bytes, need at least "
                   "%zu for the header",
                   buf_.size(), magicBytes + 4);
    if (std::memcmp(buf_.data(), kMagic, magicBytes) != 0)
        isim_fatal("not a checkpoint: bad magic (want \"%s\")", kMagic);
    pos_ = magicBytes;
    const std::uint32_t version = u32();
    if (version != formatVersion)
        isim_fatal("checkpoint format version %u unsupported "
                   "(this build reads version %u)",
                   version, formatVersion);
}

Deserializer
Deserializer::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        isim_fatal("cannot open checkpoint '%s'", path.c_str());
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
    if (size > 0)
        in.read(reinterpret_cast<char *>(data.data()), size);
    if (!in)
        isim_fatal("read of checkpoint '%s' failed", path.c_str());
    return Deserializer(std::move(data));
}

const std::uint8_t *
Deserializer::need(std::size_t n)
{
    if (buf_.size() - pos_ < n)
        isim_fatal("checkpoint truncated: need %zu bytes at offset "
                   "%zu, only %zu remain",
                   n, pos_, buf_.size() - pos_);
    if (sectionOpen_ && pos_ + n > sectionEnd_)
        isim_fatal("checkpoint section overrun: read of %zu bytes at "
                   "offset %zu crosses the section end at %zu",
                   n, pos_, sectionEnd_);
    const std::uint8_t *p = buf_.data() + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
Deserializer::u8()
{
    return *need(1);
}

std::uint16_t
Deserializer::u16()
{
    const std::uint8_t *p = need(2);
    return static_cast<std::uint16_t>(p[0] |
                                      (std::uint16_t{p[1]} << 8));
}

std::uint32_t
Deserializer::u32()
{
    const std::uint8_t *p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t
Deserializer::u64()
{
    const std::uint8_t *p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

std::int64_t
Deserializer::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
Deserializer::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
Deserializer::b()
{
    const std::uint8_t v = u8();
    if (v > 1)
        isim_fatal("checkpoint corrupt: bool byte is %u", v);
    return v != 0;
}

std::string
Deserializer::str()
{
    const std::uint64_t len = u64();
    const std::uint8_t *p = need(len);
    return std::string(reinterpret_cast<const char *>(p), len);
}

MemRef
Deserializer::memRef()
{
    MemRef r;
    const std::uint8_t kind = u8();
    if (kind > static_cast<std::uint8_t>(RefKind::Store))
        isim_fatal("checkpoint corrupt: MemRef kind %u", kind);
    r.kind = static_cast<RefKind>(kind);
    r.kernel = b();
    r.depDist = u8();
    r.instrCount = u16();
    r.paddr = u64();
    return r;
}

void
Deserializer::beginSection(std::uint32_t tag)
{
    isim_assert(!sectionOpen_, "nested checkpoint section");
    const std::uint32_t got = u32();
    if (got != tag)
        isim_fatal("checkpoint section mismatch: want '%s', found "
                   "'%s'",
                   fourccName(tag).c_str(), fourccName(got).c_str());
    const std::uint64_t len = u64();
    const std::uint32_t want_crc = u32();
    if (buf_.size() - pos_ < len)
        isim_fatal("checkpoint truncated inside section '%s': length "
                   "says %llu bytes, only %zu remain",
                   fourccName(tag).c_str(),
                   static_cast<unsigned long long>(len),
                   buf_.size() - pos_);
    const std::uint32_t got_crc = crc32(buf_.data() + pos_, len);
    if (got_crc != want_crc)
        isim_fatal("checkpoint section '%s' failed its CRC check "
                   "(stored %08x, computed %08x) — file corrupt",
                   fourccName(tag).c_str(), want_crc, got_crc);
    sectionOpen_ = true;
    sectionEnd_ = pos_ + len;
}

void
Deserializer::endSection()
{
    isim_assert(sectionOpen_, "endSection without beginSection");
    if (pos_ != sectionEnd_)
        isim_fatal("checkpoint section not fully consumed: %zu bytes "
                   "left (format skew between writer and reader?)",
                   sectionEnd_ - pos_);
    sectionOpen_ = false;
}

void
Deserializer::finish() const
{
    if (pos_ != buf_.size())
        isim_fatal("checkpoint has %zu trailing bytes after the last "
                   "section",
                   buf_.size() - pos_);
}

} // namespace isim::ckpt
