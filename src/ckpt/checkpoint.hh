/**
 * @file
 * Machine-level checkpoint assembly: the section layout of a warm
 * checkpoint image and the MachineConfig echo it embeds. The Machine
 * checkpoint entry points (Machine::checkpointBytes / saveCheckpoint /
 * fromCheckpoint*) are declared on Machine itself and implemented in
 * checkpoint.cc; this header exposes the pieces tests and tools need
 * on their own.
 *
 * Image layout (after the serializer's magic + version preamble), as
 * CRC-framed sections in this fixed order:
 *
 *   CONF  full MachineConfig echo (geometry + workload knobs)
 *   META  warm-up boundary time
 *   SIMU  simulation-loop state (per-CPU clocks, injected kernel path)
 *   CPUS  per-core timing-model state
 *   MEMS  memory system (L1s/L2s/victims/RAC, directory, NoC counters)
 *   VMEM  virtual memory (page tables, frame allocators, RNG)
 *   KERN  kernel model (per-CPU RNGs, instruction counter)
 *   OLTP  engine state (tables, buffer cache, latches, redo, queues)
 *   SCHD  scheduler + every process's state
 *
 * See docs/CHECKPOINT.md for the contract.
 */

#ifndef ISIM_CKPT_CHECKPOINT_HH
#define ISIM_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <vector>

#include "src/ckpt/serializer.hh"

namespace isim {

struct MachineConfig;

namespace ckpt {

inline constexpr std::uint32_t tagConfig = sectionTag("CONF");
inline constexpr std::uint32_t tagMeta = sectionTag("META");
inline constexpr std::uint32_t tagSimLoop = sectionTag("SIMU");
inline constexpr std::uint32_t tagCpus = sectionTag("CPUS");
inline constexpr std::uint32_t tagMemSys = sectionTag("MEMS");
inline constexpr std::uint32_t tagVm = sectionTag("VMEM");
inline constexpr std::uint32_t tagKernel = sectionTag("KERN");
inline constexpr std::uint32_t tagOltp = sectionTag("OLTP");
inline constexpr std::uint32_t tagSched = sectionTag("SCHD");

/** Serialize every MachineConfig field (the CONF section payload). */
void writeConfig(Serializer &s, const MachineConfig &config);
/** Mirror of writeConfig; fatal on out-of-range enum values. */
MachineConfig readConfig(Deserializer &d);

/**
 * Read just the embedded MachineConfig of an image without restoring
 * anything (config-compatibility checks, image inspection).
 */
MachineConfig peekConfig(const std::vector<std::uint8_t> &bytes);

/**
 * Canonical standalone encoding of a configuration. Two configs are
 * checkpoint-compatible exactly when their encodings are equal (the
 * runner refuses to measure a restored image under a different
 * configuration).
 */
std::vector<std::uint8_t> configBytes(const MachineConfig &config);

} // namespace ckpt
} // namespace isim

#endif // ISIM_CKPT_CHECKPOINT_HH
