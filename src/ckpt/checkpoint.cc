/**
 * @file
 * Machine-level checkpoint assembly: the MachineConfig echo and the
 * Machine entry points (declared on Machine in src/core/machine.hh).
 */

#include "src/ckpt/checkpoint.hh"

#include <fstream>

#include "src/base/logging.hh"
#include "src/core/machine.hh"
#include "src/core/simulation.hh"
#include "src/prof/profiler.hh"

namespace isim {

namespace ckpt {

namespace {

void
writeGeometry(Serializer &s, const CacheGeometry &g)
{
    s.u64(g.sizeBytes);
    s.u32(g.assoc);
    s.u32(g.lineBytes);
}

CacheGeometry
readGeometry(Deserializer &d)
{
    CacheGeometry g;
    g.sizeBytes = d.u64();
    g.assoc = d.u32();
    g.lineBytes = d.u32();
    return g;
}

/** Read a u8-encoded enum, rejecting values past `max`. */
template <typename Enum>
Enum
readEnum(Deserializer &d, Enum max, const char *what)
{
    const std::uint8_t v = d.u8();
    if (v > static_cast<std::uint8_t>(max))
        isim_fatal("checkpoint corrupt: %s value %u out of range", what,
                   v);
    return static_cast<Enum>(v);
}

void
writeWorkload(Serializer &s, const WorkloadParams &w)
{
    s.u8(static_cast<std::uint8_t>(w.kind));
    s.u32(w.branches);
    s.u32(w.tellersPerBranch);
    s.u32(w.accountsPerBranch);
    s.u32(w.serversPerCpu);
    s.u64(w.transactions);
    s.u64(w.warmupTransactions);
    s.u32(w.blockBytes);
    s.u64(w.rowBytes);
    s.u64(w.blockBufferBytes);
    s.u64(w.metadataSlackBytes);
    s.u32(w.hashBuckets);
    s.u32(w.numLatches);
    s.u32(w.latchStride);
    s.u32(w.numHashLatches);
    s.u32(w.redoCopyLatches);
    s.u64(w.logBufferBytes);
    s.u64(w.dbTextBytes);
    s.u32(w.dbFunctions);
    s.u32(w.parseInvocations);
    s.u32(w.executeInvocations);
    s.u32(w.commitInvocations);
    s.f64(w.functionSkew);
    s.f64(w.dataRefsPerLine);
    s.f64(w.privateFraction);
    s.f64(w.metadataFraction);
    s.f64(w.warmFraction);
    s.f64(w.mixerStoreFraction);
    s.f64(w.sharedMetadataStoreFraction);
    s.f64(w.dependentFraction);
    s.u64(w.privateBytes);
    s.f64(w.privateSkew);
    s.f64(w.metadataSkew);
    s.u32(w.blockLinesPerRowRead);
    s.u32(w.indexLevels);
    s.u32(w.coldHeaderScans);
    s.u64(w.hotMetadataBytes);
    s.u64(w.warmMetadataBytes);
    s.u32(w.dssStreamsPerCpu);
    s.u64(w.dssBlocksPerQuery);
    s.u64(w.logWriteLatency);
    s.u64(w.clientThinkTime);
    s.u64(w.dbWriterPeriod);
    s.u32(w.dbWriterBatch);
    s.u64(w.seed);
    s.u64(w.quantum);
}

WorkloadParams
readWorkload(Deserializer &d)
{
    WorkloadParams w;
    w.kind = readEnum(d, WorkloadKind::DssScan, "workload kind");
    w.branches = d.u32();
    w.tellersPerBranch = d.u32();
    w.accountsPerBranch = d.u32();
    w.serversPerCpu = d.u32();
    w.transactions = d.u64();
    w.warmupTransactions = d.u64();
    w.blockBytes = d.u32();
    w.rowBytes = d.u64();
    w.blockBufferBytes = d.u64();
    w.metadataSlackBytes = d.u64();
    w.hashBuckets = d.u32();
    w.numLatches = d.u32();
    w.latchStride = d.u32();
    w.numHashLatches = d.u32();
    w.redoCopyLatches = d.u32();
    w.logBufferBytes = d.u64();
    w.dbTextBytes = d.u64();
    w.dbFunctions = d.u32();
    w.parseInvocations = d.u32();
    w.executeInvocations = d.u32();
    w.commitInvocations = d.u32();
    w.functionSkew = d.f64();
    w.dataRefsPerLine = d.f64();
    w.privateFraction = d.f64();
    w.metadataFraction = d.f64();
    w.warmFraction = d.f64();
    w.mixerStoreFraction = d.f64();
    w.sharedMetadataStoreFraction = d.f64();
    w.dependentFraction = d.f64();
    w.privateBytes = d.u64();
    w.privateSkew = d.f64();
    w.metadataSkew = d.f64();
    w.blockLinesPerRowRead = d.u32();
    w.indexLevels = d.u32();
    w.coldHeaderScans = d.u32();
    w.hotMetadataBytes = d.u64();
    w.warmMetadataBytes = d.u64();
    w.dssStreamsPerCpu = d.u32();
    w.dssBlocksPerQuery = d.u64();
    w.logWriteLatency = d.u64();
    w.clientThinkTime = d.u64();
    w.dbWriterPeriod = d.u64();
    w.dbWriterBatch = d.u32();
    w.seed = d.u64();
    w.quantum = d.u64();
    return w;
}

} // namespace

void
writeConfig(Serializer &s, const MachineConfig &config)
{
    s.str(config.name);
    s.u32(config.numCpus);
    s.u32(config.coresPerNode);
    s.u8(static_cast<std::uint8_t>(config.cpuModel));
    s.u32(config.oooParams.width);
    s.u32(config.oooParams.window);
    s.u32(config.oooParams.lsPorts);
    s.u64(config.oooParams.frontendDepth);
    s.u64(config.oooParams.l1HitLatency);
    s.f64(config.oooParams.mispredictEveryInstrs);
    s.u8(static_cast<std::uint8_t>(config.level));
    s.u8(static_cast<std::uint8_t>(config.l2Impl));
    writeGeometry(s, config.l2);
    s.b(config.rac);
    writeGeometry(s, config.racGeom);
    s.u32(config.victimBufferEntries);
    s.u32(config.prefetchDegree);
    s.u64(config.mcOccupancy);
    s.b(config.replicateCode);
    s.u32(config.nodeShift);
    s.u32(config.pageColors);
    writeWorkload(s, config.workload);
}

MachineConfig
readConfig(Deserializer &d)
{
    MachineConfig c;
    c.name = d.str();
    c.numCpus = d.u32();
    c.coresPerNode = d.u32();
    c.cpuModel = readEnum(d, CpuModel::OutOfOrder, "CPU model");
    c.oooParams.width = d.u32();
    c.oooParams.window = d.u32();
    c.oooParams.lsPorts = d.u32();
    c.oooParams.frontendDepth = d.u64();
    c.oooParams.l1HitLatency = d.u64();
    c.oooParams.mispredictEveryInstrs = d.f64();
    c.level =
        readEnum(d, IntegrationLevel::FullInt, "integration level");
    c.l2Impl = readEnum(d, L2Impl::OnchipDram, "L2 implementation");
    c.l2 = readGeometry(d);
    c.rac = d.b();
    c.racGeom = readGeometry(d);
    c.victimBufferEntries = d.u32();
    c.prefetchDegree = d.u32();
    c.mcOccupancy = d.u64();
    c.replicateCode = d.b();
    c.nodeShift = d.u32();
    c.pageColors = d.u32();
    c.workload = readWorkload(d);
    return c;
}

MachineConfig
peekConfig(const std::vector<std::uint8_t> &bytes)
{
    Deserializer d(bytes);
    d.beginSection(tagConfig);
    MachineConfig c = readConfig(d);
    d.endSection();
    return c;
}

std::vector<std::uint8_t>
configBytes(const MachineConfig &config)
{
    Serializer s;
    s.beginSection(tagConfig);
    writeConfig(s, config);
    s.endSection();
    return s.bytes();
}

} // namespace ckpt

// ---- Machine entry points ----

std::vector<std::uint8_t>
Machine::checkpointBytes() const
{
    isim_assert(warmupRan_,
                "checkpoint of a cold machine (run the warm-up first)");

    ckpt::Serializer s;

    s.beginSection(ckpt::tagConfig);
    ckpt::writeConfig(s, config_);
    s.endSection();

    s.beginSection(ckpt::tagMeta);
    s.u64(warmEnd_);
    s.u8(static_cast<std::uint8_t>(warmupMode_));
    s.endSection();

    s.beginSection(ckpt::tagSimLoop);
    if (sim_ != nullptr) {
        sim_->captureState().saveState(s);
    } else {
        isim_assert(pendingSim_ != nullptr,
                    "warm machine with no loop state");
        pendingSim_->saveState(s);
    }
    s.endSection();

    s.beginSection(ckpt::tagCpus);
    s.u64(cpus_.size());
    for (const auto &core : cpus_)
        core->saveState(s);
    s.endSection();

    s.beginSection(ckpt::tagMemSys);
    memSys_->saveState(s);
    s.endSection();

    s.beginSection(ckpt::tagVm);
    vm_->saveState(s);
    s.endSection();

    s.beginSection(ckpt::tagKernel);
    kernel_->saveState(s);
    s.endSection();

    s.beginSection(ckpt::tagOltp);
    engine_->saveState(s);
    s.endSection();

    s.beginSection(ckpt::tagSched);
    sched_->saveState(s);
    s.endSection();

    return s.bytes();
}

void
Machine::saveCheckpoint(const std::string &path) const
{
    ISIM_PROF_SCOPE("ckpt/save");
    const std::vector<std::uint8_t> image = checkpointBytes();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        isim_fatal("cannot open checkpoint file '%s' for writing",
                   path.c_str());
    }
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out)
        isim_fatal("short write to checkpoint file '%s'", path.c_str());
}

std::uint64_t
Machine::stateDigest() const
{
    const std::vector<std::uint8_t> image = checkpointBytes();
    return ckpt::fnv1a64(image.data(), image.size());
}

void
Machine::restoreFromImage(ckpt::Deserializer &d, ExecMode expected_warmup)
{
    ISIM_PROF_SCOPE("ckpt/restore");
    d.beginSection(ckpt::tagMeta);
    warmEnd_ = d.u64();
    // Additive field: images from before the ExecMode API carry an
    // 8-byte META and were, by definition, warmed in timing mode.
    warmupMode_ =
        d.sectionRemaining() > 0
            ? ckpt::readEnum(d, ExecMode::Atomic, "warm-up exec mode")
            : ExecMode::Timing;
    d.endSection();
    if (warmupMode_ != expected_warmup) {
        // An atomic-warmed image and a timing-warmed image define warm
        // state differently (docs/EXECMODE.md); mixing them silently
        // would blend two result series. The caller must opt in with
        // an explicit --warmup-mode.
        isim_fatal("checkpoint warm-up mode mismatch: image was warmed "
                   "in %s mode but this run expects %s warm-up "
                   "(pass --warmup-mode %s to accept the image)",
                   execModeName(warmupMode_),
                   execModeName(expected_warmup),
                   execModeName(warmupMode_));
    }

    d.beginSection(ckpt::tagSimLoop);
    pendingSim_ = std::make_unique<SimState>();
    pendingSim_->restoreState(d);
    d.endSection();
    if (pendingSim_->cpus.size() != cpus_.size()) {
        isim_fatal("checkpoint CPU count mismatch: image has %zu, "
                   "machine has %zu",
                   pendingSim_->cpus.size(), cpus_.size());
    }

    d.beginSection(ckpt::tagCpus);
    const std::uint64_t ncpus = d.u64();
    if (ncpus != cpus_.size()) {
        isim_fatal("checkpoint corrupt: CPUS section has %llu cores, "
                   "machine has %zu",
                   static_cast<unsigned long long>(ncpus), cpus_.size());
    }
    for (auto &core : cpus_)
        core->restoreState(d);
    d.endSection();

    d.beginSection(ckpt::tagMemSys);
    memSys_->restoreState(d);
    d.endSection();

    d.beginSection(ckpt::tagVm);
    vm_->restoreState(d);
    d.endSection();

    d.beginSection(ckpt::tagKernel);
    kernel_->restoreState(d);
    d.endSection();

    d.beginSection(ckpt::tagOltp);
    engine_->restoreState(d);
    d.endSection();

    d.beginSection(ckpt::tagSched);
    sched_->restoreState(d);
    d.endSection();

    d.finish();

    warmupRan_ = true;
    // obsBegun_ stays false: a restored machine opens its
    // observability window at the warm boundary (runMeasurement).
}

std::unique_ptr<Machine>
Machine::fromCheckpointBytes(const std::vector<std::uint8_t> &bytes,
                             ExecMode expected_warmup)
{
    ckpt::Deserializer d(bytes);
    d.beginSection(ckpt::tagConfig);
    const MachineConfig config = ckpt::readConfig(d);
    d.endSection();

    auto machine = std::make_unique<Machine>(config);
    machine->restoreFromImage(d, expected_warmup);
    return machine;
}

std::unique_ptr<Machine>
Machine::fromCheckpoint(const std::string &path, ExecMode expected_warmup)
{
    ckpt::Deserializer d = ckpt::Deserializer::fromFile(path);
    d.beginSection(ckpt::tagConfig);
    const MachineConfig config = ckpt::readConfig(d);
    d.endSection();

    auto machine = std::make_unique<Machine>(config);
    machine->restoreFromImage(d, expected_warmup);
    return machine;
}

std::unique_ptr<Machine>
Machine::fromCheckpoint(const std::string &path, IntegrationLevel level,
                        L2Impl l2_impl, ExecMode expected_warmup)
{
    ckpt::Deserializer d = ckpt::Deserializer::fromFile(path);
    d.beginSection(ckpt::tagConfig);
    MachineConfig config = ckpt::readConfig(d);
    d.endSection();

    // Re-resolve the latency table only; cache geometry, workload and
    // seeds stay those of the image, so the warm state still matches.
    config.level = level;
    config.l2Impl = l2_impl;

    auto machine = std::make_unique<Machine>(config);
    machine->restoreFromImage(d, expected_warmup);
    return machine;
}

} // namespace isim
