/**
 * @file
 * Versioned binary checkpoint encoding: a Serializer/Deserializer
 * visitor pair every stateful component implements saveState() /
 * restoreState() against.
 *
 * Format (all integers little-endian):
 *
 *   [8]  magic "ISIMCKPT"
 *   [4]  format version (u32)
 *   then a sequence of sections:
 *   [4]  section tag (fourcc, u32)
 *   [8]  payload length in bytes (u64)
 *   [4]  CRC-32 (IEEE) of the payload
 *   [n]  payload
 *
 * Doubles are encoded as their IEEE-754 bit pattern, so a round trip
 * is bit-exact (including NaN payloads). Components serialize
 * unordered containers in sorted (canonical) order, so encoding the
 * same logical state always yields the same bytes and checkpoint
 * digests can be compared directly.
 *
 * The Deserializer bounds-checks every read and verifies magic,
 * version, section tags, CRCs, and exact section consumption; any
 * mismatch is a clean isim_fatal (PanicError in panic-throw mode),
 * never undefined behaviour. See docs/CHECKPOINT.md.
 */

#ifndef ISIM_CKPT_SERIALIZER_HH
#define ISIM_CKPT_SERIALIZER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/record.hh"

namespace isim::ckpt {

/**
 * Bump when the encoding changes incompatibly (docs/CHECKPOINT.md).
 * Additive, length-checked trailing fields inside a section (e.g.
 * META's warm-up ExecMode byte) do NOT bump this: readers probe them
 * with sectionRemaining() and default when absent, so older images
 * stay loadable and config digests stay stable.
 */
inline constexpr std::uint32_t formatVersion = 1;

/** "ISIMCKPT" */
inline constexpr std::size_t magicBytes = 8;

/** Build a section tag from a fourcc, e.g. sectionTag("OLTP"). */
constexpr std::uint32_t
sectionTag(const char (&fourcc)[5])
{
    return static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[0])) |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[1]))
               << 8 |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[2]))
               << 16 |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(fourcc[3]))
               << 24;
}

/** CRC-32 (IEEE 802.3 polynomial, reflected). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** FNV-1a 64-bit hash; used for whole-checkpoint state digests. */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t size);

/**
 * Appends primitive values to a growing byte buffer. Construction
 * writes the magic and version; state is then written as a sequence
 * of CRC-framed sections.
 */
class Serializer
{
  public:
    Serializer();

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    /** Encoded as the IEEE-754 bit pattern (bit-exact round trip). */
    void f64(double v);
    void b(bool v);
    /** u64 length followed by the raw bytes. */
    void str(const std::string &v);
    void memRef(const MemRef &r);

    /** Open a section; every write until endSection() is its payload. */
    void beginSection(std::uint32_t tag);
    /** Close the open section, patching its length and CRC. */
    void endSection();

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    /** Write the buffer to a file; isim_fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t headerAt_ = 0; //!< offset of the open section header
    bool sectionOpen_ = false;
};

/**
 * Reads values back in the exact order they were written. All errors
 * (truncation, bad magic, version or tag mismatch, CRC failure,
 * trailing bytes) raise isim_fatal with a description of what was
 * expected.
 */
class Deserializer
{
  public:
    /** Takes the full file image; validates magic and version. */
    explicit Deserializer(std::vector<std::uint8_t> data);

    /** Load a checkpoint file; isim_fatal if unreadable. */
    static Deserializer fromFile(const std::string &path);

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool b();
    std::string str();
    MemRef memRef();

    /** Enter the next section; verifies the tag and payload CRC. */
    void beginSection(std::uint32_t tag);
    /** Leave the section; verifies it was consumed exactly. */
    void endSection();
    /**
     * Bytes left unread in the open section. Lets a reader probe for
     * additive trailing fields written by newer builds (and default
     * them when absent) without a format-version bump.
     */
    std::size_t sectionRemaining() const { return sectionEnd_ - pos_; }

    /** True once every byte has been consumed. */
    bool atEnd() const { return pos_ == buf_.size(); }

    /** Fatal unless atEnd() — call after the last section. */
    void finish() const;

  private:
    const std::uint8_t *need(std::size_t n);

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t sectionEnd_ = 0;
    bool sectionOpen_ = false;
};

} // namespace isim::ckpt

#endif // ISIM_CKPT_SERIALIZER_HH
