/**
 * @file
 * Forward declarations of the checkpoint serializer pair, so component
 * headers can declare saveState()/restoreState() methods without
 * pulling in the full serializer interface.
 */

#ifndef ISIM_CKPT_FWD_HH
#define ISIM_CKPT_FWD_HH

namespace isim::ckpt {

class Serializer;
class Deserializer;

} // namespace isim::ckpt

#endif // ISIM_CKPT_FWD_HH
