/**
 * @file
 * Memory-reference records: the unit of work the CPU timing models
 * consume and the unit the trace writer persists.
 *
 * Instruction fetches are recorded as *chunks*: one record covers a run
 * of `instrCount` sequentially executed instructions residing in a
 * single I-cache line, which is how execution-driven simulators reduce
 * fetch traffic without losing cache behaviour (the line is fetched
 * once either way). Loads and stores are individual records whose
 * instructions were already counted by the surrounding chunks.
 */

#ifndef ISIM_TRACE_RECORD_HH
#define ISIM_TRACE_RECORD_HH

#include <cstdint>

#include "src/base/types.hh"

namespace isim {

/** Kind of reference record. */
enum class RefKind : std::uint8_t {
    Instr, //!< instruction-fetch chunk (one I-cache line)
    Load,
    Store,
};

/**
 * One reference. Addresses are *physical* (the process's address space
 * resolves virtual addresses at generation time; the caches of this
 * machine are physically indexed and tagged).
 */
struct MemRef
{
    RefKind kind = RefKind::Instr;
    bool kernel = false;  //!< executed in kernel mode
    std::uint8_t depDist = 0; //!< Load/Store: how many memory references
                              //!< back the producer of this access's
                              //!< address/data is (0 = independent);
                              //!< drives the out-of-order model's
                              //!< dependence chains
    std::uint16_t instrCount = 0; //!< Instr chunks: instructions covered
    Addr paddr = 0;
};

/** Convenience constructors. */
inline MemRef
instrChunk(Addr paddr, std::uint16_t count, bool kernel = false)
{
    MemRef r;
    r.kind = RefKind::Instr;
    r.paddr = paddr;
    r.instrCount = count;
    r.kernel = kernel;
    return r;
}

inline MemRef
loadRef(Addr paddr, std::uint8_t dep_dist = 0, bool kernel = false)
{
    MemRef r;
    r.kind = RefKind::Load;
    r.paddr = paddr;
    r.depDist = dep_dist;
    r.kernel = kernel;
    return r;
}

inline MemRef
storeRef(Addr paddr, std::uint8_t dep_dist = 0, bool kernel = false)
{
    MemRef r;
    r.kind = RefKind::Store;
    r.paddr = paddr;
    r.depDist = dep_dist;
    r.kernel = kernel;
    return r;
}

} // namespace isim

#endif // ISIM_TRACE_RECORD_HH
