/**
 * @file
 * Trace I/O implementation.
 */

#include "src/trace/trace_io.hh"

#include <cstring>

#include "src/base/logging.hh"

namespace isim {

namespace {

constexpr char traceMagic[8] = {'i', 's', 'i', 'm', 't', 'r', 'c', '1'};

struct PackedRecord
{
    std::uint8_t kind;
    std::uint8_t flags; //!< bit 0: kernel
    std::uint8_t cpu;
    std::uint8_t depDist;
    std::uint16_t instrCount;
    std::uint8_t paddr[8]; //!< little-endian, unaligned-safe
};
static_assert(sizeof(PackedRecord) == 14);

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (file_ == nullptr)
        isim_fatal("cannot open trace for writing: %s", path.c_str());
    char header[16] = {};
    std::memcpy(header, traceMagic, sizeof traceMagic);
    if (std::fwrite(header, sizeof header, 1, file_) != 1)
        isim_fatal("trace header write failed");
}

TraceWriter::~TraceWriter()
{
    std::fclose(file_);
}

void
TraceWriter::write(NodeId cpu, const MemRef &ref)
{
    PackedRecord rec{};
    rec.kind = static_cast<std::uint8_t>(ref.kind);
    rec.flags = ref.kernel ? 1 : 0;
    rec.cpu = static_cast<std::uint8_t>(cpu);
    rec.depDist = ref.depDist;
    rec.instrCount = ref.instrCount;
    for (int i = 0; i < 8; ++i)
        rec.paddr[i] = static_cast<std::uint8_t>(ref.paddr >> (8 * i));
    if (std::fwrite(&rec, sizeof rec, 1, file_) != 1)
        isim_fatal("trace record write failed");
    ++records_;
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (file_ == nullptr)
        isim_fatal("cannot open trace for reading: %s", path.c_str());
    char header[16] = {};
    if (std::fread(header, sizeof header, 1, file_) != 1 ||
        std::memcmp(header, traceMagic, sizeof traceMagic) != 0) {
        isim_fatal("bad trace header in %s", path.c_str());
    }
}

TraceReader::~TraceReader()
{
    std::fclose(file_);
}

bool
TraceReader::next(NodeId &cpu, MemRef &ref)
{
    PackedRecord rec;
    if (std::fread(&rec, sizeof rec, 1, file_) != 1)
        return false;
    ref = MemRef{};
    ref.kind = static_cast<RefKind>(rec.kind);
    ref.kernel = (rec.flags & 1) != 0;
    ref.depDist = rec.depDist;
    ref.instrCount = rec.instrCount;
    ref.paddr = 0;
    for (int i = 0; i < 8; ++i)
        ref.paddr |= static_cast<Addr>(rec.paddr[i]) << (8 * i);
    cpu = rec.cpu;
    return true;
}

} // namespace isim
