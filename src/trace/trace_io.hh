/**
 * @file
 * Binary trace record/replay. A workload run can be captured once and
 * replayed against many memory-system configurations — the classic
 * trace-driven methodology — and the round-trip is also a determinism
 * check on the execution-driven front end.
 *
 * Format: a 16-byte header (magic, version, reserved) followed by
 * packed 13-byte records.
 */

#ifndef ISIM_TRACE_TRACE_IO_HH
#define ISIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>

#include "src/base/types.hh"
#include "src/trace/record.hh"

namespace isim {

const char *refKindName(RefKind kind);

/** Writes (cpu, MemRef) streams to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void write(NodeId cpu, const MemRef &ref);
    std::uint64_t records() const { return records_; }

  private:
    std::FILE *file_;
    std::uint64_t records_ = 0;
};

/** Reads a trace written by TraceWriter. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Returns false at end of trace. */
    bool next(NodeId &cpu, MemRef &ref);

  private:
    std::FILE *file_;
};

} // namespace isim

#endif // ISIM_TRACE_TRACE_IO_HH
