/**
 * @file
 * Reference-record helpers.
 */

#include "src/trace/record.hh"

namespace isim {

const char *
refKindName(RefKind kind)
{
    switch (kind) {
      case RefKind::Instr:
        return "Instr";
      case RefKind::Load:
        return "Load";
      case RefKind::Store:
        return "Store";
    }
    return "?";
}

} // namespace isim
