/**
 * @file
 * The coherent memory system: per-node two-level cache hierarchies
 * (optionally with a remote access cache) kept coherent by a full-map
 * directory MSI protocol, with every L2 miss classified the way the
 * paper's figures need it (local / remote-clean 2-hop / remote-dirty
 * 3-hop, split into instruction and data misses).
 *
 * Timing is table-driven per the paper's methodology: the protocol
 * resolves *state* exactly (who holds what, who gets invalidated, where
 * the data comes from) and then charges the end-to-end latency of the
 * resulting class from the active Figure-3 latency table.
 */

#ifndef ISIM_COHERENCE_PROTOCOL_HH
#define ISIM_COHERENCE_PROTOCOL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/ckpt/fwd.hh"
#include "src/coherence/directory.hh"
#include "src/mem/cache.hh"
#include "src/mem/rac.hh"
#include "src/noc/network.hh"
#include "src/timing/latency_config.hh"

namespace isim {

namespace obs {
class Tracer;
}

namespace stats {
class Registry;
}

/** Kind of memory reference issued by a CPU. */
enum class RefType : std::uint8_t { IFetch, Load, Store };

/** Where an access was satisfied. */
enum class MissClass : std::uint8_t {
    L1Hit,
    L2Hit,
    Local,       //!< L2 miss satisfied by the local home (or the RAC)
    RemoteClean, //!< 2-hop miss, data from a remote home memory
    RemoteDirty, //!< 3-hop miss, data dirty in another node's cache/RAC
};

const char *missClassName(MissClass cls);

/**
 * Deliberate protocol bugs, injectable for tests *of the verification
 * layer itself* (mutation testing): each mutant must be caught by the
 * model checker (tools/mcheck) and by the runtime invariant auditor
 * (src/verify/invariants.hh). None of these alter behavior unless a
 * test opts in via MemorySystem::setMutationForTest.
 */
enum class ProtocolMutation : std::uint8_t {
    None = 0,
    /** A store upgrade leaves the other sharers' copies intact. */
    SkipUpgradeInval,
    /** A read miss on a Shared line doesn't record the new sharer. */
    ForgetSharerBit,
    /** A 3-hop dirty miss is misclassified as a 2-hop clean miss. */
    MisclassifyDirty,
    /** Lines leaving a node never notify the directory. */
    DropVictimRelease,
    /** An L2 eviction forgets to back-invalidate the L1s. */
    SkipVictimBackInval,
};

const char *protocolMutationName(ProtocolMutation m);

/** Result of one memory access. */
struct AccessOutcome
{
    MissClass cls = MissClass::L1Hit;
    Cycles stall = 0;    //!< stall cycles beyond the pipelined L1 hit
    bool racHit = false; //!< data came from the local RAC
    bool upgrade = false; //!< ownership-only transaction (data present)
    bool fromRemoteRac = false; //!< 3-hop served by a remote node's RAC
    bool victimHit = false; //!< recovered from the L2 victim buffer
};

/** Per-node protocol statistics; the raw material of every figure. */
struct NodeProtocolStats
{
    // L2 misses by figure category (upgrades included, see `upgrades`).
    std::uint64_t instrLocal = 0;
    std::uint64_t instrRemote = 0;
    std::uint64_t dataLocal = 0;
    std::uint64_t dataRemoteClean = 0;
    std::uint64_t dataRemoteDirty = 0;

    std::uint64_t upgrades = 0;          //!< ownership-only transactions
    std::uint64_t intraNodeInvals = 0;   //!< sibling-L1 write propagation
    std::uint64_t storeRefs = 0;         //!< all store references
    std::uint64_t storesCausingInval = 0;
    std::uint64_t invalidationsSent = 0; //!< copies invalidated remotely
    std::uint64_t writebacksToHome = 0;
    std::uint64_t replacementHints = 0;
    std::uint64_t victimHits = 0; //!< L2 victim-buffer recoveries
    /**
     * Stores that missed the L2 but found the data Shared in the RAC,
     * so only ownership was acquired. These are L2 misses that appear
     * in neither the per-class miss counters nor `victimHits`; the
     * invariant auditor's conservation identity
     *   l2.misses == totalL2Misses() + victimHits + racUpgrades
     * needs them split out.
     */
    std::uint64_t racUpgrades = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchHits = 0; //!< demand hits on prefetched lines
    std::uint64_t mcQueueCycles = 0; //!< stall added by MC contention

    std::uint64_t totalL2Misses() const
    {
        return instrLocal + instrRemote + dataLocal + dataRemoteClean +
               dataRemoteDirty;
    }

    NodeProtocolStats &operator+=(const NodeProtocolStats &o);

    /**
     * Register every counter under `prefix` (e.g. "node0.l2"): the
     * five miss classes as `prefix.miss.<class>` plus the protocol
     * event counters. The struct must outlive the registry.
     */
    void registerStats(stats::Registry &r, const std::string &prefix) const;
};

/** Static configuration of the memory system. */
struct MemSysConfig
{
    unsigned numNodes = 1;
    /**
     * CPU cores per node (chip multiprocessing, the paper's Section 8
     * outlook). Cores on a chip have private L1s and share the node's
     * L2 (and RAC); intra-chip write propagation invalidates sibling
     * L1 copies with no off-chip traffic.
     */
    unsigned coresPerNode = 1;
    unsigned lineBytes = 64;
    /**
     * L2 victim-buffer entries (the "L2 Victim Buffers" of the 21364
     * block diagram, paper Figure 1): a small fully associative FIFO
     * that catches L2 victims; a hit swaps the line back at near-L2
     * cost instead of re-fetching it, absorbing part of the conflict
     * misses a direct-mapped L2 produces. 0 disables.
     */
    unsigned victimBufferEntries = 0;
    /**
     * Sequential (next-line) L2 prefetch degree: on a demand L2 miss,
     * also fetch the following N lines if uncontended (their directory
     * state is Uncached or Shared). 0 disables. Streaming workloads
     * (DSS scans) benefit; OLTP's pointer-dense accesses barely do —
     * the contrast bench/ext_prefetch quantifies.
     */
    unsigned prefetchDegree = 0;
    /**
     * Memory-controller occupancy per serviced miss, in cycles
     * (0 = uncontended, the paper's latency-table methodology). When
     * set, each home node's controller is a single server: misses
     * that find it busy queue behind it, adding visible stall. This
     * models the bandwidth side of integration (Section 4 notes the
     * integrated MC's higher achievable bandwidth).
     */
    Cycles mcOccupancy = 0;
    std::uint64_t l1Size = 64 * kib;
    unsigned l1Assoc = 2;
    CacheGeometry l2{8 * mib, 1, 64};
    bool racEnabled = false;
    CacheGeometry rac{8 * mib, 8, 64};
    LatencyTable lat;
    unsigned nodeShift = 31; //!< per-node physical window (2 GB)

    void validate() const;
};

/**
 * The machine-wide coherent memory system. One instance serves all
 * nodes; accesses are presented in global simulated-time order by the
 * simulation loop, so the protocol can resolve each one atomically
 * (a sequentially consistent interleaving).
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSysConfig &config);

    const MemSysConfig &config() const { return config_; }
    const HomeMap &homeMap() const { return homeMap_; }
    unsigned lineBits() const { return lineBits_; }

    /**
     * Perform one access from a CPU core (core ids are global:
     * node = core / coresPerNode). `paddr` is a byte address. `now`
     * is the requester's local time, used only by the optional
     * memory-controller contention model.
     */
    AccessOutcome access(NodeId core, RefType type, Addr paddr,
                         Tick now = 0);

    /**
     * The atomic (fast-functional) access path: applies exactly the
     * same cache-array / victim-buffer / RAC / directory state
     * transitions and miss classification as access(), charging the
     * table latency for the class, but with the timing-only machinery
     * statically removed — no memory-controller queue model, no NoC
     * leg accounting, no tracer emission. See docs/EXECMODE.md for
     * the resulting equivalence guarantees.
     */
    AccessOutcome accessAtomic(NodeId core, RefType type, Addr paddr);

    unsigned totalCores() const
    {
        return config_.numNodes * config_.coresPerNode;
    }
    NodeId nodeOfCore(NodeId core) const
    {
        return core / config_.coresPerNode;
    }

    const NodeProtocolStats &nodeStats(NodeId node) const;
    NodeProtocolStats aggregateStats() const;

    /** Interconnect traffic from directory transactions (always on). */
    const NocCounters &nocStats() const { return nocStats_; }
    const TorusTopology &nocTopology() const { return nocTopo_; }

    /** L1 caches are per *core* (global core id). */
    const Cache &l1i(NodeId core) const;
    const Cache &l1d(NodeId core) const;
    const Cache &l2(NodeId node) const { return nodes_[node]->l2; }
    bool hasRac() const { return config_.racEnabled; }
    bool hasVictimBuffer() const
    {
        return config_.victimBufferEntries > 0;
    }
    const Rac &rac(NodeId node) const;
    RacCounters aggregateRacCounters() const;
    const Directory &directory() const { return dir_; }

    /**
     * The node's L2 victim FIFO, oldest first (exposed for the
     * verification layer; empty when victim buffers are disabled).
     */
    const std::deque<std::pair<Addr, LineState>> &
    victimBuffer(NodeId node) const
    {
        return nodes_[node]->victims;
    }

    /**
     * Number of access() calls since construction / the last
     * resetStats(). Equals the summed L1 access counters — an identity
     * the invariant auditor checks.
     */
    std::uint64_t transitionCount() const { return transitionCount_; }

    /**
     * Inject a deliberate protocol bug (mutation testing of the
     * verification layer). Tests only; never set during measurement.
     */
    void setMutationForTest(ProtocolMutation m) { mutation_ = m; }
    ProtocolMutation mutationForTest() const { return mutation_; }

    /** Latency charged for a class (exposed for the CPU models). */
    Cycles latencyFor(MissClass cls, bool rac_hit, bool from_remote_rac,
                      bool upgrade = false) const;

    /**
     * Full cross-check of directory vs cache states; panics on any
     * violation. O(total cache lines); used by tests and (optionally)
     * by the simulation loop in debug runs.
     */
    void checkInvariants() const;

    /** Zero all statistics; cache and directory contents are kept. */
    void resetStats();

    /**
     * Checkpoint every cache array, victim buffer, RAC, directory
     * entry and protocol/NoC counter. The latency table and geometry
     * are configuration (restore verifies cache geometries match).
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

    /**
     * Optional observer invoked on every counted L2 miss (profiling;
     * adds one indirect call per miss when set).
     */
    using MissHook = std::function<void(Addr paddr, RefType type,
                                        MissClass cls)>;
    void setMissHook(MissHook hook) { missHook_ = std::move(hook); }

    /**
     * Attach the observability tracer (nullptr detaches). Tracing
     * never alters protocol state or charged latencies; with no
     * tracer (or a disabled one) the hot path pays one predictable
     * branch per access.
     */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }
    obs::Tracer *tracer() const { return tracer_; }

  private:
    struct Node
    {
        Node(NodeId id, const MemSysConfig &cfg);
        std::vector<Cache> l1i; //!< one per core on the chip
        std::vector<Cache> l1d;
        Cache l2;
        /** Victim FIFO: (line, state), newest at the back. */
        std::deque<std::pair<Addr, LineState>> victims;
        std::unique_ptr<Rac> rac;
        NodeProtocolStats stats;
    };

    struct DirResult
    {
        MissClass cls = MissClass::Local;
        bool fromRemoteRac = false;
        LineState grant = LineState::Shared; //!< state granted on fill
        /** Former owner probed during the transaction (tracing). */
        NodeId peer = invalidNode;
    };

    /** What a probe of a (former) owner found. */
    struct ProbeResult
    {
        bool wasDirty = false;       //!< a Modified copy existed
        bool dirtyInRacOnly = false; //!< ... and only in the RAC
    };

    NodeId homeOf(Addr line_addr) const
    {
        return homeMap_.homeOfLine(line_addr, lineBits_);
    }

    /**
     * The access path proper (access() / accessAtomic() wrap it with
     * auditing). The Atomic instantiation statically removes the
     * timing-only machinery: MC queue contention, NoC leg accounting
     * and tracer emission — state transitions and classification are
     * shared, so the two paths cannot drift apart.
     */
    template <bool Atomic>
    AccessOutcome accessImpl(NodeId core, RefType type, Addr paddr,
                             Tick now);

    /** Directory transaction for a read (load or ifetch) L2+RAC miss. */
    DirResult dirRead(NodeId node, Addr line_addr);
    /** Directory transaction for a store L2+RAC miss. */
    DirResult dirWrite(NodeId node, Addr line_addr);
    /** Ownership acquisition for a line the node already holds Shared. */
    MissClass upgradeTx(NodeId node, Addr line_addr);
    /** Finish an access whose line is (now) resident in the L2. */
    AccessOutcome l2PresentPath(NodeId node, Node &nd, Cache &l1,
                                CacheLine &l2line, RefType type,
                                Addr line);

    /** Remove every copy at a node, reporting what was found. */
    ProbeResult invalidateNode(NodeId node, Addr line_addr);
    /** Downgrade E/M -> S at the owner, reporting what was found. */
    ProbeResult downgradeNode(NodeId node, Addr line_addr);

    /** Handle an L2 fill's displaced victim (inclusion, RAC, dir). */
    void handleL2Victim(NodeId node, const Victim &victim);
    /** Release a line that finally left the node's L2+victim path. */
    void releaseLine(NodeId node, Addr line_addr, LineState state);
    /** Look up (and remove) a line from the node's victim buffer. */
    bool victimLookup(Node &nd, Addr line_addr, LineState &state_out);
    /** Issue next-line prefetches after a demand miss on `line`. */
    void issuePrefetches(NodeId node, Addr line_addr);
    /** Handle a RAC fill's displaced victim. */
    void handleRacVictim(NodeId node, const Victim &victim);
    /** Install a line into the node's RAC with victim handling. */
    void racInstall(NodeId node, Addr line_addr, LineState state);
    /** Fill the given L1, checking the dirty-victim invariant. */
    void fillL1(Node &nd, Cache &l1, Addr line_addr, LineState state);
    /** Fill the L2 (with victim handling) and the given L1. */
    void fillHierarchy(NodeId node, Cache &l1, Addr line_addr,
                       LineState state);
    /** Invalidate the line in every sibling L1 except `self`. */
    void invalidateSiblingL1s(Node &nd, const Cache *self,
                              Addr line_addr);
    /** Downgrade owned sibling L1 copies to Shared (load snoop). */
    void downgradeSiblingL1s(Node &nd, const Cache *self,
                             Addr line_addr);
    /** Invalidate the line in every L1 of the node. */
    void invalidateAllL1s(Node &nd, Addr line_addr);

    void countMiss(NodeId node, RefType type, MissClass cls,
                   Addr line_addr);

    /** Queueing delay at the home MC for a miss arriving at `now`. */
    Cycles mcQueueDelay(NodeId home, Tick now);

    /** One logical interconnect message leg of a transaction. */
    struct NocLeg
    {
        NodeId src = invalidNode;
        NodeId dst = invalidNode;
        unsigned bytes = 0;
    };

    /**
     * Reconstruct the message legs of a directory transaction
     * (request to home, optional probe to the former owner, data back
     * to the requester). Fills `legs` and returns the leg count (<= 3).
     */
    unsigned nocLegsFor(NodeId node, NodeId home, NodeId peer,
                        NocLeg legs[3]) const;

    /** Account the legs of one transaction in nocStats_. */
    void countNocLegs(const NocLeg legs[3], unsigned nlegs);

    /** Emit directory + NoC trace events for a directory-path miss. */
    void traceDirectoryMiss(NodeId core, NodeId node, NodeId home,
                            NodeId peer, RefType type,
                            const AccessOutcome &out, Addr line_addr,
                            Tick now);

    // ckpt: transient(tracer_): observer hook, reattached by the harness
    obs::Tracer *tracer_ = nullptr;
    // ckpt: transient(missHook_): verification callback, reinstalled per run
    MissHook missHook_;
    // ckpt: transient(mutation_): fault-injection setting, reapplied per run
    ProtocolMutation mutation_ = ProtocolMutation::None;
    std::uint64_t transitionCount_ = 0;
    std::vector<Tick> mcBusyUntil_; //!< per-home controller horizon
    // ckpt: transient(config_): construction parameter, identical by contract
    MemSysConfig config_;
    // ckpt: transient(homeMap_): derived from config_ at construction
    HomeMap homeMap_;
    // ckpt: transient(lineBits_): derived from the line size at construction
    unsigned lineBits_;
    Directory dir_;
    // ckpt: transient(nocTopo_): stateless geometry derived from config_
    TorusTopology nocTopo_;
    NocCounters nocStats_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

} // namespace isim

#endif // ISIM_COHERENCE_PROTOCOL_HH
