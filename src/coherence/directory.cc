/**
 * @file
 * Directory implementation.
 */

#include "src/coherence/directory.hh"

#include <algorithm>
#include <vector>

#include "src/ckpt/serializer.hh"

namespace isim {

Directory::Directory(const HomeMap &home_map, unsigned line_bits)
    : homeMap_(home_map), lineBits_(line_bits)
{
    isim_assert(homeMap_.numNodes >= 1 && homeMap_.numNodes <= 32);
    map_.reserve(1 << 20);
}

DirEntry *
Directory::find(Addr line_addr)
{
    auto it = map_.find(line_addr);
    return it == map_.end() ? nullptr : &it->second;
}

const DirEntry *
Directory::find(Addr line_addr) const
{
    auto it = map_.find(line_addr);
    return it == map_.end() ? nullptr : &it->second;
}

DirEntry &
Directory::entry(Addr line_addr)
{
    return map_[line_addr];
}

void
Directory::erase(Addr line_addr)
{
    map_.erase(line_addr);
}

void
Directory::forEachEntry(
    const std::function<void(Addr line_addr, const DirEntry &)> &fn) const
{
    for (const auto &[line_addr, e] : map_)
        fn(line_addr, e);
}

void
Directory::checkEntry(const DirEntry &e, unsigned num_nodes)
{
    checkEntry(e);
    isim_assert(num_nodes >= 1 && num_nodes <= 32);
    const std::uint32_t installed =
        num_nodes == 32 ? ~0u : ((1u << num_nodes) - 1u);
    isim_assert((e.sharers & ~installed) == 0,
                "sharer vector names an uninstalled node");
    if (e.state == LineState::Modified) {
        isim_assert(e.owner < num_nodes,
                    "owner outside the installed node count");
    } else {
        isim_assert(e.owner == invalidNode,
                    "non-owned entry carries a stale owner");
    }
}

void
Directory::checkEntry(const DirEntry &e)
{
    switch (e.state) {
      case LineState::Invalid:
        isim_assert(e.sharers == 0, "uncached entry has sharers");
        break;
      case LineState::Shared:
        isim_assert(e.sharers != 0, "shared entry with empty sharer set");
        break;
      case LineState::Modified:
        isim_assert(e.owner != invalidNode, "modified entry without owner");
        isim_assert(e.sharers == (1u << e.owner),
                    "modified entry sharer mask not exactly the owner");
        break;
      case LineState::Exclusive:
        isim_panic("directory entries use Modified for owned lines");
    }
}

void
Directory::saveState(ckpt::Serializer &s) const
{
    std::vector<Addr> addrs;
    addrs.reserve(map_.size());
    // isim-lint: allow(ordered-output): keys are collected then sorted before emission
    for (const auto &[line_addr, e] : map_)
        addrs.push_back(line_addr);
    std::sort(addrs.begin(), addrs.end());
    s.u64(addrs.size());
    for (Addr line_addr : addrs) {
        const DirEntry &e = map_.at(line_addr);
        s.u64(line_addr);
        s.u8(static_cast<std::uint8_t>(e.state));
        s.u32(e.sharers);
        s.u32(e.owner);
    }
}

void
Directory::restoreState(ckpt::Deserializer &d)
{
    map_.clear();
    const std::uint64_t count = d.u64();
    for (std::uint64_t n = 0; n < count; ++n) {
        const Addr line_addr = d.u64();
        DirEntry e;
        const std::uint8_t state = d.u8();
        if (state > static_cast<std::uint8_t>(LineState::Modified))
            isim_fatal("checkpoint corrupt: directory state %u", state);
        e.state = static_cast<LineState>(state);
        e.sharers = d.u32();
        e.owner = d.u32();
        checkEntry(e, homeMap_.numNodes);
        map_.emplace(line_addr, e);
    }
}

} // namespace isim
