/**
 * @file
 * MemorySystem implementation: a directory MESI protocol over
 * two-level inclusive hierarchies with an optional remote access
 * cache.
 *
 * State-machine conventions used throughout:
 *  - The directory collapses Exclusive and Modified into one "owned"
 *    state (stored as LineState::Modified in DirEntry); probing the
 *    owner's caches distinguishes clean (Exclusive) from dirty
 *    (Modified), which decides 2-hop vs 3-hop classification exactly
 *    as hardware would.
 *  - L1 states never exceed the L2 state; stores flip both the L1 and
 *    L2 lines to Modified in one step (same-node bookkeeping, no
 *    latency), so a silent E->M upgrade is visible at the node level.
 *  - A RAC entry in an owned state is an ownership *marker*: it
 *    appears only while the L2 does not hold the line (the line was
 *    evicted from the L2 and retained in the RAC).
 *  - Replacement hints / write-backs are sent exactly when the *last*
 *    copy leaves a node, so the directory's sharer sets are exact.
 */

#include "src/coherence/protocol.hh"

#include <algorithm>

#include "src/ckpt/serializer.hh"
#include "src/obs/tracer.hh"
#include "src/prof/profiler.hh"
#include "src/stats/registry.hh"

#ifdef ISIM_CHECK_INVARIANTS
#include "src/verify/invariants.hh"
#endif

namespace isim {

const char *
missClassName(MissClass cls)
{
    switch (cls) {
      case MissClass::L1Hit:
        return "L1Hit";
      case MissClass::L2Hit:
        return "L2Hit";
      case MissClass::Local:
        return "Local";
      case MissClass::RemoteClean:
        return "RemoteClean";
      case MissClass::RemoteDirty:
        return "RemoteDirty";
    }
    return "?";
}

const char *
protocolMutationName(ProtocolMutation m)
{
    switch (m) {
      case ProtocolMutation::None:
        return "None";
      case ProtocolMutation::SkipUpgradeInval:
        return "SkipUpgradeInval";
      case ProtocolMutation::ForgetSharerBit:
        return "ForgetSharerBit";
      case ProtocolMutation::MisclassifyDirty:
        return "MisclassifyDirty";
      case ProtocolMutation::DropVictimRelease:
        return "DropVictimRelease";
      case ProtocolMutation::SkipVictimBackInval:
        return "SkipVictimBackInval";
    }
    return "?";
}

NodeProtocolStats &
NodeProtocolStats::operator+=(const NodeProtocolStats &o)
{
    instrLocal += o.instrLocal;
    instrRemote += o.instrRemote;
    dataLocal += o.dataLocal;
    dataRemoteClean += o.dataRemoteClean;
    dataRemoteDirty += o.dataRemoteDirty;
    upgrades += o.upgrades;
    storeRefs += o.storeRefs;
    storesCausingInval += o.storesCausingInval;
    invalidationsSent += o.invalidationsSent;
    intraNodeInvals += o.intraNodeInvals;
    writebacksToHome += o.writebacksToHome;
    victimHits += o.victimHits;
    racUpgrades += o.racUpgrades;
    prefetchesIssued += o.prefetchesIssued;
    prefetchHits += o.prefetchHits;
    mcQueueCycles += o.mcQueueCycles;
    replacementHints += o.replacementHints;
    return *this;
}

void
MemSysConfig::validate() const
{
    isim_assert(numNodes >= 1 && numNodes <= 32);
    isim_assert(coresPerNode >= 1 && coresPerNode <= 16);
    isim_assert(isPowerOf2(lineBytes));
    CacheGeometry l1{l1Size, l1Assoc, lineBytes};
    l1.validate();
    l2.validate();
    isim_assert(l2.lineBytes == lineBytes);
    if (racEnabled) {
        rac.validate();
        isim_assert(rac.lineBytes == lineBytes);
    }
}

MemorySystem::Node::Node(NodeId id, const MemSysConfig &cfg)
    : l2("l2." + std::to_string(id), cfg.l2)
{
    const CacheGeometry l1geom{cfg.l1Size, cfg.l1Assoc, cfg.lineBytes};
    l1i.reserve(cfg.coresPerNode);
    l1d.reserve(cfg.coresPerNode);
    for (unsigned c = 0; c < cfg.coresPerNode; ++c) {
        const std::string tag =
            std::to_string(id) + "." + std::to_string(c);
        l1i.emplace_back("l1i" + tag, l1geom);
        l1d.emplace_back("l1d" + tag, l1geom);
    }
    if (cfg.racEnabled)
        rac = std::make_unique<Rac>(id, cfg.rac);
}

MemorySystem::MemorySystem(const MemSysConfig &config)
    : config_(config),
      homeMap_{config.nodeShift, config.numNodes},
      lineBits_(floorLog2(config.lineBytes)),
      dir_(homeMap_, lineBits_),
      nocTopo_(config.numNodes)
{
    config_.validate();
    mcBusyUntil_.assign(config_.numNodes, 0);
    nodes_.reserve(config_.numNodes);
    for (NodeId n = 0; n < config_.numNodes; ++n)
        nodes_.push_back(std::make_unique<Node>(n, config_));
}

void
NodeProtocolStats::registerStats(stats::Registry &r,
                                 const std::string &prefix) const
{
    const NodeProtocolStats *s = this;
    r.counter(prefix + ".miss.instr_local",
              "instruction misses to the local home", "misses",
              [s] { return s->instrLocal; });
    r.counter(prefix + ".miss.instr_remote",
              "instruction misses to a remote home", "misses",
              [s] { return s->instrRemote; });
    r.counter(prefix + ".miss.local",
              "data misses satisfied locally (home or RAC)", "misses",
              [s] { return s->dataLocal; });
    r.counter(prefix + ".miss.remote_clean",
              "2-hop data misses, data from a remote home", "misses",
              [s] { return s->dataRemoteClean; });
    r.counter(prefix + ".miss.remote_dirty",
              "3-hop data misses, data dirty in a remote cache", "misses",
              [s] { return s->dataRemoteDirty; });
    r.counter(prefix + ".upgrades", "ownership-only transactions", "ops",
              [s] { return s->upgrades; });
    r.counter(prefix + ".intra_node_invals",
              "sibling-L1 write propagation invalidations", "ops",
              [s] { return s->intraNodeInvals; });
    r.counter(prefix + ".store_refs", "store references", "refs",
              [s] { return s->storeRefs; });
    r.counter(prefix + ".stores_causing_inval",
              "stores that invalidated at least one remote copy", "refs",
              [s] { return s->storesCausingInval; });
    r.counter(prefix + ".invals_sent",
              "remote copies invalidated by this node's stores", "ops",
              [s] { return s->invalidationsSent; });
    r.counter(prefix + ".writebacks_to_home",
              "dirty victims written back to their home", "lines",
              [s] { return s->writebacksToHome; });
    r.counter(prefix + ".replacement_hints",
              "clean-victim replacement hints to the directory", "ops",
              [s] { return s->replacementHints; });
    r.counter(prefix + ".victim_hits",
              "misses recovered from the L2 victim buffer", "ops",
              [s] { return s->victimHits; });
    r.counter(prefix + ".rac_upgrades",
              "store misses finding the data Shared in the RAC", "ops",
              [s] { return s->racUpgrades; });
    r.counter(prefix + ".prefetches_issued",
              "sequential prefetches issued", "ops",
              [s] { return s->prefetchesIssued; });
    r.counter(prefix + ".prefetch_hits",
              "demand hits on prefetched lines", "ops",
              [s] { return s->prefetchHits; });
    r.counter(prefix + ".mc_queue_cycles",
              "stall added by memory-controller contention", "cycles",
              [s] { return s->mcQueueCycles; });
}

const NodeProtocolStats &
MemorySystem::nodeStats(NodeId node) const
{
    return nodes_[node]->stats;
}

const Cache &
MemorySystem::l1i(NodeId core) const
{
    return nodes_[nodeOfCore(core)]
        ->l1i[core % config_.coresPerNode];
}

const Cache &
MemorySystem::l1d(NodeId core) const
{
    return nodes_[nodeOfCore(core)]
        ->l1d[core % config_.coresPerNode];
}

NodeProtocolStats
MemorySystem::aggregateStats() const
{
    NodeProtocolStats total;
    for (const auto &node : nodes_)
        total += node->stats;
    return total;
}

const Rac &
MemorySystem::rac(NodeId node) const
{
    isim_assert(config_.racEnabled);
    return *nodes_[node]->rac;
}

RacCounters
MemorySystem::aggregateRacCounters() const
{
    RacCounters total;
    for (const auto &node : nodes_) {
        if (!node->rac)
            continue;
        const RacCounters &c = node->rac->counters();
        total.lookups += c.lookups;
        total.hits += c.hits;
        total.allocations += c.allocations;
        total.dirtyInsertions += c.dirtyInsertions;
        total.dirtyServicesToRemote += c.dirtyServicesToRemote;
        total.writebacksToHome += c.writebacksToHome;
    }
    return total;
}

void
MemorySystem::resetStats()
{
    transitionCount_ = 0;
    nocStats_ = NocCounters{};
    for (auto &node : nodes_) {
        node->stats = NodeProtocolStats{};
        for (auto &c : node->l1i)
            c.resetCounters();
        for (auto &c : node->l1d)
            c.resetCounters();
        node->l2.resetCounters();
        if (node->rac)
            node->rac->resetCounters();
    }
}

namespace {

void
saveNodeStats(ckpt::Serializer &s, const NodeProtocolStats &st)
{
    s.u64(st.instrLocal);
    s.u64(st.instrRemote);
    s.u64(st.dataLocal);
    s.u64(st.dataRemoteClean);
    s.u64(st.dataRemoteDirty);
    s.u64(st.upgrades);
    s.u64(st.intraNodeInvals);
    s.u64(st.storeRefs);
    s.u64(st.storesCausingInval);
    s.u64(st.invalidationsSent);
    s.u64(st.writebacksToHome);
    s.u64(st.replacementHints);
    s.u64(st.victimHits);
    s.u64(st.racUpgrades);
    s.u64(st.prefetchesIssued);
    s.u64(st.prefetchHits);
    s.u64(st.mcQueueCycles);
}

void
restoreNodeStats(ckpt::Deserializer &d, NodeProtocolStats &st)
{
    st.instrLocal = d.u64();
    st.instrRemote = d.u64();
    st.dataLocal = d.u64();
    st.dataRemoteClean = d.u64();
    st.dataRemoteDirty = d.u64();
    st.upgrades = d.u64();
    st.intraNodeInvals = d.u64();
    st.storeRefs = d.u64();
    st.storesCausingInval = d.u64();
    st.invalidationsSent = d.u64();
    st.writebacksToHome = d.u64();
    st.replacementHints = d.u64();
    st.victimHits = d.u64();
    st.racUpgrades = d.u64();
    st.prefetchesIssued = d.u64();
    st.prefetchHits = d.u64();
    st.mcQueueCycles = d.u64();
}

} // namespace

void
MemorySystem::saveState(ckpt::Serializer &s) const
{
    s.u64(transitionCount_);
    s.u64(nocStats_.messages);
    s.u64(nocStats_.ctrlMessages);
    s.u64(nocStats_.dataMessages);
    s.u64(nocStats_.bytes);
    s.u64(nocStats_.hops);
    s.u64(mcBusyUntil_.size());
    for (Tick t : mcBusyUntil_)
        s.u64(t);
    dir_.saveState(s);
    s.u64(nodes_.size());
    for (const auto &node : nodes_) {
        saveNodeStats(s, node->stats);
        node->l2.saveState(s);
        s.u64(node->victims.size());
        for (const auto &[line_addr, state] : node->victims) {
            s.u64(line_addr);
            s.u8(static_cast<std::uint8_t>(state));
        }
        s.b(node->rac != nullptr);
        if (node->rac)
            node->rac->saveState(s);
        s.u64(node->l1i.size());
        for (const Cache &c : node->l1i)
            c.saveState(s);
        for (const Cache &c : node->l1d)
            c.saveState(s);
    }
}

void
MemorySystem::restoreState(ckpt::Deserializer &d)
{
    transitionCount_ = d.u64();
    nocStats_.messages = d.u64();
    nocStats_.ctrlMessages = d.u64();
    nocStats_.dataMessages = d.u64();
    nocStats_.bytes = d.u64();
    nocStats_.hops = d.u64();
    if (d.u64() != mcBusyUntil_.size())
        isim_fatal("checkpoint node count mismatch (mc horizons)");
    for (Tick &t : mcBusyUntil_)
        t = d.u64();
    dir_.restoreState(d);
    if (d.u64() != nodes_.size())
        isim_fatal("checkpoint node count mismatch");
    for (auto &node : nodes_) {
        restoreNodeStats(d, node->stats);
        node->l2.restoreState(d);
        node->victims.clear();
        const std::uint64_t nvictims = d.u64();
        for (std::uint64_t i = 0; i < nvictims; ++i) {
            const Addr line_addr = d.u64();
            const std::uint8_t state = d.u8();
            if (state >
                static_cast<std::uint8_t>(LineState::Modified))
                isim_fatal("checkpoint corrupt: victim state %u",
                           state);
            node->victims.emplace_back(
                line_addr, static_cast<LineState>(state));
        }
        const bool has_rac = d.b();
        if (has_rac != (node->rac != nullptr))
            isim_fatal("checkpoint RAC presence mismatch: file %s a "
                       "RAC, this machine %s",
                       has_rac ? "has" : "lacks",
                       node->rac ? "has one" : "does not");
        if (node->rac)
            node->rac->restoreState(d);
        if (d.u64() != node->l1i.size())
            isim_fatal("checkpoint cores-per-node mismatch");
        for (Cache &c : node->l1i)
            c.restoreState(d);
        for (Cache &c : node->l1d)
            c.restoreState(d);
    }
}

Cycles
MemorySystem::latencyFor(MissClass cls, bool rac_hit, bool from_remote_rac,
                         bool upgrade) const
{
    const LatencyTable &lat = config_.lat;
    switch (cls) {
      case MissClass::L1Hit:
        return 0;
      case MissClass::L2Hit:
        return lat.l2Hit;
      case MissClass::Local:
        return rac_hit ? lat.racHit : lat.local;
      case MissClass::RemoteClean:
        return upgrade ? lat.upgradeRemote : lat.remote;
      case MissClass::RemoteDirty:
        return from_remote_rac ? lat.remoteRacDirty : lat.remoteDirty;
    }
    return 0;
}

void
MemorySystem::countMiss(NodeId node, RefType type, MissClass cls,
                        Addr line_addr)
{
    if (missHook_)
        missHook_(line_addr << lineBits_, type, cls);
    NodeProtocolStats &s = nodes_[node]->stats;
    const bool instr = type == RefType::IFetch;
    switch (cls) {
      case MissClass::Local:
        if (instr)
            ++s.instrLocal;
        else
            ++s.dataLocal;
        break;
      case MissClass::RemoteClean:
        if (instr)
            ++s.instrRemote;
        else
            ++s.dataRemoteClean;
        break;
      case MissClass::RemoteDirty:
        isim_assert(!instr, "instruction fetch hit dirty data");
        ++s.dataRemoteDirty;
        break;
      default:
        isim_panic("countMiss on non-miss class");
    }
}

AccessOutcome
MemorySystem::access(NodeId core, RefType type, Addr paddr, Tick now)
{
    ++transitionCount_;
#ifdef ISIM_CHECK_INVARIANTS
    verify::TransitionAudit audit(*this, core, type, paddr);
    const AccessOutcome out = accessImpl<false>(core, type, paddr, now);
    audit.finish(out);
#else
    const AccessOutcome out = accessImpl<false>(core, type, paddr, now);
#endif
    if (ISIM_OBS_ACTIVE(tracer_) && out.cls != MissClass::L1Hit) {
        const Addr line = paddr >> lineBits_;
        const Addr line_paddr = line << lineBits_;
        const auto home = static_cast<std::uint32_t>(homeOf(line));
        const auto cpu = static_cast<std::uint16_t>(core);
        const auto cls = static_cast<std::uint8_t>(
            static_cast<std::uint8_t>(out.cls) |
            (out.upgrade ? obs::clsUpgrade : 0) |
            (out.racHit ? obs::clsRacHit : 0));
        tracer_->span(obs::EventKind::MissCompleted, now, out.stall,
                      cpu, cls, home, line_paddr);
        if (out.cls != MissClass::L2Hit) {
            tracer_->instant(obs::EventKind::MissIssued, now, cpu, cls,
                             home, line_paddr);
        }
        if (out.upgrade) {
            tracer_->span(obs::EventKind::DirUpgrade, now, out.stall,
                          cpu, cls, home, line_paddr);
        }
    }
    return out;
}

AccessOutcome
MemorySystem::accessAtomic(NodeId core, RefType type, Addr paddr)
{
    // Same audited state machine as access(); the protocol invariants
    // hold in either mode, only the timing machinery is absent.
    ++transitionCount_;
#ifdef ISIM_CHECK_INVARIANTS
    verify::TransitionAudit audit(*this, core, type, paddr);
    const AccessOutcome out = accessImpl<true>(core, type, paddr, 0);
    audit.finish(out);
    return out;
#else
    return accessImpl<true>(core, type, paddr, 0);
#endif
}

template <bool Atomic>
AccessOutcome
MemorySystem::accessImpl(NodeId core, RefType type, Addr paddr, Tick now)
{
    // Functional memory-state apply: ~34% of measured host time per
    // the ROADMAP; the self-profiler keeps that number honest.
    ISIM_PROF_SCOPE_PHASED("memapply");
    isim_assert(core < totalCores());
    const NodeId node = nodeOfCore(core);
    Node &nd = *nodes_[node];
    const unsigned local_core = core % config_.coresPerNode;
    const Addr line = paddr >> lineBits_;
    Cache &l1 = (type == RefType::IFetch) ? nd.l1i[local_core]
                                          : nd.l1d[local_core];

    if (type == RefType::Store)
        ++nd.stats.storeRefs;

    AccessOutcome out;

    // --- L1 ---
    if (CacheLine *l1line = l1.access(line)) {
        if (type != RefType::Store ||
            l1line->state == LineState::Modified) {
            out.cls = MissClass::L1Hit;
            return out;
        }
        CacheLine *l2line = nd.l2.probe(line);
        isim_assert(l2line != nullptr, "L1 line not in inclusive L2");
        if (lineOwned(l2line->state)) {
            // Silent E->M upgrade: the node already owns the line.
            l2line->state = LineState::Modified;
            l1line->state = LineState::Modified;
            invalidateSiblingL1s(nd, &l1, line);
            out.cls = MissClass::L1Hit;
            return out;
        }
        out.cls = upgradeTx(node, line);
        out.upgrade = true;
        l2line->state = LineState::Modified;
        l1line->state = LineState::Modified;
        invalidateSiblingL1s(nd, &l1, line);
        out.stall = latencyFor(out.cls, false, false, true);
        return out;
    }

    // --- L2 ---
    if (CacheLine *l2line = nd.l2.access(line))
        return l2PresentPath(node, nd, l1, *l2line, type, line);

    // --- L2 victim buffer ---
    if (hasVictimBuffer()) {
        LineState vstate;
        if (victimLookup(nd, line, vstate)) {
            ++nd.stats.victimHits;
            Victim displaced = nd.l2.fill(line, vstate);
            handleL2Victim(node, displaced);
            CacheLine *l2line = nd.l2.probe(line);
            isim_assert(l2line != nullptr);
            out = l2PresentPath(node, nd, l1, *l2line, type, line);
            out.victimHit = true;
            return out;
        }
    }

    // --- RAC (remote-home lines only) ---
    const NodeId home = homeOf(line);
    if (nd.rac && home != node) {
        if (CacheLine *r = nd.rac->lookup(line)) {
            out.racHit = true;
            if (type == RefType::Store && !lineOwned(r->state)) {
                // Data is local but ownership must still be acquired.
                out.cls = upgradeTx(node, line);
                out.upgrade = true;
                ++nd.stats.racUpgrades;
                invalidateSiblingL1s(nd, &l1, line);
                fillHierarchy(node, l1, line, LineState::Modified);
                out.stall = latencyFor(out.cls, false, false, true);
                return out;
            } else {
                const LineState marker = r->state;
                if (lineOwned(marker))
                    r->state = LineState::Shared; // marker moves to L2
                if (type == RefType::Store)
                    invalidateSiblingL1s(nd, &l1, line);
                LineState l2state;
                if (type == RefType::Store)
                    l2state = LineState::Modified;
                else if (marker == LineState::Modified)
                    l2state = LineState::Modified;
                else if (marker == LineState::Exclusive)
                    l2state = LineState::Exclusive;
                else
                    l2state = LineState::Shared;
                fillHierarchy(node, l1, line, l2state);
                out.cls = MissClass::Local;
            }
            countMiss(node, type, out.cls, line);
            out.stall = latencyFor(out.cls, out.racHit, false);
            return out;
        }
    }

    // --- Directory ---
    DirResult dr = (type == RefType::Store) ? dirWrite(node, line)
                                            : dirRead(node, line);
    out.cls = dr.cls;
    out.fromRemoteRac = dr.fromRemoteRac;
    const LineState l2state =
        type == RefType::Store ? LineState::Modified : dr.grant;
    if (type == RefType::Store)
        invalidateSiblingL1s(nd, &l1, line);
    fillHierarchy(node, l1, line, l2state);
    if (nd.rac && home != node)
        racInstall(node, line, LineState::Shared);
    countMiss(node, type, out.cls, line);
    out.stall = latencyFor(out.cls, false, out.fromRemoteRac);
    {
        // NoC traffic accounting runs on every directory-path miss,
        // tracer or not — and in both execution modes: it is pure
        // counting, and keeping it on the atomic path is what makes
        // an atomic warm image bit-identical to a timing one.
        NocLeg legs[3];
        const unsigned nlegs = nocLegsFor(node, home, dr.peer, legs);
        countNocLegs(legs, nlegs);
    }
    if constexpr (!Atomic) {
        if (config_.mcOccupancy > 0) {
            // Every directory-path miss occupies the home's controller.
            const Cycles queued = mcQueueDelay(home, now);
            out.stall += queued;
            nd.stats.mcQueueCycles += queued;
        }
        if (ISIM_OBS_ACTIVE(tracer_)) {
            traceDirectoryMiss(core, node, home, dr.peer, type, out,
                               line, now);
        }
    }
    if (config_.prefetchDegree > 0)
        issuePrefetches(node, line);
    return out;
}

unsigned
MemorySystem::nocLegsFor(NodeId node, NodeId home, NodeId peer,
                         NocLeg legs[3]) const
{
    // The Network model charges latency without per-message queues, so
    // the logical legs of a transaction are reconstructed after the
    // fact: request to home, optional probe to the former owner, data
    // back to the requester.
    constexpr unsigned ctrlBytes = 16; //!< header-only message
    constexpr unsigned dataBytes = 80; //!< header + 64B line
    unsigned nlegs = 0;
    const bool probed = peer != invalidNode && peer != node;
    if (home != node)
        legs[nlegs++] = {node, home, ctrlBytes};
    if (probed) {
        legs[nlegs++] = {home, peer, ctrlBytes};
        legs[nlegs++] = {peer, node, dataBytes};
    } else if (home != node) {
        legs[nlegs++] = {home, node, dataBytes};
    }
    return nlegs;
}

void
MemorySystem::countNocLegs(const NocLeg legs[3], unsigned nlegs)
{
    constexpr unsigned ctrlBytes = 16;
    for (unsigned i = 0; i < nlegs; ++i) {
        ++nocStats_.messages;
        if (legs[i].bytes > ctrlBytes)
            ++nocStats_.dataMessages;
        else
            ++nocStats_.ctrlMessages;
        nocStats_.bytes += legs[i].bytes;
        nocStats_.hops += nocTopo_.hops(legs[i].src, legs[i].dst);
    }
}

void
MemorySystem::traceDirectoryMiss(NodeId core, NodeId node, NodeId home,
                                 NodeId peer, RefType type,
                                 const AccessOutcome &out, Addr line_addr,
                                 Tick now)
{
    const Addr addr = line_addr << lineBits_;
    const auto cls = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(out.cls) |
        (out.fromRemoteRac ? obs::clsRacHit : 0));
    tracer_->span(type == RefType::Store ? obs::EventKind::DirWrite
                                         : obs::EventKind::DirRead,
                  now, out.stall, static_cast<std::uint16_t>(core), cls,
                  static_cast<std::uint32_t>(home), addr);

    // Hop events with timestamps spread across the charged stall.
    NocLeg legs[3];
    const unsigned nlegs = nocLegsFor(node, home, peer, legs);
    for (unsigned i = 0; i < nlegs; ++i) {
        const Tick depart = now + (out.stall * i) / nlegs;
        const Tick arrive = now + (out.stall * (i + 1)) / nlegs;
        tracer_->nocHop(obs::EventKind::NocEnqueue, depart, legs[i].src,
                        legs[i].dst, legs[i].bytes, addr);
        tracer_->nocHop(obs::EventKind::NocDequeue, arrive, legs[i].src,
                        legs[i].dst, legs[i].bytes, addr);
    }
}

Cycles
MemorySystem::mcQueueDelay(NodeId home, Tick now)
{
    if (config_.mcOccupancy == 0)
        return 0;
    Tick &busy = mcBusyUntil_[home];
    const Tick start = std::max(busy, now);
    const Cycles delay = start - now;
    busy = start + config_.mcOccupancy;
    return delay;
}

void
MemorySystem::issuePrefetches(NodeId node, Addr line_addr)
{
    Node &nd = *nodes_[node];
    for (unsigned d = 1; d <= config_.prefetchDegree; ++d) {
        const Addr line = line_addr + d;
        // Stay inside installed memory (the next line may cross the
        // last node's window).
        if ((line << lineBits_) >>
                config_.nodeShift >= config_.numNodes) {
            return;
        }
        if (nd.l2.probe(line) != nullptr)
            continue;
        if (hasVictimBuffer()) {
            // Leave parked victims alone; a demand access recovers
            // them more cheaply than a refetch.
            bool parked = false;
            for (const auto &entry : nd.victims)
                parked = parked || entry.first == line;
            if (parked)
                continue;
        }
        if (nd.rac && homeOf(line) != node &&
            nd.rac->cache().probe(line) != nullptr) {
            continue;
        }
        // Do not disturb a writer: prefetch only uncontended lines.
        const DirEntry *e = dir_.find(line);
        if (e != nullptr && e->state == LineState::Modified)
            continue;
        DirResult dr = dirRead(node, line);
        Victim victim = nd.l2.fill(line, dr.grant);
        handleL2Victim(node, victim);
        if (CacheLine *filled = nd.l2.probe(line))
            filled->prefetched = true;
        ++nd.stats.prefetchesIssued;
    }
}

AccessOutcome
MemorySystem::l2PresentPath(NodeId node, Node &nd, Cache &l1,
                            CacheLine &l2line, RefType type, Addr line)
{
    if (l2line.prefetched) {
        l2line.prefetched = false;
        ++nd.stats.prefetchHits;
    }
    AccessOutcome out;
    if (type == RefType::Store && !lineOwned(l2line.state)) {
        out.cls = upgradeTx(node, line);
        out.upgrade = true;
        l2line.state = LineState::Modified;
        invalidateSiblingL1s(nd, &l1, line);
        fillL1(nd, l1, line, LineState::Modified);
        out.stall = latencyFor(out.cls, false, false, true);
        return out;
    }
    if (type == RefType::Store) {
        l2line.state = LineState::Modified;
        invalidateSiblingL1s(nd, &l1, line);
    }
    LineState l1state;
    if (type == RefType::Store) {
        l1state = LineState::Modified;
    } else {
        // Load snoop: a sibling core may hold the line dirty in its
        // L1; it supplies the data and both end up Shared.
        downgradeSiblingL1s(nd, &l1, line);
        l1state =
            lineOwned(l2line.state) && config_.coresPerNode == 1
                ? LineState::Exclusive
                : LineState::Shared;
    }
    fillL1(nd, l1, line, l1state);
    out.cls = MissClass::L2Hit;
    out.stall = latencyFor(out.cls, false, false);
    return out;
}

MissClass
MemorySystem::upgradeTx(NodeId node, Addr line_addr)
{
    Node &nd = *nodes_[node];
    DirEntry *e = dir_.find(line_addr);
    isim_assert(e != nullptr && e->state == LineState::Shared &&
                    e->hasSharer(node),
                "upgrade from a node the directory does not list");

    unsigned invals = 0;
    for (NodeId s = 0; s < config_.numNodes; ++s) {
        if (s == node || !e->hasSharer(s))
            continue;
        if (mutation_ == ProtocolMutation::SkipUpgradeInval)
            continue; // injected bug: stale copies survive the upgrade
        invalidateNode(s, line_addr);
        ++invals;
    }
    nd.stats.invalidationsSent += invals;
    if (invals > 0)
        ++nd.stats.storesCausingInval;
    ++nd.stats.upgrades;

    e->state = LineState::Modified; // "owned" at the directory
    e->owner = node;
    e->sharers = 1u << node;

    return homeOf(line_addr) == node ? MissClass::Local
                                     : MissClass::RemoteClean;
}

MemorySystem::DirResult
MemorySystem::dirRead(NodeId node, Addr line_addr)
{
    DirResult r;
    const NodeId home = homeOf(line_addr);
    DirEntry &e = dir_.entry(line_addr);

    switch (e.state) {
      case LineState::Invalid: // uncached anywhere: grant exclusivity
        e.state = LineState::Modified;
        e.owner = node;
        e.sharers = 1u << node;
        r.cls = home == node ? MissClass::Local : MissClass::RemoteClean;
        r.grant = LineState::Exclusive;
        break;
      case LineState::Shared:
        if (mutation_ != ProtocolMutation::ForgetSharerBit)
            e.sharers |= 1u << node;
        r.cls = home == node ? MissClass::Local : MissClass::RemoteClean;
        r.grant = LineState::Shared;
        break;
      case LineState::Modified: { // owned by someone
        isim_assert(e.owner != node, "read miss while owning the line");
        r.peer = e.owner;
        const ProbeResult probe = downgradeNode(e.owner, line_addr);
        // If the owner's copy was dirty it is written back to home as
        // part of the downgrade; either way memory is valid now.
        e.state = LineState::Shared;
        e.sharers = (1u << e.owner) | (1u << node);
        e.owner = invalidNode;
        if (probe.wasDirty &&
            mutation_ != ProtocolMutation::MisclassifyDirty) {
            r.cls = MissClass::RemoteDirty;
            r.fromRemoteRac = probe.dirtyInRacOnly;
        } else {
            r.cls = home == node ? MissClass::Local
                                 : MissClass::RemoteClean;
        }
        r.grant = LineState::Shared;
        break;
      }
      default:
        isim_panic("invalid directory state");
    }
    return r;
}

MemorySystem::DirResult
MemorySystem::dirWrite(NodeId node, Addr line_addr)
{
    DirResult r;
    const NodeId home = homeOf(line_addr);
    DirEntry &e = dir_.entry(line_addr);
    NodeProtocolStats &s = nodes_[node]->stats;

    switch (e.state) {
      case LineState::Invalid:
        r.cls = home == node ? MissClass::Local : MissClass::RemoteClean;
        break;
      case LineState::Shared: {
        isim_assert(!e.hasSharer(node),
                    "store L2+RAC miss while directory lists us shared");
        unsigned invals = 0;
        for (NodeId sh = 0; sh < config_.numNodes; ++sh) {
            if (!e.hasSharer(sh))
                continue;
            invalidateNode(sh, line_addr);
            ++invals;
        }
        s.invalidationsSent += invals;
        if (invals > 0)
            ++s.storesCausingInval;
        r.cls = home == node ? MissClass::Local : MissClass::RemoteClean;
        break;
      }
      case LineState::Modified: { // owned by someone
        isim_assert(e.owner != node, "store miss while owning the line");
        r.peer = e.owner;
        const ProbeResult probe = invalidateNode(e.owner, line_addr);
        ++s.invalidationsSent;
        ++s.storesCausingInval;
        if (probe.wasDirty &&
            mutation_ != ProtocolMutation::MisclassifyDirty) {
            r.cls = MissClass::RemoteDirty;
            r.fromRemoteRac = probe.dirtyInRacOnly;
        } else {
            r.cls = home == node ? MissClass::Local
                                 : MissClass::RemoteClean;
        }
        break;
      }
      default:
        isim_panic("invalid directory state");
    }

    e.state = LineState::Modified;
    e.owner = node;
    e.sharers = 1u << node;
    r.grant = LineState::Modified;
    return r;
}

MemorySystem::ProbeResult
MemorySystem::invalidateNode(NodeId node, Addr line_addr)
{
    Node &nd = *nodes_[node];
    ProbeResult result;
    const LineState l2prior = nd.l2.invalidateLine(line_addr);
    if (l2prior != LineState::Invalid)
        invalidateAllL1s(nd, line_addr);
    if (l2prior == LineState::Modified)
        result.wasDirty = true;
    LineState vb_state;
    if (hasVictimBuffer() && victimLookup(nd, line_addr, vb_state)) {
        if (vb_state == LineState::Modified)
            result.wasDirty = true;
    }
    if (nd.rac) {
        if (CacheLine *r = nd.rac->cache().probe(line_addr)) {
            if (r->state == LineState::Modified) {
                result.wasDirty = true;
                if (l2prior != LineState::Modified) {
                    result.dirtyInRacOnly = true;
                    nd.rac->noteDirtyServiceToRemote();
                }
            }
            nd.rac->cache().invalidateLine(line_addr);
        }
    }
    return result;
}

MemorySystem::ProbeResult
MemorySystem::downgradeNode(NodeId node, Addr line_addr)
{
    Node &nd = *nodes_[node];
    ProbeResult result;
    bool holds = false;
    if (CacheLine *l2line = nd.l2.probe(line_addr)) {
        holds = true;
        if (l2line->state == LineState::Modified)
            result.wasDirty = true;
        if (lineOwned(l2line->state))
            l2line->state = LineState::Shared;
        for (Cache &c : nd.l1d) {
            if (CacheLine *l1line = c.probe(line_addr)) {
                if (lineOwned(l1line->state))
                    l1line->state = LineState::Shared;
            }
        }
        for (Cache &c : nd.l1i) {
            if (CacheLine *l1line = c.probe(line_addr)) {
                if (lineOwned(l1line->state))
                    l1line->state = LineState::Shared;
            }
        }
    }
    if (hasVictimBuffer()) {
        for (auto &entry : nd.victims) {
            if (entry.first != line_addr)
                continue;
            holds = true;
            if (entry.second == LineState::Modified)
                result.wasDirty = true;
            if (lineOwned(entry.second))
                entry.second = LineState::Shared;
        }
    }
    if (nd.rac) {
        if (CacheLine *r = nd.rac->cache().probe(line_addr)) {
            holds = true;
            if (r->state == LineState::Modified) {
                if (!result.wasDirty) {
                    result.dirtyInRacOnly = true;
                    nd.rac->noteDirtyServiceToRemote();
                }
                result.wasDirty = true;
            }
            if (lineOwned(r->state))
                r->state = LineState::Shared;
        }
    }
    isim_assert(holds, "downgrade at a node holding no copy");
    return result;
}

void
MemorySystem::invalidateSiblingL1s(Node &nd, const Cache *self,
                                   Addr line_addr)
{
    if (config_.coresPerNode == 1)
        return;
    bool any = false;
    for (auto *group : {&nd.l1i, &nd.l1d}) {
        for (Cache &c : *group) {
            if (&c == self)
                continue;
            any |= c.invalidateLine(line_addr) != LineState::Invalid;
        }
    }
    if (any)
        ++nd.stats.intraNodeInvals;
}

void
MemorySystem::downgradeSiblingL1s(Node &nd, const Cache *self,
                                  Addr line_addr)
{
    if (config_.coresPerNode == 1)
        return;
    for (Cache &c : nd.l1d) {
        if (&c == self)
            continue;
        if (CacheLine *l1line = c.probe(line_addr)) {
            if (lineOwned(l1line->state))
                l1line->state = LineState::Shared;
        }
    }
}

void
MemorySystem::invalidateAllL1s(Node &nd, Addr line_addr)
{
    for (Cache &c : nd.l1i)
        c.invalidateLine(line_addr);
    for (Cache &c : nd.l1d)
        c.invalidateLine(line_addr);
}

void
MemorySystem::fillL1(Node &nd, Cache &l1, Addr line_addr, LineState state)
{
    Victim v = l1.fill(line_addr, state);
    if (v.valid && v.state == LineState::Modified) {
        CacheLine *vl2 = nd.l2.probe(v.lineAddr);
        isim_assert(vl2 && vl2->state == LineState::Modified,
                    "dirty L1 victim without Modified L2 line");
    }
}

void
MemorySystem::fillHierarchy(NodeId node, Cache &l1, Addr line_addr,
                            LineState state)
{
    Node &nd = *nodes_[node];
    Victim l2victim = nd.l2.fill(line_addr, state);
    handleL2Victim(node, l2victim);
    LineState l1state;
    if (state == LineState::Modified)
        l1state = LineState::Modified;
    else if (state == LineState::Exclusive &&
             config_.coresPerNode == 1)
        l1state = LineState::Exclusive;
    else
        l1state = LineState::Shared;
    fillL1(nd, l1, line_addr, l1state);
}

bool
MemorySystem::victimLookup(Node &nd, Addr line_addr,
                           LineState &state_out)
{
    for (auto it = nd.victims.begin(); it != nd.victims.end(); ++it) {
        if (it->first == line_addr) {
            state_out = it->second;
            nd.victims.erase(it);
            return true;
        }
    }
    return false;
}

void
MemorySystem::handleL2Victim(NodeId node, const Victim &victim)
{
    if (!victim.valid)
        return;
    Node &nd = *nodes_[node];

    // Inclusion: drop any L1 copies of the displaced line.
    if (mutation_ != ProtocolMutation::SkipVictimBackInval)
        invalidateAllL1s(nd, victim.lineAddr);

    if (hasVictimBuffer()) {
        // Park the victim; the directory still sees the node holding
        // the line. The oldest entry spills out of the FIFO.
        nd.victims.emplace_back(victim.lineAddr, victim.state);
        if (nd.victims.size() <= config_.victimBufferEntries)
            return;
        const auto [spilled_line, spilled_state] = nd.victims.front();
        nd.victims.pop_front();
        releaseLine(node, spilled_line, spilled_state);
        return;
    }
    releaseLine(node, victim.lineAddr, victim.state);
}

void
MemorySystem::releaseLine(NodeId node, Addr vline, LineState state)
{
    if (mutation_ == ProtocolMutation::DropVictimRelease)
        return; // injected bug: the directory keeps a phantom sharer
    Node &nd = *nodes_[node];

    const NodeId home = homeOf(vline);

    if (lineOwned(state)) {
        if (nd.rac && home != node) {
            // Retain the owned line in the RAC instead of releasing it
            // to the remote home (this is what makes the RAC turn
            // 2-hop misses into 3-hop misses, Section 6).
            if (CacheLine *r = nd.rac->cache().probe(vline)) {
                r->state = state;
            } else {
                racInstall(node, vline, state);
            }
            if (state == LineState::Modified)
                nd.rac->noteDirtyInsertion();
            return;
        }
        DirEntry *e = dir_.find(vline);
        isim_assert(e != nullptr && e->state == LineState::Modified &&
                        e->owner == node,
                    "owned victim not owned per directory");
        if (state == LineState::Modified)
            ++nd.stats.writebacksToHome;
        else
            ++nd.stats.replacementHints;
        dir_.erase(vline); // memory at home is valid
        return;
    }

    // Clean (Shared) victim.
    if (nd.rac && home != node && nd.rac->cache().probe(vline) != nullptr) {
        // The RAC still holds a copy; the node remains a sharer.
        return;
    }
    DirEntry *e = dir_.find(vline);
    isim_assert(e != nullptr && e->hasSharer(node),
                "clean victim not listed as sharer");
    isim_assert(e->state == LineState::Shared,
                "Shared victim of a line the directory holds owned");
    e->sharers &= ~(1u << node);
    ++nd.stats.replacementHints;
    if (e->sharers == 0)
        dir_.erase(vline);
}

void
MemorySystem::racInstall(NodeId node, Addr line_addr, LineState state)
{
    Node &nd = *nodes_[node];
    isim_assert(nd.rac != nullptr);
    Victim v = nd.rac->install(line_addr, state);
    handleRacVictim(node, v);
}

void
MemorySystem::handleRacVictim(NodeId node, const Victim &victim)
{
    if (!victim.valid)
        return;
    Node &nd = *nodes_[node];
    const Addr vline = victim.lineAddr;
    CacheLine *l2line = nd.l2.probe(vline);

    if (lineOwned(victim.state)) {
        // An ownership marker lives in the RAC only while the L2 does
        // not hold the line.
        isim_assert(l2line == nullptr,
                    "RAC ownership marker while L2 holds the line");
        DirEntry *e = dir_.find(vline);
        isim_assert(e != nullptr && e->state == LineState::Modified &&
                        e->owner == node,
                    "RAC owned victim not owned per directory");
        if (victim.state == LineState::Modified) {
            ++nd.stats.writebacksToHome;
            nd.rac->noteWritebackToHome();
        } else {
            ++nd.stats.replacementHints;
        }
        dir_.erase(vline);
        return;
    }

    // Shared RAC victim: only notify the directory if the node now
    // holds no copy at all — the L2 *or* the victim buffer may still
    // hold it (possibly in an owned state: a dirty L2 victim can be
    // parked while the RAC kept an older Shared entry).
    if (l2line != nullptr)
        return;
    if (hasVictimBuffer()) {
        for (const auto &entry : nd.victims) {
            if (entry.first == vline)
                return;
        }
    }
    DirEntry *e = dir_.find(vline);
    isim_assert(e != nullptr && e->hasSharer(node),
                "RAC clean victim not listed as sharer");
    isim_assert(e->state == LineState::Shared,
                "RAC Shared victim of an owned line with no L2 copy");
    e->sharers &= ~(1u << node);
    ++nd.stats.replacementHints;
    if (e->sharers == 0)
        dir_.erase(vline);
}

void
MemorySystem::checkInvariants() const
{
    for (NodeId n = 0; n < config_.numNodes; ++n) {
        const Node &nd = *nodes_[n];

        nd.l2.array().forEachValid([&](Addr line, const CacheLine &cl) {
            const DirEntry *e = dir_.find(line);
            isim_assert(e != nullptr, "L2 line unknown to directory");
            isim_assert(e->hasSharer(n), "L2 line not listed as sharer");
            if (lineOwned(cl.state)) {
                isim_assert(e->state == LineState::Modified &&
                                e->owner == n,
                            "L2 owned line not owned per directory");
            } else {
                isim_assert(e->state == LineState::Shared,
                            "L2 Shared line but directory disagrees");
            }
        });

        for (const Cache &c : nd.l1i) {
            c.array().forEachValid([&](Addr line, const CacheLine &) {
                isim_assert(nd.l2.probe(line) != nullptr,
                            "L1I line violates inclusion");
            });
        }
        for (unsigned ci = 0; ci < nd.l1d.size(); ++ci) {
            nd.l1d[ci].array().forEachValid([&](Addr line,
                                                const CacheLine &cl) {
                const CacheLine *l2line = nd.l2.probe(line);
                isim_assert(l2line != nullptr,
                            "L1D line violates inclusion");
                if (cl.state == LineState::Modified) {
                    isim_assert(l2line->state == LineState::Modified,
                                "dirty L1D line but clean L2 line");
                    // Intra-chip single-writer: no sibling L1 may hold
                    // a copy of a line one core has dirty.
                    for (unsigned cj = 0; cj < nd.l1d.size(); ++cj) {
                        if (cj == ci)
                            continue;
                        isim_assert(nd.l1d[cj].probe(line) == nullptr,
                                    "two L1 copies of a dirty line");
                        isim_assert(nd.l1i[cj].probe(line) == nullptr,
                                    "L1I copy of a dirty line");
                    }
                }
            });
        }

        for (const auto &[vb_line, vb_state] : nd.victims) {
            isim_assert(nd.l2.probe(vb_line) == nullptr,
                        "victim-buffer line still resident in L2");
            const DirEntry *e = dir_.find(vb_line);
            isim_assert(e != nullptr,
                        "victim-buffer line unknown to directory");
            isim_assert(e->hasSharer(n),
                        "victim-buffer line not listed as sharer");
            if (lineOwned(vb_state)) {
                isim_assert(e->state == LineState::Modified &&
                                e->owner == n,
                            "owned victim-buffer line not owned per "
                            "directory");
            }
        }

        if (nd.rac) {
            nd.rac->cache().array().forEachValid(
                [&](Addr line, const CacheLine &cl) {
                    isim_assert(homeOf(line) != n,
                                "RAC holds a local-home line");
                    const DirEntry *e = dir_.find(line);
                    isim_assert(e != nullptr,
                                "RAC line unknown to directory");
                    isim_assert(e->hasSharer(n),
                                "RAC line not listed as sharer");
                    if (lineOwned(cl.state)) {
                        isim_assert(e->state == LineState::Modified &&
                                        e->owner == n,
                                    "RAC marker not owned per directory");
                        isim_assert(nd.l2.probe(line) == nullptr,
                                    "RAC marker while L2 holds line");
                    }
                });
        }
    }
}

} // namespace isim
