/**
 * @file
 * Full-map directory for the invalidate-based MSI protocol.
 *
 * The machine is a ccNUMA with per-node memory; the home of a physical
 * address is the node whose memory window contains it (2 GB windows, as
 * a 21364-class system would expose). The directory keeps exact sharer
 * vectors: nodes send replacement hints on clean evictions and
 * write-backs on dirty evictions, so 2-hop vs 3-hop classification is
 * precise — which the paper's Figures 6, 8 and 11 depend on.
 */

#ifndef ISIM_COHERENCE_DIRECTORY_HH
#define ISIM_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/base/logging.hh"
#include "src/base/types.hh"
#include "src/ckpt/fwd.hh"
#include "src/mem/line_state.hh"

namespace isim {

/** Physical address layout: each node owns a power-of-two window. */
struct HomeMap
{
    unsigned nodeShift = 31; //!< log2 of the per-node window (2 GB)
    unsigned numNodes = 1;

    NodeId homeOfByte(Addr paddr) const
    {
        const NodeId home = static_cast<NodeId>(paddr >> nodeShift);
        isim_assert(home < numNodes, "address outside installed memory");
        return home;
    }

    /** Home of a line address given the cache line size in bits. */
    NodeId homeOfLine(Addr line_addr, unsigned line_bits) const
    {
        return homeOfByte(line_addr << line_bits);
    }

    Addr nodeBase(NodeId node) const
    {
        return static_cast<Addr>(node) << nodeShift;
    }

    std::uint64_t nodeWindow() const { return std::uint64_t{1} << nodeShift; }
};

/** Directory entry for one line. Absent entry == Uncached. */
struct DirEntry
{
    LineState state = LineState::Invalid; //!< Invalid==Uncached here
    std::uint32_t sharers = 0;            //!< bitmask of nodes with a copy
    NodeId owner = invalidNode;           //!< valid when state==Modified

    bool isUncached() const { return state == LineState::Invalid; }
    bool hasSharer(NodeId n) const { return (sharers >> n) & 1u; }
    unsigned sharerCount() const
    {
        return static_cast<unsigned>(__builtin_popcount(sharers));
    }
};

/**
 * The directory proper: a sparse map from line address to entry. One
 * logical directory serves all homes (the home node of each entry is
 * derivable from the address); per-home occupancy counters are kept so
 * directory pressure can be reported per node.
 */
class Directory
{
  public:
    Directory(const HomeMap &home_map, unsigned line_bits);

    const HomeMap &homeMap() const { return homeMap_; }
    NodeId homeOf(Addr line_addr) const
    {
        return homeMap_.homeOfLine(line_addr, lineBits_);
    }

    /** Lookup; returns nullptr when the line is uncached everywhere. */
    DirEntry *find(Addr line_addr);
    const DirEntry *find(Addr line_addr) const;

    /** Lookup-or-create (created entries start Uncached). */
    DirEntry &entry(Addr line_addr);

    /** Drop an entry that returned to the Uncached state. */
    void erase(Addr line_addr);

    std::size_t population() const { return map_.size(); }

    /**
     * Structural self-check of one entry; panics on violation.
     * (Node-vs-directory cross checks live in the protocol engine,
     * which can see the caches.) The two-argument form additionally
     * verifies the sharer vector and owner stay within the installed
     * node count.
     */
    static void checkEntry(const DirEntry &e);
    static void checkEntry(const DirEntry &e, unsigned num_nodes);

    /**
     * Visit every entry (for whole-directory audits). The entry's home
     * is derivable from the line address via homeOf().
     */
    void forEachEntry(
        const std::function<void(Addr line_addr, const DirEntry &)> &fn)
        const;

    /**
     * Checkpoint every entry. Entries are written in sorted line-addr
     * order so the encoding is canonical (the map itself is unordered
     * and only ever point-queried, so iteration order is not state).
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    HomeMap homeMap_;
    // ckpt: transient(lineBits_): derived from the line size at construction
    unsigned lineBits_;
    std::unordered_map<Addr, DirEntry> map_;
};

} // namespace isim

#endif // ISIM_COHERENCE_DIRECTORY_HH
