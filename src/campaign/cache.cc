/**
 * @file
 * Campaign cache layout and atomic file writes.
 */

#include "src/campaign/cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/stats/manifest.hh"

namespace isim {
namespace campaign {

std::string
barStatsPath(const std::string &out_dir, const std::string &key)
{
    return out_dir + "/bars/" + key + ".stats.json";
}

std::string
barProfPath(const std::string &out_dir, const std::string &key)
{
    return out_dir + "/bars/" + key + ".prof.json";
}

std::string
imagePath(const std::string &out_dir, const std::string &group_key)
{
    return out_dir + "/ckpt/" + group_key + ".ckpt";
}

bool
barResultCached(const std::string &path, const std::string &key)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    if (!jsonParse(buffer.str(), doc, nullptr))
        return false;
    const std::vector<stats::BarMetaView> meta = stats::manifestMeta(doc);
    return !meta.empty() && meta.front().meta.key == key;
}

void
writeFileAtomic(const std::string &path, const std::string &contents)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            isim_fatal("cannot write '%s'", tmp.c_str());
        out << contents;
        out.flush();
        if (!out)
            isim_fatal("write to '%s' failed", tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        isim_fatal("rename '%s' -> '%s' failed: %s", tmp.c_str(),
                   path.c_str(), ec.message().c_str());
}

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        isim_fatal("cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace campaign
} // namespace isim
