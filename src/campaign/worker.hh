/**
 * @file
 * Campaign worker: executes one lease (the four modes of
 * LeaseMode) against the result cache, and the `--worker` protocol
 * loop isim-campaign forks — M threads pulling leases off stdin and
 * answering DONE/FAIL on stdout.
 */

#ifndef ISIM_CAMPAIGN_WORKER_HH
#define ISIM_CAMPAIGN_WORKER_HH

#include <string>

#include "src/campaign/queue.hh"

namespace isim {
namespace campaign {

struct BarOutcome
{
    bool ok = false;
    std::string reason; //!< failure description when !ok
};

/**
 * Execute one lease: run the bar under its mode, and on success
 * write its single-bar stats manifest (META key included) into the
 * cache — or, for ImageOnly, just regenerate the group's warm
 * image. Simulator panics are reported as failed outcomes; the
 * caller must have setPanicThrow(true) in effect.
 */
BarOutcome runLeasedBar(const CampaignPlan &plan, const Lease &lease,
                        const std::string &out_dir);

/**
 * The `--worker` mode: expand the same (spec, options) plan the
 * supervisor holds, handshake with HELLO, then serve BAR leases with
 * `max(1, options.jobs)` threads until QUIT (or stdin EOF — the
 * supervisor died). Returns the process exit code.
 */
int workerMain(const std::string &spec_path, const std::string &out_dir,
               const RunOptions &options);

} // namespace campaign
} // namespace isim

#endif // ISIM_CAMPAIGN_WORKER_HH
