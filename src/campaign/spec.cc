/**
 * @file
 * Campaign spec parsing and validation.
 */

#include "src/campaign/spec.hh"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "src/base/json.hh"
#include "src/base/logging.hh"

namespace isim {
namespace campaign {

namespace {

/** A JSON number that is a non-negative integer, or fatal. */
std::uint64_t
uintField(const JsonValue &v, const char *what)
{
    if (!v.isNumber() || v.number < 0.0 ||
        std::nearbyint(v.number) != v.number) {
        isim_fatal("campaign spec: \"%s\" must be a non-negative "
                   "integer",
                   what);
    }
    return static_cast<std::uint64_t>(v.number);
}

} // namespace

CampaignSpec
campaignSpecFromJson(const JsonValue &doc)
{
    if (!doc.isObject())
        isim_fatal("campaign spec: document is not a JSON object");
    const JsonValue *schema = doc.get("schema");
    if (!schema || !schema->isString() ||
        schema->text != kCampaignSchema) {
        isim_fatal("campaign spec: missing or wrong \"schema\" "
                   "(want \"%s\")",
                   kCampaignSchema);
    }
    const JsonValue *version = doc.get("version");
    if (!version || !version->isNumber() ||
        static_cast<int>(version->number) != kCampaignVersion) {
        isim_fatal("campaign spec: unsupported version (this build "
                   "understands %d)",
                   kCampaignVersion);
    }

    CampaignSpec spec;
    const JsonValue *name = doc.get("name");
    if (!name || !name->isString() || name->text.empty())
        isim_fatal("campaign spec: \"name\" must be a non-empty "
                   "string");
    spec.name = name->text;

    const JsonValue *figures = doc.get("figures");
    if (!figures || !figures->isArray() || figures->array.empty())
        isim_fatal("campaign spec: \"figures\" must be a non-empty "
                   "array of figure ids");
    for (const JsonValue &f : figures->array) {
        if (!f.isString() || f.text.empty())
            isim_fatal("campaign spec: \"figures\" entries must be "
                       "non-empty strings");
        spec.figures.push_back(f.text);
    }

    if (const JsonValue *seeds = doc.get("seeds")) {
        if (!seeds->isArray())
            isim_fatal("campaign spec: \"seeds\" must be an array");
        std::set<std::uint64_t> seen;
        for (const JsonValue &s : seeds->array) {
            const std::uint64_t seed = uintField(s, "seeds");
            if (!seen.insert(seed).second)
                isim_fatal("campaign spec: duplicate seed %llu",
                           static_cast<unsigned long long>(seed));
            spec.seeds.push_back(seed);
        }
    }

    if (const JsonValue *txns = doc.get("txns")) {
        const std::uint64_t v = uintField(*txns, "txns");
        if (v == 0)
            isim_fatal("campaign spec: \"txns\" must be positive");
        spec.txns = v;
    }
    if (const JsonValue *warmup = doc.get("warmup"))
        spec.warmup = uintField(*warmup, "warmup");

    // Unknown top-level keys are a spec typo waiting to silently
    // no-op ("seed" for "seeds"); reject them.
    static const std::set<std::string> kKnown = {
        "schema", "version", "name", "figures",
        "seeds",  "txns",    "warmup",
    };
    for (const auto &[key, value] : doc.members) {
        (void)value;
        if (!kKnown.count(key))
            isim_fatal("campaign spec: unknown key \"%s\"",
                       key.c_str());
    }
    return spec;
}

CampaignSpec
loadCampaignSpec(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        isim_fatal("campaign spec: cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    std::string err;
    if (!jsonParse(buffer.str(), doc, &err))
        isim_fatal("campaign spec: %s: %s", path.c_str(), err.c_str());
    return campaignSpecFromJson(doc);
}

} // namespace campaign
} // namespace isim
