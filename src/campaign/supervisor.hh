/**
 * @file
 * Campaign supervisor: drives a whole campaign to completion —
 * prepare/validate the output directory, scan the cache, then
 * execute every pending lease either in-process (--procs=1,
 * sequential and deterministic) or across a pool of forked
 * `--worker` processes speaking the pipe protocol. A worker crash
 * requeues its in-flight leases and respawns a replacement (within
 * a crash budget); `--stop-after` turns the supervisor into a
 * deterministic interruption point for resume testing.
 *
 * Exit codes: 0 = every bar ok; 2 = campaign merged but some bars
 * failed; 3 = stopped early by stopAfter (no campaign.json written);
 * 1 = fatal (bad spec, spec drift, crash budget exhausted).
 */

#ifndef ISIM_CAMPAIGN_SUPERVISOR_HH
#define ISIM_CAMPAIGN_SUPERVISOR_HH

#include <string>

#include "src/config/run_options.hh"

namespace isim {
namespace campaign {

struct CampaignRunConfig
{
    std::string specPath;
    std::string outDir;
    /** argv[0] fallback for re-exec (/proc/self/exe is preferred). */
    std::string exePath;
    RunOptions options; //!< options.procs selects the pool size
    /**
     * Stop issuing leases after this many completions this session,
     * drain, and exit 3 (< 0 = run to completion). The cache keeps
     * everything finished, so a rerun resumes exactly there.
     */
    long stopAfter = -1;
};

/**
 * How a spec file relates to the copy an output directory was
 * created with. `Missing` means the directory has no recorded copy
 * yet (fresh out dir); `Drifted` means resuming would mix studies.
 */
enum class SpecDrift { Match, Missing, Drifted };

/**
 * Read-only comparison of the spec bytes at `spec_path` against
 * `<out_dir>/campaign.spec.json`. Never writes; usable from status
 * tooling as well as the run path.
 */
SpecDrift specDrift(const std::string &spec_path,
                    const std::string &out_dir);

/** Run (or resume) the campaign; returns the process exit code. */
int runCampaign(const CampaignRunConfig &config);

} // namespace campaign
} // namespace isim

#endif // ISIM_CAMPAIGN_SUPERVISOR_HH
