/**
 * @file
 * Campaign specification: the JSON document (schema "isim-campaign",
 * version 1) that names an entire design-space study — which figures
 * to run, under which seeds, at which transaction counts — as one
 * resumable job for `isim-campaign run`:
 *
 *   {
 *     "schema": "isim-campaign",
 *     "version": 1,
 *     "name": "smoke",
 *     "figures": ["fig10-uni", "fig05"],
 *     "seeds": [3, 4],
 *     "txns": 40,
 *     "warmup": 10
 *   }
 *
 * "figures" entries resolve like `isim-fig run` ids (exact id, or a
 * prefix expanding to several figures). "seeds" multiplies every bar
 * by each listed seed; when absent, each bar runs under its config's
 * own seed. "txns"/"warmup" override the workload counts for every
 * cell (command-line --txns/--warmup still win — flags beat the
 * spec, the seed axis beats --seed). See docs/CAMPAIGN.md.
 */

#ifndef ISIM_CAMPAIGN_SPEC_HH
#define ISIM_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace isim {

class JsonValue;

namespace campaign {

constexpr const char *kCampaignSchema = "isim-campaign";
constexpr int kCampaignVersion = 1;

/** Parsed campaign spec (validated; see campaignSpecFromJson). */
struct CampaignSpec
{
    std::string name;
    /** Figure ids or prefixes, resolved via the FigureRegistry. */
    std::vector<std::string> figures;
    /** Seed axis; empty = one cell per bar under its own seed. */
    std::vector<std::uint64_t> seeds;
    std::optional<std::uint64_t> txns;
    std::optional<std::uint64_t> warmup;
};

/**
 * Validate and extract a spec from a parsed document. Fatal on any
 * schema violation (wrong schema/version, empty name or figure list,
 * duplicate seeds, non-positive txns) — a campaign is a batch job,
 * so a bad spec must stop the run, not warp it.
 */
CampaignSpec campaignSpecFromJson(const JsonValue &doc);

/** Read, parse and validate a spec file; fatal on I/O or syntax. */
CampaignSpec loadCampaignSpec(const std::string &path);

} // namespace campaign
} // namespace isim

#endif // ISIM_CAMPAIGN_SPEC_HH
