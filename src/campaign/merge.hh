/**
 * @file
 * Campaign merge: assemble the per-cell results from the cache into
 * one `campaign.json` — itself a valid isim-stats manifest (figure =
 * campaign name, one bar per cell in expansion order), so
 * `isim-stat dump/grep/diff` consume whole campaigns unchanged.
 *
 * The merge is byte-deterministic: stats are re-emitted with
 * jsonToText() (exact round trip of the cached bytes), wall-ms is
 * the simulated measurement wall-clock echoed from the cell's META,
 * and per-bar "status" records only the result ("ok"/"failed") —
 * never whether the cell was freshly run or a cache hit. An
 * interrupted-and-resumed campaign therefore merges to exactly the
 * bytes an uninterrupted run produces.
 */

#ifndef ISIM_CAMPAIGN_MERGE_HH
#define ISIM_CAMPAIGN_MERGE_HH

#include <string>
#include <vector>

#include "src/campaign/queue.hh"

namespace isim {
namespace campaign {

/** Per-bar result status, indexed like plan.bars (aliases resolved). */
struct BarStatus
{
    bool ok = false;
    std::string reason; //!< failure reason when !ok
};

/**
 * Build the campaign.json text from the plan and each bar's cached
 * manifest. Failed bars are included with status "failed" and an
 * empty stats block, so a partially failed campaign still merges
 * (and diffs loudly). Fatal when an ok bar's cache file is missing
 * or malformed; the result is jsonValidate-clean by contract.
 */
std::string mergeCampaignJson(const CampaignPlan &plan,
                              const std::string &out_dir,
                              const std::vector<BarStatus> &status);

} // namespace campaign
} // namespace isim

#endif // ISIM_CAMPAIGN_MERGE_HH
