/**
 * @file
 * Campaign expansion and the lease scheduler.
 *
 * expandCampaign() turns a spec into the flat, deterministic bar
 * list every participant — supervisor, worker processes, merge —
 * recomputes identically from (spec, options): figures in
 * resolution order, bars in figure order, the seed axis outermost.
 * Each bar carries its content-address key (stats::resultKey) and
 * its warm-image group key.
 *
 * CampaignQueue is the scheduler: it scans the output directory for
 * cached cells, then hands out leases in bar-index order. It is
 * checkpoint-aware — bars whose configurations differ only in
 * integration level / L2 implementation share one warm image, so the
 * group's first bar is leased as Build (warm up, save the image,
 * measure) and the rest as Restore (measure from the image under
 * their own latency table). When the builder's result is already
 * cached but the image is missing, an ImageOnly lease re-runs just
 * the builder's warm-up to regenerate it — the image is a
 * deterministic function of the builder's configuration, so restored
 * members measure the same bytes either way.
 */

#ifndef ISIM_CAMPAIGN_QUEUE_HH
#define ISIM_CAMPAIGN_QUEUE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/campaign/spec.hh"
#include "src/config/run_options.hh"
#include "src/core/machine.hh"

namespace isim {
namespace campaign {

/** What a lease asks a worker to do with its bar. */
enum class LeaseMode : std::uint8_t {
    Cold,      //!< build, warm up, measure (no image involved)
    Build,     //!< warm up, save the group image, measure
    Restore,   //!< measure from the group image (latency override)
    ImageOnly, //!< warm up and save the image only — no measurement
};

/** Wire token of a mode ("cold" / "build" / "restore" / "image"). */
const char *leaseModeName(LeaseMode mode);
/** Inverse of leaseModeName; false on an unknown token. */
bool leaseModeFromName(const std::string &name, LeaseMode &out);

constexpr std::size_t kNoAlias = ~std::size_t{0};

/** One expanded (figure bar, seed) cell. */
struct CampaignBar
{
    std::size_t index = 0;  //!< position in expansion order
    std::string figureId;   //!< registry id the bar came from
    std::string name;       //!< "<figure>:<bar>" or "...@s<seed>"
    MachineConfig config;   //!< fully resolved (spec + flags + seed)
    std::string key;        //!< content-address (stats::resultKey)
    std::string configDigest;
    std::uint64_t seed = 0;
    std::string groupKey;   //!< warm-image identity (warmGroupKey)
    /**
     * Warm-up execution mode of the bar (the figure's registry
     * default, unless --warmup-mode overrides it). Folded into
     * groupKey: bars warmed in different modes never share an image.
     */
    ExecMode warmupMode = ExecMode::Timing;
    /**
     * When another bar earlier in expansion order has the same key,
     * its index: this bar is an alias — never leased, it shares the
     * primary's cached result and fate.
     */
    std::size_t aliasOf = kNoAlias;
};

struct CampaignPlan
{
    CampaignSpec spec;
    std::vector<CampaignBar> bars;
    /** Measurement execution mode (--exec-mode; Timing by default). */
    ExecMode execMode = ExecMode::Timing;
    /**
     * Sampled-measurement schedule (--sample-*; disabled by default).
     * Folded into every bar key, so sampled and exact cells never
     * alias in the cache; warm images are shared either way, since
     * sampling only shapes the measurement phase.
     */
    sample::SampleSpec sample;
    /**
     * Checkpoint groups: groupKey -> member indices (ascending,
     * aliases excluded), only for groups with >= 2 members. The
     * first member is the group's builder.
     */
    std::map<std::string, std::vector<std::size_t>> groups;
};

/**
 * The warm-image identity of a configuration: the config digest with
 * name, integration level and L2 implementation canonicalized away —
 * exactly the knobs fromCheckpoint(path, level, l2Impl) may override
 * on restore — plus the warm-up execution mode that produced (or will
 * produce) the image. Two bars share a warm image iff their keys are
 * equal; an image warmed atomically never masquerades as a
 * timing-warmed one (checkpoint META enforces the same at restore).
 */
std::string warmGroupKey(const MachineConfig &config,
                         ExecMode warmup_mode);

/**
 * Expand a spec against the figure registry. Fatal on an unknown
 * figure id. `options` supplies the txns/warmup/seed overrides that
 * beat the spec's (flags win; the spec's seed axis beats --seed).
 */
CampaignPlan expandCampaign(const CampaignSpec &spec,
                            const RunOptions &options);

struct Lease
{
    std::size_t index = 0; //!< bar index (builder's, for ImageOnly)
    LeaseMode mode = LeaseMode::Cold;
};

/** Scheduler tallies, for the end-of-run summary line. */
struct CampaignTally
{
    std::size_t total = 0;   //!< bars incl. aliases
    std::size_t aliases = 0;
    std::size_t cached = 0;  //!< primaries skipped via the cache
    std::size_t ran = 0;     //!< primaries measured this session
    std::size_t failed = 0;
    std::size_t imagesBuilt = 0;    //!< Build + ImageOnly completions
    std::size_t imagesRestored = 0; //!< Restore completions
    std::size_t coldRuns = 0;
};

/**
 * The lease state machine. Single-threaded by design: the
 * supervisor's poll loop (and the in-process runner) is the only
 * caller. Construction scans `out_dir` for cached bar results and
 * existing warm images; next()/complete()/fail()/requeue() then
 * drive every bar to Done, Cached or Failed.
 */
class CampaignQueue
{
  public:
    CampaignQueue(const CampaignPlan &plan, const std::string &out_dir);

    /**
     * Next lease in bar-index order, or nullopt when nothing is
     * leasable right now (all resolved, or the rest are waiting on
     * an in-flight image build).
     */
    std::optional<Lease> next();

    void complete(const Lease &lease);
    void fail(const Lease &lease, const std::string &reason);
    /** Undo a lease whose worker died; the bar becomes Pending. */
    void requeue(const Lease &lease);

    /** Every bar resolved and no image work outstanding. */
    bool finished() const;

    /** Whether the bar (alias-resolved) holds a valid result. */
    bool barOk(std::size_t index) const;
    /** Failure reason of a failed bar ("" otherwise). */
    const std::string &failReason(std::size_t index) const;

    const CampaignTally &tally() const { return tally_; }

  private:
    enum class State : std::uint8_t {
        Cached,  //!< valid result found on disk at construction
        Pending,
        Leased,
        Done,    //!< measured this session
        Failed,
    };

    struct Group
    {
        std::vector<std::size_t> members; //!< ascending; [0] builds
        bool imageReady = false;
        bool imageLeased = false; //!< an ImageOnly lease is out
    };

    std::size_t resolveAlias(std::size_t index) const;
    Group *groupOf(std::size_t index);
    /** Fail every still-pending member of a group (builder broke). */
    void cascadeFail(Group &group, const std::string &reason);

    const CampaignPlan &plan_;
    std::vector<State> state_;
    std::vector<std::string> reason_;
    std::map<std::string, Group> groups_;
    CampaignTally tally_;
};

} // namespace campaign
} // namespace isim

#endif // ISIM_CAMPAIGN_QUEUE_HH
