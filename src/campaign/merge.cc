/**
 * @file
 * Campaign manifest merge.
 */

#include "src/campaign/merge.hh"

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/campaign/cache.hh"
#include "src/stats/manifest.hh"

namespace isim {
namespace campaign {

namespace {

JsonValue
makeString(const std::string &text)
{
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.text = text;
    return v;
}

JsonValue
makeNumber(double number)
{
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = number;
    return v;
}

/**
 * The bar's "meta" object for the merged document. Only sim_wall_ms
 * (simulated time) ever appears here: host_wall_ms is nondeterministic
 * and would break campaign.json byte-stability across resumes.
 */
JsonValue
makeMeta(const CampaignBar &bar, const BarStatus &status,
         double sim_wall_ms, const stats::BarMeta *file_meta)
{
    JsonValue meta;
    meta.kind = JsonValue::Kind::Object;
    meta.members.emplace_back("key", makeString(bar.key));
    meta.members.emplace_back("config_digest",
                              makeString(bar.configDigest));
    meta.members.emplace_back("seed",
                              makeNumber(static_cast<double>(bar.seed)));
    meta.members.emplace_back("schema_version",
                              makeNumber(stats::kManifestVersion));
    if (sim_wall_ms >= 0.0)
        meta.members.emplace_back("sim_wall_ms",
                                  makeNumber(sim_wall_ms));
    // The sampling-schedule echo rides along from the cached bar
    // file (deterministic, so byte-stability is preserved).
    if (file_meta != nullptr && !file_meta->sampleMode.empty()) {
        meta.members.emplace_back("sample_mode",
                                  makeString(file_meta->sampleMode));
        meta.members.emplace_back(
            "sample_ff",
            makeNumber(static_cast<double>(file_meta->sampleFf)));
        meta.members.emplace_back(
            "sample_measure",
            makeNumber(static_cast<double>(file_meta->sampleMeasure)));
        meta.members.emplace_back(
            "sample_warm",
            makeNumber(static_cast<double>(file_meta->sampleWarm)));
        meta.members.emplace_back(
            "sample_windows",
            makeNumber(static_cast<double>(file_meta->sampleWindows)));
    }
    meta.members.emplace_back(
        "status", makeString(status.ok ? "ok" : "failed"));
    if (!status.ok && !status.reason.empty())
        meta.members.emplace_back("reason",
                                  makeString(status.reason));
    return meta;
}

} // namespace

std::string
mergeCampaignJson(const CampaignPlan &plan, const std::string &out_dir,
                  const std::vector<BarStatus> &status)
{
    isim_assert(status.size() == plan.bars.size(),
                "one status per bar");

    std::string out;
    out += "{\n";
    out += "  \"schema\": \"";
    out += stats::kManifestSchema;
    out += "\",\n  \"version\": ";
    out += std::to_string(stats::kManifestVersion);
    out += ",\n  \"figure\": \"";
    out += jsonEscape(plan.spec.name);
    out += "\",\n  \"title\": \"campaign\",\n  \"bars\": [\n";

    for (const CampaignBar &bar : plan.bars) {
        const BarStatus &st = status[bar.index];
        double simWallMs = -1.0;
        stats::BarMeta fileMeta;
        bool haveMeta = false;
        JsonValue statsObj;
        statsObj.kind = JsonValue::Kind::Object;
        JsonValue samplingObj;
        bool haveSampling = false;
        if (st.ok) {
            // Aliases read the same key file as their primary.
            const std::string path = barStatsPath(out_dir, bar.key);
            JsonValue doc;
            std::string err;
            if (!jsonParse(readFileOrDie(path), doc, &err))
                isim_fatal("campaign merge: %s: %s", path.c_str(),
                           err.c_str());
            const std::vector<stats::BarMetaView> meta =
                stats::manifestMeta(doc);
            if (meta.empty() || meta.front().meta.key != bar.key)
                isim_fatal("campaign merge: %s does not hold key %s",
                           path.c_str(), bar.key.c_str());
            simWallMs = meta.front().meta.simWallMs;
            fileMeta = meta.front().meta;
            haveMeta = true;
            const JsonValue &bars = doc.at("bars");
            isim_assert(bars.isArray() && !bars.array.empty());
            statsObj = bars.array.front().at("stats");
            if (const JsonValue *s =
                    bars.array.front().get("sampling")) {
                samplingObj = *s;
                haveSampling = true;
            }
        }

        JsonValue barObj;
        barObj.kind = JsonValue::Kind::Object;
        barObj.members.emplace_back("name", makeString(bar.name));
        barObj.members.emplace_back(
            "meta", makeMeta(bar, st, simWallMs,
                             haveMeta ? &fileMeta : nullptr));
        barObj.members.emplace_back("stats", std::move(statsObj));
        if (haveSampling)
            barObj.members.emplace_back("sampling",
                                        std::move(samplingObj));

        out += "    ";
        out += jsonToText(barObj);
        out += bar.index + 1 < plan.bars.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";

    std::string err;
    if (!jsonValidate(out, &err))
        isim_panic("campaign merge emitted invalid JSON: %s",
                   err.c_str());
    return out;
}

} // namespace campaign
} // namespace isim
