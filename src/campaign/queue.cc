/**
 * @file
 * Campaign expansion and lease scheduling.
 */

#include "src/campaign/queue.hh"

#include <filesystem>
#include <set>

#include "src/base/logging.hh"
#include "src/campaign/cache.hh"
#include "src/ckpt/checkpoint.hh"
#include "src/core/registry.hh"
#include "src/stats/manifest.hh"

namespace isim {
namespace campaign {

const char *
leaseModeName(LeaseMode mode)
{
    switch (mode) {
      case LeaseMode::Cold:
        return "cold";
      case LeaseMode::Build:
        return "build";
      case LeaseMode::Restore:
        return "restore";
      case LeaseMode::ImageOnly:
        return "image";
    }
    isim_panic("bad LeaseMode %d", static_cast<int>(mode));
}

bool
leaseModeFromName(const std::string &name, LeaseMode &out)
{
    if (name == "cold")
        out = LeaseMode::Cold;
    else if (name == "build")
        out = LeaseMode::Build;
    else if (name == "restore")
        out = LeaseMode::Restore;
    else if (name == "image")
        out = LeaseMode::ImageOnly;
    else
        return false;
    return true;
}

std::string
warmGroupKey(const MachineConfig &config, ExecMode warmup_mode)
{
    // Canonicalize exactly the knobs a latency-override restore may
    // change (plus the name, which is a label, not state): what is
    // left — geometry, workload, seed, CPU model, memory layout —
    // must match the image bit-for-bit for a restore to be valid.
    MachineConfig canon = config;
    canon.name = "";
    canon.level = IntegrationLevel::Base;
    canon.l2Impl = L2Impl::OffchipDirect;
    std::vector<std::uint8_t> bytes = ckpt::configBytes(canon);
    // The producing warm-up mode is part of the image's identity:
    // checkpoint META records it and restore rejects a mismatch, so
    // bars warmed differently must land in different groups.
    bytes.push_back(static_cast<std::uint8_t>(warmup_mode));
    return stats::hex64(ckpt::fnv1a64(bytes.data(), bytes.size()));
}

CampaignPlan
expandCampaign(const CampaignSpec &spec, const RunOptions &options)
{
    CampaignPlan plan;
    plan.spec = spec;
    plan.execMode = options.effectiveExecMode();
    plan.sample = options.sample;

    // Resolve figure ids like `isim-fig run` does (exact id first,
    // then prefix expansion), deduplicated in resolution order.
    const FigureRegistry &registry = FigureRegistry::instance();
    std::vector<const FigureEntry *> entries;
    std::set<std::string> seenIds;
    for (const std::string &id : spec.figures) {
        const std::vector<const FigureEntry *> matches =
            registry.resolve(id);
        if (matches.empty())
            isim_fatal("campaign '%s': unknown figure '%s'",
                       spec.name.c_str(), id.c_str());
        for (const FigureEntry *entry : matches) {
            if (seenIds.insert(entry->id).second)
                entries.push_back(entry);
        }
    }

    // Seed axis outermost, figures in resolution order inside, bars
    // in figure order innermost. With no seed axis there is exactly
    // one pass, under each bar's own (possibly --seed-overridden)
    // seed.
    std::vector<std::optional<std::uint64_t>> seedAxis;
    if (spec.seeds.empty()) {
        seedAxis.push_back(std::nullopt);
    } else {
        for (const std::uint64_t seed : spec.seeds)
            seedAxis.push_back(seed);
    }

    for (const std::optional<std::uint64_t> &seed : seedAxis) {
        for (const FigureEntry *entry : entries) {
            const FigureSpec figure = entry->make();
            const ExecMode warmupMode =
                options.effectiveWarmupMode(figure.warmupMode);
            for (const FigureBar &fb : figure.bars) {
                MachineConfig cfg = fb.config;
                // Spec overrides first, then flags on top (flags
                // win), then the seed axis (which beats --seed).
                if (spec.txns)
                    cfg.workload.transactions = *spec.txns;
                if (spec.warmup)
                    cfg.workload.warmupTransactions = *spec.warmup;
                options.applyTo(cfg.workload);
                if (seed)
                    cfg.workload.seed = *seed;

                CampaignBar bar;
                bar.index = plan.bars.size();
                bar.figureId = entry->id;
                bar.name = entry->id + ":" + cfg.name;
                if (seed)
                    bar.name += "@s" + std::to_string(*seed);
                bar.config = cfg;
                const std::vector<std::uint8_t> bytes =
                    ckpt::configBytes(cfg);
                bar.key = stats::resultKey(bytes, cfg.workload.seed,
                                           options.sample);
                bar.configDigest = stats::configDigest(bytes);
                bar.seed = cfg.workload.seed;
                bar.warmupMode = warmupMode;
                bar.groupKey = warmGroupKey(cfg, warmupMode);
                plan.bars.push_back(std::move(bar));
            }
        }
    }

    // Bar names address stats ("<bar>/<stat>") in the merged
    // manifest; a clash would be unreportable.
    std::set<std::string> names;
    for (const CampaignBar &bar : plan.bars) {
        if (!names.insert(bar.name).second)
            isim_fatal("campaign '%s': duplicate bar name '%s'",
                       spec.name.c_str(), bar.name.c_str());
    }

    // Identical cells (same key) collapse to one lease: the later
    // bar aliases the first and shares its cached result.
    std::map<std::string, std::size_t> firstByKey;
    for (CampaignBar &bar : plan.bars) {
        const auto [it, fresh] =
            firstByKey.emplace(bar.key, bar.index);
        if (!fresh)
            bar.aliasOf = it->second;
    }

    // Checkpoint groups (aliases excluded — they never run).
    std::map<std::string, std::vector<std::size_t>> byGroup;
    for (const CampaignBar &bar : plan.bars) {
        if (bar.aliasOf == kNoAlias)
            byGroup[bar.groupKey].push_back(bar.index);
    }
    for (auto &[key, members] : byGroup) {
        if (members.size() >= 2)
            plan.groups.emplace(key, std::move(members));
    }
    return plan;
}

CampaignQueue::CampaignQueue(const CampaignPlan &plan,
                             const std::string &out_dir)
    : plan_(plan)
{
    state_.resize(plan.bars.size(), State::Pending);
    reason_.resize(plan.bars.size());
    tally_.total = plan.bars.size();
    for (const CampaignBar &bar : plan.bars) {
        if (bar.aliasOf != kNoAlias) {
            ++tally_.aliases;
            continue;
        }
        if (barResultCached(barStatsPath(out_dir, bar.key), bar.key)) {
            state_[bar.index] = State::Cached;
            ++tally_.cached;
        }
    }
    for (const auto &[key, members] : plan.groups) {
        Group group;
        group.members = members;
        group.imageReady =
            std::filesystem::exists(imagePath(out_dir, key));
        groups_.emplace(key, std::move(group));
    }
}

std::size_t
CampaignQueue::resolveAlias(std::size_t index) const
{
    const std::size_t primary = plan_.bars[index].aliasOf;
    return primary == kNoAlias ? index : primary;
}

CampaignQueue::Group *
CampaignQueue::groupOf(std::size_t index)
{
    const auto it = groups_.find(plan_.bars[index].groupKey);
    return it == groups_.end() ? nullptr : &it->second;
}

std::optional<Lease>
CampaignQueue::next()
{
    for (const CampaignBar &bar : plan_.bars) {
        const std::size_t i = bar.index;
        if (bar.aliasOf != kNoAlias)
            continue;
        Group *group = groupOf(i);
        if (group == nullptr) {
            if (state_[i] == State::Pending) {
                state_[i] = State::Leased;
                return Lease{i, LeaseMode::Cold};
            }
            continue;
        }
        const bool builder = group->members.front() == i;
        if (builder) {
            if (state_[i] == State::Pending) {
                state_[i] = State::Leased;
                return Lease{i, group->imageReady
                                    ? LeaseMode::Restore
                                    : LeaseMode::Build};
            }
            // A cached builder with members still waiting on a
            // missing image regenerates it without re-measuring.
            if (state_[i] == State::Cached && !group->imageReady &&
                !group->imageLeased) {
                bool pendingMember = false;
                for (const std::size_t m : group->members)
                    pendingMember |= state_[m] == State::Pending;
                if (pendingMember) {
                    group->imageLeased = true;
                    return Lease{i, LeaseMode::ImageOnly};
                }
            }
            continue;
        }
        // Non-builder members measure from the image only: a cold
        // run would warm under different latencies and produce a
        // result the campaign could never reproduce on resume.
        if (state_[i] == State::Pending && group->imageReady) {
            state_[i] = State::Leased;
            return Lease{i, LeaseMode::Restore};
        }
    }
    return std::nullopt;
}

void
CampaignQueue::complete(const Lease &lease)
{
    Group *group = groupOf(lease.index);
    if (lease.mode == LeaseMode::ImageOnly) {
        isim_assert(group != nullptr);
        group->imageReady = true;
        group->imageLeased = false;
        ++tally_.imagesBuilt;
        return;
    }
    isim_assert(state_[lease.index] == State::Leased,
                "completing a lease that is not out");
    state_[lease.index] = State::Done;
    ++tally_.ran;
    switch (lease.mode) {
      case LeaseMode::Build:
        isim_assert(group != nullptr);
        group->imageReady = true;
        ++tally_.imagesBuilt;
        break;
      case LeaseMode::Restore:
        ++tally_.imagesRestored;
        break;
      case LeaseMode::Cold:
        ++tally_.coldRuns;
        break;
      case LeaseMode::ImageOnly:
        break; // handled above
    }
}

void
CampaignQueue::fail(const Lease &lease, const std::string &reason)
{
    Group *group = groupOf(lease.index);
    if (lease.mode == LeaseMode::ImageOnly) {
        isim_assert(group != nullptr);
        group->imageLeased = false;
        // The builder keeps its cached result; only the members
        // waiting on the image are lost.
        cascadeFail(*group, "warm image build failed: " + reason);
        return;
    }
    isim_assert(state_[lease.index] == State::Leased,
                "failing a lease that is not out");
    state_[lease.index] = State::Failed;
    reason_[lease.index] = reason;
    ++tally_.failed;
    if (lease.mode == LeaseMode::Build) {
        isim_assert(group != nullptr);
        cascadeFail(*group, "warm image build failed: " + reason);
    }
}

void
CampaignQueue::cascadeFail(Group &group, const std::string &reason)
{
    for (const std::size_t m : group.members) {
        if (state_[m] != State::Pending)
            continue;
        state_[m] = State::Failed;
        reason_[m] = reason;
        ++tally_.failed;
    }
}

void
CampaignQueue::requeue(const Lease &lease)
{
    Group *group = groupOf(lease.index);
    if (lease.mode == LeaseMode::ImageOnly) {
        isim_assert(group != nullptr);
        group->imageLeased = false;
        return;
    }
    isim_assert(state_[lease.index] == State::Leased,
                "requeueing a lease that is not out");
    state_[lease.index] = State::Pending;
}

bool
CampaignQueue::finished() const
{
    for (const CampaignBar &bar : plan_.bars) {
        if (bar.aliasOf != kNoAlias)
            continue;
        const State st = state_[bar.index];
        if (st == State::Pending || st == State::Leased)
            return false;
    }
    return true;
}

bool
CampaignQueue::barOk(std::size_t index) const
{
    const State st = state_[resolveAlias(index)];
    return st == State::Cached || st == State::Done;
}

const std::string &
CampaignQueue::failReason(std::size_t index) const
{
    return reason_[resolveAlias(index)];
}

} // namespace campaign
} // namespace isim
