/**
 * @file
 * Campaign supervisor: in-process runner and the fork/exec pool.
 */

#include "src/campaign/supervisor.hh"

#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/base/logging.hh"
#include "src/campaign/cache.hh"
#include "src/campaign/merge.hh"
#include "src/campaign/protocol.hh"
#include "src/campaign/worker.hh"

namespace isim {
namespace campaign {

namespace {

/** Resolve our own binary for re-exec (--worker mode). */
std::string
selfExePath(const std::string &fallback)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return fallback;
}

/**
 * Guard against resuming into a different study: the output
 * directory remembers the spec bytes it was created for.
 */
void
checkSpecCopy(const CampaignRunConfig &config)
{
    switch (specDrift(config.specPath, config.outDir)) {
      case SpecDrift::Match:
        return;
      case SpecDrift::Drifted:
        isim_fatal("'%s' was created for a different spec than "
                   "'%s'; use a fresh --out directory (or restore "
                   "the original spec) instead of mixing studies",
                   config.outDir.c_str(), config.specPath.c_str());
        return;
      case SpecDrift::Missing:
        writeFileAtomic(config.outDir + "/campaign.spec.json",
                        readFileOrDie(config.specPath));
        return;
    }
}

/** Worker threads per process (must match the worker's own math). */
unsigned
threadsPerWorker(const RunOptions &options)
{
    if (options.jobs > 0)
        return options.jobs;
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    return std::max(1u, hw / std::max(1u, options.procs));
}

void
finishSummary(const CampaignSpec &spec, const CampaignTally &tally)
{
    isim_inform("campaign '%s': %zu bars (%zu aliases): %zu cached, "
                "%zu ran, %zu failed; images built=%zu restored=%zu",
                spec.name.c_str(), tally.total, tally.aliases,
                tally.cached, tally.ran, tally.failed,
                tally.imagesBuilt, tally.imagesRestored);
}

/** Merge the finished queue into campaign.json; the final exit code. */
int
mergeAndReport(const CampaignRunConfig &config,
               const CampaignPlan &plan, const CampaignQueue &queue)
{
    std::vector<BarStatus> status(plan.bars.size());
    for (const CampaignBar &bar : plan.bars) {
        status[bar.index].ok = queue.barOk(bar.index);
        status[bar.index].reason = queue.failReason(bar.index);
    }
    const std::string merged =
        mergeCampaignJson(plan, config.outDir, status);
    writeFileAtomic(config.outDir + "/campaign.json", merged);
    finishSummary(plan.spec, queue.tally());
    return queue.tally().failed == 0 ? 0 : 2;
}

// ----------------------------------------------------------------
// In-process runner (--procs=1): sequential, no pipes involved.
// ----------------------------------------------------------------

int
runInProcess(const CampaignRunConfig &config, const CampaignPlan &plan)
{
    CampaignQueue queue(plan, config.outDir);
    long completions = 0;
    for (;;) {
        if (config.stopAfter >= 0 && completions >= config.stopAfter &&
            !queue.finished()) {
            finishSummary(plan.spec, queue.tally());
            isim_inform("campaign '%s': stopped after %ld "
                        "completions; rerun to resume",
                        plan.spec.name.c_str(), completions);
            return 3;
        }
        const std::optional<Lease> lease = queue.next();
        if (!lease) {
            isim_assert(queue.finished(),
                        "scheduler stalled with work remaining");
            break;
        }
        const CampaignBar &bar = plan.bars[lease->index];
        if (config.options.verbose)
            isim_inform("campaign: %s %s", leaseModeName(lease->mode),
                        bar.name.c_str());
        BarOutcome outcome;
        {
            const ScopedPanicThrow guard;
            outcome = runLeasedBar(plan, *lease, config.outDir);
        }
        if (outcome.ok) {
            queue.complete(*lease);
        } else {
            isim_warn("campaign: %s failed: %s", bar.name.c_str(),
                      outcome.reason.c_str());
            queue.fail(*lease, outcome.reason);
        }
        ++completions;
    }
    return mergeAndReport(config, plan, queue);
}

// ----------------------------------------------------------------
// Multi-process pool.
// ----------------------------------------------------------------

struct WorkerProc
{
    pid_t pid = -1;
    int inFd = -1;  //!< write end of the worker's stdin
    int outFd = -1; //!< read end of the worker's stdout
    std::string buf;
    std::vector<Lease> outstanding;
    bool helloSeen = false;
    std::uint64_t progDone = 0;    //!< last PROG: leases finished
    std::uint64_t progRunning = 0; //!< last PROG: leases in flight
};

/** Fork/exec one worker with explicit flags mirroring our options. */
WorkerProc
spawnWorker(const CampaignRunConfig &config, const std::string &exe,
            unsigned threads)
{
    std::vector<std::string> args = {
        exe,
        "--worker",
        "--spec",
        config.specPath,
        "--out",
        config.outDir,
        "--jobs",
        std::to_string(threads),
        "--audit-period",
        std::to_string(config.options.auditPeriod),
        "--quiet",
    };
    if (config.options.txns) {
        args.push_back("--txns");
        args.push_back(std::to_string(*config.options.txns));
    }
    if (config.options.warmup) {
        args.push_back("--warmup");
        args.push_back(std::to_string(*config.options.warmup));
    }
    if (config.options.seed) {
        args.push_back("--seed");
        args.push_back(std::to_string(*config.options.seed));
    }
    // Execution modes shape the plan (warmGroupKey folds the warm-up
    // mode in), so workers must expand under the same overrides or
    // the Hello bar-count/identity check would pass while group keys
    // silently diverge.
    if (config.options.warmupMode) {
        args.push_back("--warmup-mode");
        args.push_back(execModeName(*config.options.warmupMode));
    }
    if (config.options.execMode) {
        args.push_back("--exec-mode");
        args.push_back(execModeName(*config.options.execMode));
    }
    // The sampling schedule is part of every bar's identity
    // (resultKey folds it in), so workers must expand under the same
    // --sample-* flags or their keys would diverge from ours.
    if (config.options.sample.enabled()) {
        const sample::SampleSpec &s = config.options.sample;
        args.push_back("--sample-ff");
        args.push_back(std::to_string(s.ff));
        args.push_back("--sample-measure");
        args.push_back(std::to_string(s.measure));
        if (s.windows) {
            args.push_back("--sample-windows");
            args.push_back(std::to_string(s.windows));
        }
        if (s.warm != sample::kAutoWarm) {
            args.push_back("--sample-warm");
            args.push_back(std::to_string(s.warm));
        }
        args.push_back("--sample-mode");
        args.push_back(sample::sampleModeName(s.mode));
    }
    // Profiling is per-process opt-in: forwarding the flag turns on
    // the self-profiler in each worker, which then writes per-bar
    // prof.json sidecars (the path itself is unused in worker mode).
    if (!config.options.profOut.empty()) {
        args.push_back("--prof-out");
        args.push_back(config.options.profOut);
    }

    int toWorker[2];
    int fromWorker[2];
    if (::pipe(toWorker) != 0 || ::pipe(fromWorker) != 0)
        isim_fatal("pipe() failed: %s", std::strerror(errno));

    const pid_t pid = ::fork();
    if (pid < 0)
        isim_fatal("fork() failed: %s", std::strerror(errno));
    if (pid == 0) {
        ::dup2(toWorker[0], STDIN_FILENO);
        ::dup2(fromWorker[1], STDOUT_FILENO);
        ::close(toWorker[0]);
        ::close(toWorker[1]);
        ::close(fromWorker[0]);
        ::close(fromWorker[1]);
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &arg : args)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        ::execv(exe.c_str(), argv.data());
        // Exec failed; nothing sane to do but die — the supervisor
        // sees EOF and counts a crash.
        ::_exit(127);
    }

    ::close(toWorker[0]);
    ::close(fromWorker[1]);
    WorkerProc w;
    w.pid = pid;
    w.inFd = toWorker[1];
    w.outFd = fromWorker[0];
    return w;
}

void
closeWorker(WorkerProc &w)
{
    if (w.inFd >= 0)
        ::close(w.inFd);
    if (w.outFd >= 0)
        ::close(w.outFd);
    w.inFd = -1;
    w.outFd = -1;
}

/** Blocking waitpid with EINTR retry. */
void
reapWorker(WorkerProc &w)
{
    if (w.pid < 0)
        return;
    int wstatus = 0;
    while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
}

int
runPool(const CampaignRunConfig &config, const CampaignPlan &plan)
{
    // A worker death must surface as EOF on its pipe, not kill us.
    std::signal(SIGPIPE, SIG_IGN);

    CampaignQueue queue(plan, config.outDir);
    const std::string exe = selfExePath(config.exePath);
    const unsigned threads = threadsPerWorker(config.options);
    const unsigned procs = std::max(1u, config.options.procs);

    std::vector<WorkerProc> workers;
    workers.reserve(procs);
    for (unsigned i = 0; i < procs; ++i)
        workers.push_back(spawnWorker(config, exe, threads));

    // Enough respawns to survive a flaky worker, small enough that a
    // deterministic startup crash cannot loop forever.
    unsigned crashBudget = 2 * procs + 4;
    long completions = 0;
    bool stopIssuing = false;

    // Live telemetry (PROG heartbeats). steady_clock only paces the
    // console rendering and the ETA estimate; results never see it.
    using Clock = std::chrono::steady_clock;
    const Clock::time_point poolStart = Clock::now();
    Clock::time_point lastRender = poolStart - std::chrono::hours(1);

    const auto renderProgress = [&](const WorkerProc &w,
                                    const WireMessage &msg) {
        const Clock::time_point now = Clock::now();
        if (now - lastRender < std::chrono::seconds(1))
            return;
        lastRender = now;
        const CampaignTally t = queue.tally();
        const std::size_t settled = t.cached + t.ran + t.failed;
        std::uint64_t running = 0;
        for (const WorkerProc &p : workers)
            if (p.pid >= 0)
                running += p.progRunning;
        std::string eta;
        if (completions > 0 && settled < t.total) {
            const double elapsed =
                std::chrono::duration<double>(now - poolStart).count();
            const double perLease =
                elapsed / static_cast<double>(completions);
            const long remain = std::lround(
                perLease * static_cast<double>(t.total - settled));
            eta = ", ~" + std::to_string(remain) + "s left";
        }
        const char *cell =
            msg.hasCurrent && msg.current < plan.bars.size()
                ? plan.bars[msg.current].name.c_str()
                : "(idle)";
        isim_inform("campaign: %zu/%zu bars settled (%zu cached, %zu "
                    "failed), %llu running, worker %d on %s%s",
                    settled, t.total, t.cached, t.failed,
                    static_cast<unsigned long long>(running),
                    static_cast<int>(w.pid), cell, eta.c_str());
    };

    const auto handleLine = [&](WorkerProc &w,
                                const std::string &line) {
        WireMessage msg;
        std::string err;
        if (!decodeMessage(line, msg, &err))
            isim_fatal("campaign: protocol error from worker %d: %s",
                       static_cast<int>(w.pid), err.c_str());
        if (msg.kind == WireMessage::Kind::Hello) {
            if (msg.version != kProtocolVersion ||
                msg.nbars != plan.bars.size()) {
                isim_fatal("campaign: worker expanded %llu bars, "
                           "supervisor %zu — spec or environment "
                           "drift between processes",
                           static_cast<unsigned long long>(msg.nbars),
                           plan.bars.size());
            }
            w.helloSeen = true;
            return;
        }
        if (msg.kind == WireMessage::Kind::Prog) {
            // Pure telemetry: record the worker's view, maybe render.
            w.progDone = msg.done;
            w.progRunning = msg.running;
            renderProgress(w, msg);
            return;
        }
        if (msg.kind != WireMessage::Kind::Done &&
            msg.kind != WireMessage::Kind::Fail) {
            isim_fatal("campaign: unexpected message from worker: %s",
                       line.c_str());
        }
        const auto it = std::find_if(
            w.outstanding.begin(), w.outstanding.end(),
            [&](const Lease &l) {
                return l.index == msg.index && l.mode == msg.mode;
            });
        if (it == w.outstanding.end())
            isim_fatal("campaign: worker answered for a lease it "
                       "does not hold (bar %zu)",
                       msg.index);
        const Lease lease = *it;
        w.outstanding.erase(it);
        const CampaignBar &bar = plan.bars[lease.index];
        if (msg.kind == WireMessage::Kind::Done) {
            if (config.options.verbose)
                isim_inform("campaign: %s %s",
                            leaseModeName(lease.mode),
                            bar.name.c_str());
            queue.complete(lease);
        } else {
            isim_warn("campaign: %s failed: %s", bar.name.c_str(),
                      msg.reason.c_str());
            queue.fail(lease, msg.reason);
        }
        ++completions;
        if (config.stopAfter >= 0 && completions >= config.stopAfter)
            stopIssuing = true;
    };

    for (;;) {
        // Keep every live worker's pipeline full.
        bool anyOutstanding = false;
        for (WorkerProc &w : workers) {
            if (w.pid < 0)
                continue;
            while (!stopIssuing && w.outstanding.size() < threads) {
                const std::optional<Lease> lease = queue.next();
                if (!lease)
                    break;
                WireMessage msg;
                msg.kind = WireMessage::Kind::Bar;
                msg.index = lease->index;
                msg.mode = lease->mode;
                if (!writeMessage(w.inFd, msg)) {
                    // Dead worker; the EOF path below reaps it.
                    queue.requeue(*lease);
                    break;
                }
                w.outstanding.push_back(*lease);
            }
            anyOutstanding |= !w.outstanding.empty();
        }
        if (!anyOutstanding && (stopIssuing || queue.finished()))
            break;

        std::vector<pollfd> fds;
        std::vector<std::size_t> who;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (workers[i].pid < 0)
                continue;
            fds.push_back({workers[i].outFd, POLLIN, 0});
            who.push_back(i);
        }
        if (fds.empty())
            isim_fatal("campaign: every worker is gone with work "
                       "remaining");
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            isim_fatal("poll() failed: %s", std::strerror(errno));
        }

        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (fds[k].revents == 0)
                continue;
            WorkerProc &w = workers[who[k]];
            char chunk[4096];
            const ssize_t n = ::read(w.outFd, chunk, sizeof(chunk));
            if (n > 0) {
                w.buf.append(chunk, static_cast<std::size_t>(n));
                std::size_t pos;
                while ((pos = w.buf.find('\n')) !=
                       std::string::npos) {
                    const std::string line = w.buf.substr(0, pos);
                    w.buf.erase(0, pos + 1);
                    handleLine(w, line);
                }
                continue;
            }
            if (n < 0 && (errno == EINTR || errno == EAGAIN))
                continue;
            // EOF: the worker died (or exited on a protocol error).
            // Its leases go back to the queue; a replacement keeps
            // the pool at strength unless we are already draining.
            isim_warn("campaign: worker %d died with %zu leases in "
                      "flight; requeueing",
                      static_cast<int>(w.pid), w.outstanding.size());
            for (const Lease &lease : w.outstanding)
                queue.requeue(lease);
            w.outstanding.clear();
            closeWorker(w);
            reapWorker(w);
            if (!stopIssuing && !queue.finished()) {
                if (crashBudget == 0)
                    isim_fatal("campaign: workers keep crashing; "
                               "giving up");
                --crashBudget;
                w = spawnWorker(config, exe, threads);
            }
        }
    }

    // Drain: tell everyone to finish up, then reap.
    for (WorkerProc &w : workers) {
        if (w.pid < 0)
            continue;
        WireMessage quit;
        quit.kind = WireMessage::Kind::Quit;
        writeMessage(w.inFd, quit);
        closeWorker(w);
        reapWorker(w);
    }

    if (stopIssuing && !queue.finished()) {
        finishSummary(plan.spec, queue.tally());
        isim_inform("campaign '%s': stopped after %ld completions; "
                    "rerun to resume",
                    plan.spec.name.c_str(), completions);
        return 3;
    }
    return mergeAndReport(config, plan, queue);
}

} // namespace

SpecDrift
specDrift(const std::string &spec_path, const std::string &out_dir)
{
    std::ifstream existing(out_dir + "/campaign.spec.json",
                           std::ios::binary);
    if (!existing)
        return SpecDrift::Missing;
    std::ostringstream buffer;
    buffer << existing.rdbuf();
    return buffer.str() == readFileOrDie(spec_path)
               ? SpecDrift::Match
               : SpecDrift::Drifted;
}

int
runCampaign(const CampaignRunConfig &config)
{
    const CampaignSpec spec = loadCampaignSpec(config.specPath);
    const CampaignPlan plan = expandCampaign(spec, config.options);
    isim_assert(!plan.bars.empty(), "campaign expands to no bars");

    std::filesystem::create_directories(config.outDir + "/bars");
    std::filesystem::create_directories(config.outDir + "/ckpt");
    checkSpecCopy(config);

    if (config.options.procs <= 1)
        return runInProcess(config, plan);
    return runPool(config, plan);
}

} // namespace campaign
} // namespace isim
