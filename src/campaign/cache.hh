/**
 * @file
 * Campaign result cache: where bar results and warm images live
 * inside a campaign output directory, and how a completed cell is
 * recognized on resume.
 *
 *   <out>/campaign.spec.json   byte copy of the spec (resume guard)
 *   <out>/bars/<key>.stats.json   one single-bar stats manifest per
 *                              completed cell, named by its
 *                              content-address key (stats::resultKey)
 *   <out>/bars/<key>.prof.json self-profile of the cell's run;
 *                              written only in profiling runs
 *                              (docs/PROFILING.md) and never part of
 *                              the cache-hit test or the merge
 *   <out>/ckpt/<group>.ckpt    one warm image per checkpoint group
 *   <out>/campaign.json        the merged campaign manifest
 *
 * A cell is cached exactly when its bar file parses as an isim-stats
 * manifest whose first bar echoes the expected key in META — a
 * half-written or stale file is simply not a hit. All writes go
 * through a temp-file + rename so a kill mid-write never leaves a
 * file that passes that test.
 */

#ifndef ISIM_CAMPAIGN_CACHE_HH
#define ISIM_CAMPAIGN_CACHE_HH

#include <string>

namespace isim {
namespace campaign {

/** `<out>/bars/<key>.stats.json` */
std::string barStatsPath(const std::string &out_dir,
                         const std::string &key);

/** `<out>/bars/<key>.prof.json` (profiling runs only) */
std::string barProfPath(const std::string &out_dir,
                        const std::string &key);

/** `<out>/ckpt/<group_key>.ckpt` */
std::string imagePath(const std::string &out_dir,
                      const std::string &group_key);

/**
 * Whether `path` holds a valid cached result for `key`: it exists,
 * parses as JSON, and its first bar's META key equals `key`.
 */
bool barResultCached(const std::string &path, const std::string &key);

/**
 * Write `contents` to `path` atomically (write `<path>.tmp`, then
 * rename over). Fatal on I/O error.
 */
void writeFileAtomic(const std::string &path,
                     const std::string &contents);

/** Slurp a file; fatal when it cannot be opened. */
std::string readFileOrDie(const std::string &path);

} // namespace campaign
} // namespace isim

#endif // ISIM_CAMPAIGN_CACHE_HH
