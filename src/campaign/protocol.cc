/**
 * @file
 * Wire protocol encoding/decoding and fd writes.
 */

#include "src/campaign/protocol.hh"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace isim {
namespace campaign {

namespace {

/** Strict non-negative integer token. */
bool
parseUintToken(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (errno != 0 || end != tok.c_str() + tok.size() || tok[0] == '-')
        return false;
    out = v;
    return true;
}

bool
fail(std::string *err, const std::string &what)
{
    if (err != nullptr)
        *err = what;
    return false;
}

} // namespace

std::string
encodeMessage(const WireMessage &m)
{
    std::ostringstream os;
    switch (m.kind) {
      case WireMessage::Kind::Hello:
        os << "HELLO " << m.version << ' ' << m.nbars;
        break;
      case WireMessage::Kind::Bar:
        os << "BAR " << m.index << ' ' << leaseModeName(m.mode);
        break;
      case WireMessage::Kind::Done:
        os << "DONE " << m.index << ' ' << leaseModeName(m.mode) << ' '
           << m.key;
        break;
      case WireMessage::Kind::Fail:
        os << "FAIL " << m.index << ' ' << leaseModeName(m.mode) << ' '
           << m.reason;
        break;
      case WireMessage::Kind::Quit:
        os << "QUIT";
        break;
      case WireMessage::Kind::Prog:
        os << "PROG " << m.done << ' ' << m.running << ' ';
        if (m.hasCurrent)
            os << m.current;
        else
            os << '-';
        break;
    }
    os << '\n';
    return os.str();
}

bool
decodeMessage(const std::string &line, WireMessage &out,
              std::string *err)
{
    std::istringstream is(line);
    std::string verb;
    if (!(is >> verb))
        return fail(err, "empty message");

    std::uint64_t v = 0;
    std::string modeTok;
    if (verb == "HELLO") {
        out.kind = WireMessage::Kind::Hello;
        std::string versionTok;
        std::string nbarsTok;
        if (!(is >> versionTok >> nbarsTok))
            return fail(err, "HELLO: missing fields");
        if (!parseUintToken(versionTok, v))
            return fail(err, "HELLO: bad version");
        out.version = static_cast<int>(v);
        if (!parseUintToken(nbarsTok, v))
            return fail(err, "HELLO: bad bar count");
        out.nbars = v;
    } else if (verb == "BAR" || verb == "DONE" || verb == "FAIL") {
        std::string indexTok;
        if (!(is >> indexTok >> modeTok))
            return fail(err, verb + ": missing fields");
        if (!parseUintToken(indexTok, v))
            return fail(err, verb + ": bad index");
        out.index = static_cast<std::size_t>(v);
        if (!leaseModeFromName(modeTok, out.mode))
            return fail(err, verb + ": bad mode '" + modeTok + "'");
        if (verb == "BAR") {
            out.kind = WireMessage::Kind::Bar;
        } else if (verb == "DONE") {
            out.kind = WireMessage::Kind::Done;
            if (!(is >> out.key))
                return fail(err, "DONE: missing key");
        } else {
            out.kind = WireMessage::Kind::Fail;
            std::getline(is, out.reason);
            // Strip the single separating space.
            if (!out.reason.empty() && out.reason.front() == ' ')
                out.reason.erase(0, 1);
        }
    } else if (verb == "PROG") {
        out.kind = WireMessage::Kind::Prog;
        std::string doneTok;
        std::string runningTok;
        std::string currentTok;
        if (!(is >> doneTok >> runningTok >> currentTok))
            return fail(err, "PROG: missing fields");
        if (!parseUintToken(doneTok, v))
            return fail(err, "PROG: bad done count");
        out.done = v;
        if (!parseUintToken(runningTok, v))
            return fail(err, "PROG: bad running count");
        out.running = v;
        if (currentTok == "-") {
            out.hasCurrent = false;
        } else {
            if (!parseUintToken(currentTok, v))
                return fail(err, "PROG: bad current index");
            out.hasCurrent = true;
            out.current = static_cast<std::size_t>(v);
        }
    } else if (verb == "QUIT") {
        out.kind = WireMessage::Kind::Quit;
    } else {
        return fail(err, "unknown verb '" + verb + "'");
    }

    std::string extra;
    if (out.kind != WireMessage::Kind::Fail && (is >> extra))
        return fail(err, verb + ": trailing garbage '" + extra + "'");
    return true;
}

bool
writeMessage(int fd, const WireMessage &m)
{
    const std::string text = encodeMessage(m);
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace campaign
} // namespace isim
