/**
 * @file
 * The supervisor <-> worker wire protocol: newline-terminated ASCII
 * messages over the worker's stdin/stdout pipes.
 *
 *   worker -> supervisor
 *     HELLO <version> <nbars>   handshake: protocol version and the
 *                               worker's independently expanded bar
 *                               count (a plan-mismatch tripwire)
 *     DONE <index> <mode> <key> lease finished; result on disk
 *     FAIL <index> <mode> <reason...>  lease failed (reason is the
 *                               rest of the line, spaces included)
 *     PROG <done> <running> <current>  telemetry heartbeat: leases
 *                               this worker has finished, leases in
 *                               flight, and the most recently started
 *                               bar index ('-' when idle). Emitted on
 *                               every lease start and on a periodic
 *                               timer, so the supervisor can render
 *                               live progress/ETA and detect a hung
 *                               worker. Pure telemetry: a supervisor
 *                               may ignore every PROG line without
 *                               changing campaign results.
 *
 *   supervisor -> worker
 *     BAR <index> <mode>        lease: run bar <index> as <mode>
 *                               (cold | build | restore | image)
 *     QUIT                      finish in-flight leases and exit
 *
 * Messages are short (far below PIPE_BUF) and written with a single
 * write(2) each, so concurrent worker threads never interleave
 * bytes. Anything unparseable is a protocol error — the peer is
 * broken, not chatty.
 */

#ifndef ISIM_CAMPAIGN_PROTOCOL_HH
#define ISIM_CAMPAIGN_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "src/campaign/queue.hh"

namespace isim {
namespace campaign {

// Version 2 added the PROG telemetry heartbeat.
constexpr int kProtocolVersion = 2;

struct WireMessage
{
    enum class Kind : std::uint8_t { Hello, Bar, Done, Fail, Quit, Prog };

    Kind kind = Kind::Quit;
    int version = 0;            //!< Hello
    std::uint64_t nbars = 0;    //!< Hello
    std::size_t index = 0;      //!< Bar / Done / Fail
    LeaseMode mode = LeaseMode::Cold; //!< Bar / Done / Fail
    std::string key;            //!< Done
    std::string reason;         //!< Fail
    std::uint64_t done = 0;     //!< Prog: leases finished by this worker
    std::uint64_t running = 0;  //!< Prog: leases in flight
    bool hasCurrent = false;    //!< Prog: `current` is meaningful
    std::size_t current = 0;    //!< Prog: last-started bar index
};

/** One newline-terminated line for the message. */
std::string encodeMessage(const WireMessage &m);

/**
 * Parse one line (without the trailing newline). False on a
 * malformed message, with a description in `err` when non-null.
 */
bool decodeMessage(const std::string &line, WireMessage &out,
                   std::string *err = nullptr);

/**
 * write(2) the full message to `fd`, retrying on EINTR / partial
 * writes. False when the peer is gone (EPIPE / closed fd).
 */
bool writeMessage(int fd, const WireMessage &m);

} // namespace campaign
} // namespace isim

#endif // ISIM_CAMPAIGN_PROTOCOL_HH
