/**
 * @file
 * Campaign lease execution and the worker protocol loop.
 */

#include "src/campaign/worker.hh"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/logging.hh"
#include "src/campaign/cache.hh"
#include "src/campaign/protocol.hh"
#include "src/prof/profiler.hh"
#include "src/sample/controller.hh"
#include "src/stats/manifest.hh"

namespace isim {
namespace campaign {

namespace {

/** Atomically place the group's warm image (tmp + rename). */
void
saveImageAtomic(const Machine &machine, const std::string &path)
{
    const std::string tmp = path + ".tmp";
    machine.saveCheckpoint(tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        isim_fatal("rename '%s' -> '%s' failed: %s", tmp.c_str(),
                   path.c_str(), ec.message().c_str());
}

/** Newlines would break the line protocol; flatten them. */
std::string
oneLine(std::string text)
{
    std::replace(text.begin(), text.end(), '\n', ' ');
    std::replace(text.begin(), text.end(), '\r', ' ');
    return text;
}

/** Blocking line reader over a file descriptor (worker stdin). */
class FdLineReader
{
  public:
    explicit FdLineReader(int fd) : fd_(fd) {}

    /** False on EOF or a read error. */
    bool
    nextLine(std::string &line)
    {
        for (;;) {
            const std::size_t pos = buf_.find('\n');
            if (pos != std::string::npos) {
                line = buf_.substr(0, pos);
                buf_.erase(0, pos + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

} // namespace

BarOutcome
runLeasedBar(const CampaignPlan &plan, const Lease &lease,
             const std::string &out_dir)
{
    isim_assert(lease.index < plan.bars.size(), "lease out of range");
    const CampaignBar &bar = plan.bars[lease.index];
    const std::string image = imagePath(out_dir, bar.groupKey);
    // A lease runs entirely on this thread, so the thread-local
    // accumulator window IS the bar's profile. The prof.json sidecar
    // never participates in the cache-hit test or the merge, so
    // campaign.json stays byte-identical with or without profiling.
    const bool prof_on = prof::enabled();
    if (prof_on)
        prof::threadReset();
    try {
        std::unique_ptr<Machine> machine;
        switch (lease.mode) {
          case LeaseMode::Cold:
          case LeaseMode::Build:
          case LeaseMode::ImageOnly:
            machine = std::make_unique<Machine>(bar.config);
            machine->runWarmup(bar.warmupMode);
            if (lease.mode != LeaseMode::Cold)
                saveImageAtomic(*machine, image);
            if (lease.mode == LeaseMode::ImageOnly)
                return {true, ""};
            break;
          case LeaseMode::Restore:
            machine = Machine::fromCheckpoint(image, bar.config.level,
                                              bar.config.l2Impl,
                                              bar.warmupMode);
            // A restore is valid only against this bar's group: any
            // other image would measure a different machine. The
            // image's own recorded warm-up mode goes into the key, so
            // a mode mismatch fails here too (fromCheckpoint already
            // rejects it with a clearer message).
            if (warmGroupKey(machine->config(), machine->warmupMode()) !=
                bar.groupKey)
                return {false, "warm image '" + image +
                                   "' does not match the bar's "
                                   "configuration group"};
            break;
        }

        RunResult r;
        if (plan.sample.enabled()) {
            sample::SampleController controller(*machine, plan.sample);
            r = controller.run(plan.execMode);
        } else {
            r = machine->runMeasurement(plan.execMode);
        }
        // A restored machine reports under the image's (builder's)
        // name; the result belongs to this bar.
        r.name = bar.config.name;
        r.resultKey = bar.key;
        r.configDigest = bar.configDigest;
        r.seed = bar.seed;
        if (!r.dbConsistent)
            return {false, "TPC-B consistency check failed"};

        stats::Manifest m;
        m.figure = bar.figureId;
        m.title = "campaign cell";
        stats::ManifestBar mb;
        mb.name = bar.name;
        mb.meta.present = true;
        mb.meta.key = bar.key;
        mb.meta.configDigest = bar.configDigest;
        mb.meta.seed = bar.seed;
        mb.meta.simWallMs = static_cast<double>(r.wallTime) / 1e6;
        // hostWallMs stays unset: the cached bar file must be
        // byte-stable across resumes (docs/CAMPAIGN.md).
        if (r.warmupMode != ExecMode::Timing)
            mb.meta.warmupMode = execModeName(r.warmupMode);
        if (r.execMode != ExecMode::Timing)
            mb.meta.execMode = execModeName(r.execMode);
        if (r.sampling.enabled) {
            mb.meta.sampleMode = sample::sampleModeName(r.sampling.mode);
            mb.meta.sampleFf = r.sampling.ff;
            mb.meta.sampleMeasure = r.sampling.measure;
            mb.meta.sampleWarm = r.sampling.warm;
            mb.meta.sampleWindows = r.sampling.windows;
        }
        mb.stats = r.stats;
        mb.sampling = r.sampling;
        m.bars.push_back(std::move(mb));
        writeFileAtomic(barStatsPath(out_dir, bar.key),
                        stats::manifestToJson(m));
        if (prof_on) {
            writeFileAtomic(barProfPath(out_dir, bar.key),
                            prof::profJson(prof::threadSnapshot()));
        }
        return {true, ""};
    } catch (const PanicError &e) {
        return {false, e.what()};
    }
}

int
workerMain(const std::string &spec_path, const std::string &out_dir,
           const RunOptions &options)
{
    // A dead supervisor surfaces as a failed write, not a signal.
    std::signal(SIGPIPE, SIG_IGN);
    options.applyGlobal();

    // Spec/expansion errors exit(1) here — the supervisor treats the
    // EOF as a crash. Only once leases start do panics throw, so a
    // bad bar unwinds to a FAIL message instead of killing the pool.
    const CampaignSpec spec = loadCampaignSpec(spec_path);
    const CampaignPlan plan = expandCampaign(spec, options);
    setPanicThrow(true);

    WireMessage hello;
    hello.kind = WireMessage::Kind::Hello;
    hello.version = kProtocolVersion;
    hello.nbars = plan.bars.size();
    if (!writeMessage(STDOUT_FILENO, hello))
        return 1;

    std::mutex mu;
    std::condition_variable cv;
    std::deque<Lease> queue;
    bool quit = false;
    std::mutex outMu; // serializes DONE/FAIL/PROG lines

    // Telemetry for PROG heartbeats (docs/CAMPAIGN.md). Pure
    // host-side progress reporting: none of it feeds results.
    std::atomic<std::uint64_t> doneCount{0};
    std::atomic<std::uint64_t> runningCount{0};
    std::atomic<long long> lastStarted{-1};

    const auto emitProg = [&] {
        WireMessage p;
        p.kind = WireMessage::Kind::Prog;
        p.done = doneCount.load(std::memory_order_relaxed);
        p.running = runningCount.load(std::memory_order_relaxed);
        const long long cur = lastStarted.load(std::memory_order_relaxed);
        p.hasCurrent = cur >= 0;
        p.current = cur >= 0 ? static_cast<std::size_t>(cur) : 0;
        const std::lock_guard<std::mutex> lock(outMu);
        writeMessage(STDOUT_FILENO, p);
    };

    const auto serve = [&] {
        for (;;) {
            Lease lease;
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock,
                        [&] { return quit || !queue.empty(); });
                if (queue.empty())
                    return; // quit, and everything drained
                lease = queue.front();
                queue.pop_front();
            }
            runningCount.fetch_add(1, std::memory_order_relaxed);
            lastStarted.store(static_cast<long long>(lease.index),
                              std::memory_order_relaxed);
            emitProg(); // "current cell" telemetry on lease start
            const BarOutcome outcome =
                runLeasedBar(plan, lease, out_dir);
            runningCount.fetch_sub(1, std::memory_order_relaxed);
            doneCount.fetch_add(1, std::memory_order_relaxed);
            WireMessage msg;
            msg.index = lease.index;
            msg.mode = lease.mode;
            if (outcome.ok) {
                msg.kind = WireMessage::Kind::Done;
                msg.key = plan.bars[lease.index].key;
            } else {
                msg.kind = WireMessage::Kind::Fail;
                msg.reason = oneLine(outcome.reason);
            }
            const std::lock_guard<std::mutex> lock(outMu);
            writeMessage(STDOUT_FILENO, msg);
        }
    };

    // Liveness heartbeat: even with no lease activity the supervisor
    // hears from us every couple of seconds. Waits on its own
    // condition variable so a lease notify_one can never be consumed
    // by the ticker instead of a serve thread.
    std::condition_variable hbCv;
    const auto heartbeat = [&] {
        std::unique_lock<std::mutex> lock(mu);
        while (!quit) {
            hbCv.wait_for(lock, std::chrono::seconds(2));
            if (quit)
                break;
            lock.unlock();
            emitProg();
            lock.lock();
        }
    };

    const unsigned threads = std::max(1u, options.jobs);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        pool.emplace_back(serve);
    std::thread ticker(heartbeat);

    int rc = 0;
    FdLineReader in(STDIN_FILENO);
    std::string line;
    while (in.nextLine(line)) {
        WireMessage msg;
        std::string err;
        if (!decodeMessage(line, msg, &err)) {
            isim_warn("campaign worker: protocol error: %s",
                      err.c_str());
            rc = 1;
            break;
        }
        if (msg.kind == WireMessage::Kind::Quit)
            break;
        if (msg.kind != WireMessage::Kind::Bar ||
            msg.index >= plan.bars.size()) {
            isim_warn("campaign worker: unexpected message '%s'",
                      line.c_str());
            rc = 1;
            break;
        }
        {
            const std::lock_guard<std::mutex> lock(mu);
            queue.push_back(Lease{msg.index, msg.mode});
        }
        cv.notify_one();
    }

    {
        const std::lock_guard<std::mutex> lock(mu);
        quit = true;
    }
    cv.notify_all();
    hbCv.notify_all();
    for (std::thread &t : pool)
        t.join();
    ticker.join();
    return rc;
}

} // namespace campaign
} // namespace isim
