/**
 * @file
 * Host-side hierarchical self-profiler (docs/PROFILING.md).
 *
 * A small, deterministic-merge profiler the simulator uses to measure
 * ITSELF: where host wall time goes inside a run (reference
 * generation, functional memory apply, scheduler min-scan, checkpoint
 * I/O, report emission...). It follows the ISIM_OBS one-branch-when-off
 * discipline twice over:
 *
 *  - compile-time: the ISIM_PROF_SCOPE* macros expand to nothing
 *    unless the tree is built with -DISIM_PROF=ON, so the default
 *    build carries zero instrumentation bytes on the hot paths;
 *  - run-time: even in a profiling build, an un-enabled run pays one
 *    relaxed atomic load + branch per scope (bench/micro_prof.cpp
 *    pins the bound).
 *
 * Scopes are named by slash paths over a static node tree
 * ("measure/refgen", "warmup/image_build", "ckpt/save", "report").
 * Hot sites shared by the warm-up and measurement phases use the
 * _PHASED macro, which routes to a warmup/ or measure/ node from a
 * thread-local phase set by Machine::runWarmup/runMeasurement.
 *
 * Accumulation is thread-local (plain uint64 cells, no atomics on the
 * hot path); merging happens only at well-defined quiescent points —
 * collectGlobal() after the runner pool has drained, or
 * threadSnapshot() on the one thread that ran a campaign bar — and
 * sums integers over paths sorted lexicographically, so the merged
 * profile is independent of thread count and scheduling.
 *
 * Host-profile data NEVER enters stats.json / campaign.json: it is
 * emitted as a separate schema-versioned prof.json (profJson()), which
 * is valid even when profiling is compiled out or disabled (an
 * "enabled": false stub), so tools/isim-prof always has something to
 * parse.
 *
 * The profiler deliberately uses std::chrono::steady_clock: it
 * measures the HOST, not the simulation, and never feeds results back
 * into simulated state, so determinism of figure outputs is untouched
 * (isim-lint's determinism rule bans the wall-clock family but not
 * steady_clock for exactly this kind of use).
 */

#ifndef ISIM_PROF_PROFILER_HH
#define ISIM_PROF_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/alloc_hook.hh"

namespace isim {
namespace prof {

/** prof.json schema version ("isim-prof-<N>"). */
constexpr std::uint32_t kProfSchemaVersion = 1;

/** True when the tree was built with -DISIM_PROF=ON. */
bool compiledIn();

/** Runtime enable flag (relaxed; set once before a run, read in scopes). */
void setEnabled(bool on);
bool enabled();

/**
 * A registered scope node. Registration happens once per call site
 * (function-local static in the macros below); the index addresses
 * this node's cell in every thread's accumulator buffer.
 */
struct Node
{
    std::string path;
    std::uint32_t index;
};

/**
 * Intern `path` in the global node table (idempotent; mutex-guarded,
 * cold — runs once per call site per process).
 */
const Node &registerNode(const std::string &path);

/** Thread-local phase used by the _PHASED macros. */
enum class Phase : std::uint8_t { Warmup, Measure };

void setPhase(Phase p);
Phase phase();

/** RAII phase setter (Machine::runWarmup / runMeasurement). */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase p) : prev_(phase()) { setPhase(p); }
    ~ScopedPhase() { setPhase(prev_); }
    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Phase prev_;
};

namespace detail {

/** This thread's accumulator cell for one node. */
struct Cell
{
    std::uint64_t ns = 0;
    std::uint64_t enters = 0;
    std::uint64_t allocs = 0;
};

extern std::atomic<bool> runtimeEnabled;

/** Grow-on-demand access to this thread's cell for `index`. */
Cell &threadCell(std::uint32_t index);

inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace detail

/**
 * RAII timing scope. Construction when profiling is disabled is a
 * single relaxed load + branch; when enabled it stamps steady_clock
 * and the thread's allocation counter, and the destructor folds the
 * deltas into this thread's cell for the node.
 *
 * Use through the ISIM_PROF_SCOPE* macros, never directly (the
 * isim-lint `prof-guard` rule enforces this outside src/prof/): the
 * macros are what vanish in non-profiling builds.
 */
class ProfScope
{
  public:
    explicit ProfScope(const Node &node)
    {
        if (!detail::runtimeEnabled.load(std::memory_order_relaxed))
            return;
        index_ = node.index;
        active_ = true;
        allocStart_ = base::threadAllocCount();
        startNs_ = detail::nowNs();
    }

    /** Phased form: picks the warmup/ or measure/ node variant. */
    ProfScope(const Node &warm, const Node &meas)
    {
        if (!detail::runtimeEnabled.load(std::memory_order_relaxed))
            return;
        const Node &node = phase() == Phase::Warmup ? warm : meas;
        index_ = node.index;
        active_ = true;
        allocStart_ = base::threadAllocCount();
        startNs_ = detail::nowNs();
    }

    ~ProfScope()
    {
        if (!active_)
            return;
        const std::uint64_t end = detail::nowNs();
        detail::Cell &cell = detail::threadCell(index_);
        cell.ns += end >= startNs_ ? end - startNs_ : 0;
        cell.enters += 1;
        cell.allocs += base::threadAllocCount() - allocStart_;
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    std::uint64_t startNs_ = 0;
    std::uint64_t allocStart_ = 0;
    std::uint32_t index_ = 0;
    bool active_ = false;
};

/** One merged node in a snapshot (sorted by path). */
struct ProfEntry
{
    std::string path;
    std::uint64_t ns = 0;
    std::uint64_t enters = 0;
    std::uint64_t allocs = 0;
};

/** A merged profile; entries sorted lexicographically by path. */
struct ProfSnapshot
{
    std::vector<ProfEntry> entries;
};

/**
 * Merge every thread's accumulators (including exited threads').
 * Only call at a quiescent point — after the experiment pool joined —
 * or concurrent scope exits may be torn.
 */
ProfSnapshot collectGlobal();

/** Zero the calling thread's accumulators (campaign per-bar window). */
void threadReset();

/** Snapshot only the calling thread's accumulators. */
ProfSnapshot threadSnapshot();

/**
 * Render a snapshot as schema-versioned prof.json text. `self_ns` is
 * computed here (inclusive minus the sum of direct children, clamped
 * at zero). Always emits a valid document; when profiling is compiled
 * out or was not enabled the result is an `"enabled": false` stub.
 */
std::string profJson(const ProfSnapshot &snapshot);

/** profJson(collectGlobal()) — the figure-run emission path. */
std::string globalProfJson();

} // namespace prof
} // namespace isim

#define ISIM_PROF_CONCAT2(a, b) a##b
#define ISIM_PROF_CONCAT(a, b) ISIM_PROF_CONCAT2(a, b)

#ifdef ISIM_PROF

/**
 * Time the rest of the enclosing block under node `path_literal`.
 * Registration is a once-per-site function-local static; the scope
 * itself is one branch when profiling is not runtime-enabled.
 */
#define ISIM_PROF_SCOPE(path_literal)                                       \
    static const ::isim::prof::Node &ISIM_PROF_CONCAT(isim_prof_node_,      \
                                                      __LINE__) =           \
        ::isim::prof::registerNode(path_literal);                           \
    ::isim::prof::ProfScope ISIM_PROF_CONCAT(isim_prof_scope_, __LINE__)(   \
        ISIM_PROF_CONCAT(isim_prof_node_, __LINE__))

/**
 * Phased scope: accounts under "warmup/<name>" or "measure/<name>"
 * depending on the thread-local phase (see ScopedPhase).
 */
#define ISIM_PROF_SCOPE_PHASED(name_literal)                                \
    static const ::isim::prof::Node &ISIM_PROF_CONCAT(isim_prof_nw_,        \
                                                      __LINE__) =           \
        ::isim::prof::registerNode("warmup/" name_literal);                 \
    static const ::isim::prof::Node &ISIM_PROF_CONCAT(isim_prof_nm_,        \
                                                      __LINE__) =           \
        ::isim::prof::registerNode("measure/" name_literal);                \
    ::isim::prof::ProfScope ISIM_PROF_CONCAT(isim_prof_scope_, __LINE__)(   \
        ISIM_PROF_CONCAT(isim_prof_nw_, __LINE__),                          \
        ISIM_PROF_CONCAT(isim_prof_nm_, __LINE__))

/** RAII phase marker; no-op without ISIM_PROF. */
#define ISIM_PROF_PHASE(phase_enum)                                         \
    ::isim::prof::ScopedPhase ISIM_PROF_CONCAT(isim_prof_phase_,            \
                                               __LINE__)(phase_enum)

#else // !ISIM_PROF

#define ISIM_PROF_SCOPE(path_literal)                                       \
    do {                                                                    \
    } while (0)
#define ISIM_PROF_SCOPE_PHASED(name_literal)                                \
    do {                                                                    \
    } while (0)
#define ISIM_PROF_PHASE(phase_enum)                                         \
    do {                                                                    \
    } while (0)

#endif // ISIM_PROF

#endif // ISIM_PROF_PROFILER_HH
