/**
 * @file
 * Self-profiler registry, thread-local accumulators, and prof.json
 * emission (docs/PROFILING.md).
 */

#include "src/prof/profiler.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/base/json.hh"

namespace isim {
namespace prof {

namespace detail {

std::atomic<bool> runtimeEnabled{false};

namespace {

/**
 * One thread's accumulator buffer. Ownership lives in the global
 * registry (shared_ptr) so a thread's counts survive its exit and are
 * still folded into collectGlobal() — experiment pool threads are
 * joined before the driver emits the profile.
 */
struct ThreadBuf
{
    std::vector<Cell> cells;
};

struct Registry
{
    std::mutex mu;
    std::vector<std::string> paths;   //!< index -> path
    std::map<std::string, Node> nodes; //!< node storage (stable refs)
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local std::shared_ptr<ThreadBuf> tlBuf;

ThreadBuf &
threadBuf()
{
    if (!tlBuf) {
        tlBuf = std::make_shared<ThreadBuf>();
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.bufs.push_back(tlBuf);
    }
    return *tlBuf;
}

std::vector<Cell> &
threadCells()
{
    return threadBuf().cells;
}

} // namespace

Cell &
threadCell(std::uint32_t index)
{
    ThreadBuf &buf = threadBuf();
    if (buf.cells.size() <= index)
        buf.cells.resize(index + 1);
    return buf.cells[index];
}

} // namespace detail

bool
compiledIn()
{
#ifdef ISIM_PROF
    return true;
#else
    return false;
#endif
}

void
setEnabled(bool on)
{
    detail::runtimeEnabled.store(on, std::memory_order_relaxed);
}

bool
enabled()
{
    return detail::runtimeEnabled.load(std::memory_order_relaxed);
}

const Node &
registerNode(const std::string &path)
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.nodes.find(path);
    if (it != r.nodes.end())
        return it->second;
    const auto index = static_cast<std::uint32_t>(r.paths.size());
    r.paths.push_back(path);
    return r.nodes.emplace(path, Node{path, index}).first->second;
}

namespace {

thread_local prof::Phase tlPhase = Phase::Measure;

/** Fold one thread buffer into a path -> totals map. */
void
foldBuf(const std::vector<detail::Cell> &cells,
        const std::vector<std::string> &paths,
        std::map<std::string, ProfEntry> &out)
{
    for (std::size_t i = 0; i < cells.size() && i < paths.size(); ++i) {
        const detail::Cell &c = cells[i];
        if (c.enters == 0 && c.ns == 0)
            continue;
        ProfEntry &e = out[paths[i]];
        e.path = paths[i];
        e.ns += c.ns;
        e.enters += c.enters;
        e.allocs += c.allocs;
    }
}

ProfSnapshot
snapshotFromMap(std::map<std::string, ProfEntry> &merged)
{
    ProfSnapshot snap;
    snap.entries.reserve(merged.size());
    for (auto &kv : merged)
        snap.entries.push_back(std::move(kv.second));
    return snap; // std::map iterates sorted: deterministic order.
}

} // namespace

void
setPhase(Phase p)
{
    tlPhase = p;
}

Phase
phase()
{
    return tlPhase;
}

ProfSnapshot
collectGlobal()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, ProfEntry> merged;
    for (const auto &buf : r.bufs)
        foldBuf(buf->cells, r.paths, merged);
    return snapshotFromMap(merged);
}

void
threadReset()
{
    for (detail::Cell &c : detail::threadCells())
        c = detail::Cell{};
}

ProfSnapshot
threadSnapshot()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, ProfEntry> merged;
    foldBuf(detail::threadCells(), r.paths, merged);
    return snapshotFromMap(merged);
}

std::string
profJson(const ProfSnapshot &snapshot)
{
    // Self time: inclusive minus the sum of direct children (clamped
    // at zero; clock jitter can make children sum past the parent).
    std::map<std::string, std::uint64_t> child_ns;
    for (const ProfEntry &e : snapshot.entries) {
        const auto slash = e.path.rfind('/');
        if (slash != std::string::npos)
            child_ns[e.path.substr(0, slash)] += e.ns;
    }

    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.kv("schema", std::string("isim-prof"));
    w.kv("version", std::uint64_t{kProfSchemaVersion});
    w.kv("enabled", compiledIn() && enabled());
    std::uint64_t total = 0;
    for (const ProfEntry &e : snapshot.entries) {
        if (e.path.find('/') == std::string::npos)
            total += e.ns; // top-level nodes only: no double counting
    }
    w.kv("total_ns", total);
    w.key("nodes");
    w.beginArray();
    for (const ProfEntry &e : snapshot.entries) {
        const auto it = child_ns.find(e.path);
        const std::uint64_t kids = it == child_ns.end() ? 0 : it->second;
        w.beginObject();
        w.kv("path", e.path);
        w.kv("ns", e.ns);
        w.kv("self_ns", e.ns >= kids ? e.ns - kids : 0);
        w.kv("enters", e.enters);
        w.kv("alloc", e.allocs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

std::string
globalProfJson()
{
    return profJson(collectGlobal());
}

} // namespace prof
} // namespace isim
