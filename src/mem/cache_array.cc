/**
 * @file
 * CacheArray implementation.
 */

#include "src/mem/cache_array.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

CacheArray::CacheArray(const CacheGeometry &geometry) : geom_(geometry)
{
    geom_.validate();
    numSets_ = geom_.sets();
    pow2_ = isPowerOf2(numSets_);
    setMask_ = pow2_ ? numSets_ - 1 : 0;
    tagShift_ = pow2_ ? floorLog2(numSets_) : 0;
    lines_.resize(numSets_ * geom_.assoc);
}

CacheLine *
CacheArray::findLine(Addr line_addr)
{
    const std::uint64_t set =
        pow2_ ? (line_addr & setMask_) : (line_addr % numSets_);
    const Addr tag =
        pow2_ ? (line_addr >> tagShift_) : (line_addr / numSets_);
    CacheLine *base = setBase(set);
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        if (base[w].valid() && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const CacheLine *
CacheArray::findLine(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->findLine(line_addr);
}

void
CacheArray::touch(CacheLine &line)
{
    line.lastUse = ++useStamp_;
}

CacheLine &
CacheArray::allocate(Addr line_addr, LineState state, Victim &victim)
{
    const std::uint64_t set =
        pow2_ ? (line_addr & setMask_) : (line_addr % numSets_);
    const Addr tag =
        pow2_ ? (line_addr >> tagShift_) : (line_addr / numSets_);
    CacheLine *base = setBase(set);

    CacheLine *slot = nullptr;
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        isim_assert(!(base[w].valid() && base[w].tag == tag),
                    "allocate of already-resident line");
        if (!base[w].valid()) {
            slot = &base[w];
            break;
        }
    }
    if (slot == nullptr) {
        slot = base;
        for (unsigned w = 1; w < geom_.assoc; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
    }

    victim = Victim{};
    if (slot->valid()) {
        victim.valid = true;
        victim.state = slot->state;
        victim.lineAddr = pow2_ ? ((slot->tag << tagShift_) | set)
                                : (slot->tag * numSets_ + set);
    }

    slot->tag = tag;
    slot->state = state;
    slot->prefetched = false;
    touch(*slot);
    return *slot;
}

void
CacheArray::invalidate(CacheLine &line)
{
    line.state = LineState::Invalid;
}

std::uint64_t
CacheArray::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_)
        if (line.valid())
            ++n;
    return n;
}

Addr
CacheArray::lineAddrOf(const CacheLine &line) const
{
    const std::uint64_t slot = &line - lines_.data();
    isim_assert(slot < lines_.size());
    const std::uint64_t set = slot / geom_.assoc;
    return pow2_ ? ((line.tag << tagShift_) | set)
                 : (line.tag * numSets_ + set);
}

void
CacheArray::forEachValid(
    const std::function<void(Addr, const CacheLine &)> &fn) const
{
    for (const auto &line : lines_) {
        if (line.valid())
            fn(lineAddrOf(line), line);
    }
}

void
CacheArray::saveState(ckpt::Serializer &s) const
{
    s.u64(geom_.sizeBytes);
    s.u32(geom_.assoc);
    s.u32(geom_.lineBytes);
    s.u64(useStamp_);
    // Valid lines only, recorded with their slot index so restore
    // reproduces the exact (set, way) placement — allocate() prefers
    // invalid ways, so placement is behaviour, not just metadata.
    s.u64(validLines());
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const CacheLine &line = lines_[i];
        if (!line.valid())
            continue;
        s.u64(i);
        s.u64(line.tag);
        s.u8(static_cast<std::uint8_t>(line.state));
        s.b(line.prefetched);
        s.u64(line.lastUse);
    }
}

void
CacheArray::restoreState(ckpt::Deserializer &d)
{
    const std::uint64_t size_bytes = d.u64();
    const std::uint32_t assoc = d.u32();
    const std::uint32_t line_bytes = d.u32();
    if (size_bytes != geom_.sizeBytes || assoc != geom_.assoc ||
        line_bytes != geom_.lineBytes)
        isim_fatal("checkpoint cache geometry mismatch: file has "
                   "%llu B / %u-way / %u B lines, this machine has "
                   "%llu B / %u-way / %u B lines",
                   static_cast<unsigned long long>(size_bytes), assoc,
                   line_bytes,
                   static_cast<unsigned long long>(geom_.sizeBytes),
                   geom_.assoc, geom_.lineBytes);
    useStamp_ = d.u64();
    for (auto &line : lines_)
        line = CacheLine{};
    const std::uint64_t valid = d.u64();
    for (std::uint64_t n = 0; n < valid; ++n) {
        const std::uint64_t slot = d.u64();
        if (slot >= lines_.size())
            isim_fatal("checkpoint corrupt: cache slot %llu out of "
                       "range (%zu slots)",
                       static_cast<unsigned long long>(slot),
                       lines_.size());
        CacheLine &line = lines_[slot];
        line.tag = d.u64();
        const std::uint8_t state = d.u8();
        if (state > static_cast<std::uint8_t>(LineState::Modified) ||
            state == static_cast<std::uint8_t>(LineState::Invalid))
            isim_fatal("checkpoint corrupt: cache line state %u", state);
        line.state = static_cast<LineState>(state);
        line.prefetched = d.b();
        line.lastUse = d.u64();
    }
}

} // namespace isim
