/**
 * @file
 * CacheArray implementation.
 */

#include "src/mem/cache_array.hh"

#include "src/base/logging.hh"

namespace isim {

CacheArray::CacheArray(const CacheGeometry &geometry) : geom_(geometry)
{
    geom_.validate();
    numSets_ = geom_.sets();
    pow2_ = isPowerOf2(numSets_);
    setMask_ = pow2_ ? numSets_ - 1 : 0;
    tagShift_ = pow2_ ? floorLog2(numSets_) : 0;
    lines_.resize(numSets_ * geom_.assoc);
}

CacheLine *
CacheArray::findLine(Addr line_addr)
{
    const std::uint64_t set =
        pow2_ ? (line_addr & setMask_) : (line_addr % numSets_);
    const Addr tag =
        pow2_ ? (line_addr >> tagShift_) : (line_addr / numSets_);
    CacheLine *base = setBase(set);
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        if (base[w].valid() && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const CacheLine *
CacheArray::findLine(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->findLine(line_addr);
}

void
CacheArray::touch(CacheLine &line)
{
    line.lastUse = ++useStamp_;
}

CacheLine &
CacheArray::allocate(Addr line_addr, LineState state, Victim &victim)
{
    const std::uint64_t set =
        pow2_ ? (line_addr & setMask_) : (line_addr % numSets_);
    const Addr tag =
        pow2_ ? (line_addr >> tagShift_) : (line_addr / numSets_);
    CacheLine *base = setBase(set);

    CacheLine *slot = nullptr;
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        isim_assert(!(base[w].valid() && base[w].tag == tag),
                    "allocate of already-resident line");
        if (!base[w].valid()) {
            slot = &base[w];
            break;
        }
    }
    if (slot == nullptr) {
        slot = base;
        for (unsigned w = 1; w < geom_.assoc; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
    }

    victim = Victim{};
    if (slot->valid()) {
        victim.valid = true;
        victim.state = slot->state;
        victim.lineAddr = pow2_ ? ((slot->tag << tagShift_) | set)
                                : (slot->tag * numSets_ + set);
    }

    slot->tag = tag;
    slot->state = state;
    slot->prefetched = false;
    touch(*slot);
    return *slot;
}

void
CacheArray::invalidate(CacheLine &line)
{
    line.state = LineState::Invalid;
}

std::uint64_t
CacheArray::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_)
        if (line.valid())
            ++n;
    return n;
}

Addr
CacheArray::lineAddrOf(const CacheLine &line) const
{
    const std::uint64_t slot = &line - lines_.data();
    isim_assert(slot < lines_.size());
    const std::uint64_t set = slot / geom_.assoc;
    return pow2_ ? ((line.tag << tagShift_) | set)
                 : (line.tag * numSets_ + set);
}

void
CacheArray::forEachValid(
    const std::function<void(Addr, const CacheLine &)> &fn) const
{
    for (const auto &line : lines_) {
        if (line.valid())
            fn(lineAddrOf(line), line);
    }
}

} // namespace isim
