/**
 * @file
 * Cache level implementation.
 */

#include "src/mem/cache.hh"

#include <utility>

#include "src/ckpt/serializer.hh"
#include "src/stats/registry.hh"

namespace isim {

void
CacheCounters::registerStats(stats::Registry &r,
                             const std::string &prefix) const
{
    const CacheCounters *c = this;
    r.counter(prefix + ".accesses", "demand accesses", "ops",
              [c] { return c->accesses; });
    r.counter(prefix + ".hits", "demand hits", "ops",
              [c] { return c->hits; });
    r.counter(prefix + ".fills", "lines installed", "lines",
              [c] { return c->fills; });
    r.counter(prefix + ".clean_evictions", "clean lines displaced",
              "lines", [c] { return c->cleanEvictions; });
    r.counter(prefix + ".dirty_evictions", "dirty lines displaced",
              "lines", [c] { return c->dirtyEvictions; });
    r.counter(prefix + ".invals_received",
              "coherence invalidations received", "ops",
              [c] { return c->invalidationsReceived; });
    r.formula(prefix + ".hit_rate", "demand hit rate", "ratio",
              [c] { return c->hitRate(); });
}

Cache::Cache(std::string name, const CacheGeometry &geometry)
    : name_(std::move(name)), array_(geometry)
{
}

CacheLine *
Cache::access(Addr line_addr)
{
    ++counters_.accesses;
    CacheLine *line = array_.findLine(line_addr);
    if (line != nullptr) {
        ++counters_.hits;
        array_.touch(*line);
    }
    return line;
}

Victim
Cache::fill(Addr line_addr, LineState state)
{
    ++counters_.fills;
    Victim victim;
    array_.allocate(line_addr, state, victim);
    if (victim.valid) {
        if (victim.state == LineState::Modified)
            ++counters_.dirtyEvictions;
        else
            ++counters_.cleanEvictions;
    }
    return victim;
}

LineState
Cache::invalidateLine(Addr line_addr)
{
    CacheLine *line = array_.findLine(line_addr);
    if (line == nullptr)
        return LineState::Invalid;
    const LineState prior = line->state;
    ++counters_.invalidationsReceived;
    array_.invalidate(*line);
    return prior;
}

bool
Cache::downgradeLine(Addr line_addr)
{
    CacheLine *line = array_.findLine(line_addr);
    if (line == nullptr || line->state != LineState::Modified)
        return false;
    line->state = LineState::Shared;
    return true;
}

void
Cache::saveState(ckpt::Serializer &s) const
{
    s.u64(counters_.accesses);
    s.u64(counters_.hits);
    s.u64(counters_.fills);
    s.u64(counters_.cleanEvictions);
    s.u64(counters_.dirtyEvictions);
    s.u64(counters_.invalidationsReceived);
    array_.saveState(s);
}

void
Cache::restoreState(ckpt::Deserializer &d)
{
    counters_.accesses = d.u64();
    counters_.hits = d.u64();
    counters_.fills = d.u64();
    counters_.cleanEvictions = d.u64();
    counters_.dirtyEvictions = d.u64();
    counters_.invalidationsReceived = d.u64();
    array_.restoreState(d);
}

} // namespace isim
