/**
 * @file
 * Cache level implementation.
 */

#include "src/mem/cache.hh"

#include <utility>

namespace isim {

Cache::Cache(std::string name, const CacheGeometry &geometry)
    : name_(std::move(name)), array_(geometry)
{
}

CacheLine *
Cache::access(Addr line_addr)
{
    ++counters_.accesses;
    CacheLine *line = array_.findLine(line_addr);
    if (line != nullptr) {
        ++counters_.hits;
        array_.touch(*line);
    }
    return line;
}

Victim
Cache::fill(Addr line_addr, LineState state)
{
    ++counters_.fills;
    Victim victim;
    array_.allocate(line_addr, state, victim);
    if (victim.valid) {
        if (victim.state == LineState::Modified)
            ++counters_.dirtyEvictions;
        else
            ++counters_.cleanEvictions;
    }
    return victim;
}

LineState
Cache::invalidateLine(Addr line_addr)
{
    CacheLine *line = array_.findLine(line_addr);
    if (line == nullptr)
        return LineState::Invalid;
    const LineState prior = line->state;
    ++counters_.invalidationsReceived;
    array_.invalidate(*line);
    return prior;
}

bool
Cache::downgradeLine(Addr line_addr)
{
    CacheLine *line = array_.findLine(line_addr);
    if (line == nullptr || line->state != LineState::Modified)
        return false;
    line->state = LineState::Shared;
    return true;
}

} // namespace isim
