/**
 * @file
 * Cache line permission states shared by the cache models and the
 * directory protocol.
 */

#ifndef ISIM_MEM_LINE_STATE_HH
#define ISIM_MEM_LINE_STATE_HH

#include <cstdint>

namespace isim {

/**
 * MESI permission of a cached line. Within a node the L2 (and RAC)
 * hold one of these; the directory tracks the node-level aggregate
 * (for the directory, Exclusive and Modified are one "owned" state —
 * a probe of the owner's caches distinguishes clean from dirty).
 */
enum class LineState : std::uint8_t {
    Invalid = 0,
    Shared = 1,    //!< read permission, memory copy at home is valid
    Exclusive = 2, //!< sole copy, clean; stores upgrade silently
    Modified = 3,  //!< sole copy, dirty
};

/** True for Exclusive or Modified (sole ownership). */
constexpr bool
lineOwned(LineState state)
{
    return state == LineState::Exclusive || state == LineState::Modified;
}

/** Printable name for a LineState. */
const char *lineStateName(LineState state);

inline const char *
lineStateName(LineState state)
{
    switch (state) {
      case LineState::Invalid:
        return "Invalid";
      case LineState::Shared:
        return "Shared";
      case LineState::Exclusive:
        return "Exclusive";
      case LineState::Modified:
        return "Modified";
    }
    return "?";
}

} // namespace isim

#endif // ISIM_MEM_LINE_STATE_HH
