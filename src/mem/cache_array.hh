/**
 * @file
 * Set-associative tag array with true-LRU replacement.
 *
 * This is a state-only model: it tracks which line addresses are
 * resident and in what permission state, but carries no data (the
 * workloads are functional at the database layer, so cache data payloads
 * are never needed). All timing lives in the latency models.
 */

#ifndef ISIM_MEM_CACHE_ARRAY_HH
#define ISIM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/types.hh"
#include "src/ckpt/fwd.hh"
#include "src/mem/geometry.hh"
#include "src/mem/line_state.hh"

namespace isim {

/** One way of one set. */
struct CacheLine
{
    Addr tag = 0;
    LineState state = LineState::Invalid;
    bool prefetched = false; //!< filled by a prefetch, not yet demanded
    std::uint64_t lastUse = 0; //!< global LRU stamp

    bool valid() const { return state != LineState::Invalid; }
};

/** Result of allocating a way for a fill: the displaced victim, if any. */
struct Victim
{
    bool valid = false;
    Addr lineAddr = 0;
    LineState state = LineState::Invalid;
};

/**
 * The tag array. Lookup, touch (LRU update), allocate-with-victim and
 * invalidate are the only operations; policy decisions (write-backs,
 * inclusion) belong to the owning cache model.
 */
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geometry);

    const CacheGeometry &geometry() const { return geom_; }

    /**
     * Find a resident line. Returns nullptr on miss. Does not update
     * LRU state; call touch() on the returned line for a real access
     * (probes from the coherence protocol should not perturb LRU).
     */
    CacheLine *findLine(Addr line_addr);
    const CacheLine *findLine(Addr line_addr) const;

    /** Mark a line most-recently-used. */
    void touch(CacheLine &line);

    /**
     * Choose a way for line_addr: an invalid way if present, otherwise
     * the LRU way. Fills the line with the new tag in the given state
     * and reports the displaced victim. The caller must have verified
     * the line is not already resident.
     */
    CacheLine &allocate(Addr line_addr, LineState state, Victim &victim);

    /** Drop a line (back-invalidation, protocol invalidation). */
    void invalidate(CacheLine &line);

    /** Number of valid lines currently resident (O(lines), for tests). */
    std::uint64_t validLines() const;

    /** Reconstruct the full line address of a resident line. */
    Addr lineAddrOf(const CacheLine &line) const;

    /** Visit every valid line (for invariant checks). */
    void forEachValid(
        const std::function<void(Addr line_addr, const CacheLine &)> &fn)
        const;

    /**
     * Checkpoint the resident lines (exact set/way placement and LRU
     * stamps). Geometry is configuration; restore verifies it matches.
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    CacheLine *setBase(std::uint64_t set_index)
    {
        return &lines_[set_index * geom_.assoc];
    }
    const CacheLine *setBase(std::uint64_t set_index) const
    {
        return &lines_[set_index * geom_.assoc];
    }

    CacheGeometry geom_;
    // ckpt: transient(numSets_): derived from geom_ at construction
    std::uint64_t numSets_;
    // ckpt: transient(pow2_): derived from geom_ at construction
    bool pow2_;
    // ckpt: transient(setMask_): derived from geom_ at construction
    std::uint64_t setMask_;
    // ckpt: transient(tagShift_): derived from geom_ at construction
    unsigned tagShift_;
    std::uint64_t useStamp_ = 0;
    std::vector<CacheLine> lines_;
};

} // namespace isim

#endif // ISIM_MEM_CACHE_ARRAY_HH
