/**
 * @file
 * RAC implementation.
 */

#include "src/mem/rac.hh"

namespace isim {

Rac::Rac(NodeId node, const CacheGeometry &geometry)
    : node_(node), cache_("rac" + std::to_string(node), geometry)
{
}

CacheLine *
Rac::lookup(Addr line_addr)
{
    ++counters_.lookups;
    CacheLine *line = cache_.access(line_addr);
    if (line != nullptr)
        ++counters_.hits;
    return line;
}

Victim
Rac::install(Addr line_addr, LineState state)
{
    ++counters_.allocations;
    return cache_.fill(line_addr, state);
}

} // namespace isim
