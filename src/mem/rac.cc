/**
 * @file
 * RAC implementation.
 */

#include "src/mem/rac.hh"

#include "src/ckpt/serializer.hh"
#include "src/stats/registry.hh"

namespace isim {

void
RacCounters::registerStats(stats::Registry &r,
                           const std::string &prefix) const
{
    const RacCounters *c = this;
    r.counter(prefix + ".lookups", "demand lookups from the L2 miss path",
              "ops", [c] { return c->lookups; });
    r.counter(prefix + ".hits", "lookups satisfied by the RAC", "ops",
              [c] { return c->hits; });
    r.counter(prefix + ".allocations", "remote lines installed", "lines",
              [c] { return c->allocations; });
    r.counter(prefix + ".dirty_insertions",
              "L2 dirty victims retained dirty in the RAC", "lines",
              [c] { return c->dirtyInsertions; });
    r.counter(prefix + ".dirty_services_to_remote",
              "3-hop misses served from this RAC's dirty data", "ops",
              [c] { return c->dirtyServicesToRemote; });
    r.counter(prefix + ".writebacks_to_home",
              "dirty RAC victims written back to their home", "lines",
              [c] { return c->writebacksToHome; });
    r.formula(prefix + ".hit_rate", "RAC demand hit rate", "ratio",
              [c] { return c->hitRate(); });
}

Rac::Rac(NodeId node, const CacheGeometry &geometry)
    : node_(node), cache_("rac" + std::to_string(node), geometry)
{
}

CacheLine *
Rac::lookup(Addr line_addr)
{
    ++counters_.lookups;
    CacheLine *line = cache_.access(line_addr);
    if (line != nullptr)
        ++counters_.hits;
    return line;
}

Victim
Rac::install(Addr line_addr, LineState state)
{
    ++counters_.allocations;
    return cache_.fill(line_addr, state);
}

void
Rac::saveState(ckpt::Serializer &s) const
{
    s.u64(counters_.lookups);
    s.u64(counters_.hits);
    s.u64(counters_.allocations);
    s.u64(counters_.dirtyInsertions);
    s.u64(counters_.dirtyServicesToRemote);
    s.u64(counters_.writebacksToHome);
    cache_.saveState(s);
}

void
Rac::restoreState(ckpt::Deserializer &d)
{
    counters_.lookups = d.u64();
    counters_.hits = d.u64();
    counters_.allocations = d.u64();
    counters_.dirtyInsertions = d.u64();
    counters_.dirtyServicesToRemote = d.u64();
    counters_.writebacksToHome = d.u64();
    cache_.restoreState(d);
}

} // namespace isim
