/**
 * @file
 * Remote Access Cache (paper Section 6).
 *
 * An off-chip cache that holds only lines whose home is a *remote*
 * node. Its data lives in the node's local main memory (so a hit costs
 * the local-memory latency) while its tags are assumed on-chip for fast
 * lookup — which is why Figure 12 also charges its tag area against the
 * L2 capacity (the 1.25 MB-L2-no-RAC comparison point).
 */

#ifndef ISIM_MEM_RAC_HH
#define ISIM_MEM_RAC_HH

#include <cstdint>
#include <string>

#include "src/ckpt/fwd.hh"
#include "src/mem/cache.hh"

namespace isim {

/** RAC-specific counters, reported in Figures 11/12. */
struct RacCounters
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t allocations = 0;
    std::uint64_t dirtyInsertions = 0; //!< L2 dirty victims retained
    std::uint64_t dirtyServicesToRemote = 0; //!< 3-hop served from RAC
    std::uint64_t writebacksToHome = 0;

    double hitRate() const
    {
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }

    /**
     * Register every counter under `prefix` (e.g. "node0.rac"), plus
     * the hit-rate formula. The struct must outlive the registry.
     */
    void registerStats(stats::Registry &r, const std::string &prefix) const;
};

/**
 * The RAC structure. The protocol engine enforces the remote-lines-only
 * policy and all coherence interactions; this class adds the RAC's own
 * accounting on top of a plain cache.
 */
class Rac
{
  public:
    Rac(NodeId node, const CacheGeometry &geometry);

    NodeId node() const { return node_; }
    const RacCounters &counters() const { return counters_; }
    void resetCounters()
    {
        counters_ = RacCounters{};
        cache_.resetCounters();
    }
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }

    /** Demand lookup from the local L2 miss path. */
    CacheLine *lookup(Addr line_addr);

    /** Install a remote line; returns the displaced victim. */
    Victim install(Addr line_addr, LineState state);

    void noteDirtyInsertion() { ++counters_.dirtyInsertions; }
    void noteDirtyServiceToRemote() { ++counters_.dirtyServicesToRemote; }
    void noteWritebackToHome() { ++counters_.writebacksToHome; }

    /** Checkpoint RAC counters and the underlying cache. */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    // ckpt: transient(node_): construction-time placement, identical by contract
    NodeId node_;
    Cache cache_;
    RacCounters counters_;
};

} // namespace isim

#endif // ISIM_MEM_RAC_HH
