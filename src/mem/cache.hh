/**
 * @file
 * A single cache level: tag array plus bookkeeping counters. Hierarchy
 * policy (inclusion, write-backs, coherence) lives in the protocol
 * engine; this class only answers "is it here, in what state" and
 * performs fills / invalidations.
 */

#ifndef ISIM_MEM_CACHE_HH
#define ISIM_MEM_CACHE_HH

#include <cstdint>
#include <string>

#include "src/ckpt/fwd.hh"
#include "src/mem/cache_array.hh"

namespace isim {

namespace stats {
class Registry;
}

/** Per-cache occupancy/traffic counters (not timing). */
struct CacheCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t fills = 0;
    std::uint64_t cleanEvictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t invalidationsReceived = 0;

    std::uint64_t misses() const { return accesses - hits; }
    double hitRate() const
    {
        return accesses ? static_cast<double>(hits) / accesses : 0.0;
    }

    /**
     * Register every counter under `prefix` (e.g. "node0.l2"), plus a
     * hit-rate formula. The struct must outlive the registry.
     */
    void registerStats(stats::Registry &r, const std::string &prefix) const;
};

/**
 * One level of cache. Line addresses only; no data payloads.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheGeometry &geometry);

    const std::string &name() const { return name_; }
    const CacheGeometry &geometry() const { return array_.geometry(); }
    const CacheCounters &counters() const { return counters_; }
    void resetCounters() { counters_ = CacheCounters{}; }
    CacheArray &array() { return array_; }
    const CacheArray &array() const { return array_; }

    /**
     * Demand access. Updates LRU and hit/miss counters. Returns the
     * resident line or nullptr on miss.
     */
    CacheLine *access(Addr line_addr);

    /** Coherence-side probe: no LRU update, no counters. */
    CacheLine *probe(Addr line_addr) { return array_.findLine(line_addr); }
    const CacheLine *probe(Addr line_addr) const
    {
        return array_.findLine(line_addr);
    }

    /**
     * Install a line in the given state, returning the displaced
     * victim (caller handles write-back / inclusion actions).
     */
    Victim fill(Addr line_addr, LineState state);

    /**
     * Remove the line if present; returns its prior state
     * (Invalid if it was not resident).
     */
    LineState invalidateLine(Addr line_addr);

    /**
     * Downgrade Modified -> Shared if present; returns true if the line
     * was present in Modified state.
     */
    bool downgradeLine(Addr line_addr);

    /** Checkpoint counters and the tag array. */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    // ckpt: transient(name_): construction-time label, identical by contract
    std::string name_;
    CacheArray array_;
    CacheCounters counters_;
};

} // namespace isim

#endif // ISIM_MEM_CACHE_HH
