/**
 * @file
 * Cache geometry: size / associativity / line size and the derived
 * address-slicing arithmetic.
 *
 * Line size must be a power of two; the set count may be arbitrary
 * (the paper's Section 6 evaluates a 1.25 MB L2, which has a
 * non-power-of-two number of sets), so set selection falls back to a
 * modulo when the fast mask path does not apply.
 */

#ifndef ISIM_MEM_GEOMETRY_HH
#define ISIM_MEM_GEOMETRY_HH

#include <string>

#include "src/base/intmath.hh"
#include "src/base/types.hh"

namespace isim {

/**
 * Geometry of a set-associative cache. Addresses handed to the cache
 * models are *line* addresses (byte address >> lineBits); this type
 * performs that slicing.
 */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    unsigned assoc = 1;
    unsigned lineBytes = 64;

    std::uint64_t lines() const { return sizeBytes / lineBytes; }
    std::uint64_t sets() const { return lines() / assoc; }
    unsigned lineBits() const { return floorLog2(lineBytes); }
    bool pow2Sets() const { return isPowerOf2(sets()); }

    /** Byte address -> line address. */
    Addr lineAddr(Addr byte_addr) const { return byte_addr >> lineBits(); }

    /** Line address -> set index. */
    std::uint64_t setIndex(Addr line_addr) const
    {
        const std::uint64_t s = sets();
        return pow2Sets() ? (line_addr & (s - 1)) : (line_addr % s);
    }

    /** Line address -> tag (the bits not consumed by set selection). */
    Addr tagOf(Addr line_addr) const
    {
        const std::uint64_t s = sets();
        return pow2Sets() ? (line_addr >> floorLog2(s)) : (line_addr / s);
    }

    void validate() const
    {
        isim_assert(isPowerOf2(lineBytes), "line size not a power of 2");
        isim_assert(assoc >= 1);
        isim_assert(sizeBytes > 0);
        isim_assert(sizeBytes % (static_cast<std::uint64_t>(assoc) *
                                 lineBytes) == 0,
                    "size not divisible by assoc*line");
    }

    /** Short human-readable form, e.g. "2M8w". */
    std::string shortName() const
    {
        std::string s;
        if (sizeBytes >= mib && sizeBytes % mib == 0)
            s = std::to_string(sizeBytes / mib) + "M";
        else
            s = std::to_string(sizeBytes / kib) + "K";
        s += std::to_string(assoc) + "w";
        return s;
    }
};

} // namespace isim

#endif // ISIM_MEM_GEOMETRY_HH
