/**
 * @file
 * Minimal JSON emission and validation. JsonWriter produces
 * well-formed JSON with proper string escaping and automatic comma
 * handling; it is shared by the figure reports (core/report.cc) and
 * the observability exporters (obs/export.cc). jsonValidate() is a
 * strict syntax checker used by tests and tools to prove emitted
 * documents parse back.
 */

#ifndef ISIM_BASE_JSON_HH
#define ISIM_BASE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace isim {

/** Escape a string for inclusion inside JSON quotes. */
std::string jsonEscape(const std::string &text);

/**
 * Streaming JSON writer. Containers opened at nesting depth <=
 * prettyDepth get one entry per line (indented); deeper containers are
 * written inline — which yields the compact-but-diffable layout the
 * figure JSON always had ("bars" one per line, each bar inline).
 *
 * Keys are emitted as `"key": value` (space after the colon);
 * numbers use a fixed precision chosen per value.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int pretty_depth = 2)
        : os_(os), prettyDepth_(pretty_depth)
    {
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit `"key": ` (inside an object, before its value). */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v, int precision = 4);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(bool v);

    // Key/value in one call.
    template <typename T>
    JsonWriter &kv(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }
    JsonWriter &kv(const std::string &k, double v, int precision)
    {
        key(k);
        return value(v, precision);
    }

    /** Depth of currently open containers. */
    int depth() const { return depth_; }

  private:
    /** Comma/newline bookkeeping before a new entry at this depth. */
    void beforeEntry();
    void newlineAndIndent();

    std::ostream &os_;
    int prettyDepth_;
    int depth_ = 0;
    /** Whether the container at each depth already has an entry. */
    std::uint64_t hasEntry_ = 0; //!< bitset over depths (max 64 deep)
    bool pendingKey_ = false;
};

/**
 * Strict JSON syntax check (objects, arrays, strings with escapes,
 * numbers, true/false/null). Returns true when `text` is a single
 * valid JSON value; on failure `err` (if non-null) describes the
 * first problem and its offset.
 */
bool jsonValidate(const std::string &text, std::string *err = nullptr);

/**
 * Parsed JSON document node. Numbers are stored as double (every
 * counter the simulator emits fits a double's 53-bit integer range);
 * object member order is preserved as written, which keeps parse ->
 * re-emit comparisons deterministic.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** `get`, but fatal() when the member is missing. */
    const JsonValue &at(const std::string &key) const;
};

/**
 * Parse a full JSON document into a JsonValue tree. Accepts exactly
 * what jsonValidate() accepts; returns false (with a message in `err`
 * if non-null) on malformed input.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string *err = nullptr);

/**
 * Deterministic compact re-serialization of a parsed node: member
 * order preserved, `"key": value` with ", " separators and no
 * newlines. Integral numbers (up to a double's 53-bit exact range)
 * emit as integers; everything else uses the shortest %g rendering
 * that round-trips the double exactly — so two parses of equal
 * documents always re-emit byte-identical text (the campaign-manifest
 * merge relies on this).
 */
std::string jsonToText(const JsonValue &value);

} // namespace isim

#endif // ISIM_BASE_JSON_HH
