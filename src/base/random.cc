/**
 * @file
 * xoshiro256** / splitmix64 implementation.
 */

#include "src/base/random.hh"

#include <cmath>

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t value)
{
    std::uint64_t state = value;
    return splitMix64(state);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

void
Rng::seed(std::uint64_t s)
{
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    isim_assert(bound > 0);
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    isim_assert(lo <= hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    isim_assert(mean > 0.0);
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

std::uint64_t
Rng::zipf(std::uint64_t n, double theta)
{
    isim_assert(n > 0);
    if (theta <= 0.0)
        return below(n);
    // Power-law inversion: draw u in (0,1], return floor(n * u^(1/a))
    // with a chosen so small ranks dominate. This is an approximation of
    // a Zipf(theta) distribution that preserves its skew profile, which
    // is all footprint modelling needs.
    const double a = 1.0 / (1.0 - std::min(theta, 0.99) * 0.999);
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    auto rank =
        static_cast<std::uint64_t>(static_cast<double>(n) * std::pow(u, a));
    return rank >= n ? n - 1 : rank;
}

void
Rng::saveState(ckpt::Serializer &s) const
{
    for (std::uint64_t word : state_)
        s.u64(word);
}

void
Rng::restoreState(ckpt::Deserializer &d)
{
    for (std::uint64_t &word : state_)
        word = d.u64();
}

} // namespace isim
