/**
 * @file
 * Implementation of the status/error reporting helpers.
 */

#include "src/base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace isim {

namespace {

bool quietFlag = false;

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

void
assertNote(const char *condition_text)
{
    std::fprintf(stderr, "assertion '%s' failed\n", condition_text);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace isim
