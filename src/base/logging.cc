/**
 * @file
 * Implementation of the status/error reporting helpers.
 */

#include "src/base/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace isim {

namespace {

bool quietFlag = false;
bool panicThrowFlag = false;

/** Condition text of the most recent isim_assert, in throw mode. */
std::string pendingCondition;

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

void
setPanicThrow(bool throws)
{
    panicThrowFlag = throws;
    pendingCondition.clear();
}

bool
panicThrows()
{
    return panicThrowFlag;
}

void
assertNote(const char *condition_text)
{
    if (panicThrowFlag) {
        // Defer; panicImpl folds the condition into the exception.
        pendingCondition = condition_text;
        return;
    }
    std::fprintf(stderr, "assertion '%s' failed\n", condition_text);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    if (panicThrowFlag) {
        char body[1024];
        std::va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(body, sizeof(body), fmt, ap);
        va_end(ap);
        std::string msg = "panic: ";
        msg += file;
        msg += ':';
        msg += std::to_string(line);
        msg += ": ";
        if (!pendingCondition.empty()) {
            msg += "assertion '" + pendingCondition + "' failed. ";
            pendingCondition.clear();
        }
        msg += body;
        throw PanicError(msg);
    }
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    if (panicThrowFlag) {
        // Throwing (not exiting) matters on experiment worker
        // threads: a bad configuration must unwind back to the
        // runner, not std::exit() the whole figure mid-flight.
        char body[1024];
        std::va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(body, sizeof(body), fmt, ap);
        va_end(ap);
        std::string msg = "fatal: ";
        msg += file;
        msg += ':';
        msg += std::to_string(line);
        msg += ": ";
        msg += body;
        throw PanicError(msg);
    }
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace isim
