/**
 * @file
 * Allocation-counting operator new/delete replacement (ISIM_PROF
 * builds only; see alloc_hook.hh).
 */

#include "src/base/alloc_hook.hh"

#ifdef ISIM_PROF

#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t tl_alloc_count = 0;

// The hook must not allocate (it IS the allocator) and must not
// throw from the nothrow/delete paths.
void *
countedAlloc(std::size_t size)
{
    ++tl_alloc_count;
    return std::malloc(size == 0 ? 1 : size);
}

} // namespace

namespace isim {
namespace base {

std::uint64_t
threadAllocCount()
{
    return tl_alloc_count;
}

} // namespace base
} // namespace isim

void *
operator new(std::size_t size)
{
    void *p = countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#else // !ISIM_PROF

namespace isim {
namespace base {

std::uint64_t
threadAllocCount()
{
    return 0;
}

} // namespace base
} // namespace isim

#endif // ISIM_PROF
