/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator draws from an explicitly
 * seeded Rng instance so that whole-simulation runs are reproducible
 * bit-for-bit (required by the trace record/replay tests). The generator
 * is xoshiro256**, seeded via splitmix64 as its authors recommend.
 */

#ifndef ISIM_BASE_RANDOM_HH
#define ISIM_BASE_RANDOM_HH

#include <array>
#include <cstdint>

#include "src/ckpt/fwd.hh"

namespace isim {

/** splitmix64 step; used for seeding and for cheap hash mixing. */
std::uint64_t splitMix64(std::uint64_t &state);

/** Stateless mix of a 64-bit value (finalizer of splitmix64). */
std::uint64_t mix64(std::uint64_t value);

/**
 * xoshiro256** generator. Small, fast, and deterministic across
 * platforms; quality is more than sufficient for workload synthesis.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed, resetting the stream. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0 (unbiased). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /**
     * Zipf-like rank in [0, n): rank r is drawn with probability
     * proportional to 1 / (r + 1)^theta. Uses the rejection-inversion
     * free approximation (power-law inversion), adequate for footprint
     * skew modelling.
     */
    std::uint64_t zipf(std::uint64_t n, double theta);

    /** Checkpoint the generator state (position in the stream). */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    std::array<std::uint64_t, 4> state_{};
};

} // namespace isim

#endif // ISIM_BASE_RANDOM_HH
