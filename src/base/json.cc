/**
 * @file
 * JSON writer / validator implementation.
 */

#include "src/base/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/base/logging.hh"

namespace isim {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newlineAndIndent()
{
    os_ << "\n";
    for (int i = 0; i < depth_; ++i)
        os_ << "  ";
}

void
JsonWriter::beforeEntry()
{
    if (pendingKey_) {
        // Value completes a key; no separator.
        pendingKey_ = false;
        return;
    }
    if (depth_ == 0)
        return;
    const std::uint64_t bit = std::uint64_t{1} << depth_;
    if (hasEntry_ & bit)
        os_ << (depth_ <= prettyDepth_ ? "," : ", ");
    hasEntry_ |= bit;
    if (depth_ <= prettyDepth_)
        newlineAndIndent();
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeEntry();
    os_ << "{";
    ++depth_;
    isim_assert(depth_ < 64, "JsonWriter nesting too deep");
    hasEntry_ &= ~(std::uint64_t{1} << depth_);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    isim_assert(depth_ > 0 && !pendingKey_);
    const bool had = hasEntry_ & (std::uint64_t{1} << depth_);
    --depth_;
    if (had && depth_ + 1 <= prettyDepth_)
        newlineAndIndent();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeEntry();
    os_ << "[";
    ++depth_;
    isim_assert(depth_ < 64, "JsonWriter nesting too deep");
    hasEntry_ &= ~(std::uint64_t{1} << depth_);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    isim_assert(depth_ > 0 && !pendingKey_);
    const bool had = hasEntry_ & (std::uint64_t{1} << depth_);
    --depth_;
    if (had && depth_ + 1 <= prettyDepth_)
        newlineAndIndent();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    isim_assert(!pendingKey_, "key() after key()");
    beforeEntry();
    os_ << "\"" << jsonEscape(k) << "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeEntry();
    os_ << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v, int precision)
{
    beforeEntry();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; emit null so documents stay parseable
        // (undefined quantiles of an empty histogram, for example).
        os_ << "null";
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeEntry();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeEntry();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeEntry();
    os_ << (v ? "true" : "false");
    return *this;
}

namespace {

/**
 * Recursive-descent JSON parser. With a null `out` it is a pure
 * syntax checker (jsonValidate); with a JsonValue it also builds the
 * document tree (jsonParse).
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool run(JsonValue *out = nullptr)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    bool fail(const std::string &what)
    {
        if (err_ != nullptr && err_->empty()) {
            *err_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool parseString(std::string *out)
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (static_cast<unsigned char>(text_[pos_]) < 0x20)
                return fail("raw control character in string");
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                const char e = text_[pos_];
                if (e == 'u') {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_]))) {
                            return fail("bad \\u escape");
                        }
                        const char h = text_[pos_];
                        code = code * 16 +
                               static_cast<unsigned>(
                                   h <= '9' ? h - '0'
                                            : (std::tolower(h) - 'a' +
                                               10));
                    }
                    if (out != nullptr)
                        appendUtf8(*out, code);
                } else if (e == '"' || e == '\\' || e == '/') {
                    if (out != nullptr)
                        *out += e;
                } else if (e == 'b' || e == 'f' || e == 'n' ||
                           e == 'r' || e == 't') {
                    if (out != nullptr) {
                        switch (e) {
                          case 'b': *out += '\b'; break;
                          case 'f': *out += '\f'; break;
                          case 'n': *out += '\n'; break;
                          case 'r': *out += '\r'; break;
                          default:  *out += '\t'; break;
                        }
                    }
                } else {
                    return fail("bad escape character");
                }
            } else if (out != nullptr) {
                *out += text_[pos_];
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    static void appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    bool parseNumber(double *out = nullptr)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            return fail("bad number");
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad fraction");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ <= start)
            return false;
        if (out != nullptr)
            *out = std::strtod(text_.c_str() + start, nullptr);
        return true;
    }

    bool parseObject(JsonValue *out)
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() ||
                !parseString(out != nullptr ? &key : nullptr)) {
                return fail("expected object key");
            }
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue *slot = nullptr;
            if (out != nullptr) {
                out->members.emplace_back(std::move(key), JsonValue{});
                slot = &out->members.back().second;
            }
            if (!parseValue(slot))
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray(JsonValue *out)
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue *slot = nullptr;
            if (out != nullptr) {
                out->array.emplace_back();
                slot = &out->array.back();
            }
            if (!parseValue(slot))
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseValue(JsonValue *out = nullptr)
    {
        if (pos_ >= text_.size())
            return fail("empty value");
        switch (text_[pos_]) {
          case '{':
            if (out != nullptr)
                out->kind = JsonValue::Kind::Object;
            return parseObject(out);
          case '[':
            if (out != nullptr)
                out->kind = JsonValue::Kind::Array;
            return parseArray(out);
          case '"':
            if (out != nullptr)
                out->kind = JsonValue::Kind::String;
            return parseString(out != nullptr ? &out->text : nullptr);
          case 't':
            if (out != nullptr) {
                out->kind = JsonValue::Kind::Bool;
                out->boolean = true;
            }
            return literal("true");
          case 'f':
            if (out != nullptr) {
                out->kind = JsonValue::Kind::Bool;
                out->boolean = false;
            }
            return literal("false");
          case 'n':
            if (out != nullptr)
                out->kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            if (out != nullptr)
                out->kind = JsonValue::Kind::Number;
            return parseNumber(out != nullptr ? &out->number : nullptr);
        }
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

bool
jsonValidate(const std::string &text, std::string *err)
{
    if (err != nullptr)
        err->clear();
    return JsonParser(text, err).run();
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = get(key);
    if (v == nullptr)
        isim_fatal("JSON object has no member '%s'", key.c_str());
    return *v;
}

bool
jsonParse(const std::string &text, JsonValue &out, std::string *err)
{
    if (err != nullptr)
        err->clear();
    out = JsonValue{};
    return JsonParser(text, err).run(&out);
}

namespace {

void
appendJsonText(const JsonValue &v, std::string &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        out += "null";
        return;
      case JsonValue::Kind::Bool:
        out += v.boolean ? "true" : "false";
        return;
      case JsonValue::Kind::Number: {
        char buf[40];
        const double d = v.number;
        // Integral doubles within the exact range print as integers;
        // everything else uses the shortest %.Ng that parses back to
        // the same double (15 digits when they suffice, 17 at most) —
        // exact round trip without "0.10000000000000001" noise.
        if (std::nearbyint(d) == d && std::fabs(d) < 9.007199254740992e15) {
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(d));
        } else {
            for (int prec = 15; prec <= 17; ++prec) {
                std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
                if (std::strtod(buf, nullptr) == d)
                    break;
            }
        }
        out += buf;
        return;
      }
      case JsonValue::Kind::String:
        out += '"';
        out += jsonEscape(v.text);
        out += '"';
        return;
      case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &e : v.array) {
            if (!first)
                out += ", ";
            first = false;
            appendJsonText(e, out);
        }
        out += ']';
        return;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, e] : v.members) {
            if (!first)
                out += ", ";
            first = false;
            out += '"';
            out += jsonEscape(k);
            out += "\": ";
            appendJsonText(e, out);
        }
        out += '}';
        return;
      }
    }
}

} // namespace

std::string
jsonToText(const JsonValue &value)
{
    std::string out;
    appendJsonText(value, out);
    return out;
}

} // namespace isim
