/**
 * @file
 * JSON writer / validator implementation.
 */

#include "src/base/json.hh"

#include <cctype>
#include <cstdio>

#include "src/base/logging.hh"

namespace isim {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newlineAndIndent()
{
    os_ << "\n";
    for (int i = 0; i < depth_; ++i)
        os_ << "  ";
}

void
JsonWriter::beforeEntry()
{
    if (pendingKey_) {
        // Value completes a key; no separator.
        pendingKey_ = false;
        return;
    }
    if (depth_ == 0)
        return;
    const std::uint64_t bit = std::uint64_t{1} << depth_;
    if (hasEntry_ & bit)
        os_ << (depth_ <= prettyDepth_ ? "," : ", ");
    hasEntry_ |= bit;
    if (depth_ <= prettyDepth_)
        newlineAndIndent();
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeEntry();
    os_ << "{";
    ++depth_;
    isim_assert(depth_ < 64, "JsonWriter nesting too deep");
    hasEntry_ &= ~(std::uint64_t{1} << depth_);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    isim_assert(depth_ > 0 && !pendingKey_);
    const bool had = hasEntry_ & (std::uint64_t{1} << depth_);
    --depth_;
    if (had && depth_ + 1 <= prettyDepth_)
        newlineAndIndent();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeEntry();
    os_ << "[";
    ++depth_;
    isim_assert(depth_ < 64, "JsonWriter nesting too deep");
    hasEntry_ &= ~(std::uint64_t{1} << depth_);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    isim_assert(depth_ > 0 && !pendingKey_);
    const bool had = hasEntry_ & (std::uint64_t{1} << depth_);
    --depth_;
    if (had && depth_ + 1 <= prettyDepth_)
        newlineAndIndent();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    isim_assert(!pendingKey_, "key() after key()");
    beforeEntry();
    os_ << "\"" << jsonEscape(k) << "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeEntry();
    os_ << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v, int precision)
{
    beforeEntry();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeEntry();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeEntry();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeEntry();
    os_ << (v ? "true" : "false");
    return *this;
}

namespace {

/** Recursive-descent JSON syntax checker. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool run()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return true;
    }

  private:
    bool fail(const std::string &what)
    {
        if (err_ != nullptr && err_->empty()) {
            *err_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool parseString()
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (static_cast<unsigned char>(text_[pos_]) < 0x20)
                return fail("raw control character in string");
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_]))) {
                            return fail("bad \\u escape");
                        }
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            return fail("bad number");
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad fraction");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        return pos_ > start;
    }

    bool parseObject()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || !parseString())
                return fail("expected object key");
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseValue()
    {
        if (pos_ >= text_.size())
            return fail("empty value");
        switch (text_[pos_]) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return parseNumber();
        }
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

bool
jsonValidate(const std::string &text, std::string *err)
{
    if (err != nullptr)
        err->clear();
    return JsonParser(text, err).run();
}

} // namespace isim
