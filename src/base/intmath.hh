/**
 * @file
 * Small integer-math helpers used throughout the simulator.
 */

#ifndef ISIM_BASE_INTMATH_HH
#define ISIM_BASE_INTMATH_HH

#include <bit>
#include <cstdint>

#include "src/base/logging.hh"

namespace isim {

/** True if value is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** log2 of a power-of-two value. */
inline unsigned
floorLog2(std::uint64_t value)
{
    isim_assert(value != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** Ceiling division for non-negative integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round value up to the next multiple of align (align power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round value down to a multiple of align (align power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

} // namespace isim

#endif // ISIM_BASE_INTMATH_HH
