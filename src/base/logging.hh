/**
 * @file
 * Error / status reporting in the gem5 tradition.
 *
 * panic()  - an internal simulator bug; aborts (may dump core).
 * fatal()  - a user error (bad configuration, invalid arguments);
 *            exits with status 1.
 * warn()   - functionality that may not behave as the user expects.
 * inform() - normal status messages.
 */

#ifndef ISIM_BASE_LOGGING_HH
#define ISIM_BASE_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace isim {

/**
 * Thrown instead of aborting when panic-throw mode is active (see
 * setPanicThrow). Carries the fully formatted panic message, so
 * verification harnesses can report *which* invariant broke and keep
 * exploring.
 */
class PanicError : public std::runtime_error
{
  public:
    explicit PanicError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print the failed condition text of an isim_assert (never suppressed). */
void assertNote(const char *condition_text);

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

/**
 * When enabled, panicImpl (and therefore isim_panic / isim_assert)
 * throws PanicError instead of aborting, and fatalImpl / isim_fatal
 * throws instead of exiting. The default (abort/exit) is right for
 * simulation runs — a failed invariant means results are garbage —
 * but the model checker and the mutation tests need to observe
 * violations and report a trace instead of dying, and the experiment
 * worker pool needs configuration errors to unwind, not std::exit().
 */
void setPanicThrow(bool throws);
bool panicThrows();

/** RAII scope for setPanicThrow; restores the previous mode. */
class ScopedPanicThrow
{
  public:
    ScopedPanicThrow() : prev_(panicThrows()) { setPanicThrow(true); }
    ~ScopedPanicThrow() { setPanicThrow(prev_); }
    ScopedPanicThrow(const ScopedPanicThrow &) = delete;
    ScopedPanicThrow &operator=(const ScopedPanicThrow &) = delete;

  private:
    bool prev_;
};

} // namespace isim

#define isim_panic(...) ::isim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define isim_fatal(...) ::isim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define isim_warn(...) ::isim::warnImpl(__VA_ARGS__)
#define isim_inform(...) ::isim::informImpl(__VA_ARGS__)

/**
 * Invariant check that stays on in release builds. Use for simulator
 * self-consistency conditions whose violation means an isim bug.
 * An optional printf-style message may follow the condition.
 */
#define isim_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::isim::assertNote(#cond);                                      \
            ::isim::panicImpl(__FILE__, __LINE__,                           \
                              "assertion failed. " __VA_ARGS__);            \
        }                                                                   \
    } while (0)

#endif // ISIM_BASE_LOGGING_HH
