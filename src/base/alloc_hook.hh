/**
 * @file
 * Thread-local heap-allocation counter for the self-profiler.
 *
 * In an ISIM_PROF build, alloc_hook.cc replaces the global operator
 * new/delete family with forwarding versions that bump a thread-local
 * counter, so ProfScope can attribute allocation counts to profiler
 * nodes ("this phase allocated N times"). Without ISIM_PROF nothing
 * is replaced and threadAllocCount() is a constant zero — sanitizer
 * builds keep their own allocator interposition untouched.
 */

#ifndef ISIM_BASE_ALLOC_HOOK_HH
#define ISIM_BASE_ALLOC_HOOK_HH

#include <cstdint>

namespace isim {
namespace base {

/**
 * Number of heap allocations made by the calling thread since it
 * started (monotonic; ISIM_PROF builds only, otherwise always 0).
 */
std::uint64_t threadAllocCount();

} // namespace base
} // namespace isim

#endif // ISIM_BASE_ALLOC_HOOK_HH
