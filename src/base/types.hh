/**
 * @file
 * Fundamental scalar types shared across the simulator.
 *
 * All timing in IntegraSim is expressed in processor cycles of a 1 GHz
 * clock, so one Tick equals one nanosecond (this mirrors the paper's
 * Figure 3, whose latencies are given in cycles "equals ns for 1GHz
 * processor").
 */

#ifndef ISIM_BASE_TYPES_HH
#define ISIM_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace isim {

/** Simulated time, in 1 GHz processor cycles (== nanoseconds). */
using Tick = std::uint64_t;

/** A cycle count or latency, same unit as Tick. */
using Cycles = std::uint64_t;

/** Physical or virtual address in the simulated machine. */
using Addr = std::uint64_t;

/** Node (processor chip) identifier in the multiprocessor. */
using NodeId = std::uint32_t;

/** Simulated software process identifier. */
using Pid = std::uint32_t;

/** Sentinel for "no tick scheduled". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel node id meaning "no node". */
inline constexpr NodeId invalidNode = static_cast<NodeId>(-1);

inline constexpr std::uint64_t kib = 1024;
inline constexpr std::uint64_t mib = 1024 * kib;
inline constexpr std::uint64_t gib = 1024 * mib;

} // namespace isim

#endif // ISIM_BASE_TYPES_HH
