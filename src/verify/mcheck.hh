/**
 * @file
 * Murphi-style explicit-state model checker for the directory
 * protocol.
 *
 * Instead of checking a hand-transcribed abstraction (which can drift
 * from the code), the checker enumerates the reachable state space of
 * the *real* MemorySystem for deliberately tiny configurations: 2-4
 * nodes, 1-2 cache lines per home, caches shrunk until evictions and
 * victim-buffer spills happen within a handful of events. Events are
 * every (core, load/store/ifetch, line) combination; states are
 * canonical fingerprints of every structure that can influence future
 * behavior (directory entries, L1/L2/RAC states, victim-FIFO order,
 * per-set LRU order, shadow-data freshness). Exploration is
 * breadth-first, so the first violation found is reported with a
 * shortest event trace.
 *
 * Checked on every explored transition:
 *  - no protocol panic (absence of stuck states: the transition
 *    relation is total — every event applies in every reachable state);
 *  - MissClass matches the reference oracle (classifyOracle), i.e.
 *    Local / RemoteClean 2-hop / RemoteDirty 3-hop classification is
 *    exact — the paper's figures depend on this;
 *  - the full invariant audit (auditFull): single-writer /
 *    multiple-reader, directory-vs-cache agreement both directions,
 *    victim-buffer exclusivity, inclusion, stats conservation;
 *  - data-value coherence via a shadow memory: every line carries a
 *    version number bumped per store; the checker models where data
 *    travels according to the protocol's *claimed* outcome and panics
 *    if any read would observe a stale version (a misclassified 3-hop
 *    miss surfaces here as stale data from home memory).
 *
 * Because the checker replays event paths to rebuild states (the
 * MemorySystem is not copyable), configurations must stay small; the
 * presets in tools/mcheck exhaust in seconds.
 */

#ifndef ISIM_VERIFY_MCHECK_HH
#define ISIM_VERIFY_MCHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/coherence/protocol.hh"

namespace isim::verify {

/** One model-checking event: a single memory access. */
struct McheckEvent
{
    NodeId core = 0;
    RefType type = RefType::Load;
    Addr line = 0; //!< line address
};

/** A small configuration to exhaust. */
struct McheckConfig
{
    unsigned numNodes = 2;
    unsigned coresPerNode = 1;
    /** Data lines, distributed round-robin across homes and placed in
     *  the same L2 set so evictions happen. */
    unsigned dataLines = 2;
    /** Add one ifetch-only line (code is never stored, matching the
     *  workload invariant the protocol asserts). */
    bool codeLine = true;
    bool racEnabled = false;
    unsigned victimBufferEntries = 0;
    /** Stop (exhausted=false) after this many distinct states. */
    std::uint64_t maxStates = 1u << 22;
    /** Injected bug for mutation testing of the checker itself. */
    ProtocolMutation mutation = ProtocolMutation::None;

    /** The tiny MemSysConfig the checker instantiates. */
    MemSysConfig memConfig() const;
    /** All tracked line addresses (data lines then the code line). */
    std::vector<Addr> trackedLines() const;
    /** The event alphabet. */
    std::vector<McheckEvent> events() const;
    /** Short name, e.g. "2n1c-2d+code-rac-vb1". */
    std::string name() const;
};

/** Result of one model-checking run. */
struct McheckResult
{
    bool ok = false;        //!< no violation found
    bool exhausted = false; //!< the full reachable space was explored
    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::string violation;          //!< empty when ok
    std::vector<McheckEvent> trace; //!< shortest path ending in the bug

    /** Render the trace, one event per line. */
    std::string traceString(const McheckConfig &cfg) const;
};

/** Exhaustively explore `cfg`; never aborts (uses panic-throw mode). */
McheckResult modelCheck(const McheckConfig &cfg);

} // namespace isim::verify

#endif // ISIM_VERIFY_MCHECK_HH
