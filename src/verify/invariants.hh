/**
 * @file
 * Runtime invariant auditor for the coherence protocol.
 *
 * Everything the paper reports rests on the directory resolving cache
 * state *exactly* (DESIGN.md's substitution argument): each L2 miss is
 * classified Local / RemoteClean (2-hop) / RemoteDirty (3-hop) from
 * that state and charged the matching Figure-3 latency. This header
 * provides machine-checked statements of the protocol's correctness
 * conditions so every test and bench run doubles as a protocol proof:
 *
 *  - auditLine: cross-structure audit of one line — directory entry
 *    vs the actual L1/L2/victim-buffer/RAC states at every node,
 *    single-writer/multiple-reader, owned => sole copy, victim-buffer
 *    exclusivity, L1 inclusion.
 *  - auditStats: conservation identities over the statistics counters
 *    (per-class miss counters sum to the L2 miss counter, L1 misses
 *    feed the L2, instruction+data splits reconcile).
 *  - auditFull: auditLine over every directory entry, the protocol
 *    engine's own checkInvariants(), and auditStats.
 *  - classifyOracle: an independent re-derivation of the expected
 *    MissClass of an access from pre-transition state, compared
 *    against what the protocol actually returned.
 *
 * Violations report through isim_assert / isim_panic, so they abort a
 * simulation run and throw PanicError under ScopedPanicThrow (which is
 * how the model checker and the mutation tests observe them).
 *
 * Build with -DISIM_CHECK_INVARIANTS=ON to run these audits after
 * every protocol transition (see MemorySystem::access); the audit
 * period for the O(cache lines) full audit is tunable via
 * setAuditPeriod() — resolved at startup from ISIM_AUDIT_PERIOD /
 * --audit-period by RunOptions.
 */

#ifndef ISIM_VERIFY_INVARIANTS_HH
#define ISIM_VERIFY_INVARIANTS_HH

#include <cstdint>
#include <vector>

#include "src/coherence/protocol.hh"

namespace isim::verify {

/** Where one node holds one line, gathered from every structure. */
struct NodeHolding
{
    LineState l2 = LineState::Invalid;
    LineState rac = LineState::Invalid; //!< Invalid when RAC disabled
    LineState vb = LineState::Invalid;  //!< state of the parked copy
    bool inVb = false;                  //!< parked in the victim FIFO
    unsigned vbCopies = 0;              //!< FIFO entries for this line
    std::vector<LineState> l1i;         //!< per core on the node
    std::vector<LineState> l1d;

    bool holdsAny() const;
    bool ownedAny() const;  //!< Exclusive or Modified anywhere
    bool dirtyAny() const;  //!< Modified anywhere
    /** Owned at the node level (L2, victim buffer or RAC marker). */
    bool ownedNodeLevel() const
    {
        return lineOwned(l2) || (inVb && lineOwned(vb)) || lineOwned(rac);
    }
};

/** Gather how `node` holds `line_addr` across all its structures. */
NodeHolding holdingOf(const MemorySystem &ms, NodeId node, Addr line_addr);

/**
 * Expected observable outcome of an access, derived from
 * pre-transition state only (the reference oracle for MissClass).
 */
struct ExpectedOutcome
{
    MissClass cls = MissClass::L1Hit;
    bool upgrade = false;
    bool racHit = false;
    bool victimHit = false;
};

/**
 * Re-derive the outcome the protocol *must* produce for the access
 * (core, type, line_addr) from the current (pre-transition) state:
 * residency decides the hit level, and for directory-path misses the
 * dirtiness of the owning node decides 2-hop vs 3-hop. Call before
 * the access, compare after (see checkOutcome).
 */
ExpectedOutcome classifyOracle(const MemorySystem &ms, NodeId core,
                               RefType type, Addr line_addr);

/** Panic unless `got` matches `want` (field-by-field, with names). */
void checkOutcome(const ExpectedOutcome &want, const AccessOutcome &got,
                  NodeId core, RefType type, Addr line_addr);

/** Cross-structure audit of a single line (post-transition, cheap). */
void auditLine(const MemorySystem &ms, Addr line_addr);

/**
 * Full-audit decimation period: TransitionAudit runs auditFull()
 * log-spaced early, then every `auditPeriod()` transitions. The
 * default (2^20) can be overridden once at startup — typically via
 * RunOptions::applyGlobal(), which carries ISIM_AUDIT_PERIOD /
 * --audit-period — so audits on worker threads never consult the
 * environment. Thread-safe; a period of 0 restores the startup value.
 */
void setAuditPeriod(std::uint64_t period);
std::uint64_t auditPeriod();

/** Conservation identities over all statistics counters. */
void auditStats(const MemorySystem &ms);

/**
 * Whole-system audit: forward (cache -> directory) via
 * MemorySystem::checkInvariants, reverse (directory -> caches) via
 * auditLine on every directory entry, plus auditStats.
 * O(total cache lines + directory population).
 */
void auditFull(const MemorySystem &ms);

/**
 * Per-transition audit scope used by MemorySystem::access when built
 * with ISIM_CHECK_INVARIANTS, and by auditedAccess below. Construct
 * before the access (captures the oracle's expectation), finish(out)
 * after it (checks the outcome, audits the line and the counters, and
 * periodically runs auditFull).
 */
class TransitionAudit
{
  public:
    TransitionAudit(const MemorySystem &ms, NodeId core, RefType type,
                    Addr paddr);
    void finish(const AccessOutcome &out);

    TransitionAudit(const TransitionAudit &) = delete;
    TransitionAudit &operator=(const TransitionAudit &) = delete;

  private:
    const MemorySystem &ms_;
    NodeId core_;
    RefType type_;
    Addr lineAddr_;
    ExpectedOutcome expected_;
};

/**
 * Drive one access through the full per-transition audit regardless
 * of whether ISIM_CHECK_INVARIANTS was compiled in (mutation tests
 * use this so they work in every build flavor).
 */
AccessOutcome auditedAccess(MemorySystem &ms, NodeId core, RefType type,
                            Addr paddr, Tick now = 0);

} // namespace isim::verify

#endif // ISIM_VERIFY_INVARIANTS_HH
