/**
 * @file
 * Model checker implementation.
 *
 * States are rebuilt by replaying their event path from the initial
 * state (the MemorySystem is deliberately not copyable), which is
 * affordable because configurations are tiny and paths are shortest
 * paths (breadth-first order).
 */

#include "src/verify/mcheck.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>

#include "src/base/logging.hh"
#include "src/verify/invariants.hh"

namespace isim::verify {

namespace {

/** Shadow data: a version number per line and per cached copy. */
struct ShadowLine
{
    std::uint64_t latest = 0; //!< version of the most recent store
    std::uint64_t mem = 0;    //!< version home memory holds
    std::map<NodeId, std::uint64_t> cached; //!< per holding node
};

/**
 * The shadow memory. Versions move the way the protocol *claims* data
 * moves (per AccessOutcome), so a wrong claim — e.g. "home memory
 * supplied this" while a third node held the line dirty — surfaces as
 * a stale version reaching a reader.
 */
class Shadow
{
  public:
    /** Account for one access; `pre_owner` is the directory owner
     *  before the access (invalidNode if none). */
    void step(const MemorySystem &sys, const McheckEvent &ev,
              const AccessOutcome &out, NodeId pre_owner, bool check);

    /** Reconcile holders with the post-transition system state
     *  (evictions, invalidations, spills across all lines). */
    void sync(const MemorySystem &sys, const std::vector<Addr> &tracked,
              bool check);

    /** Freshness pattern for the state fingerprint. */
    void appendFingerprint(std::string &key, Addr line,
                           unsigned num_nodes) const;

  private:
    std::uint64_t counter_ = 0;
    std::map<Addr, ShadowLine> lines_;
};

void
Shadow::step(const MemorySystem &sys, const McheckEvent &ev,
             const AccessOutcome &out, NodeId pre_owner, bool check)
{
    const NodeId node = sys.nodeOfCore(ev.core);
    ShadowLine &sl = lines_[ev.line];
    const auto it = sl.cached.find(node);
    const bool had_copy = it != sl.cached.end();

    std::uint64_t observed;
    if (had_copy) {
        observed = it->second;
    } else if ((out.victimHit || out.racHit) && check) {
        isim_panic("shadow memory: %s hit on line %#llx the node holds "
                   "no data for",
                   out.victimHit ? "victim-buffer" : "RAC",
                   static_cast<unsigned long long>(ev.line));
    } else if (out.cls == MissClass::RemoteDirty) {
        const auto oit = pre_owner == invalidNode
                             ? sl.cached.end()
                             : sl.cached.find(pre_owner);
        if (oit == sl.cached.end()) {
            if (check) {
                isim_panic("shadow memory: 3-hop claimed on line %#llx "
                           "without a dirty remote copy",
                           static_cast<unsigned long long>(ev.line));
            }
            observed = sl.mem;
        } else {
            observed = oit->second;
            // A read downgrade writes the dirty data back to home.
            if (ev.type != RefType::Store)
                sl.mem = sl.latest;
        }
    } else {
        observed = sl.mem; // the protocol claims home memory supplied
    }

    if (check && observed != sl.latest) {
        isim_panic("shadow memory: core %u %s line %#llx observed "
                   "version %llu but the latest store is %llu — stale "
                   "data reached a %s",
                   ev.core,
                   ev.type == RefType::Store ? "store" : "read",
                   static_cast<unsigned long long>(ev.line),
                   static_cast<unsigned long long>(observed),
                   static_cast<unsigned long long>(sl.latest),
                   ev.type == RefType::Store ? "writer" : "reader");
    }

    if (ev.type == RefType::Store) {
        sl.latest = ++counter_;
        sl.cached[node] = sl.latest;
    } else {
        sl.cached[node] = observed;
    }
}

void
Shadow::sync(const MemorySystem &sys, const std::vector<Addr> &tracked,
             bool check)
{
    const unsigned num_nodes = sys.config().numNodes;
    for (Addr line : tracked) {
        const auto lit = lines_.find(line);
        if (lit == lines_.end())
            continue;
        ShadowLine &sl = lit->second;
        for (NodeId m = 0; m < num_nodes; ++m) {
            const bool holds = holdingOf(sys, m, line).holdsAny();
            const auto cit = sl.cached.find(m);
            const bool had = cit != sl.cached.end();
            if (had && !holds) {
                // The copy left the node. If it was the only fresh
                // copy, the protocol must have written it back home.
                const std::uint64_t gone = cit->second;
                sl.cached.erase(cit);
                if (gone == sl.latest && sl.mem != sl.latest) {
                    bool fresh_elsewhere = false;
                    for (const auto &[holder, ver] : sl.cached)
                        fresh_elsewhere |= ver == sl.latest;
                    if (!fresh_elsewhere)
                        sl.mem = gone; // write-back of the dirty line
                }
            } else if (!had && holds && check) {
                isim_panic("shadow memory: node %u gained line %#llx "
                           "outside any access",
                           m, static_cast<unsigned long long>(line));
            }
        }
    }
}

void
Shadow::appendFingerprint(std::string &key, Addr line,
                          unsigned num_nodes) const
{
    const auto lit = lines_.find(line);
    if (lit == lines_.end()) {
        key.append(num_nodes + 1, '\x00');
        return;
    }
    const ShadowLine &sl = lit->second;
    key.push_back(sl.mem == sl.latest ? '\x02' : '\x01');
    for (NodeId m = 0; m < num_nodes; ++m) {
        const auto cit = sl.cached.find(m);
        if (cit == sl.cached.end())
            key.push_back('\x00');
        else
            key.push_back(cit->second == sl.latest ? '\x02' : '\x01');
    }
}

/** Canonical per-set recency order of a cache's resident lines. */
void
appendRecency(std::string &key, const Cache &cache,
              const std::vector<Addr> &tracked)
{
    struct Entry
    {
        std::uint64_t set;
        std::uint64_t lastUse;
        std::uint8_t idx;
    };
    std::vector<Entry> entries;
    cache.array().forEachValid([&](Addr line, const CacheLine &cl) {
        const auto it = std::find(tracked.begin(), tracked.end(), line);
        // Untracked lines cannot exist: events only touch tracked ones.
        isim_assert(it != tracked.end(), "untracked line is resident");
        entries.push_back({cache.geometry().setIndex(line), cl.lastUse,
                           static_cast<std::uint8_t>(
                               it - tracked.begin())});
    });
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.set != b.set ? a.set < b.set
                                        : a.lastUse < b.lastUse;
              });
    key.push_back('\xFB');
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i > 0 && entries[i].set != entries[i - 1].set)
            key.push_back('\xFC'); // set boundary
        key.push_back(static_cast<char>(entries[i].idx));
    }
}

std::string
fingerprint(const MemorySystem &sys, const Shadow &shadow,
            const std::vector<Addr> &tracked)
{
    const unsigned num_nodes = sys.config().numNodes;
    const unsigned cores = sys.config().coresPerNode;
    std::string key;
    key.reserve(tracked.size() * (8 + num_nodes * (3 + 2 * cores)));

    auto idxOf = [&](Addr line) {
        const auto it = std::find(tracked.begin(), tracked.end(), line);
        isim_assert(it != tracked.end(), "untracked line in a structure");
        return static_cast<char>(it - tracked.begin());
    };

    for (Addr line : tracked) {
        if (const DirEntry *e = sys.directory().find(line)) {
            key.push_back(static_cast<char>(e->state));
            for (unsigned b = 0; b < 4; ++b)
                key.push_back(
                    static_cast<char>((e->sharers >> (8 * b)) & 0xFF));
            key.push_back(e->state == LineState::Modified
                              ? static_cast<char>(e->owner)
                              : '\x7F');
        } else {
            key.append(6, '\x7E'); // uncached
        }
        for (NodeId n = 0; n < num_nodes; ++n) {
            const NodeHolding h = holdingOf(sys, n, line);
            key.push_back(static_cast<char>(h.l2));
            key.push_back(sys.hasRac() ? static_cast<char>(h.rac)
                                       : '\x7D');
            for (unsigned c = 0; c < cores; ++c) {
                key.push_back(static_cast<char>(h.l1i[c]));
                key.push_back(static_cast<char>(h.l1d[c]));
            }
        }
        shadow.appendFingerprint(key, line, num_nodes);
    }

    // Victim FIFOs: content *and* order decide future spills.
    for (NodeId n = 0; n < num_nodes; ++n) {
        const auto &vb = sys.victimBuffer(n);
        key.push_back(static_cast<char>(vb.size()));
        for (const auto &[vline, vstate] : vb) {
            key.push_back(idxOf(vline));
            key.push_back(static_cast<char>(vstate));
        }
    }

    // Replacement order decides future victims.
    for (NodeId n = 0; n < num_nodes; ++n) {
        appendRecency(key, sys.l2(n), tracked);
        if (sys.hasRac())
            appendRecency(key, sys.rac(n).cache(), tracked);
        for (unsigned c = 0; c < cores; ++c) {
            appendRecency(key, sys.l1i(n * cores + c), tracked);
            appendRecency(key, sys.l1d(n * cores + c), tracked);
        }
    }
    return key;
}

/** Apply one event; with `check`, run the oracle and the full audit. */
void
applyEvent(MemorySystem &sys, Shadow &shadow,
           const std::vector<Addr> &tracked, const McheckEvent &ev,
           bool check)
{
    NodeId pre_owner = invalidNode;
    if (const DirEntry *e = sys.directory().find(ev.line)) {
        if (e->state == LineState::Modified)
            pre_owner = e->owner;
    }
    ExpectedOutcome want;
    if (check)
        want = classifyOracle(sys, ev.core, ev.type, ev.line);
    const AccessOutcome out =
        sys.access(ev.core, ev.type, ev.line << sys.lineBits(), 0);
    if (check) {
        checkOutcome(want, out, ev.core, ev.type, ev.line);
        auditFull(sys);
    }
    shadow.step(sys, ev, out, pre_owner, check);
    shadow.sync(sys, tracked, check);
}

} // namespace

MemSysConfig
McheckConfig::memConfig() const
{
    MemSysConfig m;
    m.numNodes = numNodes;
    m.coresPerNode = coresPerNode;
    m.lineBytes = 64;
    // Tiny hierarchies: a 2-way single-set L1 over a direct-mapped
    // 4-set L2, so conflict evictions happen within a few events.
    m.l1Size = 128;
    m.l1Assoc = 2;
    m.l2 = CacheGeometry{256, 1, 64};
    m.victimBufferEntries = victimBufferEntries;
    m.racEnabled = racEnabled;
    m.rac = CacheGeometry{128, 1, 64};
    return m;
}

std::vector<Addr>
McheckConfig::trackedLines() const
{
    // Data lines alternate homes and share L2 set 0 (the home bits sit
    // far above the set-index bits; the in-window offsets are
    // multiples of 4 lines). The code line sits in set 1 at home 0.
    std::vector<Addr> lines;
    const unsigned home_shift = 31 - 6; // nodeShift - line bits
    for (unsigned i = 0; i < dataLines; ++i) {
        lines.push_back(
            (static_cast<Addr>(i % numNodes) << home_shift) |
            static_cast<Addr>((i / numNodes) * 4));
    }
    if (codeLine)
        lines.push_back(1);
    return lines;
}

std::vector<McheckEvent>
McheckConfig::events() const
{
    std::vector<McheckEvent> evs;
    const std::vector<Addr> lines = trackedLines();
    const unsigned cores = numNodes * coresPerNode;
    for (NodeId core = 0; core < cores; ++core) {
        for (unsigned i = 0; i < dataLines; ++i) {
            evs.push_back({core, RefType::Load, lines[i]});
            evs.push_back({core, RefType::Store, lines[i]});
        }
        if (codeLine)
            evs.push_back({core, RefType::IFetch, lines.back()});
    }
    return evs;
}

std::string
McheckConfig::name() const
{
    std::string s = std::to_string(numNodes) + "n" +
                    std::to_string(coresPerNode) + "c-" +
                    std::to_string(dataLines) + "d";
    if (codeLine)
        s += "+code";
    if (racEnabled)
        s += "-rac";
    if (victimBufferEntries > 0)
        s += "-vb" + std::to_string(victimBufferEntries);
    if (mutation != ProtocolMutation::None) {
        s += "-mut:";
        s += protocolMutationName(mutation);
    }
    return s;
}

std::string
McheckResult::traceString(const McheckConfig &cfg) const
{
    const std::vector<Addr> lines = cfg.trackedLines();
    std::string s;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const McheckEvent &ev = trace[i];
        const auto it = std::find(lines.begin(), lines.end(), ev.line);
        const std::size_t idx = it - lines.begin();
        s += "  " + std::to_string(i + 1) + ". core" +
             std::to_string(ev.core) + " ";
        s += ev.type == RefType::IFetch  ? "ifetch"
             : ev.type == RefType::Load  ? "load  "
                                         : "store ";
        s += ev.type == RefType::IFetch ? " CODE"
                                        : " D" + std::to_string(idx);
        s += " (line 0x";
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(ev.line));
        s += buf;
        s += ", home " +
             std::to_string(static_cast<unsigned>(ev.line >> 25));
        s += ")\n";
    }
    return s;
}

McheckResult
modelCheck(const McheckConfig &cfg)
{
    McheckResult res;
    const std::vector<Addr> tracked = cfg.trackedLines();
    const std::vector<McheckEvent> evs = cfg.events();
    ScopedPanicThrow throw_scope; // violations throw, never abort

    auto makeSys = [&] {
        auto sys = std::make_unique<MemorySystem>(cfg.memConfig());
        sys->setMutationForTest(cfg.mutation);
        return sys;
    };

    struct StateRec
    {
        std::uint32_t parent;
        std::uint16_t event; //!< 0xFFFF marks the initial state
    };
    std::vector<StateRec> states;
    std::unordered_set<std::string> seen;
    std::deque<std::uint32_t> frontier;

    {
        auto sys = makeSys();
        Shadow shadow;
        seen.insert(fingerprint(*sys, shadow, tracked));
        states.push_back({0, 0xFFFF});
        frontier.push_back(0);
    }

    auto pathOf = [&](std::uint32_t s) {
        std::vector<std::uint16_t> path;
        while (states[s].event != 0xFFFF) {
            path.push_back(states[s].event);
            s = states[s].parent;
        }
        std::reverse(path.begin(), path.end());
        return path;
    };

    while (!frontier.empty()) {
        const std::uint32_t cur = frontier.front();
        frontier.pop_front();
        const std::vector<std::uint16_t> path = pathOf(cur);

        for (std::uint16_t ei = 0;
             ei < static_cast<std::uint16_t>(evs.size()); ++ei) {
            auto sys = makeSys();
            Shadow shadow;
            for (const std::uint16_t pe : path)
                applyEvent(*sys, shadow, tracked, evs[pe], false);
            try {
                applyEvent(*sys, shadow, tracked, evs[ei], true);
            } catch (const PanicError &p) {
                ++res.transitions;
                res.states = states.size();
                res.violation = p.what();
                for (const std::uint16_t pe : path)
                    res.trace.push_back(evs[pe]);
                res.trace.push_back(evs[ei]);
                return res;
            }
            ++res.transitions;
            std::string fp = fingerprint(*sys, shadow, tracked);
            if (seen.insert(std::move(fp)).second) {
                if (states.size() >=
                    static_cast<std::size_t>(cfg.maxStates)) {
                    res.ok = true;
                    res.states = states.size();
                    return res; // capped: exhausted stays false
                }
                states.push_back({cur, ei});
                frontier.push_back(
                    static_cast<std::uint32_t>(states.size() - 1));
            }
        }
    }

    res.ok = true;
    res.exhausted = true;
    res.states = states.size();
    return res;
}

} // namespace isim::verify
