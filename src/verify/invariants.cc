/**
 * @file
 * Invariant auditor implementation.
 */

#include "src/verify/invariants.hh"

#include <atomic>
#include <string>

#include "src/config/run_options.hh"

namespace isim::verify {

namespace {

/**
 * Resolved before main() — single-threaded, so the one getenv() in
 * RunOptions::fromEnv() never runs on a worker thread — and then
 * overridable via setAuditPeriod() (RunOptions::applyGlobal()).
 */
const std::uint64_t startupAuditPeriod =
    RunOptions::fromEnv().auditPeriod;
std::atomic<std::uint64_t> auditPeriodOverride{0};

} // namespace

void
setAuditPeriod(std::uint64_t period)
{
    auditPeriodOverride.store(period, std::memory_order_relaxed);
}

std::uint64_t
auditPeriod()
{
    const std::uint64_t v =
        auditPeriodOverride.load(std::memory_order_relaxed);
    if (v)
        return v;
    // The fallback guards against use before this TU's dynamic init.
    return startupAuditPeriod ? startupAuditPeriod
                              : std::uint64_t{1} << 20;
}

namespace {

/** Rank for the L1-below-L2 permission ordering: I < S < E==M. */
unsigned
permRank(LineState s)
{
    switch (s) {
      case LineState::Invalid:
        return 0;
      case LineState::Shared:
        return 1;
      case LineState::Exclusive:
      case LineState::Modified:
        return 2;
    }
    return 0;
}

} // namespace

bool
NodeHolding::holdsAny() const
{
    if (l2 != LineState::Invalid || rac != LineState::Invalid || inVb)
        return true;
    for (LineState s : l1i) {
        if (s != LineState::Invalid)
            return true;
    }
    for (LineState s : l1d) {
        if (s != LineState::Invalid)
            return true;
    }
    return false;
}

bool
NodeHolding::ownedAny() const
{
    if (lineOwned(l2) || lineOwned(rac) || (inVb && lineOwned(vb)))
        return true;
    for (LineState s : l1i) {
        if (lineOwned(s))
            return true;
    }
    for (LineState s : l1d) {
        if (lineOwned(s))
            return true;
    }
    return false;
}

bool
NodeHolding::dirtyAny() const
{
    if (l2 == LineState::Modified || rac == LineState::Modified ||
        (inVb && vb == LineState::Modified)) {
        return true;
    }
    for (LineState s : l1d) {
        if (s == LineState::Modified)
            return true;
    }
    return false;
}

NodeHolding
holdingOf(const MemorySystem &ms, NodeId node, Addr line_addr)
{
    const unsigned cores = ms.config().coresPerNode;
    NodeHolding h;
    h.l1i.resize(cores, LineState::Invalid);
    h.l1d.resize(cores, LineState::Invalid);
    for (unsigned c = 0; c < cores; ++c) {
        const NodeId core = node * cores + c;
        if (const CacheLine *l = ms.l1i(core).probe(line_addr))
            h.l1i[c] = l->state;
        if (const CacheLine *l = ms.l1d(core).probe(line_addr))
            h.l1d[c] = l->state;
    }
    if (const CacheLine *l = ms.l2(node).probe(line_addr))
        h.l2 = l->state;
    for (const auto &[vb_line, vb_state] : ms.victimBuffer(node)) {
        if (vb_line != line_addr)
            continue;
        h.inVb = true;
        h.vb = vb_state;
        ++h.vbCopies;
    }
    if (ms.hasRac()) {
        if (const CacheLine *l = ms.rac(node).cache().probe(line_addr))
            h.rac = l->state;
    }
    return h;
}

ExpectedOutcome
classifyOracle(const MemorySystem &ms, NodeId core, RefType type,
               Addr line_addr)
{
    const NodeId node = ms.nodeOfCore(core);
    const NodeId home =
        ms.homeMap().homeOfLine(line_addr, ms.lineBits());
    const MissClass homeClass =
        home == node ? MissClass::Local : MissClass::RemoteClean;
    const NodeHolding h = holdingOf(ms, node, line_addr);
    const unsigned local_core = core % ms.config().coresPerNode;
    const LineState l1 = type == RefType::IFetch ? h.l1i[local_core]
                                                 : h.l1d[local_core];

    ExpectedOutcome e;

    // --- L1 resident ---
    if (l1 != LineState::Invalid) {
        if (type != RefType::Store || l1 == LineState::Modified) {
            e.cls = MissClass::L1Hit;
        } else if (lineOwned(h.l2)) {
            e.cls = MissClass::L1Hit; // silent E->M at the node
        } else {
            e.cls = homeClass;
            e.upgrade = true;
        }
        return e;
    }

    // --- L2 resident ---
    if (h.l2 != LineState::Invalid) {
        if (type == RefType::Store && !lineOwned(h.l2)) {
            e.cls = homeClass;
            e.upgrade = true;
        } else {
            e.cls = MissClass::L2Hit;
        }
        return e;
    }

    // --- Victim buffer ---
    if (ms.hasVictimBuffer() && h.inVb) {
        e.victimHit = true;
        if (type == RefType::Store && !lineOwned(h.vb)) {
            e.cls = homeClass;
            e.upgrade = true;
        } else {
            e.cls = MissClass::L2Hit;
        }
        return e;
    }

    // --- RAC (remote-home lines only) ---
    if (ms.hasRac() && home != node && h.rac != LineState::Invalid) {
        e.racHit = true;
        if (type == RefType::Store && !lineOwned(h.rac)) {
            e.cls = MissClass::RemoteClean; // upgrade from a remote home
            e.upgrade = true;
        } else {
            e.cls = MissClass::Local; // RAC data costs local latency
        }
        return e;
    }

    // --- Directory transaction ---
    const DirEntry *d = ms.directory().find(line_addr);
    if (d == nullptr || d->state != LineState::Modified) {
        e.cls = homeClass; // uncached or shared: home memory supplies
        return e;
    }
    const NodeHolding owner = holdingOf(ms, d->owner, line_addr);
    if (owner.dirtyAny()) {
        e.cls = MissClass::RemoteDirty;
    } else {
        e.cls = homeClass; // owner's copy is clean; memory is valid
    }
    return e;
}

void
checkOutcome(const ExpectedOutcome &want, const AccessOutcome &got,
             NodeId core, RefType type, Addr line_addr)
{
    const bool match = want.cls == got.cls &&
                       want.upgrade == got.upgrade &&
                       want.racHit == got.racHit &&
                       want.victimHit == got.victimHit;
    if (match)
        return;
    isim_panic("classification oracle mismatch: core %u %s line %#llx: "
               "protocol returned %s%s%s%s but state implies %s%s%s%s",
               core,
               type == RefType::IFetch  ? "ifetch"
               : type == RefType::Load  ? "load"
                                        : "store",
               static_cast<unsigned long long>(line_addr),
               missClassName(got.cls), got.upgrade ? "+upgrade" : "",
               got.racHit ? "+racHit" : "",
               got.victimHit ? "+victimHit" : "",
               missClassName(want.cls), want.upgrade ? "+upgrade" : "",
               want.racHit ? "+racHit" : "",
               want.victimHit ? "+victimHit" : "");
}

void
auditLine(const MemorySystem &ms, Addr line_addr)
{
    const unsigned num_nodes = ms.config().numNodes;
    std::vector<NodeHolding> h;
    h.reserve(num_nodes);
    for (NodeId n = 0; n < num_nodes; ++n)
        h.push_back(holdingOf(ms, n, line_addr));

    for (NodeId n = 0; n < num_nodes; ++n) {
        const NodeHolding &hn = h[n];

        // Structure-local shape.
        isim_assert(hn.vbCopies <= 1,
                    "victim buffer parked the same line twice");
        isim_assert(!hn.inVb || hn.l2 == LineState::Invalid,
                    "victim-buffer line still resident in the L2");
        if (hn.rac != LineState::Invalid) {
            isim_assert(
                ms.homeMap().homeOfLine(line_addr, ms.lineBits()) != n,
                "RAC holds a local-home line");
            if (lineOwned(hn.rac)) {
                isim_assert(hn.l2 == LineState::Invalid,
                            "RAC ownership marker while the L2 holds "
                            "the line");
            }
        }

        // L1s stay within the L2's permission (inclusion + hierarchy).
        for (unsigned c = 0; c < hn.l1i.size(); ++c) {
            if (hn.l1i[c] == LineState::Invalid)
                continue;
            isim_assert(hn.l2 != LineState::Invalid,
                        "L1I line violates inclusion");
            isim_assert(permRank(hn.l1i[c]) <= permRank(hn.l2),
                        "L1I permission exceeds the L2's");
        }
        for (unsigned c = 0; c < hn.l1d.size(); ++c) {
            if (hn.l1d[c] == LineState::Invalid)
                continue;
            isim_assert(hn.l2 != LineState::Invalid,
                        "L1D line violates inclusion");
            isim_assert(permRank(hn.l1d[c]) <= permRank(hn.l2),
                        "L1D permission exceeds the L2's");
            if (hn.l1d[c] == LineState::Modified) {
                isim_assert(hn.l2 == LineState::Modified,
                            "dirty L1D line over a clean L2 line");
            }
        }

        // Single writer: an owned copy anywhere makes every other
        // node's copy illegal (multiple-reader is the Shared case).
        if (hn.ownedAny()) {
            for (NodeId m = 0; m < num_nodes; ++m) {
                isim_assert(m == n || !h[m].holdsAny(),
                            "two nodes hold a line one of them owns");
            }
        }
    }

    // Directory agreement, both directions.
    const DirEntry *e = ms.directory().find(line_addr);
    if (e == nullptr) {
        for (NodeId n = 0; n < num_nodes; ++n) {
            isim_assert(!h[n].holdsAny(),
                        "node holds a line the directory calls uncached");
        }
        return;
    }
    Directory::checkEntry(*e, num_nodes);
    isim_assert(!e->isUncached(), "resident directory entry is Uncached");
    for (NodeId n = 0; n < num_nodes; ++n) {
        isim_assert(e->hasSharer(n) == h[n].holdsAny(),
                    "directory sharer vector disagrees with the caches");
    }
    if (e->state == LineState::Modified) {
        isim_assert(h[e->owner].ownedNodeLevel(),
                    "directory owner holds no owned node-level copy");
    } else {
        for (NodeId n = 0; n < num_nodes; ++n) {
            isim_assert(!h[n].ownedAny(),
                        "owned copy of a line the directory calls Shared");
        }
    }
    // Dirty data must belong to the directory's owner.
    for (NodeId n = 0; n < num_nodes; ++n) {
        if (!h[n].dirtyAny())
            continue;
        isim_assert(e->state == LineState::Modified && e->owner == n,
                    "dirty copy at a node the directory does not own");
    }
}

void
auditStats(const MemorySystem &ms)
{
    const unsigned num_nodes = ms.config().numNodes;
    const unsigned cores = ms.config().coresPerNode;
    std::uint64_t l1_accesses_total = 0;

    for (NodeId n = 0; n < num_nodes; ++n) {
        const NodeProtocolStats &s = ms.nodeStats(n);
        std::uint64_t l1_misses = 0;
        for (unsigned c = 0; c < cores; ++c) {
            const NodeId core = n * cores + c;
            l1_accesses_total += ms.l1i(core).counters().accesses;
            l1_accesses_total += ms.l1d(core).counters().accesses;
            l1_misses += ms.l1i(core).counters().misses();
            l1_misses += ms.l1d(core).counters().misses();
        }
        const CacheCounters &l2c = ms.l2(n).counters();

        // Every L1 miss probes the L2, and nothing else does.
        isim_assert(l1_misses == l2c.accesses,
                    "L1 miss count does not reconcile with L2 accesses");

        // Every L2 miss is either classified (per-class counters), a
        // victim-buffer recovery, or a RAC ownership upgrade.
        isim_assert(l2c.misses() == s.totalL2Misses() + s.victimHits +
                                        s.racUpgrades,
                    "per-class miss counters do not sum to L2 misses");

        // Instruction + data splits reconcile with the total.
        isim_assert((s.instrLocal + s.instrRemote) +
                            (s.dataLocal + s.dataRemoteClean +
                             s.dataRemoteDirty) ==
                        s.totalL2Misses(),
                    "instruction/data split does not reconcile");

        isim_assert(s.storesCausingInval <= s.storeRefs,
                    "more invalidating stores than stores");
        isim_assert(s.storesCausingInval <= s.invalidationsSent,
                    "invalidating stores outnumber invalidations");

        if (ms.hasRac()) {
            const RacCounters &rc = ms.rac(n).counters();
            isim_assert(rc.hits <= rc.lookups,
                        "RAC hits exceed RAC lookups");
            isim_assert(s.racUpgrades <= rc.hits,
                        "RAC upgrades exceed RAC hits");
        }
    }

    // Every access() performs exactly one L1 access, machine-wide.
    isim_assert(l1_accesses_total == ms.transitionCount(),
                "summed L1 accesses do not match the transition count");
}

void
auditFull(const MemorySystem &ms)
{
    ms.checkInvariants(); // forward: every cached line vs directory
    const unsigned num_nodes = ms.config().numNodes;
    ms.directory().forEachEntry([&](Addr line_addr, const DirEntry &e) {
        Directory::checkEntry(e, num_nodes);
        auditLine(ms, line_addr); // reverse: entry vs every structure
    });
    auditStats(ms);
}

TransitionAudit::TransitionAudit(const MemorySystem &ms, NodeId core,
                                 RefType type, Addr paddr)
    : ms_(ms),
      core_(core),
      type_(type),
      lineAddr_(paddr >> ms.lineBits()),
      expected_(classifyOracle(ms, core, type, paddr >> ms.lineBits()))
{
}

void
TransitionAudit::finish(const AccessOutcome &out)
{
    checkOutcome(expected_, out, core_, type_, lineAddr_);
    auditLine(ms_, lineAddr_);
    auditStats(ms_);
    // Full audits log-spaced early, then every ISIM_AUDIT_PERIOD.
    const std::uint64_t t = ms_.transitionCount();
    if ((t & (t - 1)) == 0 || t % auditPeriod() == 0)
        auditFull(ms_);
}

AccessOutcome
auditedAccess(MemorySystem &ms, NodeId core, RefType type, Addr paddr,
              Tick now)
{
    TransitionAudit audit(ms, core, type, paddr);
    const AccessOutcome out = ms.access(core, type, paddr, now);
    audit.finish(out);
    return out;
}

} // namespace isim::verify
