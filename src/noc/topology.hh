/**
 * @file
 * Interconnect topology for the multiprocessor: a 2D torus of nodes,
 * the organization the Alpha 21364 proposed (paper Figure 1B shows the
 * 364 mesh/torus with per-node memory and I/O). Used by the component
 * latency model and the network ablation; the table-driven latency
 * model does not depend on it.
 */

#ifndef ISIM_NOC_TOPOLOGY_HH
#define ISIM_NOC_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "src/base/types.hh"

namespace isim {

/** Coordinates of a node in the torus grid. */
struct TorusCoord
{
    unsigned x = 0;
    unsigned y = 0;
};

/**
 * A 2D torus sized to hold a given node count. The grid is chosen as
 * close to square as possible (8 nodes -> 4x2).
 */
class TorusTopology
{
  public:
    explicit TorusTopology(unsigned num_nodes);

    unsigned numNodes() const { return numNodes_; }
    unsigned width() const { return width_; }
    unsigned height() const { return height_; }

    TorusCoord coordOf(NodeId node) const;
    NodeId nodeAt(TorusCoord c) const;

    /** Minimal hop count between two nodes (torus wrap-around). */
    unsigned hops(NodeId a, NodeId b) const;

    /** Average hop count over all ordered pairs of distinct nodes. */
    double averageHops() const;

    /** Worst-case hop count. */
    unsigned diameter() const;

  private:
    unsigned numNodes_;
    unsigned width_;
    unsigned height_;
};

} // namespace isim

#endif // ISIM_NOC_TOPOLOGY_HH
