/**
 * @file
 * Torus topology implementation.
 */

#include "src/noc/topology.hh"

#include <cmath>

#include "src/base/logging.hh"

namespace isim {

namespace {

/** Torus distance along one dimension of the given extent. */
unsigned
ringDistance(unsigned a, unsigned b, unsigned extent)
{
    const unsigned d = a > b ? a - b : b - a;
    return std::min(d, extent - d);
}

} // namespace

TorusTopology::TorusTopology(unsigned num_nodes) : numNodes_(num_nodes)
{
    isim_assert(num_nodes >= 1);
    // Closest-to-square factorization with width >= height.
    unsigned best_h = 1;
    for (unsigned h = 1; h * h <= num_nodes; ++h) {
        if (num_nodes % h == 0)
            best_h = h;
    }
    height_ = best_h;
    width_ = num_nodes / best_h;
}

TorusCoord
TorusTopology::coordOf(NodeId node) const
{
    isim_assert(node < numNodes_);
    return TorusCoord{static_cast<unsigned>(node) % width_,
                      static_cast<unsigned>(node) / width_};
}

NodeId
TorusTopology::nodeAt(TorusCoord c) const
{
    isim_assert(c.x < width_ && c.y < height_);
    return c.y * width_ + c.x;
}

unsigned
TorusTopology::hops(NodeId a, NodeId b) const
{
    const TorusCoord ca = coordOf(a);
    const TorusCoord cb = coordOf(b);
    return ringDistance(ca.x, cb.x, width_) +
           ringDistance(ca.y, cb.y, height_);
}

double
TorusTopology::averageHops() const
{
    if (numNodes_ < 2)
        return 0.0;
    std::uint64_t total = 0;
    std::uint64_t pairs = 0;
    for (NodeId a = 0; a < numNodes_; ++a) {
        for (NodeId b = 0; b < numNodes_; ++b) {
            if (a == b)
                continue;
            total += hops(a, b);
            ++pairs;
        }
    }
    return static_cast<double>(total) / static_cast<double>(pairs);
}

unsigned
TorusTopology::diameter() const
{
    unsigned worst = 0;
    for (NodeId a = 0; a < numNodes_; ++a)
        for (NodeId b = 0; b < numNodes_; ++b)
            worst = std::max(worst, hops(a, b));
    return worst;
}

} // namespace isim
