/**
 * @file
 * Message latency over the torus interconnect: per-hop router delay,
 * per-hop link flight time, and serialization at the link bandwidth
 * (the paper assumes direct-Rambus-style signaling with >4 GB/s
 * unidirectional point-to-point links, four pairs per node).
 */

#ifndef ISIM_NOC_NETWORK_HH
#define ISIM_NOC_NETWORK_HH

#include "src/base/types.hh"
#include "src/noc/topology.hh"

namespace isim {

/** Physical parameters of one link / router stage. */
struct LinkParams
{
    Cycles routerDelay = 5;  //!< per-hop router pipeline
    Cycles linkFlight = 5;   //!< per-hop wire flight
    double bandwidthGBs = 4.0; //!< per-link unidirectional bandwidth
    unsigned headerBytes = 16; //!< routing/command header per message
};

/**
 * Latency calculator for point-to-point messages on the torus. No
 * contention is modelled (the study's latency table is uncontended,
 * and OLTP's bandwidth demand is far below the 4 GB/s links).
 */
class Network
{
  public:
    Network(const TorusTopology &topo, const LinkParams &params);

    const TorusTopology &topology() const { return topo_; }
    const LinkParams &params() const { return params_; }

    /** Serialization time for a payload of the given size. */
    Cycles serialization(unsigned payload_bytes) const;

    /** One-way latency src -> dst for a message with payload. */
    Cycles oneWay(NodeId src, NodeId dst, unsigned payload_bytes) const;

    /** One-way latency for the average hop distance (for modelling). */
    Cycles oneWayAverage(unsigned payload_bytes) const;

  private:
    TorusTopology topo_;
    LinkParams params_;
};

} // namespace isim

#endif // ISIM_NOC_NETWORK_HH
