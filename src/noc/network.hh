/**
 * @file
 * Message latency over the torus interconnect: per-hop router delay,
 * per-hop link flight time, and serialization at the link bandwidth
 * (the paper assumes direct-Rambus-style signaling with >4 GB/s
 * unidirectional point-to-point links, four pairs per node).
 */

#ifndef ISIM_NOC_NETWORK_HH
#define ISIM_NOC_NETWORK_HH

#include <cstdint>
#include <string>

#include "src/base/types.hh"
#include "src/noc/topology.hh"

namespace isim {

namespace stats {
class Registry;
}

/**
 * Interconnect traffic counters, accumulated by the coherence engine
 * for every logical message leg of a directory transaction (request to
 * home, probe to owner, data back). Always counted — unlike the
 * per-hop trace events, which exist only while a tracer is attached —
 * so figure runs can report NoC load without observability enabled.
 */
struct NocCounters
{
    std::uint64_t messages = 0;     //!< total message legs
    std::uint64_t ctrlMessages = 0; //!< header-only legs
    std::uint64_t dataMessages = 0; //!< legs carrying a cache line
    std::uint64_t bytes = 0;        //!< header + payload bytes moved
    std::uint64_t hops = 0;         //!< torus hops summed over legs

    /**
     * Register every counter under `prefix` (e.g. "noc"), plus the
     * hops-per-message formula. The struct must outlive the registry.
     */
    void registerStats(stats::Registry &r, const std::string &prefix) const;
};

/** Physical parameters of one link / router stage. */
struct LinkParams
{
    Cycles routerDelay = 5;  //!< per-hop router pipeline
    Cycles linkFlight = 5;   //!< per-hop wire flight
    double bandwidthGBs = 4.0; //!< per-link unidirectional bandwidth
    unsigned headerBytes = 16; //!< routing/command header per message
};

/**
 * Latency calculator for point-to-point messages on the torus. No
 * contention is modelled (the study's latency table is uncontended,
 * and OLTP's bandwidth demand is far below the 4 GB/s links).
 */
class Network
{
  public:
    Network(const TorusTopology &topo, const LinkParams &params);

    const TorusTopology &topology() const { return topo_; }
    const LinkParams &params() const { return params_; }

    /** Serialization time for a payload of the given size. */
    Cycles serialization(unsigned payload_bytes) const;

    /** One-way latency src -> dst for a message with payload. */
    Cycles oneWay(NodeId src, NodeId dst, unsigned payload_bytes) const;

    /** One-way latency for the average hop distance (for modelling). */
    Cycles oneWayAverage(unsigned payload_bytes) const;

  private:
    TorusTopology topo_;
    LinkParams params_;
};

} // namespace isim

#endif // ISIM_NOC_NETWORK_HH
