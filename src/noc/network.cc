/**
 * @file
 * Network latency calculator implementation.
 */

#include "src/noc/network.hh"

#include <cmath>

namespace isim {

Network::Network(const TorusTopology &topo, const LinkParams &params)
    : topo_(topo), params_(params)
{
}

Cycles
Network::serialization(unsigned payload_bytes) const
{
    const double bytes =
        static_cast<double>(payload_bytes + params_.headerBytes);
    // bandwidth GB/s at a 1 GHz clock == bytes per cycle.
    return static_cast<Cycles>(
        std::ceil(bytes / params_.bandwidthGBs));
}

Cycles
Network::oneWay(NodeId src, NodeId dst, unsigned payload_bytes) const
{
    const unsigned h = topo_.hops(src, dst);
    return h * (params_.routerDelay + params_.linkFlight) +
           serialization(payload_bytes);
}

Cycles
Network::oneWayAverage(unsigned payload_bytes) const
{
    const double h = topo_.averageHops();
    const double hop_cost = h * static_cast<double>(params_.routerDelay +
                                                    params_.linkFlight);
    return static_cast<Cycles>(std::llround(hop_cost)) +
           serialization(payload_bytes);
}

} // namespace isim
