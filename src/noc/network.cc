/**
 * @file
 * Network latency calculator implementation.
 */

#include "src/noc/network.hh"

#include <cmath>

#include "src/stats/registry.hh"

namespace isim {

void
NocCounters::registerStats(stats::Registry &r,
                           const std::string &prefix) const
{
    const NocCounters *c = this;
    r.counter(prefix + ".messages",
              "interconnect message legs (directory transactions)",
              "msgs", [c] { return c->messages; });
    r.counter(prefix + ".ctrl_messages", "header-only message legs",
              "msgs", [c] { return c->ctrlMessages; });
    r.counter(prefix + ".data_messages",
              "message legs carrying a cache line", "msgs",
              [c] { return c->dataMessages; });
    r.counter(prefix + ".bytes", "header + payload bytes moved", "bytes",
              [c] { return c->bytes; });
    r.counter(prefix + ".hops", "torus hops summed over message legs",
              "hops", [c] { return c->hops; });
    r.formula(prefix + ".hops_per_message", "average hop distance",
              "hops", [c] {
                  return c->messages ? static_cast<double>(c->hops) /
                                           static_cast<double>(c->messages)
                                     : 0.0;
              });
}

Network::Network(const TorusTopology &topo, const LinkParams &params)
    : topo_(topo), params_(params)
{
}

Cycles
Network::serialization(unsigned payload_bytes) const
{
    const double bytes =
        static_cast<double>(payload_bytes + params_.headerBytes);
    // bandwidth GB/s at a 1 GHz clock == bytes per cycle.
    return static_cast<Cycles>(
        std::ceil(bytes / params_.bandwidthGBs));
}

Cycles
Network::oneWay(NodeId src, NodeId dst, unsigned payload_bytes) const
{
    const unsigned h = topo_.hops(src, dst);
    return h * (params_.routerDelay + params_.linkFlight) +
           serialization(payload_bytes);
}

Cycles
Network::oneWayAverage(unsigned payload_bytes) const
{
    const double h = topo_.averageHops();
    const double hop_cost = h * static_cast<double>(params_.routerDelay +
                                                    params_.linkFlight);
    return static_cast<Cycles>(std::llround(hop_cost)) +
           serialization(payload_bytes);
}

} // namespace isim
