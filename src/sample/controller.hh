/**
 * @file
 * SampleController: drives a warm Machine through alternating
 * fast-forward and timing measurement windows on a deterministic,
 * seed-derived schedule, and aggregates the per-window registry
 * snapshots into a run-level RunResult with a 95% CI per stat.
 *
 * Each sampling period of ff + measure transactions runs as
 *
 *   [functional skip][atomic warm][reset stats][timing measure]
 *
 * The skip tier advances the TPC-B database (and the committed count)
 * through a stateless seed-derived parameter stream without emitting a
 * single memory reference — that is where the >= 3x wall-clock saving
 * comes from, since the atomic interpreter's per-transaction cost is
 * nearly the timing loop's (docs/SAMPLING.md records the measurement).
 * The atomic warm tier then re-executes the servers' real reference
 * stream fast-functionally to re-warm short-history state (latches,
 * buffer cache, L2 recency) before the window's timing measurement.
 */

#ifndef ISIM_SAMPLE_CONTROLLER_HH
#define ISIM_SAMPLE_CONTROLLER_HH

#include "src/core/exec_mode.hh"
#include "src/core/machine.hh"
#include "src/sample/spec.hh"

namespace isim {
namespace sample {

class SampleController
{
  public:
    /**
     * Bind to a machine. The machine must be warm (runWarmup or a
     * checkpoint restore) before run() — the sampled schedule carves
     * up the measurement phase only, never the warm-up.
     */
    SampleController(Machine &machine, const SampleSpec &spec);

    /**
     * Run the sampled measurement and return the aggregated result.
     * Counters (and distribution counts/sums) are expanded to
     * run-level totals by T / covered; formulas report the mean of
     * the per-window values; distributions merge the per-window
     * histograms. RunResult::sampling carries the per-stat bounds.
     * The schedule derives from the workload seed and the window
     * index alone, so the result is bit-identical across --jobs and
     * across checkpoint save/resume.
     */
    RunResult run(ExecMode measure_mode = ExecMode::Timing);

  private:
    Machine &machine_;
    SampleSpec spec_;
};

} // namespace sample
} // namespace isim

#endif // ISIM_SAMPLE_CONTROLLER_HH
