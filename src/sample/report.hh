/**
 * @file
 * SampleReport: the per-run record of a sampled measurement — the
 * resolved schedule plus a standard error and 95% CI per stat. Kept
 * dependency-light (included by machine.hh so RunResult can carry it);
 * the controller that fills it lives in src/sample/controller.hh.
 */

#ifndef ISIM_SAMPLE_REPORT_HH
#define ISIM_SAMPLE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sample/spec.hh"

namespace isim {
namespace sample {

/**
 * Error bounds of one stat. For Counter stats (and the .count/.sum
 * fields of distributions) the bounds apply to the expanded run-level
 * total; for Formula/Gauge stats (and distribution .mean) they apply
 * to the mean of the per-window values — i.e. always to the value the
 * manifest reports for that stat.
 */
struct StatCi
{
    std::string name;
    double sem = 0.0;
    double ci95 = 0.0;
};

/** Sampling record of one run; `enabled` false on exact runs. */
struct SampleReport
{
    bool enabled = false;
    SampleMode mode = SampleMode::Fixed;
    std::uint64_t ff = 0;
    std::uint64_t measure = 0;
    std::uint64_t warm = 0;
    std::uint64_t windows = 0;
    /** Transactions actually committed inside measurement windows. */
    std::uint64_t covered = 0;

    /** Per-stat bounds, sorted by name. */
    std::vector<StatCi> stats;

    /** Lookup by exact stat name; nullptr when absent. */
    const StatCi *find(const std::string &name) const;
};

} // namespace sample
} // namespace isim

#endif // ISIM_SAMPLE_REPORT_HH
