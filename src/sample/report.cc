/**
 * @file
 * SampleReport lookup.
 */

#include "src/sample/report.hh"

#include <algorithm>

namespace isim {
namespace sample {

const StatCi *
SampleReport::find(const std::string &name) const
{
    const auto it = std::lower_bound(
        stats.begin(), stats.end(), name,
        [](const StatCi &a, const std::string &b) { return a.name < b; });
    if (it == stats.end() || it->name != name)
        return nullptr;
    return &*it;
}

} // namespace sample
} // namespace isim
