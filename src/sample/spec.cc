/**
 * @file
 * SampleSpec validation and SamplePlan derivation.
 */

#include "src/sample/spec.hh"

#include <algorithm>

#include "src/base/logging.hh"

namespace isim {
namespace sample {

const char *
sampleModeName(SampleMode mode)
{
    switch (mode) {
      case SampleMode::Fixed:
        return "fixed";
      case SampleMode::Random:
        return "random";
    }
    return "unknown";
}

std::optional<SampleMode>
sampleModeFromName(const std::string &name)
{
    if (name == "fixed")
        return SampleMode::Fixed;
    if (name == "random")
        return SampleMode::Random;
    return std::nullopt;
}

std::uint64_t
SampleSpec::resolvedWarm() const
{
    if (warm != kAutoWarm)
        return warm;
    return std::min(ff, measure);
}

void
SampleSpec::validate() const
{
    if (measure == 0) {
        if (ff != 0 || windows != 0 || warm != kAutoWarm) {
            isim_fatal("--sample-ff/--sample-windows/--sample-warm "
                       "require --sample-measure > 0: a sampled run "
                       "needs measurement windows to estimate from "
                       "(docs/SAMPLING.md)");
        }
        return;
    }
    if (ff == 0) {
        isim_fatal("--sample-measure requires --sample-ff > 0: with "
                   "nothing fast-forwarded, sampling is a full timing "
                   "run split into windows and saves no time "
                   "(docs/SAMPLING.md)");
    }
    if (windows == 1) {
        isim_fatal("--sample-windows 1 cannot produce a confidence "
                   "interval: the interval-batch estimator needs at "
                   "least 2 windows for a variance (docs/SAMPLING.md)");
    }
    if (warm != kAutoWarm && warm > ff) {
        isim_fatal("--sample-warm (%llu) must be <= --sample-ff "
                   "(%llu): the warm tier is part of the fast-forward",
                   static_cast<unsigned long long>(warm),
                   static_cast<unsigned long long>(ff));
    }
}

SamplePlan
derivePlan(const SampleSpec &spec, std::uint64_t txns)
{
    spec.validate();
    isim_assert(spec.enabled(), "derivePlan on a disabled SampleSpec");

    SamplePlan plan;
    plan.ff = spec.ff;
    plan.measure = spec.measure;
    plan.warm = spec.resolvedWarm();
    plan.mode = spec.mode;

    const std::uint64_t period = plan.ff + plan.measure;
    plan.windows = spec.windows != 0 ? spec.windows : txns / period;
    if (plan.windows < 2) {
        isim_fatal("sampled run needs at least 2 windows but "
                   "%llu transactions fit %llu window(s) of "
                   "ff=%llu + measure=%llu; shrink the period or "
                   "raise --txns (docs/SAMPLING.md)",
                   static_cast<unsigned long long>(txns),
                   static_cast<unsigned long long>(plan.windows),
                   static_cast<unsigned long long>(plan.ff),
                   static_cast<unsigned long long>(plan.measure));
    }
    if (plan.windows * period > txns) {
        isim_fatal("--sample-windows %llu x (ff=%llu + measure=%llu) "
                   "= %llu transactions exceeds the run's %llu "
                   "measured transactions",
                   static_cast<unsigned long long>(plan.windows),
                   static_cast<unsigned long long>(plan.ff),
                   static_cast<unsigned long long>(plan.measure),
                   static_cast<unsigned long long>(plan.windows *
                                                   period),
                   static_cast<unsigned long long>(txns));
    }
    return plan;
}

} // namespace sample
} // namespace isim
