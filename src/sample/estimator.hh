/**
 * @file
 * Interval-batch mean/CI estimator for sampled simulation: each
 * measurement window is one observation, the per-window values are
 * treated as i.i.d. batch means, and the 95% confidence interval uses
 * the Student-t critical value for the window count. docs/SAMPLING.md
 * discusses when this model (and therefore the CI) lies.
 */

#ifndef ISIM_SAMPLE_ESTIMATOR_HH
#define ISIM_SAMPLE_ESTIMATOR_HH

#include <cstdint>
#include <vector>

namespace isim {
namespace sample {

/**
 * Two-sided 95% Student-t critical value for `df` degrees of freedom
 * (exact table through df=30, 1.960 beyond). df=0 returns NaN.
 */
double tCritical95(std::uint64_t df);

/** Mean with standard error and 95% half-width over n observations. */
struct MeanCi
{
    double mean = 0.0;
    double sem = 0.0;  //!< standard error of the mean, s / sqrt(n)
    double ci95 = 0.0; //!< t(n-1) * sem (half-width)
    std::uint64_t n = 0;
};

/**
 * Estimate over the finite entries of `xs` (NaN/inf observations are
 * dropped — an undefined per-window formula must not poison the CI of
 * the windows where it was defined). n=0 yields NaN mean; n=1 yields
 * NaN sem/ci95 (no variance estimate exists). A constant stream
 * yields an exactly zero-width interval.
 */
MeanCi meanCi(const std::vector<double> &xs);

} // namespace sample
} // namespace isim

#endif // ISIM_SAMPLE_ESTIMATOR_HH
