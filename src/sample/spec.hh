/**
 * @file
 * Sampled-simulation configuration: the user-facing SampleSpec (the
 * --sample-* axis of RunOptions) and the derived SamplePlan the
 * controller executes. A sampled run carves the measurement phase into
 * alternating fast-forward and timing measurement windows (systematic
 * sampling, fixed-interval or random-offset) and reports every stat
 * with a standard error and 95% confidence interval; the estimator and
 * its failure modes are documented in docs/SAMPLING.md.
 */

#ifndef ISIM_SAMPLE_SPEC_HH
#define ISIM_SAMPLE_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>

namespace isim {
namespace sample {

/** How measurement windows are placed inside each sampling period. */
enum class SampleMode : std::uint8_t
{
    Fixed,  //!< window at the end of every period (fixed interval)
    Random, //!< seed-derived random offset within each period
};

const char *sampleModeName(SampleMode mode);
std::optional<SampleMode> sampleModeFromName(const std::string &name);

/** Sentinel for "derive the warm tier length" (see SampleSpec::warm). */
constexpr std::uint64_t kAutoWarm = ~std::uint64_t{0};

/**
 * The sampling axis as configured (RunOptions --sample-* flags /
 * ISIM_SAMPLE_* environment). Disabled unless `measure` is set.
 */
struct SampleSpec
{
    /** Fast-forwarded transactions per period (skip + warm tiers). */
    std::uint64_t ff = 0;
    /** Timing-measured transactions per window (0 = sampling off). */
    std::uint64_t measure = 0;
    /** Window count (0 = derive from the measured transaction count). */
    std::uint64_t windows = 0;
    /**
     * Atomic-warm transactions immediately before each measurement
     * window, re-warming short-history state (latches, buffer-cache
     * and L2 recency) after the functional skip. kAutoWarm derives
     * min(ff, measure); `ff` makes the whole fast-forward atomic.
     */
    std::uint64_t warm = kAutoWarm;
    SampleMode mode = SampleMode::Fixed;

    bool enabled() const { return measure != 0; }

    /** The warm tier actually run (resolves kAutoWarm). */
    std::uint64_t resolvedWarm() const;

    /**
     * Fail fast on degenerate configurations: --sample-* without
     * --sample-measure, measure without ff, a single window, or a
     * warm tier longer than the fast-forward.
     */
    void validate() const;
};

/** The schedule a sampled run executes, fully resolved. */
struct SamplePlan
{
    std::uint64_t ff = 0;
    std::uint64_t measure = 0;
    std::uint64_t warm = 0;
    std::uint64_t windows = 0;
    SampleMode mode = SampleMode::Fixed;
};

/**
 * Resolve a spec against the run's measured transaction count:
 * windows default to txns / (ff + measure), and the schedule must fit
 * (windows * (ff + measure) <= txns, at least 2 windows). Fatal on a
 * spec that cannot produce a confidence interval.
 */
SamplePlan derivePlan(const SampleSpec &spec, std::uint64_t txns);

} // namespace sample
} // namespace isim

#endif // ISIM_SAMPLE_SPEC_HH
