/**
 * @file
 * SampleController implementation: the window loop and the
 * interval-batch aggregation.
 */

#include "src/sample/controller.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "src/base/logging.hh"
#include "src/base/random.hh"
#include "src/core/simulation.hh"
#include "src/obs/observability.hh"
#include "src/prof/profiler.hh"
#include "src/sample/estimator.hh"

namespace isim {
namespace sample {

namespace {

std::uint64_t
scaled(std::uint64_t v, double e)
{
    return static_cast<std::uint64_t>(
        std::llround(e * static_cast<double>(v)));
}

CpuStats
scaleCpu(const CpuStats &s, double e)
{
    CpuStats out;
    out.busy = scaled(s.busy, e);
    out.l2HitStall = scaled(s.l2HitStall, e);
    out.localStall = scaled(s.localStall, e);
    out.remoteStall = scaled(s.remoteStall, e);
    out.remoteDirtyStall = scaled(s.remoteDirtyStall, e);
    out.idle = scaled(s.idle, e);
    out.kernelTime = scaled(s.kernelTime, e);
    out.instructions = scaled(s.instructions, e);
    out.loads = scaled(s.loads, e);
    out.stores = scaled(s.stores, e);
    return out;
}

NodeProtocolStats
scaleMisses(const NodeProtocolStats &s, double e)
{
    NodeProtocolStats out;
    out.instrLocal = scaled(s.instrLocal, e);
    out.instrRemote = scaled(s.instrRemote, e);
    out.dataLocal = scaled(s.dataLocal, e);
    out.dataRemoteClean = scaled(s.dataRemoteClean, e);
    out.dataRemoteDirty = scaled(s.dataRemoteDirty, e);
    out.upgrades = scaled(s.upgrades, e);
    out.intraNodeInvals = scaled(s.intraNodeInvals, e);
    out.storeRefs = scaled(s.storeRefs, e);
    out.storesCausingInval = scaled(s.storesCausingInval, e);
    out.invalidationsSent = scaled(s.invalidationsSent, e);
    out.writebacksToHome = scaled(s.writebacksToHome, e);
    out.replacementHints = scaled(s.replacementHints, e);
    out.victimHits = scaled(s.victimHits, e);
    out.racUpgrades = scaled(s.racUpgrades, e);
    out.prefetchesIssued = scaled(s.prefetchesIssued, e);
    out.prefetchHits = scaled(s.prefetchHits, e);
    out.mcQueueCycles = scaled(s.mcQueueCycles, e);
    return out;
}

RacCounters
scaleRac(const RacCounters &s, double e)
{
    RacCounters out;
    out.lookups = scaled(s.lookups, e);
    out.hits = scaled(s.hits, e);
    out.allocations = scaled(s.allocations, e);
    out.dirtyInsertions = scaled(s.dirtyInsertions, e);
    out.dirtyServicesToRemote = scaled(s.dirtyServicesToRemote, e);
    out.writebacksToHome = scaled(s.writebacksToHome, e);
    return out;
}

void
accumulateRac(RacCounters &into, const RacCounters &s)
{
    into.lookups += s.lookups;
    into.hits += s.hits;
    into.allocations += s.allocations;
    into.dirtyInsertions += s.dirtyInsertions;
    into.dirtyServicesToRemote += s.dirtyServicesToRemote;
    into.writebacksToHome += s.writebacksToHome;
}

} // namespace

SampleController::SampleController(Machine &machine,
                                   const SampleSpec &spec)
    : machine_(machine), spec_(spec)
{
}

RunResult
SampleController::run(ExecMode measure_mode)
{
    Machine &m = machine_;
    isim_assert(m.warmupRan_,
                "sampled measurement before warm-up (or restore)");

    const std::uint64_t txns = m.config_.workload.transactions;
    const SamplePlan plan = derivePlan(spec_, txns);

    m.ensureSim(nullptr);
    ISIM_PROF_PHASE(prof::Phase::Measure);
    ISIM_PROF_SCOPE("measure");
    if (!m.obsBegun_) {
        if (m.obs_ != nullptr)
            m.obs_->beginRun(m.warmEnd_);
        m.obsBegun_ = true;
    }

    OltpEngine &engine = *m.engine_;
    Simulation &sim = *m.sim_;
    const std::uint64_t seed = m.config_.workload.seed;

    std::vector<stats::Snapshot> windows;
    windows.reserve(plan.windows);
    // std::map: the pooled histograms are iterated into the final
    // snapshot, so the container must be ordered.
    std::map<std::string, Histogram> pooled;
    CpuStats cpuSum;
    NodeProtocolStats missSum;
    RacCounters racSum;
    std::uint64_t covered = 0;
    Tick measuredWall = 0;

    for (std::uint64_t w = 0; w < plan.windows; ++w) {
        // Window placement. The offset derives from (seed, window
        // index) alone — never wall clock or shared iteration state —
        // so the schedule is bit-reproducible across --jobs and
        // checkpoint resume.
        std::uint64_t off = plan.ff;
        if (plan.mode == SampleMode::Random) {
            off = mix64(seed ^ mix64(w ^ 0x77696e646f77ULL)) %
                  (plan.ff + 1);
        }
        const std::uint64_t warm = std::min(plan.warm, off);

        // Functional skip, then atomic re-warm up to the window.
        engine.skipTransactions(off - warm);
        if (warm > 0) {
            sim.runUntilCommitted(engine.committedTransactions() + warm,
                                  ExecMode::Atomic);
        }

        // The measurement window: reset makes the window-end registry
        // snapshot the per-window observation.
        m.resetStats();
        const Tick wall0 = sim.wallTime();
        sim.runUntilCommitted(engine.committedTransactions() +
                                  plan.measure,
                              measure_mode);
        measuredWall += sim.wallTime() - wall0;
        covered += engine.measuredCommitted();
        windows.push_back(m.registry_.snapshot());
        m.registry_.forEachDistribution(
            [&pooled](const std::string &name, const Histogram &h) {
                const auto it = pooled.find(name);
                if (it == pooled.end())
                    pooled.emplace(name, h);
                else
                    it->second.merge(h);
            });
        for (const auto &core : m.cpus_)
            cpuSum += core->stats();
        missSum += m.memSys_->aggregateStats();
        if (m.memSys_->hasRac())
            accumulateRac(racSum, m.memSys_->aggregateRacCounters());

        // Skip the tail of the period.
        engine.skipTransactions(plan.ff - off);
    }

    // Trailing remainder: cover the run's full transaction count so
    // sampled and exact cells end at the same committed total.
    const std::uint64_t target =
        m.config_.workload.warmupTransactions + txns;
    if (engine.committedTransactions() < target) {
        engine.skipTransactions(target -
                                engine.committedTransactions());
    }
    if (m.obs_ != nullptr)
        m.obs_->endRun(sim.wallTime());

    // ---- Aggregate: expand window totals to run level. ----
    isim_assert(covered > 0, "sampled run measured no transactions");
    const double expand =
        static_cast<double>(txns) / static_cast<double>(covered);
    const std::uint64_t nwin = windows.size();

    RunResult r;
    r.name = m.config_.name;
    r.cpu = scaleCpu(cpuSum, expand);
    r.misses = scaleMisses(missSum, expand);
    r.rac = scaleRac(racSum, expand);
    r.transactions = scaled(covered, expand);
    r.wallTime = scaled(measuredWall, expand);
    r.dbConsistent = engine.db().checkConsistency();
    r.warmupMode = m.warmupMode_;
    r.execMode = measure_mode;

    const auto latIt = pooled.find("oltp.txn.latency");
    if (latIt != pooled.end()) {
        const Histogram &lat = latIt->second;
        r.txnLatMeanUs = lat.mean();
        r.txnLatP50Us = lat.quantile(0.50);
        r.txnLatP95Us = lat.quantile(0.95);
        r.txnLatP99Us = lat.quantile(0.99);
    }

    r.sampling.enabled = true;
    r.sampling.mode = plan.mode;
    r.sampling.ff = plan.ff;
    r.sampling.measure = plan.measure;
    r.sampling.warm = plan.warm;
    r.sampling.windows = nwin;
    r.sampling.covered = covered;

    // Final snapshot: per-stat interval-batch estimate over the
    // index-aligned window snapshots (same registry, same sorted
    // names in every window).
    stats::Snapshot &first = windows.front();
    stats::Snapshot out;
    out.reserve(first.size());
    std::vector<double> xs(nwin);
    for (std::size_t i = 0; i < first.size(); ++i) {
        stats::Sample s = first[i];
        switch (s.kind) {
          case stats::Kind::Counter: {
            for (std::uint64_t w = 0; w < nwin; ++w)
                xs[w] = static_cast<double>(windows[w][i].u);
            const MeanCi mc = meanCi(xs);
            s.u = static_cast<std::uint64_t>(std::llround(
                expand * mc.mean * static_cast<double>(mc.n)));
            const double total = expand * static_cast<double>(mc.n);
            r.sampling.stats.push_back(
                {s.name, total * mc.sem, total * mc.ci95});
            break;
          }
          case stats::Kind::Gauge:
          case stats::Kind::Formula: {
            for (std::uint64_t w = 0; w < nwin; ++w)
                xs[w] = windows[w][i].d;
            const MeanCi mc = meanCi(xs);
            if (s.extensive) {
                // Run-total formula (cpu.exec_time): expand like a
                // counter so ratios against counters stay consistent.
                const double total =
                    expand * static_cast<double>(mc.n);
                s.d = total * mc.mean;
                r.sampling.stats.push_back(
                    {s.name, total * mc.sem, total * mc.ci95});
            } else {
                s.d = mc.mean;
                r.sampling.stats.push_back({s.name, mc.sem, mc.ci95});
            }
            break;
          }
          case stats::Kind::Distribution: {
            const auto it = pooled.find(s.name);
            isim_assert(it != pooled.end(),
                        "distribution missing from pooled histograms");
            const Histogram &h = it->second;
            s.dist.count = scaled(h.count(), expand);
            s.dist.sum = expand * h.sum();
            s.dist.mean = h.mean();
            s.dist.min = h.minValue();
            s.dist.max = h.maxValue();
            s.dist.p50 = h.quantile(0.50);
            s.dist.p95 = h.quantile(0.95);
            s.dist.p99 = h.quantile(0.99);
            // Counter-like bounds for the expanded count and sum;
            // mean bounds over the nonempty windows' means.
            for (std::uint64_t w = 0; w < nwin; ++w)
                xs[w] = static_cast<double>(windows[w][i].dist.count);
            const MeanCi mcc = meanCi(xs);
            const double total =
                expand * static_cast<double>(mcc.n);
            r.sampling.stats.push_back({s.name + ".count",
                                        total * mcc.sem,
                                        total * mcc.ci95});
            for (std::uint64_t w = 0; w < nwin; ++w)
                xs[w] = windows[w][i].dist.sum;
            const MeanCi mcs = meanCi(xs);
            r.sampling.stats.push_back({s.name + ".sum",
                                        total * mcs.sem,
                                        total * mcs.ci95});
            for (std::uint64_t w = 0; w < nwin; ++w) {
                xs[w] = windows[w][i].dist.count
                            ? windows[w][i].dist.mean
                            : std::numeric_limits<double>::quiet_NaN();
            }
            const MeanCi mcm = meanCi(xs);
            r.sampling.stats.push_back(
                {s.name + ".mean", mcm.sem, mcm.ci95});
            break;
          }
        }
        out.push_back(std::move(s));
    }
    r.stats = std::move(out);
    std::sort(r.sampling.stats.begin(), r.sampling.stats.end(),
              [](const StatCi &a, const StatCi &b) {
                  return a.name < b.name;
              });
    return r;
}

} // namespace sample
} // namespace isim
