/**
 * @file
 * Interval-batch estimator implementation.
 */

#include "src/sample/estimator.hh"

#include <cmath>
#include <limits>

namespace isim {
namespace sample {

double
tCritical95(std::uint64_t df)
{
    // Two-sided 95% (i.e. t_{0.975,df}); standard table values.
    static const double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    constexpr std::uint64_t kTableSize =
        sizeof(kTable) / sizeof(kTable[0]);
    if (df == 0)
        return std::numeric_limits<double>::quiet_NaN();
    if (df <= kTableSize)
        return kTable[df - 1];
    return 1.960; // normal approximation past df=30
}

MeanCi
meanCi(const std::vector<double> &xs)
{
    MeanCi out;
    double sum = 0.0;
    for (const double x : xs) {
        if (!std::isfinite(x))
            continue;
        sum += x;
        ++out.n;
    }
    if (out.n == 0) {
        out.mean = std::numeric_limits<double>::quiet_NaN();
        out.sem = std::numeric_limits<double>::quiet_NaN();
        out.ci95 = std::numeric_limits<double>::quiet_NaN();
        return out;
    }
    out.mean = sum / static_cast<double>(out.n);
    if (out.n == 1) {
        out.sem = std::numeric_limits<double>::quiet_NaN();
        out.ci95 = std::numeric_limits<double>::quiet_NaN();
        return out;
    }
    double ss = 0.0;
    for (const double x : xs) {
        if (!std::isfinite(x))
            continue;
        const double d = x - out.mean;
        ss += d * d;
    }
    const double var = ss / static_cast<double>(out.n - 1);
    out.sem = std::sqrt(var / static_cast<double>(out.n));
    out.ci95 = tCritical95(out.n - 1) * out.sem;
    return out;
}

} // namespace sample
} // namespace isim
