/**
 * @file
 * Figure 3 latency table.
 */

#include "src/timing/latency_config.hh"

#include "src/base/logging.hh"

namespace isim {

const char *
integrationLevelName(IntegrationLevel level)
{
    switch (level) {
      case IntegrationLevel::ConservativeBase:
        return "Conservative Base";
      case IntegrationLevel::Base:
        return "Base";
      case IntegrationLevel::L2Int:
        return "L2 integrated";
      case IntegrationLevel::L2McInt:
        return "L2, MC integrated";
      case IntegrationLevel::FullInt:
        return "L2, MC, CC/NR integrated";
    }
    return "?";
}

const char *
l2ImplName(L2Impl impl)
{
    switch (impl) {
      case L2Impl::OffchipDirect:
        return "off-chip 1-way";
      case L2Impl::OffchipAssoc:
        return "off-chip n-way";
      case L2Impl::OnchipSram:
        return "on-chip SRAM";
      case L2Impl::OnchipDram:
        return "on-chip DRAM";
    }
    return "?";
}

bool
l2OnChip(L2Impl impl)
{
    return impl == L2Impl::OnchipSram || impl == L2Impl::OnchipDram;
}

bool
validCombination(IntegrationLevel level, L2Impl impl)
{
    const bool integrated = level == IntegrationLevel::L2Int ||
                            level == IntegrationLevel::L2McInt ||
                            level == IntegrationLevel::FullInt;
    return integrated == l2OnChip(impl);
}

LatencyTable
figure3Latencies(IntegrationLevel level, L2Impl impl)
{
    if (!validCombination(level, impl)) {
        isim_fatal("invalid configuration: %s with %s L2",
                   integrationLevelName(level), l2ImplName(impl));
    }

    LatencyTable t;

    switch (impl) {
      case L2Impl::OffchipDirect:
        t.l2Hit = 25;
        break;
      case L2Impl::OffchipAssoc:
        t.l2Hit = 30;
        break;
      case L2Impl::OnchipSram:
        t.l2Hit = 15;
        break;
      case L2Impl::OnchipDram:
        t.l2Hit = 25;
        break;
    }

    switch (level) {
      case IntegrationLevel::ConservativeBase:
        t.l2Hit = 30; // conventional controller regardless of mapping
        t.local = 150;
        t.remote = 225;
        t.remoteDirty = 325;
        break;
      case IntegrationLevel::Base:
        t.local = 100;
        t.remote = 175;
        t.remoteDirty = 275;
        break;
      case IntegrationLevel::L2Int:
        t.local = 100;
        t.remote = 175;
        t.remoteDirty = 275;
        break;
      case IntegrationLevel::L2McInt:
        // Separating the coherence controller from the now-integrated
        // memory controller *raises* the 2-hop latency (Section 4).
        t.local = 75;
        t.remote = 225;
        t.remoteDirty = 275;
        break;
      case IntegrationLevel::FullInt:
        t.local = 75;
        t.remote = 150;
        t.remoteDirty = 200;
        break;
    }

    // Control-only upgrades bypass the memory controller, so the
    // L2+MC separation penalty does not apply to them.
    t.upgradeRemote = level == IntegrationLevel::L2McInt ? 175 : t.remote;

    // Section 6: RAC hits are serviced from local memory; dirty data
    // found in a remote RAC costs 250 ns vs 200 ns from a remote L2.
    t.racHit = t.local;
    t.remoteRacDirty = t.remoteDirty + 50;
    return t;
}

ReductionVsBase
fullIntegrationReduction()
{
    const LatencyTable base =
        figure3Latencies(IntegrationLevel::Base, L2Impl::OffchipDirect);
    const LatencyTable full =
        figure3Latencies(IntegrationLevel::FullInt, L2Impl::OnchipSram);
    return ReductionVsBase{
        static_cast<double>(base.l2Hit) / full.l2Hit,
        static_cast<double>(base.local) / full.local,
        static_cast<double>(base.remote) / full.remote,
        static_cast<double>(base.remoteDirty) / full.remoteDirty,
    };
}

} // namespace isim
