/**
 * @file
 * Component latency model implementation.
 *
 * Each path is an explicit list of named physical segments. The sums
 * land within a small tolerance of the paper's Figure 3 (see
 * worstRelativeError and the timing unit tests); exact equality is not
 * expected since the paper's table is itself a judgment call over the
 * same kind of component budget.
 */

#include "src/timing/component_model.hh"

#include <cmath>
#include <sstream>

#include "src/base/logging.hh"

namespace isim {

Cycles
LatencyPath::total() const
{
    Cycles sum = 0;
    for (const auto &seg : segments)
        sum += seg.cycles;
    return sum;
}

std::string
LatencyPath::describe() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &seg : segments) {
        if (!first)
            os << " + ";
        os << seg.name << "(" << seg.cycles << ")";
        first = false;
    }
    os << " = " << total();
    return os.str();
}

namespace {

/** Small helper to append segments fluently. */
struct PathBuilder
{
    LatencyPath path;

    PathBuilder &seg(const std::string &name, Cycles cycles)
    {
        path.segments.push_back(PathSegment{name, cycles});
        return *this;
    }
};

constexpr Cycles fillPipeline = 5;   //!< critical-word fill into core
constexpr Cycles onChipTransfer = 5; //!< on-die unit-to-unit transfer

bool
ccOnChip(IntegrationLevel level)
{
    return level == IntegrationLevel::FullInt;
}

bool
mcOnChip(IntegrationLevel level)
{
    return level == IntegrationLevel::L2McInt ||
           level == IntegrationLevel::FullInt;
}

} // namespace

ComponentLatencyModel::ComponentLatencyModel(const ComponentParams &params,
                                             unsigned num_nodes)
    : params_(params), net_(TorusTopology(num_nodes), params.link)
{
}

LatencyPath
ComponentLatencyModel::l2HitPath(IntegrationLevel level, L2Impl impl) const
{
    if (!validCombination(level, impl)) {
        isim_fatal("invalid configuration: %s with %s L2",
                   integrationLevelName(level), l2ImplName(impl));
    }
    PathBuilder b;
    b.seg("l2-tag", params_.l2TagAccess);
    switch (impl) {
      case L2Impl::OffchipDirect:
        b.seg("chip-crossing x2", 2 * params_.chipCrossing);
        b.seg("ext-sram", params_.offChipSramAccess);
        break;
      case L2Impl::OffchipAssoc:
        b.seg("chip-crossing x2", 2 * params_.chipCrossing);
        b.seg("ext-sram", params_.offChipSramAccess);
        b.seg("ext-set-select", params_.offChipSetSelect);
        break;
      case L2Impl::OnchipSram:
        b.seg("on-chip-sram", params_.onChipSramAccess);
        break;
      case L2Impl::OnchipDram:
        b.seg("on-chip-dram", params_.onChipDramAccess);
        break;
    }
    if (level == IntegrationLevel::ConservativeBase) {
        // The conventional controller cannot wave-pipeline the array:
        // model it as the associative external cache regardless.
        b.path.segments.clear();
        b.seg("l2-tag", params_.l2TagAccess);
        b.seg("chip-crossing x2", 2 * params_.chipCrossing);
        b.seg("ext-sram", params_.offChipSramAccess);
        b.seg("ext-set-select", params_.offChipSetSelect);
    }
    return b.path;
}

LatencyPath
ComponentLatencyModel::localPath(IntegrationLevel level) const
{
    PathBuilder b;
    b.seg("l2-miss-detect", params_.l2TagAccess);
    if (mcOnChip(level)) {
        b.seg("on-chip-transfer", onChipTransfer);
        b.seg("mc", params_.mcOccupancy);
        b.seg("dram", params_.dramAccess);
        b.seg("fill", fillPipeline);
    } else {
        b.seg("chip-crossing", params_.chipCrossing);
        b.seg("bus", params_.busTransfer);
        b.seg("mc", params_.mcOccupancy);
        b.seg("dram", params_.dramAccess);
        b.seg("bus", params_.busTransfer);
        b.seg("chip-crossing", params_.chipCrossing);
        b.seg("fill", fillPipeline);
    }
    if (level == IntegrationLevel::ConservativeBase)
        b.seg("conventional-overhead", params_.conservativePenalty);
    return b.path;
}

LatencyPath
ComponentLatencyModel::remotePath(IntegrationLevel level) const
{
    const Cycles net_ctl = net_.oneWayAverage(params_.controlPayloadBytes);
    const Cycles net_data = net_.oneWayAverage(params_.dataPayloadBytes);

    PathBuilder b;
    b.seg("l2-miss-detect", params_.l2TagAccess);
    if (ccOnChip(level)) {
        b.seg("cc", params_.ccOccupancy);
        b.seg("net-request", net_ctl);
        b.seg("home-cc", params_.ccOccupancy);
        b.seg("home-mc", params_.mcOccupancy);
        b.seg("home-dram", params_.dramAccess);
        b.seg("net-response", net_data);
        b.seg("fill", fillPipeline);
        return b.path;
    }

    // Requester: reach the off-chip coherence controller.
    b.seg("chip-crossing", params_.chipCrossing);
    b.seg("bus", params_.busTransfer);
    b.seg("cc", params_.ccOccupancy);
    b.seg("net-request", net_ctl);
    // Home side.
    b.seg("home-cc", params_.ccOccupancy);
    if (level == IntegrationLevel::L2McInt) {
        // The CC is separated from the now-integrated MC: memory is
        // reached through a system-bus transaction via the processor
        // chip, and the directory needs its own SRAM store (Section 4).
        b.seg("home-dir-sram", params_.dirSramLookup);
        b.seg("home-bus-arb", params_.busArbitration);
        b.seg("home-chip-crossing", params_.chipCrossing);
        b.seg("home-bus", params_.busTransfer);
        b.seg("home-mc", params_.mcOccupancy);
        b.seg("home-dram", params_.dramAccess);
        b.seg("home-bus", params_.busTransfer);
        b.seg("home-chip-crossing", params_.chipCrossing);
    } else {
        // CC and MC tightly coupled (S3.mp style): direct path, the
        // directory lives in main memory via the ECC trick.
        b.seg("home-mc", params_.mcOccupancy);
        b.seg("home-dram", params_.dramAccess);
    }
    b.seg("net-response", net_data);
    b.seg("bus", params_.busTransfer);
    b.seg("chip-crossing", params_.chipCrossing);
    b.seg("fill", fillPipeline);
    if (level == IntegrationLevel::ConservativeBase)
        b.seg("conventional-overhead", params_.conservativePenalty);
    return b.path;
}

LatencyPath
ComponentLatencyModel::remoteDirtyPath(IntegrationLevel level,
                                       L2Impl impl) const
{
    const Cycles net_ctl = net_.oneWayAverage(params_.controlPayloadBytes);
    const Cycles net_data = net_.oneWayAverage(params_.dataPayloadBytes);
    const Cycles owner_l2 = l2HitPath(level, impl).total();

    PathBuilder b;
    b.seg("l2-miss-detect", params_.l2TagAccess);
    if (!ccOnChip(level)) {
        b.seg("chip-crossing", params_.chipCrossing);
        b.seg("bus", params_.busTransfer);
    }
    b.seg("cc", params_.ccOccupancy);
    b.seg("net-request", net_ctl);

    // Home: directory lookup.
    b.seg("home-cc", params_.ccOccupancy);
    if (level == IntegrationLevel::L2McInt) {
        b.seg("home-dir-sram", params_.dirSramLookup);
        // Meta/ownership update still crosses the system bus.
        b.seg("home-bus-arb", params_.busArbitration);
        b.seg("home-chip-crossing", params_.chipCrossing);
        b.seg("home-bus", params_.busTransfer);
        b.seg("home-mc", params_.mcOccupancy);
        b.seg("home-bus", params_.busTransfer);
        b.seg("home-chip-crossing", params_.chipCrossing);
    } else {
        // Directory in home memory.
        b.seg("home-mc", params_.mcOccupancy);
        b.seg("home-dram", params_.dramAccess);
    }
    b.seg("net-forward", net_ctl);

    // Owner: probe and source the dirty line.
    if (ccOnChip(level)) {
        b.seg("owner-cc", params_.ccOccupancy);
        b.seg("owner-l2", owner_l2);
    } else {
        b.seg("owner-chip-crossing", params_.chipCrossing);
        b.seg("owner-bus", params_.busTransfer);
        b.seg("owner-cc", params_.ccOccupancy);
        b.seg("owner-l2", owner_l2);
        b.seg("owner-bus", params_.busTransfer);
        b.seg("owner-chip-crossing", params_.chipCrossing);
    }
    b.seg("net-response", net_data);
    if (!ccOnChip(level)) {
        b.seg("bus", params_.busTransfer);
        b.seg("chip-crossing", params_.chipCrossing);
    }
    b.seg("fill", fillPipeline);
    if (level == IntegrationLevel::ConservativeBase)
        b.seg("conventional-overhead", params_.conservativePenalty);
    return b.path;
}

LatencyTable
ComponentLatencyModel::derive(IntegrationLevel level, L2Impl impl) const
{
    LatencyTable t;
    t.l2Hit = l2HitPath(level, impl).total();
    t.local = localPath(level).total();
    t.remote = remotePath(level).total();
    t.remoteDirty = remoteDirtyPath(level, impl).total();
    t.racHit = t.local;
    t.remoteRacDirty = t.remoteDirty + params_.dramAccess;
    return t;
}

double
ComponentLatencyModel::worstRelativeError(IntegrationLevel level,
                                          L2Impl impl) const
{
    const LatencyTable derived = derive(level, impl);
    const LatencyTable paper = figure3Latencies(level, impl);
    auto rel = [](Cycles got, Cycles want) {
        return std::fabs(static_cast<double>(got) -
                         static_cast<double>(want)) /
               static_cast<double>(want);
    };
    double worst = rel(derived.l2Hit, paper.l2Hit);
    worst = std::max(worst, rel(derived.local, paper.local));
    worst = std::max(worst, rel(derived.remote, paper.remote));
    worst = std::max(worst, rel(derived.remoteDirty, paper.remoteDirty));
    return worst;
}

} // namespace isim
