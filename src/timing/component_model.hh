/**
 * @file
 * A component-level latency model that *derives* the Figure-3 numbers
 * from physical building blocks: array access times, chip-boundary
 * crossings, bus/controller occupancies, DRAM access, and network
 * traversals over the torus.
 *
 * The study itself charges the table latencies exactly as the paper
 * did; this model exists to (a) validate that the table is physically
 * coherent (each derived latency must land within a tolerance of the
 * table), (b) explain *why* integration moves each number, and (c)
 * drive the sensitivity ablations (e.g. router hop cost vs 3-hop
 * latency) that the table cannot express.
 */

#ifndef ISIM_TIMING_COMPONENT_MODEL_HH
#define ISIM_TIMING_COMPONENT_MODEL_HH

#include <string>
#include <vector>

#include "src/noc/network.hh"
#include "src/timing/latency_config.hh"

namespace isim {

/** Physical latency components, all in 1 GHz cycles (== ns). */
struct ComponentParams
{
    // Arrays.
    Cycles l2TagAccess = 5;       //!< on-chip L2 tag lookup
    Cycles offChipSramAccess = 10;
    Cycles offChipSetSelect = 5;  //!< external way selection (assoc L2)
    Cycles onChipSramAccess = 10; //!< ~2 MB integrated SRAM data array
    Cycles onChipDramAccess = 20; //!< ~8 MB integrated DRAM data array

    // Interfaces.
    Cycles chipCrossing = 5; //!< per chip-boundary crossing
    Cycles busTransfer = 10; //!< processor/system bus, one way

    // Controllers and memory.
    Cycles mcOccupancy = 10; //!< memory controller processing
    Cycles dramAccess = 50;  //!< direct-Rambus array access
    Cycles ccOccupancy = 10; //!< coherence controller processing
    Cycles dirSramLookup = 10; //!< dedicated SRAM directory (L2+MC cfg)
    Cycles busArbitration = 10; //!< extra arbitration when the CC must
                                //!< master the system bus (L2+MC cfg)

    /** Extra per-miss overhead of the conventional design. */
    Cycles conservativePenalty = 50;

    // Network (torus, built from LinkParams).
    LinkParams link;
    unsigned dataPayloadBytes = 64;
    unsigned controlPayloadBytes = 8;
};

/** One named segment of a latency path (for reports and tests). */
struct PathSegment
{
    std::string name;
    Cycles cycles = 0;
};

/** A full path: an ordered list of segments and their sum. */
struct LatencyPath
{
    std::vector<PathSegment> segments;
    Cycles total() const;
    std::string describe() const;
};

/**
 * The derived model. Constructed per machine size (the torus average
 * hop distance feeds the remote paths).
 */
class ComponentLatencyModel
{
  public:
    ComponentLatencyModel(const ComponentParams &params,
                          unsigned num_nodes);

    const ComponentParams &params() const { return params_; }
    const Network &network() const { return net_; }

    LatencyPath l2HitPath(IntegrationLevel level, L2Impl impl) const;
    LatencyPath localPath(IntegrationLevel level) const;
    LatencyPath remotePath(IntegrationLevel level) const;
    LatencyPath remoteDirtyPath(IntegrationLevel level, L2Impl impl) const;

    /** Assemble the full latency table for a configuration. */
    LatencyTable derive(IntegrationLevel level, L2Impl impl) const;

    /**
     * Largest relative error of the derived table vs the paper's
     * Figure 3 values across the four latency classes.
     */
    double worstRelativeError(IntegrationLevel level, L2Impl impl) const;

  private:
    ComponentParams params_;
    Network net_;
};

} // namespace isim

#endif // ISIM_TIMING_COMPONENT_MODEL_HH
