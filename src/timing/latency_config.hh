/**
 * @file
 * The paper's configuration space and its Figure 3 latency table.
 *
 * Five integration levels are studied (paper Sections 3-5):
 *   ConservativeBase - all modules off chip, conventional latencies
 *   Base             - all modules off chip, aggressively optimized
 *   L2Int            - L2 data array integrated on chip
 *   L2McInt          - L2 + memory controller integrated
 *   FullInt          - L2 + MC + coherence controller + network router
 *
 * crossed with the L2 implementation (off-chip direct-mapped, off-chip
 * set-associative, on-chip SRAM, on-chip DRAM). The table below is the
 * paper's Figure 3, in cycles of a 1 GHz clock (== ns).
 */

#ifndef ISIM_TIMING_LATENCY_CONFIG_HH
#define ISIM_TIMING_LATENCY_CONFIG_HH

#include <string>

#include "src/base/types.hh"

namespace isim {

/** How much of the memory system is on the processor die. */
enum class IntegrationLevel {
    ConservativeBase,
    Base,
    L2Int,
    L2McInt,
    FullInt,
};

/** Implementation of the second-level cache. */
enum class L2Impl {
    OffchipDirect, //!< wave-pipelined external SRAM, direct mapped
    OffchipAssoc,  //!< external SRAM with off-chip set selection
    OnchipSram,    //!< integrated SRAM array (~2 MB in 0.18um)
    OnchipDram,    //!< integrated embedded-DRAM array (~8 MB, slower)
};

const char *integrationLevelName(IntegrationLevel level);
const char *l2ImplName(L2Impl impl);

/**
 * End-to-end latencies charged per access class. These are the numbers
 * the simulator actually uses, exactly as the paper did ("our
 * simulations model a sequentially consistent memory system" with the
 * Figure 3 latency parameters).
 */
struct LatencyTable
{
    Cycles l2Hit = 0;
    Cycles local = 0;       //!< L2 miss satisfied by home == requester
    Cycles remote = 0;      //!< clean 2-hop miss
    Cycles remoteDirty = 0; //!< dirty 3-hop miss

    /**
     * Ownership-only (upgrade) transaction to a remote home: a control
     * round-trip through the coherence controller. It does not fetch
     * data, so it is *not* subject to the CC->MC separation penalty of
     * the L2+MC configuration (Section 4's higher remote latency
     * applies to memory data fetches).
     */
    Cycles upgradeRemote = 0;

    /** Remote-access-cache hit: data in local memory (Section 6). */
    Cycles racHit = 0;
    /** Dirty data found in a *remote node's* RAC rather than its L2. */
    Cycles remoteRacDirty = 0;
};

/**
 * The Figure 3 table. Integration level selects the memory-system
 * latencies; the L2 implementation selects the hit latency. Invalid
 * combinations (e.g. an on-chip L2 with a non-integrated level, or an
 * off-chip L2 in an integrated design) are rejected via fatal().
 */
LatencyTable figure3Latencies(IntegrationLevel level, L2Impl impl);

/** True when the L2 implementation sits on the processor die. */
bool l2OnChip(L2Impl impl);

/** True when the combination appears in the paper's design space. */
bool validCombination(IntegrationLevel level, L2Impl impl);

/**
 * Reduction factors quoted in Section 2.3 ("full integration reduces
 * L2 hit latency by 1.67x, local by 1.33x, remote by 1.17x, dirty by
 * 1.38x relative to Base"); exposed so tests can pin the table to the
 * paper's text.
 */
struct ReductionVsBase
{
    double l2Hit;
    double local;
    double remote;
    double remoteDirty;
};
ReductionVsBase fullIntegrationReduction();

} // namespace isim

#endif // ISIM_TIMING_LATENCY_CONFIG_HH
