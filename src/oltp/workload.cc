/**
 * @file
 * OLTP engine implementation.
 */

#include "src/oltp/workload.hh"

#include <utility>

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"
#include "src/oltp/daemons.hh"
#include "src/oltp/dss.hh"
#include "src/oltp/server.hh"
#include "src/os/layout.hh"
#include "src/stats/registry.hh"

namespace isim {

OltpEngine::OltpEngine(const WorkloadParams &params, VirtualMemory &vm,
                       KernelModel &kernel, unsigned num_cpus,
                       bool replicate_code)
    : params_(params), vm_(vm), kernel_(kernel), numCpus_(num_cpus),
      sga_(params_), db_(params_, sga_), bufferCache_(sga_),
      latches_(sga_), redo_(sga_),
      dbCode_([&] {
          CodeModelParams cp;
          cp.vbase = layout::dbText;
          cp.textBytes = params.dbTextBytes;
          cp.numFunctions = params.dbFunctions;
          cp.seed = mix64(params.seed ^ 0xdb7e47);
          return cp;
      }()),
      txnLatency_("txn-latency-us", 100, 200)
{
    // Placement: the SGA is striped across the machine (no data
    // placement is practical for OLTP — Section 3); private regions
    // and per-CPU kernel data are first-touch local; text is
    // replicated per node only when the Section 6 experiment asks.
    // SGA sub-regions are registered individually (same interleaved
    // placement) so VM profiling can attribute traffic per structure.
    const Addr sga_end = layout::sgaBase + sga_.totalBytes();
    auto sga_region = [&](Addr base, Addr next, const char *name) {
        isim_assert(next > base && next <= sga_end + 8 * kib);
        vm_.setPolicy(base, next - base, PlacePolicy::Interleave, name);
    };
    sga_region(sga_.blockAddr(0), sga_.headerAddr(0), "sga.blocks");
    sga_region(sga_.headerAddr(0), sga_.hashBucketAddr(0), "sga.headers");
    sga_region(sga_.hashBucketAddr(0), sga_.lruListAddr(0), "sga.hash");
    sga_region(sga_.lruListAddr(0), sga_.latchAddr(0), "sga.lru");
    sga_region(sga_.latchAddr(0), sga_.logSlotAddr(0), "sga.latches");
    sga_region(sga_.logSlotAddr(0), sga_.sharedMetadataAddr(0), "sga.log");
    sga_region(sga_.sharedMetadataAddr(0), sga_.warmMetadataAddr(0),
               "sga.hotmeta");
    sga_region(sga_.warmMetadataAddr(0), sga_end, "sga.warmmeta");

    vm_.setPolicy(layout::processPrivate,
                  layout::processPrivateStride *
                      (std::uint64_t{numCpus_} * params_.serversPerCpu +
                       8),
                  PlacePolicy::Local, "private");
    vm_.setPolicy(layout::kernelPerCpu,
                  layout::kernelPerCpuStride * numCpus_,
                  PlacePolicy::Local, "kernel.percpu");
    vm_.setPolicy(layout::kernelShared, 64 * mib,
                  PlacePolicy::Interleave, "kernel.shared");
    const PlacePolicy text_policy = replicate_code
                                        ? PlacePolicy::Replicate
                                        : PlacePolicy::Interleave;
    vm_.setPolicy(layout::dbText, 64 * mib, text_policy, "db.text");
    vm_.setPolicy(layout::kernelText, 64 * mib, text_policy,
                  "kernel.text");
}

void
OltpEngine::createProcesses(Scheduler &sched)
{
    sched_ = &sched;
    Pid pid = 0;
    if (params_.kind == WorkloadKind::DssScan) {
        // Read-only query streams: no log writer needed (queries do
        // not commit), but the db writer stays for generality.
        for (NodeId cpu = 0; cpu < numCpus_; ++cpu) {
            for (unsigned s = 0; s < params_.dssStreamsPerCpu; ++s) {
                sched.add(std::make_unique<DssScanProcess>(
                    *this, pid, cpu,
                    mix64(params_.seed + 31 * pid + 5)));
                ++pid;
            }
        }
        sched.add(std::make_unique<DbWriterProcess>(
            *this, pid++, numCpus_ - 1, mix64(params_.seed ^ 0xdbdb)));
        return;
    }
    for (NodeId cpu = 0; cpu < numCpus_; ++cpu) {
        for (unsigned s = 0; s < params_.serversPerCpu; ++s) {
            sched.add(std::make_unique<ServerProcess>(
                *this, pid, cpu, mix64(params_.seed + 17 * pid + 3)));
            ++pid;
        }
    }
    // Daemons: log writer on CPU 0, database writer on the last CPU
    // (spreads daemon load a little on MP machines).
    sched.add(std::make_unique<LogWriterProcess>(*this, pid++, 0));
    sched.add(std::make_unique<DbWriterProcess>(
        *this, pid++, numCpus_ - 1, mix64(params_.seed ^ 0xdbdb)));
}

Scheduler &
OltpEngine::sched()
{
    isim_assert(sched_ != nullptr, "createProcesses() not called");
    return *sched_;
}

void
OltpEngine::requestCommit(Process &server, Tick now)
{
    commitWaiters_.push_back(&server);
    if (sleepingLogWriter_ != nullptr) {
        Process *lgwr = sleepingLogWriter_;
        sleepingLogWriter_ = nullptr;
        sched().wake(*lgwr, now);
    }
}

std::vector<Process *>
OltpEngine::takeCommitWaiters()
{
    return std::exchange(commitWaiters_, {});
}

void
OltpEngine::logWriterSleeping(Process &logwriter)
{
    sleepingLogWriter_ = &logwriter;
}

void
OltpEngine::noteCommit(Tick latency)
{
    ++committed_;
    txnLatency_.sample(latency / 1000); // to microseconds... (ticks=ns)
}

void
OltpEngine::skipTransactions(std::uint64_t n)
{
    // Seeded from (workload seed, committed count) only: the same skip
    // request at the same point in the run produces the same database
    // trajectory regardless of host, jobs or checkpoint resume.
    Rng rng(mix64(params_.seed ^
                  mix64(committed_ ^ 0x736b697074786eULL))); // "skiptxn"
    const WorkloadParams &p = params_;
    for (std::uint64_t i = 0; i < n; ++i) {
        // Same operand distribution ServerProcess::emitExecute draws:
        // uniform teller; its branch; the account is in the teller's
        // branch 85% of the time.
        const std::uint64_t teller = rng.below(p.totalTellers());
        const std::uint64_t branch = teller / p.tellersPerBranch;
        std::uint64_t account_branch = branch;
        if (!rng.chance(0.85))
            account_branch = rng.below(p.branches);
        const std::uint64_t account =
            account_branch * p.accountsPerBranch +
            rng.below(p.accountsPerBranch);
        const std::int64_t delta =
            static_cast<std::int64_t>(rng.range(1, 999999)) - 500000;
        db_.appendHistory();
        db_.applyTransaction(account, teller, branch, delta);
        ++committed_;
    }
}

void
OltpEngine::registerStats(stats::Registry &r)
{
    r.counter("oltp.txn.committed", "committed transactions", "txns",
              [this] { return measuredCommitted(); });
    r.distribution("oltp.txn.latency",
                   "commit-to-commit transaction latency", "us",
                   [this]() -> const Histogram & { return txnLatency_; });

    r.counter("oltp.latch.acquires", "latch acquisitions", "ops",
              [this] { return latches_.acquires(); });
    r.counter("oltp.latch.contended",
              "latch acquisitions whose previous holder was another node",
              "ops", [this] { return latches_.contended(); });
    r.formula("oltp.latch.contention_rate",
              "contended share of latch acquisitions", "ratio", [this] {
                  const std::uint64_t a = latches_.acquires();
                  return a ? static_cast<double>(latches_.contended()) / a
                           : 0.0;
              });

    r.counter("oltp.buffer_cache.lookups",
              "buffer-cache hash lookups (block pins)", "ops",
              [this] { return bufferCache_.lookups(); });
    r.gauge("oltp.buffer_cache.dirty_blocks",
            "blocks currently dirty (awaiting the database writer)",
            "blocks",
            [this] { return static_cast<double>(bufferCache_.dirtyCount()); });

    r.counter("oltp.redo.slots_generated", "redo log slots allocated",
              "slots", [this] { return redo_.cursor() - statBase_.cursor; });
    r.counter("oltp.redo.slots_flushed",
              "redo log slots flushed by the log writer", "slots",
              [this] { return redo_.flushed() - statBase_.flushed; });
    r.gauge("oltp.redo.unflushed", "redo slots awaiting flush", "slots",
            [this] { return static_cast<double>(redo_.unflushed()); });

    r.onReset([this] {
        statBase_.committed = committed_;
        statBase_.cursor = redo_.cursor();
        statBase_.flushed = redo_.flushed();
        latches_.resetCounters();
        bufferCache_.resetCounters();
        clearLatencyStats();
    });
}

namespace {

constexpr Pid noPid = ~Pid{0};

} // namespace

void
OltpEngine::saveState(ckpt::Serializer &s) const
{
    s.u64(committed_);
    s.u64(statBase_.committed);
    s.u64(statBase_.cursor);
    s.u64(statBase_.flushed);
    txnLatency_.saveState(s);
    db_.saveState(s);
    bufferCache_.saveState(s);
    latches_.saveState(s);
    redo_.saveState(s);
    // Commit coordination: processes referenced by pid.
    s.u64(commitWaiters_.size());
    for (const Process *p : commitWaiters_)
        s.u32(p->pid());
    s.u32(sleepingLogWriter_ ? sleepingLogWriter_->pid() : noPid);
}

void
OltpEngine::restoreState(ckpt::Deserializer &d)
{
    isim_assert(sched_ != nullptr,
                "restore before createProcesses");
    committed_ = d.u64();
    statBase_.committed = d.u64();
    statBase_.cursor = d.u64();
    statBase_.flushed = d.u64();
    txnLatency_.restoreState(d);
    db_.restoreState(d);
    bufferCache_.restoreState(d);
    latches_.restoreState(d);
    redo_.restoreState(d);
    commitWaiters_.clear();
    const std::uint64_t nwaiters = d.u64();
    for (std::uint64_t i = 0; i < nwaiters; ++i) {
        const Pid pid = d.u32();
        Process *p = sched_->processByPid(pid);
        if (p == nullptr)
            isim_fatal("checkpoint corrupt: unknown commit-waiter "
                       "pid %u",
                       pid);
        commitWaiters_.push_back(p);
    }
    const Pid lgwr = d.u32();
    if (lgwr == noPid) {
        sleepingLogWriter_ = nullptr;
    } else {
        sleepingLogWriter_ = sched_->processByPid(lgwr);
        if (sleepingLogWriter_ == nullptr)
            isim_fatal("checkpoint corrupt: unknown log-writer pid "
                       "%u",
                       lgwr);
    }
}

} // namespace isim
