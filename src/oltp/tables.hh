/**
 * @file
 * The functional TPC-B database: account / teller / branch / history
 * tables with real balances, plus the mapping of every row onto
 * buffer-cache blocks. Transactions actually execute (balances move,
 * history grows), so the engine's correctness is testable through the
 * TPC-B consistency conditions: the sums of account, teller and branch
 * balances and the history deltas must all stay equal.
 */

#ifndef ISIM_OLTP_TABLES_HH
#define ISIM_OLTP_TABLES_HH

#include <cstdint>
#include <vector>

#include "src/ckpt/fwd.hh"
#include "src/oltp/sga.hh"
#include "src/oltp/workload_params.hh"

namespace isim {

/** Where a row lives inside the block buffer. */
struct RowLocation
{
    std::uint64_t block = 0;
    std::uint32_t offset = 0; //!< byte offset within the block
};

/** The functional database. */
class TpcbDatabase
{
  public:
    TpcbDatabase(const WorkloadParams &params, const Sga &sga);

    // ---- Row placement ----
    RowLocation branchRow(std::uint64_t branch) const;
    RowLocation tellerRow(std::uint64_t teller) const;
    RowLocation accountRow(std::uint64_t account) const;

    /** Root block of the account B-tree index. */
    std::uint64_t accountIndexRoot() const { return indexRootBlock_; }
    /** Leaf block covering the given account. */
    std::uint64_t accountIndexLeaf(std::uint64_t account) const;

    /** Append a history row; returns its location. */
    RowLocation appendHistory();
    /** Block currently receiving history inserts (hot, shared). */
    std::uint64_t historyInsertBlock() const;

    // ---- Functional execution ----
    /**
     * Execute the TPC-B profile: add `delta` to the account, its
     * teller, and its branch, and record a history row.
     */
    void applyTransaction(std::uint64_t account, std::uint64_t teller,
                          std::uint64_t branch, std::int64_t delta);

    std::int64_t accountBalance(std::uint64_t account) const;
    std::int64_t tellerBalance(std::uint64_t teller) const;
    std::int64_t branchBalance(std::uint64_t branch) const;
    std::uint64_t historyCount() const { return historyCount_; }

    /**
     * TPC-B consistency conditions: recomputes all table sums from the
     * rows and checks them against each other and the history deltas.
     */
    bool checkConsistency() const;

    /** Number of blocks occupied by the static tables + index. */
    std::uint64_t staticBlocks() const { return historyBase_; }

    /**
     * Checkpoint the balances and history accumulators. Balances are
     * written sparsely (only nonzero entries) — a warmed TPC-B run
     * touches a small fraction of the account table.
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    // The table layout below is a pure function of the workload
    // parameters; the checkpoint serializes balances and the history
    // cursor only.
    // ckpt: transient(params_): construction parameter, identical by contract
    WorkloadParams params_;
    // ckpt: transient(rowsPerBlock_): derived from params_ at construction
    unsigned rowsPerBlock_;
    // ckpt: transient(branchBase_): layout derived from params_
    std::uint64_t branchBase_ = 0; //!< block index of first branch block
    // ckpt: transient(tellerBase_): layout derived from params_
    std::uint64_t tellerBase_;
    // ckpt: transient(accountBase_): layout derived from params_
    std::uint64_t accountBase_;
    // ckpt: transient(indexRootBlock_): layout derived from params_
    std::uint64_t indexRootBlock_;
    // ckpt: transient(indexLeafBase_): layout derived from params_
    std::uint64_t indexLeafBase_;
    // ckpt: transient(indexLeaves_): layout derived from params_
    std::uint64_t indexLeaves_;
    // ckpt: transient(historyBase_): layout derived from params_
    std::uint64_t historyBase_;
    // ckpt: transient(maxHistoryBlocks_): layout derived from params_
    std::uint64_t maxHistoryBlocks_;

    std::vector<std::int64_t> accounts_;
    std::vector<std::int64_t> tellers_;
    std::vector<std::int64_t> branches_;
    std::uint64_t historyCount_ = 0;
    std::int64_t historyDeltaSum_ = 0;

    static constexpr unsigned keysPerLeaf = 200;
    static constexpr unsigned historyRowBytes = 50;
};

} // namespace isim

#endif // ISIM_OLTP_TABLES_HH
