/**
 * @file
 * Every calibration knob of the synthetic OLTP workload in one place.
 *
 * The workload is modelled after the paper's setup (Section 2.1):
 * TPC-B against Oracle 7.3.2 in dedicated mode — 40 branches, an SGA
 * over 900 MB with a metadata area over 100 MB, 8 server processes per
 * processor, and 2000 measured transactions after warm-up. Footprint
 * sizes are chosen so the *hot* working set (~1.5-2 MB per node:
 * database text, kernel text, SGA metadata, private stacks, hot
 * blocks) reproduces the paper's cache behaviour: it thrashes a 64 KB
 * L1, fits a 2 MB set-associative L2, and conflicts heavily in
 * direct-mapped L2s because it is scattered across physical pages.
 */

#ifndef ISIM_OLTP_WORKLOAD_PARAMS_HH
#define ISIM_OLTP_WORKLOAD_PARAMS_HH

#include <cstdint>

#include "src/base/types.hh"

namespace isim {

/** Which workload the engine runs. */
enum class WorkloadKind : std::uint8_t {
    TpcB,    //!< the paper's OLTP workload (default)
    DssScan, //!< decision-support query streams (contrast workload)
};

/** All workload knobs. Defaults are the calibrated values. */
struct WorkloadParams
{
    WorkloadKind kind = WorkloadKind::TpcB;

    // ---- TPC-B scale (paper Section 2.1) ----
    unsigned branches = 40;
    unsigned tellersPerBranch = 10;
    unsigned accountsPerBranch = 100000;
    unsigned serversPerCpu = 8;
    std::uint64_t transactions = 2000; //!< measured transactions
    std::uint64_t warmupTransactions = 600;

    // ---- Database engine geometry ----
    unsigned blockBytes = 2048;       //!< Oracle-era block size
    std::uint64_t rowBytes = 100;     //!< TPC-B row size
    std::uint64_t blockBufferBytes = 800 * mib;
    std::uint64_t metadataSlackBytes = 16 * mib; //!< misc hot metadata
    unsigned hashBuckets = 1 << 13;
    unsigned numLatches = 1024;
    unsigned latchStride = 32; //!< two latches share a line (false sharing)
    unsigned numHashLatches = 128;
    unsigned redoCopyLatches = 8;
    std::uint64_t logBufferBytes = 64 * kib;

    // ---- Code footprints ----
    std::uint64_t dbTextBytes = 384 * kib;
    unsigned dbFunctions = 128;

    // ---- Transaction path (code invocations per phase) ----
    unsigned parseInvocations = 5;
    unsigned executeInvocations = 12;
    unsigned commitInvocations = 3;
    double functionSkew = 0.9;  //!< Zipf theta over each phase's group

    // ---- Data-reference mix ----
    double dataRefsPerLine = 3.4;    //!< interleaved with code lines
    double privateFraction = 0.50;   //!< of mixer refs: stack/PGA
    double metadataFraction = 0.40;  //!< of mixer refs: hot SGA metadata
    double warmFraction = 0.030;      //!< of mixer refs: warm dictionary tail
    double mixerStoreFraction = 0.18;
    double sharedMetadataStoreFraction = 0.6;
    double dependentFraction = 0.65; //!< refs with a depDist chain tag
    std::uint64_t privateBytes = 16 * kib; //!< hot stack/PGA per server
    double privateSkew = 0.6;
    double metadataSkew = 0.75;

    // ---- Block access pattern ----
    unsigned blockLinesPerRowRead = 1; //!< lines touched to read a row
    unsigned indexLevels = 2;          //!< root + leaf
    unsigned coldHeaderScans = 1;     //!< lock/dictionary probes per txn
                                       //!< into rarely-reused metadata
    std::uint64_t hotMetadataBytes = 256 * kib; //!< hot mixer metadata
    std::uint64_t warmMetadataBytes = 1536 * kib; //!< dictionary tail /
                                                  //!< row cache: reused,
                                                  //!< but at low rate

    // ---- DSS mode (kind == DssScan) ----
    unsigned dssStreamsPerCpu = 2;       //!< query streams per CPU
    std::uint64_t dssBlocksPerQuery = 256; //!< blocks scanned per query

    // ---- I/O and daemons ----
    Tick logWriteLatency = 250000;  //!< 250 us commit log write
    Tick clientThinkTime = 50000;   //!< pipe turnaround to the client
    Tick dbWriterPeriod = 5000000;  //!< 5 ms between flush scans
    unsigned dbWriterBatch = 32;

    // ---- Misc ----
    std::uint64_t seed = 0xb0a710ad;
    Tick quantum = 2000000; //!< 2 ms scheduling quantum

    // Derived values.
    std::uint64_t totalAccounts() const
    {
        return std::uint64_t{branches} * accountsPerBranch;
    }
    std::uint64_t totalTellers() const
    {
        return std::uint64_t{branches} * tellersPerBranch;
    }
    unsigned rowsPerBlock() const
    {
        return static_cast<unsigned>(blockBytes / rowBytes);
    }
};

} // namespace isim

#endif // ISIM_OLTP_WORKLOAD_PARAMS_HH
