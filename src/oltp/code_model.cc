/**
 * @file
 * Code model implementation.
 */

#include "src/oltp/code_model.hh"

#include <algorithm>

#include "src/base/intmath.hh"
#include "src/base/logging.hh"

namespace isim {

CodeModel::CodeModel(const CodeModelParams &params) : params_(params)
{
    isim_assert(params_.textBytes > 0 && params_.numFunctions > 0);
    isim_assert(isPowerOf2(params_.lineBytes));
    const std::uint64_t total_lines =
        params_.textBytes / params_.lineBytes;
    isim_assert(total_lines >= params_.numFunctions);

    // Draw raw sizes with a skewed distribution (many small helpers, a
    // few large routines), then scale to exactly fill the text region.
    Rng rng(params_.seed);
    std::vector<double> raw(params_.numFunctions);
    double sum = 0.0;
    for (auto &r : raw) {
        // 2..6 lines base plus an occasionally-heavy tail.
        r = 2.0 + rng.uniform() * 4.0;
        if (rng.chance(0.15))
            r += rng.uniform() * 56.0;
        sum += r;
    }

    funcs_.resize(params_.numFunctions);
    std::uint64_t cursor = 0;
    for (unsigned f = 0; f < params_.numFunctions; ++f) {
        const std::uint64_t remaining_funcs = params_.numFunctions - f;
        const std::uint64_t remaining_lines = total_lines - cursor;
        std::uint64_t lines = static_cast<std::uint64_t>(
            raw[f] / sum * static_cast<double>(total_lines));
        lines = std::max<std::uint64_t>(lines, 1);
        // Never starve the remaining functions of their 1-line minimum.
        lines = std::min(lines, remaining_lines - (remaining_funcs - 1));
        funcs_[f] = Function{cursor, lines};
        cursor += lines;
    }
    // Give any rounding slack to the last function.
    funcs_.back().lines += total_lines - cursor;
}

Addr
CodeModel::functionVaddr(unsigned f) const
{
    return params_.vbase + funcs_[f].startLine * params_.lineBytes;
}

std::uint16_t
CodeModel::instrInLine(std::uint64_t line_index) const
{
    return static_cast<std::uint16_t>(
        params_.minInstrPerLine +
        mix64(line_index * 0x2545f491ULL + params_.seed) %
            params_.spanInstrPerLine);
}

std::uint64_t
CodeModel::invoke(unsigned f, Rng &rng, VirtualMemory &vm, NodeId node,
                  bool kernel, std::deque<MemRef> &out,
                  LineDataEmitter *mixer) const
{
    isim_assert(f < funcs_.size());
    const Function &fn = funcs_[f];
    std::uint64_t path = fn.lines;
    if (!rng.chance(params_.fullPathProbability))
        path = 1 + rng.below(fn.lines);

    std::uint64_t instrs = 0;
    for (std::uint64_t i = 0; i < path; ++i) {
        const std::uint64_t line = fn.startLine + i;
        const Addr vaddr =
            params_.vbase + line * params_.lineBytes;
        const Addr paddr = vm.translate(vaddr, node);
        const std::uint16_t count = instrInLine(line);
        out.push_back(instrChunk(paddr, count, kernel));
        instrs += count;
        if (mixer != nullptr)
            mixer->emitLineData(rng, out);
    }
    return instrs;
}

double
CodeModel::meanInstrPerInvocation(unsigned f) const
{
    const Function &fn = funcs_[f];
    double full = 0.0;
    for (std::uint64_t i = 0; i < fn.lines; ++i)
        full += instrInLine(fn.startLine + i);
    // With probability p the full path runs; otherwise a uniform
    // partial prefix, whose expected length is (lines+1)/2.
    const double p = params_.fullPathProbability;
    const double partial_fraction =
        (static_cast<double>(fn.lines) + 1.0) /
        (2.0 * static_cast<double>(fn.lines));
    return full * (p + (1.0 - p) * partial_fraction);
}

} // namespace isim
