/**
 * @file
 * The dedicated server process: executes TPC-B transactions against
 * the engine, emitting every memory reference of the transaction path
 * — client pipe syscalls, SQL parse/execute code paths with
 * interleaved data traffic, buffer-cache walks, row reads/updates,
 * redo generation, and the commit wait on the log writer.
 */

#ifndef ISIM_OLTP_SERVER_HH
#define ISIM_OLTP_SERVER_HH

#include "src/oltp/code_model.hh"
#include "src/oltp/workload.hh"
#include "src/os/process.hh"

namespace isim {

/** One Oracle-style dedicated server. */
class ServerProcess : public Process, private LineDataEmitter
{
  public:
    ServerProcess(OltpEngine &engine, Pid pid, NodeId cpu,
                  std::uint64_t seed);

    ProcessStep step(Tick now) override;

    std::uint64_t transactionsExecuted() const { return txns_; }

    void saveState(ckpt::Serializer &s) const override;
    void restoreState(ckpt::Deserializer &d) override;

  private:
    enum class Phase : std::uint8_t {
        ReadRequest,  //!< pipe read from the client
        Parse,        //!< SQL parse / plan
        Execute,      //!< index walks, row reads and updates
        Redo,         //!< redo generation into the log buffer
        Commit,       //!< submit to the log writer and wait
        Respond,      //!< pipe write back to the client
        Think,        //!< client think time
    };

    void emitReadRequest();
    void emitParse();
    void emitExecute();
    void emitRedo();
    void emitRespond();

    /** Invoke `count` DB functions from group [group_base, group_len). */
    void invokeGroup(unsigned group_base, unsigned group_len,
                     unsigned count);

    /**
     * Full row access: hash latch, buffer-cache lookup/pin, block line
     * reads, optional row update, LRU touch, unpin, latch release.
     */
    void emitRowAccess(const RowLocation &loc, bool write);
    /** Read-only index block walk (no row). */
    void emitIndexBlock(std::uint64_t block);

    // LineDataEmitter: interleaved per-code-line data traffic.
    void emitLineData(Rng &rng, std::deque<MemRef> &out) override;

    OltpEngine &engine_;
    Rng rng_;
    Phase phase_ = Phase::ReadRequest;
    std::uint64_t txns_ = 0;
    Tick txnStart_ = 0;
    bool done_ = false;

    // Current transaction operands.
    std::uint64_t account_ = 0;
    std::uint64_t teller_ = 0;
    std::uint64_t branch_ = 0;
    std::int64_t delta_ = 0;

    std::uint64_t lastBlockTouched_ = 0;
    std::uint32_t lastRowLine_ = 0; //!< line offset of the current row
    std::uint64_t warmCursor_ = 0;  //!< cyclic sweep over the warm band
    // ckpt: transient(privateBase_): VM region base, identical by contract
    Addr privateBase_;
};

} // namespace isim

#endif // ISIM_OLTP_SERVER_HH
