/**
 * @file
 * Latch table: Oracle's short-duration spinlocks over SGA structures.
 * Latch words are the hottest write-shared lines in an OLTP system;
 * with 8 nodes all acquiring the same hash/redo latches they generate
 * the dirty 3-hop misses that dominate the paper's multiprocessor
 * breakdowns. Latches are packed two per cache line (latchStride),
 * adding the false-sharing component the paper mentions.
 */

#ifndef ISIM_OLTP_LATCH_HH
#define ISIM_OLTP_LATCH_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "src/ckpt/fwd.hh"
#include "src/obs/tracer.hh"
#include "src/oltp/sga.hh"
#include "src/os/vm.hh"
#include "src/trace/record.hh"

namespace isim {

/** Emits latch acquire/release reference patterns. */
class LatchTable
{
  public:
    explicit LatchTable(const Sga &sga)
        : sga_(sga), lastHolder_(sga.numLatches(), invalidNode)
    {
    }

    /** Test-and-set: a load followed by a dependent store. */
    void emitAcquire(unsigned latch, VirtualMemory &vm, NodeId node,
                     std::deque<MemRef> &out);

    /** Release: a single store. */
    void emitRelease(unsigned latch, VirtualMemory &vm, NodeId node,
                     std::deque<MemRef> &out);

    std::uint64_t acquires() const { return acquires_; }
    /** Acquires whose previous holder was another node. */
    std::uint64_t contended() const { return contended_; }

    /** Zero the counters (warm-up boundary); holder state is kept. */
    void resetCounters()
    {
        acquires_ = 0;
        contended_ = 0;
    }

    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Checkpoint holder state and counters. */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    const Sga &sga_;
    // ckpt: transient(tracer_): observer hook, reattached by the harness
    obs::Tracer *tracer_ = nullptr;
    /** Node that last acquired each latch (contention detection). */
    std::vector<NodeId> lastHolder_;
    std::uint64_t acquires_ = 0;
    std::uint64_t contended_ = 0;
};

} // namespace isim

#endif // ISIM_OLTP_LATCH_HH
