/**
 * @file
 * The OLTP engine: owns the SGA, the functional TPC-B database, the
 * metadata/latch/log models and the database code image; creates the
 * server processes and daemons; and coordinates commits between the
 * servers and the log writer (group commit). It is the "Oracle 7.3.2
 * in dedicated mode" of this reproduction.
 */

#ifndef ISIM_OLTP_WORKLOAD_HH
#define ISIM_OLTP_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/random.hh"
#include "src/oltp/buffer_cache.hh"
#include "src/oltp/code_model.hh"
#include "src/oltp/latch.hh"
#include "src/oltp/log.hh"
#include "src/oltp/sga.hh"
#include "src/oltp/tables.hh"
#include "src/oltp/workload_params.hh"
#include "src/os/kernel.hh"
#include "src/os/scheduler.hh"
#include "src/os/vm.hh"
#include "src/stats/histogram.hh"

namespace isim {

class LogWriterProcess;

namespace stats {
class Registry;
}

/** The workload engine. */
class OltpEngine
{
  public:
    /**
     * Builds the engine and declares the VM placement policies:
     * SGA interleaved, private regions local, text regions replicated
     * or interleaved per `replicate_code` (the Section 6 experiment).
     */
    OltpEngine(const WorkloadParams &params, VirtualMemory &vm,
               KernelModel &kernel, unsigned num_cpus,
               bool replicate_code);

    /** Spawn the dedicated servers and the two daemons. */
    void createProcesses(Scheduler &sched);

    // ---- Run control ----
    std::uint64_t committedTransactions() const { return committed_; }

    /**
     * Functionally skip `n` transactions: draw TPC-B parameters from a
     * stateless seed-derived stream (same account/teller/branch/delta
     * distribution the servers use), apply each to the functional
     * database and bump the committed count — but generate no memory
     * references, advance no simulated time and sample no latency.
     * This is the sampled-simulation fast-forward tier: the database
     * trajectory stays TPC-B-consistent while the micro-architecture
     * is left untouched (re-warmed by the atomic tier that follows).
     * The parameter stream derives from the workload seed and the
     * committed count alone, so the skip is bit-reproducible across
     * jobs and checkpoint resume.
     */
    void skipTransactions(std::uint64_t n);
    bool warmupDone() const
    {
        return committed_ >= params_.warmupTransactions;
    }
    bool measurementDone() const
    {
        return committed_ >=
               params_.warmupTransactions + params_.transactions;
    }

    // ---- Commit coordination (called by processes) ----
    /** A server submitted its commit record; blocks until woken. */
    void requestCommit(Process &server, Tick now);
    /** Log writer takes the current batch of waiters. */
    std::vector<Process *> takeCommitWaiters();
    bool hasCommitWaiters() const { return !commitWaiters_.empty(); }
    /** Log writer going to sleep; future requestCommit() wakes it. */
    void logWriterSleeping(Process &logwriter);
    /** A server's commit completed (called when it resumes). */
    void noteCommit(Tick latency);

    // ---- Shared components ----
    const WorkloadParams &params() const { return params_; }
    unsigned numCpus() const { return numCpus_; }
    VirtualMemory &vm() { return vm_; }
    KernelModel &kernel() { return kernel_; }
    Scheduler &sched();
    const Sga &sga() const { return sga_; }
    TpcbDatabase &db() { return db_; }
    const TpcbDatabase &db() const { return db_; }
    BufferCache &bufferCache() { return bufferCache_; }
    LatchTable &latches() { return latches_; }
    RedoLog &redo() { return redo_; }
    const CodeModel &dbCode() const { return dbCode_; }

    const Histogram &txnLatency() const { return txnLatency_; }
    /** Drop latency samples gathered so far (warm-up boundary). */
    void clearLatencyStats() { txnLatency_.clear(); }

    /**
     * Committed transactions since the last stats reset. The raw
     * `committed_` counter cannot be zeroed (warm-up progress tracking
     * depends on it), so the registry reports it rebased.
     */
    std::uint64_t measuredCommitted() const
    {
        return committed_ - statBase_.committed;
    }

    /**
     * Register the engine's statistics under "oltp.*" and hang the
     * warm-up rebase (latch/buffer counters, latency histogram,
     * monotonic-counter bases) on the registry's reset hook.
     */
    void registerStats(stats::Registry &r);

    // ---- Observability ----
    void setTracer(obs::Tracer *tracer)
    {
        tracer_ = tracer;
        latches_.setTracer(tracer);
    }
    obs::Tracer *tracer() const { return tracer_; }

    /**
     * Checkpoint the SGA-resident state (tables, dirty set, latches,
     * redo), the commit-coordination queues (as pids) and the stats
     * rebase baselines. Per-process state is handled by the scheduler,
     * which owns the processes; createProcesses must have run.
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    // ckpt: transient(params_): construction parameter, identical by contract
    WorkloadParams params_;
    VirtualMemory &vm_;
    KernelModel &kernel_;
    // ckpt: transient(numCpus_): construction parameter, identical by contract
    unsigned numCpus_;

    // ckpt: transient(sga_): address-layout object; latch state lives in latches_
    Sga sga_;
    TpcbDatabase db_;
    BufferCache bufferCache_;
    LatchTable latches_;
    RedoLog redo_;
    // ckpt: transient(dbCode_): stateless code-footprint model
    CodeModel dbCode_;

    // ckpt: transient(tracer_): observer hook, reattached by the harness
    obs::Tracer *tracer_ = nullptr;
    Scheduler *sched_ = nullptr;
    std::vector<Process *> commitWaiters_;
    Process *sleepingLogWriter_ = nullptr;
    std::uint64_t committed_ = 0;
    Histogram txnLatency_;

    /** Monotonic-counter values at the last stats reset. */
    struct StatBase
    {
        std::uint64_t committed = 0;
        std::uint64_t cursor = 0;
        std::uint64_t flushed = 0;
    };
    StatBase statBase_;
};

} // namespace isim

#endif // ISIM_OLTP_WORKLOAD_HH
