/**
 * @file
 * Redo log model: the shared log buffer ring, the single redo
 * allocation latch guarding its cursor (a famous Oracle hot spot), and
 * the flush bookkeeping the log-writer daemon drives. The paper's
 * transaction path ends with a commit that waits for the log writer —
 * the I/O latency that motivates running 8 servers per processor.
 */

#ifndef ISIM_OLTP_LOG_HH
#define ISIM_OLTP_LOG_HH

#include <cstdint>
#include <deque>

#include "src/ckpt/fwd.hh"
#include "src/oltp/latch.hh"
#include "src/oltp/sga.hh"
#include "src/os/vm.hh"
#include "src/trace/record.hh"

namespace isim {

/** The redo log buffer. */
class RedoLog
{
  public:
    explicit RedoLog(const Sga &sga) : sga_(sga) {}

    /**
     * Server side: allocate `slots` log slots and copy redo into them.
     * Emits the copy latch, the allocation latch + shared cursor
     * update, and the slot stores.
     */
    void emitRedoGeneration(unsigned copy_latch_hint, unsigned slots,
                            LatchTable &latches, VirtualMemory &vm,
                            NodeId node, std::deque<MemRef> &out);

    /**
     * Log-writer side: read up to `max_slots` unflushed slots (the
     * device write itself is a timed block, not references). Returns
     * the number of slots flushed.
     */
    std::uint64_t emitFlush(std::uint64_t max_slots, VirtualMemory &vm,
                            NodeId node, std::deque<MemRef> &out);

    std::uint64_t cursor() const { return cursor_; }
    std::uint64_t flushed() const { return flushed_; }
    std::uint64_t unflushed() const { return cursor_ - flushed_; }

    /** Checkpoint the cursor and flush horizon. */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    const Sga &sga_;
    std::uint64_t cursor_ = 0;
    std::uint64_t flushed_ = 0;
};

} // namespace isim

#endif // ISIM_OLTP_LOG_HH
