/**
 * @file
 * Functional TPC-B tables implementation.
 */

#include "src/oltp/tables.hh"

#include <algorithm>
#include <numeric>

#include "src/base/intmath.hh"
#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

TpcbDatabase::TpcbDatabase(const WorkloadParams &params, const Sga &sga)
    : params_(params), rowsPerBlock_(params.rowsPerBlock())
{
    isim_assert(rowsPerBlock_ >= 1);

    const std::uint64_t branch_blocks =
        divCeil(params_.branches, rowsPerBlock_);
    const std::uint64_t teller_blocks =
        divCeil(params_.totalTellers(), rowsPerBlock_);
    const std::uint64_t account_blocks =
        divCeil(params_.totalAccounts(), rowsPerBlock_);

    branchBase_ = 0;
    tellerBase_ = branchBase_ + branch_blocks;
    accountBase_ = tellerBase_ + teller_blocks;
    indexRootBlock_ = accountBase_ + account_blocks;
    indexLeafBase_ = indexRootBlock_ + 1;
    indexLeaves_ = divCeil(params_.totalAccounts(), keysPerLeaf);
    historyBase_ = indexLeafBase_ + indexLeaves_;

    isim_assert(historyBase_ < sga.numBlocks(),
                "block buffer too small for the database");
    maxHistoryBlocks_ = sga.numBlocks() - historyBase_;

    accounts_.assign(params_.totalAccounts(), 0);
    tellers_.assign(params_.totalTellers(), 0);
    branches_.assign(params_.branches, 0);
}

RowLocation
TpcbDatabase::branchRow(std::uint64_t branch) const
{
    isim_assert(branch < params_.branches);
    return RowLocation{
        branchBase_ + branch / rowsPerBlock_,
        static_cast<std::uint32_t>((branch % rowsPerBlock_) *
                                   params_.rowBytes)};
}

RowLocation
TpcbDatabase::tellerRow(std::uint64_t teller) const
{
    isim_assert(teller < params_.totalTellers());
    return RowLocation{
        tellerBase_ + teller / rowsPerBlock_,
        static_cast<std::uint32_t>((teller % rowsPerBlock_) *
                                   params_.rowBytes)};
}

RowLocation
TpcbDatabase::accountRow(std::uint64_t account) const
{
    isim_assert(account < params_.totalAccounts());
    return RowLocation{
        accountBase_ + account / rowsPerBlock_,
        static_cast<std::uint32_t>((account % rowsPerBlock_) *
                                   params_.rowBytes)};
}

std::uint64_t
TpcbDatabase::accountIndexLeaf(std::uint64_t account) const
{
    isim_assert(account < params_.totalAccounts());
    return indexLeafBase_ + account / keysPerLeaf;
}

std::uint64_t
TpcbDatabase::historyInsertBlock() const
{
    const std::uint64_t rows_per_block =
        params_.blockBytes / historyRowBytes;
    const std::uint64_t block = historyCount_ / rows_per_block;
    return historyBase_ + block % maxHistoryBlocks_; // recycle if full
}

RowLocation
TpcbDatabase::appendHistory()
{
    const std::uint64_t rows_per_block =
        params_.blockBytes / historyRowBytes;
    RowLocation loc;
    loc.block = historyInsertBlock();
    loc.offset = static_cast<std::uint32_t>(
        (historyCount_ % rows_per_block) * historyRowBytes);
    ++historyCount_;
    return loc;
}

void
TpcbDatabase::applyTransaction(std::uint64_t account, std::uint64_t teller,
                               std::uint64_t branch, std::int64_t delta)
{
    isim_assert(account < accounts_.size());
    isim_assert(teller < tellers_.size());
    isim_assert(branch < branches_.size());
    accounts_[account] += delta;
    tellers_[teller] += delta;
    branches_[branch] += delta;
    historyDeltaSum_ += delta;
}

std::int64_t
TpcbDatabase::accountBalance(std::uint64_t account) const
{
    return accounts_[account];
}

std::int64_t
TpcbDatabase::tellerBalance(std::uint64_t teller) const
{
    return tellers_[teller];
}

std::int64_t
TpcbDatabase::branchBalance(std::uint64_t branch) const
{
    return branches_[branch];
}

bool
TpcbDatabase::checkConsistency() const
{
    const std::int64_t acc =
        std::accumulate(accounts_.begin(), accounts_.end(),
                        std::int64_t{0});
    const std::int64_t tel =
        std::accumulate(tellers_.begin(), tellers_.end(),
                        std::int64_t{0});
    const std::int64_t brn =
        std::accumulate(branches_.begin(), branches_.end(),
                        std::int64_t{0});
    return acc == tel && tel == brn && brn == historyDeltaSum_;
}

namespace {

void
saveBalances(ckpt::Serializer &s,
             const std::vector<std::int64_t> &balances)
{
    s.u64(balances.size());
    std::uint64_t nonzero = 0;
    for (std::int64_t v : balances)
        if (v != 0)
            ++nonzero;
    s.u64(nonzero);
    for (std::size_t i = 0; i < balances.size(); ++i) {
        if (balances[i] != 0) {
            s.u64(i);
            s.i64(balances[i]);
        }
    }
}

void
restoreBalances(ckpt::Deserializer &d,
                std::vector<std::int64_t> &balances, const char *table)
{
    if (d.u64() != balances.size())
        isim_fatal("checkpoint %s table size mismatch", table);
    std::fill(balances.begin(), balances.end(), std::int64_t{0});
    const std::uint64_t nonzero = d.u64();
    for (std::uint64_t n = 0; n < nonzero; ++n) {
        const std::uint64_t i = d.u64();
        if (i >= balances.size())
            isim_fatal("checkpoint corrupt: %s row %llu out of range",
                       table, static_cast<unsigned long long>(i));
        balances[i] = d.i64();
    }
}

} // namespace

void
TpcbDatabase::saveState(ckpt::Serializer &s) const
{
    saveBalances(s, accounts_);
    saveBalances(s, tellers_);
    saveBalances(s, branches_);
    s.u64(historyCount_);
    s.i64(historyDeltaSum_);
}

void
TpcbDatabase::restoreState(ckpt::Deserializer &d)
{
    restoreBalances(d, accounts_, "account");
    restoreBalances(d, tellers_, "teller");
    restoreBalances(d, branches_, "branch");
    historyCount_ = d.u64();
    historyDeltaSum_ = d.i64();
}

} // namespace isim
