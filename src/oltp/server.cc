/**
 * @file
 * Server transaction state machine.
 */

#include "src/oltp/server.hh"

#include "src/base/intmath.hh"
#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"
#include "src/os/layout.hh"
#include "src/prof/profiler.hh"

namespace isim {

ServerProcess::ServerProcess(OltpEngine &engine, Pid pid, NodeId cpu,
                             std::uint64_t seed)
    : Process("server" + std::to_string(pid), pid, cpu), engine_(engine),
      rng_(seed),
      privateBase_(layout::processPrivate +
                   pid * layout::processPrivateStride)
{
    // Stagger the warm-band sweep so servers do not walk in lockstep.
    warmCursor_ = rng_.below(
        engine.params().warmMetadataBytes / 64);
}

void
ServerProcess::emitLineData(Rng &rng, std::deque<MemRef> &out)
{
    const WorkloadParams &p = engine_.params();
    double want = p.dataRefsPerLine;
    while (want >= 1.0 || rng.chance(want)) {
        want -= 1.0;
        const double kind = rng.uniform();
        const bool dep = rng.chance(p.dependentFraction);
        // Chains bind tightly: most dependent refs hang off the
        // immediately preceding access (pointer chasing).
        const std::uint8_t dep_dist =
            dep ? static_cast<std::uint8_t>(rng.chance(0.7)
                                                ? 1
                                                : 1 + rng.below(3))
                : 0;
        Addr vaddr;
        bool store = false;
        if (kind < p.privateFraction) {
            // Stack / PGA: hot, node-private.
            vaddr = privateBase_ +
                    rng.zipf(p.privateBytes / 64, p.privateSkew) * 64;
            store = rng.chance(p.mixerStoreFraction);
        } else if (kind < p.privateFraction + p.metadataFraction) {
            // Hot SGA metadata. Half the traffic goes to per-node
            // session state (private), half to the shared dictionary,
            // whose entries are updated often (pin counts, usage
            // counters) — the true-sharing traffic that makes OLTP's
            // communication misses dirty 3-hop ones.
            const std::uint64_t line =
                rng.zipf(p.hotMetadataBytes / 128, p.metadataSkew);
            if (rng.chance(0.5)) {
                vaddr = engine_.sga().sharedMetadataAddr(line * 64);
                store = rng.chance(p.sharedMetadataStoreFraction);
            } else {
                vaddr = engine_.sga().sessionMetadataAddr(cpu(),
                                                          line * 64);
                store = rng.chance(p.mixerStoreFraction);
            }
        } else if (kind < p.privateFraction + p.metadataFraction +
                              p.warmFraction) {
            // Warm dictionary tail: a cyclic sweep, so every line is
            // reused at a fixed ~warmMetadataBytes reuse distance —
            // captured by caches larger than the band, thrashing in
            // smaller ones (the paper's 2-4 MB behaviour).
            warmCursor_ = (warmCursor_ + 1) % (p.warmMetadataBytes / 64);
            vaddr = engine_.sga().warmMetadataAddr(warmCursor_ * 64);
        } else {
            // Re-read near the row most recently worked on.
            const std::uint64_t lines = p.blockBytes / 64;
            const std::uint64_t around =
                (lastRowLine_ + rng.below(2)) % lines;
            vaddr = engine_.sga().blockByteAddr(lastBlockTouched_,
                                                around * 64);
        }
        const Addr paddr = engine_.vm().translate(vaddr, cpu());
        out.push_back(store ? storeRef(paddr, dep_dist)
                            : loadRef(paddr, dep_dist));
    }
}

void
ServerProcess::invokeGroup(unsigned group_base, unsigned group_len,
                           unsigned count)
{
    const CodeModel &code = engine_.dbCode();
    for (unsigned i = 0; i < count; ++i) {
        const unsigned f =
            group_base +
            static_cast<unsigned>(
                rng_.zipf(group_len, engine_.params().functionSkew));
        code.invoke(f % code.numFunctions(), rng_, engine_.vm(), cpu(),
                    /*kernel=*/false, pending_, this);
    }
}

void
ServerProcess::emitIndexBlock(std::uint64_t block)
{
    engine_.bufferCache().emitLookupAndPin(block, engine_.vm(), cpu(),
                                           pending_);
    // Walk the key line of the index block.
    const Addr base = engine_.sga().blockAddr(block);
    pending_.push_back(loadRef(
        engine_.vm().translate(
            base + 64 * rng_.below(engine_.params().blockBytes / 64),
            cpu()),
        /*dep_dist=*/1));
    engine_.bufferCache().emitUnpin(block, engine_.vm(), cpu(), pending_);
    lastBlockTouched_ = block;
}

void
ServerProcess::emitRowAccess(const RowLocation &loc, bool write)
{
    const WorkloadParams &p = engine_.params();
    VirtualMemory &vm = engine_.vm();
    const Sga &sga = engine_.sga();

    const std::uint64_t bucket = sga.bucketOf(loc.block);
    const unsigned latch = sga.hashLatchOf(bucket);
    engine_.latches().emitAcquire(latch, vm, cpu(), pending_);
    engine_.bufferCache().emitLookupAndPin(loc.block, vm, cpu(),
                                           pending_);
    engine_.latches().emitRelease(latch, vm, cpu(), pending_);

    // Block header line, then the row's line(s).
    pending_.push_back(loadRef(vm.translate(sga.blockAddr(loc.block),
                                            cpu()),
                               /*dep_dist=*/1));
    const Addr row_line =
        roundDown(sga.blockByteAddr(loc.block, loc.offset), 64);
    for (unsigned i = 0; i < p.blockLinesPerRowRead; ++i) {
        pending_.push_back(
            loadRef(vm.translate(row_line + i * 64, cpu()),
                    /*dep_dist=*/1));
    }
    if (write) {
        pending_.push_back(storeRef(vm.translate(row_line, cpu()),
                                    /*dep_dist=*/1));
        engine_.bufferCache().markDirty(loc.block);
    }
    if (rng_.chance(0.3)) {
        engine_.bufferCache().emitLruTouch(loc.block, vm, cpu(),
                                           pending_);
    }
    engine_.bufferCache().emitUnpin(loc.block, vm, cpu(), pending_);
    lastBlockTouched_ = loc.block;
    lastRowLine_ = static_cast<std::uint32_t>(loc.offset / 64);
}

void
ServerProcess::emitReadRequest()
{
    // Pipe read from the client: kernel path plus a private buffer.
    engine_.kernel().syscall(cpu(), pending_, /*copy_bytes=*/256);
    for (unsigned i = 0; i < 4; ++i) {
        pending_.push_back(storeRef(
            engine_.vm().translate(privateBase_ + 8 * kib + i * 64,
                                   cpu())));
    }
}

void
ServerProcess::emitParse()
{
    const unsigned n = engine_.params().parseInvocations;
    // Functions [0, 32): parser, optimizer, cursor cache.
    invokeGroup(0, 32, n);
}

void
ServerProcess::emitExecute()
{
    const WorkloadParams &p = engine_.params();
    TpcbDatabase &db = engine_.db();

    // Draw the TPC-B operands: uniform teller; its branch; the account
    // is in the teller's branch 85% of the time.
    teller_ = rng_.below(p.totalTellers());
    branch_ = teller_ / p.tellersPerBranch;
    std::uint64_t account_branch = branch_;
    if (!rng_.chance(0.85))
        account_branch = rng_.below(p.branches);
    account_ = account_branch * p.accountsPerBranch +
               rng_.below(p.accountsPerBranch);
    delta_ = static_cast<std::int64_t>(rng_.range(1, 999999)) - 500000;

    // Lock-manager / dictionary probes: headers of random blocks, a
    // rarely-reused stream spread over tens of MB of metadata. These
    // are the accesses that keep evicting hot lines from large
    // direct-mapped caches.
    for (unsigned i = 0; i < p.coldHeaderScans; ++i) {
        const std::uint64_t blk =
            rng_.below(engine_.sga().numBlocks());
        pending_.push_back(loadRef(engine_.vm().translate(
            engine_.sga().headerAddr(blk), cpu())));
    }

    const unsigned n = p.executeInvocations;
    // Functions [32, 96): execution engine, row access, buffer cache.
    invokeGroup(32, 64, n / 4);
    // Account B-tree walk, then the row update.
    emitIndexBlock(db.accountIndexRoot());
    emitIndexBlock(db.accountIndexLeaf(account_));
    emitRowAccess(db.accountRow(account_), /*write=*/true);
    invokeGroup(32, 64, n / 4);
    // Teller and branch updates (hot, write-shared blocks).
    emitRowAccess(db.tellerRow(teller_), /*write=*/true);
    emitRowAccess(db.branchRow(branch_), /*write=*/true);
    invokeGroup(32, 64, n / 4);
    // History insert.
    const RowLocation hist = db.appendHistory();
    emitRowAccess(hist, /*write=*/true);
    invokeGroup(32, 64, n - 3 * (n / 4));

    // The functional update happens here (balances actually move).
    db.applyTransaction(account_, teller_, branch_, delta_);
}

void
ServerProcess::emitRedo()
{
    // Functions [96, 112): redo generation.
    invokeGroup(96, 16, 2);
    engine_.redo().emitRedoGeneration(
        static_cast<unsigned>(pid()), /*slots=*/4, engine_.latches(),
        engine_.vm(), cpu(), pending_);
}

void
ServerProcess::emitRespond()
{
    // Functions [112, 128): commit cleanup, result marshalling.
    invokeGroup(112, 16, engine_.params().commitInvocations);
    engine_.kernel().syscall(cpu(), pending_, /*copy_bytes=*/128);
}

ProcessStep
ServerProcess::step(Tick now)
{
    if (!pending_.empty())
        return popPending();

    if (done_) {
        ProcessStep s;
        s.kind = StepKind::Done;
        return s;
    }

    // Batch refill: the transaction state machine generating the next
    // phase's references (~37% of measured host time per the ROADMAP).
    ISIM_PROF_SCOPE_PHASED("refgen");
    switch (phase_) {
      case Phase::ReadRequest:
        txnStart_ = now;
        if (obs::Tracer *tr = engine_.tracer();
            ISIM_OBS_ACTIVE(tr)) {
            tr->instant(obs::EventKind::TxnBegin, now,
                        static_cast<std::uint16_t>(cpu()), 0,
                        static_cast<std::uint32_t>(pid()));
        }
        emitReadRequest();
        phase_ = Phase::Parse;
        return popPending();
      case Phase::Parse:
        emitParse();
        phase_ = Phase::Execute;
        return popPending();
      case Phase::Execute:
        emitExecute();
        phase_ = Phase::Redo;
        return popPending();
      case Phase::Redo:
        emitRedo();
        phase_ = Phase::Commit;
        return popPending();
      case Phase::Commit: {
        // Submit the commit and sleep until the log writer wakes us.
        engine_.requestCommit(*this, now);
        phase_ = Phase::Respond;
        ProcessStep s;
        s.kind = StepKind::BlockEvent;
        return s;
      }
      case Phase::Respond:
        ++txns_;
        engine_.noteCommit(now - txnStart_);
        if (obs::Tracer *tr = engine_.tracer();
            ISIM_OBS_ACTIVE(tr)) {
            tr->span(obs::EventKind::TxnCommit, txnStart_,
                     now - txnStart_,
                     static_cast<std::uint16_t>(cpu()), 0,
                     static_cast<std::uint32_t>(pid()));
        }
        emitRespond();
        phase_ = Phase::Think;
        return popPending();
      case Phase::Think: {
        phase_ = Phase::ReadRequest;
        if (engine_.measurementDone()) {
            done_ = true; // exit after the measured run completes
            ProcessStep s;
            s.kind = StepKind::Done;
            return s;
        }
        ProcessStep s;
        s.kind = StepKind::BlockTimed;
        s.delay = engine_.params().clientThinkTime;
        return s;
      }
    }
    isim_panic("unreachable server phase");
}

void
ServerProcess::saveState(ckpt::Serializer &s) const
{
    Process::saveState(s);
    rng_.saveState(s);
    s.u8(static_cast<std::uint8_t>(phase_));
    s.u64(txns_);
    s.u64(txnStart_);
    s.b(done_);
    s.u64(account_);
    s.u64(teller_);
    s.u64(branch_);
    s.i64(delta_);
    s.u64(lastBlockTouched_);
    s.u32(lastRowLine_);
    s.u64(warmCursor_);
}

void
ServerProcess::restoreState(ckpt::Deserializer &d)
{
    Process::restoreState(d);
    rng_.restoreState(d);
    const std::uint8_t phase = d.u8();
    if (phase > static_cast<std::uint8_t>(Phase::Think))
        isim_fatal("checkpoint corrupt: server phase %u", phase);
    phase_ = static_cast<Phase>(phase);
    txns_ = d.u64();
    txnStart_ = d.u64();
    done_ = d.b();
    account_ = d.u64();
    teller_ = d.u64();
    branch_ = d.u64();
    delta_ = d.i64();
    lastBlockTouched_ = d.u64();
    lastRowLine_ = d.u32();
    warmCursor_ = d.u64();
}

} // namespace isim
