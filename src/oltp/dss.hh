/**
 * @file
 * DSS (decision-support) query streams: the contrast workload. The
 * paper's introduction singles out OLTP *because* "applications such
 * as decision support (DSS) and Web index search have been shown to
 * be relatively insensitive to memory system performance" — this
 * process type lets the repository demonstrate that contrast on the
 * same machine models (bench/ext_dss).
 *
 * A DSS stream runs sequential-scan aggregation queries: tight
 * operator loops (tiny instruction footprint), streaming reads over
 * large block ranges (no reuse, so cache size and associativity are
 * nearly irrelevant), private aggregation state, and almost no
 * write sharing or kernel time.
 */

#ifndef ISIM_OLTP_DSS_HH
#define ISIM_OLTP_DSS_HH

#include "src/oltp/workload.hh"
#include "src/os/process.hh"

namespace isim {

/** One decision-support query stream. */
class DssScanProcess : public Process
{
  public:
    DssScanProcess(OltpEngine &engine, Pid pid, NodeId cpu,
                   std::uint64_t seed);

    ProcessStep step(Tick now) override;

    std::uint64_t queriesExecuted() const { return queries_; }

    void saveState(ckpt::Serializer &s) const override;
    void restoreState(ckpt::Deserializer &d) override;

  private:
    enum class Phase : std::uint8_t { Plan, Scan, Finalize };

    void emitPlan();
    /** Emit one block's worth of scanning into the pending queue. */
    void emitScanChunk();
    void emitFinalize();

    OltpEngine &engine_;
    Rng rng_;
    Phase phase_ = Phase::Plan;
    std::uint64_t queries_ = 0;
    Tick queryStart_ = 0;
    bool done_ = false;

    std::uint64_t scanBlock_ = 0;   //!< next block of this query
    std::uint64_t blocksLeft_ = 0;  //!< blocks remaining in the query
    // ckpt: transient(privateBase_): VM region base, identical by contract
    Addr privateBase_;
};

} // namespace isim

#endif // ISIM_OLTP_DSS_HH
