/**
 * @file
 * DSS query-stream implementation.
 */

#include "src/oltp/dss.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"
#include "src/os/layout.hh"
#include "src/prof/profiler.hh"

namespace isim {

DssScanProcess::DssScanProcess(OltpEngine &engine, Pid pid, NodeId cpu,
                               std::uint64_t seed)
    : Process("dss" + std::to_string(pid), pid, cpu), engine_(engine),
      rng_(seed),
      privateBase_(layout::processPrivate +
                   pid * layout::processPrivateStride)
{
}

void
DssScanProcess::emitPlan()
{
    // Query compilation: a few optimizer functions, like OLTP's parse
    // phase but without the per-transaction repetition.
    const CodeModel &code = engine_.dbCode();
    for (unsigned i = 0; i < 3; ++i) {
        const unsigned f = static_cast<unsigned>(rng_.below(16));
        code.invoke(f, rng_, engine_.vm(), cpu(), false, pending_);
    }
    // Pick the query's scan range over the account blocks.
    const WorkloadParams &p = engine_.params();
    const std::uint64_t account_blocks =
        p.totalAccounts() / p.rowsPerBlock();
    blocksLeft_ = std::min<std::uint64_t>(p.dssBlocksPerQuery,
                                          account_blocks);
    scanBlock_ = rng_.below(account_blocks - blocksLeft_ + 1);
}

void
DssScanProcess::emitScanChunk()
{
    const WorkloadParams &p = engine_.params();
    VirtualMemory &vm = engine_.vm();
    const Sga &sga = engine_.sga();
    TpcbDatabase &db = engine_.db();

    // Account blocks start after branches and tellers; reuse the row
    // mapper so the scan walks exactly the functional table.
    const std::uint64_t block =
        db.accountRow(scanBlock_ * p.rowsPerBlock()).block;

    engine_.bufferCache().emitLookupAndPin(block, vm, cpu(), pending_);

    // The scan operator: a tight loop of a few hot code lines per
    // data line — a tiny instruction footprint with many instructions
    // per cache line of data, which is why DSS tolerates memory
    // latency so much better than OLTP.
    const Addr loop_line =
        vm.translate(engine_.dbCode().functionVaddr(0), cpu());
    const unsigned lines = p.blockBytes / 64;
    for (unsigned i = 0; i < lines; ++i) {
        pending_.push_back(instrChunk(loop_line, 16));
        pending_.push_back(loadRef(
            vm.translate(sga.blockByteAddr(block, i * 64), cpu())));
        // Aggregation state: a handful of hot private lines.
        pending_.push_back(storeRef(
            vm.translate(privateBase_ + (i % 16) * 64, cpu()),
            /*dep_dist=*/1));
    }

    engine_.bufferCache().emitUnpin(block, vm, cpu(), pending_);
    ++scanBlock_;
    --blocksLeft_;
}

void
DssScanProcess::emitFinalize()
{
    // Ship the aggregate to the client: one syscall, a few private
    // reads. No redo, no commit wait — queries are read-only.
    engine_.kernel().syscall(cpu(), pending_, /*copy_bytes=*/256);
    for (unsigned i = 0; i < 8; ++i) {
        pending_.push_back(
            loadRef(engine_.vm().translate(
                privateBase_ + i * 64, cpu())));
    }
}

ProcessStep
DssScanProcess::step(Tick now)
{
    if (!pending_.empty())
        return popPending();

    if (done_) {
        ProcessStep s;
        s.kind = StepKind::Done;
        return s;
    }

    // Batch refill: query-plan reference generation.
    ISIM_PROF_SCOPE_PHASED("refgen");
    switch (phase_) {
      case Phase::Plan:
        queryStart_ = now;
        emitPlan();
        phase_ = Phase::Scan;
        return popPending();
      case Phase::Scan:
        if (blocksLeft_ > 0) {
            emitScanChunk();
            return popPending();
        }
        phase_ = Phase::Finalize;
        [[fallthrough]];
      case Phase::Finalize: {
        ++queries_;
        engine_.noteCommit(now - queryStart_);
        emitFinalize();
        phase_ = Phase::Plan;
        if (engine_.measurementDone()) {
            done_ = true;
            return popPending();
        }
        return popPending();
      }
    }
    isim_panic("unreachable DSS phase");
}

void
DssScanProcess::saveState(ckpt::Serializer &s) const
{
    Process::saveState(s);
    rng_.saveState(s);
    s.u8(static_cast<std::uint8_t>(phase_));
    s.u64(queries_);
    s.u64(queryStart_);
    s.b(done_);
    s.u64(scanBlock_);
    s.u64(blocksLeft_);
}

void
DssScanProcess::restoreState(ckpt::Deserializer &d)
{
    Process::restoreState(d);
    rng_.restoreState(d);
    const std::uint8_t phase = d.u8();
    if (phase > static_cast<std::uint8_t>(Phase::Finalize))
        isim_fatal("checkpoint corrupt: DSS phase %u", phase);
    phase_ = static_cast<Phase>(phase);
    queries_ = d.u64();
    queryStart_ = d.u64();
    done_ = d.b();
    scanBlock_ = d.u64();
    blocksLeft_ = d.u64();
}

} // namespace isim
