/**
 * @file
 * Daemon implementations.
 */

#include "src/oltp/daemons.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

namespace {
constexpr Pid noPid = ~Pid{0};
} // namespace

LogWriterProcess::LogWriterProcess(OltpEngine &engine, Pid pid, NodeId cpu)
    : Process("lgwr", pid, cpu), engine_(engine)
{
}

ProcessStep
LogWriterProcess::step(Tick now)
{
    if (!pending_.empty())
        return popPending();

    switch (state_) {
      case State::Idle: {
        if (!engine_.hasCommitWaiters()) {
            engine_.logWriterSleeping(*this);
            ProcessStep s;
            s.kind = StepKind::BlockEvent;
            return s;
        }
        serving_ = engine_.takeCommitWaiters();
        // Read the unflushed log slots and issue the device write.
        engine_.redo().emitFlush(/*max_slots=*/1024, engine_.vm(), cpu(),
                                 pending_);
        engine_.kernel().syscall(cpu(), pending_, /*copy_bytes=*/512);
        state_ = State::Writing;
        if (!pending_.empty())
            return popPending();
        [[fallthrough]];
      }
      case State::Writing: {
        // References drained; wait out the device latency.
        state_ = State::Completing;
        ProcessStep s;
        s.kind = StepKind::BlockTimed;
        s.delay = engine_.params().logWriteLatency;
        return s;
      }
      case State::Completing: {
        // The write is durable: wake every waiter in the group.
        ++flushes_;
        for (Process *p : serving_) {
            engine_.sched().wake(*p, now);
            ++commitsServed_;
        }
        serving_.clear();
        state_ = State::Idle;
        return step(now);
      }
    }
    isim_panic("unreachable log-writer state");
}

DbWriterProcess::DbWriterProcess(OltpEngine &engine, Pid pid, NodeId cpu,
                                 std::uint64_t seed)
    : Process("dbwr", pid, cpu), engine_(engine), rng_(seed)
{
}

ProcessStep
DbWriterProcess::step(Tick)
{
    if (!pending_.empty())
        return popPending();

    const auto blocks =
        engine_.bufferCache().takeDirty(engine_.params().dbWriterBatch);
    for (const std::uint64_t block : blocks) {
        // Re-read the header and a few block lines while writing the
        // block out (checkpoint traffic).
        engine_.bufferCache().emitLookupAndPin(block, engine_.vm(),
                                               cpu(), pending_);
        const Addr base = engine_.sga().blockAddr(block);
        for (unsigned i = 0; i < 4; ++i) {
            pending_.push_back(loadRef(
                engine_.vm().translate(base + i * 64, cpu()),
                /*dep_dist=*/1));
        }
        engine_.bufferCache().emitUnpin(block, engine_.vm(), cpu(),
                                        pending_);
        ++blocksFlushed_;
    }
    if (!blocks.empty())
        engine_.kernel().syscall(cpu(), pending_, /*copy_bytes=*/1024);

    if (!pending_.empty())
        return popPending();

    ProcessStep s;
    s.kind = StepKind::BlockTimed;
    s.delay = engine_.params().dbWriterPeriod;
    return s;
}

void
LogWriterProcess::saveState(ckpt::Serializer &s) const
{
    Process::saveState(s);
    s.u8(static_cast<std::uint8_t>(state_));
    s.u64(flushes_);
    s.u64(commitsServed_);
    s.u64(serving_.size());
    for (const Process *p : serving_)
        s.u32(p ? p->pid() : noPid);
}

void
LogWriterProcess::restoreState(ckpt::Deserializer &d)
{
    Process::restoreState(d);
    const std::uint8_t state = d.u8();
    if (state > static_cast<std::uint8_t>(State::Completing))
        isim_fatal("checkpoint corrupt: log-writer state %u", state);
    state_ = static_cast<State>(state);
    flushes_ = d.u64();
    commitsServed_ = d.u64();
    serving_.clear();
    const std::uint64_t nserving = d.u64();
    for (std::uint64_t i = 0; i < nserving; ++i) {
        const Pid pid = d.u32();
        Process *p = engine_.sched().processByPid(pid);
        if (p == nullptr)
            isim_fatal("checkpoint corrupt: unknown served pid %u",
                       pid);
        serving_.push_back(p);
    }
}

void
DbWriterProcess::saveState(ckpt::Serializer &s) const
{
    Process::saveState(s);
    rng_.saveState(s);
    s.u64(blocksFlushed_);
}

void
DbWriterProcess::restoreState(ckpt::Deserializer &d)
{
    Process::restoreState(d);
    rng_.restoreState(d);
    blocksFlushed_ = d.u64();
}

} // namespace isim
