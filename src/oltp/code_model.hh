/**
 * @file
 * Synthetic executable image: the instruction-footprint model.
 *
 * OLTP's defining memory-system property is a huge instruction
 * footprint (the Oracle server binary) that overwhelms a 64 KB L1I and
 * lives in the L2 — the paper's execution breakdowns show L2-hit time
 * as a dominant component for exactly this reason. This model carves a
 * text region into functions of varied sizes; invoking a function
 * emits instruction-chunk references walking the function's cache
 * lines in order (with per-invocation partial paths for branchiness).
 * Which functions are invoked — and with what skew — is decided by the
 * callers (transaction phases, kernel paths), giving a stable, highly
 * reused, Zipf-weighted line working set: the ingredients of realistic
 * conflict-miss behaviour in direct-mapped caches.
 */

#ifndef ISIM_OLTP_CODE_MODEL_HH
#define ISIM_OLTP_CODE_MODEL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "src/base/random.hh"
#include "src/base/types.hh"
#include "src/os/vm.hh"
#include "src/trace/record.hh"

namespace isim {

/** Construction parameters of a code image. */
struct CodeModelParams
{
    Addr vbase = 0;
    std::uint64_t textBytes = 0;
    unsigned numFunctions = 0;
    unsigned lineBytes = 64;
    unsigned minInstrPerLine = 10; //!< per-line instruction counts are
    unsigned spanInstrPerLine = 7; //!< min + hash(line) % span
    double fullPathProbability = 0.6; //!< else a partial path
    std::uint64_t seed = 1;
};

/**
 * Hook invoked after each emitted code line so callers can interleave
 * the data references that the line's instructions would perform
 * (stack traffic, SGA metadata reads, block re-reads). This is what
 * gives the workload a realistic data-reference-per-instruction ratio.
 */
class LineDataEmitter
{
  public:
    virtual ~LineDataEmitter() = default;
    virtual void emitLineData(Rng &rng, std::deque<MemRef> &out) = 0;
};

/** A synthetic executable image. */
class CodeModel
{
  public:
    explicit CodeModel(const CodeModelParams &params);

    Addr vbase() const { return params_.vbase; }
    std::uint64_t textBytes() const { return params_.textBytes; }
    unsigned numFunctions() const
    {
        return static_cast<unsigned>(funcs_.size());
    }
    std::uint64_t functionLines(unsigned f) const { return funcs_[f].lines; }

    /** Virtual address of the function's first line (for tests). */
    Addr functionVaddr(unsigned f) const;

    /**
     * Emit one invocation of function `f`: instruction chunks walking
     * its lines, translated through `vm` for the executing `node`.
     * Returns the number of instructions emitted.
     */
    std::uint64_t invoke(unsigned f, Rng &rng, VirtualMemory &vm,
                         NodeId node, bool kernel,
                         std::deque<MemRef> &out,
                         LineDataEmitter *mixer = nullptr) const;

    /** Mean instructions per full execution of function `f`. */
    double meanInstrPerInvocation(unsigned f) const;

  private:
    struct Function
    {
        std::uint64_t startLine; //!< offset from vbase, in lines
        std::uint64_t lines;
    };

    std::uint16_t instrInLine(std::uint64_t line_index) const;

    CodeModelParams params_;
    std::vector<Function> funcs_;
};

} // namespace isim

#endif // ISIM_OLTP_CODE_MODEL_HH
