/**
 * @file
 * Buffer-cache metadata traffic implementation.
 */

#include "src/oltp/buffer_cache.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

void
BufferCache::emitLookupAndPin(std::uint64_t block, VirtualMemory &vm,
                              NodeId node, std::deque<MemRef> &out)
{
    ++lookups_;
    const std::uint64_t bucket = sga_.bucketOf(block);
    const Addr bucket_pa = vm.translate(sga_.hashBucketAddr(bucket), node);
    const Addr header_pa = vm.translate(sga_.headerAddr(block), node);
    out.push_back(loadRef(bucket_pa));
    out.push_back(loadRef(header_pa, /*dep_dist=*/1)); // chain walk
    out.push_back(storeRef(header_pa, /*dep_dist=*/1)); // pin count
}

void
BufferCache::emitUnpin(std::uint64_t block, VirtualMemory &vm, NodeId node,
                       std::deque<MemRef> &out)
{
    const Addr header_pa = vm.translate(sga_.headerAddr(block), node);
    out.push_back(storeRef(header_pa));
}

void
BufferCache::emitLruTouch(std::uint64_t block, VirtualMemory &vm,
                          NodeId node, std::deque<MemRef> &out)
{
    const unsigned list =
        static_cast<unsigned>(block % sga_.numLruLists());
    const Addr lru_pa = vm.translate(sga_.lruListAddr(list), node);
    out.push_back(loadRef(lru_pa));
    out.push_back(storeRef(lru_pa, /*dep_dist=*/1));
}

std::vector<std::uint64_t>
BufferCache::takeDirty(std::size_t max_blocks)
{
    std::vector<std::uint64_t> taken;
    taken.reserve(std::min(max_blocks, dirty_.size()));
    for (auto it = dirty_.begin();
         it != dirty_.end() && taken.size() < max_blocks;) {
        taken.push_back(*it);
        it = dirty_.erase(it);
    }
    return taken;
}

void
BufferCache::saveState(ckpt::Serializer &s) const
{
    s.u64(lookups_);
    s.u64(dirty_.size());
    for (std::uint64_t block : dirty_)
        s.u64(block);
}

void
BufferCache::restoreState(ckpt::Deserializer &d)
{
    lookups_ = d.u64();
    dirty_.clear();
    const std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i)
        dirty_.insert(d.u64());
}

} // namespace isim
