/**
 * @file
 * SGA layout implementation.
 */

#include "src/oltp/sga.hh"

#include "src/base/intmath.hh"
#include "src/base/logging.hh"
#include "src/base/random.hh"
#include "src/os/layout.hh"

namespace isim {

Sga::Sga(const WorkloadParams &params) : params_(params)
{
    numBlocks_ = params_.blockBufferBytes / params_.blockBytes;
    logSlots_ = params_.logBufferBytes / 64;

    Addr cursor = layout::sgaBase;
    blockBase_ = cursor;
    cursor += roundUp(params_.blockBufferBytes, 8 * kib);

    const Addr metadata_start = cursor;
    headerBase_ = cursor;
    cursor += roundUp(numBlocks_ * headerBytes, 8 * kib);
    hashBase_ = cursor;
    cursor += roundUp(params_.hashBuckets * bucketBytes, 8 * kib);
    lruBase_ = cursor;
    cursor += roundUp(std::uint64_t{numLruLists()} * 64, 8 * kib);
    latchBase_ = cursor;
    cursor += roundUp(
        std::uint64_t{params_.numLatches} * params_.latchStride, 8 * kib);
    logBase_ = cursor;
    cursor += roundUp(params_.logBufferBytes + 64, 8 * kib);
    hotMetaBase_ = cursor;
    // Half the hot metadata is a shared dictionary, half is per-node
    // session state; reserve per-node slices for up to 32 nodes.
    cursor += roundUp(params_.hotMetadataBytes / 2 * 33, 8 * kib);
    warmMetaBase_ = cursor;
    cursor += roundUp(params_.warmMetadataBytes, 8 * kib);
    cursor += roundUp(params_.metadataSlackBytes, 8 * kib);

    metadataBytes_ = cursor - metadata_start;
    totalBytes_ = cursor - layout::sgaBase;
}

Addr
Sga::blockAddr(std::uint64_t block_idx) const
{
    isim_assert(block_idx < numBlocks_);
    return blockBase_ + block_idx * params_.blockBytes;
}

Addr
Sga::blockByteAddr(std::uint64_t block_idx, std::uint64_t offset) const
{
    isim_assert(offset < params_.blockBytes);
    return blockAddr(block_idx) + offset;
}

Addr
Sga::headerAddr(std::uint64_t block_idx) const
{
    isim_assert(block_idx < numBlocks_);
    return headerBase_ + block_idx * headerBytes;
}

std::uint64_t
Sga::bucketOf(std::uint64_t block_idx) const
{
    // Multiplicative hash so adjacent blocks spread across buckets.
    return mix64(block_idx) % params_.hashBuckets;
}

Addr
Sga::hashBucketAddr(std::uint64_t bucket) const
{
    isim_assert(bucket < params_.hashBuckets);
    return hashBase_ + bucket * bucketBytes;
}

Addr
Sga::lruListAddr(unsigned list) const
{
    isim_assert(list < numLruLists());
    return lruBase_ + std::uint64_t{list} * 64;
}

Addr
Sga::latchAddr(unsigned latch) const
{
    isim_assert(latch < params_.numLatches);
    return latchBase_ + std::uint64_t{latch} * params_.latchStride;
}

unsigned
Sga::hashLatchOf(std::uint64_t bucket) const
{
    // Latches [16, 16+numHashLatches) protect the hash chains.
    return 16 + static_cast<unsigned>(bucket % params_.numHashLatches);
}

unsigned
Sga::redoCopyLatch(unsigned k) const
{
    // Latches [1, 1+redoCopyLatches) are the redo copy latches.
    return 1 + (k % params_.redoCopyLatches);
}

Addr
Sga::logSlotAddr(std::uint64_t seq) const
{
    return logBase_ + (seq % logSlots_) * 64;
}

Addr
Sga::logCursorAddr() const
{
    return logBase_ + logSlots_ * 64; // the word right after the ring
}

Addr
Sga::sharedMetadataAddr(std::uint64_t offset) const
{
    isim_assert(offset < params_.hotMetadataBytes / 2);
    return hotMetaBase_ + offset;
}

Addr
Sga::sessionMetadataAddr(NodeId node, std::uint64_t offset) const
{
    isim_assert(node < 32);
    isim_assert(offset < params_.hotMetadataBytes / 2);
    return hotMetaBase_ + params_.hotMetadataBytes / 2 * (1 + node) +
           offset;
}

Addr
Sga::warmMetadataAddr(std::uint64_t offset) const
{
    isim_assert(offset < params_.warmMetadataBytes);
    return warmMetaBase_ + offset;
}

} // namespace isim
