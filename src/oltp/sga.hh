/**
 * @file
 * System Global Area layout. Mirrors the structure the paper
 * describes: "The SGA consists of two main regions — the block buffer
 * area and the metadata area. The block buffer area is used as a
 * memory cache of database disk blocks. The metadata area is used to
 * keep directory information for the block buffer, as well as for
 * communication and synchronization between the various Oracle
 * processes."
 *
 * This class only computes virtual addresses; the functional state
 * (balances, dirty bits, cursors) lives in the table and buffer-cache
 * models.
 */

#ifndef ISIM_OLTP_SGA_HH
#define ISIM_OLTP_SGA_HH

#include <cstdint>

#include "src/base/types.hh"
#include "src/oltp/workload_params.hh"

namespace isim {

/** Address calculator for the SGA. */
class Sga
{
  public:
    explicit Sga(const WorkloadParams &params);

    // ---- Block buffer ----
    std::uint64_t numBlocks() const { return numBlocks_; }
    Addr blockAddr(std::uint64_t block_idx) const;
    /** Address of byte `offset` within a block. */
    Addr blockByteAddr(std::uint64_t block_idx,
                       std::uint64_t offset) const;

    // ---- Metadata: buffer headers / hash table / LRU ----
    Addr headerAddr(std::uint64_t block_idx) const;
    Addr hashBucketAddr(std::uint64_t bucket) const;
    std::uint64_t bucketOf(std::uint64_t block_idx) const;
    Addr lruListAddr(unsigned list) const;
    unsigned numLruLists() const { return 16; }

    // ---- Metadata: latches ----
    Addr latchAddr(unsigned latch) const;
    unsigned numLatches() const { return params_.numLatches; }
    /** The hash latch protecting a bucket. */
    unsigned hashLatchOf(std::uint64_t bucket) const;
    /** The single redo allocation latch (a famously hot line). */
    unsigned redoAllocLatch() const { return 0; }
    /** One of the redo copy latches. */
    unsigned redoCopyLatch(unsigned k) const;

    // ---- Metadata: redo log buffer ----
    Addr logSlotAddr(std::uint64_t seq) const; //!< ring of 64 B slots
    std::uint64_t logSlots() const { return logSlots_; }
    /** The shared redo-cursor word (allocation point). */
    Addr logCursorAddr() const;

    // ---- Metadata: hot area ----
    /** Shared dictionary half (written by every node). */
    Addr sharedMetadataAddr(std::uint64_t offset) const;
    /** Per-node session-state half (node-private traffic). */
    Addr sessionMetadataAddr(NodeId node, std::uint64_t offset) const;

    // ---- Metadata: warm dictionary tail / row cache ----
    Addr warmMetadataAddr(std::uint64_t offset) const;

    /** Total SGA span in bytes (block buffer + metadata). */
    std::uint64_t totalBytes() const { return totalBytes_; }
    /** Metadata-area span in bytes (paper: over 100 MB). */
    std::uint64_t metadataBytes() const { return metadataBytes_; }

  private:
    WorkloadParams params_;
    std::uint64_t numBlocks_;
    std::uint64_t logSlots_;

    Addr blockBase_;
    Addr headerBase_;
    Addr hashBase_;
    Addr lruBase_;
    Addr latchBase_;
    Addr logBase_;
    Addr hotMetaBase_;
    Addr warmMetaBase_;
    std::uint64_t metadataBytes_;
    std::uint64_t totalBytes_;

    static constexpr std::uint64_t headerBytes = 128;
    static constexpr std::uint64_t bucketBytes = 64;
};

} // namespace isim

#endif // ISIM_OLTP_SGA_HH
