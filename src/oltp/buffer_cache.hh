/**
 * @file
 * Buffer-cache metadata model: the hash table, buffer headers and LRU
 * lists that the servers walk on every block access. These structures
 * are the "directory information for the block buffer" half of the
 * paper's SGA metadata area. Headers of hot blocks (branch rows, index
 * root) are pinned/unpinned — i.e. *written* — by every transaction
 * from every node, a major source of true sharing.
 */

#ifndef ISIM_OLTP_BUFFER_CACHE_HH
#define ISIM_OLTP_BUFFER_CACHE_HH

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "src/base/random.hh"
#include "src/ckpt/fwd.hh"
#include "src/oltp/sga.hh"
#include "src/os/vm.hh"
#include "src/trace/record.hh"

namespace isim {

/** Buffer-cache metadata traffic generator plus dirty-block tracking. */
class BufferCache
{
  public:
    explicit BufferCache(const Sga &sga) : sga_(sga) {}

    /**
     * Hash lookup and header pin for a block: bucket read, dependent
     * header read, dependent pin store.
     */
    void emitLookupAndPin(std::uint64_t block, VirtualMemory &vm,
                          NodeId node, std::deque<MemRef> &out);

    /** Unpin: one header store. */
    void emitUnpin(std::uint64_t block, VirtualMemory &vm, NodeId node,
                   std::deque<MemRef> &out);

    /** Touch the block's LRU list head (load + store, shared). */
    void emitLruTouch(std::uint64_t block, VirtualMemory &vm, NodeId node,
                      std::deque<MemRef> &out);

    /** Mark a block dirty (to be flushed by the database writer). */
    void markDirty(std::uint64_t block) { dirty_.insert(block); }

    std::uint64_t dirtyCount() const { return dirty_.size(); }

    /**
     * Take up to `max_blocks` dirty blocks (they become clean); the
     * database-writer daemon flushes them.
     */
    std::vector<std::uint64_t> takeDirty(std::size_t max_blocks);

    std::uint64_t lookups() const { return lookups_; }

    /** Zero the lookup counter (warm-up boundary); dirty set is kept. */
    void resetCounters() { lookups_ = 0; }

    /** Checkpoint the dirty set and lookup counter. */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    const Sga &sga_;
    /**
     * Ordered so takeDirty() hands blocks to the database writer in a
     * canonical (block-number) order — an unordered set would make the
     * writer's flush pattern depend on hash iteration order, breaking
     * checkpoint bit-exactness.
     */
    std::set<std::uint64_t> dirty_;
    std::uint64_t lookups_ = 0;
};

} // namespace isim

#endif // ISIM_OLTP_BUFFER_CACHE_HH
