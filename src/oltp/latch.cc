/**
 * @file
 * Latch emission.
 */

#include "src/oltp/latch.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

void
LatchTable::emitAcquire(unsigned latch, VirtualMemory &vm, NodeId node,
                        std::deque<MemRef> &out)
{
    const Addr paddr = vm.translate(sga_.latchAddr(latch), node);
    out.push_back(loadRef(paddr));
    out.push_back(storeRef(paddr, /*dep_dist=*/1));
    ++acquires_;
    const NodeId prev = lastHolder_[latch];
    const bool contended = prev != invalidNode && prev != node;
    if (contended)
        ++contended_;
    lastHolder_[latch] = node;
    if (ISIM_OBS_ACTIVE(tracer_)) {
        tracer_->instant(contended ? obs::EventKind::LatchContend
                                   : obs::EventKind::LatchAcquire,
                         tracer_->now(),
                         static_cast<std::uint16_t>(node), 0, latch,
                         paddr);
    }
}

void
LatchTable::emitRelease(unsigned latch, VirtualMemory &vm, NodeId node,
                        std::deque<MemRef> &out)
{
    const Addr paddr = vm.translate(sga_.latchAddr(latch), node);
    out.push_back(storeRef(paddr));
    if (ISIM_OBS_ACTIVE(tracer_)) {
        tracer_->instant(obs::EventKind::LatchRelease, tracer_->now(),
                         static_cast<std::uint16_t>(node), 0, latch,
                         paddr);
    }
}

void
LatchTable::saveState(ckpt::Serializer &s) const
{
    s.u64(acquires_);
    s.u64(contended_);
    s.u64(lastHolder_.size());
    for (NodeId holder : lastHolder_)
        s.u32(holder);
}

void
LatchTable::restoreState(ckpt::Deserializer &d)
{
    acquires_ = d.u64();
    contended_ = d.u64();
    if (d.u64() != lastHolder_.size())
        isim_fatal("checkpoint latch count mismatch");
    for (NodeId &holder : lastHolder_)
        holder = d.u32();
}

} // namespace isim
