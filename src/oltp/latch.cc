/**
 * @file
 * Latch emission.
 */

#include "src/oltp/latch.hh"

namespace isim {

void
LatchTable::emitAcquire(unsigned latch, VirtualMemory &vm, NodeId node,
                        std::deque<MemRef> &out)
{
    const Addr paddr = vm.translate(sga_.latchAddr(latch), node);
    out.push_back(loadRef(paddr));
    out.push_back(storeRef(paddr, /*dep_dist=*/1));
    ++acquires_;
}

void
LatchTable::emitRelease(unsigned latch, VirtualMemory &vm, NodeId node,
                        std::deque<MemRef> &out)
{
    const Addr paddr = vm.translate(sga_.latchAddr(latch), node);
    out.push_back(storeRef(paddr));
}

} // namespace isim
