/**
 * @file
 * Latch emission.
 */

#include "src/oltp/latch.hh"

namespace isim {

void
LatchTable::emitAcquire(unsigned latch, VirtualMemory &vm, NodeId node,
                        std::deque<MemRef> &out)
{
    const Addr paddr = vm.translate(sga_.latchAddr(latch), node);
    out.push_back(loadRef(paddr));
    out.push_back(storeRef(paddr, /*dep_dist=*/1));
    ++acquires_;
    const NodeId prev = lastHolder_[latch];
    const bool contended = prev != invalidNode && prev != node;
    if (contended)
        ++contended_;
    lastHolder_[latch] = node;
    if (ISIM_OBS_ACTIVE(tracer_)) {
        tracer_->instant(contended ? obs::EventKind::LatchContend
                                   : obs::EventKind::LatchAcquire,
                         tracer_->now(),
                         static_cast<std::uint16_t>(node), 0, latch,
                         paddr);
    }
}

void
LatchTable::emitRelease(unsigned latch, VirtualMemory &vm, NodeId node,
                        std::deque<MemRef> &out)
{
    const Addr paddr = vm.translate(sga_.latchAddr(latch), node);
    out.push_back(storeRef(paddr));
    if (ISIM_OBS_ACTIVE(tracer_)) {
        tracer_->instant(obs::EventKind::LatchRelease, tracer_->now(),
                         static_cast<std::uint16_t>(node), 0, latch,
                         paddr);
    }
}

} // namespace isim
