/**
 * @file
 * Redo log implementation.
 */

#include "src/oltp/log.hh"

#include <algorithm>

#include "src/ckpt/serializer.hh"

namespace isim {

void
RedoLog::emitRedoGeneration(unsigned copy_latch_hint, unsigned slots,
                            LatchTable &latches, VirtualMemory &vm,
                            NodeId node, std::deque<MemRef> &out)
{
    latches.emitAcquire(sga_.redoCopyLatch(copy_latch_hint), vm, node,
                        out);
    latches.emitAcquire(sga_.redoAllocLatch(), vm, node, out);

    // Advance the shared cursor under the allocation latch.
    const Addr cursor_pa = vm.translate(sga_.logCursorAddr(), node);
    out.push_back(loadRef(cursor_pa));
    out.push_back(storeRef(cursor_pa, /*dep_dist=*/1));

    latches.emitRelease(sga_.redoAllocLatch(), vm, node, out);

    // Copy the redo records into the allocated slots.
    for (unsigned i = 0; i < slots; ++i) {
        const Addr slot_pa =
            vm.translate(sga_.logSlotAddr(cursor_ + i), node);
        out.push_back(storeRef(slot_pa));
    }
    cursor_ += slots;

    latches.emitRelease(sga_.redoCopyLatch(copy_latch_hint), vm, node,
                        out);
}

std::uint64_t
RedoLog::emitFlush(std::uint64_t max_slots, VirtualMemory &vm, NodeId node,
                   std::deque<MemRef> &out)
{
    const std::uint64_t n = std::min(max_slots, unflushed());
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr slot_pa =
            vm.translate(sga_.logSlotAddr(flushed_ + i), node);
        out.push_back(loadRef(slot_pa));
    }
    flushed_ += n;
    return n;
}

void
RedoLog::saveState(ckpt::Serializer &s) const
{
    s.u64(cursor_);
    s.u64(flushed_);
}

void
RedoLog::restoreState(ckpt::Deserializer &d)
{
    cursor_ = d.u64();
    flushed_ = d.u64();
}

} // namespace isim
