/**
 * @file
 * The two Oracle daemons the paper singles out as participating
 * directly in transaction execution: the log writer (group-commits
 * redo to disk; every server's commit waits on it) and the database
 * writer (periodically flushes dirty buffer-cache blocks).
 */

#ifndef ISIM_OLTP_DAEMONS_HH
#define ISIM_OLTP_DAEMONS_HH

#include "src/oltp/workload.hh"
#include "src/os/process.hh"

namespace isim {

/** The log-writer daemon (group commit). */
class LogWriterProcess : public Process
{
  public:
    LogWriterProcess(OltpEngine &engine, Pid pid, NodeId cpu);

    ProcessStep step(Tick now) override;

    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t commitsServed() const { return commitsServed_; }

    void saveState(ckpt::Serializer &s) const override;
    void restoreState(ckpt::Deserializer &d) override;

  private:
    enum class State : std::uint8_t { Idle, Writing, Completing };

    OltpEngine &engine_;
    State state_ = State::Idle;
    std::vector<Process *> serving_;
    std::uint64_t flushes_ = 0;
    std::uint64_t commitsServed_ = 0;
};

/** The database-writer daemon (dirty block flusher). */
class DbWriterProcess : public Process
{
  public:
    DbWriterProcess(OltpEngine &engine, Pid pid, NodeId cpu,
                    std::uint64_t seed);

    ProcessStep step(Tick now) override;

    std::uint64_t blocksFlushed() const { return blocksFlushed_; }

    void saveState(ckpt::Serializer &s) const override;
    void restoreState(ckpt::Deserializer &d) override;

  private:
    OltpEngine &engine_;
    Rng rng_;
    std::uint64_t blocksFlushed_ = 0;
};

} // namespace isim

#endif // ISIM_OLTP_DAEMONS_HH
