/**
 * @file
 * Per-run stats manifest: the schema-versioned stats.json document a
 * figure run emits next to its figure JSON, plus the flatten/diff
 * machinery `tools/isim-stat` and the regression tests use to compare
 * two manifests stat-by-stat.
 *
 * Manifest layout (schema "isim-stats", version 1):
 *
 *   {
 *     "schema": "isim-stats",
 *     "version": 1,
 *     "figure": "fig05",
 *     "title": "...",
 *     "bars": [
 *       {"name": "1x8-1MB",
 *        "stats": {"cpu.busy": {"kind": "counter", "unit": "ticks",
 *                               "desc": "...", "value": 12345}, ...},
 *        "epochs": [{"epoch": 0, "start": 0, "end": 1000000,
 *                    "committed_txns": 12, ...}, ...]}
 *     ]
 *   }
 *
 * "epochs" is present only when per-epoch sampling was requested
 * (--stats-epoch). Distribution values are nested objects; undefined
 * quantiles (NaN) serialize as JSON null.
 */

#ifndef ISIM_STATS_MANIFEST_HH
#define ISIM_STATS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/registry.hh"

namespace isim {

class JsonValue;

namespace obs {
struct EpochRow;
}

namespace stats {

constexpr const char *kManifestSchema = "isim-stats";
constexpr int kManifestVersion = 1;

/** One bar's worth of manifest content. */
struct ManifestBar
{
    std::string name;
    Snapshot stats;
    std::vector<obs::EpochRow> epochs; //!< empty unless epoch sampling on
};

struct Manifest
{
    std::string figure;
    std::string title;
    std::vector<ManifestBar> bars;
};

/** Serialize the manifest document (jsonValidate-clean by contract). */
std::string manifestToJson(const Manifest &m);

/**
 * One numeric leaf of a parsed manifest, addressed as
 * "<bar>/<stat>" (scalars) or "<bar>/<stat>.<field>" (distribution
 * fields, e.g. "1x8-1MB/oltp.txn.latency.p95"). Null-valued leaves
 * (undefined quantiles) are skipped: they compare as absent.
 */
struct FlatStat
{
    std::string path;
    double value = 0.0;
};

/**
 * Flatten a parsed stats.json into sorted (path, value) pairs.
 * Fatal when the document is not an isim-stats manifest or the schema
 * version is newer than this build understands.
 */
std::vector<FlatStat> flattenManifest(const JsonValue &doc);

/** One stat whose value differs between two manifests. */
struct StatDiff
{
    std::string path;
    double a = 0.0;
    double b = 0.0;
    double rel = 0.0; //!< |b-a| / max(|a|, |b|)
};

struct DiffResult
{
    std::vector<StatDiff> diffs;  //!< beyond tolerance, sorted by path
    std::vector<std::string> onlyA;
    std::vector<std::string> onlyB;

    bool clean() const
    {
        return diffs.empty() && onlyA.empty() && onlyB.empty();
    }
};

/**
 * Compare two flattened manifests. A pair differs when its relative
 * delta |b-a| / max(|a|,|b|) exceeds `tolerance` (so tolerance 0
 * demands bit-identical values). Stats present on one side only are
 * reported separately and always make the result unclean.
 */
DiffResult diffFlattened(const std::vector<FlatStat> &a,
                         const std::vector<FlatStat> &b,
                         double tolerance = 0.0);

} // namespace stats
} // namespace isim

#endif // ISIM_STATS_MANIFEST_HH
