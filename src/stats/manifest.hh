/**
 * @file
 * Per-run stats manifest: the schema-versioned stats.json document a
 * figure run emits next to its figure JSON, plus the flatten/diff
 * machinery `tools/isim-stat` and the regression tests use to compare
 * two manifests stat-by-stat.
 *
 * Manifest layout (schema "isim-stats", version 3):
 *
 *   {
 *     "schema": "isim-stats",
 *     "version": 3,
 *     "figure": "fig05",
 *     "title": "...",
 *     "bars": [
 *       {"name": "1x8-1MB",
 *        "meta": {"key": "<16 hex>", "config_digest": "<16 hex>",
 *                 "seed": 7, "schema_version": 3,
 *                 "sim_wall_ms": 12.5},
 *        "stats": {"cpu.busy": {"kind": "counter", "unit": "ticks",
 *                               "desc": "...", "value": 12345}, ...},
 *        "sampling": {"mode": "fixed", "ff": 300, "measure": 50,
 *                     "warm": 50, "windows": 8, "covered": 400,
 *                     "stats": {"cpu.busy": {"sem": 1.5e6,
 *                               "ci95": 3.5e6, "windows": 8}, ...}},
 *        "epochs": [{"epoch": 0, "start": 0, "end": 1000000,
 *                    "committed_txns": 12, ...}, ...]}
 *     ]
 *   }
 *
 * "sampling" appears only on sampled bars (docs/SAMPLING.md): the
 * resolved schedule plus a standard error and 95% CI per stat
 * (distribution stats get ".count"/".sum"/".mean" entries).
 *
 * "meta" is the bar's content-address block: "key" is the FNV-1a 64
 * digest of the bar's canonical configuration encoding
 * (ckpt::configBytes) + workload seed + this schema version — the
 * identity the campaign orchestrator caches results under
 * (docs/CAMPAIGN.md) — and "sim_wall_ms" is the *simulated*
 * wall-clock of the measurement window in milliseconds
 * (deterministic, so manifests stay byte-comparable; version-1
 * manifests called it "wall_ms" and still parse). "host_wall_ms", by
 * contrast, is real host time the bar took, and therefore
 * nondeterministic: producers emit it only in self-profiling runs
 * (--prof-out in an ISIM_PROF build) and the campaign merge never
 * copies it into campaign.json, so every bit-identity guarantee
 * (--jobs, --procs, resume) is unaffected. "warmup_mode" /
 * "exec_mode" appear in META only when a phase ran in a non-default
 * (non-timing) execution mode (docs/EXECMODE.md). "epochs" is present
 * only when per-epoch sampling was requested (--stats-epoch).
 * Distribution values are nested objects; undefined quantiles (NaN)
 * serialize as JSON null.
 */

#ifndef ISIM_STATS_MANIFEST_HH
#define ISIM_STATS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sample/report.hh"
#include "src/stats/registry.hh"

namespace isim {

class JsonValue;

namespace obs {
struct EpochRow;
}

namespace stats {

constexpr const char *kManifestSchema = "isim-stats";
// Version 2: "wall_ms" (simulated ms, despite the name) became
// "sim_wall_ms", and an optional "host_wall_ms" was added.
// Version 3: sampled runs (docs/SAMPLING.md) — bars may carry a
// "sampling" block (schedule + per-stat sem/ci95) and the META block
// echoes the sampling schedule. The version participates in
// resultKey(), so each bump deliberately invalidates campaign caches
// built by older schemas.
constexpr int kManifestVersion = 3;

/** Lower-case 16-digit hex rendering of a 64-bit digest. */
std::string hex64(std::uint64_t v);

/**
 * Content-address key of one (configuration, seed) cell: the FNV-1a
 * 64 digest of the canonical configuration encoding
 * (ckpt::configBytes), the workload seed (8 bytes LE) and the
 * manifest schema version (4 bytes LE), as 16 hex digits. Two cells
 * share a key exactly when a cached result of one is a valid result
 * of the other.
 */
std::string resultKey(const std::vector<std::uint8_t> &config_bytes,
                      std::uint64_t seed);

/**
 * resultKey() with the sampling axis folded in: an enabled SampleSpec
 * appends its schedule (ff/measure/warm/windows, LE) and mode byte to
 * the hashed bytes, so sampled and exact cells — and sampled cells
 * with different schedules — never alias in the campaign cache. A
 * disabled spec appends nothing and yields the plain resultKey().
 */
std::string resultKey(const std::vector<std::uint8_t> &config_bytes,
                      std::uint64_t seed,
                      const sample::SampleSpec &sample);

/** FNV-1a 64 of the canonical configuration encoding, as hex. */
std::string configDigest(const std::vector<std::uint8_t> &config_bytes);

/**
 * The per-bar META block: the content-address identity a result is
 * cached and audited under. Emitted into the manifest when `present`
 * (every figure/campaign run sets it; hand-built manifests may not).
 */
struct BarMeta
{
    bool present = false;
    std::string key;          //!< resultKey() of the bar's cell
    std::string configDigest; //!< configDigest() of the bar's config
    std::uint64_t seed = 0;   //!< workload seed the bar ran with
    int schemaVersion = kManifestVersion;
    /**
     * Simulated wall-clock of the measurement window (ms); < 0 =
     * omit. Deterministic. Written as "sim_wall_ms"; the version-1
     * name "wall_ms" is accepted on parse.
     */
    double simWallMs = -1.0;
    /**
     * Host wall-clock the bar took (ms); < 0 = omit. Nondeterministic
     * by nature — emitted only by self-profiling runs and never merged
     * into campaign.json (see the file comment).
     */
    double hostWallMs = -1.0;
    /** Campaign merge only ("ok" / "failed"); "" = omit. */
    std::string status;
    /**
     * Execution modes of the run ("atomic"); "" = omit. Producers set
     * these only for non-default (non-timing) modes, so the manifest
     * of a pure-timing run is byte-identical to one from a build that
     * predates ExecMode — and a mode echo in the META block flags any
     * bar whose numbers an atomic phase could have influenced.
     */
    std::string warmupMode;
    std::string execMode;
    /**
     * Sampled-run schedule echo (docs/SAMPLING.md); sampleMode "" =
     * exact run, fields omitted. Like the mode echoes, emitted only
     * when sampling actually shaped the bar's numbers.
     */
    std::string sampleMode;
    std::uint64_t sampleFf = 0;
    std::uint64_t sampleMeasure = 0;
    std::uint64_t sampleWarm = 0;
    std::uint64_t sampleWindows = 0;
};

/** One bar's worth of manifest content. */
struct ManifestBar
{
    std::string name;
    BarMeta meta;
    Snapshot stats;
    std::vector<obs::EpochRow> epochs; //!< empty unless epoch sampling on
    /** Per-stat error bounds; written only when sampling.enabled. */
    sample::SampleReport sampling;
};

struct Manifest
{
    std::string figure;
    std::string title;
    std::vector<ManifestBar> bars;
};

/** Serialize the manifest document (jsonValidate-clean by contract). */
std::string manifestToJson(const Manifest &m);

/**
 * One numeric leaf of a parsed manifest, addressed as
 * "<bar>/<stat>" (scalars) or "<bar>/<stat>.<field>" (distribution
 * fields, e.g. "1x8-1MB/oltp.txn.latency.p95"). Null-valued leaves
 * (undefined quantiles) are skipped: they compare as absent.
 */
struct FlatStat
{
    std::string path;
    double value = 0.0;
};

/**
 * Flatten a parsed stats.json into sorted (path, value) pairs.
 * Fatal when the document is not an isim-stats manifest or the schema
 * version is newer than this build understands. META blocks are not
 * stats and are skipped; read them with manifestMeta().
 */
std::vector<FlatStat> flattenManifest(const JsonValue &doc);

/** One bar's parsed META block (bars without one are skipped). */
struct BarMetaView
{
    std::string bar;
    BarMeta meta;
};

/**
 * Extract every bar's META block from a parsed manifest, in document
 * order. Manifests predating the META echo yield an empty vector.
 */
std::vector<BarMetaView> manifestMeta(const JsonValue &doc);

/**
 * Flatten every bar's "sampling" block into sorted
 * ("<bar>/<stat>", ci95) pairs. Exact manifests yield an empty
 * vector. Null / non-finite ci95 entries are skipped — a stat
 * without a finite CI compares like an unsampled one.
 */
std::vector<FlatStat> flattenCi95(const JsonValue &doc);

/** Whether any bar of a parsed manifest carries a sampling block. */
bool manifestHasSampling(const JsonValue &doc);

/**
 * Every gauge stat of a parsed manifest as a sorted "<bar>/<stat>"
 * list. CI-aware diffs (isim-stat diff --ci) exclude gauges when one
 * side was sampled: a sampled run reports a gauge as its mean level
 * over the measurement windows, an exact run as its end-of-run level
 * — different estimands that no confidence interval reconciles
 * (docs/SAMPLING.md).
 */
std::vector<std::string> manifestGaugePaths(const JsonValue &doc);

/** `flat` minus the stats whose path is in sorted `paths`. */
std::vector<FlatStat> dropPaths(const std::vector<FlatStat> &flat,
                                const std::vector<std::string> &paths);

/** One stat whose value differs between two manifests. */
struct StatDiff
{
    std::string path;
    double a = 0.0;
    double b = 0.0;
    double rel = 0.0; //!< |b-a| / max(|a|, |b|)
};

struct DiffResult
{
    std::vector<StatDiff> diffs;  //!< beyond tolerance, sorted by path
    std::vector<std::string> onlyA;
    std::vector<std::string> onlyB;

    bool clean() const
    {
        return diffs.empty() && onlyA.empty() && onlyB.empty();
    }
};

/**
 * Compare two flattened manifests. A pair differs when its relative
 * delta |b-a| / max(|a|,|b|) exceeds `tolerance` (so tolerance 0
 * demands bit-identical values). Stats present on one side only are
 * reported separately and always make the result unclean.
 */
DiffResult diffFlattened(const std::vector<FlatStat> &a,
                         const std::vector<FlatStat> &b,
                         double tolerance = 0.0);

/**
 * CI-aware comparison (isim-stat diff --ci): a pair whose absolute
 * delta is within the union of the two sides' 95% intervals
 * (ciA + ciB, missing = 0) is clean; pairs with no CI on either side
 * fall back to the relative `tolerance`. The tolerance also floors
 * CI pairs — a deterministic counter's zero-width interval would
 * otherwise flag the small systematic window-boundary bias sampling
 * necessarily carries. When `any_sampled`, order-statistic
 * distribution fields (.min/.max/.p50/.p95/.p99) are excluded from
 * the comparison entirely — the interval-batch estimator provides no
 * error bound for order statistics (docs/SAMPLING.md, "when the CI
 * lies"). Callers comparing sampled against exact manifests should
 * also drop gauge paths (manifestGaugePaths + dropPaths), as
 * isim-stat does.
 */
DiffResult diffFlattenedCi(const std::vector<FlatStat> &a,
                           const std::vector<FlatStat> &b,
                           const std::vector<FlatStat> &ci_a,
                           const std::vector<FlatStat> &ci_b,
                           bool any_sampled, double tolerance = 0.0);

} // namespace stats
} // namespace isim

#endif // ISIM_STATS_MANIFEST_HH
