/**
 * @file
 * Table formatter implementation.
 */

#include "src/stats/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/base/logging.hh"

namespace isim {

std::string
formatNum(double value, int precision)
{
    if (!std::isfinite(value))
        return "-"; // undefined metric (e.g. quantile of an empty run)
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    isim_assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    isim_assert(cells.size() == headers_.size(),
                "row width does not match header");
    rows_.push_back(std::move(cells));
}

Table::RowBuilder &
Table::RowBuilder::cell(const std::string &text)
{
    cells_.push_back(text);
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::num(double value, int precision)
{
    cells_.push_back(formatNum(value, precision));
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::count(std::uint64_t value)
{
    cells_.push_back(std::to_string(value));
    return *this;
}

Table::RowBuilder::~RowBuilder()
{
    table_.addRow(std::move(cells_));
}

void
Table::addSeparator()
{
    separators_.push_back(rows_.size());
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << "  ";
            if (c == 0) {
                os << cells[c]
                   << std::string(widths[c] - cells[c].size(), ' ');
            } else {
                os << std::string(widths[c] - cells[c].size(), ' ')
                   << cells[c];
            }
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, headers_);
    std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
    for (auto w : widths)
        total += w;
    os << std::string(total, '-') << '\n';

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separators_.begin(), separators_.end(), r) !=
            separators_.end()) {
            os << std::string(total, '-') << '\n';
        }
        emit_row(os, rows_[r]);
    }
    return os.str();
}

std::string
Table::toCsv() const
{
    auto emit = [](std::ostringstream &os,
                   const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    std::ostringstream os;
    emit(os, headers_);
    for (const auto &row : rows_)
        emit(os, row);
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    os << toText();
}

} // namespace isim
