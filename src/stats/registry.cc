/**
 * @file
 * Metrics registry implementation.
 */

#include "src/stats/registry.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <utility>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/stats/breakdown.hh"

namespace isim {
namespace stats {

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Counter:
        return "counter";
      case Kind::Gauge:
        return "gauge";
      case Kind::Distribution:
        return "distribution";
      case Kind::Formula:
        return "formula";
    }
    isim_panic("unknown stat kind %d", static_cast<int>(kind));
}

double
Sample::number() const
{
    switch (kind) {
      case Kind::Counter:
        return static_cast<double>(u);
      case Kind::Distribution:
        return static_cast<double>(dist.count);
      case Kind::Gauge:
      case Kind::Formula:
        return d;
    }
    return d;
}

const Sample *
findSample(const Snapshot &snapshot, const std::string &name)
{
    for (const auto &s : snapshot)
        if (s.name == name)
            return &s;
    return nullptr;
}

namespace {

/**
 * Dotted paths only: lowercase alnum segments (plus '_' and '-'),
 * separated by single dots. Rejecting anything else keeps stat names
 * grep-able and stable across tools.
 */
bool
validStatName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    char prev = '.';
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '_' || c == '-' || c == '.';
        if (!ok)
            return false;
        if (c == '.' && prev == '.')
            return false;
        prev = c;
    }
    return true;
}

void
writeNumber(JsonWriter &w, double v)
{
    // Integral values print without a fraction so counters stay exact.
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        if (v >= 0)
            w.value(static_cast<std::uint64_t>(v));
        else
            w.value(static_cast<std::int64_t>(v));
    } else {
        w.value(v, 6);
    }
}

} // namespace

void
Registry::add(Entry entry)
{
    if (!validStatName(entry.name))
        isim_fatal("invalid stat name '%s' (want dotted lowercase path)",
                   entry.name.c_str());
    if (!names_.insert(entry.name).second)
        isim_fatal("duplicate stat name '%s'", entry.name.c_str());
    entries_.push_back(std::move(entry));
}

Registry &
Registry::counter(const std::string &name, const std::string &desc,
                  const std::string &unit, CounterFn get)
{
    isim_assert(get != nullptr);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.kind = Kind::Counter;
    e.getCounter = std::move(get);
    add(std::move(e));
    return *this;
}

Registry &
Registry::gauge(const std::string &name, const std::string &desc,
                const std::string &unit, GaugeFn get)
{
    isim_assert(get != nullptr);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.kind = Kind::Gauge;
    e.getGauge = std::move(get);
    add(std::move(e));
    return *this;
}

Registry &
Registry::formula(const std::string &name, const std::string &desc,
                  const std::string &unit, GaugeFn get, bool extensive)
{
    isim_assert(get != nullptr);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.kind = Kind::Formula;
    e.getGauge = std::move(get);
    e.extensive = extensive;
    add(std::move(e));
    return *this;
}

Registry &
Registry::distribution(const std::string &name, const std::string &desc,
                       const std::string &unit, HistogramFn get)
{
    isim_assert(get != nullptr);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.unit = unit;
    e.kind = Kind::Distribution;
    e.getHistogram = std::move(get);
    add(std::move(e));
    return *this;
}

Registry &
Registry::breakdown(const std::string &prefix, const std::string &desc,
                    const std::string &unit, const Breakdown &b)
{
    for (std::size_t i = 0; i < b.size(); ++i) {
        std::string label = b.label(i);
        std::transform(label.begin(), label.end(), label.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        gauge(prefix + "." + label, desc + " (" + b.label(i) + ")", unit,
              [&b, i] { return b.component(i); });
    }
    gauge(prefix + ".total", desc + " (total)", unit,
          [&b] { return b.total(); });
    return *this;
}

void
Registry::onReset(std::function<void()> hook)
{
    isim_assert(hook != nullptr);
    resetHooks_.push_back(std::move(hook));
}

void
Registry::resetAll()
{
    for (auto &hook : resetHooks_)
        hook();
}

Snapshot
Registry::snapshot() const
{
    Snapshot out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        Sample s;
        s.name = e.name;
        s.desc = e.desc;
        s.unit = e.unit;
        s.kind = e.kind;
        s.extensive = e.extensive;
        switch (e.kind) {
          case Kind::Counter:
            s.u = e.getCounter();
            break;
          case Kind::Gauge:
          case Kind::Formula:
            s.d = e.getGauge();
            break;
          case Kind::Distribution: {
            const Histogram &h = e.getHistogram();
            s.dist.count = h.count();
            s.dist.sum = h.sum();
            s.dist.mean = h.mean();
            s.dist.min = h.minValue();
            s.dist.max = h.maxValue();
            s.dist.p50 = h.quantile(0.50);
            s.dist.p95 = h.quantile(0.95);
            s.dist.p99 = h.quantile(0.99);
            break;
          }
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const Sample &a, const Sample &b) { return a.name < b.name; });
    return out;
}

void
Registry::forEachDistribution(
    const std::function<void(const std::string &name,
                             const Histogram &h)> &fn) const
{
    for (const auto &e : entries_) {
        if (e.kind == Kind::Distribution)
            fn(e.name, e.getHistogram());
    }
}

void
writeSnapshotJson(JsonWriter &w, const Snapshot &snapshot)
{
    w.beginObject();
    for (const auto &s : snapshot) {
        w.key(s.name);
        w.beginObject();
        w.kv("kind", kindName(s.kind));
        w.kv("unit", s.unit);
        w.kv("desc", s.desc);
        w.key("value");
        switch (s.kind) {
          case Kind::Counter:
            w.value(s.u);
            break;
          case Kind::Gauge:
          case Kind::Formula:
            writeNumber(w, s.d);
            break;
          case Kind::Distribution:
            w.beginObject();
            w.kv("count", s.dist.count);
            w.key("sum");
            writeNumber(w, s.dist.sum);
            w.key("mean");
            writeNumber(w, s.dist.mean);
            w.kv("min", s.dist.min);
            w.kv("max", s.dist.max);
            w.key("p50");
            writeNumber(w, s.dist.p50);
            w.key("p95");
            writeNumber(w, s.dist.p95);
            w.key("p99");
            writeNumber(w, s.dist.p99);
            w.endObject();
            break;
        }
        w.endObject();
    }
    w.endObject();
}

} // namespace stats
} // namespace isim
