/**
 * @file
 * Hierarchical metrics registry (gem5-style): every counter in the
 * simulator is registered under a dotted path ("node0.l2.miss.
 * remote_dirty", "oltp.latch.contended") with a kind, a unit and a
 * one-line description, so a run can emit a self-describing,
 * machine-diffable stats manifest instead of scattering ad-hoc struct
 * dumps. Stats are registered as *getters* over the live component
 * state — the registry owns no counters itself — and components hang
 * reset hooks on it so Machine::resetStats (the warm-up/measure
 * boundary) clears every registered statistic through one call.
 *
 * Kinds:
 *   Counter      monotonic event count (uint64), reset at the window
 *   Gauge        instantaneous level (double), not reset
 *   Distribution summary of a Histogram (count/sum/min/max/quantiles)
 *   Formula      derived ratio evaluated at dump time (MPKI, rates)
 */

#ifndef ISIM_STATS_REGISTRY_HH
#define ISIM_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/stats/histogram.hh"

namespace isim {

class Breakdown;
class JsonWriter;

namespace stats {

enum class Kind : std::uint8_t { Counter, Gauge, Distribution, Formula };

const char *kindName(Kind kind);

/** Summary of a Histogram at snapshot time. */
struct DistSummary
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double p50 = 0.0; //!< NaN when unresolvable (empty / overflow mass)
    double p95 = 0.0;
    double p99 = 0.0;
};

/** One stat's value at snapshot time, with its metadata. */
struct Sample
{
    std::string name;
    std::string desc;
    std::string unit;
    Kind kind = Kind::Counter;
    std::uint64_t u = 0;  //!< Counter value
    double d = 0.0;       //!< Gauge / Formula value (may be NaN)
    DistSummary dist;     //!< Distribution summary
    /**
     * Formula only: true when the value is a run-total (like
     * cpu.exec_time's ticks) rather than a rate or ratio. Sampled runs
     * (docs/SAMPLING.md) expand extensive formulas to run level the
     * way they expand counters; intensive ones are averaged.
     */
    bool extensive = false;

    /** Canonical scalar value (distributions report their count). */
    double number() const;
};

/** A full registry snapshot, sorted by name. */
using Snapshot = std::vector<Sample>;

/** Linear lookup by exact name; nullptr when absent. */
const Sample *findSample(const Snapshot &snapshot,
                         const std::string &name);

/**
 * Serialize a snapshot as one JSON object keyed by stat name:
 *   "cpu.busy": {"kind": "counter", "unit": "ticks",
 *                "desc": "...", "value": 12345}
 * Distribution values are nested objects; undefined quantiles emit
 * null. The caller owns the enclosing document structure.
 */
void writeSnapshotJson(JsonWriter &w, const Snapshot &snapshot);

/** The registry proper. One per Machine; never shared across runs. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    using HistogramFn = std::function<const Histogram &()>;

    Registry &counter(const std::string &name, const std::string &desc,
                      const std::string &unit, CounterFn get);
    Registry &gauge(const std::string &name, const std::string &desc,
                    const std::string &unit, GaugeFn get);
    /**
     * `extensive` marks a formula whose value is a run-total (see
     * Sample::extensive); the default (false) means a rate or ratio.
     */
    Registry &formula(const std::string &name, const std::string &desc,
                      const std::string &unit, GaugeFn get,
                      bool extensive = false);
    Registry &distribution(const std::string &name,
                           const std::string &desc,
                           const std::string &unit, HistogramFn get);

    /**
     * Register one Gauge per component of a Breakdown under
     * `prefix.<label>` plus `prefix.total`. The Breakdown must
     * outlive the registry.
     */
    Registry &breakdown(const std::string &prefix,
                        const std::string &desc,
                        const std::string &unit, const Breakdown &b);

    /** Hook run by resetAll() (warm-up/measure boundary). */
    void onReset(std::function<void()> hook);

    /** Reset every registered component through the hooks. */
    void resetAll();

    std::size_t size() const { return entries_.size(); }

    /** Evaluate every stat; the result is sorted by name. */
    Snapshot snapshot() const;

    /**
     * Visit every Distribution stat's live histogram, in registration
     * order (deterministic). The sampled-simulation controller uses
     * this to pool per-window histograms across measurement windows.
     */
    void forEachDistribution(
        const std::function<void(const std::string &name,
                                 const Histogram &h)> &fn) const;

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        std::string unit;
        Kind kind = Kind::Counter;
        CounterFn getCounter;
        GaugeFn getGauge;
        HistogramFn getHistogram;
        bool extensive = false; //!< Formula only; see Sample::extensive
    };

    /** Validates the path and rejects duplicates; fatal on misuse. */
    void add(Entry entry);

    std::vector<Entry> entries_;
    std::unordered_set<std::string> names_;
    std::vector<std::function<void()>> resetHooks_;
};

} // namespace stats
} // namespace isim

#endif // ISIM_STATS_REGISTRY_HH
