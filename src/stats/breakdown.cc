/**
 * @file
 * Breakdown implementation.
 */

#include "src/stats/breakdown.hh"

#include <numeric>
#include <utility>

#include "src/base/logging.hh"

namespace isim {

Breakdown::Breakdown(std::string name, std::vector<std::string> components)
    : name_(std::move(name)), labels_(std::move(components)),
      values_(labels_.size(), 0.0)
{
}

void
Breakdown::add(std::size_t component, double amount)
{
    isim_assert(component < values_.size());
    values_[component] += amount;
}

void
Breakdown::set(std::size_t component, double amount)
{
    isim_assert(component < values_.size());
    values_[component] = amount;
}

double
Breakdown::total() const
{
    return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double
Breakdown::fraction(std::size_t component) const
{
    isim_assert(component < values_.size());
    const double t = total();
    return t == 0.0 ? 0.0 : values_[component] / t;
}

Breakdown &
Breakdown::operator+=(const Breakdown &other)
{
    isim_assert(values_.size() == other.values_.size(),
                "breakdown layouts differ");
    for (std::size_t i = 0; i < values_.size(); ++i)
        values_[i] += other.values_[i];
    return *this;
}

Breakdown
Breakdown::scaled(double factor) const
{
    Breakdown result = *this;
    for (auto &v : result.values_)
        v *= factor;
    return result;
}

void
Breakdown::clear()
{
    for (auto &v : values_)
        v = 0.0;
}

} // namespace isim
