/**
 * @file
 * Stats manifest serialization, flattening and diffing.
 */

#include "src/stats/manifest.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"
#include "src/obs/sampler.hh"

namespace isim {
namespace stats {

namespace {

void
writeBarMeta(JsonWriter &w, const BarMeta &meta)
{
    w.beginObject();
    w.kv("key", meta.key);
    w.kv("config_digest", meta.configDigest);
    w.kv("seed", meta.seed);
    w.kv("schema_version", meta.schemaVersion);
    if (meta.simWallMs >= 0.0)
        w.kv("sim_wall_ms", meta.simWallMs, 4);
    if (meta.hostWallMs >= 0.0)
        w.kv("host_wall_ms", meta.hostWallMs, 4);
    if (!meta.status.empty())
        w.kv("status", meta.status);
    if (!meta.warmupMode.empty())
        w.kv("warmup_mode", meta.warmupMode);
    if (!meta.execMode.empty())
        w.kv("exec_mode", meta.execMode);
    if (!meta.sampleMode.empty()) {
        w.kv("sample_mode", meta.sampleMode);
        w.kv("sample_ff", meta.sampleFf);
        w.kv("sample_measure", meta.sampleMeasure);
        w.kv("sample_warm", meta.sampleWarm);
        w.kv("sample_windows", meta.sampleWindows);
    }
    w.endObject();
}

void
writeSampling(JsonWriter &w, const sample::SampleReport &s)
{
    w.beginObject();
    w.kv("mode", sample::sampleModeName(s.mode));
    w.kv("ff", s.ff);
    w.kv("measure", s.measure);
    w.kv("warm", s.warm);
    w.kv("windows", s.windows);
    w.kv("covered", s.covered);
    w.key("stats");
    w.beginObject();
    for (const auto &ci : s.stats) {
        w.key(ci.name);
        w.beginObject();
        w.kv("sem", ci.sem, 6);
        w.kv("ci95", ci.ci95, 6);
        w.kv("windows", s.windows);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
writeEpochRow(JsonWriter &w, const obs::EpochRow &row)
{
    w.beginObject();
    w.kv("epoch", row.epoch);
    w.kv("start", row.start);
    w.kv("end", row.end);
    const obs::CounterSnapshot &d = row.delta;
    w.kv("committed_txns", d.committedTxns);
    w.kv("instructions", d.instructions);
    w.kv("busy", d.busy);
    w.kv("idle", d.idle);
    w.kv("kernel_time", d.kernelTime);
    w.kv("miss_instr_local", d.missInstrLocal);
    w.kv("miss_instr_remote", d.missInstrRemote);
    w.kv("miss_data_local", d.missDataLocal);
    w.kv("miss_data_remote_clean", d.missDataRemoteClean);
    w.kv("miss_data_remote_dirty", d.missDataRemoteDirty);
    w.kv("latch_acquires", d.latchAcquires);
    w.kv("latch_contended", d.latchContended);
    w.kv("ctx_switches", d.ctxSwitches);
    w.kv("noc_msgs", d.nocMsgs);
    w.kv("noc_bytes", d.nocBytes);
    w.kv("tps", row.tps(), 4);
    w.endObject();
}

/** Append a flattened leaf unless its value is absent (null / NaN). */
void
pushLeaf(std::vector<FlatStat> &out, const std::string &path,
         const JsonValue &v)
{
    if (v.isNull())
        return;
    isim_assert(v.isNumber(), "stat leaf '%s' is not a number",
                path.c_str());
    if (!std::isfinite(v.number))
        return;
    out.push_back({path, v.number});
}

} // namespace

std::string
hex64(std::uint64_t v)
{
    static const char *kDigits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::string
resultKey(const std::vector<std::uint8_t> &config_bytes,
          std::uint64_t seed)
{
    std::vector<std::uint8_t> bytes = config_bytes;
    for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    const auto version = static_cast<std::uint32_t>(kManifestVersion);
    for (int i = 0; i < 4; ++i)
        bytes.push_back(static_cast<std::uint8_t>(version >> (8 * i)));
    return hex64(ckpt::fnv1a64(bytes.data(), bytes.size()));
}

std::string
resultKey(const std::vector<std::uint8_t> &config_bytes,
          std::uint64_t seed, const sample::SampleSpec &sample)
{
    if (!sample.enabled())
        return resultKey(config_bytes, seed);
    std::vector<std::uint8_t> bytes = config_bytes;
    // Tag byte separates the sampled namespace from any future
    // appended axis, then the resolved schedule (LE) and mode.
    bytes.push_back(0x51); // 'Q'
    const auto push64 = [&bytes](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    push64(sample.ff);
    push64(sample.measure);
    push64(sample.resolvedWarm());
    push64(sample.windows);
    bytes.push_back(static_cast<std::uint8_t>(sample.mode));
    return resultKey(bytes, seed);
}

std::string
configDigest(const std::vector<std::uint8_t> &config_bytes)
{
    return hex64(
        ckpt::fnv1a64(config_bytes.data(), config_bytes.size()));
}

std::string
manifestToJson(const Manifest &m)
{
    std::ostringstream os;
    // prettyDepth 3: one line per bar-level key and per stat entry,
    // inline below that — diffable without being enormous.
    JsonWriter w(os, 3);
    w.beginObject();
    w.kv("schema", kManifestSchema);
    w.kv("version", kManifestVersion);
    w.kv("figure", m.figure);
    w.kv("title", m.title);
    w.key("bars");
    w.beginArray();
    for (const auto &bar : m.bars) {
        w.beginObject();
        w.kv("name", bar.name);
        if (bar.meta.present) {
            w.key("meta");
            writeBarMeta(w, bar.meta);
        }
        w.key("stats");
        writeSnapshotJson(w, bar.stats);
        if (bar.sampling.enabled) {
            w.key("sampling");
            writeSampling(w, bar.sampling);
        }
        if (!bar.epochs.empty()) {
            w.key("epochs");
            w.beginArray();
            for (const auto &row : bar.epochs)
                writeEpochRow(w, row);
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    return os.str();
}

std::vector<FlatStat>
flattenManifest(const JsonValue &doc)
{
    if (!doc.isObject())
        isim_fatal("stats manifest: document is not a JSON object");
    const JsonValue *schema = doc.get("schema");
    if (!schema || !schema->isString() || schema->text != kManifestSchema)
        isim_fatal("stats manifest: missing or wrong \"schema\" "
                   "(want \"%s\")",
                   kManifestSchema);
    const JsonValue &version = doc.at("version");
    if (!version.isNumber() ||
        static_cast<int>(version.number) > kManifestVersion) {
        isim_fatal("stats manifest: unsupported schema version %g "
                   "(this build understands <= %d)",
                   version.number, kManifestVersion);
    }

    std::vector<FlatStat> out;
    const JsonValue &bars = doc.at("bars");
    isim_assert(bars.isArray(), "stats manifest: \"bars\" is not an array");
    for (const JsonValue &bar : bars.array) {
        const std::string &barName = bar.at("name").text;
        const JsonValue &statsObj = bar.at("stats");
        isim_assert(statsObj.isObject());
        for (const auto &member : statsObj.members) {
            const std::string path = barName + "/" + member.first;
            const JsonValue &value = member.second.at("value");
            if (value.isObject()) {
                // Distribution: one leaf per summary field.
                for (const auto &field : value.members)
                    pushLeaf(out, path + "." + field.first, field.second);
            } else {
                pushLeaf(out, path, value);
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const FlatStat &x, const FlatStat &y) {
                  return x.path < y.path;
              });
    return out;
}

std::vector<BarMetaView>
manifestMeta(const JsonValue &doc)
{
    std::vector<BarMetaView> out;
    if (!doc.isObject())
        return out;
    const JsonValue *bars = doc.get("bars");
    if (bars == nullptr || !bars->isArray())
        return out;
    for (const JsonValue &bar : bars->array) {
        const JsonValue *meta = bar.get("meta");
        if (meta == nullptr || !meta->isObject())
            continue;
        BarMetaView view;
        const JsonValue *name = bar.get("name");
        view.bar = name != nullptr && name->isString() ? name->text : "";
        view.meta.present = true;
        if (const JsonValue *v = meta->get("key");
            v != nullptr && v->isString()) {
            view.meta.key = v->text;
        }
        if (const JsonValue *v = meta->get("config_digest");
            v != nullptr && v->isString()) {
            view.meta.configDigest = v->text;
        }
        if (const JsonValue *v = meta->get("seed");
            v != nullptr && v->isNumber()) {
            view.meta.seed = static_cast<std::uint64_t>(v->number);
        }
        if (const JsonValue *v = meta->get("schema_version");
            v != nullptr && v->isNumber()) {
            view.meta.schemaVersion = static_cast<int>(v->number);
        }
        if (const JsonValue *v = meta->get("sim_wall_ms");
            v != nullptr && v->isNumber()) {
            view.meta.simWallMs = v->number;
        } else if (const JsonValue *w = meta->get("wall_ms");
                   w != nullptr && w->isNumber()) {
            // Version-1 manifests: "wall_ms" carried simulated ms.
            view.meta.simWallMs = w->number;
        }
        if (const JsonValue *v = meta->get("host_wall_ms");
            v != nullptr && v->isNumber()) {
            view.meta.hostWallMs = v->number;
        }
        if (const JsonValue *v = meta->get("status");
            v != nullptr && v->isString()) {
            view.meta.status = v->text;
        }
        if (const JsonValue *v = meta->get("warmup_mode");
            v != nullptr && v->isString()) {
            view.meta.warmupMode = v->text;
        }
        if (const JsonValue *v = meta->get("exec_mode");
            v != nullptr && v->isString()) {
            view.meta.execMode = v->text;
        }
        if (const JsonValue *v = meta->get("sample_mode");
            v != nullptr && v->isString()) {
            view.meta.sampleMode = v->text;
        }
        if (const JsonValue *v = meta->get("sample_ff");
            v != nullptr && v->isNumber()) {
            view.meta.sampleFf = static_cast<std::uint64_t>(v->number);
        }
        if (const JsonValue *v = meta->get("sample_measure");
            v != nullptr && v->isNumber()) {
            view.meta.sampleMeasure =
                static_cast<std::uint64_t>(v->number);
        }
        if (const JsonValue *v = meta->get("sample_warm");
            v != nullptr && v->isNumber()) {
            view.meta.sampleWarm = static_cast<std::uint64_t>(v->number);
        }
        if (const JsonValue *v = meta->get("sample_windows");
            v != nullptr && v->isNumber()) {
            view.meta.sampleWindows =
                static_cast<std::uint64_t>(v->number);
        }
        out.push_back(std::move(view));
    }
    return out;
}

std::vector<FlatStat>
flattenCi95(const JsonValue &doc)
{
    std::vector<FlatStat> out;
    if (!doc.isObject())
        return out;
    const JsonValue *bars = doc.get("bars");
    if (bars == nullptr || !bars->isArray())
        return out;
    for (const JsonValue &bar : bars->array) {
        const JsonValue *sampling = bar.get("sampling");
        if (sampling == nullptr || !sampling->isObject())
            continue;
        const JsonValue *stats = sampling->get("stats");
        if (stats == nullptr || !stats->isObject())
            continue;
        const JsonValue *name = bar.get("name");
        const std::string barName =
            name != nullptr && name->isString() ? name->text : "";
        for (const auto &member : stats->members) {
            const JsonValue *ci = member.second.get("ci95");
            if (ci == nullptr || !ci->isNumber() ||
                !std::isfinite(ci->number)) {
                continue;
            }
            out.push_back({barName + "/" + member.first, ci->number});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const FlatStat &x, const FlatStat &y) {
                  return x.path < y.path;
              });
    return out;
}

std::vector<std::string>
manifestGaugePaths(const JsonValue &doc)
{
    std::vector<std::string> out;
    if (!doc.isObject())
        return out;
    const JsonValue *bars = doc.get("bars");
    if (bars == nullptr || !bars->isArray())
        return out;
    for (const JsonValue &bar : bars->array) {
        const JsonValue *statsObj = bar.get("stats");
        if (statsObj == nullptr || !statsObj->isObject())
            continue;
        const JsonValue *name = bar.get("name");
        const std::string barName =
            name != nullptr && name->isString() ? name->text : "";
        for (const auto &member : statsObj->members) {
            const JsonValue *kind = member.second.get("kind");
            if (kind != nullptr && kind->isString() &&
                kind->text == "gauge") {
                out.push_back(barName + "/" + member.first);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<FlatStat>
dropPaths(const std::vector<FlatStat> &flat,
          const std::vector<std::string> &paths)
{
    std::vector<FlatStat> out;
    out.reserve(flat.size());
    for (const FlatStat &s : flat) {
        if (!std::binary_search(paths.begin(), paths.end(), s.path))
            out.push_back(s);
    }
    return out;
}

bool
manifestHasSampling(const JsonValue &doc)
{
    if (!doc.isObject())
        return false;
    const JsonValue *bars = doc.get("bars");
    if (bars == nullptr || !bars->isArray())
        return false;
    for (const JsonValue &bar : bars->array) {
        const JsonValue *sampling = bar.get("sampling");
        if (sampling != nullptr && sampling->isObject())
            return true;
    }
    return false;
}

DiffResult
diffFlattened(const std::vector<FlatStat> &a, const std::vector<FlatStat> &b,
              double tolerance)
{
    DiffResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    // Both inputs are sorted by path (flattenManifest's contract).
    while (i < a.size() || j < b.size()) {
        if (j >= b.size() || (i < a.size() && a[i].path < b[j].path)) {
            result.onlyA.push_back(a[i].path);
            ++i;
        } else if (i >= a.size() || b[j].path < a[i].path) {
            result.onlyB.push_back(b[j].path);
            ++j;
        } else {
            const double va = a[i].value;
            const double vb = b[j].value;
            const double mag = std::max(std::fabs(va), std::fabs(vb));
            const double rel = mag > 0.0 ? std::fabs(vb - va) / mag : 0.0;
            if (rel > tolerance)
                result.diffs.push_back({a[i].path, va, vb, rel});
            ++i;
            ++j;
        }
    }
    return result;
}

namespace {

/** Binary search a sorted (path, value) list; NaN when absent. */
double
lookupFlat(const std::vector<FlatStat> &list, const std::string &path,
           bool *found)
{
    const auto it = std::lower_bound(
        list.begin(), list.end(), path,
        [](const FlatStat &s, const std::string &p) {
            return s.path < p;
        });
    if (it == list.end() || it->path != path) {
        *found = false;
        return 0.0;
    }
    *found = true;
    return it->value;
}

/** Distribution order-statistic fields: no interval-batch CI exists. */
bool
isOrderStatField(const std::string &path)
{
    for (const char *suffix : {".min", ".max", ".p50", ".p95", ".p99"}) {
        const std::size_t n = std::strlen(suffix);
        if (path.size() >= n &&
            path.compare(path.size() - n, n, suffix) == 0) {
            return true;
        }
    }
    return false;
}

} // namespace

DiffResult
diffFlattenedCi(const std::vector<FlatStat> &a,
                const std::vector<FlatStat> &b,
                const std::vector<FlatStat> &ci_a,
                const std::vector<FlatStat> &ci_b, bool any_sampled,
                double tolerance)
{
    DiffResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() || j < b.size()) {
        if (j >= b.size() || (i < a.size() && a[i].path < b[j].path)) {
            if (!(any_sampled && isOrderStatField(a[i].path)))
                result.onlyA.push_back(a[i].path);
            ++i;
        } else if (i >= a.size() || b[j].path < a[i].path) {
            if (!(any_sampled && isOrderStatField(b[j].path)))
                result.onlyB.push_back(b[j].path);
            ++j;
        } else {
            const std::string &path = a[i].path;
            const double va = a[i].value;
            const double vb = b[j].value;
            ++i;
            ++j;
            if (any_sampled && isOrderStatField(path))
                continue;
            bool hasA = false;
            bool hasB = false;
            const double ca = lookupFlat(ci_a, path, &hasA);
            const double cb = lookupFlat(ci_b, path, &hasB);
            const double delta = std::fabs(vb - va);
            const double mag = std::max(std::fabs(va), std::fabs(vb));
            const double rel = mag > 0.0 ? delta / mag : 0.0;
            if (hasA || hasB) {
                // Union-CI overlap: drift within the combined 95%
                // half-widths is statistically clean. The relative
                // tolerance stays as a floor — a deterministic
                // counter's zero-width interval would otherwise flag
                // the small systematic window-boundary bias the
                // tolerance exists to absorb (docs/SAMPLING.md).
                const double allowance = (hasA ? ca : 0.0) +
                                         (hasB ? cb : 0.0);
                if (delta > allowance && rel > tolerance)
                    result.diffs.push_back({path, va, vb, rel});
                continue;
            }
            if (rel > tolerance)
                result.diffs.push_back({path, va, vb, rel});
        }
    }
    return result;
}

} // namespace stats
} // namespace isim
