/**
 * @file
 * Stats manifest serialization, flattening and diffing.
 */

#include "src/stats/manifest.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/base/json.hh"
#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"
#include "src/obs/sampler.hh"

namespace isim {
namespace stats {

namespace {

void
writeBarMeta(JsonWriter &w, const BarMeta &meta)
{
    w.beginObject();
    w.kv("key", meta.key);
    w.kv("config_digest", meta.configDigest);
    w.kv("seed", meta.seed);
    w.kv("schema_version", meta.schemaVersion);
    if (meta.simWallMs >= 0.0)
        w.kv("sim_wall_ms", meta.simWallMs, 4);
    if (meta.hostWallMs >= 0.0)
        w.kv("host_wall_ms", meta.hostWallMs, 4);
    if (!meta.status.empty())
        w.kv("status", meta.status);
    if (!meta.warmupMode.empty())
        w.kv("warmup_mode", meta.warmupMode);
    if (!meta.execMode.empty())
        w.kv("exec_mode", meta.execMode);
    w.endObject();
}

void
writeEpochRow(JsonWriter &w, const obs::EpochRow &row)
{
    w.beginObject();
    w.kv("epoch", row.epoch);
    w.kv("start", row.start);
    w.kv("end", row.end);
    const obs::CounterSnapshot &d = row.delta;
    w.kv("committed_txns", d.committedTxns);
    w.kv("instructions", d.instructions);
    w.kv("busy", d.busy);
    w.kv("idle", d.idle);
    w.kv("kernel_time", d.kernelTime);
    w.kv("miss_instr_local", d.missInstrLocal);
    w.kv("miss_instr_remote", d.missInstrRemote);
    w.kv("miss_data_local", d.missDataLocal);
    w.kv("miss_data_remote_clean", d.missDataRemoteClean);
    w.kv("miss_data_remote_dirty", d.missDataRemoteDirty);
    w.kv("latch_acquires", d.latchAcquires);
    w.kv("latch_contended", d.latchContended);
    w.kv("ctx_switches", d.ctxSwitches);
    w.kv("noc_msgs", d.nocMsgs);
    w.kv("noc_bytes", d.nocBytes);
    w.kv("tps", row.tps(), 4);
    w.endObject();
}

/** Append a flattened leaf unless its value is absent (null / NaN). */
void
pushLeaf(std::vector<FlatStat> &out, const std::string &path,
         const JsonValue &v)
{
    if (v.isNull())
        return;
    isim_assert(v.isNumber(), "stat leaf '%s' is not a number",
                path.c_str());
    if (!std::isfinite(v.number))
        return;
    out.push_back({path, v.number});
}

} // namespace

std::string
hex64(std::uint64_t v)
{
    static const char *kDigits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
        v >>= 4;
    }
    return out;
}

std::string
resultKey(const std::vector<std::uint8_t> &config_bytes,
          std::uint64_t seed)
{
    std::vector<std::uint8_t> bytes = config_bytes;
    for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<std::uint8_t>(seed >> (8 * i)));
    const auto version = static_cast<std::uint32_t>(kManifestVersion);
    for (int i = 0; i < 4; ++i)
        bytes.push_back(static_cast<std::uint8_t>(version >> (8 * i)));
    return hex64(ckpt::fnv1a64(bytes.data(), bytes.size()));
}

std::string
configDigest(const std::vector<std::uint8_t> &config_bytes)
{
    return hex64(
        ckpt::fnv1a64(config_bytes.data(), config_bytes.size()));
}

std::string
manifestToJson(const Manifest &m)
{
    std::ostringstream os;
    // prettyDepth 3: one line per bar-level key and per stat entry,
    // inline below that — diffable without being enormous.
    JsonWriter w(os, 3);
    w.beginObject();
    w.kv("schema", kManifestSchema);
    w.kv("version", kManifestVersion);
    w.kv("figure", m.figure);
    w.kv("title", m.title);
    w.key("bars");
    w.beginArray();
    for (const auto &bar : m.bars) {
        w.beginObject();
        w.kv("name", bar.name);
        if (bar.meta.present) {
            w.key("meta");
            writeBarMeta(w, bar.meta);
        }
        w.key("stats");
        writeSnapshotJson(w, bar.stats);
        if (!bar.epochs.empty()) {
            w.key("epochs");
            w.beginArray();
            for (const auto &row : bar.epochs)
                writeEpochRow(w, row);
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    return os.str();
}

std::vector<FlatStat>
flattenManifest(const JsonValue &doc)
{
    if (!doc.isObject())
        isim_fatal("stats manifest: document is not a JSON object");
    const JsonValue *schema = doc.get("schema");
    if (!schema || !schema->isString() || schema->text != kManifestSchema)
        isim_fatal("stats manifest: missing or wrong \"schema\" "
                   "(want \"%s\")",
                   kManifestSchema);
    const JsonValue &version = doc.at("version");
    if (!version.isNumber() ||
        static_cast<int>(version.number) > kManifestVersion) {
        isim_fatal("stats manifest: unsupported schema version %g "
                   "(this build understands <= %d)",
                   version.number, kManifestVersion);
    }

    std::vector<FlatStat> out;
    const JsonValue &bars = doc.at("bars");
    isim_assert(bars.isArray(), "stats manifest: \"bars\" is not an array");
    for (const JsonValue &bar : bars.array) {
        const std::string &barName = bar.at("name").text;
        const JsonValue &statsObj = bar.at("stats");
        isim_assert(statsObj.isObject());
        for (const auto &member : statsObj.members) {
            const std::string path = barName + "/" + member.first;
            const JsonValue &value = member.second.at("value");
            if (value.isObject()) {
                // Distribution: one leaf per summary field.
                for (const auto &field : value.members)
                    pushLeaf(out, path + "." + field.first, field.second);
            } else {
                pushLeaf(out, path, value);
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const FlatStat &x, const FlatStat &y) {
                  return x.path < y.path;
              });
    return out;
}

std::vector<BarMetaView>
manifestMeta(const JsonValue &doc)
{
    std::vector<BarMetaView> out;
    if (!doc.isObject())
        return out;
    const JsonValue *bars = doc.get("bars");
    if (bars == nullptr || !bars->isArray())
        return out;
    for (const JsonValue &bar : bars->array) {
        const JsonValue *meta = bar.get("meta");
        if (meta == nullptr || !meta->isObject())
            continue;
        BarMetaView view;
        const JsonValue *name = bar.get("name");
        view.bar = name != nullptr && name->isString() ? name->text : "";
        view.meta.present = true;
        if (const JsonValue *v = meta->get("key");
            v != nullptr && v->isString()) {
            view.meta.key = v->text;
        }
        if (const JsonValue *v = meta->get("config_digest");
            v != nullptr && v->isString()) {
            view.meta.configDigest = v->text;
        }
        if (const JsonValue *v = meta->get("seed");
            v != nullptr && v->isNumber()) {
            view.meta.seed = static_cast<std::uint64_t>(v->number);
        }
        if (const JsonValue *v = meta->get("schema_version");
            v != nullptr && v->isNumber()) {
            view.meta.schemaVersion = static_cast<int>(v->number);
        }
        if (const JsonValue *v = meta->get("sim_wall_ms");
            v != nullptr && v->isNumber()) {
            view.meta.simWallMs = v->number;
        } else if (const JsonValue *w = meta->get("wall_ms");
                   w != nullptr && w->isNumber()) {
            // Version-1 manifests: "wall_ms" carried simulated ms.
            view.meta.simWallMs = w->number;
        }
        if (const JsonValue *v = meta->get("host_wall_ms");
            v != nullptr && v->isNumber()) {
            view.meta.hostWallMs = v->number;
        }
        if (const JsonValue *v = meta->get("status");
            v != nullptr && v->isString()) {
            view.meta.status = v->text;
        }
        if (const JsonValue *v = meta->get("warmup_mode");
            v != nullptr && v->isString()) {
            view.meta.warmupMode = v->text;
        }
        if (const JsonValue *v = meta->get("exec_mode");
            v != nullptr && v->isString()) {
            view.meta.execMode = v->text;
        }
        out.push_back(std::move(view));
    }
    return out;
}

DiffResult
diffFlattened(const std::vector<FlatStat> &a, const std::vector<FlatStat> &b,
              double tolerance)
{
    DiffResult result;
    std::size_t i = 0;
    std::size_t j = 0;
    // Both inputs are sorted by path (flattenManifest's contract).
    while (i < a.size() || j < b.size()) {
        if (j >= b.size() || (i < a.size() && a[i].path < b[j].path)) {
            result.onlyA.push_back(a[i].path);
            ++i;
        } else if (i >= a.size() || b[j].path < a[i].path) {
            result.onlyB.push_back(b[j].path);
            ++j;
        } else {
            const double va = a[i].value;
            const double vb = b[j].value;
            const double mag = std::max(std::fabs(va), std::fabs(vb));
            const double rel = mag > 0.0 ? std::fabs(vb - va) / mag : 0.0;
            if (rel > tolerance)
                result.diffs.push_back({a[i].path, va, vb, rel});
            ++i;
            ++j;
        }
    }
    return result;
}

} // namespace stats
} // namespace isim
