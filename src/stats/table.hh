/**
 * @file
 * Plain-text and CSV table rendering for experiment reports. Every
 * bench binary prints its figure through this formatter so the output
 * rows mirror the bars of the corresponding paper figure.
 */

#ifndef ISIM_STATS_TABLE_HH
#define ISIM_STATS_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace isim {

/**
 * A simple column-aligned table. Cells are strings; numeric helpers
 * format with fixed precision. The first column is left-aligned, the
 * rest right-aligned, matching conventional results tables.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    std::size_t columns() const { return headers_.size(); }
    std::size_t rows() const { return rows_.size(); }

    /** Append a fully formed row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Row-building helpers. */
    class RowBuilder
    {
      public:
        explicit RowBuilder(Table &table) : table_(table) {}
        RowBuilder &cell(const std::string &text);
        RowBuilder &num(double value, int precision = 1);
        RowBuilder &count(std::uint64_t value);
        ~RowBuilder();

        RowBuilder(const RowBuilder &) = delete;
        RowBuilder &operator=(const RowBuilder &) = delete;

      private:
        Table &table_;
        std::vector<std::string> cells_;
    };

    RowBuilder row() { return RowBuilder(*this); }

    /** Insert a separator line before the next row. */
    void addSeparator();

    /** Render aligned text, one trailing newline included. */
    std::string toText() const;

    /** Render comma-separated values (header + rows). */
    std::string toCsv() const;

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

/** Format a double with fixed precision. */
std::string formatNum(double value, int precision = 1);

} // namespace isim

#endif // ISIM_STATS_TABLE_HH
