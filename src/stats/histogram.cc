/**
 * @file
 * Histogram implementation.
 */

#include "src/stats/histogram.hh"

#include <limits>
#include <utility>

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

Histogram::Histogram(std::string name, std::uint64_t bucket_width,
                     std::size_t bucket_count)
    : name_(std::move(name)), bucketWidth_(bucket_width),
      counts_(bucket_count, 0)
{
    isim_assert(bucket_width > 0);
    isim_assert(bucket_count > 0);
}

void
Histogram::sample(std::uint64_t value, std::uint64_t n)
{
    const std::size_t idx = value / bucketWidth_;
    if (idx < counts_.size())
        counts_[idx] += n;
    else
        overflow_ += n;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
    count_ += n;
    sum_ += static_cast<double>(value) * static_cast<double>(n);
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    const double target = q * static_cast<double>(count_);
    double running = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += static_cast<double>(counts_[i]);
        if (running >= target)
            return static_cast<double>((i + 1) * bucketWidth_);
    }
    // The requested mass lies in the overflow bucket, which has no
    // upper edge: the quantile cannot be resolved.
    return std::numeric_limits<double>::quiet_NaN();
}

void
Histogram::clear()
{
    for (auto &c : counts_)
        c = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.bucketWidth_ != bucketWidth_ ||
        other.counts_.size() != counts_.size()) {
        isim_fatal("histogram '%s' merge geometry mismatch: "
                   "other has width %llu x %zu buckets, this "
                   "has %llu x %zu",
                   name_.c_str(),
                   static_cast<unsigned long long>(other.bucketWidth_),
                   other.counts_.size(),
                   static_cast<unsigned long long>(bucketWidth_),
                   counts_.size());
    }
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::saveState(ckpt::Serializer &s) const
{
    s.u64(bucketWidth_);
    s.u64(counts_.size());
    for (std::uint64_t c : counts_)
        s.u64(c);
    s.u64(overflow_);
    s.u64(count_);
    s.f64(sum_);
    s.u64(min_);
    s.u64(max_);
}

void
Histogram::restoreState(ckpt::Deserializer &d)
{
    const std::uint64_t width = d.u64();
    const std::uint64_t buckets = d.u64();
    if (width != bucketWidth_ || buckets != counts_.size())
        isim_fatal("checkpoint histogram '%s' geometry mismatch: "
                   "file has width %llu x %llu buckets, this build "
                   "has %llu x %zu",
                   name_.c_str(),
                   static_cast<unsigned long long>(width),
                   static_cast<unsigned long long>(buckets),
                   static_cast<unsigned long long>(bucketWidth_),
                   counts_.size());
    for (std::uint64_t &c : counts_)
        c = d.u64();
    overflow_ = d.u64();
    count_ = d.u64();
    sum_ = d.f64();
    min_ = d.u64();
    max_ = d.u64();
}

} // namespace isim
