/**
 * @file
 * Fixed-bucket histogram for latency / run-length distributions.
 */

#ifndef ISIM_STATS_HISTOGRAM_HH
#define ISIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/ckpt/fwd.hh"

namespace isim {

/**
 * Histogram over [0, bucketWidth * bucketCount) with an overflow
 * bucket; tracks count, sum, min and max so mean and simple quantiles
 * can be reported.
 */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(std::string name, std::uint64_t bucket_width,
              std::size_t bucket_count);

    void sample(std::uint64_t value, std::uint64_t count = 1);

    const std::string &name() const { return name_; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t minValue() const { return count_ ? min_ : 0; }
    std::uint64_t maxValue() const { return max_; }

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketWidth() const { return bucketWidth_; }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Smallest value v such that at least q of the mass is <= v,
     * resolved to bucket granularity (upper bucket edge). NaN when the
     * quantile is undefined: the histogram is empty, or the requested
     * mass falls inside the overflow bucket, where the histogram has
     * no resolution (reporting max() there would pretend precision
     * the data structure does not have). Tables render NaN as "-".
     */
    double quantile(double q) const;

    void clear();

    /**
     * Accumulate another histogram's samples into this one. The two
     * must share geometry (bucket width and count); fatal on skew.
     * Used by the sampled-simulation controller to pool per-window
     * distribution observations into one run-level histogram.
     */
    void merge(const Histogram &other);

    /**
     * Checkpoint the accumulated samples. The geometry (name, bucket
     * width, bucket count) is configuration, not state: restore
     * verifies it matches and fatals on skew.
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    std::string name_;
    std::uint64_t bucketWidth_ = 1;
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace isim

#endif // ISIM_STATS_HISTOGRAM_HH
