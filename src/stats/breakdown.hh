/**
 * @file
 * Named additive breakdowns, the statistic underlying every figure in
 * the paper (execution time split into CPU / L2Hit / LocStall / RemStall,
 * and L2 misses split by class).
 */

#ifndef ISIM_STATS_BREAKDOWN_HH
#define ISIM_STATS_BREAKDOWN_HH

#include <cstddef>
#include <string>
#include <vector>

namespace isim {

/**
 * A vector of named non-negative components that add up to a total.
 * Components are addressed by index; the owner defines the meaning of
 * each slot (typically via an enum).
 */
class Breakdown
{
  public:
    Breakdown() = default;
    Breakdown(std::string name, std::vector<std::string> components);

    const std::string &name() const { return name_; }
    std::size_t size() const { return values_.size(); }
    const std::string &label(std::size_t i) const { return labels_[i]; }

    void add(std::size_t component, double amount);
    void set(std::size_t component, double amount);
    double component(std::size_t i) const { return values_[i]; }
    double total() const;

    /** Fraction of the total in the given component; 0 if total is 0. */
    double fraction(std::size_t component) const;

    /** Component-wise accumulation; layouts must match. */
    Breakdown &operator+=(const Breakdown &other);

    /** Scale every component (e.g. to normalize to a reference). */
    Breakdown scaled(double factor) const;

    /** Reset all components to zero. */
    void clear();

  private:
    std::string name_;
    std::vector<std::string> labels_;
    std::vector<double> values_;
};

} // namespace isim

#endif // ISIM_STATS_BREAKDOWN_HH
