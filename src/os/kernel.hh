/**
 * @file
 * The kernel-activity model. Commercial workloads spend a large share
 * of their time in the operating system — the paper measures the
 * kernel at ~25% of total execution time for its OLTP runs and
 * stresses that full-system simulation (vs user-level traces) is
 * essential. This model supplies that activity: context-switch and
 * syscall paths with their own instruction footprint, per-CPU data,
 * and *shared* kernel structures whose updates produce communication
 * misses between nodes just like the SGA's.
 */

#ifndef ISIM_OS_KERNEL_HH
#define ISIM_OS_KERNEL_HH

#include <deque>
#include <memory>
#include <vector>

#include "src/base/random.hh"
#include "src/ckpt/fwd.hh"
#include "src/oltp/code_model.hh"
#include "src/os/vm.hh"
#include "src/trace/record.hh"

namespace isim {

/** Footprint and path-length parameters of the kernel model. */
struct KernelParams
{
    std::uint64_t textBytes = 128 * kib;
    unsigned numFunctions = 48;
    std::uint64_t sharedDataBytes = 64 * kib;
    std::uint64_t perCpuDataBytes = 64 * kib;

    unsigned switchFunctions = 3;  //!< code paths per context switch
    unsigned switchSharedRefs = 10; //!< run-queue / proc-table touches
    unsigned switchSharedStores = 3;
    unsigned switchPrivateRefs = 24; //!< context save/restore
    unsigned syscallFunctions = 2;
    unsigned syscallSharedRefs = 4;
    unsigned syscallSharedStores = 1;
    unsigned syscallPrivateRefs = 8;
    unsigned copyLines = 4; //!< lines moved by a pipe read/write

    double sharedSkew = 0.85; //!< Zipf theta over shared kernel lines

    // Per-code-line data mix (see LineDataEmitter).
    double dataRefsPerLine = 1.5;
    double lineSharedFraction = 0.2; //!< of mixed refs: shared kernel data
    double lineStoreFraction = 0.3;
};

/**
 * Kernel path generator. One instance serves the whole machine; each
 * CPU has its own deterministic random stream.
 */
class KernelModel
{
  public:
    KernelModel(VirtualMemory &vm, unsigned num_cpus,
                const KernelParams &params, std::uint64_t seed);

    const CodeModel &code() const { return *code_; }
    const KernelParams &params() const { return params_; }

    /** Emit the scheduler/context-switch path for `cpu`. */
    void contextSwitch(NodeId cpu, std::deque<MemRef> &out);

    /**
     * Emit a syscall path for `cpu` (pipe read/write, I/O submit).
     * `copy_bytes` adds a user/kernel copy loop of that size.
     */
    void syscall(NodeId cpu, std::deque<MemRef> &out,
                 std::uint64_t copy_bytes = 0);

    /** Instructions emitted so far (for kernel-share calibration). */
    std::uint64_t instructionsEmitted() const { return instrs_; }

    /** Checkpoint the per-CPU RNG streams and instruction count. */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    void touchShared(NodeId cpu, unsigned refs, unsigned stores,
                     Rng &rng, std::deque<MemRef> &out);
    void touchPerCpu(NodeId cpu, unsigned refs, Rng &rng,
                     std::deque<MemRef> &out);
    void invokeFunctions(NodeId cpu, unsigned count, Rng &rng,
                         std::deque<MemRef> &out);

    VirtualMemory &vm_;
    // ckpt: transient(params_): construction parameter, identical by contract
    KernelParams params_;
    // ckpt: transient(code_): stateless code-footprint model
    std::unique_ptr<CodeModel> code_;
    std::vector<Rng> rngs_;
    std::uint64_t instrs_ = 0;
};

} // namespace isim

#endif // ISIM_OS_KERNEL_HH
