/**
 * @file
 * Virtual memory for the simulated machine: 8 KB pages (Alpha-style),
 * lazy frame allocation, and the page-placement policies the paper's
 * experiments depend on:
 *
 *  - Interleave: pages striped round-robin across node memories; this
 *    is how the SGA behaves without data placement and is why only
 *    1-in-8 of misses find their data locally (Section 3).
 *  - Local: first-touch allocation on the toucher's node (private
 *    stacks, per-CPU kernel data).
 *  - Replicate: one physical copy per node, same virtual page — the
 *    OS-based code replication evaluated with the RAC in Section 6.
 *
 * Frames are handed out pseudo-randomly within a node's memory window
 * (no page colouring), so a hot footprint scattered over a large
 * physical space exhibits realistic direct-mapped conflict behaviour.
 */

#ifndef ISIM_OS_VM_HH
#define ISIM_OS_VM_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/random.hh"
#include "src/base/types.hh"
#include "src/ckpt/fwd.hh"
#include "src/coherence/directory.hh"

namespace isim {

/** Placement policy for a virtual region. */
enum class PlacePolicy {
    Interleave,
    Local,
    Replicate,
};

/** Configuration of the VM layer. */
struct VmConfig
{
    unsigned pageBytes = 8 * kib;
    HomeMap homeMap;
    /** CPU cores per node/chip (CMP extension); cores map onto nodes
     *  as core / coresPerNode. */
    unsigned coresPerNode = 1;
    /**
     * OS page colouring: when > 1, a virtual page's frame is chosen
     * in the colour class (vpn + segment offset) % pageColors, so a
     * contiguous virtual range tiles large physically-indexed caches
     * instead of colliding at random, while different segments start
     * at decorrelated colours (all segment bases are power-of-two
     * aligned, so colouring by raw vpn would stack every segment onto
     * the same colours). 1 disables (the default — the paper's
     * results assume effectively random placement, which is what a
     * 900 MB SGA on a busy machine gets). Must divide the per-node
     * frame count.
     */
    unsigned pageColors = 1;
    std::uint64_t seed = 0x5eedf00d;
};

/**
 * Machine-wide virtual memory. A single virtual address space is
 * shared (matching Oracle's SGA being attached at the same address in
 * every process); per-process private areas simply occupy disjoint
 * virtual ranges. Translation is per-node because replicated regions
 * map one virtual page to a different frame on each node.
 */
class VirtualMemory
{
  public:
    explicit VirtualMemory(const VmConfig &config);

    unsigned pageBytes() const { return config_.pageBytes; }
    const HomeMap &homeMap() const { return config_.homeMap; }

    /** Declare the placement policy of a virtual range. */
    void setPolicy(Addr vbase, std::uint64_t size, PlacePolicy policy,
                   std::string name = "");

    /**
     * Enable per-region profiling: every translation is attributed to
     * its region, and unique 64 B lines are tracked. Costs one region
     * lookup per access; off by default.
     */
    void enableProfiling(bool on) { profiling_ = on; }

    /** Profiling data for one declared region. */
    struct RegionProfile
    {
        std::string name;
        Addr vbase = 0;
        std::uint64_t size = 0;
        PlacePolicy policy = PlacePolicy::Interleave;
        std::uint64_t accesses = 0;
        std::uint64_t uniqueLines = 0;
    };
    std::vector<RegionProfile> regionProfiles() const;

    /**
     * Region index backing a physical address (-1 if unknown). Only
     * populated while profiling is enabled; indices match the order of
     * regionProfiles().
     */
    int regionIndexOfPaddr(Addr paddr) const;

    /**
     * Translate; allocates the backing frame(s) on first touch.
     * `core` is the CPU core performing the access; its node (chip)
     * is what matters for Local and Replicate regions.
     */
    Addr translate(Addr vaddr, NodeId core);

    /** Node (chip) a core belongs to. */
    NodeId nodeOfCore(NodeId core) const
    {
        return core / config_.coresPerNode;
    }

    /** Frames allocated on each node so far. */
    std::uint64_t framesAllocated(NodeId node) const;

    /** Total distinct virtual pages mapped. */
    std::uint64_t pagesMapped() const
    {
        return pages_.size() + replicated_.size();
    }

    /**
     * Checkpoint the page tables, frame allocator and RNG. Region
     * policy declarations are configuration (the engine re-declares
     * them on construction) and profiling attribution is diagnostic
     * state; neither is part of the bit-exactness contract. The TLB is
     * a pure functional cache and is simply cleared on restore.
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    struct Region
    {
        Addr vbase;
        Addr vend;
        PlacePolicy policy;
        std::string name;
        // Profiling (mutable so lookups can count).
        std::uint64_t accesses = 0;
        std::unordered_set<std::uint64_t> lines;
    };

    Region *regionOf(Addr vaddr);
    Addr allocFrame(NodeId node, std::uint64_t color_hint);

    // ckpt: transient(config_): construction parameter, identical by contract
    VmConfig config_;
    // ckpt: transient(pageShift_): derived from config_ at construction
    unsigned pageShift_;
    Rng rng_;
    // ckpt: transient(profiling_): observability toggle, reapplied per run
    bool profiling_ = false;
    // ckpt: transient(regions_): region table rebuilt by setup, identical by contract
    std::vector<Region> regions_;
    std::unordered_map<std::uint64_t, Addr> pages_; //!< vpn -> frame base
    std::unordered_map<std::uint64_t, std::vector<Addr>> replicated_;
    std::vector<std::unordered_set<std::uint64_t>> usedFrames_;
    std::vector<std::uint64_t> allocCount_;
    // ckpt: transient(frameRegion_): profiling attribution diagnostic only
    std::unordered_map<std::uint64_t, std::uint16_t> frameRegion_;

    /** Small translation cache (functional only; no TLB-miss timing). */
    struct TlbEntry
    {
        std::uint64_t vpn = ~0ull;
        NodeId node = invalidNode;
        Addr frame = 0;
    };
    static constexpr std::size_t tlbSize = 4096;
    std::vector<TlbEntry> tlb_;
};

} // namespace isim

#endif // ISIM_OS_VM_HH
