/**
 * @file
 * Per-CPU round-robin scheduler with timed sleeps and event waits.
 * OLTP throughput depends on it: while one server waits for its commit
 * record to reach the log, the seven other servers bound to the same
 * CPU keep it busy (the paper runs 8 server processes per processor to
 * hide I/O latencies).
 */

#ifndef ISIM_OS_SCHEDULER_HH
#define ISIM_OS_SCHEDULER_HH

#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "src/ckpt/fwd.hh"
#include "src/os/process.hh"

namespace isim {

/** Declaration of `const char *stepKindName(StepKind)` lives here too. */
const char *stepKindName(StepKind kind);

/**
 * The scheduler. All methods are driven by the simulation loop; the
 * whole simulator is single-threaded, so cross-CPU wakes are plain
 * state changes.
 */
class Scheduler
{
  public:
    explicit Scheduler(unsigned num_cpus);

    /** Register a process (bound to its Process::cpu()). */
    Process &add(std::unique_ptr<Process> process);

    unsigned numCpus() const
    {
        return static_cast<unsigned>(cpus_.size());
    }

    /** The process currently on the CPU (nullptr if none). */
    Process *running(NodeId cpu) const { return cpus_[cpu].running; }

    /**
     * Move expired sleepers to the ready queue and dispatch the next
     * ready process. Returns nullptr if nothing is runnable at `now`.
     */
    Process *pickNext(NodeId cpu, Tick now);

    /** Earliest timed wake on this CPU (maxTick if none). */
    Tick nextWake(NodeId cpu) const;

    /** True if the ready queue is non-empty. */
    bool hasReady(NodeId cpu) const { return !cpus_[cpu].ready.empty(); }

    /** True while the CPU has any non-Done process. */
    bool hasWork(NodeId cpu) const;

    /** Block the running process; wake at `wake_at` (or by event). */
    void blockCurrent(NodeId cpu, Tick wake_at);

    /** Requeue the running process at the tail of the ready queue. */
    void yieldCurrent(NodeId cpu);

    /** Retire the running process. */
    void finishCurrent(NodeId cpu);

    /** Wake a (possibly event-)blocked process at time `at`. */
    void wake(Process &process, Tick at);

    /** Count of processes that have exited. */
    std::uint64_t finished() const { return finished_; }

    /** Number of voluntary + involuntary context switches so far. */
    std::uint64_t contextSwitches() const { return switches_; }

    /** The registered process with this pid (nullptr if unknown). */
    Process *processByPid(Pid pid) const;

    /**
     * Checkpoint scheduler bookkeeping and, via Process::saveState,
     * every registered process. Sleepers are serialized in pop order
     * and renumbered on restore, preserving their relative wake order.
     */
    void saveState(ckpt::Serializer &s) const;
    void restoreState(ckpt::Deserializer &d);

  private:
    struct TimedWake
    {
        Tick at;
        Process *process;
        /**
         * Insertion sequence; breaks wake-time ties FIFO so the pop
         * order of simultaneous wakes (e.g. a commit group released by
         * one log flush) is well-defined rather than heap-shape
         * dependent — required for checkpoints to be bit-exact.
         */
        std::uint64_t seq;
        bool operator>(const TimedWake &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    struct CpuQueues
    {
        std::deque<Process *> ready;
        std::priority_queue<TimedWake, std::vector<TimedWake>,
                            std::greater<TimedWake>>
            sleepers;
        Process *running = nullptr;
        unsigned live = 0; //!< processes not Done
    };

    void wakeExpired(NodeId cpu, Tick now);

    std::vector<CpuQueues> cpus_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::uint64_t finished_ = 0;
    std::uint64_t switches_ = 0;
    std::uint64_t wakeSeq_ = 0; //!< next TimedWake::seq
};

} // namespace isim

#endif // ISIM_OS_SCHEDULER_HH
