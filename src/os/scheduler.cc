/**
 * @file
 * Scheduler implementation.
 */

#include "src/os/scheduler.hh"

#include "src/base/logging.hh"

namespace isim {

Scheduler::Scheduler(unsigned num_cpus) : cpus_(num_cpus)
{
    isim_assert(num_cpus >= 1);
}

Process &
Scheduler::add(std::unique_ptr<Process> process)
{
    Process &p = *process;
    isim_assert(p.cpu() < cpus_.size(), "process bound to unknown CPU");
    p.schedState = Process::SchedState::Ready;
    cpus_[p.cpu()].ready.push_back(&p);
    ++cpus_[p.cpu()].live;
    processes_.push_back(std::move(process));
    return p;
}

void
Scheduler::wakeExpired(NodeId cpu, Tick now)
{
    CpuQueues &q = cpus_[cpu];
    while (!q.sleepers.empty() && q.sleepers.top().at <= now) {
        Process *p = q.sleepers.top().process;
        q.sleepers.pop();
        isim_assert(p->schedState == Process::SchedState::Blocked);
        p->schedState = Process::SchedState::Ready;
        q.ready.push_back(p);
    }
}

Process *
Scheduler::pickNext(NodeId cpu, Tick now)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running == nullptr,
                "pickNext while a process is running");
    wakeExpired(cpu, now);
    if (q.ready.empty())
        return nullptr;
    Process *p = q.ready.front();
    q.ready.pop_front();
    p->schedState = Process::SchedState::Running;
    q.running = p;
    ++switches_;
    return p;
}

Tick
Scheduler::nextWake(NodeId cpu) const
{
    const CpuQueues &q = cpus_[cpu];
    return q.sleepers.empty() ? maxTick : q.sleepers.top().at;
}

bool
Scheduler::hasWork(NodeId cpu) const
{
    return cpus_[cpu].live > 0;
}

void
Scheduler::blockCurrent(NodeId cpu, Tick wake_at)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running != nullptr);
    Process *p = q.running;
    q.running = nullptr;
    p->schedState = Process::SchedState::Blocked;
    p->wakeTime = wake_at;
    if (wake_at != maxTick)
        q.sleepers.push(TimedWake{wake_at, p});
}

void
Scheduler::yieldCurrent(NodeId cpu)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running != nullptr);
    Process *p = q.running;
    q.running = nullptr;
    p->schedState = Process::SchedState::Ready;
    q.ready.push_back(p);
}

void
Scheduler::finishCurrent(NodeId cpu)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running != nullptr);
    Process *p = q.running;
    q.running = nullptr;
    p->schedState = Process::SchedState::Done;
    isim_assert(q.live > 0);
    --q.live;
    ++finished_;
}

void
Scheduler::wake(Process &process, Tick at)
{
    isim_assert(process.schedState == Process::SchedState::Blocked,
                "wake of a process that is not blocked");
    isim_assert(process.wakeTime == maxTick,
                "wake of a timed sleeper (would double-queue)");
    process.wakeTime = at;
    cpus_[process.cpu()].sleepers.push(TimedWake{at, &process});
}

} // namespace isim
