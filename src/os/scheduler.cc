/**
 * @file
 * Scheduler implementation.
 */

#include "src/os/scheduler.hh"

#include "src/base/logging.hh"
#include "src/ckpt/serializer.hh"

namespace isim {

Scheduler::Scheduler(unsigned num_cpus) : cpus_(num_cpus)
{
    isim_assert(num_cpus >= 1);
}

Process &
Scheduler::add(std::unique_ptr<Process> process)
{
    Process &p = *process;
    isim_assert(p.cpu() < cpus_.size(), "process bound to unknown CPU");
    p.schedState = Process::SchedState::Ready;
    cpus_[p.cpu()].ready.push_back(&p);
    ++cpus_[p.cpu()].live;
    processes_.push_back(std::move(process));
    return p;
}

void
Scheduler::wakeExpired(NodeId cpu, Tick now)
{
    CpuQueues &q = cpus_[cpu];
    while (!q.sleepers.empty() && q.sleepers.top().at <= now) {
        Process *p = q.sleepers.top().process;
        q.sleepers.pop();
        isim_assert(p->schedState == Process::SchedState::Blocked);
        p->schedState = Process::SchedState::Ready;
        q.ready.push_back(p);
    }
}

Process *
Scheduler::pickNext(NodeId cpu, Tick now)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running == nullptr,
                "pickNext while a process is running");
    wakeExpired(cpu, now);
    if (q.ready.empty())
        return nullptr;
    Process *p = q.ready.front();
    q.ready.pop_front();
    p->schedState = Process::SchedState::Running;
    q.running = p;
    ++switches_;
    return p;
}

Tick
Scheduler::nextWake(NodeId cpu) const
{
    const CpuQueues &q = cpus_[cpu];
    return q.sleepers.empty() ? maxTick : q.sleepers.top().at;
}

bool
Scheduler::hasWork(NodeId cpu) const
{
    return cpus_[cpu].live > 0;
}

void
Scheduler::blockCurrent(NodeId cpu, Tick wake_at)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running != nullptr);
    Process *p = q.running;
    q.running = nullptr;
    p->schedState = Process::SchedState::Blocked;
    p->wakeTime = wake_at;
    if (wake_at != maxTick)
        q.sleepers.push(TimedWake{wake_at, p, wakeSeq_++});
}

void
Scheduler::yieldCurrent(NodeId cpu)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running != nullptr);
    Process *p = q.running;
    q.running = nullptr;
    p->schedState = Process::SchedState::Ready;
    q.ready.push_back(p);
}

void
Scheduler::finishCurrent(NodeId cpu)
{
    CpuQueues &q = cpus_[cpu];
    isim_assert(q.running != nullptr);
    Process *p = q.running;
    q.running = nullptr;
    p->schedState = Process::SchedState::Done;
    isim_assert(q.live > 0);
    --q.live;
    ++finished_;
}

void
Scheduler::wake(Process &process, Tick at)
{
    isim_assert(process.schedState == Process::SchedState::Blocked,
                "wake of a process that is not blocked");
    isim_assert(process.wakeTime == maxTick,
                "wake of a timed sleeper (would double-queue)");
    process.wakeTime = at;
    cpus_[process.cpu()].sleepers.push(TimedWake{at, &process, wakeSeq_++});
}

Process *
Scheduler::processByPid(Pid pid) const
{
    for (const auto &p : processes_)
        if (p->pid() == pid)
            return p.get();
    return nullptr;
}

namespace {

constexpr Pid noPid = ~Pid{0};

Pid
pidOf(const Process *p)
{
    return p == nullptr ? noPid : p->pid();
}

} // namespace

void
Scheduler::saveState(ckpt::Serializer &s) const
{
    s.u64(finished_);
    s.u64(switches_);
    s.u64(processes_.size());
    for (const auto &p : processes_) {
        s.u32(p->pid());
        s.u8(static_cast<std::uint8_t>(p->schedState));
        s.u64(p->wakeTime);
        p->saveState(s);
    }
    s.u64(cpus_.size());
    for (const CpuQueues &q : cpus_) {
        s.u32(pidOf(q.running));
        s.u32(q.live);
        s.u64(q.ready.size());
        for (const Process *p : q.ready)
            s.u32(p->pid());
        // Drain a copy of the heap so sleepers are written in pop
        // order; restore re-pushes them with fresh ascending seqs,
        // which preserves their relative order exactly.
        auto sleepers = q.sleepers;
        s.u64(sleepers.size());
        while (!sleepers.empty()) {
            const TimedWake &w = sleepers.top();
            s.u64(w.at);
            s.u32(w.process->pid());
            sleepers.pop();
        }
    }
}

void
Scheduler::restoreState(ckpt::Deserializer &d)
{
    finished_ = d.u64();
    switches_ = d.u64();
    if (d.u64() != processes_.size())
        isim_fatal("checkpoint process count mismatch");
    for (const auto &p : processes_) {
        const Pid pid = d.u32();
        if (pid != p->pid())
            isim_fatal("checkpoint process order mismatch (pid %u vs "
                       "%u)",
                       pid, p->pid());
        const std::uint8_t state = d.u8();
        if (state > static_cast<std::uint8_t>(
                        Process::SchedState::Done))
            isim_fatal("checkpoint corrupt: sched state %u", state);
        p->schedState = static_cast<Process::SchedState>(state);
        p->wakeTime = d.u64();
        p->restoreState(d);
    }
    if (d.u64() != cpus_.size())
        isim_fatal("checkpoint scheduler CPU count mismatch");
    wakeSeq_ = 0;
    for (CpuQueues &q : cpus_) {
        q.ready.clear();
        q.sleepers = decltype(q.sleepers){};
        const Pid running = d.u32();
        q.running =
            running == noPid ? nullptr : processByPid(running);
        if (running != noPid && q.running == nullptr)
            isim_fatal("checkpoint corrupt: unknown running pid %u",
                       running);
        q.live = d.u32();
        const std::uint64_t nready = d.u64();
        for (std::uint64_t i = 0; i < nready; ++i) {
            const Pid pid = d.u32();
            Process *p = processByPid(pid);
            if (p == nullptr)
                isim_fatal("checkpoint corrupt: unknown ready pid %u",
                           pid);
            q.ready.push_back(p);
        }
        const std::uint64_t nsleep = d.u64();
        for (std::uint64_t i = 0; i < nsleep; ++i) {
            const Tick at = d.u64();
            const Pid pid = d.u32();
            Process *p = processByPid(pid);
            if (p == nullptr)
                isim_fatal("checkpoint corrupt: unknown sleeper pid "
                           "%u",
                           pid);
            q.sleepers.push(TimedWake{at, p, wakeSeq_++});
        }
    }
}

} // namespace isim
